// layoutcompare runs a TPC-D workload on the instrumented database
// kernel and compares all five code layouts of the paper — original,
// Pettis & Hansen, Torrellas, STC-auto and STC-ops — on i-cache miss
// rate, fetch bandwidth and code sequentiality, using the one-call
// stcpipe.Compare pipeline.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/dsdb/stcpipe"
)

func main() {
	sf := flag.Float64("sf", 0.001, "TPC-D scale factor")
	cacheKB := flag.Int("cache", 2, "i-cache size in KB")
	cfaKB := flag.Float64("cfa", 0.5, "conflict-free area size in KB")
	flag.Parse()

	results, err := stcpipe.Compare(stcpipe.CompareParams{
		SF:     *sf,
		Layout: stcpipe.Params{CacheBytes: *cacheKB * 1024, CFABytes: int(*cfaKB * 1024)},
		Fetch:  stcpipe.FetchConfig{CacheBytes: *cacheKB * 1024},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%dKB direct-mapped cache, %.2gKB CFA\n\n", *cacheKB, *cfaKB)
	fmt.Printf("%-6s %12s %10s %14s\n", "layout", "miss/100", "IPC", "instrs/taken")
	for _, r := range results {
		fmt.Printf("%-6s %12.3f %10.2f %14.1f\n",
			r.Algorithm, r.MissPer100, r.IPC, r.InstrPerTaken)
	}
}
