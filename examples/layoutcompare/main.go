// layoutcompare runs a TPC-D workload on the instrumented database
// kernel and compares all five code layouts of the paper — original,
// Pettis & Hansen, Torrellas, STC-auto and STC-ops — on i-cache miss
// rate, fetch bandwidth and code sequentiality.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/fetch"
)

func main() {
	sf := flag.Float64("sf", 0.001, "TPC-D scale factor")
	cacheKB := flag.Int("cache", 2, "i-cache size in KB")
	cfaKB := flag.Float64("cfa", 0.5, "conflict-free area size in KB")
	flag.Parse()

	s, err := experiments.NewSetup(experiments.Params{SF: *sf, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	cc := experiments.CacheConfig{CacheBytes: *cacheKB * 1024, CFABytes: int(*cfaKB * 1024)}
	layouts := s.Layouts(cc)

	fmt.Printf("%dKB direct-mapped cache, %.2gKB CFA, test trace: %d instructions\n\n",
		*cacheKB, *cfaKB, s.TestTrace.Instrs)
	fmt.Printf("%-6s %12s %10s %14s\n", "layout", "miss/100", "IPC", "instrs/taken")
	for _, name := range experiments.LayoutNames {
		l := layouts[name]
		ic := cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes)
		res := fetch.Simulate(s.TestTrace, l, fetch.DefaultConfig(ic))
		seq := fetch.Sequentiality(s.TestTrace, l)
		fmt.Printf("%-6s %12.3f %10.2f %14.1f\n",
			name, res.MissesPer100Instr(), res.IPC(), seq.InstrPerTaken)
	}
}
