// tracecache reproduces the paper's headline combination result: a
// hardware trace cache alone vs. the Software Trace Cache layout vs.
// both together (Section 7.3) — showing that the software layout makes
// the sequential fetch path a better backup on trace-cache misses.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/dsdb"
	"repro/dsdb/stcpipe"
)

func main() {
	sf := flag.Float64("sf", 0.001, "TPC-D scale factor")
	entries := flag.Int("entries", 64, "trace cache entries (paper: 256)")
	flag.Parse()

	db, err := dsdb.Open(dsdb.WithTPCD(*sf), dsdb.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	pipe := stcpipe.New()
	train, err := pipe.Profile(db, stcpipe.Training())
	if err != nil {
		log.Fatal(err)
	}
	test, err := pipe.Profile(db, stcpipe.Test())
	if err != nil {
		log.Fatal(err)
	}
	params := stcpipe.Params{CacheBytes: 4096, CFABytes: 1024}
	orig, err := train.Layout(stcpipe.Original())
	if err != nil {
		log.Fatal(err)
	}
	ops, err := train.Layout(stcpipe.STCOps(params))
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name   string
		layout *stcpipe.Layout
		tc     bool
	}{
		{"original layout", orig, false},
		{"STC (ops) layout", ops, false},
		{"trace cache, original layout", orig, true},
		{"trace cache + STC (ops)", ops, true},
	}
	fmt.Printf("4KB i-cache; %d-entry trace cache; test trace %d instrs\n\n",
		*entries, test.Instrs())
	fmt.Printf("%-32s %8s %10s %10s\n", "configuration", "IPC", "TC hits", "TC miss")
	for _, c := range configs {
		fc := stcpipe.FetchConfig{CacheBytes: 4096}
		if c.tc {
			fc.TraceCacheEntries = *entries
		}
		res, err := test.Simulate(c.layout, fc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %8.2f %10d %10d\n", c.name, res.IPC(), res.TCHits, res.TCMisses)
	}
}
