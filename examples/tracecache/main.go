// tracecache reproduces the paper's headline combination result: a
// hardware trace cache alone vs. the Software Trace Cache layout vs.
// both together (Section 7.3) — showing that the software layout makes
// the sequential fetch path a better backup on trace-cache misses.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/fetch"
)

func main() {
	sf := flag.Float64("sf", 0.001, "TPC-D scale factor")
	entries := flag.Int("entries", 64, "trace cache entries (paper: 256)")
	flag.Parse()

	s, err := experiments.NewSetup(experiments.Params{SF: *sf, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	cc := experiments.CacheConfig{CacheBytes: 4096, CFABytes: 1024}
	layouts := s.Layouts(cc)
	orig, ops := layouts["orig"], layouts["ops"]

	configs := []struct {
		name   string
		layout string
		tc     bool
	}{
		{"original layout", "orig", false},
		{"STC (ops) layout", "ops", false},
		{"trace cache, original layout", "orig", true},
		{"trace cache + STC (ops)", "ops", true},
	}
	fmt.Printf("4KB i-cache; %d-entry trace cache; test trace %d instrs\n\n",
		*entries, s.TestTrace.Instrs)
	fmt.Printf("%-32s %8s %10s %10s\n", "configuration", "IPC", "TC hits", "TC miss")
	for _, c := range configs {
		l := orig
		if c.layout == "ops" {
			l = ops
		}
		cfg := fetch.DefaultConfig(cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes))
		if c.tc {
			cfg.TC = cache.NewTraceCache(*entries, 16, 3, 4)
		}
		res := fetch.Simulate(s.TestTrace, l, cfg)
		fmt.Printf("%-32s %8.2f %10d %10d\n", c.name, res.IPC(), res.TCHits, res.TCMisses)
	}
}
