// Quickstart: build the paper's Figure 3 weighted control-flow graph,
// run the Software Trace Cache sequence builder on it, and print the
// resulting main and secondary traces — the worked example of
// Section 5.2.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/program"
)

func main() {
	// The Figure 3 graph: nodes A1..A8, B1, C5 with the paper's weights
	// (x10 to integers) and branch probabilities.
	b := program.NewBuilder()
	f := b.Proc("A", "fig3")
	f.Fall("A1", 4)
	f.Cond("A2", 4, "B1")
	f.Cond("A3", 4, "A5")
	f.Cond("A4", 4, "A6")
	f.Cond("A5", 4, "A7")
	f.Fall("A6", 4)
	f.Fall("A7", 4)
	f.Cond("A8", 4, "C5")
	f.Fall("B1", 8)
	f.Ret("C5", 8)
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	pr := profile.New(prog)
	weights := map[string]uint64{
		"A1": 100, "A2": 100, "A3": 100, "A4": 60, "A5": 45,
		"A6": 24, "A7": 76, "A8": 100, "B1": 10, "C5": 30,
	}
	for name, w := range weights {
		pr.BlockCount[prog.MustBlock("A."+name)] = w
	}
	edge := func(from, to string, c uint64) {
		pr.EdgeCount[profile.Edge{From: prog.MustBlock("A." + from), To: prog.MustBlock("A." + to)}] = c
	}
	edge("A1", "A2", 100)
	edge("A2", "A3", 90)
	edge("A2", "B1", 10)
	edge("A3", "A4", 55)
	edge("A3", "A5", 45)
	edge("A4", "A7", 36)
	edge("A4", "A6", 24)
	edge("A5", "A7", 45)
	edge("A6", "A7", 24)
	edge("A7", "A8", 76)
	edge("A8", "A6", 35)
	edge("A8", "B1", 35)
	edge("A8", "C5", 30)

	params := core.Params{ExecThreshold: 40, BranchThreshold: 0.4,
		CacheBytes: 1024, CFABytes: 256}
	visited := make([]bool, prog.NumBlocks())
	seqs := core.BuildSequences(pr, []program.BlockID{prog.MustBlock("A.A1")}, params, visited)

	fmt.Println("Software Trace Cache sequence building (paper Figure 3)")
	fmt.Printf("ExecThreshold=%d BranchThreshold=%.1f, seed A1\n\n", params.ExecThreshold, params.BranchThreshold)
	for i, s := range seqs {
		kind := "main trace"
		if s.Secondary {
			kind = "secondary"
		}
		fmt.Printf("sequence %d (%s): ", i+1, kind)
		for j, blk := range s.Blocks {
			if j > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(prog.Block(blk).Name)
		}
		fmt.Println()
	}
	fmt.Println("\ndiscarded: B1, C5 (branch threshold), A6 (exec threshold)")
}
