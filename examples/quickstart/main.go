// Quickstart for the public API: open a TPC-D database, stream a
// query through the database/sql-style Rows iterator, then run the
// paper's whole Software Trace Cache flow — profile the training
// workload, build the STC layout, simulate the fetch unit — in three
// calls on the stcpipe pipeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/dsdb"
	"repro/dsdb/stcpipe"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.001, "TPC-D scale factor")
	flag.Parse()

	// 1. Open a deterministic TPC-D database.
	db, err := dsdb.Open(dsdb.WithTPCD(*sf), dsdb.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Stream TPC-D Q6 (the paper's simplest query) tuple by tuple.
	q6, _ := dsdb.TPCDQuery(6)
	rows, err := db.Query(context.Background(), q6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TPC-D Q6:")
	for rows.Next() {
		var revenue float64
		if err := rows.Scan(&revenue); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  revenue = %.2f\n", revenue)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()

	// 3. The paper's toolchain in three calls: Profile → Layout →
	// Simulate.
	pipe := stcpipe.New()
	train, err := pipe.Profile(db, stcpipe.Training())
	if err != nil {
		log.Fatal(err)
	}
	lay, err := train.Layout(stcpipe.STCOps(stcpipe.Params{CacheBytes: 4096, CFABytes: 1024}))
	if err != nil {
		log.Fatal(err)
	}
	orig, err := train.Layout(stcpipe.Original())
	if err != nil {
		log.Fatal(err)
	}
	res, err := train.Simulate(lay, stcpipe.FetchConfig{CacheBytes: 4096})
	if err != nil {
		log.Fatal(err)
	}
	base, err := train.Simulate(orig, stcpipe.FetchConfig{CacheBytes: 4096})
	if err != nil {
		log.Fatal(err)
	}

	fp := train.Footprint()
	fmt.Printf("\ntraining trace: %d instructions over %d of %d static blocks\n",
		train.Instrs(), fp.ExecBlocks, fp.TotalBlocks)
	fmt.Printf("4KB i-cache, original layout:  %6.3f misses/100 instrs, IPC %.2f, %5.1f instrs between taken branches\n",
		base.MissesPer100Instr(), base.IPC(), train.Sequentiality(orig))
	fmt.Printf("4KB i-cache, STC (ops) layout: %6.3f misses/100 instrs, IPC %.2f, %5.1f instrs between taken branches\n",
		res.MissesPer100Instr(), res.IPC(), train.Sequentiality(lay))
}
