package dsdb

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/dsdb/obs"
	"repro/dsdb/qcache"
	"repro/internal/db/executor"
	"repro/internal/db/sql"
	"repro/internal/db/value"
)

// ErrNoRows is returned by Row.Scan when the query matched nothing.
var ErrNoRows = errors.New("dsdb: no rows in result set")

// ErrStmtBusy is returned when a prepared statement is re-executed
// while a Rows from a previous execution is still open.
var ErrStmtBusy = errors.New("dsdb: statement is busy (close the previous Rows first)")

// Stmt is a prepared statement: the query is parsed and planned once
// and the compiled plan is cached across executions (executor nodes
// reset on re-open). A Stmt holds mutable execution state and must
// not be run concurrently with itself — concurrent sessions each
// prepare their own statements against the shared DB. Re-executing a
// busy statement fails fast with ErrStmtBusy (detected atomically, so
// even misuse from two goroutines errors rather than races).
type Stmt struct {
	db      *DB
	query   string
	c       *executor.Ctx
	plan    executor.Node
	cols    []string
	busy    atomic.Bool
	unlatch func() // releases the engine read latch of the running execution

	// cacheKey and tables are the statement's result-cache identity:
	// the canonicalized query text and the deduplicated table
	// footprint the planner derived at compile time. Unused (but still
	// recorded) when the DB has no result cache.
	cacheKey string
	tables   []string
}

// Prepare parses and plans a query for repeated execution, binding
// the DB-wide tracer and parallelism at compile time.
func (db *DB) Prepare(query string) (*Stmt, error) {
	db.mu.Lock()
	tr, par := db.tracer, db.parallelism
	db.mu.Unlock()
	return db.prepare(tr, par, query)
}

// PrepareTraced is Prepare with an explicit per-statement tracer,
// overriding the DB-wide one. It is how concurrent sessions record
// independent instruction traces against one database: give each
// session its own tracer and its own statements.
func (db *DB) PrepareTraced(tr Tracer, query string) (*Stmt, error) {
	db.mu.Lock()
	par := db.parallelism
	db.mu.Unlock()
	return db.prepare(tr, par, query)
}

// prepare compiles under the shared engine latch: planning reads the
// catalog and access-method maps, which DDL mutates exclusively.
func (db *DB) prepare(tr Tracer, parallelism int, query string) (*Stmt, error) {
	if mode, _ := sql.SplitExplain(query); mode != sql.ExplainNone {
		// A prepared EXPLAIN would freeze one compilation's plan text
		// and, for ANALYZE, share instrumented state across executions;
		// run it through Query instead.
		return nil, fmt.Errorf("dsdb: EXPLAIN cannot be prepared; run it with Query")
	}
	release := db.eng.BeginRead()
	defer release()
	c := executor.NewCtx(tr)
	c.Parallelism = parallelism
	if parallelism > 1 {
		c.WorkerTracer = db.workerCounts
	}
	cq, err := sql.CompileQuery(db.eng, c, query)
	if err != nil {
		return nil, err
	}
	sch := cq.Plan.Schema()
	cols := make([]string, sch.Len())
	for i, col := range sch.Columns {
		cols[i] = col.Name
	}
	return &Stmt{db: db, query: query, c: c, plan: cq.Plan, cols: cols,
		cacheKey: cq.Key, tables: cq.Tables}, nil
}

// Columns returns the output column names.
func (s *Stmt) Columns() []string { return append([]string(nil), s.cols...) }

// Query executes the prepared plan and returns a streaming Rows. The
// context is honored between tuples and inside pipeline-breaking
// operators (sort loads, hash-join builds): cancellation surfaces as
// the context's error from Rows.Err.
//
// When the DB carries a result cache, Query first consults it under
// the shared engine latch: a valid entry (every referenced table's
// write epoch unchanged) is served as a materialized Rows without
// opening the plan at all — no executor, no buffer pool traffic, no
// instrumentation events. On a miss the execution streams normally
// while a copy of the rows accumulates; a cleanly exhausted result
// set is then published for the next repeat. Partially consumed,
// cancelled or failed executions publish nothing.
func (s *Stmt) Query(ctx context.Context) (*Rows, error) {
	return s.execQuery(ctx, true, s.db.obs.Begin("", s.query))
}

// QueryLabeled is Query with a client-chosen label recorded on the
// execution's observability span (the server uses it so prepared
// statements carry their wire label into SHOW queries and the
// slow-query log).
func (s *Stmt) QueryLabeled(ctx context.Context, label string) (*Rows, error) {
	return s.execQuery(ctx, true, s.db.obs.Begin(label, s.query))
}

// execQuery runs one execution. consultCache selects whether the result
// cache is probed here: prepared statements probe on every execution,
// while the one-shot Query/QueryTraced path already missed in its
// pre-plan lookup and must not probe again — a second Get would
// double-count the miss (skewing the reported hit ratio) for nothing.
// The span (nil when unobserved) is handed to the returned Rows on
// success and ended here on failure.
func (s *Stmt) execQuery(ctx context.Context, consultCache bool, sp *obs.Span) (*Rows, error) {
	if !s.busy.CompareAndSwap(false, true) {
		sp.SetErr(ErrStmtBusy)
		sp.End()
		return nil, ErrStmtBusy
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Hold the engine latch shared for the whole execution: writers
	// (Insert, DDL) wait until this result set closes.
	s.unlatch = s.db.eng.BeginRead()
	var fill *cacheFill
	if c := s.db.cache; c != nil {
		// Epoch reads below run under the just-taken shared latch, so
		// a hit is consistent with the database as of this call, and a
		// fill's snapshot cannot be perturbed mid-execution.
		if consultCache {
			var lookupStart time.Time
			if sp != nil {
				lookupStart = time.Now()
			}
			res, ok := c.Get(s.cacheKey, s.db.eng.TableEpoch)
			if sp != nil {
				sp.Add(obs.StageCache, time.Since(lookupStart))
			}
			if ok {
				s.release()
				sp.SetCacheHit()
				return &Rows{ctx: ctx, cols: res.Columns, cres: res, hit: true, span: sp}, nil
			}
		}
		fp := qcache.Footprint{Tables: s.tables, Epochs: make([]uint64, len(s.tables))}
		for i, t := range s.tables {
			fp.Epochs[i] = s.db.eng.TableEpoch(t)
		}
		// The abandonment threshold uses the same accounting as Put's
		// admission check: budget minus the entry's fixed cost (key,
		// columns, footprint), so a result that can never be admitted
		// is never fully copied either.
		fixed := qcache.EntryBytes(s.cacheKey, fp, &qcache.Result{Columns: s.cols})
		fill = &cacheFill{cache: c, key: s.cacheKey, fp: fp, limit: c.MaxBytes() - fixed}
	}
	s.c.Interrupt = ctx.Err
	s.c.SetSpan(sp)
	openStart := time.Now()
	if err := s.plan.Open(); err != nil {
		s.plan.Close()
		s.release()
		sp.SetErr(err)
		sp.End()
		return nil, err
	}
	opened := time.Since(openStart)
	if fill != nil {
		fill.cost = opened
	}
	sp.Add(obs.StageExec, opened)
	return &Rows{stmt: s, ctx: ctx, cols: s.cols, fill: fill, span: sp}, nil
}

// cacheFill accumulates a copy of a streaming execution's rows for
// publication into the result cache when the stream ends cleanly.
type cacheFill struct {
	cache *qcache.Cache
	key   string
	fp    qcache.Footprint
	rows  [][]Value
	size  int64
	limit int64 // accumulation stops (and the fill is abandoned) past this
	dead  bool

	// cost accumulates the wall time spent inside the executor — plan
	// Open plus every Next — and nothing else. Consumer think time and
	// network backpressure between pulls stay out, so the admission
	// policy judges what a re-execution would actually cost, not how
	// slowly a client drained the stream.
	cost time.Duration
}

// add copies one produced tuple into the pending entry, abandoning
// the fill once the result outgrows the cache budget (the cache would
// reject it anyway — stop paying for the copy).
func (f *cacheFill) add(tup []Value) {
	if f.dead {
		return
	}
	row := append([]Value(nil), tup...)
	f.size += qcache.RowBytes(row)
	if f.size > f.limit {
		f.dead = true
		f.rows = nil
		return
	}
	f.rows = append(f.rows, row)
}

// commit publishes the accumulated result. Called with the filling
// execution's engine latch still held, so no writer can have bumped
// an epoch since the snapshot. The accumulated executor time is the
// cost the admission policy judges: a sub-threshold (cheap) first
// execution is not worth caching.
func (f *cacheFill) commit(cols []string) {
	if f.dead {
		return
	}
	f.cache.Put(f.key, f.fp, &qcache.Result{
		Columns: append([]string(nil), cols...),
		Rows:    f.rows,
	}, f.cost)
}

// release detaches the statement from a finished execution and drops
// the engine latch.
func (s *Stmt) release() {
	s.c.Interrupt = nil
	s.c.SetSpan(nil)
	if s.unlatch != nil {
		s.unlatch()
		s.unlatch = nil
	}
	s.busy.Store(false)
}

// Close releases the statement. It fails if a Rows is still open.
func (s *Stmt) Close() error {
	if s.busy.Load() {
		return ErrStmtBusy
	}
	return nil
}

// Rows is a streaming result iterator in the database/sql style:
//
//	rows, err := db.Query(ctx, q)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    if err := rows.Scan(&a, &b); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Tuples are pulled from the executor one at a time — nothing is
// materialized beyond what the plan itself buffers. Rows auto-closes
// on exhaustion or error; Close is idempotent and safe to defer.
//
// A Rows served from the result cache (CacheHit reports true) has no
// executor behind it: Next iterates the materialized entry, and close
// tears nothing down.
type Rows struct {
	stmt     *Stmt // nil when served from the result cache
	ctx      context.Context
	cols     []string
	cur      executor.Tuple
	err      error
	closeErr error
	closed   bool

	// cres/cidx iterate a result-cache hit; hit reports the serving
	// mode. fill accumulates a miss for publication; exhausted marks a
	// cleanly drained stream (the only state a fill commits from).
	cres      *qcache.Result
	cidx      int
	hit       bool
	fill      *cacheFill
	exhausted bool

	// span is the query's observability record (nil when unobserved):
	// Next times executor pulls into its exec stage, and close ends it
	// — unless DetachSpan transferred ownership (spanDetached), which
	// is how the server extends a span across the network flush.
	// rowsOut counts produced rows for the span.
	span         *obs.Span
	spanDetached bool
	rowsOut      int64
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// CacheHit reports whether this result set was served from the DB's
// result cache (no executor ran; the rows were materialized by an
// earlier execution of the same canonical query).
func (r *Rows) CacheHit() bool { return r.hit }

// Next advances to the next row, returning false at the end of the
// result set, on error, or when the query's context is cancelled.
// Consult Err after Next returns false.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if err := r.ctx.Err(); err != nil {
		r.err = err
		r.close()
		return false
	}
	if r.cres != nil {
		// Cache hit: iterate the materialized entry. The rows are
		// shared with the cache — Values and Scan copy, never mutate.
		if r.cidx >= len(r.cres.Rows) {
			r.exhausted = true
			r.close()
			return false
		}
		r.cur = r.cres.Rows[r.cidx]
		r.cidx++
		r.rowsOut++
		return true
	}
	var pullStart time.Time
	timed := r.fill != nil || r.span != nil
	if timed {
		pullStart = time.Now()
	}
	tup, ok, err := r.stmt.plan.Next()
	if timed {
		pull := time.Since(pullStart)
		if r.fill != nil {
			r.fill.cost += pull
		}
		r.span.Add(obs.StageExec, pull)
	}
	if err != nil {
		r.err = err
		r.close()
		return false
	}
	if !ok {
		r.exhausted = true
		r.close()
		return false
	}
	r.cur = tup
	r.rowsOut++
	if r.fill != nil {
		r.fill.add(tup)
	}
	return true
}

// Values returns a copy of the current row.
func (r *Rows) Values() []Value {
	return append([]Value(nil), r.cur...)
}

// Scan copies the current row into dest, one pointer per column.
// Supported destinations: *int64, *int, *float64, *string, *bool,
// *Value and *any.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("dsdb: Scan called without a successful Next")
	}
	return scanRow(r.cur, r.cols, dest)
}

// ScanRow copies one materialized row into the destinations — the
// conversion kernel behind Rows.Scan and Row.Scan, exported so remote
// result sets (dsdb/client) scan with identical semantics.
func ScanRow(vals []Value, cols []string, dest ...any) error {
	return scanRow(vals, cols, dest)
}

// scanRow copies one row into the destinations (shared by Rows.Scan
// and Row.Scan).
func scanRow(vals []Value, cols []string, dest []any) error {
	if len(dest) != len(vals) {
		return fmt.Errorf("dsdb: Scan got %d destinations, row has %d columns", len(dest), len(vals))
	}
	for i, d := range dest {
		if err := scanValue(vals[i], d); err != nil {
			return fmt.Errorf("dsdb: Scan column %d (%s): %w", i, cols[i], err)
		}
	}
	return nil
}

// scanValue converts one SQL value into a Go destination.
func scanValue(v Value, dest any) error {
	switch d := dest.(type) {
	case *Value:
		*d = v
		return nil
	case *any:
		*d = v
		return nil
	case *int64:
		switch v.T {
		case value.Int, value.Date, value.Bool:
			*d = v.I
			return nil
		case value.Float:
			*d = int64(v.F)
			return nil
		}
	case *int:
		switch v.T {
		case value.Int, value.Date, value.Bool:
			*d = int(v.I)
			return nil
		case value.Float:
			*d = int(v.F)
			return nil
		}
	case *float64:
		switch v.T {
		case value.Float:
			*d = v.F
			return nil
		case value.Int, value.Date:
			*d = float64(v.I)
			return nil
		}
	case *string:
		if v.T != value.Null { // NULL must not stringify silently
			*d = v.String()
			return nil
		}
	case *bool:
		if v.T == value.Bool {
			*d = v.I != 0
			return nil
		}
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return fmt.Errorf("cannot scan %s into %T", v.T, dest)
}

// Err returns the error, if any, that ended iteration. Context
// cancellation surfaces here as the context's error.
func (r *Rows) Err() error { return r.err }

// close tears down the execution, keeping the first close error. A
// cleanly exhausted miss publishes its accumulated rows to the result
// cache before the engine latch drops, so the epoch snapshot taken at
// Query time is still current at publication.
func (r *Rows) close() {
	if r.closed {
		return
	}
	r.closed = true
	r.cur = nil // a Scan after close must fail, not read stale data
	if r.stmt == nil {
		r.endSpan() // cache hit: nothing to tear down but the span
		return
	}
	r.closeErr = r.stmt.plan.Close()
	if r.err == nil {
		r.err = r.closeErr
	}
	if r.fill != nil {
		if r.err == nil && r.exhausted {
			r.fill.commit(r.cols)
		}
		r.fill = nil
	}
	r.stmt.release()
	// End after release: the record is published with no engine latch
	// held by this close.
	r.endSpan()
}

// endSpan finishes the query's span at stream end — unless the span
// was detached, in which case its owner (the serving connection) ends
// it after the last network flush.
func (r *Rows) endSpan() {
	sp := r.span
	if sp == nil {
		return
	}
	r.span = nil
	if r.spanDetached {
		return
	}
	sp.AddRows(r.rowsOut)
	if r.err != nil {
		sp.SetErr(r.err)
	}
	sp.End()
}

// Span returns the query's observability span (nil when the database
// runs with observability disabled).
func (r *Rows) Span() *obs.Span { return r.span }

// DetachSpan transfers span ownership to the caller: Rows keeps
// timing executor pulls into it, but close no longer ends it — the
// caller must End it once the last cost is accounted. The server uses
// this to extend served spans across the result stream, ending them
// only after the terminal frame is flushed so the network stage is
// complete. Returns nil when unobserved.
func (r *Rows) DetachSpan() *obs.Span {
	if r.span != nil {
		r.spanDetached = true
	}
	return r.span
}

// Close releases the plan's resources. It is idempotent, safe after
// exhaustion, and required after partial consumption.
func (r *Rows) Close() error {
	r.close()
	return r.closeErr
}

// Query compiles and executes a query, returning a streaming Rows.
// With a result cache attached, a repeated query short-circuits
// before planning: parse, canonicalize, validate epochs, serve — the
// hot path repeated DSS traffic takes on every hit.
func (db *DB) Query(ctx context.Context, query string) (*Rows, error) {
	db.mu.Lock()
	tr := db.tracer
	db.mu.Unlock()
	return db.QueryObserved(ctx, tr, "", query)
}

// QueryTraced is Query with an explicit per-call tracer (see
// PrepareTraced): the way a concurrent session records its own
// instruction trace without touching the DB-wide tracer. Cache hits
// take the same pre-plan fast path as Query — a hit emits no trace
// either way.
func (db *DB) QueryTraced(ctx context.Context, tr Tracer, query string) (*Rows, error) {
	return db.QueryObserved(ctx, tr, "", query)
}

// QueryObserved is QueryTraced with a client-supplied label recorded
// on the query's observability span — the entry point the server uses
// so SHOW queries and the slow-query log carry the label the client
// sent over the wire (dsload's "Q9", stcpipe's phase markers).
func (db *DB) QueryObserved(ctx context.Context, tr Tracer, label, query string) (*Rows, error) {
	sp := db.obs.Begin(label, query)
	if mode, rest := sql.SplitExplain(query); mode != sql.ExplainNone {
		return db.explainQuery(ctx, tr, sp, mode, rest)
	}
	if r, ok := db.cachedQuery(ctx, query, sp); ok {
		return r, nil
	}
	var planStart time.Time
	if sp != nil {
		planStart = time.Now()
	}
	stmt, err := db.PrepareTraced(tr, query)
	if sp != nil {
		sp.Add(obs.StagePlan, time.Since(planStart))
	}
	if err != nil {
		sp.SetErr(err)
		sp.End()
		return nil, err
	}
	return stmt.execQuery(ctx, false, sp)
}

// cachedQuery attempts the one-shot result-cache fast path: parse
// only (no planning), look the canonical key up under the shared
// engine latch, and serve a valid entry as a materialized Rows. Any
// parse failure falls through to the full compile path, which owns
// error reporting. A key can only be cached if the query once
// compiled and ran — and tables are never dropped — so skipping
// plan-time validation on a hit cannot hide a real error.
// The span is carried, not ended: a miss continues into the compile
// path with its parse time already attributed.
func (db *DB) cachedQuery(ctx context.Context, query string, sp *obs.Span) (*Rows, bool) {
	if db.cache == nil {
		return nil, false
	}
	// Stage boundaries share one clock reading each: Begin's reading
	// starts the plan stage, the reading that ends it starts the cache
	// stage — and every boundary is a monotonic-only read (time.Since)
	// off the span's start. The cached-hit path is the latency-
	// sensitive one, and clock reads are its dominant tracing cost.
	key, _, err := sql.Analyze(query)
	var d1 time.Duration
	if sp != nil {
		d1 = time.Since(sp.StartTime())
		sp.Add(obs.StagePlan, d1) // parsing is plan-stage work
	}
	if err != nil {
		return nil, false
	}
	if ctx == nil {
		ctx = context.Background()
	}
	release := db.eng.BeginRead()
	res, ok := db.cache.Get(key, db.eng.TableEpoch)
	release()
	if sp != nil {
		sp.Add(obs.StageCache, time.Since(sp.StartTime())-d1)
	}
	if !ok {
		return nil, false
	}
	sp.SetCacheHit()
	return &Rows{ctx: ctx, cols: res.Columns, cres: res, hit: true, span: sp}, true
}

// Row is the result of QueryRow: a single-row wrapper whose Scan
// reports ErrNoRows when the query matched nothing.
type Row struct {
	vals []Value
	cols []string
	err  error
}

// NewRow wraps one materialized row — used by remote clients
// (dsdb/client) to mirror QueryRow semantics exactly.
func NewRow(vals []Value, cols []string) *Row { return &Row{vals: vals, cols: cols} }

// NewErrRow wraps a deferred query error in a Row (see NewRow).
func NewErrRow(err error) *Row { return &Row{err: err} }

// Scan copies the row into dest (see Rows.Scan).
func (r *Row) Scan(dest ...any) error {
	if r.err != nil {
		return r.err
	}
	return scanRow(r.vals, r.cols, dest)
}

// Err returns the deferred query error, if any.
func (r *Row) Err() error { return r.err }

// QueryRow executes a query expected to return at most one row; the
// error (including ErrNoRows) is deferred until Scan.
func (db *DB) QueryRow(ctx context.Context, query string) *Row {
	rows, err := db.Query(ctx, query)
	if err != nil {
		return &Row{err: err}
	}
	defer rows.Close()
	if !rows.Next() {
		if err := rows.Err(); err != nil {
			return &Row{err: err}
		}
		return &Row{err: ErrNoRows}
	}
	r := &Row{vals: rows.Values(), cols: rows.Columns()}
	if rows.fill != nil {
		// Probe one step past the first row: the expected single-row
		// result (the common DSS aggregate shape) is thereby drained
		// to exhaustion, so the result cache can publish it and
		// repeated QueryRow traffic hits like Query/Exec. Only a
		// filling execution benefits — uncached databases and
		// cache-hit serves skip the extra pull.
		rows.Next()
	}
	return r
}

// Result is a fully materialized result set.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Exec compiles, executes and materializes a query in one call — the
// convenience path for workload drivers that don't need streaming.
func (db *DB) Exec(ctx context.Context, query string) (*Result, error) {
	rows, err := db.Query(ctx, query)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &Result{Columns: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Values())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, nil
}
