package dsdb

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/db/executor"
	"repro/internal/db/sql"
	"repro/internal/db/value"
)

// ErrNoRows is returned by Row.Scan when the query matched nothing.
var ErrNoRows = errors.New("dsdb: no rows in result set")

// ErrStmtBusy is returned when a prepared statement is re-executed
// while a Rows from a previous execution is still open.
var ErrStmtBusy = errors.New("dsdb: statement is busy (close the previous Rows first)")

// Stmt is a prepared statement: the query is parsed and planned once
// and the compiled plan is cached across executions (executor nodes
// reset on re-open). A Stmt holds mutable execution state and must
// not be run concurrently with itself — concurrent sessions each
// prepare their own statements against the shared DB. Re-executing a
// busy statement fails fast with ErrStmtBusy (detected atomically, so
// even misuse from two goroutines errors rather than races).
type Stmt struct {
	db      *DB
	query   string
	c       *executor.Ctx
	plan    executor.Node
	cols    []string
	busy    atomic.Bool
	unlatch func() // releases the engine read latch of the running execution
}

// Prepare parses and plans a query for repeated execution, binding
// the DB-wide tracer and parallelism at compile time.
func (db *DB) Prepare(query string) (*Stmt, error) {
	db.mu.Lock()
	tr, par := db.tracer, db.parallelism
	db.mu.Unlock()
	return db.prepare(tr, par, query)
}

// PrepareTraced is Prepare with an explicit per-statement tracer,
// overriding the DB-wide one. It is how concurrent sessions record
// independent instruction traces against one database: give each
// session its own tracer and its own statements.
func (db *DB) PrepareTraced(tr Tracer, query string) (*Stmt, error) {
	db.mu.Lock()
	par := db.parallelism
	db.mu.Unlock()
	return db.prepare(tr, par, query)
}

// prepare compiles under the shared engine latch: planning reads the
// catalog and access-method maps, which DDL mutates exclusively.
func (db *DB) prepare(tr Tracer, parallelism int, query string) (*Stmt, error) {
	release := db.eng.BeginRead()
	defer release()
	c := executor.NewCtx(tr)
	c.Parallelism = parallelism
	if parallelism > 1 {
		c.WorkerTracer = db.workerCounts
	}
	plan, err := sql.Compile(db.eng, c, query)
	if err != nil {
		return nil, err
	}
	sch := plan.Schema()
	cols := make([]string, sch.Len())
	for i, col := range sch.Columns {
		cols[i] = col.Name
	}
	return &Stmt{db: db, query: query, c: c, plan: plan, cols: cols}, nil
}

// Columns returns the output column names.
func (s *Stmt) Columns() []string { return append([]string(nil), s.cols...) }

// Query executes the prepared plan and returns a streaming Rows. The
// context is honored between tuples and inside pipeline-breaking
// operators (sort loads, hash-join builds): cancellation surfaces as
// the context's error from Rows.Err.
func (s *Stmt) Query(ctx context.Context) (*Rows, error) {
	if !s.busy.CompareAndSwap(false, true) {
		return nil, ErrStmtBusy
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Hold the engine latch shared for the whole execution: writers
	// (Insert, DDL) wait until this result set closes.
	s.unlatch = s.db.eng.BeginRead()
	s.c.Interrupt = ctx.Err
	if err := s.plan.Open(); err != nil {
		s.plan.Close()
		s.release()
		return nil, err
	}
	return &Rows{stmt: s, ctx: ctx}, nil
}

// release detaches the statement from a finished execution and drops
// the engine latch.
func (s *Stmt) release() {
	s.c.Interrupt = nil
	if s.unlatch != nil {
		s.unlatch()
		s.unlatch = nil
	}
	s.busy.Store(false)
}

// Close releases the statement. It fails if a Rows is still open.
func (s *Stmt) Close() error {
	if s.busy.Load() {
		return ErrStmtBusy
	}
	return nil
}

// Rows is a streaming result iterator in the database/sql style:
//
//	rows, err := db.Query(ctx, q)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    if err := rows.Scan(&a, &b); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Tuples are pulled from the executor one at a time — nothing is
// materialized beyond what the plan itself buffers. Rows auto-closes
// on exhaustion or error; Close is idempotent and safe to defer.
type Rows struct {
	stmt     *Stmt
	ctx      context.Context
	cur      executor.Tuple
	err      error
	closeErr error
	closed   bool
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.stmt.Columns() }

// Next advances to the next row, returning false at the end of the
// result set, on error, or when the query's context is cancelled.
// Consult Err after Next returns false.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if err := r.ctx.Err(); err != nil {
		r.err = err
		r.close()
		return false
	}
	tup, ok, err := r.stmt.plan.Next()
	if err != nil {
		r.err = err
		r.close()
		return false
	}
	if !ok {
		r.close()
		return false
	}
	r.cur = tup
	return true
}

// Values returns a copy of the current row.
func (r *Rows) Values() []Value {
	return append([]Value(nil), r.cur...)
}

// Scan copies the current row into dest, one pointer per column.
// Supported destinations: *int64, *int, *float64, *string, *bool,
// *Value and *any.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("dsdb: Scan called without a successful Next")
	}
	return scanRow(r.cur, r.stmt.cols, dest)
}

// ScanRow copies one materialized row into the destinations — the
// conversion kernel behind Rows.Scan and Row.Scan, exported so remote
// result sets (dsdb/client) scan with identical semantics.
func ScanRow(vals []Value, cols []string, dest ...any) error {
	return scanRow(vals, cols, dest)
}

// scanRow copies one row into the destinations (shared by Rows.Scan
// and Row.Scan).
func scanRow(vals []Value, cols []string, dest []any) error {
	if len(dest) != len(vals) {
		return fmt.Errorf("dsdb: Scan got %d destinations, row has %d columns", len(dest), len(vals))
	}
	for i, d := range dest {
		if err := scanValue(vals[i], d); err != nil {
			return fmt.Errorf("dsdb: Scan column %d (%s): %w", i, cols[i], err)
		}
	}
	return nil
}

// scanValue converts one SQL value into a Go destination.
func scanValue(v Value, dest any) error {
	switch d := dest.(type) {
	case *Value:
		*d = v
		return nil
	case *any:
		*d = v
		return nil
	case *int64:
		switch v.T {
		case value.Int, value.Date, value.Bool:
			*d = v.I
			return nil
		case value.Float:
			*d = int64(v.F)
			return nil
		}
	case *int:
		switch v.T {
		case value.Int, value.Date, value.Bool:
			*d = int(v.I)
			return nil
		case value.Float:
			*d = int(v.F)
			return nil
		}
	case *float64:
		switch v.T {
		case value.Float:
			*d = v.F
			return nil
		case value.Int, value.Date:
			*d = float64(v.I)
			return nil
		}
	case *string:
		if v.T != value.Null { // NULL must not stringify silently
			*d = v.String()
			return nil
		}
	case *bool:
		if v.T == value.Bool {
			*d = v.I != 0
			return nil
		}
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return fmt.Errorf("cannot scan %s into %T", v.T, dest)
}

// Err returns the error, if any, that ended iteration. Context
// cancellation surfaces here as the context's error.
func (r *Rows) Err() error { return r.err }

// close tears down the execution, keeping the first close error.
func (r *Rows) close() {
	if r.closed {
		return
	}
	r.closed = true
	r.cur = nil // a Scan after close must fail, not read stale data
	r.closeErr = r.stmt.plan.Close()
	if r.err == nil {
		r.err = r.closeErr
	}
	r.stmt.release()
}

// Close releases the plan's resources. It is idempotent, safe after
// exhaustion, and required after partial consumption.
func (r *Rows) Close() error {
	r.close()
	return r.closeErr
}

// Query compiles and executes a query, returning a streaming Rows.
func (db *DB) Query(ctx context.Context, query string) (*Rows, error) {
	stmt, err := db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return stmt.Query(ctx)
}

// QueryTraced is Query with an explicit per-call tracer (see
// PrepareTraced): the way a concurrent session records its own
// instruction trace without touching the DB-wide tracer.
func (db *DB) QueryTraced(ctx context.Context, tr Tracer, query string) (*Rows, error) {
	stmt, err := db.PrepareTraced(tr, query)
	if err != nil {
		return nil, err
	}
	return stmt.Query(ctx)
}

// Row is the result of QueryRow: a single-row wrapper whose Scan
// reports ErrNoRows when the query matched nothing.
type Row struct {
	vals []Value
	cols []string
	err  error
}

// NewRow wraps one materialized row — used by remote clients
// (dsdb/client) to mirror QueryRow semantics exactly.
func NewRow(vals []Value, cols []string) *Row { return &Row{vals: vals, cols: cols} }

// NewErrRow wraps a deferred query error in a Row (see NewRow).
func NewErrRow(err error) *Row { return &Row{err: err} }

// Scan copies the row into dest (see Rows.Scan).
func (r *Row) Scan(dest ...any) error {
	if r.err != nil {
		return r.err
	}
	return scanRow(r.vals, r.cols, dest)
}

// Err returns the deferred query error, if any.
func (r *Row) Err() error { return r.err }

// QueryRow executes a query expected to return at most one row; the
// error (including ErrNoRows) is deferred until Scan.
func (db *DB) QueryRow(ctx context.Context, query string) *Row {
	rows, err := db.Query(ctx, query)
	if err != nil {
		return &Row{err: err}
	}
	defer rows.Close()
	if !rows.Next() {
		if err := rows.Err(); err != nil {
			return &Row{err: err}
		}
		return &Row{err: ErrNoRows}
	}
	return &Row{vals: rows.Values(), cols: rows.Columns()}
}

// Result is a fully materialized result set.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Exec compiles, executes and materializes a query in one call — the
// convenience path for workload drivers that don't need streaming.
func (db *DB) Exec(ctx context.Context, query string) (*Result, error) {
	rows, err := db.Query(ctx, query)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &Result{Columns: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Values())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, nil
}
