package dsdb_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/dsdb"
	"repro/dsdb/obs"
)

// benchQuery is an aggregation over an unindexed lineitem predicate,
// so it plans a (parallelizable) sequential scan with per-tuple
// qualifier and arithmetic work — the shape partition parallelism is
// for.
const benchQuery = `select sum(l_extendedprice * l_discount), count(*)
	from lineitem where l_quantity < 24 and l_discount > 0.02`

// benchOpen loads one shared database across all benchmarks (loading
// dominates otherwise) and retunes its parallelism per caller.
var benchDB = sync.OnceValues(func() (*dsdb.DB, error) {
	return dsdb.Open(dsdb.WithTPCD(0.01))
})

func benchOpen(b *testing.B, parallelism int) *dsdb.DB {
	b.Helper()
	db, err := benchDB()
	if err != nil {
		b.Fatal(err)
	}
	db.SetParallelism(parallelism)
	return db
}

// benchmarkQuery runs the scan-heavy query end to end (compile,
// execute, materialize) at one parallelism degree. Compare with
// benchstat:
//
//	go test ./dsdb -bench 'BenchmarkQuery' -count 10 | benchstat -
func benchmarkQuery(b *testing.B, parallelism int) {
	db := benchOpen(b, parallelism)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(context.Background(), benchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
}

func BenchmarkQuerySerial(b *testing.B) { benchmarkQuery(b, 1) }

// BenchmarkQueryAnalyze executes the same query under EXPLAIN ANALYZE.
// The delta against BenchmarkQuerySerial is the per-operator
// instrumentation cost — paid only when analyzing, since the ordinary
// path plans no Instrumented wrappers and keeps its tracer chain
// unchanged (see executor.SetAnalyze).
func BenchmarkQueryAnalyze(b *testing.B) {
	db := benchOpen(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Query(context.Background(), "explain analyze "+benchQuery)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		rows.Close()
		if n < 2 {
			b.Fatalf("plan has %d lines", n)
		}
	}
}

// benchCachedDB is the result-cached twin of benchDB (its own
// database: caching changes execution, so the uncached benchmarks
// must not share it).
var benchCachedDB = sync.OnceValues(func() (*dsdb.DB, error) {
	return dsdb.Open(dsdb.WithTPCD(0.01), dsdb.WithResultCache(64<<20))
})

// BenchmarkQueryCached runs the same scan-heavy query with the result
// cache enabled: after the first fill, every iteration is a cache hit
// — the repeated-DSS-query serving path. Compare against
// BenchmarkQuerySerial for the hit-vs-execute gap.
func BenchmarkQueryCached(b *testing.B) {
	db, err := benchCachedDB()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), benchQuery); err != nil {
		b.Fatal(err) // fill pass: iterations below measure hits
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(context.Background(), benchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
	b.StopTimer()
	if st, ok := db.ResultCacheStats(); !ok || st.Hits == 0 {
		b.Fatalf("benchmark never hit the cache: %+v", st)
	}
}

// benchCachedNoObsDB is BenchmarkQueryCached's tracing-disabled twin:
// identical configuration except the observability tracer is off, so
// the pair bounds the per-query tracing overhead on the cheapest path
// (a cache hit, where span bookkeeping is the largest relative cost).
var benchCachedNoObsDB = sync.OnceValues(func() (*dsdb.DB, error) {
	return dsdb.Open(dsdb.WithTPCD(0.01), dsdb.WithResultCache(64<<20),
		dsdb.WithObservability(obs.Config{Disabled: true}))
})

// BenchmarkQueryCachedNoObs is the no-tracing baseline for
// BenchmarkQueryCached; the delta between the two is the span cost on
// a cached hit (budget: within 10%).
func BenchmarkQueryCachedNoObs(b *testing.B) {
	db, err := benchCachedNoObsDB()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), benchQuery); err != nil {
		b.Fatal(err) // fill pass: iterations below measure hits
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(context.Background(), benchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
	b.StopTimer()
	if st, ok := db.ResultCacheStats(); !ok || st.Hits == 0 {
		b.Fatalf("benchmark never hit the cache: %+v", st)
	}
}

func BenchmarkQueryParallel2(b *testing.B) { benchmarkQuery(b, 2) }

func BenchmarkQueryParallel4(b *testing.B) { benchmarkQuery(b, 4) }

func BenchmarkQueryParallel8(b *testing.B) { benchmarkQuery(b, 8) }

// BenchmarkConcurrentSessions measures whole-DB throughput with one
// session per CPU issuing the mixed TPC-D workload (b.RunParallel
// reports ns per completed query).
func BenchmarkConcurrentSessions(b *testing.B) {
	db := benchOpen(b, 1)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			n := concurrencyQueries[i%len(concurrencyQueries)]
			i++
			q, _ := dsdb.TPCDQuery(n)
			if _, err := db.Exec(context.Background(), q); err != nil {
				b.Error(fmt.Errorf("Q%d: %w", n, err))
				return
			}
		}
	})
}
