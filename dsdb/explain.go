package dsdb

import (
	"context"
	"time"

	"repro/dsdb/obs"
	"repro/dsdb/qcache"
	"repro/internal/db/executor"
	"repro/internal/db/sql"
	"repro/internal/db/value"
)

// ExplainColumn is the single output column of EXPLAIN result sets:
// one plan line per row, flowing through Rows / the wire protocol as
// ordinary string rows.
const ExplainColumn = "plan"

// explainQuery serves EXPLAIN and EXPLAIN ANALYZE: compile the
// statement, and either render the plan shape (EXPLAIN) or execute it
// under per-operator instrumentation and render the plan with actual
// rows/loops/time/buffer counters (EXPLAIN ANALYZE). The result is a
// materialized Rows — the same serving shape as a result-cache hit —
// so server, wire protocol and clients need no new frames.
//
// EXPLAIN never touches the result cache: the plan must reflect this
// compilation, and an ANALYZE execution's row copies would pollute the
// cache with results nobody asked for.
func (db *DB) explainQuery(ctx context.Context, tr Tracer, sp *obs.Span, mode sql.ExplainMode, query string) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	db.mu.Lock()
	par := db.parallelism
	db.mu.Unlock()
	// Shared engine latch for compile and (for ANALYZE) the whole
	// execution, exactly like an ordinary query.
	release := db.eng.BeginRead()
	planStart := time.Now()
	c := executor.NewCtx(tr)
	c.Parallelism = par
	if par > 1 {
		c.WorkerTracer = db.workerCounts
	}
	cq, err := sql.CompileQuery(db.eng, c, query)
	sp.Add(obs.StagePlan, time.Since(planStart))
	if err != nil {
		release()
		sp.SetErr(err)
		sp.End()
		return nil, err
	}
	if mode == sql.ExplainPlan {
		lines := executor.ExplainLines(cq.Plan, false)
		release()
		return explainRows(ctx, sp, lines), nil
	}

	// EXPLAIN ANALYZE: wrap every operator, run the plan to
	// exhaustion, then render the tree with its counters. The plan was
	// compiled fresh above, so Instrument's in-place rewiring cannot
	// leak wrappers into any shared prepared statement.
	root := executor.Instrument(c, cq.Plan)
	c.Interrupt = ctx.Err
	c.SetSpan(sp)
	c.SetAnalyze(true)
	execStart := time.Now()
	err = drainPlan(root)
	sp.Add(obs.StageExec, time.Since(execStart))
	c.SetAnalyze(false)
	c.SetSpan(nil)
	c.Interrupt = nil
	release()
	if err != nil {
		sp.SetErr(err)
		sp.End()
		return nil, err
	}
	sp.SetTopOp(executor.TopOp(root))
	return explainRows(ctx, sp, executor.ExplainLines(root, true)), nil
}

// drainPlan opens a plan, pulls it to exhaustion and closes it,
// keeping the first error.
func drainPlan(root executor.Node) error {
	if err := root.Open(); err != nil {
		root.Close()
		return err
	}
	for {
		_, ok, err := root.Next()
		if err != nil {
			root.Close()
			return err
		}
		if !ok {
			break
		}
	}
	return root.Close()
}

// explainRows wraps rendered plan lines as a materialized result set
// (one "plan" column, one line per row). The Rows owns the span and
// ends it on close, like any other result set.
func explainRows(ctx context.Context, sp *obs.Span, lines []string) *Rows {
	rows := make([][]Value, len(lines))
	for i, l := range lines {
		rows[i] = []Value{value.NewStr(l)}
	}
	res := &qcache.Result{Columns: []string{ExplainColumn}, Rows: rows}
	return &Rows{ctx: ctx, cols: res.Columns, cres: res, span: sp}
}
