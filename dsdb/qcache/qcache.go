// Package qcache is the query result cache of the dsdb family: a
// memory-bounded, LRU-evicting map from canonicalized SQL text to
// fully materialized result sets, kept consistent by per-table write
// epochs. The paper's premise is that decision-support workloads
// re-execute a small set of heavy queries; the cheapest instruction
// fetch is the one never issued, and a cache hit answers a repeated
// query without running the executor at all.
//
// Consistency model: every entry remembers the write epoch of each
// table its query reads, captured while the filling execution held the
// engine's shared latch (writers excluded, so the snapshot is
// consistent by construction). Get revalidates those epochs against
// the engine's current ones — any Insert or DDL on a referenced table
// bumps its epoch, so a stale entry can never be served; it is dropped
// on first touch and refilled by the next miss.
//
// The cache itself is storage-agnostic and engine-agnostic: keys are
// strings, validation is a callback, and byte accounting is the
// deterministic EntryBytes model — which is also what the eviction
// tests pin. Two optional policies refine what is kept: an admission
// threshold (Config.MinCost) refuses results whose first execution was
// cheaper than the threshold, so sub-millisecond queries cannot evict
// expensive ones, and a TTL (Config.TTL) expires entries by wall clock
// for workloads whose answers go stale even when no table changes.
// dsdb.Open(dsdb.WithResultCache(n)) owns the only instance most
// programs need; both the in-process and the served query paths share
// it.
package qcache

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/db/value"
)

// Result is one materialized result set: output column names plus
// every row, in order. Entries are shared between the cache and all
// readers serving from it — treat a Result obtained from Get as
// immutable (dsdb's Rows copies on Values/Scan, never in place).
type Result struct {
	Columns []string
	Rows    [][]value.Value
}

// Footprint is the table set a query reads, with the write epoch of
// each table observed while the filling execution ran. Tables and
// Epochs are parallel slices.
type Footprint struct {
	Tables []string
	Epochs []uint64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Gets served from the cache.
	Hits uint64
	// Misses counts Gets that found nothing servable (absent or
	// invalidated).
	Misses uint64
	// Evictions counts entries dropped to fit the byte budget.
	Evictions uint64
	// Invalidations counts entries dropped because a referenced
	// table's epoch moved.
	Invalidations uint64
	// Expirations counts entries dropped because they outlived the
	// configured TTL (each also counted as a miss by the Get that
	// found it expired).
	Expirations uint64
	// AdmissionRejects counts Puts refused by the admission policy:
	// results whose first execution was cheaper than MinCost.
	AdmissionRejects uint64
	// Entries is the current number of cached result sets.
	Entries int
	// UsedBytes and MaxBytes are the accounted footprint and the
	// configured budget.
	UsedBytes, MaxBytes int64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any Get.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one cached result set plus its LRU hook and accounting.
type entry struct {
	key    string
	fp     Footprint
	res    *Result
	size   int64
	stored time.Time // fill time, for TTL expiry
	elem   *list.Element
}

// Config selects the cache's budget and policies.
type Config struct {
	// MaxBytes bounds the accounted result data (see EntryBytes). A
	// non-positive budget yields a cache that stores nothing but still
	// counts misses.
	MaxBytes int64
	// TTL, when positive, expires entries this long after they were
	// filled: an expired entry is dropped on first touch and its Get
	// counts as a miss — for workloads whose answers go stale by wall
	// clock even though no tracked table changed.
	TTL time.Duration
	// MinCost, when positive, is the admission threshold: a result
	// whose first execution took less than this is not cached at all.
	// Sub-millisecond queries are cheaper to re-run than the cache
	// space they would steal from expensive ones.
	MinCost time.Duration
}

// Cache is a memory-bounded query result cache, safe for concurrent
// use.
type Cache struct {
	mu      sync.Mutex
	cfg     Config
	used    int64
	lru     *list.List // front = most recently used; values are *entry
	entries map[string]*entry
	now     func() time.Time

	hits, misses, evictions, invalidations uint64
	expirations, admissionRejects          uint64
}

// New returns a cache bounded to maxBytes with no TTL and no admission
// threshold (every result is cacheable).
func New(maxBytes int64) *Cache {
	return NewWith(Config{MaxBytes: maxBytes})
}

// NewWith returns a cache with explicit policies.
func NewWith(cfg Config) *Cache {
	return &Cache{cfg: cfg, lru: list.New(), entries: make(map[string]*entry), now: time.Now}
}

// SetNowFunc replaces the cache's clock — the injectable time source
// TTL tests and simulations use. Call before concurrent use.
func (c *Cache) SetNowFunc(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// MaxBytes returns the configured byte budget.
func (c *Cache) MaxBytes() int64 { return c.cfg.MaxBytes }

// Get returns the cached result for key if one is present and still
// valid: the entry must be younger than the TTL (when one is set) and
// cur is consulted for every table of the entry's footprint, serving
// only if each epoch is unchanged. A stale or expired entry is removed
// (counted as an invalidation or expiration) and reported as a miss.
// The returned Result is shared — do not mutate it.
func (c *Cache) Get(key string, cur func(table string) uint64) (*Result, bool) {
	// cur and c.now are caller-supplied callbacks; running either under
	// c.mu invites deadlock if the callback re-enters the cache (the
	// PR 4 bug class, now enforced statically by dsdblint's tracerlock).
	// So the clock is sampled before locking and epoch validation runs
	// between two critical sections, with an identity recheck in the
	// second one to tolerate a racing remove.
	start := c.now()
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	if c.cfg.TTL > 0 && start.Sub(e.stored) >= c.cfg.TTL {
		c.expirations++
		c.remove(e)
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	fp, res := e.fp, e.res
	c.mu.Unlock()

	stale := false
	for i, t := range fp.Tables {
		if cur(t) != fp.Epochs[i] {
			stale = true
			break
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if stale {
		if c.entries[key] == e {
			c.invalidations++
			c.remove(e)
		}
		c.misses++
		return nil, false
	}
	c.hits++
	if c.entries[key] == e {
		c.lru.MoveToFront(e.elem)
	}
	return res, true
}

// Put inserts (or replaces) the result for key, evicting
// least-recently-used entries until the budget holds. cost is the wall
// time the filling execution took: under an admission threshold
// (Config.MinCost), a result cheaper than the threshold is refused
// before it can evict anything — pass a negative cost to bypass the
// policy. An entry larger than the whole budget is likewise rejected
// (returns false): the cache never overcommits. len(fp.Tables) must
// equal len(fp.Epochs).
func (c *Cache) Put(key string, fp Footprint, res *Result, cost time.Duration) bool {
	size := EntryBytes(key, fp, res)
	// The injectable clock is user code: sample it before taking c.mu
	// (SetNowFunc's contract already requires it be set before
	// concurrent use).
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.MinCost > 0 && cost >= 0 && cost < c.cfg.MinCost {
		c.admissionRejects++
		return false
	}
	if size > c.cfg.MaxBytes {
		return false
	}
	if old, ok := c.entries[key]; ok {
		c.remove(old)
	}
	for c.used+size > c.cfg.MaxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.evictions++
		c.remove(back.Value.(*entry))
	}
	e := &entry{key: key, fp: fp, res: res, size: size, stored: now}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.used += size
	return true
}

// Invalidate drops every entry whose footprint includes the table —
// a coarse hook for callers that mutate tables outside the epoch
// protocol. Returns the number of entries dropped.
func (c *Cache) Invalidate(table string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		for _, t := range e.fp.Tables {
			if t == table {
				c.remove(e)
				c.invalidations++
				n++
				break
			}
		}
	}
	return n
}

// Clear drops every entry.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[string]*entry)
	c.used = 0
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:             c.hits,
		Misses:           c.misses,
		Evictions:        c.evictions,
		Invalidations:    c.invalidations,
		Expirations:      c.expirations,
		AdmissionRejects: c.admissionRejects,
		Entries:          len(c.entries),
		UsedBytes:        c.used,
		MaxBytes:         c.cfg.MaxBytes,
	}
}

// remove unlinks an entry; the caller holds c.mu.
func (c *Cache) remove(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.used -= e.size
}

// Accounting model: deliberately simple and deterministic, so tests
// can pin the budget exactly. Each value costs a fixed overhead plus
// its string payload; rows and the entry itself add slice/bookkeeping
// overheads. The constants approximate Go's in-memory cost (a
// value.Value is a 40-byte struct; slice headers are 24 bytes) — the
// point is a stable, slightly conservative bound, not byte-perfect
// heap measurement.
const (
	valueOverhead = 48
	sliceOverhead = 24
	entryOverhead = 160
)

// ValueBytes returns the accounted size of one datum.
func ValueBytes(v value.Value) int64 { return valueOverhead + int64(len(v.S)) }

// RowBytes returns the accounted size of one row.
func RowBytes(row []value.Value) int64 {
	n := int64(sliceOverhead)
	for _, v := range row {
		n += ValueBytes(v)
	}
	return n
}

// ResultBytes returns the accounted size of a result set (columns and
// rows, without the entry bookkeeping).
func ResultBytes(res *Result) int64 {
	n := int64(sliceOverhead)
	for _, col := range res.Columns {
		n += sliceOverhead + int64(len(col))
	}
	for _, row := range res.Rows {
		n += RowBytes(row)
	}
	return n
}

// EntryBytes returns the accounted size of a whole cache entry: key,
// footprint and result. This is the unit the budget is enforced in.
func EntryBytes(key string, fp Footprint, res *Result) int64 {
	n := entryOverhead + int64(len(key)) + ResultBytes(res)
	for _, t := range fp.Tables {
		n += 8 + sliceOverhead + int64(len(t))
	}
	return n
}
