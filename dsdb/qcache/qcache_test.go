package qcache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/db/value"
)

// res builds a result of n rows × (int, str) columns with a payload
// string of the given length, so entry sizes are easy to predict.
func res(n, strLen int) *Result {
	r := &Result{Columns: []string{"a", "b"}}
	for i := 0; i < n; i++ {
		r.Rows = append(r.Rows, []value.Value{
			value.NewInt(int64(i)),
			value.NewStr(string(make([]byte, strLen))),
		})
	}
	return r
}

func fp(epochs map[string]uint64, tables ...string) Footprint {
	f := Footprint{Tables: tables}
	for _, t := range tables {
		f.Epochs = append(f.Epochs, epochs[t])
	}
	return f
}

func epochFn(epochs map[string]uint64) func(string) uint64 {
	return func(t string) uint64 { return epochs[t] }
}

func TestGetPutHitMiss(t *testing.T) {
	epochs := map[string]uint64{"orders": 3}
	c := New(1 << 20)
	if _, ok := c.Get("q1", epochFn(epochs)); ok {
		t.Fatal("empty cache returned a hit")
	}
	r := res(5, 4)
	if !c.Put("q1", fp(epochs, "orders"), r, -1) {
		t.Fatal("Put rejected a small entry")
	}
	got, ok := c.Get("q1", epochFn(epochs))
	if !ok || got != r {
		t.Fatalf("Get = %v, %v; want the stored result", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UsedBytes != EntryBytes("q1", fp(epochs, "orders"), r) {
		t.Fatalf("UsedBytes = %d, want EntryBytes = %d", st.UsedBytes,
			EntryBytes("q1", fp(epochs, "orders"), r))
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %g, want 0.5", got)
	}
}

func TestEpochInvalidation(t *testing.T) {
	epochs := map[string]uint64{"orders": 3, "lineitem": 7}
	c := New(1 << 20)
	c.Put("q1", fp(epochs, "orders", "lineitem"), res(2, 0), -1)
	if _, ok := c.Get("q1", epochFn(epochs)); !ok {
		t.Fatal("fresh entry not served")
	}
	// A write to either referenced table kills the entry on next touch.
	epochs["lineitem"]++
	if _, ok := c.Get("q1", epochFn(epochs)); ok {
		t.Fatal("stale entry served after epoch bump")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("stats after invalidation = %+v", st)
	}
	// And it stays gone (miss, not resurrect).
	if _, ok := c.Get("q1", epochFn(epochs)); ok {
		t.Fatal("invalidated entry resurrected")
	}
}

// TestEvictionPinsByteBudget pins the accounting model: the cache
// never holds more than MaxBytes of accounted entries, UsedBytes is
// exactly the sum of the live entries' EntryBytes, and eviction is
// LRU order.
func TestEvictionPinsByteBudget(t *testing.T) {
	epochs := map[string]uint64{"t": 1}
	f := fp(epochs, "t")
	one := EntryBytes("k0", f, res(10, 8))
	// Room for exactly 3 entries (keys are the same length, so every
	// entry has identical accounted size).
	c := New(3 * one)
	for i := 0; i < 3; i++ {
		if !c.Put(fmt.Sprintf("k%d", i), f, res(10, 8), -1) {
			t.Fatalf("Put k%d rejected", i)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.UsedBytes != 3*one {
		t.Fatalf("full cache: %+v, want 3 entries, %d bytes", st, 3*one)
	}
	// Touch k0 so k1 is the LRU victim.
	if _, ok := c.Get("k0", epochFn(epochs)); !ok {
		t.Fatal("k0 missing")
	}
	if !c.Put("k3", f, res(10, 8), -1) {
		t.Fatal("Put k3 rejected")
	}
	st = c.Stats()
	if st.Entries != 3 || st.UsedBytes != 3*one || st.Evictions != 1 {
		t.Fatalf("after overflow: %+v", st)
	}
	if st.UsedBytes > st.MaxBytes {
		t.Fatalf("budget exceeded: used %d > max %d", st.UsedBytes, st.MaxBytes)
	}
	if _, ok := c.Get("k1", epochFn(epochs)); ok {
		t.Fatal("k1 should have been the LRU victim")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k, epochFn(epochs)); !ok {
			t.Fatalf("%s unexpectedly evicted", k)
		}
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	epochs := map[string]uint64{"t": 1}
	f := fp(epochs, "t")
	big := res(100, 100)
	c := New(EntryBytes("k", f, big) - 1)
	if c.Put("k", f, big, -1) {
		t.Fatal("entry larger than the whole budget must be rejected")
	}
	if st := c.Stats(); st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("rejected Put left state: %+v", st)
	}
}

func TestPutReplaceAdjustsAccounting(t *testing.T) {
	epochs := map[string]uint64{"t": 1}
	f := fp(epochs, "t")
	c := New(1 << 20)
	c.Put("k", f, res(10, 8), -1)
	small := res(1, 0)
	c.Put("k", f, small, -1)
	st := c.Stats()
	if st.Entries != 1 || st.UsedBytes != EntryBytes("k", f, small) {
		t.Fatalf("replace accounting: %+v, want %d bytes", st, EntryBytes("k", f, small))
	}
	got, ok := c.Get("k", epochFn(epochs))
	if !ok || got != small {
		t.Fatal("replace did not take")
	}
}

func TestInvalidateByTable(t *testing.T) {
	epochs := map[string]uint64{"a": 1, "b": 1}
	c := New(1 << 20)
	c.Put("qa", fp(epochs, "a"), res(1, 0), -1)
	c.Put("qab", fp(epochs, "a", "b"), res(1, 0), -1)
	c.Put("qb", fp(epochs, "b"), res(1, 0), -1)
	if n := c.Invalidate("a"); n != 2 {
		t.Fatalf("Invalidate(a) dropped %d entries, want 2", n)
	}
	if _, ok := c.Get("qb", epochFn(epochs)); !ok {
		t.Fatal("qb should have survived")
	}
	c.Clear()
	if st := c.Stats(); st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("Clear left state: %+v", st)
	}
}

func TestZeroBudgetStoresNothing(t *testing.T) {
	epochs := map[string]uint64{"t": 1}
	c := New(0)
	if c.Put("k", fp(epochs, "t"), res(1, 0), -1) {
		t.Fatal("zero-budget cache accepted an entry")
	}
	if _, ok := c.Get("k", epochFn(epochs)); ok {
		t.Fatal("zero-budget cache served an entry")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentAccess hammers one cache from many goroutines under
// -race: interleaved Get/Put/Invalidate must stay consistent (the
// budget never overshoots, counters never tear).
func TestConcurrentAccess(t *testing.T) {
	epochs := &sync.Map{}
	cur := func(table string) uint64 {
		v, _ := epochs.LoadOrStore(table, uint64(0))
		return v.(uint64)
	}
	c := New(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			table := fmt.Sprintf("t%d", g%3)
			f := Footprint{Tables: []string{table}, Epochs: []uint64{cur(table)}}
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("q%d", (g+i)%13)
				switch i % 3 {
				case 0:
					c.Put(key, f, res(2, 4), -1)
				case 1:
					c.Get(key, cur)
				default:
					if i%100 == 0 {
						c.Invalidate(table)
					} else {
						c.Get(key, cur)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.UsedBytes > st.MaxBytes || st.UsedBytes < 0 {
		t.Fatalf("budget violated: %+v", st)
	}
	if st.Entries != c.Len() {
		t.Fatalf("entry count mismatch: %+v vs %d", st, c.Len())
	}
}

// TestAdmissionPolicyCheapNeverEvictsExpensive pins the admission
// guarantee: with a MinCost threshold, results cheaper than the
// threshold are refused outright, so a stream of cheap queries can
// never push an expensive entry out of a full cache.
func TestAdmissionPolicyCheapNeverEvictsExpensive(t *testing.T) {
	epochs := map[string]uint64{"t": 1}
	f := fp(epochs, "t")
	one := EntryBytes("e0", f, res(10, 8))
	c := NewWith(Config{MaxBytes: 2 * one, MinCost: time.Millisecond})
	// Two expensive entries fill the budget exactly.
	for i := 0; i < 2; i++ {
		if !c.Put(fmt.Sprintf("e%d", i), f, res(10, 8), 5*time.Millisecond) {
			t.Fatalf("expensive e%d rejected", i)
		}
	}
	// A barrage of sub-threshold fills: every one refused, nothing
	// evicted, both expensive entries still served.
	for i := 0; i < 50; i++ {
		if c.Put(fmt.Sprintf("cheap%d", i), f, res(10, 8), 100*time.Microsecond) {
			t.Fatalf("cheap%d admitted below the threshold", i)
		}
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Fatalf("cheap fills evicted %d entries", st.Evictions)
	}
	if st.AdmissionRejects != 50 {
		t.Fatalf("AdmissionRejects = %d, want 50", st.AdmissionRejects)
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(fmt.Sprintf("e%d", i), epochFn(epochs)); !ok {
			t.Fatalf("expensive e%d gone after cheap traffic", i)
		}
	}
	// At or above the threshold, admission proceeds (and may evict).
	if !c.Put("borderline", f, res(10, 8), time.Millisecond) {
		t.Fatal("cost == MinCost must be admitted")
	}
	// A negative cost bypasses the policy (internal refills).
	if !c.Put("bypass", f, res(10, 8), -1) {
		t.Fatal("negative cost must bypass admission")
	}
}

// TestTTLExpiryCountsAsMiss drives expiry with an injected clock.
func TestTTLExpiryCountsAsMiss(t *testing.T) {
	epochs := map[string]uint64{"t": 1}
	f := fp(epochs, "t")
	base := time.Unix(1_000_000, 0)
	now := base
	c := NewWith(Config{MaxBytes: 1 << 20, TTL: time.Minute})
	c.SetNowFunc(func() time.Time { return now })
	if !c.Put("k", f, res(3, 2), -1) {
		t.Fatal("Put rejected")
	}
	// Just inside the TTL: a hit.
	now = base.Add(time.Minute - time.Nanosecond)
	if _, ok := c.Get("k", epochFn(epochs)); !ok {
		t.Fatal("entry expired before its TTL")
	}
	// At the TTL boundary: expired, dropped, counted as a miss.
	now = base.Add(time.Minute)
	if _, ok := c.Get("k", epochFn(epochs)); ok {
		t.Fatal("entry served at/after its TTL")
	}
	st := c.Stats()
	if st.Expirations != 1 || st.Misses != 1 || st.Hits != 1 || st.Entries != 0 {
		t.Fatalf("after expiry: %+v", st)
	}
	// A refill restarts the clock from the new store time.
	if !c.Put("k", f, res(3, 2), -1) {
		t.Fatal("refill rejected")
	}
	now = now.Add(30 * time.Second)
	if _, ok := c.Get("k", epochFn(epochs)); !ok {
		t.Fatal("refilled entry expired early")
	}
}
