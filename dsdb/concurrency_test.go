package dsdb_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/dsdb"
)

// concurrencySF keeps the concurrent suites fast while still spanning
// multi-page heaps on every table.
const concurrencySF = 0.001

// concurrencyQueries is the mixed workload the sessions hammer: index
// scans, sequential scans, joins, sorts and aggregation.
var concurrencyQueries = []int{3, 4, 6, 12, 14}

// serialBaseline materializes every workload query once, serially, on
// its own identically seeded database.
func serialBaseline(t *testing.T, opts ...dsdb.Option) map[int]*dsdb.Result {
	t.Helper()
	db := openTPCD(t, concurrencySF, opts...)
	defer db.Close()
	base := make(map[int]*dsdb.Result, len(concurrencyQueries))
	for _, n := range concurrencyQueries {
		q, ok := dsdb.TPCDQuery(n)
		if !ok {
			t.Fatalf("no TPC-D query %d", n)
		}
		res, err := db.Exec(context.Background(), q)
		if err != nil {
			t.Fatalf("serial Q%d: %v", n, err)
		}
		base[n] = res
	}
	return base
}

// runSession is one session's share of the mixed workload: rounds ×
// queries through rotating access paths (Exec, streaming Query, and
// Prepare-execute-twice), each result checked against the baseline.
func runSession(db *dsdb.DB, s, rounds int, base map[int]*dsdb.Result) error {
	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		for qi, n := range concurrencyQueries {
			q, _ := dsdb.TPCDQuery(n)
			var res *dsdb.Result
			var err error
			switch (s + r + qi) % 3 {
			case 0: // materializing Exec
				res, err = db.Exec(ctx, q)
			case 1: // streaming Query
				res, err = materialize(db.Query(ctx, q))
			default: // Prepare, then execute the plan twice
				var stmt *dsdb.Stmt
				stmt, err = db.Prepare(q)
				if err == nil {
					if res, err = materialize(stmt.Query(ctx)); err == nil {
						res, err = materialize(stmt.Query(ctx))
					}
				}
			}
			if err != nil {
				return fmt.Errorf("session %d round %d Q%d: %w", s, r, n, err)
			}
			if !reflect.DeepEqual(res, base[n]) {
				return fmt.Errorf("session %d round %d Q%d: result differs from serial baseline", s, r, n)
			}
		}
	}
	return nil
}

// TestConcurrentSessionsMatchSerial is the tentpole suite: N
// goroutines × M rounds of mixed Query/Exec/Prepare against one DB,
// asserting every concurrent result set equals the serial baseline
// and that the buffer hit/miss counters lose no updates (the totals
// match an identical twin database running the exact same workload
// serially).
func TestConcurrentSessionsMatchSerial(t *testing.T) {
	const sessions, rounds = 8, 3
	base := serialBaseline(t)

	// The serially exercised twin: same seed, same executions, one
	// session at a time.
	serialDB := openTPCD(t, concurrencySF)
	defer serialDB.Close()
	for s := 0; s < sessions; s++ {
		if err := runSession(serialDB, s, rounds, base); err != nil {
			t.Fatalf("serial twin: %v", err)
		}
	}
	serialHits, serialMisses := serialDB.Engine().Buf.Stats()

	db := openTPCD(t, concurrencySF)
	defer db.Close()
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = runSession(db, s, rounds, base)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	hits, misses := db.Engine().Buf.Stats()
	if hits != serialHits || misses != serialMisses {
		t.Fatalf("buffer counters lost updates under concurrency: got %d hits / %d misses, serial twin %d / %d",
			hits, misses, serialHits, serialMisses)
	}
}

// materialize drains a Rows into a Result, mirroring Exec, so the
// three access paths compare against one baseline shape.
func materialize(rows *dsdb.Rows, err error) (*dsdb.Result, error) {
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &dsdb.Result{Columns: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Values())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// TestParallelScanMatchesSerial is the acceptance check: every TPC-D
// query under WithParallelism(4) returns exactly the serial result —
// same rows, same order — because partitions merge in page order.
func TestParallelScanMatchesSerial(t *testing.T) {
	serial := openTPCD(t, concurrencySF)
	defer serial.Close()
	par := openTPCD(t, concurrencySF, dsdb.WithParallelism(4))
	defer par.Close()
	for _, n := range dsdb.TPCDQueryNumbers() {
		q, _ := dsdb.TPCDQuery(n)
		want, err := serial.Exec(context.Background(), q)
		if err != nil {
			t.Fatalf("serial Q%d: %v", n, err)
		}
		got, err := par.Exec(context.Background(), q)
		if err != nil {
			t.Fatalf("parallel Q%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Q%d: parallel result differs from serial (%d vs %d rows)",
				n, len(got.Rows), len(want.Rows))
		}
	}
	// A cartesian join rescans its inner per outer tuple; the planner
	// must serialize the rescanned side, and results must still match.
	cross := "select count(*) from orders, region"
	want, err := serial.Exec(context.Background(), cross)
	if err != nil {
		t.Fatalf("serial cross join: %v", err)
	}
	got, err := par.Exec(context.Background(), cross)
	if err != nil {
		t.Fatalf("parallel cross join: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cross join: parallel result differs from serial")
	}
}

// TestConcurrentParallelQueries runs parallel-scan plans from many
// sessions at once: partition workers multiply the goroutines hitting
// the buffer pool.
func TestConcurrentParallelQueries(t *testing.T) {
	base := serialBaseline(t)
	db := openTPCD(t, concurrencySF, dsdb.WithParallelism(4))
	defer db.Close()
	const sessions = 6
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			n := concurrencyQueries[s%len(concurrencyQueries)]
			q, _ := dsdb.TPCDQuery(n)
			res, err := db.Exec(context.Background(), q)
			if err != nil {
				errs[s] = fmt.Errorf("session %d Q%d: %w", s, n, err)
				return
			}
			if !reflect.DeepEqual(res, base[n]) {
				errs[s] = fmt.Errorf("session %d Q%d: result differs from serial baseline", s, n)
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelScanEarlyClose exercises worker teardown: a LIMIT plan
// abandons the parallel scan after a prefix; Close must stop the
// workers without leaking or deadlocking (the -race build would also
// flag unsynchronized teardown).
func TestParallelScanEarlyClose(t *testing.T) {
	db := openTPCD(t, concurrencySF, dsdb.WithParallelism(8))
	defer db.Close()
	for i := 0; i < 5; i++ {
		rows, err := db.Query(context.Background(), "select l_orderkey from lineitem")
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatal("expected at least one row")
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("early Close: %v", err)
		}
	}
}

// TestConcurrentInsertsAndQueries interleaves writers (exclusive
// engine latch) with readers: no update may be lost and every read
// must see a consistent heap.
func TestConcurrentInsertsAndQueries(t *testing.T) {
	db := openTPCD(t, concurrencySF)
	defer db.Close()
	if err := db.CreateTable("audit", dsdb.Col("a_id", dsdb.Int), dsdb.Col("a_note", dsdb.Str)); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter, readers = 4, 200, 4
	var wg sync.WaitGroup
	errs := make([]error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				if err := db.Insert("audit", dsdb.NewInt(id), dsdb.NewStr("row")); err != nil {
					errs[w] = fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := db.Exec(context.Background(), "select count(*) from audit")
				if err != nil {
					errs[writers+r] = fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if len(res.Rows) != 1 {
					errs[writers+r] = fmt.Errorf("reader %d: got %d rows", r, len(res.Rows))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	var n int64
	if err := db.QueryRow(context.Background(), "select count(*) from audit").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("lost inserts: count = %d, want %d", n, writers*perWriter)
	}
	if db.NumRows("audit") != writers*perWriter {
		t.Fatalf("NumRows = %d, want %d", db.NumRows("audit"), writers*perWriter)
	}
}

// TestStmtConcurrentMisuseErrs shares one Stmt between goroutines —
// documented misuse that must degrade to ErrStmtBusy, never a race or
// a corrupted execution.
func TestStmtConcurrentMisuseErrs(t *testing.T) {
	db := openTPCD(t, concurrencySF)
	defer db.Close()
	q, _ := dsdb.TPCDQuery(6)
	stmt, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	const attempts = 8
	var wg sync.WaitGroup
	var okCount, busyCount int
	var mu sync.Mutex
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := materialize(stmt.Query(context.Background()))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && len(res.Rows) == 1:
				okCount++
			case errors.Is(err, dsdb.ErrStmtBusy):
				busyCount++
			default:
				t.Errorf("unexpected outcome: res=%v err=%v", res, err)
			}
		}()
	}
	wg.Wait()
	if okCount == 0 {
		t.Fatalf("no execution succeeded (%d busy)", busyCount)
	}
	if okCount+busyCount != attempts {
		t.Fatalf("ok=%d busy=%d, want %d total", okCount, busyCount, attempts)
	}
}

// TestNestedQueryWithQueuedWriter regression-tests the latch policy:
// a session iterating one result set issues a nested query per row
// while another goroutine's Insert is queued on the exclusive latch.
// A writer-preferring lock (sync.RWMutex) deadlocks here; the
// engine's reader-preferring latch must let the nested reads through
// and admit the writer once the outer Rows closes.
func TestNestedQueryWithQueuedWriter(t *testing.T) {
	db := openTPCD(t, concurrencySF)
	defer db.Close()
	if err := db.CreateTable("nlog", dsdb.Col("n_id", dsdb.Int)); err != nil {
		t.Fatal(err)
	}

	rows, err := db.Query(context.Background(), "select o_orderkey from orders")
	if err != nil {
		t.Fatal(err)
	}
	inserted := make(chan error, 1)
	go func() {
		// Queued behind the open Rows until it closes.
		inserted <- db.Insert("nlog", dsdb.NewInt(1))
	}()
	for i := 0; i < 5 && rows.Next(); i++ {
		var key int64
		if err := rows.Scan(&key); err != nil {
			t.Fatal(err)
		}
		// The nested per-row query: must not block behind the queued writer.
		var cnt int64
		if err := db.QueryRow(context.Background(),
			"select count(*) from lineitem where l_orderkey = "+fmt.Sprint(key)).Scan(&cnt); err != nil {
			t.Fatalf("nested query: %v", err)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-inserted; err != nil {
		t.Fatalf("queued insert: %v", err)
	}
	if got := db.NumRows("nlog"); got != 1 {
		t.Fatalf("NumRows(nlog) = %d, want 1", got)
	}
}

// TestFlushDuringInserts regression-tests Close/Flush vs writers:
// flushing dirty pages while inserts mutate frames must synchronize
// on the engine latch (a missing latch shows up under -race as a
// frame-byte read/write race).
func TestFlushDuringInserts(t *testing.T) {
	db := openTPCD(t, concurrencySF)
	defer db.Close()
	if err := db.CreateTable("flog", dsdb.Col("f_id", dsdb.Int), dsdb.Col("f_note", dsdb.Str)); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter, flushes = 3, 150, 30
	var wg sync.WaitGroup
	errs := make([]error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := db.Insert("flog", dsdb.NewInt(int64(w*perWriter+i)), dsdb.NewStr("x")); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < flushes; i++ {
			if err := db.Close(); err != nil { // Close = flush all dirty pages
				errs[writers] = err
				return
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := db.NumRows("flog"); got != writers*perWriter {
		t.Fatalf("NumRows = %d, want %d", got, writers*perWriter)
	}
}

// TestWorkerProbeEventsAccounting: parallel-scan workers run outside
// the session trace but their kernel events must land (exactly, no
// lost updates) in the DB's shared counting tracer; serial plans must
// leave it untouched.
func TestWorkerProbeEventsAccounting(t *testing.T) {
	serial := openTPCD(t, concurrencySF)
	defer serial.Close()
	q := "select count(*) from lineitem where l_quantity < 24"
	if _, err := serial.Exec(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if got := serial.WorkerProbeEvents(); got != 0 {
		t.Fatalf("serial plan emitted %d worker probe events, want 0", got)
	}

	par := openTPCD(t, concurrencySF, dsdb.WithParallelism(4))
	defer par.Close()
	if got := par.WorkerProbeEvents(); got != 0 {
		t.Fatalf("preload emitted %d worker probe events, want 0", got)
	}
	if _, err := par.Exec(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	once := par.WorkerProbeEvents()
	if once == 0 {
		t.Fatal("parallel scan emitted no worker probe events")
	}
	// Concurrent parallel queries accumulate without losing counts:
	// the per-execution event total is deterministic, so K more
	// executions add exactly K×once.
	const k = 4
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := par.Exec(context.Background(), q); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got, want := par.WorkerProbeEvents(), (k+1)*once; got != want {
		t.Fatalf("worker probe events = %d after %d more runs, want %d", got, k, want)
	}
}
