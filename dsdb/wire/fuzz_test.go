package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/dsdb"
)

// FuzzDecodeFrame asserts the frame decoder never panics: arbitrary
// bytes fed to ReadFrame + DecodePayload must come back as frames or
// errors, nothing else. Malformed lengths and truncated frames must
// error (a frame claiming more content than the stream holds can never
// "succeed" by reading short). The seed corpus covers every encodable
// frame kind plus the classic trip-ups: oversize length prefixes,
// truncated payloads, unknown kinds and tags, and multi-frame streams
// cut mid-frame.
func FuzzDecodeFrame(f *testing.F) {
	frame := func(k Kind, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, k, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	seeds := [][]byte{
		{},
		{0x00},
		{0x00, 0x00, 0x00, 0x00},       // zero-length frame
		{0xff, 0xff, 0xff, 0xff, 0x01}, // oversize length prefix
		{0x00, 0x00, 0x00, 0x05, 0x03}, // claims 5 bytes, stream has 1
		frame(KindHello, EncodeHello(Hello{Version: ProtocolVersion})),
		frame(KindHelloOK, EncodeHelloOK(HelloOK{Version: 1, SessionID: 9})),
		frame(KindQuery, EncodeQuery(Query{Label: "train-Q3", SQL: "select sum(l_extendedprice) from lineitem"})),
		frame(KindPrepare, EncodePrepare(Prepare{SQL: "select * from part where p_size = 15"})),
		frame(KindPrepareOK, EncodePrepareOK(PrepareOK{StmtID: 1, Columns: []string{"a", "b", "c"}})),
		frame(KindQueryStmt, EncodeQueryStmt(QueryStmt{StmtID: 1, Label: "s2-test-Q17"})),
		frame(KindCloseStmt, EncodeCloseStmt(CloseStmt{StmtID: 1})),
		frame(KindRowHeader, EncodeRowHeader(RowHeader{Columns: []string{"n_name", "revenue"}})),
		frame(KindRowBatch, EncodeRowBatch(RowBatch{Rows: [][]dsdb.Value{
			{dsdb.NewInt(1), dsdb.NewFloat(2.5), dsdb.NewStr("x"), dsdb.NewNull()},
			{dsdb.NewDate(9131), dsdb.Value{T: dsdb.Bool, I: 1}},
		}})),
		frame(KindDone, EncodeDone(Done{RowCount: 1 << 40})),
		frame(KindError, EncodeError(ErrorFrame{Code: CodeCancelled, Message: "context canceled"})),
		frame(KindCancel, nil),
		frame(KindQuit, nil),
		frame(KindStats, nil),
		frame(KindStatsResult, EncodeStats(Stats{Pairs: []StatPair{
			{Name: "conns_active", Value: 2}, {Name: "bytes_written", Value: 1 << 40}}})),
		frame(KindStatsResult, []byte{0xff, 0xff}), // claims 65535 pairs, provides none
		frame(0x7f, []byte("unknown kind payload")),
		frame(KindRowBatch, []byte{0xff, 0xff}),                                              // claims 65535 rows, provides none
		frame(KindQuery, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}), // huge uvarint
		append(frame(KindCancel, nil), frame(KindQuery, EncodeQuery(Query{SQL: "select 1"}))[:7]...),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			before := r.Len()
			fr, err := ReadFrame(r)
			if err != nil {
				// Any malformed or truncated stream must surface as an
				// error — fine — but never by claiming a clean EOF with
				// bytes still unread mid-frame.
				if err == io.EOF && before != r.Len() && r.Len() > 0 {
					t.Fatalf("io.EOF with %d bytes unread", r.Len())
				}
				return
			}
			// A parsed frame's length prefix must be internally
			// consistent with what the payload decoder consumes.
			if len(fr.Payload)+1 > MaxFrame {
				t.Fatalf("frame of %d bytes escaped the MaxFrame guard", len(fr.Payload)+1)
			}
			if _, err := DecodePayload(fr); err != nil {
				// Malformed payloads error; the stream position is still
				// frame-aligned, so keep scanning subsequent frames.
				continue
			}
		}
	})
}
