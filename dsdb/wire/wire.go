// Package wire defines the binary protocol that dsdb/server and
// dsdb/client speak over a TCP connection: a stream of length-prefixed
// frames carrying the handshake, prepared statements, queries, row
// batches, completion/error markers and cancellation.
//
// Every frame is
//
//	uint32 length (big-endian; counts kind byte + payload)
//	uint8  kind
//	[]byte payload
//
// Payloads are encoded with the Encoder/Decoder pair below: fixed-width
// big-endian integers, uvarint-prefixed strings, and tagged SQL values
// that round-trip dsdb.Value exactly (so a remote result set is
// byte-identical to a local one). The decoder never panics: malformed
// lengths, truncated frames and unknown tags all surface as errors,
// which the FuzzDecodeFrame target enforces.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/dsdb"
)

// ProtocolVersion is the protocol revision spoken by this package.
// Hello carries the client's version; the server refuses mismatches.
// Revision 2 added the Done frame's flags byte (cache-hit
// attribution). Revision 3 added the Stats/StatsResult introspection
// frames and the slow_client/idle_timeout error codes. Revision 4
// added the Done frame's query id (the server-side observability
// handle; correlates a client result with SHOW queries / SHOW slow).
const ProtocolVersion = 4

// Magic opens every Hello frame ("DSDB").
const Magic = 0x44534442

// MaxFrame bounds a frame's content length (kind + payload). Frames
// claiming more are rejected before any allocation, so a corrupt or
// hostile length prefix cannot balloon memory.
const MaxFrame = 1 << 20

// Kind enumerates the frame types.
type Kind uint8

const (
	// KindHello opens a connection (client → server): magic, version.
	KindHello Kind = 1 + iota
	// KindHelloOK accepts the handshake (server → client): version,
	// session id.
	KindHelloOK
	// KindQuery submits SQL for one-shot execution (client → server):
	// label, SQL text.
	KindQuery
	// KindPrepare compiles SQL into a server-side statement (client →
	// server): SQL text.
	KindPrepare
	// KindPrepareOK returns the statement handle (server → client):
	// statement id, column names.
	KindPrepareOK
	// KindQueryStmt executes a prepared statement (client → server):
	// statement id, label.
	KindQueryStmt
	// KindCloseStmt releases a prepared statement (client → server).
	KindCloseStmt
	// KindRowHeader opens a result stream (server → client): column
	// names.
	KindRowHeader
	// KindRowBatch carries up to BatchRows result rows (server →
	// client).
	KindRowBatch
	// KindDone closes a result stream (server → client): row count,
	// execution flags (DoneFlagCacheHit), and the server-assigned
	// query id.
	KindDone
	// KindError reports a failure (server → client): code, message. For
	// query-level errors the connection remains usable.
	KindError
	// KindCancel asks the server to cancel the in-flight query (client
	// → server). Stray cancels (query already finished) are ignored.
	KindCancel
	// KindQuit announces an orderly client disconnect.
	KindQuit
	// KindStats asks the server for its counter snapshot (client →
	// server); no payload.
	KindStats
	// KindStatsResult carries the counter snapshot (server → client):
	// ordered name/value pairs.
	KindStatsResult
)

// String names the frame kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "Hello"
	case KindHelloOK:
		return "HelloOK"
	case KindQuery:
		return "Query"
	case KindPrepare:
		return "Prepare"
	case KindPrepareOK:
		return "PrepareOK"
	case KindQueryStmt:
		return "QueryStmt"
	case KindCloseStmt:
		return "CloseStmt"
	case KindRowHeader:
		return "RowHeader"
	case KindRowBatch:
		return "RowBatch"
	case KindDone:
		return "Done"
	case KindError:
		return "Error"
	case KindCancel:
		return "Cancel"
	case KindQuit:
		return "Quit"
	case KindStats:
		return "Stats"
	case KindStatsResult:
		return "StatsResult"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// BatchRows is the maximum number of rows a server packs into one
// RowBatch frame.
const BatchRows = 64

// FrameOverhead is the wire cost of a frame beyond its payload: the
// 4-byte length prefix plus the kind byte. Servers use it to account
// bytes actually written per frame.
const FrameOverhead = 5

// Error codes carried by KindError frames.
const (
	// CodeQuery is a compile- or run-time query failure; the connection
	// survives.
	CodeQuery = "query"
	// CodeCancelled ends a result stream that was cancelled (client
	// Cancel frame or server-side deadline).
	CodeCancelled = "cancelled"
	// CodeConnLimit rejects a connection over the server's limit.
	CodeConnLimit = "conn_limit"
	// CodeShutdown rejects work on a draining server.
	CodeShutdown = "shutdown"
	// CodeProto reports a protocol violation; the server closes the
	// connection after sending it.
	CodeProto = "proto"
	// CodeSlowClient marks a connection killed because the client
	// stopped reading its result stream: a frame write exceeded the
	// server's write timeout, so the query was cancelled and the
	// socket closed (the stalled client usually observes the close,
	// not this frame — it was not reading).
	CodeSlowClient = "slow_client"
	// CodeIdle marks a session closed by the server's idle timeout:
	// no frame arrived, and no query was in flight, for longer than
	// the configured bound.
	CodeIdle = "idle_timeout"
)

// ErrFrameTooLarge rejects frames whose length prefix exceeds
// MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// Frame is one decoded frame: its kind and raw payload.
type Frame struct {
	Kind    Kind
	Payload []byte
}

// WriteFrame writes one frame. The payload may be nil.
func WriteFrame(w io.Writer, k Kind, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(k)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, enforcing the MaxFrame bound. A truncated
// stream returns an error (io.EOF only when the stream ends cleanly
// between frames).
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return Frame{}, errors.New("wire: zero-length frame")
	}
	if n > MaxFrame {
		return Frame{}, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return Frame{Kind: Kind(body[0]), Payload: body[1:]}, nil
}

// Encoder builds a frame payload.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset clears the encoder for reuse, keeping its backing array.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// I64 appends a big-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// String appends a uvarint-length-prefixed string.
func (e *Encoder) String(s string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Strings appends a u16 count followed by each string.
func (e *Encoder) Strings(ss []string) {
	e.U16(uint16(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// Value appends one tagged SQL value.
func (e *Encoder) Value(v dsdb.Value) {
	e.U8(uint8(v.T))
	switch v.T {
	case dsdb.Int, dsdb.Date, dsdb.Bool:
		e.I64(v.I)
	case dsdb.Float:
		e.U64(math.Float64bits(v.F))
	case dsdb.Str:
		e.String(v.S)
	case dsdb.Null:
		// tag only
	}
}

// Row appends one row as a u16 arity followed by each value.
func (e *Encoder) Row(vals []dsdb.Value) {
	e.U16(uint16(len(vals)))
	for _, v := range vals {
		e.Value(v)
	}
}

// Decoder reads a frame payload back. It is sticky: the first
// malformed field poisons the decoder, every later read returns zero
// values, and Err reports the failure — so decode sequences can run
// unconditionally and check once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder decodes the given payload.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Len returns the number of unread payload bytes.
func (d *Decoder) Len() int { return len(d.buf) - d.off }

// fail poisons the decoder.
func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or malformed %s at offset %d", what, d.off)
	}
}

// take returns the next n bytes, or nil after poisoning the decoder.
func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil || n < 0 || d.Len() < n {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2, "u16")
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// String reads a uvarint-length-prefixed string.
func (d *Decoder) String() string {
	if d.err != nil {
		return ""
	}
	n, sz := binary.Uvarint(d.buf[d.off:])
	if sz <= 0 || n > uint64(MaxFrame) {
		d.fail("string length")
		return ""
	}
	d.off += sz
	b := d.take(int(n), "string body")
	if b == nil {
		return ""
	}
	return string(b)
}

// Strings reads a u16 count followed by each string.
func (d *Decoder) Strings() []string {
	n := int(d.U16())
	if d.err != nil {
		return nil
	}
	out := make([]string, 0, min(n, 64))
	for i := 0; i < n; i++ {
		out = append(out, d.String())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Value reads one tagged SQL value.
func (d *Decoder) Value() dsdb.Value {
	tag := dsdb.Type(d.U8())
	if d.err != nil {
		return dsdb.Value{}
	}
	switch tag {
	case dsdb.Int, dsdb.Date, dsdb.Bool:
		return dsdb.Value{T: tag, I: d.I64()}
	case dsdb.Float:
		return dsdb.Value{T: tag, F: math.Float64frombits(d.U64())}
	case dsdb.Str:
		return dsdb.Value{T: tag, S: d.String()}
	case dsdb.Null:
		return dsdb.NewNull()
	}
	d.fail(fmt.Sprintf("value tag %d", tag))
	return dsdb.Value{}
}

// Row reads one u16-arity row of values.
func (d *Decoder) Row() []dsdb.Value {
	n := int(d.U16())
	if d.err != nil {
		return nil
	}
	out := make([]dsdb.Value, 0, min(n, 64))
	for i := 0; i < n; i++ {
		out = append(out, d.Value())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// End errors if undecoded payload bytes remain — every frame decoder
// calls it so trailing garbage is a protocol error, not silence.
func (d *Decoder) End() error {
	if d.err != nil {
		return d.err
	}
	if d.Len() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after payload", d.Len())
	}
	return nil
}

// Hello is the client half of the handshake.
type Hello struct {
	Version uint16
}

// EncodeHello builds a Hello payload.
func EncodeHello(h Hello) []byte {
	var e Encoder
	e.U32(Magic)
	e.U16(h.Version)
	return e.Bytes()
}

// DecodeHello parses a Hello payload, checking the magic.
func DecodeHello(p []byte) (Hello, error) {
	d := NewDecoder(p)
	if m := d.U32(); d.Err() == nil && m != Magic {
		return Hello{}, fmt.Errorf("wire: bad magic %#x", m)
	}
	h := Hello{Version: d.U16()}
	return h, d.End()
}

// HelloOK is the server half of the handshake.
type HelloOK struct {
	Version   uint16
	SessionID uint32
}

// EncodeHelloOK builds a HelloOK payload.
func EncodeHelloOK(h HelloOK) []byte {
	var e Encoder
	e.U16(h.Version)
	e.U32(h.SessionID)
	return e.Bytes()
}

// DecodeHelloOK parses a HelloOK payload.
func DecodeHelloOK(p []byte) (HelloOK, error) {
	d := NewDecoder(p)
	h := HelloOK{Version: d.U16(), SessionID: d.U32()}
	return h, d.End()
}

// Query is a one-shot query submission. Label is a client-chosen name
// for the execution (dsload query labels, stcpipe trace marks); it may
// be empty.
type Query struct {
	Label string
	SQL   string
}

// EncodeQuery builds a Query payload.
func EncodeQuery(q Query) []byte {
	var e Encoder
	e.String(q.Label)
	e.String(q.SQL)
	return e.Bytes()
}

// DecodeQuery parses a Query payload.
func DecodeQuery(p []byte) (Query, error) {
	d := NewDecoder(p)
	q := Query{Label: d.String(), SQL: d.String()}
	return q, d.End()
}

// Prepare asks the server to compile a statement.
type Prepare struct {
	SQL string
}

// EncodePrepare builds a Prepare payload.
func EncodePrepare(pr Prepare) []byte {
	var e Encoder
	e.String(pr.SQL)
	return e.Bytes()
}

// DecodePrepare parses a Prepare payload.
func DecodePrepare(p []byte) (Prepare, error) {
	d := NewDecoder(p)
	pr := Prepare{SQL: d.String()}
	return pr, d.End()
}

// PrepareOK returns a server-side statement handle.
type PrepareOK struct {
	StmtID  uint32
	Columns []string
}

// EncodePrepareOK builds a PrepareOK payload.
func EncodePrepareOK(pr PrepareOK) []byte {
	var e Encoder
	e.U32(pr.StmtID)
	e.Strings(pr.Columns)
	return e.Bytes()
}

// DecodePrepareOK parses a PrepareOK payload.
func DecodePrepareOK(p []byte) (PrepareOK, error) {
	d := NewDecoder(p)
	pr := PrepareOK{StmtID: d.U32(), Columns: d.Strings()}
	return pr, d.End()
}

// QueryStmt executes a prepared statement.
type QueryStmt struct {
	StmtID uint32
	Label  string
}

// EncodeQueryStmt builds a QueryStmt payload.
func EncodeQueryStmt(q QueryStmt) []byte {
	var e Encoder
	e.U32(q.StmtID)
	e.String(q.Label)
	return e.Bytes()
}

// DecodeQueryStmt parses a QueryStmt payload.
func DecodeQueryStmt(p []byte) (QueryStmt, error) {
	d := NewDecoder(p)
	q := QueryStmt{StmtID: d.U32(), Label: d.String()}
	return q, d.End()
}

// CloseStmt releases a prepared statement.
type CloseStmt struct {
	StmtID uint32
}

// EncodeCloseStmt builds a CloseStmt payload.
func EncodeCloseStmt(c CloseStmt) []byte {
	var e Encoder
	e.U32(c.StmtID)
	return e.Bytes()
}

// DecodeCloseStmt parses a CloseStmt payload.
func DecodeCloseStmt(p []byte) (CloseStmt, error) {
	d := NewDecoder(p)
	c := CloseStmt{StmtID: d.U32()}
	return c, d.End()
}

// RowHeader opens a result stream.
type RowHeader struct {
	Columns []string
}

// EncodeRowHeader builds a RowHeader payload.
func EncodeRowHeader(h RowHeader) []byte {
	var e Encoder
	e.Strings(h.Columns)
	return e.Bytes()
}

// DecodeRowHeader parses a RowHeader payload.
func DecodeRowHeader(p []byte) (RowHeader, error) {
	d := NewDecoder(p)
	h := RowHeader{Columns: d.Strings()}
	return h, d.End()
}

// RowBatch carries consecutive result rows.
type RowBatch struct {
	Rows [][]dsdb.Value
}

// EncodeRowBatch builds a RowBatch payload.
func EncodeRowBatch(b RowBatch) []byte {
	var e Encoder
	e.U16(uint16(len(b.Rows)))
	for _, r := range b.Rows {
		e.Row(r)
	}
	return e.Bytes()
}

// DecodeRowBatch parses a RowBatch payload.
func DecodeRowBatch(p []byte) (RowBatch, error) {
	d := NewDecoder(p)
	n := int(d.U16())
	if err := d.Err(); err != nil {
		return RowBatch{}, err
	}
	b := RowBatch{Rows: make([][]dsdb.Value, 0, min(n, BatchRows))}
	for i := 0; i < n; i++ {
		b.Rows = append(b.Rows, d.Row())
		if err := d.Err(); err != nil {
			return RowBatch{}, err
		}
	}
	return b, d.End()
}

// DoneFlagCacheHit marks a result stream that was served from the
// server's query result cache: the rows came from memory, no executor
// ran. Clients surface it as Rows.CacheHit; dsload attributes
// latencies with it.
const DoneFlagCacheHit uint8 = 1 << 0

// Done closes a result stream: the row count, execution flags
// attributing how the result was produced, and the server-assigned
// query id — the handle under which the execution appears in the
// server's SHOW queries / SHOW slow virtual tables and slow-query
// log.
type Done struct {
	RowCount uint64
	Flags    uint8
	QueryID  uint64
}

// EncodeDone builds a Done payload.
func EncodeDone(dn Done) []byte {
	var e Encoder
	e.U64(dn.RowCount)
	e.U8(dn.Flags)
	e.U64(dn.QueryID)
	return e.Bytes()
}

// DecodeDone parses a Done payload.
func DecodeDone(p []byte) (Done, error) {
	d := NewDecoder(p)
	dn := Done{RowCount: d.U64(), Flags: d.U8(), QueryID: d.U64()}
	return dn, d.End()
}

// StatPair is one named counter in a StatsResult frame.
type StatPair struct {
	Name  string
	Value int64
}

// Stats is the server counter snapshot carried by a StatsResult
// frame: ordered name/value pairs (the order is the server's
// presentation order; names are stable snake_case identifiers).
type Stats struct {
	Pairs []StatPair
}

// Get returns the named counter's value (0, false when absent).
func (s Stats) Get(name string) (int64, bool) {
	for _, p := range s.Pairs {
		if p.Name == name {
			return p.Value, true
		}
	}
	return 0, false
}

// EncodeStats builds a StatsResult payload.
func EncodeStats(s Stats) []byte {
	var e Encoder
	e.U16(uint16(len(s.Pairs)))
	for _, p := range s.Pairs {
		e.String(p.Name)
		e.I64(p.Value)
	}
	return e.Bytes()
}

// DecodeStats parses a StatsResult payload.
func DecodeStats(p []byte) (Stats, error) {
	d := NewDecoder(p)
	n := int(d.U16())
	if err := d.Err(); err != nil {
		return Stats{}, err
	}
	s := Stats{Pairs: make([]StatPair, 0, min(n, 64))}
	for i := 0; i < n; i++ {
		s.Pairs = append(s.Pairs, StatPair{Name: d.String(), Value: d.I64()})
		if err := d.Err(); err != nil {
			return Stats{}, err
		}
	}
	return s, d.End()
}

// ErrorFrame reports a failure.
type ErrorFrame struct {
	Code    string
	Message string
}

// Error renders the frame as a Go error string.
func (e ErrorFrame) Error() string {
	return fmt.Sprintf("dsdb server [%s]: %s", e.Code, e.Message)
}

// EncodeError builds an Error payload.
func EncodeError(ef ErrorFrame) []byte {
	var e Encoder
	e.String(ef.Code)
	e.String(ef.Message)
	return e.Bytes()
}

// DecodeError parses an Error payload.
func DecodeError(p []byte) (ErrorFrame, error) {
	d := NewDecoder(p)
	ef := ErrorFrame{Code: d.String(), Message: d.String()}
	return ef, d.End()
}

// DecodePayload dispatches a frame to its typed decoder, returning the
// decoded struct (Cancel and Quit carry no payload and return nil).
// It is the single entry point the fuzz target exercises: any byte
// string must come back as a value or an error, never a panic.
func DecodePayload(f Frame) (any, error) {
	switch f.Kind {
	case KindHello:
		return DecodeHello(f.Payload)
	case KindHelloOK:
		return DecodeHelloOK(f.Payload)
	case KindQuery:
		return DecodeQuery(f.Payload)
	case KindPrepare:
		return DecodePrepare(f.Payload)
	case KindPrepareOK:
		return DecodePrepareOK(f.Payload)
	case KindQueryStmt:
		return DecodeQueryStmt(f.Payload)
	case KindCloseStmt:
		return DecodeCloseStmt(f.Payload)
	case KindRowHeader:
		return DecodeRowHeader(f.Payload)
	case KindRowBatch:
		return DecodeRowBatch(f.Payload)
	case KindDone:
		return DecodeDone(f.Payload)
	case KindError:
		return DecodeError(f.Payload)
	case KindStatsResult:
		return DecodeStats(f.Payload)
	case KindCancel, KindQuit, KindStats:
		if len(f.Payload) != 0 {
			return nil, fmt.Errorf("wire: %s frame carries %d unexpected payload bytes", f.Kind, len(f.Payload))
		}
		return nil, nil
	}
	return nil, fmt.Errorf("wire: unknown frame kind %d", uint8(f.Kind))
}
