package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/dsdb"
)

// TestFrameRoundTrip writes every frame kind and reads it back.
func TestFrameRoundTrip(t *testing.T) {
	frames := []struct {
		kind    Kind
		payload []byte
		want    any
	}{
		{KindHello, EncodeHello(Hello{Version: ProtocolVersion}), Hello{Version: ProtocolVersion}},
		{KindHelloOK, EncodeHelloOK(HelloOK{Version: 1, SessionID: 7}), HelloOK{Version: 1, SessionID: 7}},
		{KindQuery, EncodeQuery(Query{Label: "Q6", SQL: "select 1"}), Query{Label: "Q6", SQL: "select 1"}},
		{KindPrepare, EncodePrepare(Prepare{SQL: "select 2"}), Prepare{SQL: "select 2"}},
		{KindPrepareOK, EncodePrepareOK(PrepareOK{StmtID: 3, Columns: []string{"a", "b"}}),
			PrepareOK{StmtID: 3, Columns: []string{"a", "b"}}},
		{KindQueryStmt, EncodeQueryStmt(QueryStmt{StmtID: 3, Label: "x"}), QueryStmt{StmtID: 3, Label: "x"}},
		{KindCloseStmt, EncodeCloseStmt(CloseStmt{StmtID: 3}), CloseStmt{StmtID: 3}},
		{KindRowHeader, EncodeRowHeader(RowHeader{Columns: []string{"n_name", "revenue"}}),
			RowHeader{Columns: []string{"n_name", "revenue"}}},
		{KindDone, EncodeDone(Done{RowCount: 42}), Done{RowCount: 42}},
		{KindError, EncodeError(ErrorFrame{Code: CodeQuery, Message: "boom"}),
			ErrorFrame{Code: CodeQuery, Message: "boom"}},
		{KindStatsResult, EncodeStats(Stats{Pairs: []StatPair{{Name: "conns_active", Value: 3}, {Name: "rows_streamed", Value: -1}}}),
			Stats{Pairs: []StatPair{{Name: "conns_active", Value: 3}, {Name: "rows_streamed", Value: -1}}}},
		{KindCancel, nil, nil},
		{KindQuit, nil, nil},
		{KindStats, nil, nil},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f.kind, f.payload); err != nil {
			t.Fatalf("WriteFrame(%s): %v", f.kind, err)
		}
	}
	for _, f := range frames {
		fr, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%s): %v", f.kind, err)
		}
		if fr.Kind != f.kind {
			t.Fatalf("kind = %s, want %s", fr.Kind, f.kind)
		}
		got, err := DecodePayload(fr)
		if err != nil {
			t.Fatalf("DecodePayload(%s): %v", f.kind, err)
		}
		if !reflect.DeepEqual(got, f.want) {
			t.Fatalf("%s round trip: got %#v, want %#v", f.kind, got, f.want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

// TestValueRoundTrip checks every value type survives the wire
// bit-for-bit — the foundation of the byte-identical server results.
func TestValueRoundTrip(t *testing.T) {
	rows := [][]dsdb.Value{
		{dsdb.NewInt(-5), dsdb.NewFloat(math.Pi), dsdb.NewStr("héllo 💥"), dsdb.NewNull()},
		{dsdb.NewDate(9000), dsdb.Value{T: dsdb.Bool, I: 1}, dsdb.NewStr(""), dsdb.NewFloat(math.Copysign(0, -1))},
	}
	p := EncodeRowBatch(RowBatch{Rows: rows})
	got, err := DecodeRowBatch(p)
	if err != nil {
		t.Fatalf("DecodeRowBatch: %v", err)
	}
	if !reflect.DeepEqual(got.Rows, rows) {
		t.Fatalf("rows drifted over the wire:\ngot  %#v\nwant %#v", got.Rows, rows)
	}
	// -0.0 must stay -0.0 (bit-exact, not Compare-equal).
	if math.Float64bits(got.Rows[1][3].F) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatal("-0.0 lost its sign bit")
	}
}

// TestReadFrameRejectsOversize checks the MaxFrame guard fires before
// any allocation.
func TestReadFrameRejectsOversize(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	binary.BigEndian.PutUint32(hdr[:4], 0)
	if _, err := ReadFrame(bytes.NewReader(hdr[:4])); err == nil {
		t.Fatal("zero-length frame must error")
	}
}

// TestReadFrameTruncated checks a stream cut mid-frame errors rather
// than blocking or succeeding.
func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindQuery, EncodeQuery(Query{SQL: "select 1"})); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		if _, err := ReadFrame(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("frame truncated at %d bytes decoded successfully", cut)
		}
	}
}

// TestDecoderMalformed checks typed decoders reject truncations,
// unknown tags and trailing garbage.
func TestDecoderMalformed(t *testing.T) {
	cases := []struct {
		name string
		err  bool
		f    func() (any, error)
	}{
		{"hello bad magic", true, func() (any, error) {
			var e Encoder
			e.U32(0xdeadbeef)
			e.U16(1)
			return DecodeHello(e.Bytes())
		}},
		{"query truncated", true, func() (any, error) { return DecodeQuery([]byte{0x05, 'a'}) }},
		{"string length overflow", true, func() (any, error) {
			return DecodeQuery(append([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 'x'))
		}},
		{"value unknown tag", true, func() (any, error) {
			return DecodeRowBatch([]byte{0x00, 0x01, 0x00, 0x01, 0x99})
		}},
		{"trailing garbage", true, func() (any, error) {
			return DecodeDone(append(EncodeDone(Done{RowCount: 1}), 0x00))
		}},
		{"cancel with payload", true, func() (any, error) {
			return DecodePayload(Frame{Kind: KindCancel, Payload: []byte{1}})
		}},
		{"unknown kind", true, func() (any, error) { return DecodePayload(Frame{Kind: 0xEE}) }},
		{"huge strings count", true, func() (any, error) {
			var e Encoder
			e.U16(65535) // claims 65535 columns, provides none
			return DecodeRowHeader(e.Bytes())
		}},
		{"stats truncated", true, func() (any, error) {
			var e Encoder
			e.U16(2) // claims 2 pairs, provides none
			return DecodeStats(e.Bytes())
		}},
		{"stats trailing garbage", true, func() (any, error) {
			return DecodeStats(append(EncodeStats(Stats{Pairs: []StatPair{{Name: "x", Value: 1}}}), 0x00))
		}},
		{"stats request with payload", true, func() (any, error) {
			return DecodePayload(Frame{Kind: KindStats, Payload: []byte{1}})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.f()
			if c.err && err == nil {
				t.Fatal("decode accepted malformed payload")
			}
		})
	}
}

// TestStickyDecoder checks the decoder poisons itself on the first
// error instead of mis-parsing subsequent fields.
func TestStickyDecoder(t *testing.T) {
	d := NewDecoder([]byte{0x01})
	_ = d.U32() // fails: only one byte
	if d.Err() == nil {
		t.Fatal("short U32 must poison the decoder")
	}
	if s := d.String(); s != "" {
		t.Fatalf("poisoned decoder returned %q", s)
	}
	if !strings.Contains(d.Err().Error(), "u32") {
		t.Fatalf("first error not preserved: %v", d.Err())
	}
}
