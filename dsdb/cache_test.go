package dsdb_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/dsdb"
	"repro/internal/db/probe"
)

const cacheBudget = 64 << 20

// TestResultCacheServesRepeatsByteIdentical is the acceptance check:
// with the cache enabled, every TPC-D query run twice is served from
// the cache the second time, byte-identical both to its own first
// (uncached) run and to an identically seeded database without a
// cache.
func TestResultCacheServesRepeatsByteIdentical(t *testing.T) {
	plain := openTPCD(t, 0.001)
	defer plain.Close()
	cached := openTPCD(t, 0.001, dsdb.WithResultCache(cacheBudget))
	defer cached.Close()
	ctx := context.Background()
	for _, n := range dsdb.TPCDQueryNumbers() {
		q, _ := dsdb.TPCDQuery(n)
		base, err := plain.Exec(ctx, q)
		if err != nil {
			t.Fatalf("uncached Q%d: %v", n, err)
		}
		first, err := cached.Exec(ctx, q)
		if err != nil {
			t.Fatalf("fill Q%d: %v", n, err)
		}
		rows, err := cached.Query(ctx, q)
		if err != nil {
			t.Fatalf("repeat Q%d: %v", n, err)
		}
		if !rows.CacheHit() {
			t.Fatalf("Q%d repeat was not served from cache", n)
		}
		second := &dsdb.Result{Columns: rows.Columns()}
		for rows.Next() {
			second.Rows = append(second.Rows, rows.Values())
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("repeat Q%d: %v", n, err)
		}
		rows.Close()
		if !reflect.DeepEqual(first, base) {
			t.Fatalf("Q%d: cached DB's first run differs from uncached baseline", n)
		}
		if !reflect.DeepEqual(second, base) {
			t.Fatalf("Q%d: cache hit differs from uncached baseline", n)
		}
	}
	st, ok := cached.ResultCacheStats()
	if !ok {
		t.Fatal("ResultCacheStats reported no cache")
	}
	want := uint64(len(dsdb.TPCDQueryNumbers()))
	if st.Hits != want {
		t.Fatalf("cache hits = %d, want %d", st.Hits, want)
	}
	// Exactly one counted miss per executed query: the one-shot fast
	// path and the statement execution must not both count the same
	// miss (that would halve the reported hit ratio).
	if st.Misses != want {
		t.Fatalf("cache misses = %d, want %d (double-counted misses skew the hit ratio)", st.Misses, want)
	}
	if _, ok := plain.ResultCacheStats(); ok {
		t.Fatal("uncached DB reports a cache")
	}
}

// TestResultCacheHitRunsNoKernelWork proves the instruction-stream
// collapse at the probe level: a traced cache hit emits zero kernel
// instrumentation events and takes zero buffer pool traffic.
func TestResultCacheHitRunsNoKernelWork(t *testing.T) {
	db := openTPCD(t, 0.0005, dsdb.WithResultCache(cacheBudget))
	defer db.Close()
	ctx := context.Background()
	q, _ := dsdb.TPCDQuery(6)
	if _, err := db.Exec(ctx, q); err != nil {
		t.Fatal(err)
	}
	h0, m0 := db.Engine().Buf.Stats()
	tr := probe.NewCountingTracer()
	rows, err := db.QueryTraced(ctx, tr, q)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.CacheHit() {
		t.Fatal("repeat not served from cache")
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if n != 1 {
		t.Fatalf("Q6 returned %d rows, want 1", n)
	}
	if got := tr.Total(); got != 0 {
		t.Fatalf("cache hit emitted %d probe events, want 0", got)
	}
	h1, m1 := db.Engine().Buf.Stats()
	if h1 != h0 || m1 != m0 {
		t.Fatalf("cache hit touched the buffer pool: hits %d→%d misses %d→%d", h0, h1, m0, m1)
	}
}

// TestResultCacheCanonicalKey checks key canonicalization: different
// spellings (case, whitespace) of one query share an entry, while a
// different literal is a different query.
func TestResultCacheCanonicalKey(t *testing.T) {
	db := openTPCD(t, 0.0005, dsdb.WithResultCache(cacheBudget))
	defer db.Close()
	ctx := context.Background()
	if _, err := db.Exec(ctx, "select count(*) from orders where o_orderkey < 100"); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(ctx, "SELECT   COUNT(*)\nFROM orders\n WHERE o_orderkey < 100")
	if err != nil {
		t.Fatal(err)
	}
	hit := func(r *dsdb.Rows, err error) bool {
		if err != nil {
			t.Fatal(err)
		}
		for r.Next() {
		}
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		h := r.CacheHit()
		r.Close()
		return h
	}
	if !hit(rows, nil) {
		t.Fatal("respelled query missed the cache")
	}
	if hit(db.Query(ctx, "select count(*) from orders where o_orderkey < 101")) {
		t.Fatal("different literal must not share a cache entry")
	}
}

// TestResultCacheInvalidationOnInsert is the epoch-invalidation
// acceptance check: a cached query re-run after an insert into a
// referenced table reflects the new rows (and misses), while a query
// over untouched tables keeps hitting.
func TestResultCacheInvalidationOnInsert(t *testing.T) {
	db := openTPCD(t, 0.0005, dsdb.WithResultCache(cacheBudget))
	defer db.Close()
	ctx := context.Background()
	if err := db.CreateTable("audit", dsdb.Col("a_id", dsdb.Int)); err != nil {
		t.Fatal(err)
	}
	count := func() (int64, bool) {
		rows, err := db.Query(ctx, "select count(*) from audit")
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var n int64
		for rows.Next() {
			if err := rows.Scan(&n); err != nil {
				t.Fatal(err)
			}
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return n, rows.CacheHit()
	}
	if n, hit := count(); n != 0 || hit {
		t.Fatalf("first run: n=%d hit=%v, want 0/false", n, hit)
	}
	if n, hit := count(); n != 0 || !hit {
		t.Fatalf("repeat: n=%d hit=%v, want 0/true", n, hit)
	}
	if err := db.Insert("audit", dsdb.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if n, hit := count(); n != 1 || hit {
		t.Fatalf("post-insert: n=%d hit=%v, want 1/false (stale serve!)", n, hit)
	}
	if n, hit := count(); n != 1 || !hit {
		t.Fatalf("post-insert repeat: n=%d hit=%v, want 1/true", n, hit)
	}
	// An unrelated query's entry survives the audit writes.
	q, _ := dsdb.TPCDQuery(6)
	if _, err := db.Exec(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("audit", dsdb.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if !rows.CacheHit() {
		t.Fatal("unrelated table's write invalidated Q6's entry")
	}
	rows.Close()
}

// TestResultCacheConcurrentWriters is the -race suite of the
// invalidation satellite: N readers hammer one cached aggregate while
// a writer inserts rows with a deterministic pattern. Stale results
// must never be served — every observed (count, sum) pair must
// satisfy the writer's invariant, each reader's view must move
// forward only (a cache serving old state after newer state was
// observed is a staleness bug), and the final cached result must
// byte-compare against an uncached baseline holding the same rows.
func TestResultCacheConcurrentWriters(t *testing.T) {
	db := openTPCD(t, 0.0005, dsdb.WithResultCache(cacheBudget))
	defer db.Close()
	ctx := context.Background()
	if err := db.CreateTable("ledger", dsdb.Col("l_id", dsdb.Int)); err != nil {
		t.Fatal(err)
	}
	const rows, readers = 300, 4
	const query = "select count(*), sum(l_id) from ledger"

	var wg sync.WaitGroup
	errs := make([]error, readers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Insert 0,1,2,...: after n inserts, sum = n(n-1)/2.
		for i := 0; i < rows; i++ {
			if err := db.Insert("ledger", dsdb.NewInt(int64(i))); err != nil {
				errs[readers] = err
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := int64(-1)
			for i := 0; i < 100; i++ {
				res, err := db.Exec(ctx, query)
				if err != nil {
					errs[r] = err
					return
				}
				if len(res.Rows) != 1 || len(res.Rows[0]) != 2 {
					errs[r] = fmt.Errorf("reader %d: malformed result %+v", r, res)
					return
				}
				n := res.Rows[0][0].I
				var sum int64
				switch v := res.Rows[0][1]; v.T {
				case dsdb.Int:
					sum = v.I
				case dsdb.Float:
					sum = int64(v.F)
				}
				if want := n * (n - 1) / 2; sum != want {
					errs[r] = fmt.Errorf("reader %d: torn/stale result: count=%d sum=%d want %d", r, n, sum, want)
					return
				}
				if n < last {
					errs[r] = fmt.Errorf("reader %d: went backwards: saw count %d after %d (stale cache serve)", r, n, last)
					return
				}
				last = n
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Final state: the cached answer (fill + hit) must byte-compare
	// against an uncached baseline database holding identical rows.
	base := openTPCD(t, 0.0005)
	defer base.Close()
	if err := base.CreateTable("ledger", dsdb.Col("l_id", dsdb.Int)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := base.Insert("ledger", dsdb.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want, err := base.Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ { // pass 1 fills (or hits), pass 2 hits
		got, err := db.Exec(ctx, query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: cached result differs from uncached baseline: %+v vs %+v", pass+1, got, want)
		}
	}
	if st, _ := db.ResultCacheStats(); st.Hits == 0 {
		t.Fatal("suite never exercised a cache hit")
	}
}

// TestResultCacheQueryRowFillsAndHits: QueryRow on a single-row
// result must drain to exhaustion so the cache publishes it —
// repeated point-aggregate traffic, the commonest DSS shape, has to
// hit like Query/Exec.
func TestResultCacheQueryRowFillsAndHits(t *testing.T) {
	db := openTPCD(t, 0.0005, dsdb.WithResultCache(cacheBudget))
	defer db.Close()
	ctx := context.Background()
	q, _ := dsdb.TPCDQuery(6)
	var first, second float64
	if err := db.QueryRow(ctx, q).Scan(&first); err != nil {
		t.Fatal(err)
	}
	st, _ := db.ResultCacheStats()
	if st.Entries != 1 {
		t.Fatalf("QueryRow did not fill the cache: %+v", st)
	}
	if err := db.QueryRow(ctx, q).Scan(&second); err != nil {
		t.Fatal(err)
	}
	st, _ = db.ResultCacheStats()
	if st.Hits != 1 || second != first {
		t.Fatalf("QueryRow repeat: hits=%d (want 1), values %v vs %v", st.Hits, second, first)
	}
}

// TestResultCachePartialConsumptionDoesNotFill: a Rows closed before
// exhaustion must not publish a truncated result.
func TestResultCachePartialConsumptionDoesNotFill(t *testing.T) {
	db := openTPCD(t, 0.0005, dsdb.WithResultCache(cacheBudget))
	defer db.Close()
	ctx := context.Background()
	const q = "select o_orderkey from orders"
	rows, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no rows")
	}
	rows.Close() // abandoned mid-stream
	full, err := db.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows2.Next() {
		n++
	}
	hit := rows2.CacheHit()
	rows2.Close()
	if !hit {
		t.Fatal("fully drained Exec should have filled the cache")
	}
	if n != len(full.Rows) {
		t.Fatalf("cache served %d rows, executor produced %d (truncated fill?)", n, len(full.Rows))
	}
}

// TestResultCacheAdmissionThreshold pins the WithResultCacheAdmission
// wiring: with an unreachably high threshold nothing is admitted (and
// the rejects are counted), with the policy off everything is.
func TestResultCacheAdmissionThreshold(t *testing.T) {
	ctx := context.Background()
	q, _ := dsdb.TPCDQuery(6)

	strict := openTPCD(t, 0.0005, dsdb.WithResultCache(cacheBudget),
		dsdb.WithResultCacheAdmission(time.Hour))
	defer strict.Close()
	for i := 0; i < 2; i++ {
		if _, err := strict.Exec(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := strict.ResultCacheStats()
	if st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("hour-threshold cache admitted entries: %+v", st)
	}
	if st.AdmissionRejects == 0 {
		t.Fatalf("admission rejects not counted: %+v", st)
	}

	open := openTPCD(t, 0.0005, dsdb.WithResultCache(cacheBudget))
	defer open.Close()
	if _, err := open.Exec(ctx, q); err != nil {
		t.Fatal(err)
	}
	rows, err := open.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	hit := rows.CacheHit()
	rows.Close()
	if !hit {
		t.Fatal("no-threshold cache did not serve the repeat")
	}
}

// TestResultCacheTTLExpiry pins the WithResultCacheTTL wiring with an
// injected clock: entries serve inside the TTL and expire (counted as
// misses) past it, after which a re-execution refills.
func TestResultCacheTTLExpiry(t *testing.T) {
	ctx := context.Background()
	q, _ := dsdb.TPCDQuery(6)
	db := openTPCD(t, 0.0005, dsdb.WithResultCache(cacheBudget),
		dsdb.WithResultCacheTTL(time.Minute))
	defer db.Close()

	base := time.Now()
	now := base
	db.ResultCache().SetNowFunc(func() time.Time { return now })

	if _, err := db.Exec(ctx, q); err != nil { // fill
		t.Fatal(err)
	}
	hitNow := func() bool {
		t.Helper()
		rows, err := db.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		for rows.Next() {
		}
		return rows.CacheHit()
	}
	now = base.Add(30 * time.Second)
	if !hitNow() {
		t.Fatal("entry expired inside its TTL")
	}
	before, _ := db.ResultCacheStats()
	now = base.Add(2 * time.Minute)
	if hitNow() { // expired: this execution is a miss and a refill
		t.Fatal("entry served past its TTL")
	}
	after, _ := db.ResultCacheStats()
	if after.Expirations != before.Expirations+1 {
		t.Fatalf("expirations %d -> %d, want +1", before.Expirations, after.Expirations)
	}
	if after.Misses != before.Misses+1 {
		t.Fatalf("expired Get not counted as a miss: %+v", after)
	}
	// The refill (stored at the new clock) serves again.
	now = now.Add(30 * time.Second)
	if !hitNow() {
		t.Fatal("refilled entry did not serve inside its new TTL")
	}
}
