package stcpipe_test

import (
	"context"
	"path/filepath"
	"testing"

	"repro/dsdb"
	"repro/dsdb/stcpipe"
)

// TestProfileOverWarmStartedDB pins that the instrumentation pipeline
// is oblivious to how the database came to be: a profile recorded over
// a warm-started (recovered-from-disk) database is identical to one
// recorded over a cold TPC-D load. Both pools are pre-warmed with one
// untraced round first, so the traces compare all-hit to all-hit.
func TestProfileOverWarmStartedDB(t *testing.T) {
	const sf = 0.0005
	dir := filepath.Join(t.TempDir(), "db")

	build := mustOpen(t, dsdb.WithTPCD(sf), dsdb.WithDataDir(dir))
	if err := build.Close(); err != nil {
		t.Fatal(err)
	}
	warm := mustOpen(t, dsdb.WithDataDir(dir))
	defer warm.Close()
	if !warm.WarmStarted() {
		t.Fatal("data dir did not warm-start")
	}
	cold := mustOpen(t, dsdb.WithTPCD(sf))
	defer cold.Close()

	w := stcpipe.Training()
	pipe := stcpipe.New(stcpipe.Validate())
	profiles := make([]*stcpipe.Profile, 2)
	for i, db := range []*dsdb.DB{cold, warm} {
		for _, q := range w.Queries {
			if _, err := db.Exec(context.Background(), q); err != nil {
				t.Fatal(err)
			}
		}
		p, err := pipe.Profile(db, w)
		if err != nil {
			t.Fatal(err)
		}
		profiles[i] = p
	}
	if profiles[0].Events() != profiles[1].Events() {
		t.Fatalf("event counts diverge: cold %d, warm %d",
			profiles[0].Events(), profiles[1].Events())
	}
	if profiles[0].Instrs() != profiles[1].Instrs() {
		t.Fatalf("instruction counts diverge: cold %d, warm %d",
			profiles[0].Instrs(), profiles[1].Instrs())
	}
}

func mustOpen(t *testing.T, opts ...dsdb.Option) *dsdb.DB {
	t.Helper()
	db, err := dsdb.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}
