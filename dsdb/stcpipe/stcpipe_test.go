package stcpipe_test

import (
	"testing"

	"repro/dsdb"
	"repro/dsdb/stcpipe"
)

// TestPipelineEndToEnd runs the three-call pipeline at a tiny scale
// factor with online trace validation: profile the training workload,
// build every layout algorithm, simulate each — asserting the
// algorithms produce distinct block orderings and sane fetch results.
func TestPipelineEndToEnd(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pipe := stcpipe.New(stcpipe.Validate())
	train, err := pipe.Profile(db, stcpipe.Training())
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if train.Instrs() == 0 || train.Events() == 0 {
		t.Fatalf("empty training trace: %d events, %d instrs", train.Events(), train.Instrs())
	}
	fp := train.Footprint()
	if fp.ExecBlocks == 0 || fp.ExecBlocks > fp.TotalBlocks {
		t.Fatalf("implausible footprint: %+v", fp)
	}

	params := stcpipe.Params{CacheBytes: 2048, CFABytes: 512}
	layouts := make(map[string][]uint64)
	for _, alg := range stcpipe.Algorithms(params) {
		lay, err := train.Layout(alg)
		if err != nil {
			t.Fatalf("Layout(%s): %v", alg.Name(), err)
		}
		if lay.Name() != alg.Name() {
			t.Fatalf("layout name %q, want %q", lay.Name(), alg.Name())
		}
		layouts[alg.Name()] = lay.Addresses()

		res, err := train.Simulate(lay, stcpipe.FetchConfig{CacheBytes: 2048})
		if err != nil {
			t.Fatalf("Simulate(%s): %v", alg.Name(), err)
		}
		if res.Instrs != train.Instrs() {
			t.Fatalf("%s: simulated %d instrs, trace has %d", alg.Name(), res.Instrs, train.Instrs())
		}
		if ipc := res.IPC(); ipc <= 0 {
			t.Fatalf("%s: IPC = %v, want > 0", alg.Name(), ipc)
		}
		if seq := train.Sequentiality(lay); seq <= 0 {
			t.Fatalf("%s: sequentiality = %v, want > 0", alg.Name(), seq)
		}
	}

	// Every algorithm must order the code differently.
	names := []string{"orig", "P&H", "Torr", "auto", "ops"}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if sameAddrs(layouts[a], layouts[b]) {
				t.Errorf("algorithms %s and %s produced identical orderings", a, b)
			}
		}
	}
}

// TestTraceCacheSimulation checks the trace-cache path produces hits
// on a recorded trace.
func TestTraceCacheSimulation(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pipe := stcpipe.New()
	w, err := stcpipe.TPCD("train", 6, 3)
	if err != nil {
		t.Fatalf("TPCD: %v", err)
	}
	train, err := pipe.Profile(db, w)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	lay, err := train.Layout(stcpipe.Original())
	if err != nil {
		t.Fatalf("Layout: %v", err)
	}
	res, err := train.Simulate(lay, stcpipe.FetchConfig{CacheBytes: 2048, TraceCacheEntries: 64})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.TCHits == 0 {
		t.Fatal("trace cache recorded no hits on a repetitive DBMS trace")
	}
}

// TestProfileRunExtends checks that Run extends an existing profile's
// trace (the test-over-both-databases pattern).
func TestProfileRunExtends(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	hashDB, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithIndexKind(dsdb.Hash))
	if err != nil {
		t.Fatalf("Open(hash): %v", err)
	}
	pipe := stcpipe.New()
	w, err := stcpipe.TPCD("w", 6)
	if err != nil {
		t.Fatalf("TPCD: %v", err)
	}
	pr, err := pipe.Profile(db, w)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	before := pr.Instrs()
	w2, err := stcpipe.TPCD("w-hash", 6)
	if err != nil {
		t.Fatalf("TPCD: %v", err)
	}
	if err := pr.Run(hashDB, w2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pr.Instrs() <= before {
		t.Fatalf("Run did not extend the trace: %d -> %d instrs", before, pr.Instrs())
	}
}

// TestWorkloadValidation checks that unknown TPC-D query numbers and
// empty workloads are rejected rather than silently ignored.
func TestWorkloadValidation(t *testing.T) {
	if _, err := stcpipe.TPCD("typo", 7); err == nil {
		t.Fatal("TPCD accepted nonexistent query 7")
	}
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := stcpipe.New().Profile(db, stcpipe.Workload{Name: "empty"}); err == nil {
		t.Fatal("Profile accepted an empty workload")
	}
}

func sameAddrs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestProfileConcurrentSessions traces a 3-session workload with
// online CFG validation: each per-session trace must be valid, the
// interleaved merge must carry roughly sessions× one serial run, and
// the result must be a first-class profile (layouts build, simulation
// runs).
func TestProfileConcurrentSessions(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pipe := stcpipe.New(stcpipe.Validate())
	w := stcpipe.Training()
	const sessions = 3

	pr, err := pipe.ProfileConcurrent(db, sessions, w)
	if err != nil {
		t.Fatalf("ProfileConcurrent: %v", err)
	}
	if pr.Events() == 0 || pr.Instrs() == 0 {
		t.Fatalf("empty concurrent trace: %d events, %d instrs", pr.Events(), pr.Instrs())
	}

	// The interleaved trace should hold roughly sessions× the work of
	// one serial run (buffer hit/miss paths may differ slightly).
	serial, err := pipe.Profile(db, w)
	if err != nil {
		t.Fatalf("serial Profile: %v", err)
	}
	lo := uint64(float64(serial.Instrs()) * 2.5)
	hi := uint64(float64(serial.Instrs()) * 3.5)
	if pr.Instrs() < lo || pr.Instrs() > hi {
		t.Fatalf("interleaved trace has %d instrs, want within [%d, %d] (~%d× serial %d)",
			pr.Instrs(), lo, hi, sessions, serial.Instrs())
	}

	// It trains layouts and simulates like any profile.
	lay, err := pr.Layout(stcpipe.STCOps(stcpipe.Params{}))
	if err != nil {
		t.Fatalf("Layout over concurrent profile: %v", err)
	}
	res, err := pr.Simulate(lay, stcpipe.FetchConfig{CacheBytes: 4096})
	if err != nil {
		t.Fatalf("Simulate over concurrent profile: %v", err)
	}
	if res.IPC() <= 0 {
		t.Fatalf("implausible IPC %v", res.IPC())
	}

	// Immutable: Run must refuse to extend a merged profile.
	if err := pr.Run(db, w); err == nil {
		t.Fatal("Run on a concurrent profile must error")
	}
}

// TestProfileConcurrentValidatesArgs covers the argument errors.
func TestProfileConcurrentValidatesArgs(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pipe := stcpipe.New()
	if _, err := pipe.ProfileConcurrent(db, 0, stcpipe.Training()); err == nil {
		t.Fatal("0 sessions must error")
	}
	if _, err := pipe.ProfileConcurrent(db, 2, stcpipe.Workload{Name: "empty"}); err == nil {
		t.Fatal("empty workload must error")
	}
}
