// Package stcpipe wraps the paper's Software Trace Cache toolchain as
// one composable pipeline over the public dsdb API:
//
//	pipe := stcpipe.New()
//	train, _ := pipe.Profile(db, stcpipe.Training()) // traced workload → profile
//	test, _ := pipe.Profile(db, stcpipe.Test())
//	lay, _ := train.Layout(stcpipe.STCOps(stcpipe.Params{CacheBytes: 4096, CFABytes: 1024}))
//	res, _ := test.Simulate(lay, stcpipe.FetchConfig{CacheBytes: 4096})
//
// Profile runs an instrumented workload and records the dynamic
// basic-block trace (the role ATOM instrumentation plays in the
// paper); Layout applies a pluggable code-reordering algorithm — STC,
// Pettis & Hansen, Torrellas et al., or the original layout — and
// Simulate replays a trace through the SEQ.3 fetch unit with a
// configurable i-cache and optional trace cache.
package stcpipe

import (
	"context"
	"fmt"
	"sync"

	"repro/dsdb"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fetch"
	"repro/internal/kernel"
	"repro/internal/layout"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/tpcd"
	"repro/internal/trace"
)

// Pipeline holds the instrumented kernel image shared by every
// profile it produces: layouts built from one profile can be
// simulated against any trace recorded by the same pipeline.
type Pipeline struct {
	img      *kernel.Image
	validate bool
}

// Option configures New.
type Option func(*Pipeline)

// Validate makes every recorded trace validate online against the
// static control-flow graph (slower; used by tests).
func Validate() Option {
	return func(p *Pipeline) { p.validate = true }
}

// New creates a pipeline over a fresh kernel image.
func New(opts ...Option) *Pipeline {
	p := &Pipeline{img: kernel.New(kernel.DefaultConfig())}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Workload is a named list of SQL queries to run while tracing.
type Workload struct {
	Name    string
	Labels  []string // one per query; used as trace marks
	Queries []string
}

// SQL builds a workload from ad-hoc query text.
func SQL(name string, queries ...string) Workload {
	w := Workload{Name: name, Queries: queries}
	for i := range queries {
		w.Labels = append(w.Labels, fmt.Sprintf("%s-%d", name, i+1))
	}
	return w
}

// tpcdWorkload builds a workload from TPC-D query numbers.
func tpcdWorkload(name string, nums []int) (Workload, error) {
	w := Workload{Name: name}
	for _, n := range nums {
		q, ok := dsdb.TPCDQuery(n)
		if !ok {
			return Workload{}, fmt.Errorf("stcpipe: no TPC-D query %d (have %v)", n, dsdb.TPCDQueryNumbers())
		}
		w.Labels = append(w.Labels, fmt.Sprintf("%s-Q%d", name, n))
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// mustTPCDWorkload backs the fixed paper sets, whose numbers are
// known-good by construction.
func mustTPCDWorkload(name string, nums []int) Workload {
	w, err := tpcdWorkload(name, nums)
	if err != nil {
		panic(err)
	}
	return w
}

// Training returns the paper's training query set (Q3,4,5,6,9).
func Training() Workload { return mustTPCDWorkload("train", tpcd.TrainingQueries) }

// Test returns the paper's test query set (Q2,3,4,6,11,12,13,14,15,17).
func Test() Workload { return mustTPCDWorkload("test", tpcd.TestQueries) }

// TPCD builds a workload from explicit TPC-D query numbers, erroring
// on numbers outside the paper's query set.
func TPCD(name string, nums ...int) (Workload, error) { return tpcdWorkload(name, nums) }

// Profile is a recorded execution: the dynamic basic-block trace of
// one or more traced workload runs, and the weighted CFG profile
// derived from it. It is both the input to Layout (training role) and
// the trace replayed by Simulate (test role).
type Profile struct {
	pipe *Pipeline
	// ses is the single-session recorder; nil for profiles produced by
	// ProfileConcurrent, whose merged trace is immutable.
	ses  *kernel.Session
	tr   *trace.Trace
	prof *profile.Profile // lazily derived from the trace
}

// Profile runs a workload on db with tracing attached and returns the
// recorded profile. The database's previous tracer is restored when
// the run finishes.
func (p *Pipeline) Profile(db *dsdb.DB, w Workload) (*Profile, error) {
	ses := p.img.NewSession(p.validate)
	pr := &Profile{pipe: p, ses: ses, tr: ses.Trace()}
	if err := pr.Run(db, w); err != nil {
		return nil, err
	}
	return pr, nil
}

// ProfileConcurrent traces a multi-session workload: sessions
// goroutines each run the whole workload serially against the shared
// db, every session recording into its own tracer (sessions are
// single-threaded; the database is not). The per-session traces are
// then interleaved at query boundaries, round-robin — session 1's
// first query, session 2's first query, ..., session 1's second query
// — modeling a DSS server context-switching between concurrent
// clients on one instruction stream. The merge is deterministic even
// though execution is not; the per-session traces themselves reflect
// true concurrent execution (buffer hits and misses depend on what
// the other sessions pulled into the pool).
//
// The returned profile is immutable (Run rejects it) but otherwise a
// first-class citizen of the pipeline: it can train layouts, be
// simulated, and be compared against its serial counterpart.
func (p *Pipeline) ProfileConcurrent(db *dsdb.DB, sessions int, w Workload) (*Profile, error) {
	if sessions < 1 {
		return nil, fmt.Errorf("stcpipe: need at least 1 session, got %d", sessions)
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("stcpipe: workload %q has no queries", w.Name)
	}
	sess := make([]*kernel.Session, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := range sess {
		sess[i] = p.img.NewSession(p.validate)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ses := sess[i]
			for qi, q := range w.Queries {
				label := sessionLabel(w, i, qi)
				ses.Mark(label)
				if err := drainTraced(db, ses, q); err != nil {
					errs[i] = fmt.Errorf("stcpipe: %s: %w", label, err)
					return
				}
				if err := ses.Err(); err != nil {
					errs[i] = fmt.Errorf("stcpipe: %s: trace: %w", label, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Profile{pipe: p, tr: interleaveSessions(p.img.Prog, sess, len(w.Queries))}, nil
}

// sessionLabel names query qi of session i (0-based) in a
// multi-session trace: the workload's per-query label prefixed with
// the session — "s2-train-Q4". ProfileConcurrent and ProfileServed
// share it, so their interleaved traces mark identically.
func sessionLabel(w Workload, i, qi int) string {
	label := fmt.Sprintf("%s-%d", w.Name, qi+1)
	if qi < len(w.Labels) {
		label = w.Labels[qi]
	}
	return fmt.Sprintf("s%d-%s", i+1, label)
}

// interleaveSessions merges per-session traces round-robin at query
// (mark) boundaries into one trace over the shared program image.
func interleaveSessions(prog *program.Program, sess []*kernel.Session, queries int) *trace.Trace {
	out := trace.New(prog)
	for q := 0; q < queries; q++ {
		for _, s := range sess {
			t := s.Trace()
			if q >= len(t.Marks) {
				continue
			}
			lo := t.Marks[q].Pos
			hi := len(t.Blocks)
			if q+1 < len(t.Marks) {
				hi = t.Marks[q+1].Pos
			}
			out.Marks = append(out.Marks, trace.Mark{Pos: len(out.Blocks), Label: t.Marks[q].Label})
			out.Blocks = append(out.Blocks, t.Blocks[lo:hi]...)
			for _, b := range t.Blocks[lo:hi] {
				out.Instrs += uint64(prog.Block(b).Size)
			}
		}
	}
	return out
}

// Run traces another workload into the same profile — the paper's
// test set, for example, runs over both the B-tree and the
// hash-indexed database within one trace.
func (pr *Profile) Run(db *dsdb.DB, w Workload) error {
	if pr.ses == nil {
		return fmt.Errorf("stcpipe: profile was recorded from concurrent sessions and is immutable")
	}
	if len(w.Queries) == 0 {
		return fmt.Errorf("stcpipe: workload %q has no queries", w.Name)
	}
	// Invalidate the cached derived profile up front: even a run that
	// fails partway has grown the trace.
	pr.prof = nil
	for i, q := range w.Queries {
		label := fmt.Sprintf("%s-%d", w.Name, i+1)
		if i < len(w.Labels) {
			label = w.Labels[i]
		}
		pr.ses.Mark(label)
		if err := drainTraced(db, pr.ses, q); err != nil {
			return fmt.Errorf("stcpipe: %s: %w", label, err)
		}
		if err := pr.ses.Err(); err != nil {
			return fmt.Errorf("stcpipe: %s: trace: %w", label, err)
		}
	}
	return nil
}

// drainTraced streams a query to completion under the given tracer,
// discarding rows — tracing only needs the execution, not the
// (possibly large) result set. The tracer is bound per call, so
// concurrent sessions never touch the DB-wide tracer.
func drainTraced(db *dsdb.DB, tr dsdb.Tracer, q string) error {
	rows, err := db.QueryTraced(context.Background(), tr, q)
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
	}
	return rows.Err()
}

// profileData derives (and caches) the weighted CFG profile.
func (pr *Profile) profileData() *profile.Profile {
	if pr.prof == nil {
		pr.prof = profile.FromTrace(pr.tr)
	}
	return pr.prof
}

// Events returns the number of recorded basic-block events.
func (pr *Profile) Events() int { return pr.tr.Len() }

// Instrs returns the number of dynamic instructions in the trace.
func (pr *Profile) Instrs() uint64 { return pr.tr.Instrs }

// FootprintStats is the static-vs-executed footprint (paper Table 1).
type FootprintStats = profile.FootprintStats

// Footprint computes the static-vs-executed footprint statistics.
func (pr *Profile) Footprint() FootprintStats { return pr.profileData().Footprint() }

// BlockStat describes one basic block of the executed footprint.
type BlockStat struct {
	Name       string
	Executions uint64
	Instrs     int
}

// HottestBlocks lists the n most-executed basic blocks.
func (pr *Profile) HottestBlocks(n int) []BlockStat {
	return hottestBlocks(pr.profileData(), pr.pipe.img.Prog, n)
}

// hottestBlocks shapes a profile's most-executed blocks; shared with
// Report.HottestBlocks.
func hottestBlocks(p *profile.Profile, prog *program.Program, n int) []BlockStat {
	blocks := p.ExecutedBlocks()
	if n < 0 {
		n = 0
	}
	if n > len(blocks) {
		n = len(blocks)
	}
	out := make([]BlockStat, 0, n)
	for _, b := range blocks[:n] {
		blk := prog.Block(b)
		out = append(out, BlockStat{Name: blk.Name, Executions: p.Weight(b), Instrs: blk.Size})
	}
	return out
}

// Layout is a code layout: an address for every basic block of the
// kernel image, as produced by one of the reordering algorithms.
type Layout struct {
	name string
	l    *program.Layout
}

// Name returns the layout's algorithm name.
func (l *Layout) Name() string { return l.name }

// Addresses returns a copy of the per-block start addresses (indexed
// by block ID) — useful for comparing what different algorithms did.
func (l *Layout) Addresses() []uint64 {
	return append([]uint64(nil), l.l.Addr...)
}

// Algorithm is a pluggable code-layout strategy.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Build produces a layout from a training profile.
	Build(pr *Profile) (*Layout, error)
}

// Layout applies an algorithm to this (training) profile.
func (pr *Profile) Layout(alg Algorithm) (*Layout, error) {
	return alg.Build(pr)
}

// Params configures the greedy sequence-building algorithms (STC and
// the Torrellas baseline). Zero values select the paper defaults:
// BranchThreshold 0.4, a 4KB cache with a 1KB conflict-free area, and
// an execution threshold fitted from the profile.
type Params struct {
	ExecThreshold   uint64
	BranchThreshold float64
	CacheBytes      int
	CFABytes        int
}

// coreParams resolves defaults against a profile.
func (p Params) coreParams(pr *Profile) (core.Params, bool) {
	cp := core.Params{
		ExecThreshold:   p.ExecThreshold,
		BranchThreshold: p.BranchThreshold,
		CacheBytes:      p.CacheBytes,
		CFABytes:        p.CFABytes,
	}
	if cp.BranchThreshold == 0 {
		cp.BranchThreshold = 0.4
	}
	if cp.CacheBytes == 0 {
		cp.CacheBytes = 4096
	}
	if cp.CFABytes == 0 {
		cp.CFABytes = 1024
	}
	fitted := cp.ExecThreshold == 0
	if fitted {
		// The paper's "most popular blocks" notion, scaled to the
		// trace length; BuildFitted refines it against the CFA budget.
		cp.ExecThreshold = pr.profileData().DynBlocks / 20000
		if cp.ExecThreshold < 4 {
			cp.ExecThreshold = 4
		}
	}
	return cp, fitted
}

// algorithm implements Algorithm via a closure.
type algorithm struct {
	name  string
	build func(pr *Profile) (*program.Layout, error)
}

func (a algorithm) Name() string { return a.name }

func (a algorithm) Build(pr *Profile) (*Layout, error) {
	l, err := a.build(pr)
	if err != nil {
		return nil, err
	}
	return &Layout{name: a.name, l: l}, nil
}

// Original returns the identity layout (the compiler's block order).
func Original() Algorithm {
	return algorithm{name: "orig", build: func(pr *Profile) (*program.Layout, error) {
		return program.OriginalLayout(pr.pipe.img.Prog), nil
	}}
}

// PettisHansen returns the Pettis & Hansen basic-block chaining and
// procedure-ordering baseline.
func PettisHansen() Algorithm {
	return algorithm{name: "P&H", build: func(pr *Profile) (*program.Layout, error) {
		return layout.PettisHansen(pr.profileData()), nil
	}}
}

// Torrellas returns the Torrellas et al. cache-mapping baseline.
func Torrellas(p Params) Algorithm {
	return algorithm{name: "Torr", build: func(pr *Profile) (*program.Layout, error) {
		cp, _ := p.coreParams(pr)
		return layout.Torrellas(pr.profileData(), cp), nil
	}}
}

// stc builds the Software Trace Cache layout from a seed set.
func stc(name string, p Params, seeds func(pr *Profile) []program.BlockID) Algorithm {
	return algorithm{name: name, build: func(pr *Profile) (*program.Layout, error) {
		cp, fitted := p.coreParams(pr)
		prof := pr.profileData()
		if fitted {
			return core.BuildFitted(name, prof, seeds(pr), cp), nil
		}
		return core.Build(name, prof, seeds(pr), cp), nil
	}}
}

// STCAuto returns the Software Trace Cache with automatically
// selected seeds (the hottest loop-free entry blocks).
func STCAuto(p Params) Algorithm {
	return stc("auto", p, func(pr *Profile) []program.BlockID {
		return core.AutoSeeds(pr.profileData())
	})
}

// STCOps returns the Software Trace Cache seeded at the kernel's
// per-tuple operation entry points, the paper's best variant.
func STCOps(p Params) Algorithm {
	return stc("ops", p, func(pr *Profile) []program.BlockID {
		return core.OpsSeeds(pr.profileData(), kernel.OpsSeedNames)
	})
}

// Algorithms returns the paper's five layouts in table order: orig,
// P&H, Torrellas, STC-auto, STC-ops.
func Algorithms(p Params) []Algorithm {
	return []Algorithm{Original(), PettisHansen(), Torrellas(p), STCAuto(p), STCOps(p)}
}

// FetchConfig parameterizes the SEQ.3 fetch-unit simulation. The zero
// value is an ideal (always-hit) i-cache with 64-byte lines.
type FetchConfig struct {
	// CacheBytes sizes the i-cache; 0 simulates a perfect cache.
	CacheBytes int
	// LineBytes is the cache line size (default 64).
	LineBytes int
	// Ways selects set associativity; 0 or 1 is direct-mapped.
	Ways int
	// VictimEntries adds a fully associative victim cache of that many
	// lines behind a direct-mapped main cache.
	VictimEntries int
	// TraceCacheEntries adds a hardware trace cache in front of the
	// i-cache (paper Section 7.3); 0 disables it.
	TraceCacheEntries int
}

// Result aggregates one fetch simulation (IPC, miss rates, trace
// cache statistics).
type Result = fetch.Result

// Simulate replays this profile's trace under a layout through the
// fetch unit.
func (pr *Profile) Simulate(l *Layout, fc FetchConfig) (Result, error) {
	if len(l.l.Addr) != pr.pipe.img.Prog.NumBlocks() {
		return Result{}, fmt.Errorf("stcpipe: layout %q was built for a different kernel image", l.name)
	}
	lineBytes := fc.LineBytes
	if lineBytes == 0 {
		lineBytes = cache.DefaultLineBytes
	}
	var ic cache.ICache
	if fc.CacheBytes > 0 {
		switch {
		case fc.VictimEntries > 0:
			ic = cache.NewVictim(fc.CacheBytes, lineBytes, fc.VictimEntries)
		case fc.Ways > 1:
			ic = cache.NewSetAssoc(fc.CacheBytes, lineBytes, fc.Ways)
		default:
			ic = cache.NewDirectMapped(fc.CacheBytes, lineBytes)
		}
	}
	cfg := fetch.DefaultConfig(ic)
	cfg.LineBytes = lineBytes
	if fc.TraceCacheEntries > 0 {
		cfg.TC = cache.NewTraceCache(fc.TraceCacheEntries, 16, 3, 4)
	}
	return fetch.Simulate(pr.tr, l.l, cfg), nil
}

// Sequentiality returns the paper's headline metric under a layout:
// dynamic instructions executed between taken branches.
func (pr *Profile) Sequentiality(l *Layout) float64 {
	return fetch.Sequentiality(pr.tr, l.l).InstrPerTaken
}

// CompareResult is one algorithm's scorecard from Compare.
type CompareResult struct {
	Algorithm     string
	MissPer100    float64
	IPC           float64
	InstrPerTaken float64
}

// CompareParams configures the one-call Compare pipeline.
type CompareParams struct {
	SF         float64 // TPC-D scale factor (default 0.001)
	Seed       int64   // generator seed (default 42)
	Layout     Params
	Fetch      FetchConfig
	Algorithms []Algorithm // default: the paper's five
}

// Compare runs the whole paper flow in one call: build the B-tree and
// hash TPC-D databases, profile the training workload, record the
// test trace over both databases, then lay out and simulate every
// algorithm. It is the three-call pipeline bundled for convenience.
func Compare(p CompareParams) ([]CompareResult, error) {
	if p.SF == 0 {
		p.SF = 0.001
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Algorithms == nil {
		p.Algorithms = Algorithms(p.Layout)
	}
	btreeDB, err := dsdb.Open(dsdb.WithTPCD(p.SF), dsdb.WithSeed(p.Seed))
	if err != nil {
		return nil, err
	}
	hashDB, err := dsdb.Open(dsdb.WithTPCD(p.SF), dsdb.WithSeed(p.Seed), dsdb.WithIndexKind(dsdb.Hash))
	if err != nil {
		return nil, err
	}
	pipe := New()
	train, err := pipe.Profile(btreeDB, Training())
	if err != nil {
		return nil, err
	}
	test, err := pipe.Profile(btreeDB, Test())
	if err != nil {
		return nil, err
	}
	if err := test.Run(hashDB, Test()); err != nil {
		return nil, err
	}
	out := make([]CompareResult, 0, len(p.Algorithms))
	for _, alg := range p.Algorithms {
		lay, err := train.Layout(alg)
		if err != nil {
			return nil, fmt.Errorf("stcpipe: layout %s: %w", alg.Name(), err)
		}
		res, err := test.Simulate(lay, p.Fetch)
		if err != nil {
			return nil, err
		}
		out = append(out, CompareResult{
			Algorithm:     alg.Name(),
			MissPer100:    res.MissesPer100Instr(),
			IPC:           res.IPC(),
			InstrPerTaken: test.Sequentiality(lay),
		})
	}
	return out, nil
}
