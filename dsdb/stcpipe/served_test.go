package stcpipe_test

import (
	"testing"

	"repro/dsdb"
	"repro/dsdb/stcpipe"
)

// TestProfileServedDeterministic is the acceptance check for the
// served scenario: two ProfileServed runs with the same database
// options, seed and query mix must produce identical trace summaries
// — same event and instruction counts, same footprint, and the same
// fetch-simulation results under a layout trained on the first run.
func TestProfileServedDeterministic(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pipe := stcpipe.New(stcpipe.Validate())
	w, err := stcpipe.TPCD("served", 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 3

	pr1, err := pipe.ProfileServed(db, sessions, w)
	if err != nil {
		t.Fatalf("ProfileServed #1: %v", err)
	}
	if pr1.Events() == 0 || pr1.Instrs() == 0 {
		t.Fatalf("empty served trace: %d events, %d instrs", pr1.Events(), pr1.Instrs())
	}
	pr2, err := pipe.ProfileServed(db, sessions, w)
	if err != nil {
		t.Fatalf("ProfileServed #2: %v", err)
	}
	if pr1.Events() != pr2.Events() || pr1.Instrs() != pr2.Instrs() {
		t.Fatalf("served profile not deterministic: run1 %d events/%d instrs, run2 %d events/%d instrs",
			pr1.Events(), pr1.Instrs(), pr2.Events(), pr2.Instrs())
	}
	if fp1, fp2 := pr1.Footprint(), pr2.Footprint(); fp1 != fp2 {
		t.Fatalf("served footprints differ: %+v vs %+v", fp1, fp2)
	}

	// Layouts train on the served profile and simulate like any other —
	// and the full trace replay must agree between the two runs.
	lay, err := pr1.Layout(stcpipe.STCOps(stcpipe.Params{}))
	if err != nil {
		t.Fatalf("Layout over served profile: %v", err)
	}
	fc := stcpipe.FetchConfig{CacheBytes: 4096}
	res1, err := pr1.Simulate(lay, fc)
	if err != nil {
		t.Fatalf("Simulate #1: %v", err)
	}
	res2, err := pr2.Simulate(lay, fc)
	if err != nil {
		t.Fatalf("Simulate #2: %v", err)
	}
	if res1 != res2 {
		t.Fatalf("served traces replay differently:\nrun1 %+v\nrun2 %+v", res1, res2)
	}
	if res1.IPC() <= 0 {
		t.Fatalf("implausible IPC %v", res1.IPC())
	}
}

// TestProfileServedScalesWithSessions checks the interleaved served
// trace carries roughly sessions× one serial run of the same workload
// on the same (warm) database.
func TestProfileServedScalesWithSessions(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pipe := stcpipe.New(stcpipe.Validate())
	w, err := stcpipe.TPCD("served", 6)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 3
	pr, err := pipe.ProfileServed(db, sessions, w)
	if err != nil {
		t.Fatalf("ProfileServed: %v", err)
	}
	serial, err := pipe.Profile(db, w)
	if err != nil {
		t.Fatalf("serial Profile: %v", err)
	}
	lo := uint64(float64(serial.Instrs()) * 2.5)
	hi := uint64(float64(serial.Instrs()) * 3.5)
	if pr.Instrs() < lo || pr.Instrs() > hi {
		t.Fatalf("served trace has %d instrs, want within [%d, %d] (~%d× serial %d)",
			pr.Instrs(), lo, hi, sessions, serial.Instrs())
	}

	// Immutable, like ProfileConcurrent's merge.
	if err := pr.Run(db, w); err == nil {
		t.Fatal("Run on a served profile must error")
	}
}

// TestProfileServedValidatesArgs covers the argument errors.
func TestProfileServedValidatesArgs(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pipe := stcpipe.New()
	if _, err := pipe.ProfileServed(db, 0, stcpipe.Training()); err == nil {
		t.Fatal("0 sessions must error")
	}
	if _, err := pipe.ProfileServed(db, 2, stcpipe.Workload{Name: "empty"}); err == nil {
		t.Fatal("empty workload must error")
	}
}
