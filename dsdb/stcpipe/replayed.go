package stcpipe

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/dsdb"
	"repro/dsdb/wcap"
	"repro/internal/kernel"
)

// ProfileReplayed traces a captured workload (dsdb/wcap records, as
// recorded by a server running with WithCapture / dsdbd -capture-dir)
// through the instruction-fetch pipeline: the capture's queries run
// again, grouped by their recorded session, one kernel trace per
// session, interleaved at query boundaries exactly like
// ProfileConcurrent and ProfileServed. This closes the paper's loop
// on real traffic — Layout trains and Simulate replays the
// instruction stream of the workload a production server actually
// served, not a synthetic mix.
//
// Records whose recorded outcome was an error are skipped (nothing
// executed to trace), as are SHOW queries — server introspection that
// does not exist in-process. Like the other multi-session profilers,
// the run starts with one serial untraced pass over every distinct
// query so the buffer pool is warm and the merged profile is
// deterministic; the returned profile is immutable (Run rejects it).
func (p *Pipeline) ProfileReplayed(db *dsdb.DB, recs []wcap.Record) (*Profile, error) {
	// Partition the capture per recorded session, recorded start order
	// within each.
	bySession := make(map[uint32][]wcap.Record)
	for _, r := range recs {
		if r.Err != wcap.OK || isShow(r.SQL) {
			continue
		}
		bySession[r.Session] = append(bySession[r.Session], r)
	}
	if len(bySession) == 0 {
		return nil, fmt.Errorf("stcpipe: capture has no replayable queries (%d records)", len(recs))
	}
	ids := make([]uint32, 0, len(bySession))
	maxQueries := 0
	for id := range bySession {
		sort.SliceStable(bySession[id], func(a, b int) bool {
			return bySession[id][a].Offset < bySession[id][b].Offset
		})
		ids = append(ids, id)
		if n := len(bySession[id]); n > maxQueries {
			maxQueries = n
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	// Warmup: serial, untraced, every distinct query once — the same
	// page-residency argument as ProfileServed's warmup pass.
	seen := make(map[string]bool)
	for _, id := range ids {
		for _, r := range bySession[id] {
			if seen[r.SQL] {
				continue
			}
			seen[r.SQL] = true
			if err := drainTraced(db, nil, r.SQL); err != nil {
				return nil, fmt.Errorf("stcpipe: replayed warmup %s: %w", r.Label, err)
			}
		}
	}

	// One traced kernel session per recorded session, run concurrently
	// like ProfileConcurrent. Marks carry the recorded session id and
	// label, so the merged trace reads back to the capture.
	sess := make([]*kernel.Session, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		sess[i] = p.img.NewSession(p.validate)
		wg.Add(1)
		go func(i int, id uint32) {
			defer wg.Done()
			ses := sess[i]
			for qi, r := range bySession[id] {
				label := r.Label
				if label == "" {
					label = fmt.Sprintf("q%d", qi+1)
				}
				label = fmt.Sprintf("s%d-%s", id, label)
				ses.Mark(label)
				if err := drainTraced(db, ses, r.SQL); err != nil {
					errs[i] = fmt.Errorf("stcpipe: replayed %s: %w", label, err)
					return
				}
				if err := ses.Err(); err != nil {
					errs[i] = fmt.Errorf("stcpipe: replayed %s: trace: %w", label, err)
					return
				}
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Sessions may have replayed unequal query counts (real captures
	// are ragged); interleaveSessions skips exhausted sessions past
	// their last mark.
	return &Profile{pipe: p, tr: interleaveSessions(p.img.Prog, sess, maxQueries)}, nil
}

// isShow reports whether sql is a server-side SHOW statement.
func isShow(sql string) bool {
	f := strings.Fields(strings.ToLower(sql))
	return len(f) > 0 && f[0] == "show"
}
