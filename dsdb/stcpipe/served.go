package stcpipe

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/server"
	"repro/internal/kernel"
)

// ProfileServed traces the workload under served traffic: it stands up
// an in-process dsdb/server over db, connects sessions wire clients
// (dsdb/client), and has each client run the whole workload as a
// closed loop while the server records one kernel instruction trace
// per connection — the scenario cmd/dsdbd + cmd/dsload exercise, with
// tracing attached. The per-session traces are then interleaved at
// query boundaries, round-robin in session order, exactly like
// ProfileConcurrent — modeling the server context-switching between
// remote clients on one instruction stream.
//
// The run starts with one serial untraced pass over the workload so
// every page the queries touch is buffer-resident before tracing
// begins. With a pool that holds the workload's working set (true at
// the paper's scale factors), every traced buffer access is then a
// hit regardless of how the served sessions interleave, so the same
// database options, seed and query mix always produce an identical
// merged profile — deterministic, like every other profile in the
// pipeline, and usable the same way: Layout to train, Simulate to
// replay.
//
// Like ProfileConcurrent, the returned profile is immutable (Run
// rejects it).
func (p *Pipeline) ProfileServed(db *dsdb.DB, sessions int, w Workload) (*Profile, error) {
	if sessions < 1 {
		return nil, fmt.Errorf("stcpipe: need at least 1 session, got %d", sessions)
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("stcpipe: workload %q has no queries", w.Name)
	}

	// Warmup pass: untraced, serial, in-process. See the doc comment.
	for i, q := range w.Queries {
		if err := drainTraced(db, nil, q); err != nil {
			return nil, fmt.Errorf("stcpipe: served warmup query %d: %w", i+1, err)
		}
	}

	// Per-connection kernel sessions, keyed by the server's accept-order
	// session id. Clients dial sequentially below, so id k is client k.
	var mu sync.Mutex
	byID := make(map[int]*kernel.Session)
	srv := server.New(db,
		server.WithMaxConns(sessions),
		server.WithSessionHooks(func(id int) server.SessionHooks {
			ses := p.img.NewSession(p.validate)
			mu.Lock()
			byID[id] = ses
			mu.Unlock()
			return server.SessionHooks{Tracer: ses, OnQuery: ses.Mark}
		}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("stcpipe: served listener: %w", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	clients := make([]*client.DB, 0, sessions)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < sessions; i++ {
		c, err := client.Dial(ln.Addr().String())
		if err != nil {
			return nil, fmt.Errorf("stcpipe: served client %d: %w", i+1, err)
		}
		clients = append(clients, c)
	}

	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.DB) {
			defer wg.Done()
			for qi, q := range w.Queries {
				label := sessionLabel(w, i, qi)
				rows, err := c.QueryLabeled(context.Background(), label, q)
				if err != nil {
					errs[i] = fmt.Errorf("stcpipe: %s: %w", label, err)
					return
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					errs[i] = fmt.Errorf("stcpipe: %s: %w", label, err)
					return
				}
				rows.Close()
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return nil, fmt.Errorf("stcpipe: served shutdown: %w", err)
	}

	mu.Lock()
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	sess := make([]*kernel.Session, 0, len(ids))
	for _, id := range ids {
		sess = append(sess, byID[id])
	}
	mu.Unlock()
	if len(sess) != sessions {
		return nil, fmt.Errorf("stcpipe: served %d sessions, expected %d", len(sess), sessions)
	}
	for i, ses := range sess {
		if err := ses.Err(); err != nil {
			return nil, fmt.Errorf("stcpipe: served session %d: trace: %w", i+1, err)
		}
		if got := len(ses.Trace().Marks); got != len(w.Queries) {
			return nil, fmt.Errorf("stcpipe: served session %d recorded %d query marks, expected %d",
				i+1, got, len(w.Queries))
		}
	}
	return &Profile{pipe: p, tr: interleaveSessions(p.img.Prog, sess, len(w.Queries))}, nil
}
