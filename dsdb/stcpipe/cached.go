package stcpipe

import (
	"fmt"

	"repro/dsdb"
)

// ProfileCached traces a repeat-heavy workload against a database
// opened with dsdb.WithResultCache: one kernel session runs the whole
// workload rounds times, marking every execution, with the result
// cache answering repeats. The first round executes and fills the
// cache; later rounds are served from it — and a cache hit runs no
// executor, touches no buffer pool and emits no kernel
// instrumentation events, so its trace segment is empty. The profile
// therefore demonstrates the instruction-stream collapse the paper's
// premise implies: for a decision-support mix that repeats its
// queries, the cheapest instruction fetch is the one never issued.
// Use MarkStats to see the per-execution segment sizes.
//
// The database must carry a result cache; rounds must be at least 2
// (one fill pass, at least one hit pass). Writers running during the
// profile would turn hits back into misses — profile on a quiesced
// database, like every other profile mode.
//
// The returned profile is immutable (Run rejects it) but otherwise a
// first-class citizen of the pipeline: it can train layouts and be
// simulated like any trace.
func (p *Pipeline) ProfileCached(db *dsdb.DB, w Workload, rounds int) (*Profile, error) {
	if db.ResultCache() == nil {
		return nil, fmt.Errorf("stcpipe: ProfileCached needs a database opened with dsdb.WithResultCache")
	}
	if rounds < 2 {
		return nil, fmt.Errorf("stcpipe: ProfileCached needs at least 2 rounds (fill + hit), got %d", rounds)
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("stcpipe: workload %q has no queries", w.Name)
	}
	ses := p.img.NewSession(p.validate)
	for round := 1; round <= rounds; round++ {
		for qi, q := range w.Queries {
			label := fmt.Sprintf("%s-%d", w.Name, qi+1)
			if qi < len(w.Labels) {
				label = w.Labels[qi]
			}
			label = fmt.Sprintf("r%d-%s", round, label)
			ses.Mark(label)
			if err := drainTraced(db, ses, q); err != nil {
				return nil, fmt.Errorf("stcpipe: %s: %w", label, err)
			}
			if err := ses.Err(); err != nil {
				return nil, fmt.Errorf("stcpipe: %s: trace: %w", label, err)
			}
		}
	}
	return &Profile{pipe: p, tr: ses.Trace()}, nil
}

// MarkStat is the trace segment of one mark (one query execution):
// its label, and how many block events / dynamic instructions the
// execution recorded. A result-cache hit records zero of both.
type MarkStat struct {
	Label  string
	Blocks int
	Instrs uint64
}

// MarkStats slices the profile's trace at its marks, returning one
// segment per recorded query execution in trace order. It is how the
// cached-profile collapse is quantified (repeat rounds' segments are
// empty), but works on any profile with marks.
func (pr *Profile) MarkStats() []MarkStat {
	prog := pr.tr.Program()
	out := make([]MarkStat, 0, len(pr.tr.Marks))
	for i, m := range pr.tr.Marks {
		lo := m.Pos
		hi := len(pr.tr.Blocks)
		if i+1 < len(pr.tr.Marks) {
			hi = pr.tr.Marks[i+1].Pos
		}
		st := MarkStat{Label: m.Label, Blocks: hi - lo}
		for _, b := range pr.tr.Blocks[lo:hi] {
			st.Instrs += uint64(prog.Block(b).Size)
		}
		out = append(out, st)
	}
	return out
}
