package stcpipe

import (
	"fmt"

	"repro/internal/experiments"
)

// ReportParams configures a full paper-evaluation run.
type ReportParams struct {
	SF       float64 // TPC-D scale factor (default 0.002)
	Seed     int64   // generator seed (default 42)
	Validate bool    // validate traces online against the static CFG
	// Parallelism > 1 runs the traced workloads with
	// partition-parallel scans (the concurrency measurement scenario);
	// 0 or 1 reproduces the paper's serial plans.
	Parallelism int
}

// Report regenerates every table and figure of the paper from one
// end-to-end run: both TPC-D databases are built, the training and
// test workloads are traced, and each accessor renders one artifact
// in the paper's layout. It is the batch counterpart to composing
// Profile/Layout/Simulate by hand.
type Report struct {
	s *experiments.Setup
}

// NewReport builds the databases and records the training and test
// traces (the expensive part; the per-table accessors are cheap by
// comparison).
func NewReport(p ReportParams) (*Report, error) {
	if p.SF == 0 {
		p.SF = 0.002
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	s, err := experiments.NewSetup(experiments.Params{
		SF: p.SF, Seed: p.Seed, Validate: p.Validate, Parallelism: p.Parallelism})
	if err != nil {
		return nil, err
	}
	return &Report{s: s}, nil
}

// TraceSummary describes the recorded traces in one line.
func (r *Report) TraceSummary() string {
	return fmt.Sprintf("training trace: %d block events (%d instrs); test trace: %d (%d)",
		r.s.TrainTrace.Len(), r.s.TrainTrace.Instrs, r.s.TestTrace.Len(), r.s.TestTrace.Instrs)
}

// Table1 renders the static-vs-executed footprint table.
func (r *Report) Table1() string { return experiments.FormatTable1(r.s.Table1()) }

// Figure2 renders the cumulative dynamic-reference curve.
func (r *Report) Figure2() string { return r.s.FormatFigure2() }

// Reuse renders the Section 4.1 temporal-locality statistics.
func (r *Report) Reuse() string { return experiments.FormatReuse(r.s.Reuse()) }

// Table2 renders the block-type/predictability classification.
func (r *Report) Table2() string { return experiments.FormatTable2(r.s.Table2()) }

// Sequentiality renders the instructions-between-taken-branches
// comparison across layouts.
func (r *Report) Sequentiality() string {
	return experiments.FormatSequentiality(r.s.Sequentiality())
}

// Table3 renders the i-cache miss-rate table over the test trace.
func (r *Report) Table3() string { return experiments.FormatTable3(r.s.Table3()) }

// Table4 renders the fetch-bandwidth (IPC) table.
func (r *Report) Table4() string {
	ideal, rows := r.s.Table4()
	return experiments.FormatTable4(ideal, rows)
}

// Ablation renders the STC threshold sweep (4KB cache, 1KB CFA).
func (r *Report) Ablation() string {
	return experiments.FormatAblation(
		r.s.AblationThresholds(experiments.CacheConfig{CacheBytes: 4096, CFABytes: 1024}))
}

// HottestBlocks lists the n most-executed basic blocks of the
// training set.
func (r *Report) HottestBlocks(n int) []BlockStat {
	return hottestBlocks(r.s.Profile, r.s.Img.Prog, n)
}
