package stcpipe

import (
	"strings"
	"testing"

	"repro/dsdb"
)

// TestProfileCachedCollapsesRepeats is the cached-profile acceptance
// check: with a result cache, round 1 of the workload executes and
// records a normal trace, and every later round is served from the
// cache — zero block events, zero instructions, nothing for the fetch
// unit to do. The instruction stream of a repeat-heavy DSS mix
// collapses to its first pass.
func TestProfileCachedCollapsesRepeats(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithResultCache(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	pipe := New(Validate())
	w, err := TPCD("mix", 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	pr, err := pipe.ProfileCached(db, w, rounds)
	if err != nil {
		t.Fatal(err)
	}
	marks := pr.MarkStats()
	if len(marks) != rounds*len(w.Queries) {
		t.Fatalf("got %d marks, want %d", len(marks), rounds*len(w.Queries))
	}
	var fill, repeat uint64
	for _, m := range marks {
		switch {
		case strings.HasPrefix(m.Label, "r1-"):
			if m.Blocks == 0 || m.Instrs == 0 {
				t.Fatalf("fill-round mark %s recorded nothing", m.Label)
			}
			fill += m.Instrs
		default:
			if m.Blocks != 0 || m.Instrs != 0 {
				t.Fatalf("repeat mark %s recorded %d blocks / %d instrs, want 0 (hit must emit no kernel trace)",
					m.Label, m.Blocks, m.Instrs)
			}
			repeat += m.Instrs
		}
	}
	if pr.Instrs() != fill+repeat || repeat != 0 {
		t.Fatalf("trace totals inconsistent: profile %d, fill %d, repeat %d", pr.Instrs(), fill, repeat)
	}
	st, ok := db.ResultCacheStats()
	if !ok || st.Hits != uint64((rounds-1)*len(w.Queries)) {
		t.Fatalf("cache stats = %+v (ok=%v), want %d hits", st, ok, (rounds-1)*len(w.Queries))
	}

	// The cached profile stays a first-class pipeline citizen: it can
	// train a layout and be simulated.
	lay, err := pr.Layout(STCOps(Params{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr.Simulate(lay, FetchConfig{CacheBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 {
		t.Fatalf("degenerate simulation: %+v", res)
	}
}

// TestProfileCachedRejectsMisuse pins the guard rails: no cache, or
// fewer than two rounds, is an error.
func TestProfileCachedRejectsMisuse(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	pipe := New()
	if _, err := pipe.ProfileCached(db, Training(), 2); err == nil {
		t.Fatal("ProfileCached accepted a cache-less database")
	}
	cdb, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithResultCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	if _, err := pipe.ProfileCached(cdb, Training(), 1); err == nil {
		t.Fatal("ProfileCached accepted rounds < 2")
	}
	if _, err := pipe.ProfileCached(cdb, Workload{Name: "empty"}, 2); err == nil {
		t.Fatal("ProfileCached accepted an empty workload")
	}
}
