package stcpipe_test

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/dsdb/stcpipe"
)

// Regenerate the golden files after an intentional formatting change:
//
//	go test ./dsdb/stcpipe -run TestReportGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the Report golden files under testdata/")

// goldenReport builds one shared Report for all golden checks — the
// expensive part (databases + traces) runs once. The tiny SF and
// fixed seed make every table deterministic.
var goldenReport = sync.OnceValues(func() (*stcpipe.Report, error) {
	return stcpipe.NewReport(stcpipe.ReportParams{SF: 0.0005, Seed: 42})
})

// TestReportGolden pins the paper-table formatting: each Report
// accessor's output must match its golden file byte for byte, so the
// table layout the README and EXPERIMENTS commentary rely on cannot
// drift silently.
func TestReportGolden(t *testing.T) {
	r, err := goldenReport()
	if err != nil {
		t.Fatalf("NewReport: %v", err)
	}
	sections := []struct {
		name   string
		render func() string
	}{
		{"trace_summary", r.TraceSummary},
		{"table1", r.Table1},
		{"figure2", r.Figure2},
		{"reuse", r.Reuse},
		{"table2", r.Table2},
		{"sequentiality", r.Sequentiality},
		{"table3", r.Table3},
		{"table4", r.Table4},
	}
	for _, s := range sections {
		t.Run(s.name, func(t *testing.T) {
			got := s.render()
			path := filepath.Join("testdata", s.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from %s\n--- got ---\n%s\n--- want ---\n%s",
					s.name, path, got, want)
			}
		})
	}
}
