package stcpipe_test

import (
	"testing"
	"time"

	"repro/dsdb"
	"repro/dsdb/stcpipe"
	"repro/dsdb/wcap"
)

// captureFor builds the wcap records a server running workload w over
// `sessions` closed-loop wire clients would capture: session ids from
// 1 in accept order, each session running the whole mix in order.
func captureFor(w stcpipe.Workload, sessions int) []wcap.Record {
	var recs []wcap.Record
	for s := 1; s <= sessions; s++ {
		for qi, q := range w.Queries {
			recs = append(recs, wcap.Record{
				Offset:  time.Duration(qi) * time.Millisecond,
				Session: uint32(s),
				Label:   w.Labels[qi],
				SQL:     q,
				Err:     wcap.OK,
			})
		}
	}
	return recs
}

// TestProfileReplayedMatchesServed is the loop-closing check: a
// capture describing the exact traffic ProfileServed drives (same
// sessions, same per-session query order) must profile to the same
// instruction trace — the captured workload is a faithful stand-in
// for the served one.
func TestProfileReplayedMatchesServed(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	w, err := stcpipe.TPCD("served", 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 3
	pipe := stcpipe.New(stcpipe.Validate())
	served, err := pipe.ProfileServed(db, sessions, w)
	if err != nil {
		t.Fatalf("ProfileServed: %v", err)
	}
	replayed, err := pipe.ProfileReplayed(db, captureFor(w, sessions))
	if err != nil {
		t.Fatalf("ProfileReplayed: %v", err)
	}
	if served.Events() != replayed.Events() || served.Instrs() != replayed.Instrs() {
		t.Fatalf("replayed profile differs from served: served %d events/%d instrs, replayed %d events/%d instrs",
			served.Events(), served.Instrs(), replayed.Events(), replayed.Instrs())
	}
	if fs, fr := served.Footprint(), replayed.Footprint(); fs != fr {
		t.Fatalf("footprints differ: served %+v, replayed %+v", fs, fr)
	}

	// And the replayed profile is a first-class pipeline citizen:
	// layouts train on it and simulate against it.
	lay, err := replayed.Layout(stcpipe.STCOps(stcpipe.Params{}))
	if err != nil {
		t.Fatalf("Layout over replayed profile: %v", err)
	}
	res, err := replayed.Simulate(lay, stcpipe.FetchConfig{CacheBytes: 4096})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.IPC() <= 0 {
		t.Fatalf("implausible IPC %v", res.IPC())
	}
}

// TestProfileReplayedFiltersAndRagged covers the capture shapes a
// real server produces: errored records and SHOW introspection are
// skipped, and sessions with unequal query counts interleave without
// error.
func TestProfileReplayedFiltersAndRagged(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	w, err := stcpipe.TPCD("rag", 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	recs := captureFor(w, 2)
	// Session 2 only ran the first query: drop its tail (ragged).
	recs = recs[:len(recs)-1]
	// Noise a real capture carries: a failed query and SHOW traffic.
	recs = append(recs,
		wcap.Record{Session: 3, Label: "bad", SQL: "select bogus", Err: wcap.ErrQuery},
		wcap.Record{Session: 3, Label: "mon", SQL: "show stats", Err: wcap.OK},
	)
	pipe := stcpipe.New(stcpipe.Validate())
	pr, err := pipe.ProfileReplayed(db, recs)
	if err != nil {
		t.Fatalf("ProfileReplayed: %v", err)
	}
	if pr.Events() == 0 || pr.Instrs() == 0 {
		t.Fatalf("empty replayed trace: %d events, %d instrs", pr.Events(), pr.Instrs())
	}
	// Immutable, like every merged multi-session profile.
	if err := pr.Run(db, w); err == nil {
		t.Fatal("Run on a replayed profile must error")
	}

	// A capture with nothing replayable errors loudly.
	if _, err := pipe.ProfileReplayed(db, []wcap.Record{
		{Session: 1, SQL: "show stats"},
		{Session: 1, SQL: "select 1", Err: wcap.ErrQuery},
	}); err == nil {
		t.Fatal("all-skipped capture must error")
	}
	if _, err := pipe.ProfileReplayed(db, nil); err == nil {
		t.Fatal("empty capture must error")
	}
}
