package dsdb_test

import (
	"context"
	"errors"
	"testing"

	"repro/dsdb"
	"repro/internal/db/executor"
	"repro/internal/db/sql"
	"repro/internal/db/value"
	"repro/internal/tpcd"
)

// openTPCD opens the default deterministic TPC-D database.
func openTPCD(t *testing.T, sf float64, opts ...dsdb.Option) *dsdb.DB {
	t.Helper()
	db, err := dsdb.Open(append([]dsdb.Option{dsdb.WithTPCD(sf)}, opts...)...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// TestStreamingMatchesSeedMaterialized is the acceptance check: a
// Rows-streaming TPC-D Q6 at SF 0.002 must return exactly what the
// seed's materialized engine.Run path returns.
func TestStreamingMatchesSeedMaterialized(t *testing.T) {
	db := openTPCD(t, 0.002)
	q6, ok := dsdb.TPCDQuery(6)
	if !ok {
		t.Fatal("no TPC-D Q6")
	}

	rows, err := db.Query(context.Background(), q6)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer rows.Close()
	var streamed [][]dsdb.Value
	for rows.Next() {
		streamed = append(streamed, rows.Values())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Rows.Err: %v", err)
	}

	// The seed's materialized path: tpcd.Build + sql.Exec with
	// identical configuration.
	cfg := tpcd.DefaultConfig()
	cfg.SF = 0.002
	seedDB, err := tpcd.Build(cfg)
	if err != nil {
		t.Fatalf("tpcd.Build: %v", err)
	}
	want, _, err := sql.Exec(seedDB, executor.NewCtx(nil), q6)
	if err != nil {
		t.Fatalf("sql.Exec: %v", err)
	}

	if len(streamed) != len(want) {
		t.Fatalf("streamed %d rows, seed path returned %d", len(streamed), len(want))
	}
	for i := range want {
		if len(streamed[i]) != len(want[i]) {
			t.Fatalf("row %d: %d columns, want %d", i, len(streamed[i]), len(want[i]))
		}
		for j := range want[i] {
			if value.Compare(streamed[i][j], want[i][j]) != 0 {
				t.Fatalf("row %d col %d: got %s, want %s", i, j, streamed[i][j], want[i][j])
			}
		}
	}
}

// TestPartialConsumptionAndClose checks that a partially consumed
// Rows can be closed early, that iteration stops afterwards, and that
// Close is idempotent.
func TestPartialConsumptionAndClose(t *testing.T) {
	db := openTPCD(t, 0.001)
	rows, err := db.Query(context.Background(), "select l_orderkey, l_linenumber from lineitem")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("Next %d: premature end (err=%v)", i, rows.Err())
		}
		var ok, ln int64
		if err := rows.Scan(&ok, &ln); err != nil {
			t.Fatalf("Scan: %v", err)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close after partial consumption: %v", err)
	}
	if rows.Next() {
		t.Fatal("Next returned true after Close")
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after clean Close: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestPrepareReuse checks that one compiled plan re-executes from
// scratch on every Query, and that concurrent re-execution of a busy
// statement is refused rather than corrupted.
func TestPrepareReuse(t *testing.T) {
	db := openTPCD(t, 0.001)
	q6, _ := dsdb.TPCDQuery(6)
	stmt, err := db.Prepare(q6)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	run := func() []dsdb.Value {
		rows, err := stmt.Query(context.Background())
		if err != nil {
			t.Fatalf("Stmt.Query: %v", err)
		}
		defer rows.Close()
		if !rows.Next() {
			t.Fatalf("no result row (err=%v)", rows.Err())
		}
		vals := rows.Values()
		// While the Rows is open the statement must refuse re-execution.
		if _, err := stmt.Query(context.Background()); !errors.Is(err, dsdb.ErrStmtBusy) {
			t.Fatalf("busy statement re-executed: err=%v", err)
		}
		return vals
	}
	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("re-execution changed arity: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if value.Compare(first[i], second[i]) != 0 {
			t.Fatalf("re-execution changed result: %s vs %s", first[i], second[i])
		}
	}
}

// TestContextCancellationMidScan cancels the context after a few rows
// and checks that iteration stops with the context's error.
func TestContextCancellationMidScan(t *testing.T) {
	db := openTPCD(t, 0.001)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.Query(ctx, "select l_orderkey from lineitem")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer rows.Close()
	for i := 0; i < 2; i++ {
		if !rows.Next() {
			t.Fatalf("Next %d: premature end (err=%v)", i, rows.Err())
		}
	}
	cancel()
	if rows.Next() {
		t.Fatal("Next returned true after cancellation")
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
	// A cancelled query must leave the statement reusable after Close.
	if err := rows.Close(); err != nil {
		t.Fatalf("Close after cancellation: %v", err)
	}
}

// TestCancellationInsidePipelineBreaker pre-cancels the context on a
// sorted query: the executor's Interrupt hook must stop the sort load
// rather than materialize the whole input first.
func TestCancellationInsidePipelineBreaker(t *testing.T) {
	db := openTPCD(t, 0.001)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := db.Query(ctx, "select l_orderkey from lineitem order by l_orderkey")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer rows.Close()
	if rows.Next() {
		t.Fatal("Next returned true under a cancelled context")
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
}

// TestDeterministicSeed checks that two databases opened with the
// same seed hold identical data, and that changing the seed changes
// the data.
func TestDeterministicSeed(t *testing.T) {
	const q = "select sum(l_extendedprice) from lineitem"
	sum := func(db *dsdb.DB) float64 {
		t.Helper()
		var v float64
		if err := db.QueryRow(context.Background(), q).Scan(&v); err != nil {
			t.Fatalf("QueryRow: %v", err)
		}
		return v
	}
	a := sum(openTPCD(t, 0.001, dsdb.WithSeed(7)))
	b := sum(openTPCD(t, 0.001, dsdb.WithSeed(7)))
	c := sum(openTPCD(t, 0.001, dsdb.WithSeed(8)))
	if a != b {
		t.Fatalf("same seed produced different databases: %v vs %v", a, b)
	}
	if a == c {
		t.Fatalf("different seeds produced identical databases: %v", a)
	}
}

// TestQueryRow covers the single-row convenience wrapper, including
// ErrNoRows.
func TestQueryRow(t *testing.T) {
	db := openTPCD(t, 0.001)
	var n int64
	if err := db.QueryRow(context.Background(), "select count(*) from orders").Scan(&n); err != nil {
		t.Fatalf("QueryRow: %v", err)
	}
	if n <= 0 {
		t.Fatalf("count(*) from orders = %d, want > 0", n)
	}
	err := db.QueryRow(context.Background(), "select o_orderkey from orders where o_orderkey < 0").Scan(&n)
	if !errors.Is(err, dsdb.ErrNoRows) {
		t.Fatalf("empty QueryRow err = %v, want ErrNoRows", err)
	}
}

// TestDDLPassthrough exercises CreateTable/CreateIndex/Insert and a
// query over a hand-built table.
func TestDDLPassthrough(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithBufferFrames(64))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := db.CreateTable("t",
		dsdb.Col("a", dsdb.Int), dsdb.Col("b", dsdb.Str)); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Insert("t", dsdb.NewInt(int64(i)), dsdb.NewStr("x")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := db.CreateIndex("t", "a", dsdb.BTree, true); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if got := db.NumRows("t"); got != 10 {
		t.Fatalf("NumRows = %d, want 10", got)
	}
	var a int64
	var b string
	if err := db.QueryRow(context.Background(), "select a, b from t where a = 7").Scan(&a, &b); err != nil {
		t.Fatalf("indexed lookup: %v", err)
	}
	if a != 7 || b != "x" {
		t.Fatalf("got (%d,%q), want (7,\"x\")", a, b)
	}
}

// TestExecMatchesQuery checks the materialized convenience path
// agrees with streaming.
func TestExecMatchesQuery(t *testing.T) {
	db := openTPCD(t, 0.001)
	const q = "select o_orderpriority, count(*) from orders group by o_orderpriority order by o_orderpriority"
	res, err := db.Exec(context.Background(), q)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	rows, err := db.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer rows.Close()
	i := 0
	for rows.Next() {
		vals := rows.Values()
		if i >= len(res.Rows) {
			t.Fatalf("streaming produced more than %d rows", len(res.Rows))
		}
		for j := range vals {
			if value.Compare(vals[j], res.Rows[i][j]) != 0 {
				t.Fatalf("row %d col %d: %s vs %s", i, j, vals[j], res.Rows[i][j])
			}
		}
		i++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Rows.Err: %v", err)
	}
	if i != len(res.Rows) {
		t.Fatalf("streaming produced %d rows, Exec %d", i, len(res.Rows))
	}
}
