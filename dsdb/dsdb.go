// Package dsdb is the public façade of the repository: a
// database/sql-flavored API over the instrumented decision-support
// database kernel that the Software Trace Cache reproduction is built
// around. Open a database with functional options, query it through a
// streaming Rows iterator, and attach a probe tracer to record the
// dynamic basic-block traces the paper's toolchain consumes (see
// dsdb/stcpipe for the profile → layout → simulate pipeline).
//
//	db, err := dsdb.Open(dsdb.WithTPCD(0.002))
//	rows, err := db.Query(ctx, "select sum(l_extendedprice) from lineitem")
//	for rows.Next() { ... rows.Scan(&v) ... }
//
// Prefixing a select with "explain" returns the chosen plan as rows
// (one line per operator); "explain analyze" executes it under
// per-operator instrumentation and annotates each operator with its
// actual row count, loop count, wall/self time and buffer-pool
// traffic. See the README's Observability section for a worked
// example.
//
// This package and dsdb/stcpipe are the only sanctioned entry points;
// everything under internal/ is implementation.
package dsdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/dsdb/obs"
	"repro/dsdb/qcache"
	"repro/internal/db/catalog"
	"repro/internal/db/engine"
	"repro/internal/db/probe"
	"repro/internal/db/value"
	"repro/internal/tpcd"
)

// Value is one SQL value (integer, float, string, date, bool or NULL).
type Value = value.Value

// Type enumerates SQL value types.
type Type = value.Type

// Value types.
const (
	Int   = value.Int
	Float = value.Float
	Str   = value.Str
	Date  = value.Date
	Bool  = value.Bool
	Null  = value.Null
)

// Value constructors, re-exported for the Insert passthrough.
var (
	NewInt   = value.NewInt
	NewFloat = value.NewFloat
	NewStr   = value.NewStr
	NewDate  = value.NewDate
	NewNull  = value.NewNull
	// ParseDate parses "YYYY-MM-DD" into day-number form.
	ParseDate = value.ParseDate
	// MakeDate builds a day number from year, month, day.
	MakeDate = value.MakeDate
)

// Column describes one column of a table schema.
type Column = catalog.Column

// Col is a convenience constructor for Column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// IndexKind selects the access method backing an index.
type IndexKind = catalog.IndexKind

// Index kinds.
const (
	BTree = catalog.BTree
	Hash  = catalog.Hash
)

// Tracer receives the kernel's instrumentation probe events. The
// stcpipe package supplies tracers that record basic-block traces; a
// nil tracer runs queries uninstrumented at zero cost.
type Tracer = probe.Tracer

// config collects the Open options.
type config struct {
	frames       int
	indexes      IndexKind
	tracer       Tracer
	seed         int64
	tpcdSF       float64
	loadTPCD     bool
	parallelism  int
	cacheBytes   int64
	cacheTTL     time.Duration
	cacheMinCost time.Duration
	dataDir      string
	obsCfg       obs.Config
}

// Option configures Open.
type Option func(*config)

// WithBufferFrames sizes the buffer pool (default 2048 frames).
func WithBufferFrames(n int) Option {
	return func(c *config) { c.frames = n }
}

// WithIndexKind selects the index access method used by the TPC-D
// preload and as the CreateIndex default context (default BTree). The
// paper builds one database of each kind.
func WithIndexKind(k IndexKind) Option {
	return func(c *config) { c.indexes = k }
}

// WithTracer attaches an instrumentation tracer at open time;
// equivalent to calling SetTracer afterwards.
func WithTracer(t Tracer) Option {
	return func(c *config) { c.tracer = t }
}

// WithTPCD preloads the 8-table TPC-D benchmark database at the given
// scale factor (SF=1 is the standard 1GB database; the paper-scale
// experiments use 0.002 and smaller). Generation is deterministic
// under WithSeed.
func WithTPCD(sf float64) Option {
	return func(c *config) {
		c.tpcdSF = sf
		c.loadTPCD = true
	}
}

// WithSeed seeds the deterministic data generator (default 42). Two
// databases opened with identical options always hold identical data,
// so benchmarks and experiments compare like with like.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithParallelism lets the planner fan sequential scans out over n
// partition workers (default 1: serial). Partitions are merged in
// page order, so a parallel query returns exactly the rows — in
// exactly the order — its serial plan would; only the timing changes.
// Parallel scan workers run untraced (the instrumentation session
// models one instruction stream); use serial queries, or separate
// sessions via QueryTraced, when recording traces.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithResultCache attaches a query result cache bounded to the given
// number of accounted bytes (see dsdb/qcache; 0, the default,
// disables caching). Repeated queries — the signature of
// decision-support traffic — are then answered from memory without
// touching the executor: a hit runs no scans, takes no buffer pool
// hits or misses, and emits no kernel instrumentation events. Results
// are always consistent: entries are validated against per-table
// write epochs, so any Insert or DDL on a referenced table
// invalidates every cached result that read it. Local queries and
// queries served over the wire (dsdb/server) share the one cache.
//
// Caching trades instrumentation fidelity for speed: a traced session
// whose query hits the cache records nothing for it (that collapse is
// exactly what stcpipe's cached-profile mode measures). Leave the
// cache off for paper-faithful profiles.
func WithResultCache(bytes int64) Option {
	return func(c *config) { c.cacheBytes = bytes }
}

// WithResultCacheTTL bounds the wall-clock lifetime of result-cache
// entries (0, the default, keeps entries until invalidation or
// eviction). Expired entries are dropped on first touch and counted as
// misses — the knob for workloads whose answers go stale by clock time
// even though no tracked table changed (external feeds, approximate
// dashboards). Meaningful only together with WithResultCache.
func WithResultCacheTTL(ttl time.Duration) Option {
	return func(c *config) { c.cacheTTL = ttl }
}

// WithResultCacheAdmission sets the result cache's admission
// threshold: a query whose first execution completed faster than min
// is not cached at all (0, the default, admits everything). Cheap
// queries — the sub-millisecond point lookups that pepper DSS traffic
// — are cheaper to re-run than the cache space they would steal from
// the expensive aggregates the cache exists for. Meaningful only
// together with WithResultCache.
func WithResultCacheAdmission(min time.Duration) Option {
	return func(c *config) { c.cacheMinCost = min }
}

// WithDataDir makes the database durable, rooted at dir: pages live in
// checkpoint-generation files on disk, and every Insert and DDL
// statement is write-ahead logged, so the database survives crashes
// and restarts. Opening a directory that already holds a database
// recovers it — replaying the log to the exact committed prefix — and
// skips any WithTPCD preload (the warm start dsdbd restarts rely on);
// a fresh directory is populated (bulk-loading TPC-D unlogged and
// checkpointing it, when WithTPCD is given) and then logs normally.
// Close checkpoints, so a cleanly closed database reopens with an
// empty log. See DB.Checkpoint for the explicit durability point.
func WithDataDir(dir string) Option {
	return func(c *config) { c.dataDir = dir }
}

// WithObservability tunes (or, with Config.Disabled, turns off) the
// query-observability tracer every database carries by default: spans
// with per-stage timings for each query, a recent-query ring, and a
// slow-query ring/log (see dsdb/obs and DB.Obs). Observability is on
// by default because its cost is a pooled span and a handful of clock
// reads per query; disable it to measure the kernel bare.
func WithObservability(cfg obs.Config) Option {
	return func(c *config) { c.obsCfg = cfg }
}

// DB is one open database, safe for concurrent use: any number of
// goroutines may call Query, QueryRow, Exec and Prepare at once, each
// execution getting its own executor context. Queries hold the
// engine latch shared — the latch prefers readers, so nested queries
// from a goroutine that is mid-iteration are fine. Insert,
// CreateTable and CreateIndex take the latch exclusively: writes wait
// for every open result set to close (always Close your Rows) and
// must not be issued from a goroutine that is itself mid-iteration.
// An individual Stmt or Rows remains single-threaded: share the DB,
// not the statement.
type DB struct {
	eng *engine.DB

	mu          sync.Mutex // guards tracer and parallelism
	tracer      Tracer
	parallelism int

	// workerCounts accumulates probe events from parallel-scan
	// workers, whose kernel work runs outside the session trace.
	workerCounts *probe.CountingTracer

	// cache is the query result cache (nil when Open ran without
	// WithResultCache). It is immutable after Open.
	cache *qcache.Cache

	// obs is the query-observability tracer (nil when opened with
	// WithObservability(obs.Config{Disabled: true})). Immutable after
	// Open; shared by local queries and every served session.
	obs *obs.Tracer

	// recovered reports that Open found existing durable state in the
	// data directory and replayed it instead of loading fresh data.
	recovered bool
}

// Open creates a database configured by the given options.
func Open(opts ...Option) (*DB, error) {
	cfg := config{frames: 2048, indexes: BTree, seed: 42}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.frames <= 0 {
		return nil, fmt.Errorf("dsdb: buffer pool must have at least 1 frame, got %d", cfg.frames)
	}
	var eng *engine.DB
	recovered := false
	if cfg.dataDir != "" {
		var err error
		eng, recovered, err = engine.OpenDurable(cfg.frames, cfg.dataDir)
		if err != nil {
			return nil, fmt.Errorf("dsdb: opening data dir %s: %w", cfg.dataDir, err)
		}
	} else {
		eng = engine.Open(cfg.frames)
	}
	db := &DB{
		eng:          eng,
		tracer:       cfg.tracer,
		parallelism:  cfg.parallelism,
		workerCounts: probe.NewCountingTracer(),
		recovered:    recovered,
	}
	if !cfg.obsCfg.Disabled {
		db.obs = obs.New(cfg.obsCfg)
	}
	if cfg.cacheBytes > 0 {
		db.cache = qcache.NewWith(qcache.Config{
			MaxBytes: cfg.cacheBytes,
			TTL:      cfg.cacheTTL,
			MinCost:  cfg.cacheMinCost,
		})
	}
	if cfg.loadTPCD && recovered {
		// The warm start is about to skip the preload, so the directory
		// must actually hold the database these options describe —
		// serving an sf 0.001 build to a caller who asked for 0.01
		// would be silently wrong-scale.
		if err := checkTPCDStamp(cfg); err != nil {
			db.eng.Abandon()
			return nil, err
		}
	}
	if cfg.loadTPCD && !recovered {
		// BufferFrames is not set: the engine is already sized above;
		// tpcd.Load fills an existing engine. A durable bulk load runs
		// unlogged — per-row WAL records for millions of generated rows
		// would be pure overhead — and the checkpoint that follows
		// captures the loaded state in page files and turns logging on.
		tc := tpcd.Config{
			SF:      cfg.tpcdSF,
			Seed:    cfg.seed,
			Indexes: cfg.indexes,
		}
		db.eng.SetLogging(false)
		if err := tpcd.Load(db.eng, tc); err != nil {
			db.eng.SetLogging(true)
			if cfg.dataDir != "" {
				db.eng.Abandon()
			}
			return nil, fmt.Errorf("dsdb: loading TPC-D: %w", err)
		}
		if cfg.dataDir != "" {
			if err := db.eng.Checkpoint(); err != nil {
				db.eng.Abandon()
				return nil, fmt.Errorf("dsdb: checkpointing TPC-D load: %w", err)
			}
			if err := writeTPCDStamp(cfg); err != nil {
				db.eng.Abandon()
				return nil, fmt.Errorf("dsdb: stamping TPC-D build: %w", err)
			}
		} else {
			db.eng.SetLogging(true)
		}
	}
	return db, nil
}

// tpcdStamp records how a data directory's TPC-D dataset was built,
// so a warm start can refuse options that describe a different
// database instead of silently serving the wrong one.
type tpcdStamp struct {
	SF      float64 `json:"sf"`
	Seed    int64   `json:"seed"`
	Indexes string  `json:"indexes"`
}

func tpcdStampPath(dir string) string { return filepath.Join(dir, "TPCD.json") }

func writeTPCDStamp(cfg config) error {
	data, err := json.Marshal(tpcdStamp{SF: cfg.tpcdSF, Seed: cfg.seed, Indexes: cfg.indexes.String()})
	if err != nil {
		return err
	}
	return os.WriteFile(tpcdStampPath(cfg.dataDir), append(data, '\n'), 0o644)
}

// checkTPCDStamp validates a warm start's WithTPCD options against the
// directory's build stamp.
func checkTPCDStamp(cfg config) error {
	data, err := os.ReadFile(tpcdStampPath(cfg.dataDir))
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("dsdb: data dir %s holds a recovered database with no TPC-D build stamp; open it without WithTPCD or use a fresh directory", cfg.dataDir)
		}
		return err
	}
	var st tpcdStamp
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("dsdb: corrupt TPC-D stamp in %s: %w", cfg.dataDir, err)
	}
	if st.SF != cfg.tpcdSF || st.Seed != cfg.seed || st.Indexes != cfg.indexes.String() {
		return fmt.Errorf("dsdb: data dir %s was built with TPC-D sf=%g seed=%d %s indices; requested sf=%g seed=%d %s — pass matching options or a different directory",
			cfg.dataDir, st.SF, st.Seed, st.Indexes, cfg.tpcdSF, cfg.seed, cfg.indexes.String())
	}
	return nil
}

// SetTracer attaches (or, with nil, detaches) the instrumentation
// tracer. The tracer is bound into statements when they are compiled,
// so it affects subsequent Query/Prepare calls, not open statements.
// A tracer set here is shared by every new statement and is itself
// single-threaded; concurrent sessions that each need their own trace
// should bind per-session tracers with PrepareTraced/QueryTraced
// instead.
func (db *DB) SetTracer(t Tracer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tracer = t
}

// Tracer returns the currently attached tracer (nil when untraced).
func (db *DB) Tracer() Tracer {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tracer
}

// SetParallelism changes the scan parallelism bound into subsequent
// Query/Prepare calls (see WithParallelism).
func (db *DB) SetParallelism(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.parallelism = n
}

// WorkerProbeEvents returns the cumulative number of kernel
// instrumentation events emitted by parallel-scan workers since Open.
// Worker-side work runs outside the (single-threaded) session trace;
// this counter is how it stays visible — 0 means every scan ran
// serially.
func (db *DB) WorkerProbeEvents() uint64 { return db.workerCounts.Total() }

// ResultCache returns the query result cache, or nil when Open ran
// without WithResultCache. Useful for stats reporting and for
// explicit Clear/Invalidate in tests and tools.
func (db *DB) ResultCache() *qcache.Cache { return db.cache }

// ResultCacheStats snapshots the result cache counters; ok is false
// when caching is disabled.
func (db *DB) ResultCacheStats() (stats qcache.Stats, ok bool) {
	if db.cache == nil {
		return qcache.Stats{}, false
	}
	return db.cache.Stats(), true
}

// TableEpoch returns a table's write epoch — the counter behind
// result-cache invalidation, bumped by every Insert/DDL on the table
// (0 for an unknown or never-written table).
func (db *DB) TableEpoch(table string) uint64 {
	release := db.eng.BeginRead()
	defer release()
	return db.eng.TableEpoch(table)
}

// TableStat describes one table for introspection (the server's
// SHOW TABLES virtual table is built on it).
type TableStat struct {
	// Name is the table name.
	Name string
	// Rows is the loaded cardinality.
	Rows int
	// Epoch is the table's write epoch (see TableEpoch).
	Epoch uint64
	// Indexes is the number of indices on the table.
	Indexes int
}

// TableStats snapshots every table in catalog order: name,
// cardinality, write epoch, index count. The snapshot is taken under
// the shared engine latch, so it is consistent with respect to
// writers.
func (db *DB) TableStats() []TableStat {
	release := db.eng.BeginRead()
	defer release()
	tables := db.eng.Cat.Tables()
	out := make([]TableStat, 0, len(tables))
	for _, t := range tables {
		out = append(out, TableStat{
			Name:    t.Name,
			Rows:    db.eng.NumRows(t.Name),
			Epoch:   db.eng.TableEpoch(t.Name),
			Indexes: len(t.Indexes),
		})
	}
	return out
}

// PoolStats is a snapshot of the buffer pool's counters.
type PoolStats struct {
	// Frames is the configured pool size; Pinned counts frames
	// currently pinned by open scans.
	Frames, Pinned int
	// Hits and Misses are the cumulative page-access counters.
	Hits, Misses uint64
}

// PoolStats snapshots the buffer pool counters (all atomics or
// pool-internal state; no engine latch is taken).
func (db *DB) PoolStats() PoolStats {
	hits, misses := db.eng.Buf.Stats()
	return PoolStats{
		Frames: db.eng.Buf.Size(),
		Pinned: db.eng.Buf.PinnedFrames(),
		Hits:   hits,
		Misses: misses,
	}
}

// WALStats is a snapshot of the write-ahead log state.
type WALStats struct {
	// Durable reports whether the database persists to a data dir at
	// all; Seq is the WAL segment currently appended to (0 when not
	// durable).
	Durable bool
	Seq     uint64
	// Appends and Fsyncs are the log writer's lifetime counters:
	// records appended and segment fsyncs (both 0 when not durable).
	Appends uint64
	Fsyncs  uint64
}

// WALStats snapshots the write-ahead log state.
func (db *DB) WALStats() WALStats {
	ctr := db.eng.WALCounters()
	return WALStats{Durable: db.eng.Durable(), Seq: db.eng.WALSeq(),
		Appends: ctr.Appends, Fsyncs: ctr.Fsyncs}
}

// CreateTable registers a table with the given columns.
func (db *DB) CreateTable(name string, cols ...Column) error {
	if len(cols) == 0 {
		return fmt.Errorf("dsdb: table %q needs at least one column", name)
	}
	_, err := db.eng.CreateTable(name, catalog.NewSchema(cols...))
	return err
}

// CreateIndex builds an index on table.column. Build indices after
// loading: hash bucket counts are sized from current cardinality.
func (db *DB) CreateIndex(table, column string, kind IndexKind, unique bool) error {
	return db.eng.CreateIndex(table, column, kind, unique)
}

// Obs returns the database's query-observability tracer: recent and
// slow query records, per-stage aggregate histograms, and the
// slow-query threshold/logger knobs. Nil when observability was
// disabled at Open (every tracer method is nil-safe, so callers may
// chain without checking).
func (db *DB) Obs() *obs.Tracer { return db.obs }

// Insert appends one row to a table, maintaining its indices. Like
// queries, inserts are observed: the span's WAL stage times the
// write-ahead append/fsync on durable databases.
func (db *DB) Insert(table string, row ...Value) error {
	sp := db.obs.Begin("insert", "insert "+table)
	err := db.eng.InsertSpanned(table, row, sp)
	if err != nil {
		sp.SetErr(err)
	} else {
		sp.AddRows(1)
	}
	sp.End()
	return err
}

// NumRows returns a table's loaded cardinality.
func (db *DB) NumRows(table string) int {
	release := db.eng.BeginRead()
	defer release()
	return db.eng.NumRows(table)
}

// WarmStarted reports whether Open found an existing database in its
// data directory and recovered it (skipping any WithTPCD preload)
// rather than loading fresh data. Always false without WithDataDir.
func (db *DB) WarmStarted() bool { return db.recovered }

// Durable reports whether the database persists to a data directory.
func (db *DB) Durable() bool { return db.eng.Durable() }

// Checkpoint makes the current committed state the recovery base of a
// durable database: dirty pages are flushed and fsynced into a fresh
// generation of page files, the catalog manifest is atomically
// republished, and the write-ahead log is truncated — after it
// returns, recovery replays nothing. The engine is quiesced for the
// duration (checkpoints wait for open result sets, like any writer).
// On a non-durable database it degrades to a flush.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Close shuts the database down. A durable database checkpoints first
// — so the next Open recovers instantly with an empty log — then
// releases its files and directory lock; an in-memory database just
// flushes its dirty pages. Close is idempotent.
func (db *DB) Close() error { return db.eng.Close() }

// Abandon drops a durable database without checkpointing or flushing,
// leaving the data directory exactly as a crash at this instant would
// — and releasing the directory lock so it can be reopened. The next
// Open recovers by replaying the write-ahead log. It is the
// crash-simulation hook the durability tests are built on; on an
// in-memory database it simply discards everything.
func (db *DB) Abandon() { db.eng.Abandon() }

// Engine exposes the underlying kernel engine for the stcpipe
// pipeline and tests inside this module. External code cannot name
// the returned type (it lives under internal/) and should treat this
// as an opaque handle.
func (db *DB) Engine() *engine.DB { return db.eng }

// TPCDQuery returns the text of one of the paper's TPC-D queries
// (2,3,4,5,6,9,11,12,13,14,15,17).
func TPCDQuery(n int) (string, bool) { return tpcd.Query(n) }

// TPCDQueryNumbers lists the available TPC-D query numbers.
func TPCDQueryNumbers() []int { return tpcd.AllQueryNumbers() }
