package dsdb_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dsdb"
	"repro/dsdb/obs"
)

// Regenerate the plan goldens after an intentional planner or renderer
// change:
//
//	go test ./dsdb -run TestExplainPlanGoldens -update
var updatePlans = flag.Bool("update", false, "rewrite the TPC-D plan goldens under testdata/plans/")

// planSF is the scale factor the plan goldens are pinned at. The
// planner's choices depend only on schema and indexes (not table
// sizes), but the ANALYZE cardinalities in the sibling tests do not —
// keep every test in this file on the same database.
const planSF = 0.005

// planDB loads one shared serial database for all EXPLAIN tests.
var planDB = sync.OnceValues(func() (*dsdb.DB, error) {
	return dsdb.Open(dsdb.WithTPCD(planSF), dsdb.WithSeed(42))
})

func openPlanDB(t *testing.T) *dsdb.DB {
	t.Helper()
	db, err := planDB()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// runExplain executes an EXPLAIN (or EXPLAIN ANALYZE) statement and
// returns the plan lines.
func runExplain(t *testing.T, db *dsdb.DB, query string) []string {
	t.Helper()
	rows, err := db.Query(context.Background(), query)
	if err != nil {
		t.Fatalf("Query(%q): %v", query, err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 1 || cols[0] != dsdb.ExplainColumn {
		t.Fatalf("EXPLAIN columns = %v, want [%s]", cols, dsdb.ExplainColumn)
	}
	var lines []string
	for rows.Next() {
		lines = append(lines, rows.Values()[0].S)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("EXPLAIN stream: %v", err)
	}
	return lines
}

// TestExplainPlanGoldens pins the plan shape of every TPC-D query the
// repo carries. A planner change that moves a join order, scan kind or
// predicate placement shows up here as a readable plan diff — commit
// it by regenerating with -update.
func TestExplainPlanGoldens(t *testing.T) {
	db := openPlanDB(t)
	for _, qn := range dsdb.TPCDQueryNumbers() {
		t.Run(fmt.Sprintf("Q%d", qn), func(t *testing.T) {
			q, _ := dsdb.TPCDQuery(qn)
			got := strings.Join(runExplain(t, db, "explain "+q), "\n") + "\n"
			path := filepath.Join("testdata", "plans", fmt.Sprintf("q%d.golden", qn))
			if *updatePlans {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan for Q%d drifted:\n--- got ---\n%s--- want ---\n%s", qn, got, want)
			}
		})
	}
}

// rootActual parses the "actual rows=N" counter off an ANALYZE plan's
// root line.
func rootActual(t *testing.T, lines []string) int64 {
	t.Helper()
	if len(lines) == 0 {
		t.Fatal("empty ANALYZE plan")
	}
	_, after, ok := strings.Cut(lines[0], "actual rows=")
	if !ok {
		t.Fatalf("root line carries no counters: %q", lines[0])
	}
	num, _, _ := strings.Cut(after, " ")
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		t.Fatalf("unparsable rows counter in %q: %v", lines[0], err)
	}
	return n
}

// TestExplainAnalyzeCardinalities runs every TPC-D query twice — once
// plainly, once under EXPLAIN ANALYZE — and requires the root
// operator's actual-rows counter to equal the real result cardinality.
// Under -race this also exercises the analyze tracer against the
// parallel-scan workers' probe traffic.
func TestExplainAnalyzeCardinalities(t *testing.T) {
	db := openPlanDB(t)
	for _, qn := range dsdb.TPCDQueryNumbers() {
		q, _ := dsdb.TPCDQuery(qn)
		res, err := db.Exec(context.Background(), q)
		if err != nil {
			t.Fatalf("Q%d: %v", qn, err)
		}
		lines := runExplain(t, db, "explain analyze "+q)
		if got, want := rootActual(t, lines), int64(len(res.Rows)); got != want {
			t.Errorf("Q%d: ANALYZE root reports %d rows, query returned %d\n%s",
				qn, got, want, strings.Join(lines, "\n"))
		}
		// Every operator line (not the indented predicate details)
		// must carry the full counter suffix.
		for _, l := range lines {
			trimmed := strings.TrimLeft(l, " ->")
			if strings.HasPrefix(trimmed, "Filter:") || strings.HasPrefix(trimmed, "Index Cond:") ||
				strings.HasPrefix(trimmed, "Join Filter:") {
				continue
			}
			if !strings.Contains(l, "actual rows=") || !strings.Contains(l, "buf_hits=") {
				t.Errorf("Q%d: operator line missing counters: %q", qn, l)
			}
		}
	}
}

// TestExplainAnalyzeTimeMatchesSpan is the accounting acceptance: the
// root operator's inclusive wall time and the span's exec+io+wal
// stages both measure the same drain, so they must agree within slack.
// Best of a few runs guards against scheduler noise on tiny intervals.
func TestExplainAnalyzeTimeMatchesSpan(t *testing.T) {
	db := openPlanDB(t)
	q, _ := dsdb.TPCDQuery(3)
	ok := false
	var lastDetail string
	for attempt := 0; attempt < 5 && !ok; attempt++ {
		lines := runExplain(t, db, "explain analyze "+q)
		_, after, found := strings.Cut(lines[0], "time=")
		if !found {
			t.Fatalf("root line carries no time: %q", lines[0])
		}
		ms, _, _ := strings.Cut(after, "ms")
		rootMS, err := strconv.ParseFloat(ms, 64)
		if err != nil {
			t.Fatalf("unparsable time in %q: %v", lines[0], err)
		}
		rootWall := time.Duration(rootMS * float64(time.Millisecond))

		// Recent() is newest-first; the ANALYZE just above is the first
		// record carrying a top_op.
		var rec *obs.Record
		for _, r := range db.Obs().Recent() {
			if r.TopOp != "" {
				rec = &r
				break
			}
		}
		if rec == nil {
			t.Fatal("no ANALYZE record with a top_op in the recent ring")
		}
		stages := rec.Stages[obs.StageExec] + rec.Stages[obs.StageIO] + rec.Stages[obs.StageWAL]
		ratio := float64(rootWall) / float64(stages)
		lastDetail = fmt.Sprintf("root=%v stages=%v ratio=%.2f top_op=%q", rootWall, stages, ratio, rec.TopOp)
		// The root wall is inside the timed drain, so it cannot exceed
		// the stages by more than the renderer's 1µs rounding; it must
		// also account for most of them (the drain loop itself is thin).
		ok = ratio >= 0.7 && float64(rootWall) <= float64(stages)*1.05+float64(10*time.Microsecond)
	}
	if !ok {
		t.Fatalf("operator time does not reconcile with the span stages: %s", lastDetail)
	}
}

// TestExplainAnalyzeSetsTopOp: the slow-query attribution rides the
// ANALYZE execution into the recent ring.
func TestExplainAnalyzeSetsTopOp(t *testing.T) {
	db := openPlanDB(t)
	q, _ := dsdb.TPCDQuery(6)
	lines := runExplain(t, db, "explain analyze "+q)
	var rec *obs.Record
	for _, r := range db.Obs().Recent() { // newest first
		if r.TopOp != "" {
			rec = &r
			break
		}
	}
	if rec == nil {
		t.Fatal("ANALYZE left no top_op in the recent ring")
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, rec.TopOp) {
			found = true
		}
	}
	if !found {
		t.Fatalf("top_op %q is not an operator of the executed plan:\n%s",
			rec.TopOp, strings.Join(lines, "\n"))
	}
	if !strings.Contains(rec.LogLine(), fmt.Sprintf("top_op=%q", rec.TopOp)) {
		t.Fatalf("log line misses top_op: %s", rec.LogLine())
	}
}

// TestExplainPrepareRejected: Instrument rewires plans in place, so
// EXPLAIN must not reach the shared prepared-statement path.
func TestExplainPrepareRejected(t *testing.T) {
	db := openPlanDB(t)
	q, _ := dsdb.TPCDQuery(6)
	for _, stmt := range []string{"explain " + q, "explain analyze " + q} {
		if _, err := db.Prepare(stmt); err == nil {
			t.Fatalf("Prepare(%.30q...) succeeded, want rejection", stmt)
		}
	}
}

// TestExplainBypassesResultCache: EXPLAIN results never come from or
// land in the result cache, while the same query text keeps caching
// normally around them.
func TestExplainBypassesResultCache(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.001), dsdb.WithSeed(42), dsdb.WithResultCache(8<<20))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	q, _ := dsdb.TPCDQuery(6)
	for i := 0; i < 2; i++ {
		rows, err := db.Query(context.Background(), "explain analyze "+q)
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if rows.CacheHit() {
			t.Fatal("EXPLAIN ANALYZE served from the result cache")
		}
		rows.Close()
	}
	st, enabled := db.ResultCacheStats()
	if !enabled {
		t.Fatal("result cache unexpectedly disabled")
	}
	if st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("EXPLAIN touched the result cache: %+v", st)
	}
	// The unprefixed query still caches: miss then hit.
	for i := 0; i < 2; i++ {
		if _, err := db.Exec(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	st, _ = db.ResultCacheStats()
	if st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("ordinary caching broken around EXPLAIN: %+v", st)
	}
}

// TestExplainParallelPlan: with parallelism configured, the plan
// renders the parallel scan's degree and ANALYZE attributes the
// workers' buffer traffic to it.
func TestExplainParallelPlan(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.005), dsdb.WithSeed(42), dsdb.WithParallelism(4))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	const q = "select sum(l_extendedprice * l_discount), count(*) from lineitem where l_quantity < 24 and l_discount > 0.02"
	lines := runExplain(t, db, "explain "+q)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "Parallel Seq Scan on lineitem (degree 4)") {
		t.Fatalf("parallel plan not rendered:\n%s", joined)
	}
	lines = runExplain(t, db, "explain analyze "+q)
	for _, l := range lines {
		if !strings.Contains(l, "Parallel Seq Scan") {
			continue
		}
		_, after, _ := strings.Cut(l, "buf_hits=")
		num, _, _ := strings.Cut(after, " ")
		if n, _ := strconv.ParseInt(num, 10, 64); n == 0 {
			t.Fatalf("worker buffer traffic not attributed to the scan: %q", l)
		}
		return
	}
	t.Fatalf("ANALYZE plan lost the parallel scan:\n%s", strings.Join(lines, "\n"))
}
