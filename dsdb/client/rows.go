package client

import (
	"bufio"
	"context"
	"net"
	"sync"
	"time"

	"repro/dsdb"
	"repro/dsdb/wire"
)

// conn is one protocol connection: synchronous request/response with
// at most one result stream in flight. The write side is guarded by
// wmu because a cancellation watcher may inject a Cancel frame while
// the owning goroutine reads the stream.
type conn struct {
	nc        net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	sessionID uint32
	wmu       sync.Mutex
}

// send writes and flushes one frame.
func (c *conn) send(k wire.Kind, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(c.w, k, payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// read decodes the next server frame.
func (c *conn) read() (wire.Frame, error) {
	return wire.ReadFrame(c.r)
}

// close tears the connection down, telling the server first when
// possible.
func (c *conn) close() {
	c.send(wire.KindQuit, nil)
	c.nc.Close()
}

// Rows is a streaming remote result set with the same iteration
// surface as dsdb.Rows: Next/Scan/Values/Columns/Err/Close. Row
// batches are decoded as they arrive; nothing beyond one batch is
// buffered client-side.
type Rows struct {
	db        *DB // pool to return the conn to; nil when a Stmt owns it
	c         *conn
	ctx       context.Context
	onRelease func()

	cols      []string
	batch     [][]dsdb.Value
	idx       int
	cur       []dsdb.Value
	err       error
	done      bool   // terminal frame (Done or Error) received
	doneFlags uint8  // execution flags from the Done frame
	queryID   uint64 // server-assigned query id from the Done frame
	released  bool

	// cancelMu serializes the context watcher against stream
	// completion: exactly one of "query finished" / "Cancel sent" wins.
	cancelMu   sync.Mutex
	finished   bool
	cancelSent bool
	stop       chan struct{}
}

// cancelGrace is how long a cancelled query waits for the server to
// acknowledge the Cancel frame before the connection is severed — the
// bound that keeps cancellation meaningful against a hung or
// partitioned server.
const cancelGrace = 5 * time.Second

// newRows consumes the response header for a just-submitted query.
// The cancellation watcher starts before the header read, so a
// context that expires while the server is still compiling (or
// queued behind a writer latch) interrupts the query too. A
// query-level error frame surfaces as the returned error with the
// connection still healthy.
func newRows(db *DB, c *conn, ctx context.Context) (*Rows, error) {
	r := &Rows{db: db, c: c, ctx: ctx, stop: make(chan struct{})}
	go r.watchCtx()
	fr, err := c.read()
	if err != nil {
		r.release(false)
		return nil, err
	}
	switch fr.Kind {
	case wire.KindRowHeader:
		h, err := wire.DecodeRowHeader(fr.Payload)
		if err != nil {
			r.release(false)
			return nil, err
		}
		r.cols = h.Columns
		return r, nil
	case wire.KindError:
		ef, derr := wire.DecodeError(fr.Payload)
		r.release(true) // the session survives query-level failures
		if derr != nil {
			return nil, derr
		}
		if ef.Code == wire.CodeCancelled && ctx.Err() != nil {
			// Cancellation that landed before the first frame must look
			// exactly like cancellation mid-stream: the context's error.
			return nil, ctx.Err()
		}
		return nil, ef
	default:
		r.release(false)
		return nil, wire.ErrorFrame{Code: wire.CodeProto, Message: "unexpected " + fr.Kind.String() + " frame"}
	}
}

// watchCtx sends one Cancel frame the moment the query's context is
// done, unless the stream already finished — this is what lets a
// client blocked mid-stream interrupt the server — then severs the
// connection if the server does not end the stream within the grace
// period, unblocking any reader.
func (r *Rows) watchCtx() {
	select {
	case <-r.ctx.Done():
		r.cancelMu.Lock()
		finished := r.finished
		if !finished && !r.cancelSent {
			r.cancelSent = true
			r.c.send(wire.KindCancel, nil)
		}
		r.cancelMu.Unlock()
		if finished {
			return
		}
		select {
		case <-r.stop:
		case <-time.After(cancelGrace):
			r.cancelMu.Lock()
			if !r.finished {
				// No acknowledgement: the server is hung or unreachable.
				// Closing the socket fails the pending read, which
				// releases the Rows with the connection discarded.
				r.c.nc.Close()
			}
			r.cancelMu.Unlock()
		}
	case <-r.stop:
	}
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row; false at end of stream, on error, or
// when the context is cancelled (consult Err).
func (r *Rows) Next() bool {
	if r.released || r.err != nil {
		return false
	}
	for {
		if r.idx < len(r.batch) {
			r.cur = r.batch[r.idx]
			r.idx++
			return true
		}
		if r.done {
			r.release(true)
			return false
		}
		if err := r.ctx.Err(); err != nil {
			r.err = err
			r.abort()
			return false
		}
		fr, err := r.c.read()
		if err != nil {
			r.err = err
			r.release(false)
			return false
		}
		switch fr.Kind {
		case wire.KindRowBatch:
			b, err := wire.DecodeRowBatch(fr.Payload)
			if err != nil {
				r.err = err
				r.release(false)
				return false
			}
			r.batch = b.Rows
			r.idx = 0
		case wire.KindDone:
			r.done = true
			if dn, err := wire.DecodeDone(fr.Payload); err != nil {
				r.err = err
				r.release(false)
				return false
			} else {
				r.doneFlags = dn.Flags
				r.queryID = dn.QueryID
			}
		case wire.KindError:
			r.done = true
			ef, derr := wire.DecodeError(fr.Payload)
			switch {
			case derr != nil:
				r.err = derr
			case ef.Code == wire.CodeCancelled && r.ctx.Err() != nil:
				// The server confirms the cancellation we asked for;
				// surface the context's own error, like dsdb.Rows.
				r.err = r.ctx.Err()
			default:
				r.err = ef
			}
		default:
			r.err = wire.ErrorFrame{Code: wire.CodeProto, Message: "unexpected " + fr.Kind.String() + " frame in stream"}
			r.release(false)
			return false
		}
	}
}

// Values returns a copy of the current row.
func (r *Rows) Values() []dsdb.Value {
	return append([]dsdb.Value(nil), r.cur...)
}

// Scan copies the current row into dest with dsdb.Rows.Scan
// semantics.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return wire.ErrorFrame{Code: wire.CodeProto, Message: "Scan called without a successful Next"}
	}
	return dsdb.ScanRow(r.cur, r.cols, dest...)
}

// Err returns the error, if any, that ended iteration. Context
// cancellation surfaces here as the context's error.
func (r *Rows) Err() error { return r.err }

// CacheHit reports whether the server answered this query from its
// result cache (the DoneFlagCacheHit attribution on the terminal
// frame). It is meaningful only after the stream completed — i.e.
// once Next has returned false with a nil Err.
func (r *Rows) CacheHit() bool { return r.doneFlags&wire.DoneFlagCacheHit != 0 }

// QueryID returns the server-assigned id for this execution — the
// correlation handle for the server's SHOW queries / SHOW slow
// virtual tables and slow-query log. Like CacheHit it is meaningful
// only after the stream completed (Next returned false, nil Err).
func (r *Rows) QueryID() uint64 { return r.queryID }

// Close releases the result set, cancelling the server-side query if
// the stream was not fully consumed. Idempotent and safe to defer.
func (r *Rows) Close() error {
	if r.released {
		return nil
	}
	if r.done {
		r.release(true)
		return nil
	}
	r.abort()
	return nil
}

// abort interrupts an unfinished stream: ensure one Cancel frame went
// out, then drain to the terminal frame so the connection is
// frame-aligned for its next query.
func (r *Rows) abort() {
	r.cancelMu.Lock()
	if !r.cancelSent {
		r.cancelSent = true
		if err := r.c.send(wire.KindCancel, nil); err != nil {
			r.cancelMu.Unlock()
			r.release(false)
			return
		}
	}
	r.cancelMu.Unlock()
	for {
		fr, err := r.c.read()
		if err != nil {
			r.release(false)
			return
		}
		switch fr.Kind {
		case wire.KindDone, wire.KindError:
			r.done = true
			r.release(true)
			return
		case wire.KindRowBatch, wire.KindRowHeader:
			// discard
		default:
			r.release(false)
			return
		}
	}
}

// release ends the stream exactly once: stops the watcher, drops the
// row state, and hands the connection back (to the pool, the owning
// statement, or the void when unhealthy).
func (r *Rows) release(healthy bool) {
	if r.released {
		return
	}
	r.released = true
	r.cancelMu.Lock()
	r.finished = true
	r.cancelMu.Unlock()
	close(r.stop)
	r.cur = nil
	r.batch = nil
	r.idx = 0
	if r.db != nil {
		if healthy {
			r.db.put(r.c)
		} else {
			r.c.close()
		}
	} else if !healthy {
		r.c.close()
	}
	if r.onRelease != nil {
		r.onRelease()
	}
}
