// Package client is the network twin of package dsdb: Dial a
// dsdb/server address and you get a DB with the same Query, QueryRow,
// Exec and Prepare surface as dsdb.DB — streaming Rows with context
// cancellation, single-row QueryRow, materialized Exec — so call
// sites written against the in-process API work over the wire
// unchanged. Values round-trip the wire protocol bit-exactly: a
// remote result set is byte-identical to the local one.
//
//	db, err := client.Dial("127.0.0.1:5454")
//	rows, err := db.Query(ctx, "select sum(l_extendedprice) from lineitem")
//	for rows.Next() { ... rows.Scan(&v) ... }
//
// A DB multiplexes any number of concurrent queries over a small pool
// of connections (one in-flight query per connection, the protocol
// being synchronous); Rows and Stmt values are single-threaded, like
// their dsdb counterparts.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/dsdb"
	"repro/dsdb/wire"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("client: connection closed")

// config collects Dial options.
type config struct {
	dialTimeout time.Duration
	maxIdle     int
}

// Option configures Dial.
type Option func(*config)

// WithDialTimeout bounds each TCP connect (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) { c.dialTimeout = d }
}

// WithMaxIdleConns bounds the pooled idle connections (default 4).
// More concurrent queries than this still work — each extra query
// dials its own connection and closes it when done.
func WithMaxIdleConns(n int) Option {
	return func(c *config) { c.maxIdle = n }
}

// DB is a remote database handle, safe for concurrent use.
type DB struct {
	addr string
	cfg  config

	mu     sync.Mutex
	idle   []*conn
	closed bool
}

// Dial connects to a dsdb server and performs the protocol handshake
// on the first connection (so a bad address or incompatible server
// fails here, not at the first query).
func Dial(addr string, opts ...Option) (*DB, error) {
	cfg := config{dialTimeout: 5 * time.Second, maxIdle: 4}
	for _, o := range opts {
		o(&cfg)
	}
	db := &DB{addr: addr, cfg: cfg}
	c, err := db.dial()
	if err != nil {
		return nil, err
	}
	db.put(c)
	return db, nil
}

// dial opens and handshakes one connection. The dial timeout bounds
// the whole exchange — a server that accepts but never answers Hello
// cannot hang the caller.
func (db *DB) dial() (*conn, error) {
	nc, err := net.DialTimeout("tcp", db.addr, db.cfg.dialTimeout)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(db.cfg.dialTimeout))
	defer nc.SetDeadline(time.Time{})
	c := &conn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
	if err := c.send(wire.KindHello, wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion})); err != nil {
		nc.Close()
		return nil, err
	}
	fr, err := c.read()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch fr.Kind {
	case wire.KindHelloOK:
		ok, err := wire.DecodeHelloOK(fr.Payload)
		if err != nil {
			nc.Close()
			return nil, err
		}
		c.sessionID = ok.SessionID
		return c, nil
	case wire.KindError:
		ef, derr := wire.DecodeError(fr.Payload)
		nc.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, ef
	default:
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected %s frame", fr.Kind)
	}
}

// get returns a pooled connection (pooled=true) or dials a fresh one.
// Pooled connections may have gone stale — a restarted or drained
// server closed them while they sat idle — which callers handle by
// retrying once on a fresh dial.
func (db *DB) get() (c *conn, pooled bool, err error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, false, ErrClosed
	}
	if n := len(db.idle); n > 0 {
		c := db.idle[n-1]
		db.idle = db.idle[:n-1]
		db.mu.Unlock()
		return c, true, nil
	}
	db.mu.Unlock()
	c, err = db.dial()
	return c, false, err
}

// put returns a healthy connection to the pool (or closes it when the
// pool is full or the DB closed).
func (db *DB) put(c *conn) {
	db.mu.Lock()
	if !db.closed && len(db.idle) < db.cfg.maxIdle {
		db.idle = append(db.idle, c)
		db.mu.Unlock()
		return
	}
	db.mu.Unlock()
	c.close()
}

// Close releases every pooled connection. In-flight queries on
// checked-out connections finish; their connections are closed on
// release.
func (db *DB) Close() error {
	db.mu.Lock()
	idle := db.idle
	db.idle = nil
	db.closed = true
	db.mu.Unlock()
	for _, c := range idle {
		c.close()
	}
	return nil
}

// SessionID returns the server-assigned id of one pooled session
// (diagnostics; 0 when no connection is pooled).
func (db *DB) SessionID() uint32 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.idle) == 0 {
		return 0
	}
	return db.idle[len(db.idle)-1].sessionID
}

// statsTimeout bounds the whole ServerStats exchange.
const statsTimeout = 10 * time.Second

// ServerStats asks the server for its counter snapshot via the wire
// Stats frame and returns the raw name/value pairs. The exchange runs
// under a fixed socket deadline, like the handshake, so a wedged
// server cannot hang the caller.
func (db *DB) ServerStats() (wire.Stats, error) {
	c, pooled, err := db.get()
	if err != nil {
		return wire.Stats{}, err
	}
	st, err := db.statsOn(c)
	if err != nil && pooled && !isServerError(err) {
		// Stale pooled connection: one retry on a fresh dial.
		c, derr := db.dial()
		if derr != nil {
			return wire.Stats{}, err
		}
		return db.statsOn(c)
	}
	return st, err
}

// statsOn runs the Stats exchange on one connection.
func (db *DB) statsOn(c *conn) (wire.Stats, error) {
	c.nc.SetDeadline(time.Now().Add(statsTimeout))
	defer c.nc.SetDeadline(time.Time{})
	if err := c.send(wire.KindStats, nil); err != nil {
		c.close()
		return wire.Stats{}, err
	}
	fr, err := c.read()
	if err != nil {
		c.close()
		return wire.Stats{}, err
	}
	switch fr.Kind {
	case wire.KindStatsResult:
		st, err := wire.DecodeStats(fr.Payload)
		if err != nil {
			c.close()
			return wire.Stats{}, err
		}
		db.put(c)
		return st, nil
	case wire.KindError:
		ef, derr := wire.DecodeError(fr.Payload)
		c.close()
		if derr != nil {
			return wire.Stats{}, derr
		}
		return wire.Stats{}, ef
	default:
		c.close()
		return wire.Stats{}, fmt.Errorf("client: ServerStats: unexpected %s frame", fr.Kind)
	}
}

// Query executes SQL on the server and streams the result.
func (db *DB) Query(ctx context.Context, query string) (*Rows, error) {
	return db.QueryLabeled(ctx, "", query)
}

// QueryLabeled is Query with an execution label the server hands to
// its per-session instrumentation hooks (dsload tags each query with
// its TPC-D name; stcpipe.ProfileServed uses labels as trace marks).
func (db *DB) QueryLabeled(ctx context.Context, label, query string) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c, pooled, err := db.get()
	if err != nil {
		return nil, err
	}
	rows, err := db.queryOn(c, ctx, label, query)
	if err != nil && pooled && !isServerError(err) && ctx.Err() == nil {
		// The pooled connection was stale (server restarted or drained
		// while it sat idle). One retry on a freshly dialed connection,
		// like database/sql's bad-conn handling.
		c, derr := db.dial()
		if derr != nil {
			return nil, err
		}
		return db.queryOn(c, ctx, label, query)
	}
	return rows, err
}

// queryOn submits one query on the given connection. Transport
// failures close the connection; query-level failures return it to
// the pool (inside newRows).
func (db *DB) queryOn(c *conn, ctx context.Context, label, query string) (*Rows, error) {
	if err := c.send(wire.KindQuery, wire.EncodeQuery(wire.Query{Label: label, SQL: query})); err != nil {
		c.close()
		return nil, err
	}
	return newRows(db, c, ctx)
}

// isServerError reports whether err is a server-reported failure (an
// error frame) — i.e. the connection itself worked, so retrying on a
// fresh one cannot help.
func isServerError(err error) bool {
	var ef wire.ErrorFrame
	return errors.As(err, &ef)
}

// QueryRow executes a query expected to return at most one row; the
// error (including dsdb.ErrNoRows) is deferred until Scan.
func (db *DB) QueryRow(ctx context.Context, query string) *dsdb.Row {
	rows, err := db.Query(ctx, query)
	if err != nil {
		return dsdb.NewErrRow(err)
	}
	defer rows.Close()
	if !rows.Next() {
		if err := rows.Err(); err != nil {
			return dsdb.NewErrRow(err)
		}
		return dsdb.NewErrRow(dsdb.ErrNoRows)
	}
	return dsdb.NewRow(rows.Values(), rows.Columns())
}

// Exec executes and materializes a query in one call.
func (db *DB) Exec(ctx context.Context, query string) (*dsdb.Result, error) {
	rows, err := db.Query(ctx, query)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &dsdb.Result{Columns: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Values())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Stmt is a server-side prepared statement. Like dsdb.Stmt it holds
// one execution at a time and must not be shared across goroutines;
// it owns one connection until closed.
type Stmt struct {
	db     *DB
	c      *conn
	id     uint32
	cols   []string
	busy   bool
	closed bool
}

// Prepare compiles a statement on the server. The statement pins a
// connection until Close.
func (db *DB) Prepare(query string) (*Stmt, error) {
	c, pooled, err := db.get()
	if err != nil {
		return nil, err
	}
	st, err := db.prepareOn(c, query)
	if err != nil && pooled && !isServerError(err) {
		// Stale pooled connection: one retry on a fresh dial.
		c, derr := db.dial()
		if derr != nil {
			return nil, err
		}
		return db.prepareOn(c, query)
	}
	return st, err
}

// prepareOn compiles a statement over the given connection.
func (db *DB) prepareOn(c *conn, query string) (*Stmt, error) {
	if err := c.send(wire.KindPrepare, wire.EncodePrepare(wire.Prepare{SQL: query})); err != nil {
		c.close()
		return nil, err
	}
	fr, err := c.read()
	if err != nil {
		c.close()
		return nil, err
	}
	switch fr.Kind {
	case wire.KindPrepareOK:
		ok, err := wire.DecodePrepareOK(fr.Payload)
		if err != nil {
			c.close()
			return nil, err
		}
		return &Stmt{db: db, c: c, id: ok.StmtID, cols: ok.Columns}, nil
	case wire.KindError:
		ef, derr := wire.DecodeError(fr.Payload)
		db.put(c) // query-level failure: the connection is fine
		if derr != nil {
			return nil, derr
		}
		return nil, ef
	default:
		c.close()
		return nil, fmt.Errorf("client: Prepare: unexpected %s frame", fr.Kind)
	}
}

// Columns returns the statement's output column names.
func (s *Stmt) Columns() []string { return append([]string(nil), s.cols...) }

// Query executes the prepared statement.
func (s *Stmt) Query(ctx context.Context) (*Rows, error) {
	return s.QueryLabeled(ctx, "")
}

// QueryLabeled is Query with an instrumentation label (see
// DB.QueryLabeled).
func (s *Stmt) QueryLabeled(ctx context.Context, label string) (*Rows, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if s.busy {
		return nil, dsdb.ErrStmtBusy
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.c.send(wire.KindQueryStmt, wire.EncodeQueryStmt(wire.QueryStmt{StmtID: s.id, Label: label})); err != nil {
		// A partial frame may be on the wire: the connection is no
		// longer frame-aligned and must not be written to again.
		s.c.close()
		s.closed = true
		return nil, err
	}
	rows, err := newRows(nil, s.c, ctx) // conn stays with the statement
	if err != nil {
		return nil, err
	}
	s.busy = true
	rows.onRelease = func() { s.busy = false }
	return rows, nil
}

// Close releases the statement and returns its connection to the
// pool.
func (s *Stmt) Close() error {
	if s.closed {
		return nil
	}
	if s.busy {
		return dsdb.ErrStmtBusy
	}
	s.closed = true
	if err := s.c.send(wire.KindCloseStmt, wire.EncodeCloseStmt(wire.CloseStmt{StmtID: s.id})); err != nil {
		s.c.close()
		return err
	}
	s.db.put(s.c)
	return nil
}
