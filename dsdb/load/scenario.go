package load

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/dsdb/wire"
)

// Adversarial scenarios: the serving path's hostile-traffic modes.
// Each stresses a different server defense — slow readers exercise
// the write timeout (a stalled stream must be killed, not wedge the
// engine's writers), Zipfian skew hammers the result cache and latch
// with a hot key, and bursty arrivals probe queueing behavior far
// from the Poisson average.
const (
	// ScenarioSlowReader runs SlowClients extra connections that start
	// a large result stream and then stop reading it, while the normal
	// mix runs alongside. The summary reports how many the server
	// disconnected (SlowKilled) — nonzero proves the write timeout
	// works end to end.
	ScenarioSlowReader = "slowreader"
	// ScenarioZipf replaces the uniform round-robin over the mix with
	// Zipfian draws (exponent ZipfS): the first query of the mix is
	// the hot key.
	ScenarioZipf = "zipf"
	// ScenarioBurst compresses the open-loop Poisson schedule into
	// periodic bursts: BurstFactor× the arrival rate for 1/BurstFactor
	// of each BurstPeriod, silence in between. Same average rate,
	// hostile variance. Requires ArrivalRate > 0.
	ScenarioBurst = "burst"
)

// Scenario defaults.
const (
	defaultSlowClients  = 2
	defaultZipfS        = 1.5
	defaultBurstFactor  = 8.0
	defaultBurstPeriod  = time.Second
	defaultSlowKillWait = 15 * time.Second
)

// validateScenario normalizes and checks the scenario knobs.
func validateScenario(p *Params) error {
	switch p.Scenario {
	case "":
		return nil
	case ScenarioSlowReader:
		if p.SlowClients <= 0 {
			p.SlowClients = defaultSlowClients
		}
		if p.SlowKillWait <= 0 {
			p.SlowKillWait = defaultSlowKillWait
		}
	case ScenarioZipf:
		if p.ZipfS == 0 {
			p.ZipfS = defaultZipfS
		}
		if p.ZipfS <= 1 {
			return fmt.Errorf("load: zipf exponent %v must be > 1", p.ZipfS)
		}
	case ScenarioBurst:
		if p.ArrivalRate <= 0 {
			return fmt.Errorf("load: scenario %q needs an open loop (set ArrivalRate)", ScenarioBurst)
		}
		if p.BurstFactor <= 1 {
			p.BurstFactor = defaultBurstFactor
		}
		if p.BurstPeriod <= 0 {
			p.BurstPeriod = defaultBurstPeriod
		}
	default:
		return fmt.Errorf("load: unknown scenario %q (have %s, %s, %s)",
			p.Scenario, ScenarioSlowReader, ScenarioZipf, ScenarioBurst)
	}
	return nil
}

// zipfSeq draws n query numbers Zipf-distributed over the mix: index
// 0 (the first query of the mix) is the hot key. Seeded per client
// like clientOrder, so runs are reproducible.
func zipfSeq(nums []int, seed int64, i, n int, s float64) []int {
	rng := rand.New(rand.NewSource(seed + 31*int64(i) + 7919))
	z := rand.NewZipf(rng, s, 1, uint64(len(nums)-1))
	seq := make([]int, n)
	for k := range seq {
		seq[k] = nums[z.Uint64()]
	}
	return seq
}

// slowReaderSQL is the stream a slow reader stalls: a cartesian join
// whose result (orders × lineitem at any scale factor) is orders of
// magnitude larger than the kernel socket buffers on both sides, so
// the server's frame writes must block once the reader stops.
const slowReaderSQL = "select o_orderkey, l_orderkey, l_extendedprice from orders, lineitem"

// slowReader is one deliberately stalled connection, speaking the
// wire protocol raw — the point is to NOT read, which the client
// package (correctly) never does.
type slowReader struct {
	nc net.Conn
	w  *bufio.Writer
}

// startSlowReader dials, handshakes, starts the big stream, confirms
// the server committed to it (RowHeader received — the query latch is
// held now), and then stops reading.
func startSlowReader(addr string) (*slowReader, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		// A tiny receive buffer shrinks the TCP window, so the server
		// blocks after a few KB instead of after megabytes.
		tc.SetReadBuffer(4096)
	}
	fail := func(err error) (*slowReader, error) {
		nc.Close()
		return nil, err
	}
	if err := nc.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return fail(err)
	}
	w := bufio.NewWriter(nc)
	r := bufio.NewReader(nc)
	if err := wire.WriteFrame(w, wire.KindHello, wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion})); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	fr, err := wire.ReadFrame(r)
	if err != nil {
		return fail(err)
	}
	if fr.Kind != wire.KindHelloOK {
		return fail(fmt.Errorf("slow reader handshake: unexpected %s frame", fr.Kind))
	}
	if err := wire.WriteFrame(w, wire.KindQuery, wire.EncodeQuery(wire.Query{Label: "slow", SQL: slowReaderSQL})); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if fr, err = wire.ReadFrame(r); err != nil {
		return fail(err)
	}
	if fr.Kind != wire.KindRowHeader {
		return fail(fmt.Errorf("slow reader: unexpected %s frame (want RowHeader)", fr.Kind))
	}
	// From here on: silence. The stream backs up behind us.
	return &slowReader{nc: nc, w: w}, nil
}

// waitKilled waits up to budget for the server to disconnect this
// reader. Detection is write-side: reading anything would drain the
// stalled stream and re-arm the server's write deadline, defeating
// the scenario. The probe bytes must also never form a complete
// frame — a whole frame (even a Quit) could be consumed by the
// server between row batches and end the session through the cancel
// path instead of the slow-kill path — so the first probe writes a
// header claiming a MaxFrame-sized payload and the rest feed it one
// filler byte at a time; the server's ReadFrame just accumulates.
// Once the server has closed the socket, a probe write fails (RST).
func (sr *slowReader) waitKilled(budget time.Duration) bool {
	defer sr.nc.Close()
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], wire.MaxFrame)
	probe := hdr[:]
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		time.Sleep(250 * time.Millisecond)
		if sr.nc.SetWriteDeadline(time.Now().Add(time.Second)) != nil {
			return true
		}
		if _, err := sr.nc.Write(probe); err != nil {
			return true
		}
		probe = []byte{0x00}
	}
	return false
}

// startSlowReaders launches the scenario's stalled connections.
func startSlowReaders(p Params) ([]*slowReader, error) {
	slows := make([]*slowReader, 0, p.SlowClients)
	for k := 0; k < p.SlowClients; k++ {
		sr, err := startSlowReader(p.Addr)
		if err != nil {
			for _, s := range slows {
				s.nc.Close()
			}
			return nil, fmt.Errorf("load: slow reader %d: %w", k+1, err)
		}
		slows = append(slows, sr)
	}
	return slows, nil
}

// harvestSlowReaders records the scenario outcome into the summary:
// how many stalled connections the server killed within the wait.
func harvestSlowReaders(s *Summary, slows []*slowReader, wait time.Duration) {
	s.SlowClients = len(slows)
	for _, sr := range slows {
		if sr.waitKilled(wait) {
			s.SlowKilled++
		}
	}
}
