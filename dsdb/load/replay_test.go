package load

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dsdb/wcap"
)

// replayRecs builds a capture of `sessions` recorded sessions, each
// with `per` queries in recorded start order, labelled by session and
// rank so tests can reconstruct the order the replay ran them in.
func replayRecs(sessions, per int) []wcap.Record {
	var recs []wcap.Record
	for s := 1; s <= sessions; s++ {
		for q := 0; q < per; q++ {
			recs = append(recs, wcap.Record{
				Offset:  time.Duration(q) * 10 * time.Millisecond,
				Session: uint32(s),
				Label:   "Q",
				SQL:     "select " + string(rune('a'+s-1)) + string(rune('0'+q)),
				Latency: time.Millisecond,
			})
		}
	}
	return recs
}

// orderRunner records every SQL it sees, in call order, concurrently.
type orderRunner struct {
	mu   sync.Mutex
	seen []string
}

func (o *orderRunner) run(_ context.Context, _, sql string) (int64, bool, error) {
	o.mu.Lock()
	o.seen = append(o.seen, sql)
	o.mu.Unlock()
	return 1, false, nil
}

func TestReplayValidatesTargets(t *testing.T) {
	recs := replayRecs(1, 1)
	if _, err := Replay(context.Background(), ReplayParams{Records: recs}); err == nil {
		t.Fatal("no target: want error")
	}
	if _, err := Replay(context.Background(), ReplayParams{Records: recs, Addr: "x"}); err == nil {
		t.Fatal("bogus addr with WaitReady=0 should fail to dial")
	}
	if _, err := Replay(context.Background(), ReplayParams{Runner: (&orderRunner{}).run}); err == nil {
		t.Fatal("empty capture: want error")
	}
}

func TestReplayPreservesSessionOrder(t *testing.T) {
	recs := replayRecs(3, 4)
	// Shuffle the input: Replay must re-sort by recorded offset.
	for i, j := range []int{7, 2, 11, 0, 5, 9, 1, 10, 4, 8, 3, 6} {
		recs[i], recs[j] = recs[j], recs[i]
	}
	o := &orderRunner{}
	sum, err := Replay(context.Background(), ReplayParams{Records: recs, Runner: o.run})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Queries != 12 || sum.Sessions != 3 || sum.Clients != 3 || sum.Skipped != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum.Rows != 12 {
		t.Fatalf("rows = %d, want 12 (one per query)", sum.Rows)
	}
	// Within each recorded session, replay order must be recorded
	// order: for session prefix p, the digits must appear ascending.
	for _, prefix := range []string{"select a", "select b", "select c"} {
		last := -1
		for _, sql := range o.seen {
			if !strings.HasPrefix(sql, prefix) {
				continue
			}
			d := int(sql[len(sql)-1] - '0')
			if d <= last {
				t.Fatalf("session %q out of order: saw %d after %d (%v)", prefix, d, last, o.seen)
			}
			last = d
		}
		if last != 3 {
			t.Fatalf("session %q incomplete: last rank %d", prefix, last)
		}
	}
}

func TestReplayFoldsSessionsOntoFewerWorkers(t *testing.T) {
	recs := replayRecs(4, 3)
	o := &orderRunner{}
	sum, err := Replay(context.Background(), ReplayParams{Records: recs, Runner: o.run, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Clients != 2 || sum.Sessions != 4 || sum.Queries != 12 {
		t.Fatalf("summary: %+v", sum)
	}
	// Folding still preserves per-session internal order.
	for _, prefix := range []string{"select a", "select b", "select c", "select d"} {
		last := -1
		for _, sql := range o.seen {
			if strings.HasPrefix(sql, prefix) {
				d := int(sql[len(sql)-1] - '0')
				if d <= last {
					t.Fatalf("session %q out of order after folding: %v", prefix, o.seen)
				}
				last = d
			}
		}
	}
}

func TestReplaySkipsErrorsAndShow(t *testing.T) {
	recs := replayRecs(2, 2)
	recs = append(recs,
		wcap.Record{Session: 1, Offset: time.Second, Label: "bad", SQL: "select nope", Err: wcap.ErrQuery},
		wcap.Record{Session: 1, Offset: 2 * time.Second, Label: "mon", SQL: "SHOW stats"},
		wcap.Record{Session: 2, Offset: time.Second, Label: "dead", SQL: "select gone", Err: wcap.ErrCancelled},
	)
	o := &orderRunner{}
	sum, err := Replay(context.Background(), ReplayParams{Records: recs, Runner: o.run})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Queries != 4 || sum.Skipped != 3 {
		t.Fatalf("queries=%d skipped=%d, want 4/3", sum.Queries, sum.Skipped)
	}
	for _, sql := range o.seen {
		if strings.Contains(sql, "nope") || strings.Contains(sql, "gone") || strings.HasPrefix(strings.ToLower(sql), "show") {
			t.Fatalf("replayed a record that must be skipped: %q", sql)
		}
	}
	// All-skipped captures error instead of reporting an empty run.
	if _, err := Replay(context.Background(), ReplayParams{
		Records: []wcap.Record{{Session: 1, SQL: "select x", Err: wcap.ErrQuery}},
		Runner:  o.run,
	}); err == nil {
		t.Fatal("all-skipped capture: want error")
	}
}

func TestReplayPacedHonoursSchedule(t *testing.T) {
	// Two sessions, offsets 0 and 60ms; at Timescale 2 the second
	// query fires ~30ms in, so the whole run takes at least that.
	recs := []wcap.Record{
		{Session: 1, Offset: 0, Label: "Q", SQL: "one", Latency: time.Millisecond},
		{Session: 1, Offset: 60 * time.Millisecond, Label: "Q", SQL: "two", Latency: time.Millisecond},
	}
	o := &orderRunner{}
	sum, err := Replay(context.Background(), ReplayParams{
		Records: recs, Runner: o.run, Paced: true, Timescale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Paced || sum.Timescale != 2 {
		t.Fatalf("summary mode: %+v", sum)
	}
	if sum.Elapsed < 25*time.Millisecond {
		t.Fatalf("paced replay finished in %s; schedule says ≥ ~30ms", sum.Elapsed)
	}
	if sum.RecordedLat.P50 != time.Millisecond {
		t.Fatalf("recorded p50 = %s, want 1ms from the capture", sum.RecordedLat.P50)
	}
}

func TestReplayFailsFast(t *testing.T) {
	recs := replayRecs(2, 50)
	boom := errors.New("boom")
	var n int
	var mu sync.Mutex
	runner := func(ctx context.Context, _, sql string) (int64, bool, error) {
		mu.Lock()
		n++
		mu.Unlock()
		if sql == "select a5" {
			return 0, false, boom
		}
		return 0, false, nil
	}
	_, err := Replay(context.Background(), ReplayParams{Records: recs, Runner: runner})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	mu.Lock()
	ran := n
	mu.Unlock()
	if ran >= 100 {
		t.Fatalf("failure did not cancel the other lane: %d queries ran", ran)
	}
}

func TestReplaySummaryAndJSONReport(t *testing.T) {
	recs := []wcap.Record{
		{Session: 1, Offset: 0, Label: "train-Q3", SQL: "a", Rows: 7, Latency: 2 * time.Millisecond},
		{Session: 1, Offset: time.Millisecond, Label: "train-Q6", SQL: "b", Rows: 1, Latency: time.Millisecond},
		{Session: 2, Offset: 0, Label: "train-Q3", SQL: "a", Rows: 7, Latency: 4 * time.Millisecond},
	}
	runner := func(_ context.Context, label, _ string) (int64, bool, error) {
		if label == "train-Q3" {
			return 7, true, nil
		}
		return 1, false, nil
	}
	sum, err := Replay(context.Background(), ReplayParams{Records: recs, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rows != 15 || sum.CacheHits != 2 {
		t.Fatalf("rows=%d hits=%d, want 15/2", sum.Rows, sum.CacheHits)
	}
	if len(sum.PerQuery) != 2 || sum.PerQuery[0].Label != "train-Q3" || sum.PerQuery[1].Label != "train-Q6" {
		t.Fatalf("per-query: %+v", sum.PerQuery)
	}
	q3 := sum.PerQuery[0]
	if q3.Count != 2 || q3.Rows != 14 {
		t.Fatalf("train-Q3 stat: %+v", q3)
	}
	// Recorded side comes straight from the capture.
	if q3.RecordedLat.Max != 4*time.Millisecond {
		t.Fatalf("train-Q3 recorded max = %s, want 4ms", q3.RecordedLat.Max)
	}
	if got := sum.Report(); !strings.Contains(got, "replayed 3 queries") || !strings.Contains(got, "train-Q6") {
		t.Fatalf("Report output:\n%s", got)
	}

	r := BuildReplayJSONReport(sum, nil)
	if r.Queries != 3 || r.Sessions != 2 || r.Rows != 15 || r.CacheHits != 2 {
		t.Fatalf("json report: %+v", r)
	}
	if len(r.PerQuery) != 2 || r.PerQuery[0].Label != "train-Q3" ||
		r.PerQuery[0].RecordedLat.MaxNs != (4*time.Millisecond).Nanoseconds() {
		t.Fatalf("json per-query: %+v", r.PerQuery)
	}
	if r.ServerStats != nil {
		t.Fatal("no stats snapshot given, ServerStats must be omitted")
	}
}
