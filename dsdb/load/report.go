package load

import (
	"fmt"
	"strings"
	"time"
)

// fmtDur renders a duration with a fixed, unit-scaled precision so
// reports line up: microseconds below 1ms, two-decimal milliseconds
// below 1s, two-decimal seconds above.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtLat renders one latency line segment.
func fmtLat(l Latency) string {
	return fmt.Sprintf("p50 %-9s p90 %-9s p99 %-9s max %s",
		fmtDur(l.P50), fmtDur(l.P90), fmtDur(l.P99), fmtDur(l.Max))
}

// Report renders the run summary in the fixed format pinned by the
// golden-file tests (testdata/summary.golden and
// testdata/summary_cached_open.golden): header line, aggregate block
// — extended with an arrival line for open-loop runs and a cache
// block when the server reported hits — then one line per query of
// the mix.
func (s *Summary) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dsload: mix=%s clients=%d rounds=%d warmup=%d\n",
		s.Mix, s.Clients, s.Rounds, s.Warmup)
	fmt.Fprintf(&b, "queries    : %d\n", s.Queries)
	fmt.Fprintf(&b, "rows       : %d\n", s.Rows)
	fmt.Fprintf(&b, "elapsed    : %s\n", fmtDur(s.Elapsed))
	fmt.Fprintf(&b, "throughput : %.1f queries/s\n", s.Throughput())
	if s.ArrivalRate > 0 {
		fmt.Fprintf(&b, "arrival    : %.1f queries/s open-loop (latency includes queue delay)\n", s.ArrivalRate)
	}
	if s.Scenario != "" {
		fmt.Fprintf(&b, "scenario   : %s\n", s.Scenario)
	}
	if s.Scenario == ScenarioSlowReader {
		fmt.Fprintf(&b, "slow kills : %d/%d stalled readers disconnected by server\n", s.SlowKilled, s.SlowClients)
	}
	fmt.Fprintf(&b, "latency    : %s\n", fmtLat(s.Lat))
	if s.CacheHits > 0 {
		fmt.Fprintf(&b, "cache hits : %d/%d (%.1f%%)\n", s.CacheHits, s.Queries, 100*s.HitRatio())
		fmt.Fprintf(&b, "hit lat    : %s\n", fmtLat(s.LatHit))
		if s.CacheHits < s.Queries {
			fmt.Fprintf(&b, "miss lat   : %s\n", fmtLat(s.LatMiss))
		}
	}
	if len(s.PerQuery) > 0 {
		b.WriteString("per query:\n")
		for _, q := range s.PerQuery {
			fmt.Fprintf(&b, "  %-4s count %-5d rows %-8d %s\n", q.Label, q.Count, q.Rows, fmtLat(q.Lat))
		}
	}
	return b.String()
}
