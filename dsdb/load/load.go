// Package load is the load generator behind cmd/dsload: N client
// sessions connect to a dsdb server and drive a TPC-D query mix, with
// warmup rounds excluded from measurement and a latency/throughput
// summary at the end. Two arrival models are supported:
//
//   - Closed loop (the default): every client waits for its current
//     query to finish before issuing the next.
//   - Open loop (Params.ArrivalRate > 0): queries arrive on a fixed-
//     rate Poisson schedule independent of completions, dispatched
//     over the client connections; a query's latency is measured from
//     its scheduled arrival, so time spent queueing for a free
//     connection is included in the reported percentiles.
//
// When the server carries a result cache, each sample also records
// whether it was served from cache, and the summary reports the hit
// ratio alongside separate cached/uncached latency percentiles. The
// Summary's Report rendering is pinned by golden-file tests, so
// downstream tooling can parse it.
package load

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/wire"
)

// Mix is a named TPC-D query mix.
type Mix struct {
	Name    string
	Numbers []int
}

// TrainMix is the paper's training set (Q3,4,5,6,9).
func TrainMix() Mix { return Mix{Name: "train", Numbers: []int{3, 4, 5, 6, 9}} }

// TestMix is the paper's test set (Q2,3,4,6,11,12,13,14,15,17).
func TestMix() Mix { return Mix{Name: "test", Numbers: []int{2, 3, 4, 6, 11, 12, 13, 14, 15, 17}} }

// AllMix is every implemented TPC-D query.
func AllMix() Mix { return Mix{Name: "all", Numbers: dsdb.TPCDQueryNumbers()} }

// ParseMix resolves a -mix flag value: "train", "test", "all", or a
// comma-separated list of TPC-D query numbers ("3,4,6").
func ParseMix(s string) (Mix, error) {
	switch s {
	case "train":
		return TrainMix(), nil
	case "test":
		return TestMix(), nil
	case "all":
		return AllMix(), nil
	}
	var m Mix
	m.Name = s
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return Mix{}, fmt.Errorf("load: bad mix %q (want train, test, all, or query numbers like 3,4,6)", s)
		}
		if _, ok := dsdb.TPCDQuery(n); !ok {
			return Mix{}, fmt.Errorf("load: no TPC-D query %d (have %v)", n, dsdb.TPCDQueryNumbers())
		}
		m.Numbers = append(m.Numbers, n)
	}
	if len(m.Numbers) == 0 {
		return Mix{}, fmt.Errorf("load: empty mix %q", s)
	}
	return m, nil
}

// Params configures one load run.
type Params struct {
	// Addr is the dsdb server address.
	Addr string
	// Clients is the number of concurrent closed-loop sessions
	// (default 1).
	Clients int
	// Rounds is how many times each client runs the whole mix,
	// measured (default 1).
	Rounds int
	// Warmup is how many unmeasured rounds each client runs first.
	Warmup int
	// Mix is the query mix (default TrainMix).
	Mix Mix
	// Seed shuffles each client's query order deterministically
	// (client i uses Seed+i); 0 keeps the mix order for every client.
	Seed int64
	// WaitReady, when positive, retries the first connection for up to
	// this long — so a load run can start before its server finishes
	// loading TPC-D.
	WaitReady time.Duration
	// ArrivalRate, when positive, switches the measured phase to an
	// open loop: queries arrive at this aggregate rate (queries per
	// second) on a Poisson schedule, dispatched over the Clients
	// connections, and each latency is measured from the query's
	// scheduled arrival — queueing delay included. Warmup rounds still
	// run closed-loop. 0 keeps the classic closed loop.
	ArrivalRate float64

	// Scenario selects an adversarial traffic mode ("" keeps the plain
	// mix): ScenarioSlowReader, ScenarioZipf, or ScenarioBurst — see
	// scenario.go for what each stresses.
	Scenario string
	// SlowClients is how many stalled connections ScenarioSlowReader
	// adds (default 2); SlowKillWait bounds how long the run waits, at
	// the end, for the server to disconnect them (default 15s — cover
	// the server's write timeout).
	SlowClients  int
	SlowKillWait time.Duration
	// ZipfS is ScenarioZipf's exponent (> 1, default 1.5; larger =
	// more skew toward the first query of the mix).
	ZipfS float64
	// BurstFactor and BurstPeriod shape ScenarioBurst: BurstFactor×
	// the arrival rate for 1/BurstFactor of each period (defaults 8
	// and 1s).
	BurstFactor float64
	BurstPeriod time.Duration
}

// Latency summarizes a latency distribution.
type Latency struct {
	P50, P90, P99, Max time.Duration
}

// QueryStat is the per-query slice of a Summary.
type QueryStat struct {
	Label string // "Q3"
	Count int
	Rows  int64
	Lat   Latency
}

// Summary is the result of one load run.
type Summary struct {
	Mix      string
	Clients  int
	Rounds   int
	Warmup   int
	Queries  int   // measured queries completed
	Rows     int64 // rows streamed by measured queries
	Elapsed  time.Duration
	Lat      Latency
	PerQuery []QueryStat // ascending by query number

	// ArrivalRate echoes Params.ArrivalRate: > 0 means the measured
	// phase ran open-loop and Lat includes queueing delay.
	ArrivalRate float64
	// CacheHits counts measured queries the server answered from its
	// result cache; LatHit/LatMiss split the latency distribution by
	// that attribution (meaningful when CacheHits > 0).
	CacheHits int
	LatHit    Latency
	LatMiss   Latency

	// Scenario echoes Params.Scenario. For ScenarioSlowReader,
	// SlowClients is how many stalled connections ran and SlowKilled
	// how many the server disconnected within the kill wait — the
	// end-to-end proof of the write timeout.
	Scenario    string
	SlowClients int
	SlowKilled  int
}

// HitRatio returns the fraction of measured queries served from the
// server's result cache.
func (s *Summary) HitRatio() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Queries)
}

// Throughput returns measured queries per second.
func (s *Summary) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Queries) / s.Elapsed.Seconds()
}

// sample is one measured query execution.
type sample struct {
	num  int
	rows int64
	d    time.Duration
	hit  bool // served from the server's result cache
}

// Run executes the load: dial Clients sessions, run Warmup+Rounds
// loops over the mix on each — closed-loop, or open-loop when
// ArrivalRate is set — and aggregate the measured samples. The
// context cancels the whole run.
func Run(ctx context.Context, p Params) (*Summary, error) {
	if p.Clients <= 0 {
		p.Clients = 1
	}
	if p.Rounds <= 0 {
		p.Rounds = 1
	}
	if len(p.Mix.Numbers) == 0 {
		p.Mix = TrainMix()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateScenario(&p); err != nil {
		return nil, err
	}

	// Dial every session up front (retrying the first while the server
	// warms up), so measurement never includes connection setup.
	dbs := make([]*client.DB, p.Clients)
	defer func() {
		for _, db := range dbs {
			if db != nil {
				db.Close()
			}
		}
	}()
	for i := range dbs {
		db, err := dialReady(ctx, p.Addr, p.WaitReady)
		if err != nil {
			return nil, fmt.Errorf("load: client %d: %w", i+1, err)
		}
		dbs[i] = db
	}

	// Slow readers stall alongside the whole measured run: their open
	// streams hold the engine's shared read latch until the server's
	// write timeout kills them, which is exactly the contention the
	// scenario wants the normal mix to feel.
	var slows []*slowReader
	if p.Scenario == ScenarioSlowReader {
		var err error
		if slows, err = startSlowReaders(p); err != nil {
			return nil, err
		}
	}

	var s *Summary
	var err error
	if p.ArrivalRate > 0 {
		s, err = runOpen(ctx, p, dbs)
	} else {
		s, err = runClosed(ctx, p, dbs)
	}
	if err != nil {
		for _, sr := range slows {
			sr.nc.Close()
		}
		return nil, err
	}
	s.Scenario = p.Scenario
	if p.Scenario == ScenarioSlowReader {
		harvestSlowReaders(s, slows, p.SlowKillWait)
	}
	return s, nil
}

// runClosed drives the classic closed loop: each client issues its
// next query when the previous one finishes.
func runClosed(ctx context.Context, p Params, dbs []*client.DB) (*Summary, error) {
	results := make([]clientResult, p.Clients)
	// The first client failure cancels the whole run: the remaining
	// clients abort their in-flight queries instead of grinding
	// through rounds whose results will be discarded anyway.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	// Warmup is excluded from measurement entirely: every client
	// finishes its warmup rounds, then all block on the start barrier
	// together — the throughput clock covers only the measured phase.
	var warmupDone sync.WaitGroup
	warmupDone.Add(p.Clients)
	startMeasured := make(chan struct{})
	done := make(chan int, p.Clients)
	for i := range dbs {
		go func(i int) {
			defer func() { done <- i }()
			res := &results[i]
			order := clientOrder(p.Mix.Numbers, p.Seed, i)
			run := func(qn int, measured bool) bool {
				t0 := time.Now()
				rows, hit, err := runOne(runCtx, dbs[i], qn)
				if err != nil {
					res.err = fmt.Errorf("load: client %d Q%d: %w", i+1, qn, err)
					cancelRun()
					return false
				}
				if measured {
					res.samples = append(res.samples, sample{num: qn, rows: rows, d: time.Since(t0), hit: hit})
				}
				return true
			}
			for round := 0; round < p.Warmup; round++ {
				for _, qn := range order {
					if !run(qn, false) {
						warmupDone.Done()
						return
					}
				}
			}
			warmupDone.Done()
			<-startMeasured
			if runCtx.Err() != nil {
				return // another client failed during warmup
			}
			// The measured sequence is Rounds passes over the order —
			// or, under ScenarioZipf, the same number of skewed draws.
			seq := make([]int, 0, p.Rounds*len(order))
			if p.Scenario == ScenarioZipf {
				seq = zipfSeq(p.Mix.Numbers, p.Seed, i, p.Rounds*len(p.Mix.Numbers), p.ZipfS)
			} else {
				for round := 0; round < p.Rounds; round++ {
					seq = append(seq, order...)
				}
			}
			for _, qn := range seq {
				if !run(qn, true) {
					return
				}
			}
		}(i)
	}
	warmupDone.Wait()
	start := time.Now()
	close(startMeasured)
	for range dbs {
		<-done
	}
	elapsed := time.Since(start)

	all, err := collectResults(results)
	if err != nil {
		return nil, err
	}
	return summarize(p, all, elapsed), nil
}

// clientResult is one client's share of a run.
type clientResult struct {
	samples []sample
	err     error
}

// collectResults folds the per-client outcomes: all samples, and the
// first error — preferring a root cause over the context.Canceled
// errors that fail-fast cancellation induced in the other clients.
func collectResults(results []clientResult) ([]sample, error) {
	var all []sample
	var firstErr error
	for i := range results {
		if err := results[i].err; err != nil {
			if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
				firstErr = err
			}
		}
		all = append(all, results[i].samples...)
	}
	return all, firstErr
}

// dialReady dials, retrying transport-level failures (connection
// refused while the server is still loading TPC-D) until the
// deadline. A definitive refusal — the server answered with an error
// frame, e.g. conn_limit or a protocol-version mismatch — surfaces
// immediately; more retries cannot fix it.
func dialReady(ctx context.Context, addr string, wait time.Duration) (*client.DB, error) {
	db, err := client.Dial(addr)
	if err == nil || wait <= 0 {
		return db, err
	}
	deadline := time.Now().Add(wait)
	for {
		var ef wire.ErrorFrame
		if errors.As(err, &ef) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
		if db, err = client.Dial(addr); err == nil {
			return db, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server not ready after %v: %w", wait, err)
		}
	}
}

// clientOrder returns client i's query order: the mix, shuffled by
// Seed+i when a seed is set (deterministic per client, different
// across clients — served traffic, not lockstep).
func clientOrder(nums []int, seed int64, i int) []int {
	order := append([]int(nil), nums...)
	if seed != 0 {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	}
	return order
}

// runOne streams one labeled TPC-D query to completion, counting rows
// and reporting the server's cache-hit attribution.
func runOne(ctx context.Context, db *client.DB, qn int) (int64, bool, error) {
	q, _ := dsdb.TPCDQuery(qn)
	rows, err := db.QueryLabeled(ctx, fmt.Sprintf("Q%d", qn), q)
	if err != nil {
		return 0, false, err
	}
	defer rows.Close()
	var n int64
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		return 0, false, err
	}
	return n, rows.CacheHit(), nil
}

// runOpen drives the measured phase as an open loop: a deterministic
// Poisson arrival schedule at p.ArrivalRate aggregate queries/s, with
// Clients connections consuming arrivals in order. A query whose turn
// comes while every connection is busy starts late, and its latency —
// measured from the scheduled arrival — includes that queueing delay,
// exactly what a closed loop hides. Warmup rounds run closed-loop
// first (unmeasured), so cache and buffer warmup match the closed
// mode.
func runOpen(ctx context.Context, p Params, dbs []*client.DB) (*Summary, error) {
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	results := make([]clientResult, p.Clients)

	// Closed-loop warmup, in parallel across clients.
	var wg sync.WaitGroup
	for i := range dbs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			order := clientOrder(p.Mix.Numbers, p.Seed, i)
			for round := 0; round < p.Warmup; round++ {
				for _, qn := range order {
					if _, _, err := runOne(runCtx, dbs[i], qn); err != nil {
						results[i].err = fmt.Errorf("load: client %d warmup Q%d: %w", i+1, qn, err)
						cancelRun()
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if _, err := collectResults(results); err != nil {
		// Same root-cause preference as the measured phases: a real
		// warmup failure must not be masked by the context.Canceled it
		// induced in the other clients.
		return nil, err
	}

	// The arrival schedule: total = Clients×Rounds×mix queries (the
	// same count a closed-loop run measures), exponential
	// inter-arrival gaps at the aggregate rate, query numbers cycling
	// through the mix. Seeded deterministically so two runs against
	// the same server issue the identical schedule.
	type job struct {
		qn  int
		off time.Duration // arrival offset from the measured-phase start
	}
	total := p.Clients * p.Rounds * len(p.Mix.Numbers)
	rng := rand.New(rand.NewSource(p.Seed + 9973))
	var zipfSel []int
	if p.Scenario == ScenarioZipf {
		zipfSel = zipfSeq(p.Mix.Numbers, p.Seed, 0, total, p.ZipfS)
	}
	// ScenarioBurst compresses the schedule: arrivals are generated at
	// BurstFactor× the rate and then mapped so each on-window of
	// BurstPeriod/BurstFactor is followed by silence for the rest of
	// the period — the average rate is still ArrivalRate, but it lands
	// in bursts. The mapping is monotonic, so arrivals stay ordered.
	rate := p.ArrivalRate
	remap := func(t time.Duration) time.Duration { return t }
	if p.Scenario == ScenarioBurst {
		rate *= p.BurstFactor
		onDur := time.Duration(float64(p.BurstPeriod) / p.BurstFactor)
		remap = func(t time.Duration) time.Duration {
			return (t/onDur)*p.BurstPeriod + t%onDur
		}
	}
	jobs := make(chan job, total)
	var off time.Duration
	for k := 0; k < total; k++ {
		qn := p.Mix.Numbers[k%len(p.Mix.Numbers)]
		if zipfSel != nil {
			qn = zipfSel[k]
		}
		jobs <- job{qn: qn, off: remap(off)}
		off += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
	}
	close(jobs)

	start := time.Now()
	for i := range dbs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			for j := range jobs {
				due := start.Add(j.off)
				select {
				case <-runCtx.Done():
					// Cancellation mid-schedule must surface, exactly as
					// it does when it lands inside runOne: a truncated
					// run reporting a clean summary would be
					// indistinguishable from a complete one.
					if res.err == nil {
						res.err = runCtx.Err()
					}
					return
				case <-time.After(time.Until(due)):
				}
				rows, hit, err := runOne(runCtx, dbs[i], j.qn)
				if err != nil {
					res.err = fmt.Errorf("load: client %d Q%d: %w", i+1, j.qn, err)
					cancelRun()
					return
				}
				// Latency from the scheduled arrival: service time plus
				// any wait for this connection to free up.
				res.samples = append(res.samples, sample{num: j.qn, rows: rows, d: time.Since(due), hit: hit})
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	all, err := collectResults(results)
	if err != nil {
		return nil, err
	}
	return summarize(p, all, elapsed), nil
}

// summarize aggregates samples into the report shape.
func summarize(p Params, all []sample, elapsed time.Duration) *Summary {
	s := &Summary{
		Mix:         p.Mix.Name,
		Clients:     p.Clients,
		Rounds:      p.Rounds,
		Warmup:      p.Warmup,
		Queries:     len(all),
		Elapsed:     elapsed,
		ArrivalRate: p.ArrivalRate,
	}
	var lats, hitLats, missLats []time.Duration
	byQuery := make(map[int][]sample)
	for _, sm := range all {
		s.Rows += sm.rows
		lats = append(lats, sm.d)
		if sm.hit {
			s.CacheHits++
			hitLats = append(hitLats, sm.d)
		} else {
			missLats = append(missLats, sm.d)
		}
		byQuery[sm.num] = append(byQuery[sm.num], sm)
	}
	s.Lat = percentiles(lats)
	s.LatHit = percentiles(hitLats)
	s.LatMiss = percentiles(missLats)
	nums := make([]int, 0, len(byQuery))
	for n := range byQuery {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	for _, n := range nums {
		var qlats []time.Duration
		var rows int64
		for _, sm := range byQuery[n] {
			qlats = append(qlats, sm.d)
			rows += sm.rows
		}
		s.PerQuery = append(s.PerQuery, QueryStat{
			Label: fmt.Sprintf("Q%d", n),
			Count: len(byQuery[n]),
			Rows:  rows,
			Lat:   percentiles(qlats),
		})
	}
	return s
}

// percentiles computes the summary points over a sample set. The
// P-th percentile is the smallest sample ≥ P% of the distribution
// (nearest-rank), so it is always an observed latency.
func percentiles(lats []time.Duration) Latency {
	if len(lats) == 0 {
		return Latency{}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	rank := func(p float64) time.Duration {
		i := int(math.Ceil(float64(len(lats))*p)) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return Latency{
		P50: rank(0.50),
		P90: rank(0.90),
		P99: rank(0.99),
		Max: lats[len(lats)-1],
	}
}
