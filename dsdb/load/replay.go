package load

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/wcap"
)

// ReplayParams configures one replay of a captured workload (a
// dsdb/wcap record list) against a live server or an in-process DB.
type ReplayParams struct {
	// Records is the capture to replay (wcap.Load order; Replay
	// re-sorts by recorded start offset).
	Records []wcap.Record

	// Addr replays against a live dsdb server over the wire. Exactly
	// one of Addr and DB must be set (unless Runner overrides both).
	Addr string
	// DB replays in-process against an open database. SHOW queries in
	// the capture are server introspection and are skipped (counted in
	// Summary.Skipped) in this mode.
	DB *dsdb.DB

	// Clients bounds the replay's concurrency. 0 means one replay
	// worker per distinct recorded session — the recorded concurrency.
	// Each recorded session's queries always replay in recorded order
	// on one worker, whatever the bound.
	Clients int

	// Paced, when true, fires each query at its recorded start offset
	// (scaled by Timescale) instead of closed-loop as fast as possible.
	// Latencies are then measured from the scheduled arrival, queueing
	// delay included, exactly like the open-loop load generator.
	Paced bool
	// Timescale divides the recorded offsets in paced mode: 1 (the
	// default) replays at recorded speed, 2 twice as fast, 0.5 at half
	// speed. Ignored when Paced is false.
	Timescale float64

	// WaitReady, when positive, retries the first connection for up to
	// this long (live mode only).
	WaitReady time.Duration

	// Runner, when non-nil, replaces the query transport entirely:
	// every replayed query calls it instead of a wire client or the
	// in-process DB. Tests use it to collect result rows for
	// byte-comparison. Must be safe for concurrent use when the replay
	// runs more than one worker.
	Runner func(ctx context.Context, label, sql string) (rows int64, cacheHit bool, err error)
}

// ReplayStat is the per-label slice of a ReplaySummary, carrying both
// sides of the comparison: the latencies this replay measured and the
// latencies the capture recorded for the same queries.
type ReplayStat struct {
	Label       string
	Count       int
	Rows        int64
	Lat         Latency
	RecordedLat Latency
}

// ReplaySummary is the result of one replay run.
type ReplaySummary struct {
	Queries   int   // queries replayed to completion
	Rows      int64 // rows streamed by replayed queries
	Skipped   int   // records not replayed (recorded errors; SHOW in-process)
	Sessions  int   // distinct recorded sessions among replayed records
	Clients   int   // replay workers used
	Paced     bool
	Timescale float64
	Elapsed   time.Duration

	// Lat is the replayed latency distribution; RecordedLat is the
	// recorded distribution of the same records — the capture-time
	// baseline every replay is compared against.
	Lat         Latency
	RecordedLat Latency
	CacheHits   int

	// PerQuery aggregates by recorded label, ascending.
	PerQuery []ReplayStat
}

// Throughput returns replayed queries per second.
func (s *ReplaySummary) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Queries) / s.Elapsed.Seconds()
}

// replayJob is one record scheduled onto a worker.
type replayJob struct {
	rec wcap.Record
}

// replaySample is one replayed query execution.
type replaySample struct {
	label    string
	rows     int64
	d        time.Duration
	recorded time.Duration
	hit      bool
}

// isShowSQL reports whether sql is a server-side SHOW statement —
// introspection that only a live server can answer.
func isShowSQL(sql string) bool {
	f := strings.Fields(strings.ToLower(sql))
	return len(f) > 0 && f[0] == "show"
}

// Replay re-runs a captured workload. Records replay grouped by their
// recorded session — one worker per session (or fewer, with sessions
// folded together in recorded-offset order) — either closed-loop or
// paced at the recorded arrival offsets. Records whose recorded
// outcome was an error are skipped: the capture says they never
// produced a result stream, so there is nothing to reproduce.
func Replay(ctx context.Context, p ReplayParams) (*ReplaySummary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Timescale <= 0 {
		p.Timescale = 1
	}
	if p.Runner == nil && (p.Addr == "") == (p.DB == nil) {
		return nil, fmt.Errorf("load: replay needs exactly one of Addr and DB")
	}
	inProcess := p.Runner != nil || p.DB != nil

	// Partition the capture: replayable records, grouped per recorded
	// session, each group in recorded start order.
	bySession := make(map[uint32][]wcap.Record)
	var skipped int
	for _, r := range p.Records {
		if r.Err != wcap.OK || (inProcess && isShowSQL(r.SQL)) {
			skipped++
			continue
		}
		bySession[r.Session] = append(bySession[r.Session], r)
	}
	if len(bySession) == 0 {
		return nil, fmt.Errorf("load: no replayable records in capture (%d records, %d skipped)", len(p.Records), skipped)
	}
	sessions := make([]uint32, 0, len(bySession))
	for id := range bySession {
		sort.SliceStable(bySession[id], func(a, b int) bool {
			return bySession[id][a].Offset < bySession[id][b].Offset
		})
		sessions = append(sessions, id)
	}
	sort.Slice(sessions, func(a, b int) bool { return sessions[a] < sessions[b] })

	clients := p.Clients
	if clients <= 0 || clients > len(sessions) {
		clients = len(sessions)
	}
	// Sessions fold onto workers round-robin by rank; a worker with
	// several sessions merges them by recorded offset, preserving each
	// session's internal order.
	lanes := make([][]wcap.Record, clients)
	for rank, id := range sessions {
		lanes[rank%clients] = append(lanes[rank%clients], bySession[id]...)
	}
	for i := range lanes {
		sort.SliceStable(lanes[i], func(a, b int) bool { return lanes[i][a].Offset < lanes[i][b].Offset })
	}

	// One runner per worker: a dedicated wire connection in live mode,
	// the shared DB (safe: one DB, N sessions) or the caller's Runner
	// otherwise.
	runners := make([]func(ctx context.Context, label, sql string) (int64, bool, error), clients)
	if p.Runner != nil {
		for i := range runners {
			runners[i] = p.Runner
		}
	} else if p.DB != nil {
		run := func(ctx context.Context, label, sql string) (int64, bool, error) {
			rows, err := p.DB.QueryObserved(ctx, nil, label, sql)
			if err != nil {
				return 0, false, err
			}
			defer rows.Close()
			var n int64
			for rows.Next() {
				n++
			}
			return n, rows.CacheHit(), rows.Err()
		}
		for i := range runners {
			runners[i] = run
		}
	} else {
		dbs := make([]*client.DB, clients)
		defer func() {
			for _, db := range dbs {
				if db != nil {
					db.Close()
				}
			}
		}()
		for i := range dbs {
			db, err := dialReady(ctx, p.Addr, p.WaitReady)
			if err != nil {
				return nil, fmt.Errorf("load: replay client %d: %w", i+1, err)
			}
			dbs[i] = db
			runners[i] = func(ctx context.Context, label, sql string) (int64, bool, error) {
				rows, err := db.QueryLabeled(ctx, label, sql)
				if err != nil {
					return 0, false, err
				}
				defer rows.Close()
				var n int64
				for rows.Next() {
					n++
				}
				return n, rows.CacheHit(), rows.Err()
			}
		}
	}

	// Drive the lanes. Same fail-fast discipline as the load
	// generator: the first failure cancels every other worker.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	results := make([]struct {
		samples []replaySample
		err     error
	}, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range lanes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			for _, rec := range lanes[i] {
				measureFrom := time.Now()
				if p.Paced {
					due := start.Add(time.Duration(float64(rec.Offset) / p.Timescale))
					select {
					case <-runCtx.Done():
						if res.err == nil {
							res.err = runCtx.Err()
						}
						return
					case <-time.After(time.Until(due)):
					}
					// Latency from the scheduled arrival: service time
					// plus any lag behind the recorded schedule.
					measureFrom = due
				} else if runCtx.Err() != nil {
					if res.err == nil {
						res.err = runCtx.Err()
					}
					return
				}
				rows, hit, err := runners[i](runCtx, rec.Label, rec.SQL)
				if err != nil {
					res.err = fmt.Errorf("load: replay worker %d %s: %w", i+1, rec.Label, err)
					cancelRun()
					return
				}
				res.samples = append(res.samples, replaySample{
					label:    rec.Label,
					rows:     rows,
					d:        time.Since(measureFrom),
					recorded: rec.Latency,
					hit:      hit,
				})
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []replaySample
	for i := range results {
		if err := results[i].err; err != nil {
			return nil, err
		}
		all = append(all, results[i].samples...)
	}
	return summarizeReplay(p, all, len(sessions), clients, skipped, elapsed), nil
}

// summarizeReplay aggregates replay samples into the summary shape.
func summarizeReplay(p ReplayParams, all []replaySample, sessions, clients, skipped int, elapsed time.Duration) *ReplaySummary {
	s := &ReplaySummary{
		Queries:   len(all),
		Skipped:   skipped,
		Sessions:  sessions,
		Clients:   clients,
		Paced:     p.Paced,
		Timescale: p.Timescale,
		Elapsed:   elapsed,
	}
	var lats, reclats []time.Duration
	byLabel := make(map[string][]replaySample)
	for _, sm := range all {
		s.Rows += sm.rows
		lats = append(lats, sm.d)
		reclats = append(reclats, sm.recorded)
		if sm.hit {
			s.CacheHits++
		}
		byLabel[sm.label] = append(byLabel[sm.label], sm)
	}
	s.Lat = percentiles(lats)
	s.RecordedLat = percentiles(reclats)
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		var qlats, qrec []time.Duration
		var rows int64
		for _, sm := range byLabel[l] {
			qlats = append(qlats, sm.d)
			qrec = append(qrec, sm.recorded)
			rows += sm.rows
		}
		s.PerQuery = append(s.PerQuery, ReplayStat{
			Label:       l,
			Count:       len(byLabel[l]),
			Rows:        rows,
			Lat:         percentiles(qlats),
			RecordedLat: percentiles(qrec),
		})
	}
	return s
}

// Report renders the replay summary with the recorded-vs-replayed
// latency comparison — the human-readable counterpart of the JSON
// report.
func (s *ReplaySummary) Report() string {
	var b strings.Builder
	mode := "closed-loop"
	if s.Paced {
		mode = fmt.Sprintf("paced ×%g", s.Timescale)
	}
	fmt.Fprintf(&b, "replayed %d queries (%d skipped) from %d sessions on %d workers, %s: %.1f q/s over %s\n",
		s.Queries, s.Skipped, s.Sessions, s.Clients, mode, s.Throughput(), s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "rows %d, cache hits %d\n", s.Rows, s.CacheHits)
	cmp := func(name string, rec, rep Latency) {
		fmt.Fprintf(&b, "%-10s recorded p50=%s p90=%s p99=%s max=%s\n", name,
			rec.P50.Round(time.Microsecond), rec.P90.Round(time.Microsecond),
			rec.P99.Round(time.Microsecond), rec.Max.Round(time.Microsecond))
		fmt.Fprintf(&b, "%-10s replayed p50=%s p90=%s p99=%s max=%s\n", "",
			rep.P50.Round(time.Microsecond), rep.P90.Round(time.Microsecond),
			rep.P99.Round(time.Microsecond), rep.Max.Round(time.Microsecond))
	}
	cmp("overall", s.RecordedLat, s.Lat)
	for _, q := range s.PerQuery {
		fmt.Fprintf(&b, "  %-12s n=%-4d rows=%-8d recorded_p50=%-10s replayed_p50=%s\n",
			q.Label, q.Count, q.Rows,
			q.RecordedLat.P50.Round(time.Microsecond), q.Lat.P50.Round(time.Microsecond))
	}
	return b.String()
}
