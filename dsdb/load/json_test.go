package load

import (
	"encoding/json"
	"testing"
	"time"

	"repro/dsdb/wire"
)

func TestBuildJSONReport(t *testing.T) {
	sum := &Summary{
		Mix:       "test",
		Clients:   2,
		Rounds:    3,
		Warmup:    1,
		Queries:   12,
		Rows:      340,
		Elapsed:   2 * time.Second,
		Lat:       Latency{P50: time.Millisecond, P90: 2 * time.Millisecond, P99: 5 * time.Millisecond, Max: 9 * time.Millisecond},
		CacheHits: 6,
		LatHit:    Latency{P50: 100 * time.Microsecond},
		LatMiss:   Latency{P50: 3 * time.Millisecond},
		PerQuery: []QueryStat{
			{Label: "Q3", Count: 6, Rows: 170, Lat: Latency{P50: time.Millisecond}},
		},
	}
	st := &wire.Stats{Pairs: []wire.StatPair{
		{Name: "queries_total", Value: 12},
		{Name: "stage_exec_count", Value: 6},
		{Name: "stage_exec_total_ns", Value: 6_000_000},
	}}

	r := BuildJSONReport(sum, st)
	if r.Throughput != 6 {
		t.Fatalf("throughput = %v, want 6", r.Throughput)
	}
	if r.HitRatio != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", r.HitRatio)
	}
	if r.LatHit == nil || r.LatHit.P50Ns != 100_000 {
		t.Fatalf("latency_hit = %+v, want p50 100000ns", r.LatHit)
	}
	if r.LatMiss == nil || r.LatMiss.P50Ns != 3_000_000 {
		t.Fatalf("latency_miss = %+v, want p50 3000000ns", r.LatMiss)
	}
	if r.ServerStats["queries_total"] != 12 {
		t.Fatalf("server_stats queries_total = %d", r.ServerStats["queries_total"])
	}
	var exec *StageMean
	for i := range r.ServerStages {
		if r.ServerStages[i].Stage == "exec" {
			exec = &r.ServerStages[i]
		}
	}
	if exec == nil || exec.MeanNs != 1_000_000 {
		t.Fatalf("exec stage mean = %+v, want mean 1000000ns", exec)
	}

	// The report must round-trip as JSON with its stable keys.
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mix", "throughput_qps", "latency", "per_query", "server_stats", "server_stages", "hit_ratio"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("report JSON is missing key %q (have %v)", key, decoded)
		}
	}
}

func TestCaptureSection(t *testing.T) {
	if got := CaptureSection(nil); got != nil {
		t.Fatalf("nil stats: got %+v", got)
	}
	// No capture_* pairs (server without -capture-dir): no block.
	st := &wire.Stats{Pairs: []wire.StatPair{{Name: "queries_total", Value: 9}}}
	if got := CaptureSection(st); got != nil {
		t.Fatalf("capture-less stats: got %+v", got)
	}
	st.Pairs = append(st.Pairs,
		wire.StatPair{Name: "capture_records", Value: 42},
		wire.StatPair{Name: "capture_dropped", Value: 1},
		wire.StatPair{Name: "capture_sampled_out", Value: 5},
		wire.StatPair{Name: "capture_bytes", Value: 4096},
		wire.StatPair{Name: "capture_io_errors", Value: 0},
	)
	got := CaptureSection(st)
	want := &JSONCaptureStats{Records: 42, Dropped: 1, SampledOut: 5, Bytes: 4096}
	if got == nil || *got != *want {
		t.Fatalf("capture section = %+v, want %+v", got, want)
	}
	// And it rides the full report under the "capture" key.
	r := BuildJSONReport(&Summary{Mix: "train", Queries: 1, Elapsed: time.Second}, st)
	if r.Capture == nil || r.Capture.Records != 42 {
		t.Fatalf("report capture block = %+v", r.Capture)
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["capture"]; !ok {
		t.Fatalf("report JSON is missing the capture block: %v", decoded)
	}
}

func TestBuildJSONReportWithoutServerStats(t *testing.T) {
	r := BuildJSONReport(&Summary{Mix: "train", Queries: 1, Elapsed: time.Second}, nil)
	if r.ServerStats != nil || r.ServerStages != nil {
		t.Fatalf("nil stats must leave server sections empty: %+v", r)
	}
	if r.LatHit != nil || r.LatMiss != nil {
		t.Fatalf("no cache hits must omit the split latencies: %+v", r)
	}
}
