package load

import (
	"repro/dsdb/obs"
	"repro/dsdb/wire"
)

// JSONLatency is a Latency in integer nanoseconds, the form a
// machine-readable report wants (no duration-string parsing).
type JSONLatency struct {
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	MaxNs int64 `json:"max_ns"`
}

func jsonLat(l Latency) JSONLatency {
	return JSONLatency{
		P50Ns: l.P50.Nanoseconds(),
		P90Ns: l.P90.Nanoseconds(),
		P99Ns: l.P99.Nanoseconds(),
		MaxNs: l.Max.Nanoseconds(),
	}
}

// JSONQueryStat is one query's slice of a JSONReport.
type JSONQueryStat struct {
	Label   string      `json:"label"`
	Count   int         `json:"count"`
	Rows    int64       `json:"rows"`
	Latency JSONLatency `json:"latency"`
}

// StageMean summarizes one execution stage across every query the
// server observed: how many spans recorded time in the stage, the
// total, and the mean per recording.
type StageMean struct {
	Stage   string `json:"stage"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MeanNs  int64  `json:"mean_ns"`
}

// JSONReport is the machine-readable run summary written by dsload
// -report-json: the Summary's numbers with stable snake_case keys,
// plus — when the server's stats snapshot is available — the raw
// counter pairs and the per-stage means derived from the snapshot's
// stage_<name>_count / stage_<name>_total_ns pairs.
type JSONReport struct {
	Mix        string  `json:"mix"`
	Clients    int     `json:"clients"`
	Rounds     int     `json:"rounds"`
	Warmup     int     `json:"warmup"`
	Queries    int     `json:"queries"`
	Rows       int64   `json:"rows"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	Throughput float64 `json:"throughput_qps"`

	Latency   JSONLatency  `json:"latency"`
	CacheHits int          `json:"cache_hits"`
	HitRatio  float64      `json:"hit_ratio"`
	LatHit    *JSONLatency `json:"latency_hit,omitempty"`
	LatMiss   *JSONLatency `json:"latency_miss,omitempty"`

	ArrivalRate float64 `json:"arrival_rate_qps,omitempty"`
	Scenario    string  `json:"scenario,omitempty"`

	PerQuery []JSONQueryStat `json:"per_query"`

	ServerStats  map[string]int64  `json:"server_stats,omitempty"`
	ServerStages []StageMean       `json:"server_stages,omitempty"`
	Capture      *JSONCaptureStats `json:"capture,omitempty"`
}

// JSONCaptureStats is the server's workload-capture counter block,
// present in a report only when the target server was started with a
// capture (dsdbd -capture-dir). CI asserts dropped == 0 here: the run
// was recorded in full.
type JSONCaptureStats struct {
	Records    int64 `json:"records"`
	Dropped    int64 `json:"dropped"`
	SampledOut int64 `json:"sampled_out"`
	Bytes      int64 `json:"bytes"`
	IOErrors   int64 `json:"io_errors"`
}

// CaptureSection extracts the capture counter block from a server
// stats snapshot, or nil when the server runs without capture (the
// capture_* pairs ride the snapshot only when enabled).
func CaptureSection(st *wire.Stats) *JSONCaptureStats {
	if st == nil {
		return nil
	}
	records, ok := st.Get("capture_records")
	if !ok {
		return nil
	}
	c := &JSONCaptureStats{Records: records}
	c.Dropped, _ = st.Get("capture_dropped")
	c.SampledOut, _ = st.Get("capture_sampled_out")
	c.Bytes, _ = st.Get("capture_bytes")
	c.IOErrors, _ = st.Get("capture_io_errors")
	return c
}

// JSONReplayQueryStat is one label's slice of a JSONReplayReport:
// the replayed numbers next to the capture-time recording.
type JSONReplayQueryStat struct {
	Label       string      `json:"label"`
	Count       int         `json:"count"`
	Rows        int64       `json:"rows"`
	Latency     JSONLatency `json:"latency"`
	RecordedLat JSONLatency `json:"recorded_latency"`
}

// JSONReplayReport is the machine-readable replay summary written by
// dsreplay -report-json: the same core shape as dsload's JSONReport
// (queries/rows/elapsed/throughput/latency/server stats) plus the
// recorded-vs-replayed latency comparison that makes a replay a
// regression check.
type JSONReplayReport struct {
	Queries    int     `json:"queries"`
	Skipped    int     `json:"skipped"`
	Sessions   int     `json:"sessions"`
	Clients    int     `json:"clients"`
	Paced      bool    `json:"paced"`
	Timescale  float64 `json:"timescale,omitempty"`
	Rows       int64   `json:"rows"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	Throughput float64 `json:"throughput_qps"`

	Latency         JSONLatency `json:"latency"`
	RecordedLatency JSONLatency `json:"recorded_latency"`
	CacheHits       int         `json:"cache_hits"`

	PerQuery []JSONReplayQueryStat `json:"per_query"`

	ServerStats  map[string]int64  `json:"server_stats,omitempty"`
	ServerStages []StageMean       `json:"server_stages,omitempty"`
	Capture      *JSONCaptureStats `json:"capture,omitempty"`
}

// BuildReplayJSONReport renders a ReplaySummary (and, optionally, the
// target server's stats snapshot) as the report dsreplay -report-json
// writes.
func BuildReplayJSONReport(s *ReplaySummary, st *wire.Stats) JSONReplayReport {
	r := JSONReplayReport{
		Queries:         s.Queries,
		Skipped:         s.Skipped,
		Sessions:        s.Sessions,
		Clients:         s.Clients,
		Paced:           s.Paced,
		Timescale:       s.Timescale,
		Rows:            s.Rows,
		ElapsedNs:       s.Elapsed.Nanoseconds(),
		Throughput:      s.Throughput(),
		Latency:         jsonLat(s.Lat),
		RecordedLatency: jsonLat(s.RecordedLat),
		CacheHits:       s.CacheHits,
		PerQuery:        make([]JSONReplayQueryStat, 0, len(s.PerQuery)),
	}
	for _, q := range s.PerQuery {
		r.PerQuery = append(r.PerQuery, JSONReplayQueryStat{
			Label:       q.Label,
			Count:       q.Count,
			Rows:        q.Rows,
			Latency:     jsonLat(q.Lat),
			RecordedLat: jsonLat(q.RecordedLat),
		})
	}
	if st != nil {
		r.ServerStats, r.ServerStages = serverSections(st)
		r.Capture = CaptureSection(st)
	}
	return r
}

// serverSections renders a wire stats snapshot as the report's raw
// counter map and per-stage means; shared by both report builders.
func serverSections(st *wire.Stats) (map[string]int64, []StageMean) {
	stats := make(map[string]int64, len(st.Pairs))
	for _, p := range st.Pairs {
		stats[p.Name] = p.Value
	}
	var stages []StageMean
	for i := obs.Stage(0); i < obs.NumStages; i++ {
		name := i.String()
		count, _ := st.Get("stage_" + name + "_count")
		total, _ := st.Get("stage_" + name + "_total_ns")
		sm := StageMean{Stage: name, Count: count, TotalNs: total}
		if count > 0 {
			sm.MeanNs = total / count
		}
		stages = append(stages, sm)
	}
	return stats, stages
}

// BuildJSONReport renders a Summary (and, optionally, the server's
// wire stats snapshot; nil when it was not fetched) as the report
// dsload -report-json writes.
func BuildJSONReport(s *Summary, st *wire.Stats) JSONReport {
	r := JSONReport{
		Mix:         s.Mix,
		Clients:     s.Clients,
		Rounds:      s.Rounds,
		Warmup:      s.Warmup,
		Queries:     s.Queries,
		Rows:        s.Rows,
		ElapsedNs:   s.Elapsed.Nanoseconds(),
		Throughput:  s.Throughput(),
		Latency:     jsonLat(s.Lat),
		CacheHits:   s.CacheHits,
		HitRatio:    s.HitRatio(),
		ArrivalRate: s.ArrivalRate,
		Scenario:    s.Scenario,
		PerQuery:    make([]JSONQueryStat, 0, len(s.PerQuery)),
	}
	if s.CacheHits > 0 {
		hit, miss := jsonLat(s.LatHit), jsonLat(s.LatMiss)
		r.LatHit = &hit
		if s.CacheHits < s.Queries {
			r.LatMiss = &miss
		}
	}
	for _, q := range s.PerQuery {
		r.PerQuery = append(r.PerQuery, JSONQueryStat{
			Label:   q.Label,
			Count:   q.Count,
			Rows:    q.Rows,
			Latency: jsonLat(q.Lat),
		})
	}
	if st != nil {
		r.ServerStats, r.ServerStages = serverSections(st)
		r.Capture = CaptureSection(st)
	}
	return r
}
