package load

import (
	"repro/dsdb/obs"
	"repro/dsdb/wire"
)

// JSONLatency is a Latency in integer nanoseconds, the form a
// machine-readable report wants (no duration-string parsing).
type JSONLatency struct {
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	MaxNs int64 `json:"max_ns"`
}

func jsonLat(l Latency) JSONLatency {
	return JSONLatency{
		P50Ns: l.P50.Nanoseconds(),
		P90Ns: l.P90.Nanoseconds(),
		P99Ns: l.P99.Nanoseconds(),
		MaxNs: l.Max.Nanoseconds(),
	}
}

// JSONQueryStat is one query's slice of a JSONReport.
type JSONQueryStat struct {
	Label   string      `json:"label"`
	Count   int         `json:"count"`
	Rows    int64       `json:"rows"`
	Latency JSONLatency `json:"latency"`
}

// StageMean summarizes one execution stage across every query the
// server observed: how many spans recorded time in the stage, the
// total, and the mean per recording.
type StageMean struct {
	Stage   string `json:"stage"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MeanNs  int64  `json:"mean_ns"`
}

// JSONReport is the machine-readable run summary written by dsload
// -report-json: the Summary's numbers with stable snake_case keys,
// plus — when the server's stats snapshot is available — the raw
// counter pairs and the per-stage means derived from the snapshot's
// stage_<name>_count / stage_<name>_total_ns pairs.
type JSONReport struct {
	Mix        string  `json:"mix"`
	Clients    int     `json:"clients"`
	Rounds     int     `json:"rounds"`
	Warmup     int     `json:"warmup"`
	Queries    int     `json:"queries"`
	Rows       int64   `json:"rows"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	Throughput float64 `json:"throughput_qps"`

	Latency   JSONLatency  `json:"latency"`
	CacheHits int          `json:"cache_hits"`
	HitRatio  float64      `json:"hit_ratio"`
	LatHit    *JSONLatency `json:"latency_hit,omitempty"`
	LatMiss   *JSONLatency `json:"latency_miss,omitempty"`

	ArrivalRate float64 `json:"arrival_rate_qps,omitempty"`
	Scenario    string  `json:"scenario,omitempty"`

	PerQuery []JSONQueryStat `json:"per_query"`

	ServerStats  map[string]int64 `json:"server_stats,omitempty"`
	ServerStages []StageMean      `json:"server_stages,omitempty"`
}

// BuildJSONReport renders a Summary (and, optionally, the server's
// wire stats snapshot; nil when it was not fetched) as the report
// dsload -report-json writes.
func BuildJSONReport(s *Summary, st *wire.Stats) JSONReport {
	r := JSONReport{
		Mix:         s.Mix,
		Clients:     s.Clients,
		Rounds:      s.Rounds,
		Warmup:      s.Warmup,
		Queries:     s.Queries,
		Rows:        s.Rows,
		ElapsedNs:   s.Elapsed.Nanoseconds(),
		Throughput:  s.Throughput(),
		Latency:     jsonLat(s.Lat),
		CacheHits:   s.CacheHits,
		HitRatio:    s.HitRatio(),
		ArrivalRate: s.ArrivalRate,
		Scenario:    s.Scenario,
		PerQuery:    make([]JSONQueryStat, 0, len(s.PerQuery)),
	}
	if s.CacheHits > 0 {
		hit, miss := jsonLat(s.LatHit), jsonLat(s.LatMiss)
		r.LatHit = &hit
		if s.CacheHits < s.Queries {
			r.LatMiss = &miss
		}
	}
	for _, q := range s.PerQuery {
		r.PerQuery = append(r.PerQuery, JSONQueryStat{
			Label:   q.Label,
			Count:   q.Count,
			Rows:    q.Rows,
			Latency: jsonLat(q.Lat),
		})
	}
	if st != nil {
		r.ServerStats = make(map[string]int64, len(st.Pairs))
		for _, p := range st.Pairs {
			r.ServerStats[p.Name] = p.Value
		}
		for i := obs.Stage(0); i < obs.NumStages; i++ {
			name := i.String()
			count, _ := st.Get("stage_" + name + "_count")
			total, _ := st.Get("stage_" + name + "_total_ns")
			sm := StageMean{Stage: name, Count: count, TotalNs: total}
			if count > 0 {
				sm.MeanNs = total / count
			}
			r.ServerStages = append(r.ServerStages, sm)
		}
	}
	return r
}
