package load

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/dsdb"
	"repro/dsdb/server"
)

// TestReportGoldenScenario pins the scenario report lines the plain
// goldens do not reach: the scenario tag and the slow-kill tally.
// Regenerate with -update after an intentional change.
func TestReportGoldenScenario(t *testing.T) {
	s := &Summary{
		Mix:         "train",
		Clients:     4,
		Rounds:      2,
		Warmup:      1,
		Queries:     40,
		Rows:        5000,
		Elapsed:     900 * time.Millisecond,
		Scenario:    ScenarioSlowReader,
		SlowClients: 2,
		SlowKilled:  2,
		Lat:         Latency{P50: 1 * time.Millisecond, P90: 3 * time.Millisecond, P99: 7 * time.Millisecond, Max: 12 * time.Millisecond},
		PerQuery: []QueryStat{
			{Label: "Q3", Count: 40, Rows: 5000, Lat: Latency{P50: 1 * time.Millisecond, P90: 3 * time.Millisecond, P99: 7 * time.Millisecond, Max: 12 * time.Millisecond}},
		},
	}
	got := s.Report()
	path := filepath.Join("testdata", "summary_scenario.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("dsload scenario report drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestValidateScenario covers normalization and every rejection path.
func TestValidateScenario(t *testing.T) {
	ok := Params{Scenario: ScenarioSlowReader}
	if err := validateScenario(&ok); err != nil {
		t.Fatalf("slowreader defaults: %v", err)
	}
	if ok.SlowClients != defaultSlowClients || ok.SlowKillWait != defaultSlowKillWait {
		t.Fatalf("slowreader defaults not applied: %+v", ok)
	}
	z := Params{Scenario: ScenarioZipf}
	if err := validateScenario(&z); err != nil || z.ZipfS != defaultZipfS {
		t.Fatalf("zipf defaults: %+v %v", z, err)
	}
	b := Params{Scenario: ScenarioBurst, ArrivalRate: 100}
	if err := validateScenario(&b); err != nil || b.BurstFactor != defaultBurstFactor || b.BurstPeriod != defaultBurstPeriod {
		t.Fatalf("burst defaults: %+v %v", b, err)
	}
	none := Params{}
	if err := validateScenario(&none); err != nil || none.SlowClients != 0 {
		t.Fatalf("empty scenario must be a no-op: %+v %v", none, err)
	}

	bad := []struct {
		name string
		p    Params
		frag string
	}{
		{"unknown", Params{Scenario: "ddos"}, `unknown scenario "ddos"`},
		{"zipf s too small", Params{Scenario: ScenarioZipf, ZipfS: 0.9}, "must be > 1"},
		{"burst closed loop", Params{Scenario: ScenarioBurst}, "needs an open loop"},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			err := validateScenario(&c.p)
			if err == nil {
				t.Fatalf("validateScenario accepted %+v", c.p)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q missing %q", err, c.frag)
			}
		})
	}
}

// TestZipfSeq checks the draws are deterministic per (seed, client)
// and actually skewed: the mix's first query must dominate.
func TestZipfSeq(t *testing.T) {
	nums := []int{6, 3, 4, 14, 17}
	a := zipfSeq(nums, 42, 0, 2000, 1.5)
	b := zipfSeq(nums, 42, 0, 2000, 1.5)
	c := zipfSeq(nums, 42, 1, 2000, 1.5)
	if len(a) != 2000 {
		t.Fatalf("wrong length %d", len(a))
	}
	same := true
	diff := false
	for k := range a {
		if a[k] != b[k] {
			same = false
		}
		if a[k] != c[k] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed+client must reproduce the identical sequence")
	}
	if !diff {
		t.Fatal("different clients must draw different sequences")
	}
	hot := 0
	valid := map[int]bool{}
	for _, n := range nums {
		valid[n] = true
	}
	for _, n := range a {
		if !valid[n] {
			t.Fatalf("drew %d, not in the mix %v", n, nums)
		}
		if n == nums[0] {
			hot++
		}
	}
	// With s=1.5 over 5 keys the hot key carries well over half the
	// mass; uniform would give 20%. Assert a loose majority so the
	// test is insensitive to the exact Zipf tail.
	if hot < len(a)/2 {
		t.Fatalf("hot key drawn %d/%d times — not skewed", hot, len(a))
	}
}

// TestSlowReaderScenarioLive runs the full adversarial scenario end to
// end: stalled readers alongside a real mix against a server with a
// short write timeout. The summary must show every stalled reader
// killed while the measured queries all completed — the liveness
// property the scenario exists to prove.
func TestSlowReaderScenarioLive(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db, server.WithWriteTimeout(500*time.Millisecond))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	sum, err := Run(context.Background(), Params{
		Addr:         ln.Addr().String(),
		Clients:      2,
		Rounds:       2,
		Warmup:       0,
		Mix:          Mix{Name: "smoke", Numbers: []int{6, 3}},
		Scenario:     ScenarioSlowReader,
		SlowClients:  2,
		SlowKillWait: 15 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := 2 * 2 * 2; sum.Queries != want {
		t.Fatalf("measured %d queries, want %d — slow readers starved the mix", sum.Queries, want)
	}
	if sum.SlowClients != 2 || sum.SlowKilled != 2 {
		t.Fatalf("slow kills = %d/%d, want 2/2", sum.SlowKilled, sum.SlowClients)
	}
	if st := srv.Stats(); st.SlowClientKills < 2 {
		t.Fatalf("server counted %d slow kills, want >= 2", st.SlowClientKills)
	}
	rep := sum.Report()
	if !strings.Contains(rep, "scenario   : slowreader") ||
		!strings.Contains(rep, "slow kills : 2/2 stalled readers disconnected by server") {
		t.Fatalf("report missing scenario lines:\n%s", rep)
	}
}

// TestZipfScenarioLive checks the Zipfian closed-loop mode preserves
// the measured-query accounting and skews the per-query counts toward
// the mix's first query.
func TestZipfScenarioLive(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	sum, err := Run(context.Background(), Params{
		Addr:     ln.Addr().String(),
		Clients:  2,
		Rounds:   8,
		Warmup:   0,
		Mix:      Mix{Name: "smoke", Numbers: []int{6, 3}},
		Seed:     7,
		Scenario: ScenarioZipf,
		ZipfS:    2.0,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := 2 * 8 * 2; sum.Queries != want {
		t.Fatalf("measured %d queries, want %d", sum.Queries, want)
	}
	hot := 0
	for _, q := range sum.PerQuery {
		if q.Label == "Q6" {
			hot = q.Count
		}
	}
	if hot <= sum.Queries/2 {
		t.Fatalf("hot query Q6 ran %d/%d times — zipf skew missing:\n%s", hot, sum.Queries, sum.Report())
	}
	if !strings.Contains(sum.Report(), "scenario   : zipf") {
		t.Fatalf("report missing scenario line:\n%s", sum.Report())
	}
}
