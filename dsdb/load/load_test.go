package load

import (
	"context"
	"flag"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/dsdb"
	"repro/dsdb/server"
)

// Regenerate the golden file after an intentional formatting change:
//
//	go test ./dsdb/load -run TestReportGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the dsload report golden file under testdata/")

// TestReportGolden pins the dsload summary format byte for byte, the
// same convention as the stcpipe report goldens: the numbers in a real
// run vary, so the golden renders a fixed synthetic summary covering
// every formatting branch (µs, ms and s durations included).
func TestReportGolden(t *testing.T) {
	s := &Summary{
		Mix:     "train",
		Clients: 4,
		Rounds:  5,
		Warmup:  1,
		Queries: 100,
		Rows:    12345,
		Elapsed: 2500 * time.Millisecond,
		Lat:     Latency{P50: 1200 * time.Microsecond, P90: 3400 * time.Microsecond, P99: 5600 * time.Microsecond, Max: 1200 * time.Millisecond},
		PerQuery: []QueryStat{
			{Label: "Q3", Count: 20, Rows: 200, Lat: Latency{P50: 950 * time.Microsecond, P90: 1100 * time.Microsecond, P99: 2300 * time.Microsecond, Max: 2400 * time.Microsecond}},
			{Label: "Q4", Count: 20, Rows: 45, Lat: Latency{P50: 1 * time.Millisecond, P90: 2 * time.Millisecond, P99: 3 * time.Millisecond, Max: 4 * time.Millisecond}},
			{Label: "Q6", Count: 60, Rows: 12100, Lat: Latency{P50: 2 * time.Second, P90: 2100 * time.Millisecond, P99: 2200 * time.Millisecond, Max: 2300 * time.Millisecond}},
		},
	}
	got := s.Report()
	path := filepath.Join("testdata", "summary.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("dsload report drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestReportGoldenCachedOpenLoop pins the extended report branches the
// plain golden does not reach: the open-loop arrival line and the
// cache hit block (ratio + split percentiles). Regenerate with
// -update after an intentional change.
func TestReportGoldenCachedOpenLoop(t *testing.T) {
	s := &Summary{
		Mix:         "test",
		Clients:     8,
		Rounds:      3,
		Warmup:      1,
		Queries:     240,
		Rows:        9000,
		Elapsed:     1200 * time.Millisecond,
		ArrivalRate: 200,
		CacheHits:   180,
		Lat:         Latency{P50: 800 * time.Microsecond, P90: 4 * time.Millisecond, P99: 9 * time.Millisecond, Max: 15 * time.Millisecond},
		LatHit:      Latency{P50: 120 * time.Microsecond, P90: 300 * time.Microsecond, P99: 700 * time.Microsecond, Max: 900 * time.Microsecond},
		LatMiss:     Latency{P50: 5 * time.Millisecond, P90: 8 * time.Millisecond, P99: 12 * time.Millisecond, Max: 15 * time.Millisecond},
		PerQuery: []QueryStat{
			{Label: "Q3", Count: 120, Rows: 4500, Lat: Latency{P50: 700 * time.Microsecond, P90: 3 * time.Millisecond, P99: 8 * time.Millisecond, Max: 14 * time.Millisecond}},
			{Label: "Q6", Count: 120, Rows: 4500, Lat: Latency{P50: 900 * time.Microsecond, P90: 5 * time.Millisecond, P99: 10 * time.Millisecond, Max: 15 * time.Millisecond}},
		},
	}
	got := s.Report()
	path := filepath.Join("testdata", "summary_cached_open.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("dsload cached/open-loop report drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestParseMix covers the named mixes and explicit number lists.
func TestParseMix(t *testing.T) {
	if m, err := ParseMix("train"); err != nil || len(m.Numbers) != 5 {
		t.Fatalf("train: %v %v", m, err)
	}
	if m, err := ParseMix("test"); err != nil || len(m.Numbers) != 10 {
		t.Fatalf("test: %v %v", m, err)
	}
	if m, err := ParseMix("3, 4,6"); err != nil || len(m.Numbers) != 3 || m.Numbers[2] != 6 {
		t.Fatalf("3,4,6: %v %v", m, err)
	}
	for _, bad := range []string{"", "x", "7", "3,nope"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestPercentilesNearestRank checks the percentile points are always
// observed samples with correct ranks.
func TestPercentilesNearestRank(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	got := percentiles(lats)
	want := Latency{P50: 50 * time.Millisecond, P90: 90 * time.Millisecond, P99: 99 * time.Millisecond, Max: 100 * time.Millisecond}
	if got != want {
		t.Fatalf("percentiles = %+v, want %+v", got, want)
	}
	if (percentiles(nil) != Latency{}) {
		t.Fatal("empty sample set must yield zero latencies")
	}
	one := percentiles([]time.Duration{7 * time.Millisecond})
	if one.P50 != 7*time.Millisecond || one.P99 != 7*time.Millisecond {
		t.Fatalf("single sample: %+v", one)
	}
	// Nearest-rank with fractional n*p: ceil, not round. For 9 samples
	// the p90 is the 9th (ceil(8.1)=9), the smallest sample that ≥90%
	// of the distribution does not exceed.
	nine := percentiles(lats[:9])
	if nine.P50 != 5*time.Millisecond || nine.P90 != 9*time.Millisecond || nine.P99 != 9*time.Millisecond {
		t.Fatalf("nine samples: %+v", nine)
	}
}

// TestRunAgainstLiveServer drives a small closed-loop run end to end:
// 2 clients × (1 warmup + 2 measured) rounds of a 2-query mix against
// an in-process server, checking the summary accounts for exactly the
// measured queries.
func TestRunAgainstLiveServer(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	sum, err := Run(context.Background(), Params{
		Addr:    ln.Addr().String(),
		Clients: 2,
		Rounds:  2,
		Warmup:  1,
		Mix:     Mix{Name: "smoke", Numbers: []int{6, 3}},
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := 2 * 2 * 2; sum.Queries != want { // clients × rounds × mix
		t.Fatalf("measured %d queries, want %d", sum.Queries, want)
	}
	if len(sum.PerQuery) != 2 || sum.PerQuery[0].Label != "Q3" || sum.PerQuery[1].Label != "Q6" {
		t.Fatalf("per-query stats malformed: %+v", sum.PerQuery)
	}
	if sum.PerQuery[0].Count != 4 || sum.PerQuery[1].Count != 4 {
		t.Fatalf("per-query counts: %+v", sum.PerQuery)
	}
	if sum.Lat.Max <= 0 || sum.Throughput() <= 0 {
		t.Fatalf("degenerate summary: %+v", sum)
	}
	// No result cache on this server: nothing may be attributed as a
	// hit.
	if sum.CacheHits != 0 || sum.HitRatio() != 0 {
		t.Fatalf("cache hits reported against an uncached server: %+v", sum)
	}
	// The report must render without panicking and mention the mix.
	if rep := sum.Report(); len(rep) == 0 {
		t.Fatal("empty report")
	}
}

// TestRunOpenLoopAgainstCachedServer drives the open-loop mode end to
// end against a result-cached server: the measured-query count must
// match the closed-loop accounting (clients × rounds × mix), and with
// one closed-loop warmup round having filled the cache, every
// measured query must be attributed as a hit.
func TestRunOpenLoopAgainstCachedServer(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithResultCache(64<<20))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	sum, err := Run(context.Background(), Params{
		Addr:        ln.Addr().String(),
		Clients:     2,
		Rounds:      2,
		Warmup:      1,
		Mix:         Mix{Name: "smoke", Numbers: []int{6, 3}},
		ArrivalRate: 500, // fast arrivals: the run stays sub-second
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := 2 * 2 * 2; sum.Queries != want {
		t.Fatalf("measured %d queries, want %d", sum.Queries, want)
	}
	if sum.ArrivalRate != 500 {
		t.Fatalf("summary lost the arrival rate: %+v", sum)
	}
	if sum.CacheHits != sum.Queries {
		t.Fatalf("cache hits = %d, want all %d (warmup filled the cache, no writers ran)",
			sum.CacheHits, sum.Queries)
	}
	if sum.LatHit.Max <= 0 {
		t.Fatalf("hit latency distribution empty: %+v", sum)
	}
	rep := sum.Report()
	if !strings.Contains(rep, "arrival    : 500.0 queries/s open-loop") ||
		!strings.Contains(rep, "cache hits : 8/8 (100.0%)") {
		t.Fatalf("report missing open-loop/cache lines:\n%s", rep)
	}
}
