package wcap

import (
	"testing"
	"time"
)

// FuzzDecodeCaptureRecord throws arbitrary bytes at the record
// decoder. The invariants: never panic, and every payload produced by
// EncodeRecord must round-trip (checked by re-encoding the decode and
// comparing — the codec has a canonical form, so encode∘decode is the
// identity on valid payloads).
func FuzzDecodeCaptureRecord(f *testing.F) {
	seeds := []Record{
		{},
		{Label: "Q3", SQL: "select 1", Rows: 5, Err: OK},
		{
			Offset:   1500 * time.Millisecond,
			Session:  7,
			QueryID:  42,
			Label:    "Q17",
			SQL:      "select sum(l_extendedprice) from lineitem, part where p_partkey = l_partkey",
			Rows:     1,
			Bytes:    512,
			Latency:  12 * time.Millisecond,
			Stages:   []int64{100, 0, 9000, 400, 0, 300},
			CacheHit: true,
			Err:      OK,
		},
		{SQL: "show stats", Err: ErrQuery},
		{Label: "Q1", SQL: "select 1", Err: ErrCancelled, Stages: make([]int64, MaxStages)},
	}
	for _, r := range seeds {
		p, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{typeQuery})
	f.Fuzz(func(t *testing.T, p []byte) {
		rec, err := DecodeRecord(p)
		if err != nil {
			return
		}
		p2, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if string(p2) != string(p) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", p, p2)
		}
	})
}
