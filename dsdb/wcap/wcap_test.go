package wcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleRecord(i int) Record {
	return Record{
		Offset:   time.Duration(i) * 7 * time.Millisecond,
		Session:  uint32(i % 3),
		QueryID:  uint64(100 + i),
		Label:    fmt.Sprintf("Q%d", i%12+1),
		SQL:      fmt.Sprintf("select %d from lineitem where l_orderkey > %d", i, i*17),
		Rows:     uint64(i * 3),
		Bytes:    uint64(i * 100),
		Latency:  time.Duration(i+1) * time.Millisecond,
		Stages:   []int64{int64(i), 0, int64(i * 2), 5, 0, 7},
		CacheHit: i%2 == 0,
		Err:      ErrClass(i % 3),
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i := 0; i < 20; i++ {
		want := sampleRecord(i)
		p, err := EncodeRecord(want)
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		got, err := DecodeRecord(p)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
	// Zero-value record (no stages, empty strings) must survive too.
	p, err := EncodeRecord(Record{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecord(p); err != nil {
		t.Fatalf("zero record: %v", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	good, err := EncodeRecord(sampleRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad type":       append([]byte{99}, good[1:]...),
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0xFF),
	}
	for name, p := range cases {
		if _, err := DecodeRecord(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	// Bad error class: patch the last byte.
	bad := append([]byte{}, good...)
	bad[len(bad)-1] = 200
	if _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad error class: got %v, want ErrCorrupt", err)
	}
	// Bad flags: patch the second-to-last byte.
	bad = append([]byte{}, good...)
	bad[len(bad)-2] = 0xF0
	if _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad flags: got %v, want ErrCorrupt", err)
	}
}

// writeCapture writes n records and closes the writer, failing the
// test on any writer error.
func writeCapture(t *testing.T, dir string, n int, opts Options) *Writer {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w.Capture(sampleRecord(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 50
	w := writeCapture(t, dir, n, Options{})
	st := w.Stats()
	if st.Records != n || st.Dropped != 0 || st.IOErrors != 0 {
		t.Fatalf("stats = %+v, want %d records, 0 dropped, 0 io errors", st, n)
	}
	recs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("loaded %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if fmt.Sprint(r) != fmt.Sprint(sampleRecord(i)) {
			t.Fatalf("record %d: got %+v want %+v", i, r, sampleRecord(i))
		}
	}
	// Capture after Close is a silent no-op.
	w.Capture(sampleRecord(0))
	if got := w.Stats().Records; got != n {
		t.Fatalf("capture after close changed records to %d", got)
	}
}

func TestEmptyAndMissingDir(t *testing.T) {
	recs, err := Load(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing dir: recs=%v err=%v, want empty, nil", recs, err)
	}
	dir := t.TempDir()
	recs, err = Load(dir)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty dir: recs=%v err=%v, want empty, nil", recs, err)
	}
	// A directory with only foreign files is as good as empty.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = Load(dir)
	if err != nil || len(recs) != 0 {
		t.Fatalf("foreign files: recs=%v err=%v, want empty, nil", recs, err)
	}
}

func TestRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	writeCapture(t, dir, 40, Options{SegmentBytes: 256})
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce at least 3", len(segs))
	}
	// No record straddles a boundary: every segment scans cleanly and
	// the concatenation is the full, ordered capture.
	recs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Fatalf("loaded %d records across segments, want 40", len(recs))
	}
	for i, r := range recs {
		if r.QueryID != uint64(100+i) {
			t.Fatalf("record %d out of order: query id %d", i, r.QueryID)
		}
	}
}

func TestReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	writeCapture(t, dir, 5, Options{})
	writeCapture(t, dir, 5, Options{})
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Seq+1 != segs[1].Seq {
		t.Fatalf("segments after reopen: %+v, want two consecutive", segs)
	}
	recs, err := Load(dir)
	if err != nil || len(recs) != 10 {
		t.Fatalf("loaded %d records err=%v, want 10, nil", len(recs), err)
	}
}

func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	writeCapture(t, dir, 10, Options{})
	segs, err := Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v err=%v", segs, err)
	}
	path := segs[0].Path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the final record mid-payload: a torn tail, tolerated.
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(dir)
	if err != nil {
		t.Fatalf("torn tail should be tolerated on the final segment: %v", err)
	}
	if len(recs) != 9 {
		t.Fatalf("loaded %d records after tear, want 9", len(recs))
	}
	// A zero run at the tail (preallocated-but-unwritten space) also
	// reads as torn, not corrupt.
	if err := os.WriteFile(path, append(data, make([]byte, 64)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if recs, err = Load(dir); err != nil || len(recs) != 10 {
		t.Fatalf("zero tail: %d records, err=%v, want 10, nil", len(recs), err)
	}
}

func TestTornNonFinalSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	writeCapture(t, dir, 10, Options{SegmentBytes: 256})
	segs, err := Segments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v err=%v", segs, err)
	}
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0].Path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn non-final segment: got %v, want ErrCorrupt", err)
	}
}

func TestMidSegmentCorruptionIsLoud(t *testing.T) {
	dir := t.TempDir()
	writeCapture(t, dir, 10, Options{})
	segs, _ := Segments(dir)
	path := segs[0].Path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the first record: CRC must catch it.
	data[frameHdr+4] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: got %v, want ErrCorrupt", err)
	}
	// An absurd length prefix mid-file (with data after it) is
	// corruption, not a tear.
	data[frameHdr+4] ^= 0xFF // restore payload
	binary.LittleEndian.PutUint32(data, uint32(MaxRecordBytes+1))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd length: got %v, want ErrCorrupt", err)
	}
}

func TestDropCounting(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Big SQL makes each write slow enough relative to the sends that
	// a capacity-1 channel must shed load; and even if the writer kept
	// up perfectly, accepted+dropped always accounts for every offer.
	rec := sampleRecord(0)
	rec.SQL = strings.Repeat("x", 32<<10)
	const offers = 5000
	for i := 0; i < offers; i++ {
		w.Capture(rec)
	}
	st := w.Stats()
	if st.Records+st.Dropped != offers {
		t.Fatalf("records %d + dropped %d != offers %d", st.Records, st.Dropped, offers)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything accepted is on disk.
	recs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != w.Stats().Records {
		t.Fatalf("loaded %d records, stats say %d accepted", len(recs), w.Stats().Records)
	}
}

func TestSampling(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sample: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	const offers = 1000
	for i := 0; i < offers; i++ {
		w.Capture(sampleRecord(i % 20))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != offers/10 {
		t.Fatalf("sample 0.1 kept %d of %d, want exactly %d (deterministic counter)", st.Records, offers, offers/10)
	}
	if st.SampledOut != offers-offers/10 {
		t.Fatalf("sampled out %d, want %d", st.SampledOut, offers-offers/10)
	}
	if st.Dropped != 0 {
		t.Fatalf("sampling must not count as drops, got %d", st.Dropped)
	}
	if _, err := Open(dir, Options{Sample: 1.5}); err == nil {
		t.Fatal("sample rate 1.5 accepted")
	}
}

func TestNilWriterCapture(t *testing.T) {
	var w *Writer
	w.Capture(sampleRecord(0)) // must not panic: the disabled path
}

func TestScanSegmentReportsEnd(t *testing.T) {
	dir := t.TempDir()
	writeCapture(t, dir, 3, Options{})
	segs, _ := Segments(dir)
	fi, err := os.Stat(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	end, torn, err := ScanSegment(segs[0].Path, nil)
	if err != nil || torn {
		t.Fatalf("scan: end=%d torn=%v err=%v", end, torn, err)
	}
	if end != fi.Size() {
		t.Fatalf("end %d != file size %d", end, fi.Size())
	}
}
