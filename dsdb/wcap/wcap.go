// Package wcap is the workload-capture subsystem: an append-only,
// length-prefixed, CRC-32C-checked binary log of every query a dsdb
// server serves. Each record carries the query's identity (monotonic
// offset from capture start, session id, observability query id,
// label, SQL text) and its outcome (rows, bytes, latency, per-stage
// nanoseconds, cache-hit attribution, error class), so a capture is a
// complete, replayable description of real traffic: cmd/dsreplay can
// re-run it against any server or in-process database, and
// stcpipe.ProfileReplayed can feed it through the paper's
// instruction-fetch pipeline in place of a synthetic mix.
//
// The on-disk discipline deliberately mirrors internal/db/wal:
// size-rotated numbered segment files of CRC-framed records, a
// panic-free decoder fuzzable in isolation (FuzzDecodeCaptureRecord),
// and a scanner that distinguishes a torn tail — the crash artifact an
// append-only file can legally carry, tolerated on the newest segment
// only — from mid-segment corruption, which fails loudly rather than
// silently dropping captured traffic.
//
// The write side is built to never touch the serving hot path: the
// server's per-query cost is one nil check when capture is disabled
// and one non-blocking channel send when enabled. A single background
// goroutine owns the segment files and does all encoding, framing and
// IO; when the bounded channel is full (a disk slower than the
// workload) the record is dropped and an atomic drop counter is
// bumped — a slow disk can never block a query, and drops are always
// visible in Stats, SHOW capture and /metrics, never silent.
//
// The package imports only the standard library, so every layer from
// the server down to offline tooling can depend on it without cycles.
package wcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClass classifies a captured query's outcome.
type ErrClass uint8

const (
	// OK is a query that completed its result stream cleanly.
	OK ErrClass = 0
	// ErrQuery is a query-level failure (bad SQL, execution error).
	ErrQuery ErrClass = 1
	// ErrCancelled is a query ended by cancellation (client Cancel
	// frame, Quit mid-stream, or server-side deadline).
	ErrCancelled ErrClass = 2
)

// String returns the class's stable name ("ok", "error", "cancelled").
func (c ErrClass) String() string {
	switch c {
	case OK:
		return "ok"
	case ErrQuery:
		return "error"
	case ErrCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("errclass(%d)", uint8(c))
}

// MaxStages bounds the per-stage array carried by a record; it is
// comfortably above obs.NumStages so the format survives new stages.
const MaxStages = 16

// Record is one served query. Offset is the query's start measured
// from the capture's own start on the monotonic clock — the replay
// schedule — so captures are position-independent: no wall-clock
// timestamps, nothing to skew between machines.
type Record struct {
	// Offset is when the query started, relative to Writer.Start().
	Offset time.Duration
	// Session is the server's accept-order session (connection) id.
	Session uint32
	// QueryID is the observability query id (0 when obs is disabled).
	QueryID uint64
	// Label is the client-supplied query label ("Q3"); may be empty.
	Label string
	// SQL is the query text exactly as served (for prepared
	// statements, the text the statement was prepared from).
	SQL string
	// Rows and Bytes are the result rows streamed and the frame bytes
	// written serving them.
	Rows  uint64
	Bytes uint64
	// Latency is the served wall time, from accept to terminal frame.
	Latency time.Duration
	// Stages are the per-stage nanosecond timings in obs stage order
	// (plan, cache, exec, io, wal, net), exec already clamped disjoint.
	// Empty when observability is disabled.
	Stages []int64
	// CacheHit marks a query answered from the server's result cache.
	CacheHit bool
	// Err classifies the outcome.
	Err ErrClass
}

// MaxRecordBytes bounds one record's payload. Query text dominates;
// anything larger in a length prefix marks garbage, not data.
const MaxRecordBytes = 1 << 20

// maxStr bounds the label and SQL fields.
const maxStr = 64 << 10

// typeQuery is the record type tag (first payload byte), reserved for
// format evolution.
const typeQuery uint8 = 1

// ErrCorrupt reports a record that is fully present in a segment but
// does not decode: a CRC mismatch, an impossible length, or a
// malformed payload. Unlike a torn tail, this is not a crash artifact
// and readers must not silently skip it.
var ErrCorrupt = errors.New("wcap: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ---- record codec ----

func appendStr(dst []byte, s string) ([]byte, error) {
	if len(s) > maxStr {
		return nil, fmt.Errorf("wcap: string field too long (%d bytes)", len(s))
	}
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	dst = append(dst, tmp[:]...)
	return append(dst, s...), nil
}

func appendU32(dst []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(dst, tmp[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(dst, tmp[:]...)
}

// EncodeRecord serializes one record payload (type byte + body).
func EncodeRecord(r Record) ([]byte, error) {
	if len(r.Stages) > MaxStages {
		return nil, fmt.Errorf("wcap: too many stages (%d)", len(r.Stages))
	}
	p := []byte{typeQuery}
	p = appendU64(p, uint64(r.Offset))
	p = appendU32(p, r.Session)
	p = appendU64(p, r.QueryID)
	var err error
	if p, err = appendStr(p, r.Label); err != nil {
		return nil, err
	}
	if p, err = appendStr(p, r.SQL); err != nil {
		return nil, err
	}
	p = appendU64(p, r.Rows)
	p = appendU64(p, r.Bytes)
	p = appendU64(p, uint64(r.Latency))
	p = append(p, uint8(len(r.Stages)))
	for _, ns := range r.Stages {
		p = appendU64(p, uint64(ns))
	}
	var flags uint8
	if r.CacheHit {
		flags |= 1
	}
	p = append(p, flags, uint8(r.Err))
	if len(p) > MaxRecordBytes {
		return nil, fmt.Errorf("wcap: record too large (%d bytes)", len(p))
	}
	return p, nil
}

// decoder walks a payload without ever indexing past its end, so
// DecodeRecord is panic-free on arbitrary input.
type decoder struct {
	p   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.p) {
		d.fail()
		return 0
	}
	v := d.p[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.p) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.p[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.p) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil || n > maxStr || d.off+n > len(d.p) {
		d.fail()
		return ""
	}
	s := string(d.p[d.off : d.off+n])
	d.off += n
	return s
}

// DecodeRecord parses one record payload. It never panics, rejects
// trailing garbage, and wraps every failure in ErrCorrupt.
func DecodeRecord(p []byte) (Record, error) {
	d := &decoder{p: p}
	if t := d.u8(); d.err == nil && t != typeQuery {
		return Record{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, t)
	}
	var r Record
	r.Offset = time.Duration(d.u64())
	r.Session = d.u32()
	r.QueryID = d.u64()
	r.Label = d.str()
	r.SQL = d.str()
	r.Rows = d.u64()
	r.Bytes = d.u64()
	r.Latency = time.Duration(d.u64())
	n := int(d.u8())
	if d.err == nil && n > MaxStages {
		return Record{}, fmt.Errorf("%w: %d stages", ErrCorrupt, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		r.Stages = append(r.Stages, int64(d.u64()))
	}
	flags := d.u8()
	if d.err == nil && flags > 1 {
		return Record{}, fmt.Errorf("%w: bad flags %#x", ErrCorrupt, flags)
	}
	r.CacheHit = flags&1 != 0
	switch c := ErrClass(d.u8()); c {
	case OK, ErrQuery, ErrCancelled:
		r.Err = c
	default:
		if d.err == nil {
			return Record{}, fmt.Errorf("%w: bad error class %d", ErrCorrupt, uint8(c))
		}
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if d.off != len(p) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p)-d.off)
	}
	return r, nil
}

// ---- segments ----

const segPrefix = "cap-"
const segSuffix = ".wcap"

// SegmentName returns the file name of segment seq.
func SegmentName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// Segment names one on-disk capture segment.
type Segment struct {
	Seq  uint64
	Path string
}

// Segments lists the capture segments under dir in ascending sequence
// order. A missing directory yields an empty list.
func Segments(dir string) ([]Segment, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []Segment
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name[len(segPrefix):len(name)-len(segSuffix)], "%d", &seq); err != nil {
			continue
		}
		segs = append(segs, Segment{Seq: seq, Path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// frame header: payload length (u32) + CRC-32C of the payload (u32).
const frameHdr = 8

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// ScanSegment walks one segment, calling fn for every valid record.
// It returns the byte offset of the end of the last valid record and
// whether the bytes beyond it are a torn tail (the prefix of an
// append a crash interrupted). A full-length record that fails its
// CRC or does not decode returns ErrCorrupt; fn errors abort the
// scan. The tear/corruption split follows internal/db/wal: a claimed
// extent past EOF or a zero run to EOF reads as torn, anything else
// impossible is corruption.
func ScanSegment(path string, fn func(rec Record) error) (end int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	off := 0
	for off < len(data) {
		rem := len(data) - off
		if rem < frameHdr {
			return int64(off), true, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 {
			// A zero run to EOF is preallocated-but-unwritten space
			// (a tear); a zero length with live data after it is not.
			if allZero(data[off:]) {
				return int64(off), true, nil
			}
			return int64(off), false, fmt.Errorf("%w: zero record length at offset %d of %s", ErrCorrupt, off, path)
		}
		if n > MaxRecordBytes {
			// The writer never frames a payload this large, so a
			// fully-present header claiming one is corruption even
			// when the claimed extent runs past EOF.
			return int64(off), false, fmt.Errorf("%w: bad record length %d at offset %d of %s", ErrCorrupt, n, off, path)
		}
		if off+frameHdr+n > len(data) {
			return int64(off), true, nil
		}
		payload := data[off+frameHdr : off+frameHdr+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return int64(off), false, fmt.Errorf("%w: CRC mismatch at offset %d of %s", ErrCorrupt, off, path)
		}
		rec, derr := DecodeRecord(payload)
		if derr != nil {
			return int64(off), false, fmt.Errorf("%s offset %d: %w", path, off, derr)
		}
		off += frameHdr + n
		if fn != nil {
			if err := fn(rec); err != nil {
				return int64(off), false, err
			}
		}
	}
	return int64(off), false, nil
}

// Replay scans every segment under dir in sequence order, calling fn
// for each record. A torn tail is tolerated only on the newest
// segment (the only place a crash — or a SIGKILLed server — can leave
// one); anywhere else it reports ErrCorrupt.
func Replay(dir string, fn func(rec Record) error) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		_, torn, err := ScanSegment(s.Path, fn)
		if err != nil {
			return err
		}
		if torn && i != len(segs)-1 {
			return fmt.Errorf("%w: torn record inside non-final segment %s", ErrCorrupt, s.Path)
		}
	}
	return nil
}

// Load reads a whole capture into memory, in record order.
func Load(dir string) ([]Record, error) {
	var recs []Record
	if err := Replay(dir, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return recs, nil
}

// ---- writer ----

// Options configures a Writer.
type Options struct {
	// SegmentBytes is the rotation threshold (default 8 MB): an append
	// that would push the current segment past it rotates to a fresh
	// segment first.
	SegmentBytes int64
	// Buffer is the capture channel's capacity (default 1024): how
	// many records may be in flight to the background writer before
	// Capture starts dropping.
	Buffer int
	// Sample keeps roughly this fraction of queries (0 or 1 captures
	// everything; 0.01 captures ~1 in 100). Sampling is deterministic
	// counter-based — every round(1/Sample)-th query is kept — so two
	// identical runs capture the identical subset. Sampled-out queries
	// are counted separately from drops: skipping was chosen, not
	// forced.
	Sample float64
}

func (o Options) withDefaults() (Options, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.Buffer <= 0 {
		o.Buffer = 1024
	}
	if o.Sample < 0 || o.Sample > 1 {
		return o, fmt.Errorf("wcap: sample rate %g outside [0, 1]", o.Sample)
	}
	return o, nil
}

// Stats is a point-in-time copy of a writer's lifetime counters.
type Stats struct {
	// Records counts records accepted onto the capture channel (they
	// are on disk once Close returns, modulo IOErrors).
	Records uint64
	// Dropped counts records lost because the channel was full — the
	// disk not keeping up with the workload. Never silent: surfaced
	// here, in SHOW capture, and on /metrics.
	Dropped uint64
	// SampledOut counts records skipped by Options.Sample.
	SampledOut uint64
	// Bytes counts frame bytes written to segment files.
	Bytes uint64
	// IOErrors counts records the background writer failed to encode
	// or write; LastErr describes the most recent failure.
	IOErrors uint64
	LastErr  string
}

// Writer captures records to a segment directory. The hot-path
// surface (Capture) is wait-free: it never blocks, never does IO, and
// takes no lock — the background goroutine started by Open owns all
// file state exclusively. Close stops the goroutine, drains what is
// buffered and fsyncs.
type Writer struct {
	dir   string
	opts  Options
	start time.Time
	every uint64 // sampling modulus (1 = keep everything)

	ch   chan Record
	stop chan struct{}
	done chan struct{}

	closed   atomic.Bool
	stopOnce sync.Once

	records    atomic.Uint64
	dropped    atomic.Uint64
	sampledOut atomic.Uint64
	seen       atomic.Uint64 // sampling counter
	bytes      atomic.Uint64
	ioErrs     atomic.Uint64
	lastErr    atomic.Pointer[string]

	// Background-goroutine-only file state.
	seq uint64
	f   *os.File
	off int64
}

// Open creates (or reuses) dir and starts the background writer. An
// existing capture is never appended into: writing always begins on a
// fresh segment one past the highest present, so a reopened directory
// accumulates runs without risking a mid-segment splice.
func Open(dir string, opts Options) (*Writer, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	seq := uint64(0)
	if len(segs) > 0 {
		seq = segs[len(segs)-1].Seq + 1
	}
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(seq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	every := uint64(1)
	if opts.Sample > 0 && opts.Sample < 1 {
		every = uint64(1/opts.Sample + 0.5)
		if every < 1 {
			every = 1
		}
	}
	w := &Writer{
		dir:   dir,
		opts:  opts,
		start: time.Now(),
		every: every,
		ch:    make(chan Record, opts.Buffer),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		seq:   seq,
		f:     f,
	}
	go w.run()
	return w, nil
}

// Start returns the capture's start instant; Record.Offset values are
// measured against it (use the monotonic difference of the query's
// own start reading — no extra clock read on the hot path).
func (w *Writer) Start() time.Time { return w.start }

// Dir returns the capture directory.
func (w *Writer) Dir() string { return w.dir }

// Capture hands one record to the background writer. It never
// blocks: when the channel is full the record is dropped and counted.
// Safe for concurrent use from any goroutine; a no-op after Close.
func (w *Writer) Capture(rec Record) {
	if w == nil || w.closed.Load() {
		return
	}
	if w.every > 1 && w.seen.Add(1)%w.every != 0 {
		w.sampledOut.Add(1)
		return
	}
	select {
	case w.ch <- rec:
		w.records.Add(1)
	default:
		w.dropped.Add(1)
	}
}

// Stats snapshots the writer's counters (atomics; callable any time,
// including mid-traffic).
func (w *Writer) Stats() Stats {
	st := Stats{
		Records:    w.records.Load(),
		Dropped:    w.dropped.Load(),
		SampledOut: w.sampledOut.Load(),
		Bytes:      w.bytes.Load(),
		IOErrors:   w.ioErrs.Load(),
	}
	if p := w.lastErr.Load(); p != nil {
		st.LastErr = *p
	}
	return st
}

// Close stops capturing, drains the buffered records to disk, fsyncs
// and closes the current segment. Idempotent.
func (w *Writer) Close() error {
	w.closed.Store(true)
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
	if st := w.Stats(); st.LastErr != "" {
		return fmt.Errorf("wcap: capture had %d IO errors, last: %s", st.IOErrors, st.LastErr)
	}
	return nil
}

// run is the background writer: it owns the segment files and does
// all encoding and IO, so the capturing goroutines never wait on the
// disk. On stop it drains whatever Capture already accepted — those
// records were counted, so they must land.
func (w *Writer) run() {
	defer close(w.done)
	for {
		select {
		case rec := <-w.ch:
			w.write(rec)
		case <-w.stop:
			for {
				select {
				case rec := <-w.ch:
					w.write(rec)
				default:
					if err := w.f.Sync(); err != nil {
						w.fail(err)
					}
					if err := w.f.Close(); err != nil {
						w.fail(err)
					}
					return
				}
			}
		}
	}
}

// write frames and appends one record, rotating first when the append
// would push the segment past the rotation threshold. IO failures are
// counted and remembered, never fatal: capture is observability, and
// a broken disk must not take the server down with it.
func (w *Writer) write(rec Record) {
	payload, err := EncodeRecord(rec)
	if err != nil {
		w.fail(err)
		return
	}
	frame := make([]byte, frameHdr+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHdr:], payload)
	if w.off > 0 && w.off+int64(len(frame)) > w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			w.fail(err)
			return
		}
	}
	n, err := w.f.Write(frame)
	w.off += int64(n)
	w.bytes.Add(uint64(n))
	if err != nil {
		// A partial frame may be on disk; truncate back to the last
		// record boundary so later appends cannot bury garbage
		// mid-segment (readers would fail loudly on it otherwise).
		if w.off > int64(n) || n > 0 {
			boundary := w.off - int64(n)
			if terr := w.f.Truncate(boundary); terr == nil {
				if _, serr := w.f.Seek(boundary, 0); serr == nil {
					w.off = boundary
				}
			}
		}
		w.fail(err)
	}
}

// rotate syncs and closes the current segment and starts the next.
func (w *Writer) rotate() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(w.dir, SegmentName(w.seq+1)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f, w.off = f, 0
	w.seq++
	return nil
}

// fail records a background-writer failure.
func (w *Writer) fail(err error) {
	w.ioErrs.Add(1)
	msg := err.Error()
	w.lastErr.Store(&msg)
}
