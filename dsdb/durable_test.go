package dsdb_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/dsdb"
	"repro/internal/db/storage"
	"repro/internal/db/wal"
)

const durableSF = 0.0005

// renderAll runs every TPC-D query and renders all result rows to
// strings — the byte-identity fingerprint the crash-recovery invariant
// is stated in.
func renderAll(t *testing.T, db *dsdb.DB) string {
	t.Helper()
	var b strings.Builder
	ctx := context.Background()
	for _, n := range dsdb.TPCDQueryNumbers() {
		q, _ := dsdb.TPCDQuery(n)
		res, err := db.Exec(ctx, q)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		fmt.Fprintf(&b, "Q%d %v\n", n, res.Columns)
		for _, row := range res.Rows {
			for _, v := range row {
				b.WriteString(v.String())
				b.WriteByte('|')
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// copyTree copies a data directory (regular files only).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.OpenFile(target, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mutation is one logged operation applied both to the durable DB
// (journaled) and, record by record, to the baseline.
type mutation func(db *dsdb.DB) error

// durableMutations is a mixed batch of DDL and inserts that move the
// TPC-D query results: rows in lineitem and orders shift the
// aggregates of nearly every query in the set.
func durableMutations() []mutation {
	date := func(s string) dsdb.Value {
		d, err := dsdb.ParseDate(s)
		if err != nil {
			panic(err)
		}
		return dsdb.NewDate(d)
	}
	var ms []mutation
	for i := 0; i < 4; i++ {
		i := i
		ms = append(ms, func(db *dsdb.DB) error {
			return db.Insert("lineitem",
				dsdb.NewInt(int64(900000+i)), dsdb.NewInt(1), dsdb.NewInt(1),
				dsdb.NewInt(1), dsdb.NewFloat(30+float64(i)),
				dsdb.NewFloat(50000+1000*float64(i)), dsdb.NewFloat(0.05),
				dsdb.NewFloat(0.02), dsdb.NewStr("R"), dsdb.NewStr("F"),
				date("1994-03-15"), date("1994-04-01"), date("1994-04-10"),
				dsdb.NewStr("MAIL"), dsdb.NewStr("NONE"))
		})
	}
	ms = append(ms, func(db *dsdb.DB) error {
		return db.Insert("orders",
			dsdb.NewInt(900000), dsdb.NewInt(1), dsdb.NewStr("F"),
			dsdb.NewFloat(123456.78), date("1994-03-01"),
			dsdb.NewStr("1-URGENT"), dsdb.NewInt(0))
	})
	ms = append(ms, func(db *dsdb.DB) error {
		return db.CreateTable("audit",
			dsdb.Col("id", dsdb.Int), dsdb.Col("note", dsdb.Str))
	})
	ms = append(ms, func(db *dsdb.DB) error {
		return db.Insert("audit", dsdb.NewInt(1), dsdb.NewStr("first"))
	})
	ms = append(ms, func(db *dsdb.DB) error {
		return db.CreateIndex("audit", "id", dsdb.BTree, true)
	})
	ms = append(ms, func(db *dsdb.DB) error {
		return db.Insert("audit", dsdb.NewInt(2), dsdb.NewStr("second"))
	})
	ms = append(ms, func(db *dsdb.DB) error {
		return db.Insert("customer",
			dsdb.NewInt(900000), dsdb.NewStr("Customer#000900000"),
			dsdb.NewInt(3), dsdb.NewStr("BUILDING"), dsdb.NewFloat(999.99))
	})
	return ms
}

// applyWalRecord applies one logged record to the in-memory baseline
// through the public API — "a fresh DB that applied the same committed
// prefix", literally.
func applyWalRecord(t *testing.T, db *dsdb.DB, rec wal.Record) {
	t.Helper()
	switch r := rec.(type) {
	case wal.Insert:
		vals, err := storage.DecodeTuple(r.Tuple, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(r.Table, vals...); err != nil {
			t.Fatal(err)
		}
	case wal.CreateTable:
		cols := make([]dsdb.Column, len(r.Cols))
		for i, c := range r.Cols {
			cols[i] = dsdb.Col(c.Name, dsdb.Type(c.Type))
		}
		if err := db.CreateTable(r.Name, cols...); err != nil {
			t.Fatal(err)
		}
	case wal.CreateIndex:
		if err := db.CreateIndex(r.Table, r.Column, dsdb.IndexKind(r.Kind), r.Unique); err != nil {
			t.Fatal(err)
		}
	case wal.PageWrite:
		// Physical record: the in-memory baseline reconstructs the same
		// page bytes from the logical records alone.
	default:
		t.Fatalf("unexpected wal record %T", rec)
	}
}

// TestCrashRecoveryAtEveryRecordBoundary is the headline durability
// invariant: simulate a crash at *every* WAL record boundary and check
// the reopened database answers all 12 TPC-D queries byte-identically
// to a fresh database that applied the same committed prefix.
func TestCrashRecoveryAtEveryRecordBoundary(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	db := openTPCD(t, durableSF, dsdb.WithDataDir(dir))
	if db.WarmStarted() {
		t.Fatal("fresh dir reported warm start")
	}
	for i, m := range durableMutations() {
		if err := m(db); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	// Hard stop: no checkpoint, no close. Everything since the
	// TPC-D checkpoint lives only in the log.
	db.Abandon()

	walDir := filepath.Join(dir, "wal")
	segs, err := wal.Segments(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected one live segment at this scale, got %d", len(segs))
	}
	var recs []wal.Record
	var ends []int64
	if _, _, err := wal.ScanSegment(segs[0].Path, func(rec wal.Record, end int64) error {
		recs = append(recs, rec)
		ends = append(ends, end)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) < len(durableMutations()) {
		t.Fatalf("log has %d records for %d mutations", len(recs), len(durableMutations()))
	}

	// The incremental baseline: same TPC-D build, records applied one
	// by one between comparisons.
	baseline := openTPCD(t, durableSF)
	defer baseline.Close()

	// Boundary 0 = crash before any post-checkpoint record.
	boundaries := append([]int64{0}, ends...)
	for k, cut := range boundaries {
		crash := filepath.Join(root, fmt.Sprintf("crash-%02d", k))
		copyTree(t, dir, crash)
		seg := filepath.Join(crash, "wal", filepath.Base(segs[0].Path))
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}
		if k > 0 {
			applyWalRecord(t, baseline, recs[k-1])
		}
		re, err := dsdb.Open(dsdb.WithDataDir(crash))
		if err != nil {
			t.Fatalf("boundary %d: reopen: %v", k, err)
		}
		if !re.WarmStarted() {
			t.Fatalf("boundary %d: recovery not detected", k)
		}
		if got, want := renderAll(t, re), renderAll(t, baseline); got != want {
			t.Fatalf("boundary %d of %d: recovered results diverge from committed-prefix baseline", k, len(boundaries)-1)
		}
		for _, table := range []string{"lineitem", "orders", "customer"} {
			if got, want := re.NumRows(table), baseline.NumRows(table); got != want {
				t.Fatalf("boundary %d: %s has %d rows, want %d", k, table, got, want)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatalf("boundary %d: close: %v", k, err)
		}
	}
}

// TestTornFinalRecordRecovers pins the torn-tail path at the dsdb
// level: a crash mid-append discards exactly the torn record.
func TestTornFinalRecordRecovers(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	db := openTPCD(t, durableSF, dsdb.WithDataDir(dir))
	for i, m := range durableMutations() {
		if err := m(db); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	db.Abandon()

	walDir := filepath.Join(dir, "wal")
	segs, _ := wal.Segments(walDir)
	var recs []wal.Record
	var ends []int64
	if _, _, err := wal.ScanSegment(segs[0].Path, func(rec wal.Record, end int64) error {
		recs = append(recs, rec)
		ends = append(ends, end)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the final record: a torn append.
	last := len(ends) - 1
	cut := ends[last-1] + (ends[last]-ends[last-1])/2
	if err := os.Truncate(segs[0].Path, cut); err != nil {
		t.Fatal(err)
	}

	re, err := dsdb.Open(dsdb.WithDataDir(dir))
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer re.Close()
	baseline := openTPCD(t, durableSF)
	defer baseline.Close()
	for _, rec := range recs[:last] {
		applyWalRecord(t, baseline, rec)
	}
	if got, want := renderAll(t, re), renderAll(t, baseline); got != want {
		t.Fatal("torn-tail recovery diverges from committed-prefix baseline")
	}
}

// TestMidLogCorruptionFailsOpen pins that flipping a byte inside an
// early record makes Open fail loudly instead of silently dropping
// committed work.
func TestMidLogCorruptionFailsOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openTPCD(t, durableSF, dsdb.WithDataDir(dir))
	for i, m := range durableMutations() {
		if err := m(db); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	db.Abandon()

	segs, _ := wal.Segments(filepath.Join(dir, "wal"))
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xFF // inside the first record's payload
	if err := os.WriteFile(segs[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dsdb.Open(dsdb.WithDataDir(dir)); err == nil {
		t.Fatal("open succeeded over a corrupt log")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption error does not say so: %v", err)
	}
}

// TestEmptyAndFreshDataDirs covers the degenerate recovery inputs.
func TestEmptyAndFreshDataDirs(t *testing.T) {
	// A directory that does not exist yet is created.
	dir := filepath.Join(t.TempDir(), "sub", "db")
	db, err := dsdb.Open(dsdb.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if db.WarmStarted() {
		t.Fatal("fresh dir warm-started")
	}
	if err := db.CreateTable("t", dsdb.Col("a", dsdb.Int)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", dsdb.NewInt(7)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// An existing empty directory behaves identically.
	empty := t.TempDir()
	db2, err := dsdb.Open(dsdb.WithDataDir(empty))
	if err != nil {
		t.Fatal(err)
	}
	if db2.WarmStarted() {
		t.Fatal("empty dir warm-started")
	}
	db2.Close()
	// And the first database reopens with its row.
	re, err := dsdb.Open(dsdb.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.WarmStarted() {
		t.Fatal("reopen did not warm-start")
	}
	var got int64
	if err := re.QueryRow(context.Background(), "select count(*) from t").Scan(&got); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

// TestWarmStartMatchesColdLoad is the warm-start acceptance: build a
// TPC-D data dir, close (checkpoint), reopen with the same WithTPCD
// options — the preload must be skipped and every query answer must be
// byte-identical to the cold database's.
func TestWarmStartMatchesColdLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	cold := openTPCD(t, durableSF, dsdb.WithDataDir(dir))
	want := renderAll(t, cold)
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	warm := openTPCD(t, durableSF, dsdb.WithDataDir(dir))
	defer warm.Close()
	if !warm.WarmStarted() {
		t.Fatal("second open did not warm-start")
	}
	if got := renderAll(t, warm); got != want {
		t.Fatal("warm-started results diverge from cold load")
	}
	// Warm-started databases keep full write service.
	if err := warm.Insert("region", dsdb.NewInt(99), dsdb.NewStr("ATLANTIS")); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := warm.QueryRow(context.Background(), "select count(*) from region").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("region count = %d after insert, want 6", n)
	}
}

// TestRecoveryWithPageSpills runs the post-checkpoint write burst
// through a tiny buffer pool, so dirty pages are evicted mid-run and
// journaled as PageWrite images — then crashes and recovers, proving
// physical and logical records replay consistently interleaved.
func TestRecoveryWithPageSpills(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openTPCD(t, durableSF, dsdb.WithDataDir(dir), dsdb.WithBufferFrames(16))
	baseline := openTPCD(t, durableSF)
	defer baseline.Close()
	insert := func(target *dsdb.DB, i int) error {
		return target.Insert("partsupp",
			dsdb.NewInt(int64(1+i%90)), dsdb.NewInt(int64(1+i%5)),
			dsdb.NewInt(int64(i)), dsdb.NewFloat(float64(i)/7))
	}
	q6, _ := dsdb.TPCDQuery(6)
	for i := 0; i < 500; i++ {
		if err := insert(db, i); err != nil {
			t.Fatal(err)
		}
		if err := insert(baseline, i); err != nil {
			t.Fatal(err)
		}
		// Interleave scans and an explicit flush: queries steal frames
		// from the 16-slot pool (evicting dirty partsupp pages, which
		// spill to the log), and Flush journals every dirty frame — the
		// two real sources of PageWrite records.
		if i%100 == 50 {
			if _, err := db.Exec(context.Background(), q6); err != nil {
				t.Fatal(err)
			}
		}
		if i == 250 {
			if err := db.Engine().Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.Abandon()

	// The log must actually contain page images, or this test proves
	// nothing about the physical-replay path.
	spills := 0
	if _, err := wal.Replay(filepath.Join(dir, "wal"), 0, func(rec wal.Record) error {
		if _, ok := rec.(wal.PageWrite); ok {
			spills++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if spills == 0 {
		t.Fatal("no PageWrite records spilled despite the tiny buffer pool")
	}

	re, err := dsdb.Open(dsdb.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := renderAll(t, re), renderAll(t, baseline); got != want {
		t.Fatal("recovery with interleaved page spills diverges from baseline")
	}
	var n int64
	if err := re.QueryRow(context.Background(), "select count(*) from partsupp").Scan(&n); err != nil {
		t.Fatal(err)
	}
	var want int64
	if err := baseline.QueryRow(context.Background(), "select count(*) from partsupp").Scan(&want); err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("partsupp count %d, want %d", n, want)
	}
}

// TestWarmStartRejectsMismatchedTPCDOptions pins the build stamp: a
// data directory built at one scale factor refuses to warm-start under
// options describing a different database.
func TestWarmStartRejectsMismatchedTPCDOptions(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := openTPCD(t, durableSF, dsdb.WithDataDir(dir))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dsdb.Open(dsdb.WithTPCD(0.001), dsdb.WithDataDir(dir)); err == nil {
		t.Fatal("mismatched scale factor warm-started silently")
	} else if !strings.Contains(err.Error(), "built with") {
		t.Fatalf("mismatch error does not explain itself: %v", err)
	}
	if _, err := dsdb.Open(dsdb.WithTPCD(durableSF), dsdb.WithIndexKind(dsdb.Hash),
		dsdb.WithDataDir(dir)); err == nil {
		t.Fatal("mismatched index kind warm-started silently")
	}
	// Matching options (and plain opens without WithTPCD) still work.
	re := openTPCD(t, durableSF, dsdb.WithDataDir(dir))
	if !re.WarmStarted() {
		t.Fatal("matching options did not warm-start")
	}
	re.Close()
	plain, err := dsdb.Open(dsdb.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if !plain.WarmStarted() {
		t.Fatal("plain open did not warm-start")
	}
}
