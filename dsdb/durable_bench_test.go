package dsdb_test

import (
	"context"
	"path/filepath"
	"testing"

	"repro/dsdb"
)

const benchSF = 0.002

// BenchmarkOpenColdLoad is the baseline a data directory competes
// with: generating and loading TPC-D from scratch on every open.
func BenchmarkOpenColdLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db, err := dsdb.Open(dsdb.WithTPCD(benchSF))
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenWarm opens a pre-built data directory: manifest parse,
// catalog restore and (empty) log replay — no data generation, no
// loading, no index builds. The win over BenchmarkOpenColdLoad is the
// warm-start headline.
func BenchmarkOpenWarm(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "db")
	db, err := dsdb.Open(dsdb.WithTPCD(benchSF), dsdb.WithDataDir(dir))
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := dsdb.Open(dsdb.WithDataDir(dir))
		if err != nil {
			b.Fatal(err)
		}
		if !warm.WarmStarted() {
			b.Fatal("warm open did not recover")
		}
		b.StopTimer()
		// Sanity outside the clock: the database actually serves.
		if i == 0 {
			var n int64
			if err := warm.QueryRow(context.Background(), "select count(*) from region").Scan(&n); err != nil || n != 5 {
				b.Fatalf("warm DB broken: n=%d err=%v", n, err)
			}
		}
		warm.Abandon() // skip the close-time checkpoint; open cost is the subject
		b.StartTimer()
	}
}
