package obs

import (
	"bytes"
	"errors"
	"log"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable deterministic clock for span timing.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newFakeTracer(cfg Config) (*Tracer, *fakeClock) {
	t := New(cfg)
	c := &fakeClock{t: time.Unix(1000, 0)}
	t.SetNow(c.now)
	return t, c
}

func TestSpanRecord(t *testing.T) {
	tr, clk := newFakeTracer(Config{})
	sp := tr.Begin("Q9", "select 1")
	if sp.ID() != 1 {
		t.Fatalf("first span id = %d, want 1", sp.ID())
	}
	sp.Add(StagePlan, time.Millisecond)
	sp.Add(StageExec, 10*time.Millisecond) // includes the waits below
	sp.Add(StageIO, 3*time.Millisecond)
	sp.Add(StageWAL, 2*time.Millisecond)
	sp.Add(StageNet, 4*time.Millisecond)
	sp.AddRows(7)
	sp.SetCacheHit()
	clk.advance(20 * time.Millisecond)
	sp.End()
	sp.End() // idempotent

	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.ID != 1 || r.Label != "Q9" || r.SQL != "select 1" || r.Rows != 7 || !r.CacheHit {
		t.Fatalf("bad record identity: %+v", r)
	}
	if r.Total != 20*time.Millisecond {
		t.Fatalf("total = %s, want 20ms", r.Total)
	}
	// Exec is reported net of the IO and WAL waits it contained.
	want := [NumStages]time.Duration{
		StagePlan: time.Millisecond, StageExec: 5 * time.Millisecond,
		StageIO: 3 * time.Millisecond, StageWAL: 2 * time.Millisecond,
		StageNet: 4 * time.Millisecond,
	}
	if r.Stages != want {
		t.Fatalf("stages = %v, want %v", r.Stages, want)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", "y")
	if sp != nil {
		t.Fatal("nil tracer Begin must return nil span")
	}
	sp.Add(StageExec, time.Second)
	sp.AddRows(1)
	sp.SetCacheHit()
	sp.SetErr(errors.New("boom"))
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span id must be 0")
	}
	if tr.Recent() != nil || tr.Slow() != nil {
		t.Fatal("nil tracer rings must be nil")
	}
	tr.SetSlowThreshold(time.Second)
	tr.SetSlowLogger(log.New(&bytes.Buffer{}, "", 0))
	tr.SetNow(nil)
	if s := tr.StageSnapshot(StageExec); s.Count != 0 {
		t.Fatal("nil tracer snapshot must be zero")
	}
}

func TestRingEvictionNewestFirst(t *testing.T) {
	tr, _ := newFakeTracer(Config{RingSize: 3})
	for i := 0; i < 5; i++ {
		tr.Begin("", "q").End()
	}
	recs := tr.Recent()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want ring size 3", len(recs))
	}
	for i, want := range []uint64{5, 4, 3} {
		if recs[i].ID != want {
			t.Fatalf("recs[%d].ID = %d, want %d (newest first)", i, recs[i].ID, want)
		}
	}
}

func TestSlowRingAndLogger(t *testing.T) {
	tr, clk := newFakeTracer(Config{SlowThreshold: 10 * time.Millisecond})
	var buf bytes.Buffer
	tr.SetSlowLogger(log.New(&buf, "", 0))

	fast := tr.Begin("fast", "select 1")
	clk.advance(time.Millisecond)
	fast.End()

	slow := tr.Begin("Q9", "select heavy")
	slow.Add(StageExec, 40*time.Millisecond)
	slow.SetErr(errors.New("late"))
	clk.advance(50 * time.Millisecond)
	slow.End()

	recs := tr.Slow()
	if len(recs) != 1 || recs[0].Label != "Q9" {
		t.Fatalf("slow ring = %+v, want just Q9", recs)
	}
	line := buf.String()
	for _, want := range []string{"qid=2", `label="Q9"`, "total=50ms", "exec=40ms", `err="late"`, `sql="select heavy"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow log line %q missing %q", line, want)
		}
	}
	if len(tr.Recent()) != 2 {
		t.Fatal("slow queries must land in the recent ring too")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(50 * time.Microsecond)  // bucket 0 (le_100us)
	h.Observe(100 * time.Microsecond) // bucket 0 (bounds are inclusive)
	h.Observe(3 * time.Millisecond)   // le_5ms
	h.Observe(time.Minute)            // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Sum != 50*time.Microsecond+100*time.Microsecond+3*time.Millisecond+time.Minute {
		t.Fatalf("sum = %s", s.Sum)
	}
	if s.Counts[0] != 2 || s.Counts[bucketIndex(3*time.Millisecond)] != 1 || s.Counts[NumBuckets-1] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
}

func TestBucketLabels(t *testing.T) {
	if got := BucketLabel(0); got != "le_100us" {
		t.Fatalf("BucketLabel(0) = %q", got)
	}
	if got := BucketLabel(NumBuckets - 1); got != "gt_10s" {
		t.Fatalf("tail label = %q", got)
	}
	if got := BucketSeconds(0); got != "0.0001" {
		t.Fatalf("BucketSeconds(0) = %q", got)
	}
	if got := BucketSeconds(NumBuckets - 1); got != "+Inf" {
		t.Fatalf("tail seconds = %q", got)
	}
	seen := map[string]bool{}
	for i := 0; i < NumBuckets; i++ {
		l := BucketLabel(i)
		if seen[l] {
			t.Fatalf("duplicate bucket label %q", l)
		}
		seen[l] = true
	}
}

func TestSQLTruncation(t *testing.T) {
	tr, _ := newFakeTracer(Config{})
	long := strings.Repeat("x", 10*maxSQL)
	tr.Begin("", long).End()
	if got := len(tr.Recent()[0].SQL); got != maxSQL {
		t.Fatalf("retained SQL length = %d, want %d", got, maxSQL)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{RingSize: 64, SlowThreshold: 1})
	tr.SetSlowLogger(log.New(&syncBuffer{}, "", 0))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Begin("w", "select 1")
				sp.Add(StageExec, time.Microsecond)
				sp.Add(StageIO, time.Nanosecond) // concurrent-stage shape
				sp.AddRows(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.TotalSnapshot().Count; got != 8*200 {
		t.Fatalf("observed %d spans, want %d", got, 8*200)
	}
	if got := len(tr.Recent()); got != 64 {
		t.Fatalf("ring holds %d, want 64", got)
	}
}

// syncBuffer is a goroutine-safe io.Writer for concurrent log tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
