// Package obs is the query-observability subsystem: every query gets
// a monotonically-assigned id and a Span that accumulates per-stage
// wall time — parse/plan, result-cache lookup, executor, buffer-pool
// IO wait, WAL append, network flush — as the execution threads
// through the kernel. Ended spans become Records in a ring of recent
// queries, feed per-stage aggregate histograms, and, past a
// configurable threshold, land in a slow-query ring and structured
// slow-query log. The server surfaces all of it: SHOW queries / SHOW
// slow, Server.Stats, and the dsdbd -metrics-addr Prometheus
// endpoint.
//
// The package imports only the standard library, so every layer from
// the engine kernel up to the wire server can depend on it without
// cycles. Spans are pooled and all stage counters are atomic: a
// parallel scan worker adds IO wait concurrently with the session
// goroutine timing executor pulls. Every Span method is nil-safe —
// the disabled path (nil *Tracer, hence nil *Span) costs one nil
// check per call site.
package obs

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage enumerates the span's per-stage timers, in reporting order.
type Stage int

const (
	// StagePlan is parse + plan/compile time.
	StagePlan Stage = iota
	// StageCache is result-cache lookup time (hits and misses).
	StageCache
	// StageExec is executor time: plan Open plus every Next pull. At
	// End the contained IO and WAL waits are subtracted, so the
	// reported stages are disjoint and sum toward the total.
	StageExec
	// StageIO is buffer-pool IO wait: evict-flushes, storage reads,
	// and waits on another session's in-flight read of the same page.
	StageIO
	// StageWAL is write-ahead-log append/fsync time (inserts).
	StageWAL
	// StageNet is network time: encoding and flushing result frames to
	// the client, including backpressure from a slow reader.
	StageNet
	// NumStages bounds the per-stage arrays.
	NumStages
)

var stageNames = [NumStages]string{"plan", "cache", "exec", "io", "wal", "net"}

// String returns the stage's stable snake_case name ("plan", "cache",
// "exec", "io", "wal", "net") — the identifier used in stats pairs,
// metric labels and SHOW column names.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Buckets are the log-spaced (1-2-5 per decade) latency histogram
// bounds shared by the tracer's stage histograms and the server's
// query-latency histogram, 100µs through 10s; one unbounded overflow
// bucket follows. Exported so clients can derive bucket names instead
// of hardcoding them.
var Buckets = [...]time.Duration{
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// NumBuckets is the histogram's bucket count: every bound in Buckets
// plus the unbounded overflow bucket.
const NumBuckets = len(Buckets) + 1

// BucketLabel renders bucket i's stable identifier: "le_100us" ...
// "le_10s" for bounded buckets, "gt_10s" for the overflow bucket.
func BucketLabel(i int) string {
	if i < len(Buckets) {
		return "le_" + fmtBound(Buckets[i])
	}
	return "gt_" + fmtBound(Buckets[len(Buckets)-1])
}

// BucketSeconds renders bucket i's upper bound in seconds for
// Prometheus "le" labels ("+Inf" for the overflow bucket).
func BucketSeconds(i int) string {
	if i < len(Buckets) {
		return strconv.FormatFloat(Buckets[i].Seconds(), 'g', -1, 64)
	}
	return "+Inf"
}

// fmtBound renders a bucket bound compactly; every bound in Buckets
// is a whole number of exactly one unit (100us, 2ms, 10s).
func fmtBound(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dus", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
}

// bucketIndex maps a duration onto its histogram bucket.
func bucketIndex(d time.Duration) int {
	for i, b := range Buckets {
		if d <= b {
			return i
		}
	}
	return len(Buckets)
}

// Histogram is a fixed-bound latency histogram over Buckets. All
// fields are atomic: Observe is lock-free and safe from any
// goroutine, and Snapshot never stops the world. The observation
// count is not stored — it is the sum of the bucket counts, paid for
// at Snapshot time instead of with a third atomic on the hot path.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram. Counts[i] is
// the number of observations in bucket i alone (not cumulative);
// bucket bounds are Buckets, with the final entry unbounded.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Sum    time.Duration
	Count  uint64
}

// maxSQL bounds the query text retained per span, so the ring's
// memory stays proportional to its length, not to query size.
const maxSQL = 200

// Span is one query's in-flight observation: per-stage atomic
// nanosecond counters plus identity. Obtain spans from Tracer.Begin
// and finish them with End; all methods are nil-safe, so untraced
// paths pass nil spans around freely.
type Span struct {
	t     *Tracer
	id    uint64
	label string
	sql   string
	start time.Time

	stages [NumStages]atomic.Int64
	rows   atomic.Int64
	hit    atomic.Bool
	ended  atomic.Bool

	// errMsg is written by the execution's owning goroutine before End
	// and read only by End; no synchronization needed beyond that.
	errMsg string
	// topOp names the dominant (largest self-time) operator when the
	// query ran under EXPLAIN ANALYZE instrumentation; same ownership
	// discipline as errMsg.
	topOp string
}

// ID returns the span's query id (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// StartTime returns the clock reading Begin took. Callers timing the
// first stage of a query use it as that stage's start so the hot path
// pays one clock read per stage boundary, not two per stage.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Add accumulates d into the given stage. Safe for concurrent use
// (parallel scan workers add IO wait while the session adds exec
// time).
func (s *Span) Add(st Stage, d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.stages[st].Add(int64(d))
}

// AddRows accumulates produced/streamed rows.
func (s *Span) AddRows(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.rows.Add(n)
}

// SetCacheHit marks the query as answered from the result cache.
func (s *Span) SetCacheHit() {
	if s == nil {
		return
	}
	s.hit.Store(true)
}

// SetErr records the error that ended the query. Call before End,
// from the execution's goroutine.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// SetTopOp records the dominant operator of an EXPLAIN ANALYZE
// execution. Call before End, from the execution's goroutine.
func (s *Span) SetTopOp(op string) {
	if s == nil || op == "" {
		return
	}
	s.topOp = op
}

// StageNanos snapshots the span's per-stage nanosecond counters with
// the same disjoint-exec clamp End applies when publishing, so a
// reader that needs the stage breakdown before the span ends (the
// workload capture records it alongside the result's terminal frame)
// sees the exact values the span's Record will carry. Zero array on a
// nil span. Safe to call from the execution's goroutine any time
// before End.
func (s *Span) StageNanos() [NumStages]int64 {
	var out [NumStages]int64
	if s == nil {
		return out
	}
	for i := range out {
		out[i] = s.stages[i].Load()
	}
	clampExec(&out)
	return out
}

// clampExec subtracts the contained IO and WAL waits out of the exec
// stage: exec is timed around whole executor pulls, so it contains the
// waits those pulls blocked on, and reporting requires disjoint stages
// that sum toward the total.
func clampExec[T ~int64](st *[NumStages]T) {
	if over := st[StageIO] + st[StageWAL]; st[StageExec] > over {
		st[StageExec] -= over
	} else if over > 0 {
		st[StageExec] = 0
	}
}

// End finishes the span: the total is measured, the contained IO/WAL
// waits are subtracted out of the exec stage (stages become disjoint),
// the record is published to the tracer's rings and histograms, slow
// queries are logged, and the span returns to the pool. Idempotent;
// the span must not be touched after the first End.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.t.finish(s)
}

// Record is one finished query as published by Span.End: identity,
// outcome and the disjoint per-stage durations (indexed by Stage).
type Record struct {
	ID       uint64
	Label    string
	SQL      string
	Start    time.Time
	Total    time.Duration
	Stages   [NumStages]time.Duration
	Rows     int64
	CacheHit bool
	Err      string
	// TopOp is the dominant operator (largest self time) when the
	// query ran under EXPLAIN ANALYZE instrumentation; "" otherwise.
	TopOp string
}

// LogLine renders the record as one structured key=value line — the
// slow-query log format.
func (r Record) LogLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qid=%d label=%q total=%s rows=%d hit=%t", r.ID, r.Label, r.Total, r.Rows, r.CacheHit)
	for i, d := range r.Stages {
		fmt.Fprintf(&b, " %s=%s", Stage(i), d)
	}
	if r.Err != "" {
		fmt.Fprintf(&b, " err=%q", r.Err)
	}
	if r.TopOp != "" {
		fmt.Fprintf(&b, " top_op=%q", r.TopOp)
	}
	fmt.Fprintf(&b, " sql=%q", r.SQL)
	return b.String()
}

// Config configures New. The zero value is a usable default.
type Config struct {
	// Disabled is consumed by dsdb.WithObservability: a disabled
	// database carries a nil *Tracer and pays one nil check per query.
	// New itself ignores it.
	Disabled bool
	// RingSize bounds the recent-query ring (default 256).
	RingSize int
	// SlowRingSize bounds the slow-query ring (default 64).
	SlowRingSize int
	// SlowThreshold classifies queries at least this slow as slow
	// (0 = slow classification off; settable later).
	SlowThreshold time.Duration
}

// Tracer issues query ids and spans, and retains what ended spans
// report: a ring of recent Records, a ring of slow Records, per-stage
// aggregate histograms and an optional slow-query logger. All methods
// are safe for concurrent use, and safe on a nil receiver (the
// disabled tracer).
type Tracer struct {
	nextID atomic.Uint64
	slowNS atomic.Int64
	logger atomic.Pointer[log.Logger]
	pool   sync.Pool

	// now/since are the clock; replaced by SetNow in deterministic
	// tests. Set before traffic starts, never concurrently with it.
	// since exists so span totals come from one monotonic-clock read
	// (time.Since) rather than a full wall+mono read per End.
	now   func() time.Time
	since func(time.Time) time.Duration

	total  Histogram
	stages [NumStages]Histogram

	// mu guards the two record rings below — and nothing else: End
	// holds it only to copy one Record in, and never calls user code
	// (the slow-query logger runs after the unlock).
	mu      sync.Mutex
	ring    []Record
	pos, n  int
	slow    []Record
	spos, m int
}

// New builds a tracer; zero config fields take defaults.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.SlowRingSize <= 0 {
		cfg.SlowRingSize = 64
	}
	t := &Tracer{
		now:   time.Now,
		since: time.Since,
		ring:  make([]Record, cfg.RingSize),
		slow:  make([]Record, cfg.SlowRingSize),
	}
	t.slowNS.Store(int64(cfg.SlowThreshold))
	t.pool.New = func() any { return new(Span) }
	return t
}

// Begin starts a span for one query, assigning the next query id.
// label is the client-supplied query label (may be empty); sql is the
// query text (truncated to a bounded prefix). Returns nil on a nil
// tracer.
func (t *Tracer) Begin(label, sql string) *Span {
	if t == nil {
		return nil
	}
	s := t.pool.Get().(*Span)
	s.t = t
	s.id = t.nextID.Add(1)
	s.label = label
	if len(sql) > maxSQL {
		sql = sql[:maxSQL]
	}
	s.sql = sql
	s.start = t.now()
	s.ended.Store(false)
	return s
}

// finish publishes an ended span and recycles it.
func (t *Tracer) finish(s *Span) {
	rec := Record{
		ID:       s.id,
		Label:    s.label,
		SQL:      s.sql,
		Start:    s.start,
		Total:    t.since(s.start),
		Rows:     s.rows.Load(),
		CacheHit: s.hit.Load(),
		Err:      s.errMsg,
		TopOp:    s.topOp,
	}
	for i := range rec.Stages {
		rec.Stages[i] = time.Duration(s.stages[i].Load())
	}
	clampExec(&rec.Stages)
	t.total.Observe(rec.Total)
	for i, d := range rec.Stages {
		if d > 0 {
			t.stages[i].Observe(d)
		}
	}
	thr := time.Duration(t.slowNS.Load())
	isSlow := thr > 0 && rec.Total >= thr
	t.mu.Lock()
	t.ring[t.pos] = rec
	t.pos = (t.pos + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	if isSlow {
		t.slow[t.spos] = rec
		t.spos = (t.spos + 1) % len(t.slow)
		if t.m < len(t.slow) {
			t.m++
		}
	}
	t.mu.Unlock()
	if isSlow {
		if lg := t.logger.Load(); lg != nil {
			lg.Print(rec.LogLine())
		}
	}
	// Field-wise reset (assigning a fresh Span would copy its atomics).
	// Atomic stores are skipped for counters that are already zero —
	// on the common cached-hit span most stages never ran, and the
	// loads are plain reads while each store is a full barrier.
	s.t = nil
	s.id = 0
	s.label = ""
	s.sql = ""
	s.start = time.Time{}
	for i := range s.stages {
		if s.stages[i].Load() != 0 {
			s.stages[i].Store(0)
		}
	}
	if s.rows.Load() != 0 {
		s.rows.Store(0)
	}
	if s.hit.Load() {
		s.hit.Store(false)
	}
	s.errMsg = ""
	s.topOp = ""
	// ended stays true until Begin re-arms it, so a late duplicate End
	// on a recycled span stays a no-op instead of corrupting the pool.
	t.pool.Put(s)
}

// snapshot copies a ring newest-first.
func snapshot(ring []Record, pos, n int) []Record {
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ring[((pos-1-i)+2*len(ring))%len(ring)])
	}
	return out
}

// Recent returns the ring of recently finished queries, newest first.
// Nil on a nil tracer.
func (t *Tracer) Recent() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshot(t.ring, t.pos, t.n)
}

// Slow returns the ring of slow queries, newest first. Nil on a nil
// tracer (or when no threshold has ever been set).
func (t *Tracer) Slow() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshot(t.slow, t.spos, t.m)
}

// SetSlowThreshold sets the slow-query classification bound (0
// disables it). Applies to queries ending after the call.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.slowNS.Store(int64(d))
}

// SlowThreshold returns the current slow-query bound.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNS.Load())
}

// SetSlowLogger installs (or with nil removes) the structured
// slow-query logger. The logger is invoked outside the tracer's lock,
// once per slow query, with Record.LogLine.
func (t *Tracer) SetSlowLogger(lg *log.Logger) {
	if t == nil {
		return
	}
	t.logger.Store(lg)
}

// StageSnapshot returns the aggregate histogram of one stage across
// every finished query (queries that spent no time in the stage are
// not counted). Zero on a nil tracer.
func (t *Tracer) StageSnapshot(st Stage) HistSnapshot {
	if t == nil {
		return HistSnapshot{}
	}
	return t.stages[st].Snapshot()
}

// TotalSnapshot returns the aggregate histogram of span totals.
func (t *Tracer) TotalSnapshot() HistSnapshot {
	if t == nil {
		return HistSnapshot{}
	}
	return t.total.Snapshot()
}

// SetNow replaces the tracer's clock (nil restores time.Now) — the
// deterministic-timestamp hook for golden tests. Call before any
// spans begin, never concurrently with traffic.
func (t *Tracer) SetNow(now func() time.Time) {
	if t == nil {
		return
	}
	if now == nil {
		t.now, t.since = time.Now, time.Since
		return
	}
	t.now = now
	t.since = func(t0 time.Time) time.Duration { return now().Sub(t0) }
}
