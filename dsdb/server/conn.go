package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/dsdb"
	"repro/dsdb/obs"
	"repro/dsdb/wcap"
	"repro/dsdb/wire"
)

// conn is one served connection: one session over the shared DB.
type conn struct {
	srv   *Server
	id    int
	nc    net.Conn
	w     *bufio.Writer
	hooks SessionHooks

	// frames is fed by readLoop; closed when the socket dies. Its
	// buffer is what lets a Cancel frame arrive while the handler is
	// busy streaming rows. done tells readLoop the handler is gone, so
	// it never blocks forever sending to a channel nobody reads.
	// readErr and idleKilled are written by readLoop before it closes
	// frames and read by the handler only after the close, so the
	// channel close is the happens-before edge that makes the plain
	// fields safe.
	frames     chan wire.Frame
	done       chan struct{}
	readErr    error
	idleKilled bool

	// quit is set by streamRows when a Quit frame overtakes the result
	// stream: the stream is cancelled in place and the session ends
	// right after the handler returns (handler goroutine only).
	quit bool

	// qmu guards the query-cancellation state below. qseen counts
	// Query/QueryStmt frames as readLoop decodes them; qcur counts
	// them as the handler starts executing them, and qdone as it
	// finishes them (qseen > qdone is what tells readLoop's idle
	// timeout that a silent client is mid-query, not idle). A Cancel
	// frame aims at query #qseen: if that query is running
	// (qcur == qseen) its context is cancelled on the spot; if the
	// handler has not reached it yet, pendingCancel arms so queryCtx
	// starts it pre-cancelled. Attributing cancels by sequence number
	// is what keeps a stray Cancel — one that raced with the query's
	// own completion — from ever cancelling the next query.
	qmu           sync.Mutex
	qcancel       context.CancelFunc
	qseen         uint64
	qcur          uint64
	qdone         uint64
	pendingCancel uint64

	// stats is this connection's counter block (stats.go); surfaced by
	// SHOW CONNS.
	stats connStats

	stmts      map[uint32]*dsdb.Stmt
	stmtCols   map[uint32][]string
	stmtSQL    map[uint32]string
	nextStmtID uint32
}

// capture records one finished query to the server's workload capture
// log. With capture disabled (the default) this is a single nil check.
// bytes is the result-stream frame bytes; class classifies the
// outcome. Must run before sp.End() — the span's stage counters are
// read live — which the call sites guarantee by capturing inside the
// stream function bodies, before their deferred End fires.
func (c *conn) capture(label, sql string, start time.Time, sp *obs.Span, rows, bytes uint64, hit bool, class wcap.ErrClass) {
	w := c.srv.cfg.capture
	if w == nil {
		return
	}
	rec := wcap.Record{
		Offset:   start.Sub(w.Start()),
		Session:  uint32(c.id),
		QueryID:  sp.ID(),
		Label:    label,
		SQL:      sql,
		Rows:     rows,
		Bytes:    bytes,
		Latency:  time.Since(start),
		CacheHit: hit,
		Err:      class,
	}
	if sp != nil {
		st := sp.StageNanos()
		rec.Stages = st[:]
	}
	w.Capture(rec)
}

// captureClass maps a query failure onto its capture error class.
func captureClass(err error) wcap.ErrClass {
	if err == nil {
		return wcap.OK
	}
	if queryErrCode(err) == wire.CodeCancelled {
		return wcap.ErrCancelled
	}
	return wcap.ErrQuery
}

// readLoop decodes frames off the socket into c.frames until the
// connection dies or the handler exits. Cancel frames additionally
// fire (or arm, via pendingCancel) the target query's context right
// here, before enqueueing: the handler may be blocked deep inside
// rows.Next() — a single-row aggregate does all its work there —
// where it cannot poll the frame channel, but the executor's
// Interrupt hook reacts to the context. The Cancel frame is still
// enqueued so the handler consumes it in order and stray cancels
// stay harmless no-ops.
// readLoop also owns the connection's read deadline: the Hello frame
// must arrive within handshakeTimeout, and after that each read waits
// at most the idle timeout (when one is configured). A deadline that
// cannot be set means the socket is already dead, and the session
// fails rather than being admitted with no deadline at all.
func (c *conn) readLoop() {
	first := true
	for {
		var dl time.Time
		if first {
			dl = time.Now().Add(handshakeTimeout)
		} else if d := c.srv.cfg.idleTimeout; d > 0 {
			dl = time.Now().Add(d)
		}
		if err := c.nc.SetReadDeadline(dl); err != nil {
			c.readErr = err
			close(c.frames)
			return
		}
		fr, err := wire.ReadFrame(c.nc)
		if err != nil {
			if !first && isTimeout(err) {
				// Idle deadline fired. A session mid-query is busy, not
				// idle — the client is legitimately silent while its
				// result stream is served — so re-arm and keep reading.
				c.qmu.Lock()
				busy := c.qseen > c.qdone
				c.qmu.Unlock()
				if busy {
					continue
				}
				c.idleKilled = true
			}
			c.readErr = err
			close(c.frames)
			return
		}
		first = false
		switch fr.Kind {
		case wire.KindQuery, wire.KindQueryStmt:
			c.qmu.Lock()
			c.qseen++
			c.qmu.Unlock()
		case wire.KindCancel:
			c.qmu.Lock()
			c.pendingCancel = c.qseen
			if c.qcancel != nil && c.qcur == c.qseen {
				c.qcancel()
			}
			c.qmu.Unlock()
		}
		select {
		case c.frames <- fr:
		case <-c.done:
			return
		}
	}
}

// errSlowClient marks a frame write that timed out: the client
// stopped reading long enough for the kernel buffers to fill. serve()
// tears the connection down without attempting another write.
var errSlowClient = errors.New("server: slow client (write timeout)")

// isTimeout reports whether err is a network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// send writes one frame and flushes it, bounded by the write timeout.
// A client that stops reading makes Flush block once the kernel
// buffers fill; the deadline caps that, and the timeout path cancels
// the in-flight query so its open Rows — and with it the engine's
// shared read latch — is released on the way out. This is the fix for
// the stalled-reader-wedges-writers liveness bug.
func (c *conn) send(k wire.Kind, payload []byte) error {
	if d := c.srv.cfg.writeTimeout; d > 0 {
		if err := c.nc.SetWriteDeadline(time.Now().Add(d)); err != nil {
			return err
		}
	}
	if err := wire.WriteFrame(c.w, k, payload); err != nil {
		return c.writeFailed(err)
	}
	if err := c.w.Flush(); err != nil {
		return c.writeFailed(err)
	}
	n := uint64(len(payload)) + wire.FrameOverhead
	c.srv.counters.bytesWritten.Add(n)
	c.stats.bytesOut.Add(n)
	return nil
}

// writeFailed classifies a frame-write failure. A timeout is the slow
// client case: count the kill and cancel the in-flight query right
// here — streamRows may still be iterating, and the cancel is what
// stops the executor and frees the latch promptly.
func (c *conn) writeFailed(err error) error {
	if isTimeout(err) {
		c.srv.counters.slowClientKills.Add(1)
		c.cancelQuery()
		return fmt.Errorf("%w: %v", errSlowClient, err)
	}
	return err
}

// farewell best-effort writes one terminal error frame under a short
// explicit deadline. Used when the session is already being torn down
// (idle kill), where blocking on a dead peer would be absurd.
func (c *conn) farewell(code, msg string) {
	if c.nc.SetWriteDeadline(time.Now().Add(refuseTimeout)) != nil {
		return
	}
	if wire.WriteFrame(c.w, wire.KindError, wire.EncodeError(wire.ErrorFrame{Code: code, Message: msg})) == nil {
		c.w.Flush()
	}
}

// sendError reports a query-level failure; the connection survives.
func (c *conn) sendError(code, msg string) error {
	return c.send(wire.KindError, wire.EncodeError(wire.ErrorFrame{Code: code, Message: msg}))
}

// serve runs the session: handshake, then one request at a time until
// the client quits, the socket dies, a protocol violation occurs, or
// the server drains.
func (c *conn) serve() {
	defer close(c.done)
	defer c.nc.Close()
	defer func() {
		if c.hooks.OnClose != nil {
			c.hooks.OnClose()
		}
	}()
	if err := c.handshake(); err != nil {
		return
	}
	for {
		var fr wire.Frame
		var ok bool
		select {
		case fr, ok = <-c.frames:
			if !ok {
				if c.idleKilled {
					// readLoop gave up on an idle session; tell the
					// client why (it may well still be reading) and go.
					c.srv.counters.idleKills.Add(1)
					c.farewell(wire.CodeIdle, "session idle timeout")
				}
				return // socket closed, client gone
			}
		case <-c.srv.drainCh:
			return // Shutdown: exit at the frame boundary
		}
		var err error
		switch fr.Kind {
		case wire.KindQuery:
			var q wire.Query
			if q, err = wire.DecodeQuery(fr.Payload); err == nil {
				err = c.handleQuery(q)
			}
		case wire.KindPrepare:
			var p wire.Prepare
			if p, err = wire.DecodePrepare(fr.Payload); err == nil {
				err = c.handlePrepare(p)
			}
		case wire.KindQueryStmt:
			var q wire.QueryStmt
			if q, err = wire.DecodeQueryStmt(fr.Payload); err == nil {
				err = c.handleQueryStmt(q)
			}
		case wire.KindCloseStmt:
			var cl wire.CloseStmt
			if cl, err = wire.DecodeCloseStmt(fr.Payload); err == nil {
				delete(c.stmts, cl.StmtID)
				delete(c.stmtCols, cl.StmtID)
				delete(c.stmtSQL, cl.StmtID)
			}
		case wire.KindStats:
			err = c.send(wire.KindStatsResult, wire.EncodeStats(wire.Stats{Pairs: c.srv.Stats().Pairs()}))
		case wire.KindCancel:
			// Stray cancel: the query it aimed at already finished.
		case wire.KindQuit:
			return
		default:
			err = fmt.Errorf("unexpected %s frame", fr.Kind)
		}
		if err != nil {
			// A slow-client kill already cancelled the query and is past
			// writing to this socket; anything else gets a last protocol
			// error before the connection closes.
			if !errors.Is(err, errSlowClient) {
				c.sendError(wire.CodeProto, err.Error())
			}
			return
		}
		if c.quit {
			return // Quit overtook the last result stream
		}
		// Drain at the query boundary once the server is shutting
		// down (the blocking select above covers the idle case).
		select {
		case <-c.srv.drainCh:
			return
		default:
		}
	}
}

// handshake consumes the Hello frame and acknowledges the session.
func (c *conn) handshake() error {
	var fr wire.Frame
	var ok bool
	select {
	case fr, ok = <-c.frames:
		if !ok {
			return c.readErr
		}
	case <-c.srv.drainCh:
		return errors.New("server: draining")
	}

	if fr.Kind != wire.KindHello {
		c.sendError(wire.CodeProto, fmt.Sprintf("expected Hello, got %s", fr.Kind))
		return errors.New("server: bad handshake")
	}
	h, err := wire.DecodeHello(fr.Payload)
	if err != nil {
		c.sendError(wire.CodeProto, err.Error())
		return err
	}
	if h.Version != wire.ProtocolVersion {
		c.sendError(wire.CodeProto, fmt.Sprintf("protocol version %d unsupported (want %d)", h.Version, wire.ProtocolVersion))
		return errors.New("server: version mismatch")
	}
	// Session established. readLoop owns the read deadline and has
	// already swapped the handshake bound for the idle policy.
	return c.send(wire.KindHelloOK, wire.EncodeHelloOK(wire.HelloOK{
		Version:   wire.ProtocolVersion,
		SessionID: uint32(c.id),
	}))
}

// queryCtx builds the per-query context (server-side deadline, if
// configured) and registers its cancel for readLoop's Cancel handling
// and Shutdown's force path. A Cancel frame that arrived before the
// handler got here (pendingCancel armed for this sequence number)
// starts the query already cancelled.
func (c *conn) queryCtx() (context.Context, context.CancelFunc) {
	ctx := context.Background() //lint:allow ctxflow per-query session root: the wire protocol carries no inbound context
	var cancel context.CancelFunc
	if d := c.srv.cfg.queryTimeout; d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	c.qmu.Lock()
	c.qcur++
	c.qcancel = cancel
	if c.pendingCancel == c.qcur {
		c.pendingCancel = 0
		cancel()
	}
	c.qmu.Unlock()
	return ctx, func() {
		c.qmu.Lock()
		c.qcancel = nil
		c.qdone++
		c.qmu.Unlock()
		cancel()
	}
}

// beginQuery opens the per-query accounting window; endQuery closes
// it and records the latency bucket.
func (c *conn) beginQuery() time.Time {
	c.srv.counters.queries.Add(1)
	c.srv.counters.inFlight.Add(1)
	c.stats.queries.Add(1)
	c.stats.inFlight.Add(1)
	return time.Now()
}

func (c *conn) endQuery(start time.Time) {
	c.srv.counters.inFlight.Add(-1)
	c.stats.inFlight.Add(-1)
	c.srv.counters.observe(time.Since(start))
}

// reportQueryError counts and reports a query-level failure; the
// connection survives (unless the report itself cannot be written).
func (c *conn) reportQueryError(err error) error {
	code := queryErrCode(err)
	if code == wire.CodeCancelled {
		c.srv.counters.cancelledQueries.Add(1)
	} else {
		c.srv.counters.queryErrors.Add(1)
	}
	return c.sendError(code, err.Error())
}

// cancelQuery cancels the in-flight query, if any (Shutdown force
// path).
func (c *conn) cancelQuery() {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if c.qcancel != nil {
		c.qcancel()
	}
}

// handleQuery executes one-shot SQL. Sessions always run with their
// own tracer (possibly nil, i.e. untraced) — never the DB-wide one,
// which is single-threaded and would race across connections.
func (c *conn) handleQuery(q wire.Query) error {
	if target, ok := parseShow(q.SQL); ok {
		return c.handleShow(target, q.Label)
	}
	ctx, done := c.queryCtx()
	defer done()
	start := c.beginQuery()
	defer c.endQuery(start)
	if c.hooks.OnQuery != nil {
		c.hooks.OnQuery(q.Label)
	}
	rows, err := c.srv.db.QueryObserved(ctx, c.hooks.Tracer, q.Label, q.SQL)
	if err != nil {
		c.capture(q.Label, q.SQL, start, nil, 0, 0, false, captureClass(err))
		return c.reportQueryError(err)
	}
	return c.streamRows(rows, q.Label, q.SQL, start)
}

// handleShow serves a SHOW virtual table. It still runs the full
// query protocol — queryCtx consumes this Query frame's sequence
// number (readLoop counted it) and honors a Cancel that raced ahead —
// but the rows come from the server's own introspection, not the
// engine.
func (c *conn) handleShow(target, label string) error {
	ctx, done := c.queryCtx()
	defer done()
	start := c.beginQuery()
	defer c.endQuery(start)
	if c.hooks.OnQuery != nil {
		c.hooks.OnQuery(label)
	}
	// SHOW runs under a span too (it is a served query), but builds its
	// rows before the ring is snapshotted below — an in-flight SHOW has
	// not Ended yet, so it never lists itself.
	sp := c.srv.db.Obs().Begin(label, "show "+target)
	defer sp.End()
	if err := ctx.Err(); err != nil {
		sp.SetErr(err)
		c.capture(label, "show "+target, start, sp, 0, 0, false, captureClass(err))
		return c.reportQueryError(err)
	}
	cols, rows, err := c.srv.showRows(target)
	if err != nil {
		sp.SetErr(err)
		c.srv.counters.queryErrors.Add(1)
		c.capture(label, "show "+target, start, sp, 0, 0, false, wcap.ErrQuery)
		return c.sendError(wire.CodeQuery, err.Error())
	}
	return c.streamStatic(cols, rows, sp, label, "show "+target, start)
}

// queryErrCode classifies a query failure: cancellations (client
// Cancel frame, server deadline) get their own code so clients can
// map them back onto their context's error.
func queryErrCode(err error) string {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return wire.CodeCancelled
	}
	return wire.CodeQuery
}

// handlePrepare compiles a server-side statement.
func (c *conn) handlePrepare(p wire.Prepare) error {
	stmt, err := c.srv.db.PrepareTraced(c.hooks.Tracer, p.SQL)
	if err != nil {
		return c.sendError(wire.CodeQuery, err.Error())
	}
	if c.stmts == nil {
		c.stmts = make(map[uint32]*dsdb.Stmt)
		c.stmtCols = make(map[uint32][]string)
		c.stmtSQL = make(map[uint32]string)
	}
	c.nextStmtID++
	id := c.nextStmtID
	c.stmts[id] = stmt
	c.stmtCols[id] = stmt.Columns()
	c.stmtSQL[id] = p.SQL
	return c.send(wire.KindPrepareOK, wire.EncodePrepareOK(wire.PrepareOK{
		StmtID:  id,
		Columns: c.stmtCols[id],
	}))
}

// handleQueryStmt executes a prepared statement.
func (c *conn) handleQueryStmt(q wire.QueryStmt) error {
	stmt, ok := c.stmts[q.StmtID]
	if !ok {
		// readLoop counted this frame in qseen; consume its sequence
		// number (and any cancel aimed at it) even though nothing runs.
		c.qmu.Lock()
		c.qcur++
		c.qdone++
		if c.pendingCancel == c.qcur {
			c.pendingCancel = 0
		}
		c.qmu.Unlock()
		c.srv.counters.queryErrors.Add(1)
		return c.sendError(wire.CodeQuery, fmt.Sprintf("unknown statement %d", q.StmtID))
	}
	ctx, done := c.queryCtx()
	defer done()
	start := c.beginQuery()
	defer c.endQuery(start)
	if c.hooks.OnQuery != nil {
		c.hooks.OnQuery(q.Label)
	}
	rows, err := stmt.QueryLabeled(ctx, q.Label)
	if err != nil {
		c.capture(q.Label, c.stmtSQL[q.StmtID], start, nil, 0, 0, false, captureClass(err))
		return c.reportQueryError(err)
	}
	return c.streamRows(rows, q.Label, c.stmtSQL[q.StmtID], start)
}

// streamRows sends RowHeader + RowBatch* + (Done | Error) for one
// result set, polling for a client Cancel between batches. A non-nil
// return means the connection itself is unusable (write failure or
// protocol violation); query-level failures are reported in-stream
// and return nil. Terminal outcomes — the Done frame out, or the
// query-level error reported — are recorded to the workload capture;
// a connection-fatal failure mid-stream is not (the outcome the
// client saw is a half-stream, which no replay should repeat).
func (c *conn) streamRows(rows *dsdb.Rows, label, sql string, start time.Time) error {
	// The query's observability span outlives the Rows: frame encoding
	// and flushing are part of serving the query, so the stream
	// detaches the span, attributes its sends to the net stage, and
	// ends it only after the Done frame is out (Close's own end then
	// no-ops). The defer order (LIFO) is what makes it sound: the row
	// count lands on the span, then the span ends, then the Rows
	// closes.
	sp := rows.DetachSpan()
	defer rows.Close()
	defer sp.End()
	cancel := c.cancelQuery
	bytes0 := c.stats.bytesOut.Load()
	var count uint64
	defer func() {
		c.srv.counters.rowsStreamed.Add(count)
		c.stats.rows.Add(count)
		sp.AddRows(int64(count))
	}()
	// sendNet is send with the wall time (encode + frame write + flush)
	// attributed to the span's net stage. The disabled path is one nil
	// check — no clock reads.
	sendNet := func(k wire.Kind, encode func() []byte) error {
		if sp == nil {
			return c.send(k, encode())
		}
		t0 := time.Now()
		err := c.send(k, encode())
		sp.Add(obs.StageNet, time.Since(t0))
		return err
	}
	if err := sendNet(wire.KindRowHeader, func() []byte {
		return wire.EncodeRowHeader(wire.RowHeader{Columns: rows.Columns()})
	}); err != nil {
		return err
	}
	batch := make([][]dsdb.Value, 0, wire.BatchRows)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := sendNet(wire.KindRowBatch, func() []byte {
			return wire.EncodeRowBatch(wire.RowBatch{Rows: batch})
		})
		batch = batch[:0]
		return err
	}
	for rows.Next() {
		// A Cancel (or premature Quit) may overtake the stream: the
		// reader goroutine keeps decoding while we emit, so poll
		// without blocking.
		select {
		case fr, ok := <-c.frames:
			if !ok {
				cancel() // client vanished mid-stream: stop the query
				return c.readErr
			}
			switch fr.Kind {
			case wire.KindCancel:
				cancel()
			case wire.KindQuit:
				// Quit mid-stream: cancel like a Cancel, and flag the
				// session to end once the stream's error marker is out.
				cancel()
				c.quit = true
			default:
				cancel()
				return fmt.Errorf("unexpected %s frame during result stream", fr.Kind)
			}
		default:
		}
		batch = append(batch, rows.Values())
		count++
		if len(batch) == wire.BatchRows {
			if err := flush(); err != nil {
				cancel()
				return err
			}
		}
	}
	if err := rows.Err(); err != nil {
		// Drop the unsent tail: the stream ends with the error marker.
		sp.SetErr(err)
		c.capture(label, sql, start, sp, count, c.stats.bytesOut.Load()-bytes0, false, captureClass(err))
		return c.reportQueryError(err)
	}
	if err := flush(); err != nil {
		return err
	}
	// Attribute the execution in the terminal frame: a cache-hit serve
	// never touched the executor, and the client (dsload in
	// particular) splits its latency percentiles on this flag. The
	// span's id rides along so the client can correlate this result
	// with SHOW queries / SHOW slow.
	var flags uint8
	if rows.CacheHit() {
		flags |= wire.DoneFlagCacheHit
		c.srv.counters.cacheHits.Add(1)
	}
	if err := sendNet(wire.KindDone, func() []byte {
		return wire.EncodeDone(wire.Done{RowCount: count, Flags: flags, QueryID: sp.ID()})
	}); err != nil {
		return err
	}
	c.capture(label, sql, start, sp, count, c.stats.bytesOut.Load()-bytes0, rows.CacheHit(), wcap.OK)
	return nil
}

// streamStatic streams a pre-materialized (virtual-table) result set
// with the same RowHeader/RowBatch/Done framing as an engine query.
// The caller's span (nil when observability is disabled) gets the
// row count and the send time as net-stage work; ending it stays with
// the caller. Like any served query the completed stream is recorded
// to the workload capture.
func (c *conn) streamStatic(cols []string, rows [][]dsdb.Value, sp *obs.Span, label, sql string, start time.Time) error {
	sendNet := func(k wire.Kind, payload []byte) error {
		if sp == nil {
			return c.send(k, payload)
		}
		t0 := time.Now()
		err := c.send(k, payload)
		sp.Add(obs.StageNet, time.Since(t0))
		return err
	}
	bytes0 := c.stats.bytesOut.Load()
	if err := sendNet(wire.KindRowHeader, wire.EncodeRowHeader(wire.RowHeader{Columns: cols})); err != nil {
		return err
	}
	var count uint64
	defer func() {
		c.srv.counters.rowsStreamed.Add(count)
		c.stats.rows.Add(count)
		sp.AddRows(int64(count))
	}()
	for off := 0; off < len(rows); off += wire.BatchRows {
		end := min(off+wire.BatchRows, len(rows))
		if err := sendNet(wire.KindRowBatch, wire.EncodeRowBatch(wire.RowBatch{Rows: rows[off:end]})); err != nil {
			return err
		}
		count += uint64(end - off)
	}
	if err := sendNet(wire.KindDone, wire.EncodeDone(wire.Done{RowCount: count, QueryID: sp.ID()})); err != nil {
		return err
	}
	c.capture(label, sql, start, sp, count, c.stats.bytesOut.Load()-bytes0, false, wcap.OK)
	return nil
}
