package server_test

import (
	"context"
	"net"
	"testing"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/server"
	"repro/dsdb/wcap"
)

// benchServer is testServer for benchmarks: a served TPC-D database
// and one dialed client, everything torn down with the benchmark.
func benchServer(b *testing.B, opts ...server.Option) *client.DB {
	b.Helper()
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42))
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	srv := server.New(db, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { srv.Close() })
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func benchmarkServedQuery(b *testing.B, c *client.DB) {
	b.Helper()
	q := "select count(*) from region"
	// Warm the pools so the measured loop is steady-state.
	for i := 0; i < 3; i++ {
		rows, err := c.Query(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := c.Query(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryServed is the baseline: one client, one small query,
// no capture.
func BenchmarkQueryServed(b *testing.B) {
	benchmarkServedQuery(b, benchServer(b))
}

// BenchmarkQueryCaptured is the same served query with workload
// capture on. The pair pins the capture hot-path cost: one nil check,
// one record build, one non-blocking channel send per query —
// everything else happens on the writer's own goroutine. Compare
// ns/op against BenchmarkQueryServed; the gap is the capture tax.
func BenchmarkQueryCaptured(b *testing.B) {
	w, err := wcap.Open(b.TempDir(), wcap.Options{Buffer: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	c := benchServer(b, server.WithCapture(w))
	benchmarkServedQuery(b, c)
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatalf("closing capture: %v", err)
	}
	st := w.Stats()
	b.ReportMetric(float64(st.Dropped), "dropped")
	if st.Dropped > 0 {
		b.Logf("capture dropped %d of %d records (buffer too small for this rate)", st.Dropped, st.Records)
	}
}
