package server_test

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/server"
	"repro/dsdb/wire"
)

// smallBufListener shrinks every accepted connection's kernel send
// buffer so a stalled reader backs the server up after a few KB
// instead of after megabytes — the liveness tests would otherwise
// need huge result sets to fill default buffers.
type smallBufListener struct{ net.Listener }

func (l smallBufListener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err == nil {
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetWriteBuffer(4096)
		}
	}
	return nc, err
}

// rawConn is a minimal hand-rolled wire client for tests that need to
// misbehave in ways dsdb/client never would (stalling mid-stream,
// stray frames).
type rawConn struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetReadBuffer(2048)
	}
	c := &rawConn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
	c.sendFrame(t, wire.KindHello, wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion}))
	fr := c.readFrame(t)
	if fr.Kind != wire.KindHelloOK {
		t.Fatalf("handshake: got %s, want HelloOK", fr.Kind)
	}
	t.Cleanup(func() { nc.Close() })
	return c
}

func (c *rawConn) sendFrame(t *testing.T, k wire.Kind, payload []byte) {
	t.Helper()
	if err := wire.WriteFrame(c.w, k, payload); err != nil {
		t.Fatalf("write %s: %v", k, err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatalf("flush %s: %v", k, err)
	}
}

func (c *rawConn) readFrame(t *testing.T) wire.Frame {
	t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	fr, err := wire.ReadFrame(c.r)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return fr
}

// bigCrossJoin produces a result set far larger than the shrunken
// socket buffers, so the server must block writing it once the client
// stops reading.
const bigCrossJoin = "select o_orderkey, l_orderkey, l_extendedprice from orders, lineitem"

// TestSlowClientDoesNotWedgeWriters is the headline liveness
// regression: a client that stops reading mid-result-stream used to
// block the handler in Flush forever while its open Rows held the
// engine's shared read latch, starving every writer. With
// WithWriteTimeout the stalled connection must be killed, a
// concurrent Insert and Checkpoint must complete promptly, and the
// kill must be visible in Server.Stats() and SHOW STATS.
func TestSlowClientDoesNotWedgeWriters(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.WithWriteTimeout(500*time.Millisecond))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(smallBufListener{ln})
	defer srv.Close()
	addr := ln.Addr().String()

	// The stalled reader: start the big stream, read only the header,
	// then go silent. The server's write path backs up within a few
	// batches.
	stalled := dialRaw(t, addr)
	stalled.sendFrame(t, wire.KindQuery, wire.EncodeQuery(wire.Query{SQL: bigCrossJoin}))
	if fr := stalled.readFrame(t); fr.Kind != wire.KindRowHeader {
		t.Fatalf("got %s, want RowHeader", fr.Kind)
	}

	// Wait until the stream is actually in flight server-side.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().InFlightQueries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled query never became in-flight")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Writers must get through while the stalled stream still holds
	// its latch: the write timeout bounds the wait.
	writerDone := make(chan error, 1)
	go func() {
		if err := db.Insert("region", dsdb.NewInt(99), dsdb.NewStr("ATLANTIS")); err != nil {
			writerDone <- err
			return
		}
		writerDone <- db.Checkpoint()
	}()
	select {
	case err := <-writerDone:
		if err != nil {
			t.Fatalf("Insert/Checkpoint: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Insert+Checkpoint wedged behind the stalled reader")
	}

	// The stalled connection must be killed: draining it now ends in a
	// socket error once the few buffered KB run out.
	stalled.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := stalled.nc.Read(buf); err != nil {
			break
		}
	}

	if st := srv.Stats(); st.SlowClientKills < 1 {
		t.Fatalf("Stats().SlowClientKills = %d, want >= 1", st.SlowClientKills)
	}

	// And a healthy client sees the kill through SHOW STATS.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec(context.Background(), "show stats")
	if err != nil {
		t.Fatalf("show stats: %v", err)
	}
	var killed int64 = -1
	for _, row := range res.Rows {
		if row[0].S == "conns_slow_killed" {
			killed = row[1].I
		}
	}
	if killed < 1 {
		t.Fatalf("show stats conns_slow_killed = %d, want >= 1", killed)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestStrayQuitDuringStream pins streamRows' cancel path: a Quit
// frame arriving mid-stream must cancel the query in place, end the
// stream with the cancelled marker (or a clean close), and terminate
// the session without a protocol error.
func TestStrayQuitDuringStream(t *testing.T) {
	_, srv, addr := testServer(t)
	c := dialRaw(t, addr)
	c.sendFrame(t, wire.KindQuery, wire.EncodeQuery(wire.Query{SQL: "select l_orderkey from lineitem"}))
	if fr := c.readFrame(t); fr.Kind != wire.KindRowHeader {
		t.Fatalf("got %s, want RowHeader", fr.Kind)
	}
	c.sendFrame(t, wire.KindQuit, nil)
	// Drain to the end of the connection: the stream must terminate
	// (cancelled error frame, or Done if the Quit lost the race) and
	// then the server must close — never a proto error.
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		fr, err := wire.ReadFrame(c.r)
		if err != nil {
			break // server closed the session: done
		}
		switch fr.Kind {
		case wire.KindRowBatch, wire.KindDone:
		case wire.KindError:
			ef, derr := wire.DecodeError(fr.Payload)
			if derr != nil {
				t.Fatalf("bad error frame: %v", derr)
			}
			if ef.Code != wire.CodeCancelled {
				t.Fatalf("stream ended with %q error, want %q", ef.Code, wire.CodeCancelled)
			}
		default:
			t.Fatalf("unexpected %s frame after Quit", fr.Kind)
		}
	}
	// The server must still drain cleanly (no stuck handler).
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestServeTwice checks the double-Serve guard: a second listener
// must be rejected (and closed) instead of silently displacing the
// first.
func TestServeTwice(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln1)
	defer srv.Close()
	// Wait for the first Serve to register its listener.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("first Serve never registered")
		}
		time.Sleep(time.Millisecond)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln2); !errors.Is(err, server.ErrAlreadyServing) {
		t.Fatalf("second Serve = %v, want ErrAlreadyServing", err)
	}
	// The rejected listener was closed by Serve.
	if _, err := ln2.Accept(); err == nil {
		t.Fatal("rejected listener still accepting")
	}
	// The first listener still serves.
	if srv.Addr().String() != ln1.Addr().String() {
		t.Fatalf("Addr() = %v, want %v", srv.Addr(), ln1.Addr())
	}
	c, err := client.Dial(ln1.Addr().String())
	if err != nil {
		t.Fatalf("dial after rejected Serve: %v", err)
	}
	c.Close()
}

// TestIdleTimeout checks an idle session is killed with the idle
// code while a session busy with a long stream survives far past the
// idle bound.
func TestIdleTimeout(t *testing.T) {
	_, _, addr := testServer(t, server.WithIdleTimeout(300*time.Millisecond))

	// Busy session: keeps a stream going well past the idle timeout by
	// actually reading it (slowly, via the normal client).
	busy, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()

	// Idle session: handshakes and then sits silent.
	idle := dialRaw(t, addr)

	busyDone := make(chan error, 1)
	go func() {
		rows, err := busy.Query(context.Background(), "select l_orderkey from lineitem")
		if err != nil {
			busyDone <- err
			return
		}
		defer rows.Close()
		for rows.Next() {
			time.Sleep(time.Millisecond) // stretch the stream past the idle bound
		}
		busyDone <- rows.Err()
	}()

	// The idle session must receive the idle farewell (or a bare
	// close) within a couple of timeouts.
	idle.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr, err := wire.ReadFrame(idle.r)
	if err == nil {
		if fr.Kind != wire.KindError {
			t.Fatalf("idle session got %s, want Error", fr.Kind)
		}
		ef, derr := wire.DecodeError(fr.Payload)
		if derr != nil {
			t.Fatal(derr)
		}
		if ef.Code != wire.CodeIdle {
			t.Fatalf("idle kill code = %q, want %q", ef.Code, wire.CodeIdle)
		}
	}

	if err := <-busyDone; err != nil {
		t.Fatalf("busy session killed by idle timeout: %v", err)
	}
}

// TestStatsFrame checks the wire Stats round trip end to end: counters
// move, and client.ServerStats surfaces them.
func TestStatsFrame(t *testing.T) {
	_, srv, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(context.Background(), "select count(*) from region"); err != nil {
		t.Fatal(err)
	}
	st, err := c.ServerStats()
	if err != nil {
		t.Fatalf("ServerStats: %v", err)
	}
	for _, name := range []string{"conns_total", "queries_total", "rows_streamed", "bytes_written"} {
		v, ok := st.Get(name)
		if !ok {
			t.Fatalf("ServerStats missing %q", name)
		}
		if v < 1 {
			t.Fatalf("%s = %d, want >= 1", name, v)
		}
	}
	if got := srv.Stats(); got.Queries < 1 {
		t.Fatalf("Server.Stats().Queries = %d, want >= 1", got.Queries)
	}
}

// TestShowVirtualTables drives every SHOW target over the normal
// protocol and checks shape and a few known values; an unknown target
// must fail the query but keep the session.
func TestShowVirtualTables(t *testing.T) {
	_, _, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Exec(context.Background(), "show tables")
	if err != nil {
		t.Fatalf("show tables: %v", err)
	}
	found := map[string]int64{}
	for _, row := range res.Rows {
		found[row[0].S] = row[1].I
	}
	if found["region"] != 5 || found["nation"] != 25 {
		t.Fatalf("show tables: region=%d nation=%d, want 5 and 25 (have %v)", found["region"], found["nation"], found)
	}

	for _, target := range []string{"stats", "conns", "pool", "cache", "wal"} {
		res, err := c.Exec(context.Background(), "SHOW "+target+";")
		if err != nil {
			t.Fatalf("show %s: %v", target, err)
		}
		if len(res.Columns) == 0 {
			t.Fatalf("show %s: no columns", target)
		}
		if target != "conns" && len(res.Rows) == 0 {
			t.Fatalf("show %s: no rows", target)
		}
	}

	// Unknown target: query-level error, session survives.
	_, err = c.Exec(context.Background(), "show nonsense")
	var ef wire.ErrorFrame
	if !errors.As(err, &ef) || ef.Code != wire.CodeQuery {
		t.Fatalf("show nonsense: got %v, want query error", err)
	}
	if !strings.Contains(ef.Message, "unknown SHOW target") {
		t.Fatalf("show nonsense message = %q", ef.Message)
	}
	if _, err := c.Exec(context.Background(), "select count(*) from region"); err != nil {
		t.Fatalf("session broken after bad SHOW: %v", err)
	}
}
