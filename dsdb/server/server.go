// Package server serves a dsdb database over the wire protocol
// (dsdb/wire): a TCP listener maps every accepted connection onto one
// per-session dsdb context — its own statements, its own per-query
// deadline, and optionally its own instrumentation tracer — so the
// concurrency model is exactly PR 2's "one DB, N sessions", stretched
// across the network.
//
//	db, _ := dsdb.Open(dsdb.WithTPCD(0.001))
//	srv := server.New(db)
//	go srv.ListenAndServe("127.0.0.1:5454")
//	...
//	srv.Shutdown(ctx) // drain at query boundaries, then close
//
// Each connection is handled by two goroutines: a reader that decodes
// frames into a channel and a handler that executes them, which is
// what lets a Cancel frame overtake an in-flight result stream. One
// query runs at a time per connection (the wire protocol is
// synchronous); concurrency comes from many connections, bounded by
// WithMaxConns.
//
// The serving path is liveness-safe against hostile or broken
// clients. Every frame write carries a deadline (WithWriteTimeout,
// on by default): a client that stops reading its result stream is
// disconnected when the kernel buffers fill and the flush times out,
// which cancels the in-flight query and releases the engine's shared
// read latch — a stalled reader can no longer wedge writers. A
// distinguishable wire error code (CodeSlowClient) names the kill.
// WithIdleTimeout bounds sessions parked between queries, and
// over-limit connections are refused off the accept goroutine so a
// slow refusal cannot stall admission.
//
// Everything the server does is counted: Server.Stats returns a
// snapshot (connections accepted/refused/slow-killed/idle-killed,
// queries, rows, bytes, a log-spaced latency histogram plus per-stage
// histograms from the DB's observability tracer), the same counters
// answer the wire Stats frame (client.DB.ServerStats), and SHOW
// virtual tables — "show stats", "show conns", "show tables", "show
// pool", "show cache", "show wal", "show queries", "show slow" —
// stream them over the normal query protocol, so any wire client can
// inspect a live server. NewMetricsMux exposes the same numbers as a
// Prometheus text endpoint alongside net/http/pprof, and
// WithSlowQueryThreshold routes slow executions into the tracer's
// slow ring and structured slow-query log.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/dsdb"
	"repro/dsdb/wcap"
	"repro/dsdb/wire"
)

// SessionHooks instruments one server-side session (one connection).
// The zero value is a plain uninstrumented session.
type SessionHooks struct {
	// Tracer, when non-nil, records this session's kernel
	// instrumentation events: every query on the connection runs via
	// QueryTraced/PrepareTraced. The tracer is only ever used from the
	// connection's handler goroutine, so a single-threaded tracer
	// (kernel session recorders included) is safe.
	Tracer dsdb.Tracer
	// OnQuery, when non-nil, is called just before each query starts
	// executing, with the client-supplied label (stcpipe uses it to
	// mark query boundaries in the session trace).
	OnQuery func(label string)
	// OnClose, when non-nil, runs when the session ends.
	OnClose func()
}

// config collects the server options.
type config struct {
	maxConns     int
	queryTimeout time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
	slowQuery    time.Duration
	newSession   func(id int) SessionHooks
	capture      *wcap.Writer
}

// Option configures New.
type Option func(*config)

// WithMaxConns bounds concurrently served connections (default 64).
// Excess connections are refused with a conn_limit error frame.
func WithMaxConns(n int) Option {
	return func(c *config) { c.maxConns = n }
}

// WithQueryTimeout sets the per-query context deadline (default none).
// A query that exceeds it is cancelled server-side and its stream ends
// with a cancelled error frame.
func WithQueryTimeout(d time.Duration) Option {
	return func(c *config) { c.queryTimeout = d }
}

// WithWriteTimeout bounds every frame write on every connection
// (default DefaultWriteTimeout; 0 disables). A flush that exceeds it —
// a client that stopped reading while the kernel buffers filled —
// cancels the in-flight query, releases its engine latch, and closes
// the connection with a slow_client error. This is the serving path's
// liveness guarantee: one stalled reader can no longer wedge every
// writer behind the engine's shared read latch.
func WithWriteTimeout(d time.Duration) Option {
	return func(c *config) { c.writeTimeout = d }
}

// WithIdleTimeout closes sessions that sit idle between queries for
// longer than d (default none). A session whose result stream is
// still being served is busy, not idle, and is never killed by this.
func WithIdleTimeout(d time.Duration) Option {
	return func(c *config) { c.idleTimeout = d }
}

// WithSlowQueryThreshold marks queries slower than d as slow on the
// DB's observability tracer: they enter the slow-query ring (SHOW
// SLOW) and, when a slow logger is installed (obs.Tracer.SetSlowLogger
// — dsdbd's -slow-query-log flag does this), each one is logged as a
// structured line with its per-stage breakdown. 0 (the default)
// disables the threshold.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(c *config) { c.slowQuery = d }
}

// WithCapture records every served query to w, the workload-capture
// log (dsdb/wcap): SQL, session, outcome, latency and per-stage
// breakdown, replayable later by dsreplay or stcpipe.ProfileReplayed.
// The per-query cost is one nil check when absent and one non-blocking
// channel send when present — capture never takes a lock or does IO on
// the serving path, and a slow capture disk sheds records (counted in
// Stats as CaptureDropped) instead of blocking queries. The caller
// owns w's lifecycle: close it after the server has shut down.
func WithCapture(w *wcap.Writer) Option {
	return func(c *config) { c.capture = w }
}

// WithSessionHooks installs a per-session instrumentation factory,
// called once per accepted connection with a session id that counts up
// from 1 in accept order.
func WithSessionHooks(f func(id int) SessionHooks) Option {
	return func(c *config) { c.newSession = f }
}

// Server serves one dsdb.DB over TCP.
type Server struct {
	db      *dsdb.DB
	cfg     config
	started time.Time

	// drainCh is closed by Shutdown; connection handlers select on it
	// at every frame boundary, so draining never interrupts an
	// in-flight query but stops everything between queries.
	drainCh chan struct{}

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	nextID   int
	draining bool
	wg       sync.WaitGroup

	// counters is the server-wide stats block (stats.go). All fields
	// are atomic; no lock is involved on the serving hot paths.
	counters serverStats
}

// New wraps db in a server. The db stays usable directly (in-process
// queries and served queries share the engine, per PR 2's model).
func New(db *dsdb.DB, opts ...Option) *Server {
	cfg := config{maxConns: 64, writeTimeout: DefaultWriteTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.slowQuery > 0 {
		db.Obs().SetSlowThreshold(cfg.slowQuery)
	}
	return &Server{db: db, cfg: cfg, started: time.Now(), conns: make(map[*conn]struct{}), drainCh: make(chan struct{})}
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// ErrAlreadyServing is returned by a second concurrent Serve call:
// the server owns one listener at a time, and letting another Serve
// displace it would silently detach Addr() and Shutdown from the
// first listener.
var ErrAlreadyServing = errors.New("server: already serving")

// DefaultWriteTimeout is the write bound applied when New is not
// given WithWriteTimeout. It is deliberately non-zero: an unbounded
// frame write is the liveness bug this server exists to not have.
const DefaultWriteTimeout = 30 * time.Second

// handshakeTimeout bounds how long an accepted connection may sit
// without completing the Hello exchange.
const handshakeTimeout = 10 * time.Second

// refuseTimeout bounds the refusal error frame's write.
const refuseTimeout = 2 * time.Second

// ListenAndServe listens on addr and serves until Shutdown/Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown or Close. It always
// returns a non-nil error; after a clean shutdown, ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return ErrAlreadyServing
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.startConn(nc)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Ready reports whether the server is accepting queries: it has a
// live listener and is not draining. This is the /readyz predicate —
// false before Serve, and false from the moment Shutdown begins even
// though in-flight queries are still completing.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ln != nil && !s.draining
}

// startConn admits or refuses a fresh connection.
func (s *Server) startConn(nc net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.refuse(nc, wire.CodeShutdown, "server is shutting down")
		return
	}
	if len(s.conns) >= s.cfg.maxConns {
		s.mu.Unlock()
		s.refuse(nc, wire.CodeConnLimit, fmt.Sprintf("connection limit %d reached", s.cfg.maxConns))
		return
	}
	s.nextID++
	c := &conn{
		srv:    s,
		id:     s.nextID,
		nc:     nc,
		w:      bufio.NewWriter(nc),
		frames: make(chan wire.Frame, 4),
		done:   make(chan struct{}),
	}
	if s.cfg.newSession != nil {
		c.hooks = s.cfg.newSession(c.id)
	}
	s.conns[c] = struct{}{}
	s.counters.totalConns.Add(1)
	s.wg.Add(1)
	s.mu.Unlock()
	go c.readLoop()
	go func() {
		defer s.wg.Done()
		c.serve()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
}

// refuse turns a connection away with one error frame. The write
// happens on its own goroutine under a short deadline, so a refused
// client that never reads can neither stall the accept loop nor hold
// it hostage. The goroutine is deliberately not tracked by s.wg:
// Shutdown may already be inside wg.Wait when the draining-path
// refusal fires (Add after Wait is a WaitGroup misuse), and the
// deadline guarantees self-termination within refuseTimeout anyway.
func (s *Server) refuse(nc net.Conn, code, msg string) {
	s.counters.refusedConns.Add(1)
	go func() {
		if nc.SetWriteDeadline(time.Now().Add(refuseTimeout)) == nil {
			w := bufio.NewWriter(nc)
			if wire.WriteFrame(w, wire.KindError, wire.EncodeError(wire.ErrorFrame{Code: code, Message: msg})) == nil {
				w.Flush()
			}
		}
		nc.Close()
	}()
}

// Shutdown stops accepting connections and drains the served ones:
// each connection finishes its in-flight query (result stream
// completes), then closes at the next frame boundary — idle handlers
// see the drain signal immediately, busy ones right after their
// current query. When ctx expires first, remaining queries are
// cancelled and their connections force-closed. Returns nil on a
// clean drain, ctx.Err() after a forced one.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if !already {
		close(s.drainCh)
	}
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.cancelQuery()
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close force-closes the listener and every connection without
// draining.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background()) //lint:allow ctxflow deliberately pre-cancelled context selects Shutdown's force path
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
