package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/dsdb"
	"repro/dsdb/obs"
	"repro/dsdb/wire"
)

// serverStats is the server-wide counter set. Every field is atomic:
// the hot paths (frame writes, row batches, query completion) touch
// them without any lock, and Stats() snapshots them without stopping
// the world.
type serverStats struct {
	totalConns      atomic.Uint64
	refusedConns    atomic.Uint64
	slowClientKills atomic.Uint64
	idleKills       atomic.Uint64

	queries          atomic.Uint64
	queryErrors      atomic.Uint64
	cancelledQueries atomic.Uint64
	cacheHits        atomic.Uint64
	inFlight         atomic.Int64

	rowsStreamed atomic.Uint64
	bytesWritten atomic.Uint64

	// latency is the end-to-end served-query latency histogram, on the
	// shared log-spaced obs.Buckets grid (100µs … 10s plus an unbounded
	// tail) — the same bounds the per-stage histograms use, so a
	// served-total bucket and an exec-stage bucket line up.
	latency obs.Histogram
}

// observe records one finished query's latency. Error and
// cancellation attribution happens where the failure is classified
// (conn.reportQueryError), not here.
func (st *serverStats) observe(d time.Duration) {
	st.latency.Observe(d)
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// ActiveConns is the number of currently served sessions;
	// TotalConns counts every admitted connection since New, and
	// RefusedConns every connection turned away (conn limit or
	// draining).
	ActiveConns  int
	TotalConns   uint64
	RefusedConns uint64
	// SlowClientKills counts connections killed because a frame write
	// exceeded the write timeout (a reader that stopped reading);
	// IdleKills counts sessions closed by the idle timeout.
	SlowClientKills uint64
	IdleKills       uint64

	// Queries counts every query accepted for execution (SHOW
	// introspection included); QueryErrors the ones that failed,
	// CancelledQueries the ones that ended cancelled (client Cancel,
	// Quit mid-stream, or server-side deadline), CacheHits the ones
	// answered from the result cache. InFlightQueries is the current
	// number executing.
	Queries          uint64
	QueryErrors      uint64
	CancelledQueries uint64
	CacheHits        uint64
	InFlightQueries  int

	// RowsStreamed and BytesWritten count result rows and frame bytes
	// sent across all connections.
	RowsStreamed uint64
	BytesWritten uint64

	// CaptureEnabled reports whether a workload capture (WithCapture)
	// is attached; the counters below are zero without one.
	// CaptureRecords counts queries accepted into the capture log,
	// CaptureDropped the ones shed because the capture buffer was full
	// (disk slower than the workload — never silent),
	// CaptureSampledOut the ones skipped by the sampling rate, and
	// CaptureBytes the frame bytes written to capture segments.
	CaptureEnabled    bool
	CaptureRecords    uint64
	CaptureDropped    uint64
	CaptureSampledOut uint64
	CaptureBytes      uint64
	CaptureIOErrors   uint64

	// Uptime is how long the server has existed (since New).
	Uptime time.Duration

	// Latency is the end-to-end served-query latency histogram on the
	// obs.Buckets grid (per-bucket counts are non-cumulative; labels
	// come from obs.BucketLabel).
	Latency obs.HistSnapshot

	// Stages are the per-stage duration histograms aggregated across
	// every observed query on the underlying DB (local and served),
	// indexed by obs.Stage. All-zero when observability is disabled.
	Stages [obs.NumStages]obs.HistSnapshot
}

// Stats snapshots the server's counters. Counters are atomics, so the
// snapshot is cheap and safe at any time, including mid-traffic.
func (s *Server) Stats() Stats {
	st := Stats{
		TotalConns:       s.counters.totalConns.Load(),
		RefusedConns:     s.counters.refusedConns.Load(),
		SlowClientKills:  s.counters.slowClientKills.Load(),
		IdleKills:        s.counters.idleKills.Load(),
		Queries:          s.counters.queries.Load(),
		QueryErrors:      s.counters.queryErrors.Load(),
		CancelledQueries: s.counters.cancelledQueries.Load(),
		CacheHits:        s.counters.cacheHits.Load(),
		InFlightQueries:  int(s.counters.inFlight.Load()),
		RowsStreamed:     s.counters.rowsStreamed.Load(),
		BytesWritten:     s.counters.bytesWritten.Load(),
		Uptime:           time.Since(s.started),
		Latency:          s.counters.latency.Snapshot(),
	}
	for i := range st.Stages {
		st.Stages[i] = s.db.Obs().StageSnapshot(obs.Stage(i))
	}
	if w := s.cfg.capture; w != nil {
		cs := w.Stats()
		st.CaptureEnabled = true
		st.CaptureRecords = cs.Records
		st.CaptureDropped = cs.Dropped
		st.CaptureSampledOut = cs.SampledOut
		st.CaptureBytes = cs.Bytes
		st.CaptureIOErrors = cs.IOErrors
	}
	s.mu.Lock()
	st.ActiveConns = len(s.conns)
	s.mu.Unlock()
	return st
}

// Pairs renders the snapshot as the ordered name/value list carried
// by the wire Stats frame and the SHOW STATS virtual table. Names are
// stable snake_case identifiers. Latency buckets are exported one
// pair each as "lat_" + obs.BucketLabel(i) — the bucket bounds ride
// in the names, so a wire client can reconstruct the histogram
// without compiled-in knowledge of the grid — and each per-stage
// histogram is summarized as stage_<name>_count / stage_<name>_total_ns.
func (st Stats) Pairs() []wire.StatPair {
	pairs := []wire.StatPair{
		{Name: "uptime_seconds", Value: int64(st.Uptime.Seconds())},
		{Name: "conns_active", Value: int64(st.ActiveConns)},
		{Name: "conns_total", Value: int64(st.TotalConns)},
		{Name: "conns_refused", Value: int64(st.RefusedConns)},
		{Name: "conns_slow_killed", Value: int64(st.SlowClientKills)},
		{Name: "conns_idle_killed", Value: int64(st.IdleKills)},
		{Name: "queries_total", Value: int64(st.Queries)},
		{Name: "queries_in_flight", Value: int64(st.InFlightQueries)},
		{Name: "queries_failed", Value: int64(st.QueryErrors)},
		{Name: "queries_cancelled", Value: int64(st.CancelledQueries)},
		{Name: "queries_cache_hits", Value: int64(st.CacheHits)},
		{Name: "rows_streamed", Value: int64(st.RowsStreamed)},
		{Name: "bytes_written", Value: int64(st.BytesWritten)},
	}
	// Capture pairs appear only when a capture is attached — the same
	// discipline as the result-cache metrics: absent, not zero, when
	// the subsystem is off, so dashboards can detect "capturing" by
	// the presence of the series.
	if st.CaptureEnabled {
		pairs = append(pairs,
			wire.StatPair{Name: "capture_records", Value: int64(st.CaptureRecords)},
			wire.StatPair{Name: "capture_dropped", Value: int64(st.CaptureDropped)},
			wire.StatPair{Name: "capture_sampled_out", Value: int64(st.CaptureSampledOut)},
			wire.StatPair{Name: "capture_bytes", Value: int64(st.CaptureBytes)},
			wire.StatPair{Name: "capture_io_errors", Value: int64(st.CaptureIOErrors)},
		)
	}
	for i, n := range st.Latency.Counts {
		pairs = append(pairs, wire.StatPair{Name: "lat_" + obs.BucketLabel(i), Value: int64(n)})
	}
	for i, h := range st.Stages {
		name := obs.Stage(i).String()
		pairs = append(pairs,
			wire.StatPair{Name: "stage_" + name + "_count", Value: int64(h.Count)},
			wire.StatPair{Name: "stage_" + name + "_total_ns", Value: int64(h.Sum)},
		)
	}
	return pairs
}

// connStats is one connection's counter set (atomics, same rationale
// as serverStats); surfaced by the SHOW CONNS virtual table.
type connStats struct {
	queries  atomic.Uint64
	rows     atomic.Uint64
	bytesOut atomic.Uint64
	inFlight atomic.Int32
}

// showColumns and the builders below implement the SHOW virtual
// tables: introspection queryable over the normal protocol, streamed
// with the same RowHeader/RowBatch/Done frames as any result set.
//
// SHOW STATS   — the server counter snapshot (stat, value)
// SHOW CONNS   — per-connection counters (conn, remote, ...)
// SHOW TABLES  — catalog: name, rows, write epoch, index count
// SHOW POOL    — buffer pool: frames, pinned, hits, misses
// SHOW CACHE   — result cache counters (all zero when disabled)
// SHOW WAL     — durability: durable flag, current WAL segment
// SHOW QUERIES — recent query spans, newest first (qid, stages, ...)
// SHOW SLOW    — recent slow-query spans, newest first (same shape)
// SHOW CAPTURE — workload-capture counters (all zero when disabled)

// parseShow recognizes a SHOW statement; ok is false for anything
// else (which then takes the normal query path).
func parseShow(sql string) (target string, ok bool) {
	fields := strings.Fields(strings.ToLower(strings.TrimRight(strings.TrimSpace(sql), "; \t\r\n")))
	if len(fields) != 2 || fields[0] != "show" {
		return "", false
	}
	return fields[1], true
}

// kv builds one (stat, value) row.
func kv(name string, v int64) []dsdb.Value {
	return []dsdb.Value{dsdb.NewStr(name), dsdb.NewInt(v)}
}

// showRows builds the named virtual table. An unknown target returns
// an error that is reported as a query-level failure (the session
// survives, like any bad SQL).
func (s *Server) showRows(target string) (cols []string, rows [][]dsdb.Value, err error) {
	switch target {
	case "stats":
		cols = []string{"stat", "value"}
		for _, p := range s.Stats().Pairs() {
			rows = append(rows, kv(p.Name, p.Value))
		}
	case "conns":
		cols = []string{"conn", "remote", "queries", "rows", "bytes", "in_flight"}
		s.mu.Lock()
		conns := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })
		for _, c := range conns {
			rows = append(rows, []dsdb.Value{
				dsdb.NewInt(int64(c.id)),
				dsdb.NewStr(c.nc.RemoteAddr().String()),
				dsdb.NewInt(int64(c.stats.queries.Load())),
				dsdb.NewInt(int64(c.stats.rows.Load())),
				dsdb.NewInt(int64(c.stats.bytesOut.Load())),
				dsdb.NewInt(int64(c.stats.inFlight.Load())),
			})
		}
	case "tables":
		cols = []string{"table", "rows", "epoch", "indexes"}
		for _, t := range s.db.TableStats() {
			rows = append(rows, []dsdb.Value{
				dsdb.NewStr(t.Name),
				dsdb.NewInt(int64(t.Rows)),
				dsdb.NewInt(int64(t.Epoch)),
				dsdb.NewInt(int64(t.Indexes)),
			})
		}
	case "pool":
		cols = []string{"stat", "value"}
		p := s.db.PoolStats()
		rows = [][]dsdb.Value{
			kv("frames", int64(p.Frames)),
			kv("pinned", int64(p.Pinned)),
			kv("hits", int64(p.Hits)),
			kv("misses", int64(p.Misses)),
		}
	case "cache":
		cols = []string{"stat", "value"}
		st, enabled := s.db.ResultCacheStats()
		e := int64(0)
		if enabled {
			e = 1
		}
		rows = [][]dsdb.Value{
			kv("enabled", e),
			kv("hits", int64(st.Hits)),
			kv("misses", int64(st.Misses)),
			kv("entries", int64(st.Entries)),
			kv("used_bytes", st.UsedBytes),
			kv("max_bytes", st.MaxBytes),
			kv("evictions", int64(st.Evictions)),
			kv("invalidations", int64(st.Invalidations)),
			kv("expirations", int64(st.Expirations)),
			kv("admission_rejects", int64(st.AdmissionRejects)),
		}
	case "capture":
		cols = []string{"stat", "value"}
		st := s.Stats()
		e := int64(0)
		if st.CaptureEnabled {
			e = 1
		}
		rows = [][]dsdb.Value{
			kv("enabled", e),
			kv("records", int64(st.CaptureRecords)),
			kv("dropped", int64(st.CaptureDropped)),
			kv("sampled_out", int64(st.CaptureSampledOut)),
			kv("bytes", int64(st.CaptureBytes)),
			kv("io_errors", int64(st.CaptureIOErrors)),
		}
	case "queries":
		cols, rows = spanRows(s.db.Obs().Recent())
	case "slow":
		cols, rows = spanRows(s.db.Obs().Slow())
	case "wal":
		cols = []string{"stat", "value"}
		w := s.db.WALStats()
		d := int64(0)
		if w.Durable {
			d = 1
		}
		rows = [][]dsdb.Value{
			kv("durable", d),
			kv("seq", int64(w.Seq)),
			kv("appends", int64(w.Appends)),
			kv("fsyncs", int64(w.Fsyncs)),
		}
	default:
		return nil, nil, fmt.Errorf("unknown SHOW target %q (have stats, conns, tables, pool, cache, wal, queries, slow, capture)", target)
	}
	return cols, rows, nil
}

// spanRows renders completed query spans (SHOW QUERIES / SHOW SLOW)
// as a virtual table, newest first. Durations are microseconds: fine
// enough for cache hits, and integers keep the rows scannable. top_op
// names the dominant operator for queries that ran under EXPLAIN
// ANALYZE instrumentation ("" otherwise).
func spanRows(recs []obs.Record) (cols []string, rows [][]dsdb.Value) {
	cols = []string{
		"qid", "label", "sql", "rows", "hit", "err",
		"total_us", "plan_us", "cache_us", "exec_us", "io_us", "wal_us", "net_us",
		"top_op",
	}
	for _, r := range recs {
		hit := int64(0)
		if r.CacheHit {
			hit = 1
		}
		row := []dsdb.Value{
			dsdb.NewInt(int64(r.ID)),
			dsdb.NewStr(r.Label),
			dsdb.NewStr(r.SQL),
			dsdb.NewInt(r.Rows),
			dsdb.NewInt(hit),
			dsdb.NewStr(r.Err),
			dsdb.NewInt(r.Total.Microseconds()),
		}
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			row = append(row, dsdb.NewInt(r.Stages[st].Microseconds()))
		}
		row = append(row, dsdb.NewStr(r.TopOp))
		rows = append(rows, row)
	}
	return cols, rows
}
