package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/dsdb"
	"repro/dsdb/wire"
)

// LatencyBucketBounds are the upper bounds of the per-query latency
// histogram, in ascending order; the last bucket is unbounded. The
// names in Stats and the stats wire frame derive from these.
var LatencyBucketBounds = [...]time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// numLatencyBuckets is len(bounds) + 1 for the unbounded tail.
const numLatencyBuckets = len(LatencyBucketBounds) + 1

// latencyBucketName renders bucket i's stable identifier
// ("lat_lt_1ms" ... "lat_ge_1s").
func latencyBucketName(i int) string {
	if i < len(LatencyBucketBounds) {
		return "lat_lt_" + fmtBound(LatencyBucketBounds[i])
	}
	return "lat_ge_" + fmtBound(LatencyBucketBounds[len(LatencyBucketBounds)-1])
}

// fmtBound renders a bucket bound compactly (1ms, 10ms, 100ms, 1s).
func fmtBound(d time.Duration) string {
	if d < time.Second {
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
	return fmt.Sprintf("%ds", int(d.Seconds()))
}

// serverStats is the server-wide counter set. Every field is atomic:
// the hot paths (frame writes, row batches, query completion) touch
// them without any lock, and Stats() snapshots them without stopping
// the world.
type serverStats struct {
	totalConns      atomic.Uint64
	refusedConns    atomic.Uint64
	slowClientKills atomic.Uint64
	idleKills       atomic.Uint64

	queries          atomic.Uint64
	queryErrors      atomic.Uint64
	cancelledQueries atomic.Uint64
	cacheHits        atomic.Uint64
	inFlight         atomic.Int64

	rowsStreamed atomic.Uint64
	bytesWritten atomic.Uint64

	latBuckets [numLatencyBuckets]atomic.Uint64
}

// observe records one finished query's latency bucket. Error and
// cancellation attribution happens where the failure is classified
// (conn.reportQueryError), not here.
func (st *serverStats) observe(d time.Duration) {
	i := 0
	for ; i < len(LatencyBucketBounds); i++ {
		if d < LatencyBucketBounds[i] {
			break
		}
	}
	st.latBuckets[i].Add(1)
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// ActiveConns is the number of currently served sessions;
	// TotalConns counts every admitted connection since New, and
	// RefusedConns every connection turned away (conn limit or
	// draining).
	ActiveConns  int
	TotalConns   uint64
	RefusedConns uint64
	// SlowClientKills counts connections killed because a frame write
	// exceeded the write timeout (a reader that stopped reading);
	// IdleKills counts sessions closed by the idle timeout.
	SlowClientKills uint64
	IdleKills       uint64

	// Queries counts every query accepted for execution (SHOW
	// introspection included); QueryErrors the ones that failed,
	// CancelledQueries the ones that ended cancelled (client Cancel,
	// Quit mid-stream, or server-side deadline), CacheHits the ones
	// answered from the result cache. InFlightQueries is the current
	// number executing.
	Queries          uint64
	QueryErrors      uint64
	CancelledQueries uint64
	CacheHits        uint64
	InFlightQueries  int

	// RowsStreamed and BytesWritten count result rows and frame bytes
	// sent across all connections.
	RowsStreamed uint64
	BytesWritten uint64

	// LatencyBuckets is the per-query latency histogram: counts of
	// completed queries under each LatencyBucketBounds entry, with an
	// unbounded tail bucket.
	LatencyBuckets [numLatencyBuckets]uint64
}

// Stats snapshots the server's counters. Counters are atomics, so the
// snapshot is cheap and safe at any time, including mid-traffic.
func (s *Server) Stats() Stats {
	st := Stats{
		TotalConns:       s.counters.totalConns.Load(),
		RefusedConns:     s.counters.refusedConns.Load(),
		SlowClientKills:  s.counters.slowClientKills.Load(),
		IdleKills:        s.counters.idleKills.Load(),
		Queries:          s.counters.queries.Load(),
		QueryErrors:      s.counters.queryErrors.Load(),
		CancelledQueries: s.counters.cancelledQueries.Load(),
		CacheHits:        s.counters.cacheHits.Load(),
		InFlightQueries:  int(s.counters.inFlight.Load()),
		RowsStreamed:     s.counters.rowsStreamed.Load(),
		BytesWritten:     s.counters.bytesWritten.Load(),
	}
	for i := range st.LatencyBuckets {
		st.LatencyBuckets[i] = s.counters.latBuckets[i].Load()
	}
	s.mu.Lock()
	st.ActiveConns = len(s.conns)
	s.mu.Unlock()
	return st
}

// Pairs renders the snapshot as the ordered name/value list carried
// by the wire Stats frame and the SHOW STATS virtual table. Names are
// stable snake_case identifiers.
func (st Stats) Pairs() []wire.StatPair {
	pairs := []wire.StatPair{
		{Name: "conns_active", Value: int64(st.ActiveConns)},
		{Name: "conns_total", Value: int64(st.TotalConns)},
		{Name: "conns_refused", Value: int64(st.RefusedConns)},
		{Name: "conns_slow_killed", Value: int64(st.SlowClientKills)},
		{Name: "conns_idle_killed", Value: int64(st.IdleKills)},
		{Name: "queries_total", Value: int64(st.Queries)},
		{Name: "queries_in_flight", Value: int64(st.InFlightQueries)},
		{Name: "queries_failed", Value: int64(st.QueryErrors)},
		{Name: "queries_cancelled", Value: int64(st.CancelledQueries)},
		{Name: "queries_cache_hits", Value: int64(st.CacheHits)},
		{Name: "rows_streamed", Value: int64(st.RowsStreamed)},
		{Name: "bytes_written", Value: int64(st.BytesWritten)},
	}
	for i, n := range st.LatencyBuckets {
		pairs = append(pairs, wire.StatPair{Name: latencyBucketName(i), Value: int64(n)})
	}
	return pairs
}

// connStats is one connection's counter set (atomics, same rationale
// as serverStats); surfaced by the SHOW CONNS virtual table.
type connStats struct {
	queries  atomic.Uint64
	rows     atomic.Uint64
	bytesOut atomic.Uint64
	inFlight atomic.Int32
}

// showColumns and the builders below implement the SHOW virtual
// tables: introspection queryable over the normal protocol, streamed
// with the same RowHeader/RowBatch/Done frames as any result set.
//
// SHOW STATS  — the server counter snapshot (stat, value)
// SHOW CONNS  — per-connection counters (conn, remote, ...)
// SHOW TABLES — catalog: name, rows, write epoch, index count
// SHOW POOL   — buffer pool: frames, pinned, hits, misses
// SHOW CACHE  — result cache counters (all zero when disabled)
// SHOW WAL    — durability: durable flag, current WAL segment

// parseShow recognizes a SHOW statement; ok is false for anything
// else (which then takes the normal query path).
func parseShow(sql string) (target string, ok bool) {
	fields := strings.Fields(strings.ToLower(strings.TrimRight(strings.TrimSpace(sql), "; \t\r\n")))
	if len(fields) != 2 || fields[0] != "show" {
		return "", false
	}
	return fields[1], true
}

// kv builds one (stat, value) row.
func kv(name string, v int64) []dsdb.Value {
	return []dsdb.Value{dsdb.NewStr(name), dsdb.NewInt(v)}
}

// showRows builds the named virtual table. An unknown target returns
// an error that is reported as a query-level failure (the session
// survives, like any bad SQL).
func (s *Server) showRows(target string) (cols []string, rows [][]dsdb.Value, err error) {
	switch target {
	case "stats":
		cols = []string{"stat", "value"}
		for _, p := range s.Stats().Pairs() {
			rows = append(rows, kv(p.Name, p.Value))
		}
	case "conns":
		cols = []string{"conn", "remote", "queries", "rows", "bytes", "in_flight"}
		s.mu.Lock()
		conns := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })
		for _, c := range conns {
			rows = append(rows, []dsdb.Value{
				dsdb.NewInt(int64(c.id)),
				dsdb.NewStr(c.nc.RemoteAddr().String()),
				dsdb.NewInt(int64(c.stats.queries.Load())),
				dsdb.NewInt(int64(c.stats.rows.Load())),
				dsdb.NewInt(int64(c.stats.bytesOut.Load())),
				dsdb.NewInt(int64(c.stats.inFlight.Load())),
			})
		}
	case "tables":
		cols = []string{"table", "rows", "epoch", "indexes"}
		for _, t := range s.db.TableStats() {
			rows = append(rows, []dsdb.Value{
				dsdb.NewStr(t.Name),
				dsdb.NewInt(int64(t.Rows)),
				dsdb.NewInt(int64(t.Epoch)),
				dsdb.NewInt(int64(t.Indexes)),
			})
		}
	case "pool":
		cols = []string{"stat", "value"}
		p := s.db.PoolStats()
		rows = [][]dsdb.Value{
			kv("frames", int64(p.Frames)),
			kv("pinned", int64(p.Pinned)),
			kv("hits", int64(p.Hits)),
			kv("misses", int64(p.Misses)),
		}
	case "cache":
		cols = []string{"stat", "value"}
		st, enabled := s.db.ResultCacheStats()
		e := int64(0)
		if enabled {
			e = 1
		}
		rows = [][]dsdb.Value{
			kv("enabled", e),
			kv("hits", int64(st.Hits)),
			kv("misses", int64(st.Misses)),
			kv("entries", int64(st.Entries)),
			kv("used_bytes", st.UsedBytes),
			kv("max_bytes", st.MaxBytes),
			kv("evictions", int64(st.Evictions)),
			kv("invalidations", int64(st.Invalidations)),
			kv("expirations", int64(st.Expirations)),
			kv("admission_rejects", int64(st.AdmissionRejects)),
		}
	case "wal":
		cols = []string{"stat", "value"}
		w := s.db.WALStats()
		d := int64(0)
		if w.Durable {
			d = 1
		}
		rows = [][]dsdb.Value{
			kv("durable", d),
			kv("seq", int64(w.Seq)),
		}
	default:
		return nil, nil, fmt.Errorf("unknown SHOW target %q (have stats, conns, tables, pool, cache, wal)", target)
	}
	return cols, rows, nil
}
