package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/obs"
	"repro/dsdb/server"
)

// fakeClock is a settable clock for deterministic span totals.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// syncBuffer is a goroutine-safe log sink (the slow logger fires on
// connection handler goroutines while the test reads it).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// fetchShow runs one SHOW query over the wire and renders the result
// as the tab-separated table the goldens pin.
func fetchShow(t *testing.T, addr, target string) string {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Query(context.Background(), "show "+target)
	if err != nil {
		t.Fatalf("show %s: %v", target, err)
	}
	var b strings.Builder
	b.WriteString(strings.Join(rows.Columns(), "\t") + "\n")
	for rows.Next() {
		vals := rows.Values()
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.String()
		}
		b.WriteString(strings.Join(parts, "\t") + "\n")
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("show %s stream: %v", target, err)
	}
	return b.String()
}

func checkGolden(t *testing.T, got, goldenFile string) {
	t.Helper()
	path := filepath.Join("testdata", goldenFile)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestShowQueriesAndSlowGolden pins the SHOW QUERIES / SHOW SLOW
// virtual tables' shape with spans recorded under a fake clock, so
// every duration column is deterministic. The spans are injected
// through the same tracer API the query path uses (Begin/Add/End with
// the exec clamp), not by poking rings directly.
func TestShowQueriesAndSlowGolden(t *testing.T) {
	db, _, addr := testServer(t)
	tr := db.Obs()
	clk := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	tr.SetNow(clk.Now)
	tr.SetSlowThreshold(30 * time.Millisecond)

	sp := tr.Begin("Q1", "select a from t")
	clk.Advance(10 * time.Millisecond)
	sp.Add(obs.StagePlan, time.Millisecond)
	sp.Add(obs.StageExec, 7*time.Millisecond)
	sp.Add(obs.StageNet, 2*time.Millisecond)
	sp.AddRows(3)
	sp.End()

	sp = tr.Begin("Q1", "select a from t")
	clk.Advance(300 * time.Microsecond)
	sp.Add(obs.StageCache, 200*time.Microsecond)
	sp.SetCacheHit()
	sp.AddRows(3)
	sp.End()

	// The slow one: over the 30ms threshold, with IO/WAL time that the
	// exec clamp must subtract (40ms raw exec − 5ms io − 1ms wal).
	sp = tr.Begin("", "select broken")
	clk.Advance(50 * time.Millisecond)
	sp.Add(obs.StagePlan, 2*time.Millisecond)
	sp.Add(obs.StageExec, 40*time.Millisecond)
	sp.Add(obs.StageIO, 5*time.Millisecond)
	sp.Add(obs.StageWAL, time.Millisecond)
	sp.SetTopOp("Seq Scan on t")
	sp.SetErr(errors.New("boom"))
	sp.End()

	checkGolden(t, fetchShow(t, addr, "queries"), "show_queries.golden")
	checkGolden(t, fetchShow(t, addr, "slow"), "show_slow.golden")
}

// TestSlowQueryE2E serves a real TPC-D query with a threshold every
// query beats, and checks the full slow path: the slow ring holds the
// record with nonzero exec-stage time, the structured log line went
// out, and the query id the client got in its Done frame is the id in
// the ring. Run under -race this also exercises logger/ring
// concurrency against the serving goroutines.
func TestSlowQueryE2E(t *testing.T) {
	db, _, addr := testServer(t, server.WithSlowQueryThreshold(time.Nanosecond))
	var buf syncBuffer
	db.Obs().SetSlowLogger(log.New(&buf, "", 0))

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q, _ := dsdb.TPCDQuery(3)
	rows, err := c.QueryLabeled(context.Background(), "slowtest", q)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	qid := rows.QueryID()
	if qid == 0 {
		t.Fatal("Done frame carried query id 0; want the server-assigned id")
	}

	// The span ends (and the record lands) just after the Done frame
	// the client already saw, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var rec *obs.Record
		for _, r := range db.Obs().Slow() {
			if r.ID == qid {
				rec = &r
				break
			}
		}
		if rec != nil {
			if rec.Label != "slowtest" {
				t.Fatalf("slow record label = %q, want slowtest", rec.Label)
			}
			if rec.Stages[obs.StageExec] <= 0 {
				t.Fatalf("slow record exec stage = %v, want > 0 (stages %v)", rec.Stages[obs.StageExec], rec.Stages)
			}
			if rec.Total <= 0 {
				t.Fatalf("slow record total = %v, want > 0", rec.Total)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query %d never appeared in the slow ring; slow=%v", qid, db.Obs().Slow())
		}
		time.Sleep(time.Millisecond)
	}
	logged := buf.String()
	if !strings.Contains(logged, fmt.Sprintf("qid=%d", qid)) || !strings.Contains(logged, `label="slowtest"`) {
		t.Fatalf("slow log missing the query's line:\n%s", logged)
	}
}

// TestStageSumCoversTotal pins the tentpole's accounting criterion:
// for a served TPC-D query, the per-stage durations must sum to at
// least 90%% of the span's end-to-end total — the stages are a
// decomposition of the latency, not loosely-related samples. Best of
// a few runs guards against scheduler-noise flakes.
func TestStageSumCoversTotal(t *testing.T) {
	db, _, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q, _ := dsdb.TPCDQuery(3)

	best := 0.0
	for attempt := 0; attempt < 3 && best < 0.9; attempt++ {
		rows, err := c.QueryLabeled(context.Background(), "covertest", q)
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		qid := rows.QueryID()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			found := false
			for _, r := range db.Obs().Recent() {
				if r.ID != qid {
					continue
				}
				found = true
				var sum time.Duration
				for _, d := range r.Stages {
					sum += d
				}
				if ratio := float64(sum) / float64(r.Total); ratio > best {
					best = ratio
					t.Logf("attempt %d: stages sum %v of total %v (%.1f%%)", attempt, sum, r.Total, 100*ratio)
				}
			}
			if found {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	if best < 0.9 {
		t.Fatalf("stage durations cover only %.1f%% of the served total; want >= 90%%", 100*best)
	}
}

// TestMetricsEndpoint scrapes NewMetricsMux's /metrics and asserts
// the Prometheus text format: counter/gauge types for the scalar
// series, real cumulative histograms for latency and stages, and a
// mounted pprof index.
func TestMetricsEndpoint(t *testing.T) {
	db, srv, addr := testServer(t)
	_ = db
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(context.Background(), "select count(*) from region")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	ts := httptest.NewServer(server.NewMetricsMux(srv))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE dsdb_queries_total counter",
		"# TYPE dsdb_conns_active gauge",
		"# TYPE dsdb_queries_in_flight gauge",
		"# TYPE dsdb_uptime_seconds gauge",
		"# TYPE dsdb_rows_streamed counter",
		"# TYPE dsdb_buffer_pool_hits_total counter",
		"# TYPE dsdb_buffer_pool_misses_total counter",
		"# TYPE dsdb_wal_appends_total counter",
		"# TYPE dsdb_wal_fsyncs_total counter",
		"# TYPE dsdb_query_latency_seconds histogram",
		"# TYPE dsdb_query_stage_seconds histogram",
		"# TYPE dsdb_go_goroutines gauge",
		"# TYPE dsdb_go_heap_alloc_bytes gauge",
		"# TYPE dsdb_go_gc_pause_seconds_total counter",
		`dsdb_query_latency_seconds_bucket{le="+Inf"} `,
		`dsdb_query_stage_seconds_bucket{stage="exec",le="+Inf"} `,
		"dsdb_query_latency_seconds_count 1",
		"dsdb_query_stage_seconds_sum{stage=\"exec\"} ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
	if m := regexp.MustCompile(`(?m)^dsdb_queries_total (\d+)$`).FindStringSubmatch(text); m == nil || m[1] == "0" {
		t.Errorf("dsdb_queries_total missing or zero:\n%s", text)
	}
	// The flat wire-frame pairs must NOT leak: histograms replace them.
	if strings.Contains(text, "dsdb_lat_") || strings.Contains(text, "dsdb_stage_") {
		t.Errorf("/metrics leaks flat lat_/stage_ pairs:\n%s", text)
	}
	// testServer runs without a result cache: its series must not
	// appear as misleading zeros.
	if strings.Contains(text, "dsdb_result_cache_") {
		t.Errorf("/metrics exports result-cache series on a cacheless server:\n%s", text)
	}
	// Same convention for workload capture: a server running without
	// -capture-dir must not export dead capture counters.
	if strings.Contains(text, "dsdb_capture_") {
		t.Errorf("/metrics exports capture series on a capture-less server:\n%s", text)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

// TestHealthAndReadyEndpoints covers the orchestration probes on the
// metrics mux: /healthz answers ok whenever the process responds at
// all, /readyz answers 200 only while the server is accepting and not
// draining — before Serve it must refuse with 503 so a load balancer
// never routes to a listener that is not up yet.
func TestHealthAndReadyEndpoints(t *testing.T) {
	get := func(ts *httptest.Server, path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	_, srv, _ := testServer(t)
	ts := httptest.NewServer(server.NewMetricsMux(srv))
	defer ts.Close()
	if code, body := get(ts, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get(ts, "/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("/readyz = %d %q, want 200 ready", code, body)
	}

	// A server that was never started: healthy (the process is up) but
	// not ready (no listener to route to).
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	idle := httptest.NewServer(server.NewMetricsMux(server.New(db)))
	defer idle.Close()
	if code, _ := get(idle, "/healthz"); code != http.StatusOK {
		t.Fatalf("idle /healthz = %d, want 200", code)
	}
	if code, _ := get(idle, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("idle /readyz = %d, want 503", code)
	}
}

// TestStatsUptimeAndStagePairs covers the satellite fix: the stats
// snapshot reports uptime and in-flight queries, and the wire pairs
// carry the histogram bucket labels (bounds ride in the names) and
// the per-stage aggregates.
func TestStatsUptimeAndStagePairs(t *testing.T) {
	_, srv, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Query(context.Background(), "select count(*) from region")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Uptime <= 0 {
		t.Fatalf("uptime = %v, want > 0", st.Uptime)
	}
	if st.InFlightQueries != 0 {
		t.Fatalf("in-flight = %d after completion, want 0", st.InFlightQueries)
	}
	if st.Latency.Count == 0 {
		t.Fatal("latency histogram recorded nothing")
	}
	wireStats, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wireStats.Get("uptime_seconds"); !ok {
		t.Error("stats pairs missing uptime_seconds")
	}
	if _, ok := wireStats.Get("queries_in_flight"); !ok {
		t.Error("stats pairs missing queries_in_flight")
	}
	// One pair per latency bucket, named for its bound.
	for i := 0; i < obs.NumBuckets; i++ {
		if _, ok := wireStats.Get("lat_" + obs.BucketLabel(i)); !ok {
			t.Errorf("stats pairs missing lat_%s", obs.BucketLabel(i))
		}
	}
	count, ok := wireStats.Get("stage_exec_count")
	if !ok || count == 0 {
		t.Errorf("stage_exec_count = %d, %v; want nonzero", count, ok)
	}
	if total, ok := wireStats.Get("stage_exec_total_ns"); !ok || total <= 0 {
		t.Errorf("stage_exec_total_ns = %d, %v; want positive", total, ok)
	}
}
