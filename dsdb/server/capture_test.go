package server_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/load"
	"repro/dsdb/server"
	"repro/dsdb/wcap"
)

// TestCaptureReplayByteIdentical is the tentpole's end-to-end check:
// a 3-client × 12-query TPC-D run against a capturing server must be
// recorded in full (zero dropped records), and replaying the capture
// in-process must reproduce every result set byte-identically to the
// in-process baseline — the capture really is the workload, not a
// lossy sketch of it. Run under -race this also hammers the capture
// hot path (three handler goroutines feeding one writer) for data
// races.
func TestCaptureReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	w, err := wcap.Open(dir, wcap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, srv, addr := testServer(t, server.WithCapture(w))

	// In-process baseline, keyed by SQL (the form the capture stores).
	baseline := make(map[string]*dsdb.Result)
	var baselineRows int64
	qns := dsdb.TPCDQueryNumbers()
	for _, qn := range qns {
		q, _ := dsdb.TPCDQuery(qn)
		res, err := db.Exec(context.Background(), q)
		if err != nil {
			t.Fatalf("baseline Q%d: %v", qn, err)
		}
		baseline[q] = res
		baselineRows += int64(len(res.Rows))
	}

	// Phase 1: serve. Three concurrent wire clients, each running the
	// full 12-query TPC-D sweep.
	const K = 3
	var wg sync.WaitGroup
	errs := make([]error, K)
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[k] = err
				return
			}
			defer c.Close()
			for _, qn := range qns {
				q, _ := dsdb.TPCDQuery(qn)
				rows, err := c.QueryLabeled(context.Background(), fmt.Sprintf("Q%d", qn), q)
				if err != nil {
					errs[k] = fmt.Errorf("client %d Q%d: %w", k, qn, err)
					return
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					errs[k] = fmt.Errorf("client %d Q%d stream: %w", k, qn, err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", k, err)
		}
	}

	// Every served query was offered to the capture, none dropped. The
	// handler captures just after flushing the Done frame the client
	// already saw, so poll briefly for the last records.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if !st.CaptureEnabled {
			t.Fatal("stats say capture is disabled on a capturing server")
		}
		if st.CaptureRecords == K*uint64(len(qns)) && st.CaptureDropped == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capture counters: records=%d dropped=%d, want %d/0",
				st.CaptureRecords, st.CaptureDropped, K*len(qns))
		}
		time.Sleep(time.Millisecond)
	}

	// Phase 2: load the capture back. Close flushes and syncs; a clean
	// close with zero IO errors is part of the contract.
	if err := w.Close(); err != nil {
		t.Fatalf("closing capture: %v", err)
	}
	recs, err := wcap.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != K*len(qns) {
		t.Fatalf("loaded %d records, want %d", len(recs), K*len(qns))
	}
	perSession := make(map[uint32]int)
	for _, r := range recs {
		perSession[r.Session]++
		want, ok := baseline[r.SQL]
		if !ok {
			t.Fatalf("capture holds unknown SQL %q", r.SQL)
		}
		if r.Rows != uint64(len(want.Rows)) {
			t.Fatalf("record %s/%d: rows %d, want %d", r.Label, r.Session, r.Rows, len(want.Rows))
		}
		if r.Latency <= 0 {
			t.Fatalf("record %s/%d: non-positive latency %v", r.Label, r.Session, r.Latency)
		}
		if r.Bytes == 0 && len(want.Rows) > 0 {
			t.Fatalf("record %s/%d: zero bytes for %d rows", r.Label, r.Session, len(want.Rows))
		}
		if r.Err != wcap.OK {
			t.Fatalf("record %s/%d: error class %v", r.Label, r.Session, r.Err)
		}
	}
	if len(perSession) != K {
		t.Fatalf("capture spans %d sessions, want %d (%v)", len(perSession), K, perSession)
	}
	for id, n := range perSession {
		if n != len(qns) {
			t.Fatalf("session %d recorded %d queries, want %d", id, n, len(qns))
		}
	}

	// Phase 3: replay in-process, byte-comparing every replayed result
	// set against the baseline. The Runner override materializes each
	// query exactly like the baseline did.
	var mu sync.Mutex
	var mismatches []string
	runner := func(ctx context.Context, label, sql string) (int64, bool, error) {
		res, err := db.Exec(ctx, sql)
		if err != nil {
			return 0, false, err
		}
		if want := baseline[sql]; !reflect.DeepEqual(res, want) {
			mu.Lock()
			mismatches = append(mismatches, label)
			mu.Unlock()
		}
		return int64(len(res.Rows)), false, nil
	}
	sum, err := load.Replay(context.Background(), load.ReplayParams{Records: recs, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) > 0 {
		t.Fatalf("replayed results differ from baseline for %v", mismatches)
	}
	if sum.Queries != K*len(qns) || sum.Skipped != 0 || sum.Sessions != K {
		t.Fatalf("replay summary: %+v", sum)
	}
	if sum.Rows != K*baselineRows {
		t.Fatalf("replayed %d rows, want %d", sum.Rows, K*baselineRows)
	}
	// The recorded latency distribution came along for the comparison.
	if sum.RecordedLat.Max <= 0 {
		t.Fatalf("recorded latency max %v, want > 0", sum.RecordedLat.Max)
	}
}

// TestCaptureRecordsErrorsAndShow pins what lands in the capture
// beyond happy-path queries: a failed query is recorded with its
// error class (replay skips it; the capture still tells the whole
// story), and SHOW introspection is recorded like any other query.
func TestCaptureRecordsErrorsAndShow(t *testing.T) {
	dir := t.TempDir()
	w, err := wcap.Open(dir, wcap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, addr := testServer(t, server.WithCapture(w))
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	drain := func(sql string) error {
		rows, err := c.Query(context.Background(), sql)
		if err != nil {
			return err
		}
		for rows.Next() {
		}
		return rows.Err()
	}
	if err := drain("select count(*) from region"); err != nil {
		t.Fatal(err)
	}
	if err := drain("select nothing from nowhere"); err == nil {
		t.Fatal("bogus query succeeded")
	}
	if err := drain("show stats"); err != nil {
		t.Fatal(err)
	}

	// The writer has its own goroutine; poll until all three records
	// made it to disk or the deadline passes.
	var recs []wcap.Record
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := w.Stats(); st.Records == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capture never saw 3 records: %+v", w.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err = wcap.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d records, want 3", len(recs))
	}
	var sawErr, sawShow, sawOK bool
	for _, r := range recs {
		switch {
		case r.SQL == "select nothing from nowhere":
			sawErr = true
			if r.Err != wcap.ErrQuery {
				t.Fatalf("failed query recorded with class %v, want ErrQuery", r.Err)
			}
		case r.SQL == "show stats":
			sawShow = true
			if r.Err != wcap.OK || r.Rows == 0 {
				t.Fatalf("show record: %+v", r)
			}
		case r.SQL == "select count(*) from region":
			sawOK = true
			if r.Err != wcap.OK || r.Rows != 1 {
				t.Fatalf("ok record: %+v", r)
			}
		}
	}
	if !sawErr || !sawShow || !sawOK {
		t.Fatalf("capture missing records: err=%v show=%v ok=%v (%v)", sawErr, sawShow, sawOK, recs)
	}
}
