package server_test

import (
	"context"
	"net"
	"reflect"
	"testing"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/server"
)

// TestServedCacheHitAttribution runs the served acceptance slice of
// the result-cache tentpole: against a server whose DB carries a
// result cache, a repeated query is answered byte-identical to its
// first run, the Done frame carries the cache-hit flag (surfaced as
// client Rows.CacheHit), a hit from a *different* connection shares
// the same cache, and a write to a referenced table turns the next
// run back into an attributed miss with fresh data.
func TestServedCacheHitAttribution(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42), dsdb.WithResultCache(64<<20))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	addr := ln.Addr().String()

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	ctx := context.Background()
	q, _ := dsdb.TPCDQuery(6)

	fetch := func(c *client.DB) (*dsdb.Result, bool) {
		t.Helper()
		rows, err := c.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		res := &dsdb.Result{Columns: rows.Columns()}
		for rows.Next() {
			res.Rows = append(res.Rows, rows.Values())
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return res, rows.CacheHit()
	}

	first, hit := fetch(c1)
	if hit {
		t.Fatal("first execution reported a cache hit")
	}
	second, hit := fetch(c1)
	if !hit {
		t.Fatal("repeat execution not attributed as a cache hit")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cache hit not byte-identical to the first run")
	}

	// A different connection shares the DB-wide cache.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	third, hit := fetch(c2)
	if !hit || !reflect.DeepEqual(first, third) {
		t.Fatalf("second connection: hit=%v, identical=%v; want true/true", hit, reflect.DeepEqual(first, third))
	}

	// Writing to lineitem (Q6's only table) invalidates the entry:
	// the next served run misses and reflects the new row.
	row := append([]dsdb.Value(nil), mkLineitemRow(t, db)...)
	if err := db.Insert("lineitem", row...); err != nil {
		t.Fatal(err)
	}
	fourth, hit := fetch(c1)
	if hit {
		t.Fatal("post-insert run still served from cache (stale!)")
	}
	if reflect.DeepEqual(fourth, first) {
		t.Fatal("post-insert run did not reflect the inserted row")
	}
	fifth, hit := fetch(c2)
	if !hit || !reflect.DeepEqual(fourth, fifth) {
		t.Fatalf("post-insert repeat: hit=%v identical=%v; want true/true", hit, reflect.DeepEqual(fourth, fifth))
	}
}

// mkLineitemRow builds one lineitem row that passes Q6's filters
// (shipdate in 1994, discount ~0.06, quantity < 24), so inserting it
// must change Q6's aggregate.
func mkLineitemRow(t *testing.T, db *dsdb.DB) []dsdb.Value {
	t.Helper()
	tbl, ok := db.Engine().Cat.Table("lineitem")
	if !ok {
		t.Fatal("no lineitem table")
	}
	row := make([]dsdb.Value, tbl.Schema.Len())
	for i, col := range tbl.Schema.Columns {
		switch col.Type {
		case dsdb.Int:
			row[i] = dsdb.NewInt(1)
		case dsdb.Float:
			row[i] = dsdb.NewFloat(1000)
		case dsdb.Str:
			row[i] = dsdb.NewStr("x")
		case dsdb.Date:
			row[i] = dsdb.NewDate(dsdb.MakeDate(1994, 6, 1))
		default:
			row[i] = dsdb.NewNull()
		}
		switch col.Name {
		case "l_quantity":
			row[i] = dsdb.NewFloat(10)
		case "l_discount":
			row[i] = dsdb.NewFloat(0.06)
		case "l_extendedprice":
			row[i] = dsdb.NewFloat(1000)
		}
	}
	return row
}
