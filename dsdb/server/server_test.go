package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/server"
	"repro/dsdb/wire"
)

// testServer starts a server over a freshly loaded TPC-D database and
// returns its address. Everything is torn down with the test.
func testServer(t *testing.T, opts ...server.Option) (*dsdb.DB, *server.Server, string) {
	t.Helper()
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005), dsdb.WithSeed(42))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return db, srv, ln.Addr().String()
}

// TestServedResultsByteIdentical is the headline end-to-end check: K
// concurrent wire clients each run the paper's TPC-D test mix and
// every result set must be byte-identical to the in-process dsdb.DB
// baseline — same columns, same rows, same order, same Value structs
// bit for bit. Run under -race this also hammers the server's
// session concurrency.
func TestServedResultsByteIdentical(t *testing.T) {
	db, _, addr := testServer(t)

	// In-process baseline, query by query.
	baseline := make(map[int]*dsdb.Result)
	for _, qn := range dsdb.TPCDQueryNumbers() {
		q, _ := dsdb.TPCDQuery(qn)
		res, err := db.Exec(context.Background(), q)
		if err != nil {
			t.Fatalf("baseline Q%d: %v", qn, err)
		}
		baseline[qn] = res
	}

	const K = 3
	var wg sync.WaitGroup
	errs := make([]error, K)
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[k] = err
				return
			}
			defer c.Close()
			for _, qn := range dsdb.TPCDQueryNumbers() {
				q, _ := dsdb.TPCDQuery(qn)
				res, err := c.Exec(context.Background(), q)
				if err != nil {
					errs[k] = fmt.Errorf("client %d Q%d: %w", k, qn, err)
					return
				}
				want := baseline[qn]
				if !reflect.DeepEqual(res.Columns, want.Columns) {
					errs[k] = fmt.Errorf("client %d Q%d: columns %v, want %v", k, qn, res.Columns, want.Columns)
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errs[k] = fmt.Errorf("client %d Q%d: %d rows, want %d", k, qn, len(res.Rows), len(want.Rows))
					return
				}
				if !reflect.DeepEqual(res.Rows, want.Rows) {
					errs[k] = fmt.Errorf("client %d Q%d: rows differ from local baseline", k, qn)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestClientCancelMidStream cancels the query context after a few rows
// of a large scan: iteration must end with the context's error, the
// server-side session must resynchronize (the same connection serves
// the next query), and the server must still drain cleanly.
func TestClientCancelMidStream(t *testing.T) {
	_, srv, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := c.Query(ctx, "select l_orderkey, l_extendedprice from lineitem")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	n := 0
	for rows.Next() {
		if n++; n == 3 {
			cancel()
		}
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	rows.Close()

	// The connection must be frame-aligned again: the next query runs.
	var cnt int64
	if err := c.QueryRow(context.Background(), "select count(*) from region").Scan(&cnt); err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if cnt != 5 {
		t.Fatalf("count(*) from region = %d, want 5", cnt)
	}

	// And the server-side session is idle, so shutdown drains cleanly.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown after cancel: %v", err)
	}
}

// TestCancelDuringAggregate cancels a query that does all its work
// inside the first Next() call (a whole-table aggregate produces one
// row at the very end): the Cancel frame cannot be polled between
// rows, so it must reach the executor through the query context
// instead — whether it lands while the query runs (readLoop fires the
// cancel) or before it starts (pendingCancel arms). Either way the
// session must resynchronize.
func TestCancelDuringAggregate(t *testing.T) {
	_, _, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := c.Query(ctx, "select sum(l_extendedprice * (1 - l_discount)) from lineitem, orders where l_orderkey = o_orderkey")
		cancel() // races the server-side execution on purpose
		if err == nil {
			for rows.Next() {
			}
			err = rows.Err()
			rows.Close()
		}
		// The query may have been cancelled (usual) or squeaked through
		// before the Cancel landed (legal); a cancellation must surface
		// as the context's own error wherever it hit the stream.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
		var cnt int64
		if err := c.QueryRow(context.Background(), "select count(*) from region").Scan(&cnt); err != nil {
			t.Fatalf("iteration %d: session broken after cancel: %v", i, err)
		}
		if cnt != 5 {
			t.Fatalf("iteration %d: count = %d, want 5", i, cnt)
		}
	}
}

// TestRowsCloseMidStream abandons a large result set via Close (no
// context cancellation): the connection must resynchronize for reuse.
func TestRowsCloseMidStream(t *testing.T) {
	_, _, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Query(context.Background(), "select l_orderkey, l_extendedprice from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var cnt int64
	if err := c.QueryRow(context.Background(), "select count(*) from nation").Scan(&cnt); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
	if cnt != 25 {
		t.Fatalf("count(*) from nation = %d, want 25", cnt)
	}
}

// TestPrepareOverWire round-trips a server-side prepared statement
// through several executions against the in-process baseline.
func TestPrepareOverWire(t *testing.T) {
	db, _, addr := testServer(t)
	want, err := db.Exec(context.Background(), "select n_name from nation order by n_name limit 3")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stmt, err := c.Prepare("select n_name from nation order by n_name limit 3")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if cols := stmt.Columns(); !reflect.DeepEqual(cols, want.Columns) {
		t.Fatalf("Columns() = %v, want %v", cols, want.Columns)
	}
	for run := 0; run < 3; run++ {
		rows, err := stmt.Query(context.Background())
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		var got [][]dsdb.Value
		for rows.Next() {
			got = append(got, rows.Values())
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		rows.Close()
		if !reflect.DeepEqual(got, want.Rows) {
			t.Fatalf("run %d: rows differ from baseline", run)
		}
	}
	if err := stmt.Close(); err != nil {
		t.Fatalf("stmt.Close: %v", err)
	}
}

// TestQueryErrorKeepsSession checks a failing query reports a typed
// error and leaves the connection usable.
func TestQueryErrorKeepsSession(t *testing.T) {
	_, _, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec(context.Background(), "select x from nosuchtable")
	var ef wire.ErrorFrame
	if !errors.As(err, &ef) || ef.Code != wire.CodeQuery {
		t.Fatalf("bad query error: %v", err)
	}
	if _, err := c.Exec(context.Background(), "select count(*) from region"); err != nil {
		t.Fatalf("query after error: %v", err)
	}
}

// TestConnLimit checks connections beyond WithMaxConns are refused
// with the conn_limit code while admitted ones keep working.
func TestConnLimit(t *testing.T) {
	_, _, addr := testServer(t, server.WithMaxConns(1))
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// Hold the only slot with an in-flight statement so the session is
	// definitely registered server-side.
	if _, err := c1.Exec(context.Background(), "select count(*) from region"); err != nil {
		t.Fatal(err)
	}
	_, err = client.Dial(addr)
	var ef wire.ErrorFrame
	if !errors.As(err, &ef) || ef.Code != wire.CodeConnLimit {
		t.Fatalf("second dial: got %v, want conn_limit error", err)
	}
	if _, err := c1.Exec(context.Background(), "select count(*) from nation"); err != nil {
		t.Fatalf("first session broken by refused second: %v", err)
	}
}

// TestQueryTimeout checks the server-side per-query deadline cancels a
// long scan.
func TestQueryTimeout(t *testing.T) {
	_, _, addr := testServer(t, server.WithQueryTimeout(time.Nanosecond))
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec(context.Background(), "select l_orderkey, l_extendedprice from lineitem")
	if err == nil {
		t.Fatal("query survived a 1ns server-side deadline")
	}
	if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("unexpected timeout error: %v", err)
	}
}

// TestStalePooledConnRetries restarts the server underneath a client
// whose pooled connection the shutdown closed: the next query must
// transparently retry on a fresh dial instead of surfacing the dead
// connection's read error.
func TestStalePooledConnRetries(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	srv1 := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv1.Serve(ln)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(context.Background(), "select count(*) from region"); err != nil {
		t.Fatal(err)
	}
	// Drain the first server: the client's idle pooled conn dies.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv1.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Same address, new server (Go listeners set SO_REUSEADDR).
	srv2 := server.New(db)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()
	var cnt int64
	if err := c.QueryRow(context.Background(), "select count(*) from region").Scan(&cnt); err != nil {
		t.Fatalf("query after server restart: %v", err)
	}
	if cnt != 5 {
		t.Fatalf("count = %d, want 5", cnt)
	}
}

// TestGracefulShutdown checks Shutdown drains an active session at its
// query boundary and Serve returns ErrServerClosed.
func TestGracefulShutdown(t *testing.T) {
	db, err := dsdb.Open(dsdb.WithTPCD(0.0005))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(context.Background(), "select count(*) from region"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// New work is refused after shutdown.
	if _, err := client.Dial(ln.Addr().String()); err == nil {
		t.Fatal("dial after shutdown succeeded")
	}
}
