package server_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
)

// TestExplainAnalyzeOverWire is the serving acceptance for EXPLAIN:
// the annotated operator tree flows to a wire client as ordinary rows
// (no new frames), and the execution's dominant operator lands in the
// server's recent ring under the client-visible query id.
func TestExplainAnalyzeOverWire(t *testing.T) {
	db, _, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q, _ := dsdb.TPCDQuery(3)
	rows, err := c.QueryLabeled(context.Background(), "wire-explain", "explain analyze "+q)
	if err != nil {
		t.Fatal(err)
	}
	if cols := rows.Columns(); len(cols) != 1 || cols[0] != dsdb.ExplainColumn {
		t.Fatalf("EXPLAIN columns over the wire = %v, want [%s]", cols, dsdb.ExplainColumn)
	}
	var lines []string
	for rows.Next() {
		lines = append(lines, rows.Values()[0].S)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	qid := rows.QueryID()
	rows.Close()
	if len(lines) < 3 {
		t.Fatalf("plan tree has %d lines, want a real operator tree:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	annotated := 0
	for _, l := range lines {
		if strings.Contains(l, "actual rows=") {
			annotated++
		}
	}
	if annotated < 3 {
		t.Fatalf("only %d operator lines carry counters:\n%s", annotated, strings.Join(lines, "\n"))
	}

	// The span ends just after the Done frame; poll for its record.
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, r := range db.Obs().Recent() {
			if r.ID != qid {
				continue
			}
			if r.Label != "wire-explain" {
				t.Fatalf("record label = %q, want wire-explain", r.Label)
			}
			if r.TopOp == "" {
				t.Fatal("served ANALYZE record carries no top_op")
			}
			if !strings.Contains(strings.Join(lines, "\n"), r.TopOp) {
				t.Fatalf("top_op %q is not in the served plan:\n%s", r.TopOp, strings.Join(lines, "\n"))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("query %d never reached the recent ring", qid)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExplainPlanOverWire: the non-ANALYZE form serves the bare shape,
// with no counter suffixes.
func TestExplainPlanOverWire(t *testing.T) {
	_, _, addr := testServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q, _ := dsdb.TPCDQuery(6)
	rows, err := c.Query(context.Background(), "explain "+q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		if l := rows.Values()[0].S; strings.Contains(l, "actual rows=") {
			t.Fatalf("plain EXPLAIN line carries runtime counters: %q", l)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestShowWALCounters: the SHOW wal virtual table reports the WAL's
// append and fsync work (zero on this non-durable server, but the rows
// must exist for operators to find).
func TestShowWALCounters(t *testing.T) {
	_, _, addr := testServer(t)
	out := fetchShow(t, addr, "wal")
	for _, stat := range []string{"durable", "seq", "appends", "fsyncs"} {
		if !strings.Contains(out, stat+"\t") {
			t.Errorf("SHOW wal misses %q:\n%s", stat, out)
		}
	}
}
