package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"

	"repro/dsdb/obs"
)

// NewMetricsMux builds the HTTP mux dsdbd serves on -metrics-addr:
//
//	/metrics      — the server's counters and histograms in the
//	                Prometheus text exposition format
//	/healthz      — liveness: 200 whenever the process can answer
//	/readyz       — readiness: 200 while serving and not draining,
//	                503 otherwise (load balancers stop routing here
//	                the moment Shutdown begins)
//	/debug/pprof/ — the standard net/http/pprof profiling handlers
//
// The pprof handlers are registered explicitly (not via the package's
// blank-import side effect on http.DefaultServeMux), so the returned
// mux is self-contained and the process's default mux stays clean.
func NewMetricsMux(s *Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// metricsGauges names the stats pairs whose value can go down (or is
// a point-in-time reading); everything else exported from Pairs is a
// monotonic counter.
var metricsGauges = map[string]bool{
	"uptime_seconds":    true,
	"conns_active":      true,
	"queries_in_flight": true,
}

// serveMetrics renders the Stats snapshot in the Prometheus text
// exposition format. Scalar pairs become dsdb_<name> counters/gauges;
// the latency and per-stage histograms are emitted as real Prometheus
// histograms (cumulative le buckets, _sum in seconds, _count) rather
// than the flat lat_/stage_ pairs the wire Stats frame carries.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	for _, p := range st.Pairs() {
		if strings.HasPrefix(p.Name, "lat_") || strings.HasPrefix(p.Name, "stage_") {
			continue // re-exported below as proper histograms
		}
		typ := "counter"
		if metricsGauges[p.Name] {
			typ = "gauge"
		}
		fmt.Fprintf(&b, "# TYPE dsdb_%s %s\n", p.Name, typ)
		fmt.Fprintf(&b, "dsdb_%s %d\n", p.Name, p.Value)
	}
	// Kernel counters beyond the serving stats: buffer-pool traffic,
	// result-cache outcomes and WAL durability work, so one scrape
	// covers the full storage hierarchy (satellite of the EXPLAIN PR).
	p := s.db.PoolStats()
	writeCounter(&b, "dsdb_buffer_pool_hits_total", int64(p.Hits))
	writeCounter(&b, "dsdb_buffer_pool_misses_total", int64(p.Misses))
	if cst, enabled := s.db.ResultCacheStats(); enabled {
		writeCounter(&b, "dsdb_result_cache_hits_total", int64(cst.Hits))
		writeCounter(&b, "dsdb_result_cache_misses_total", int64(cst.Misses))
		writeCounter(&b, "dsdb_result_cache_evictions_total", int64(cst.Evictions))
		writeCounter(&b, "dsdb_result_cache_invalidations_total", int64(cst.Invalidations))
		writeCounter(&b, "dsdb_result_cache_expirations_total", int64(cst.Expirations))
	}
	wst := s.db.WALStats()
	writeCounter(&b, "dsdb_wal_appends_total", int64(wst.Appends))
	writeCounter(&b, "dsdb_wal_fsyncs_total", int64(wst.Fsyncs))
	// Workload-capture counters, present only while a capture is
	// attached (same presence-means-enabled convention as the result
	// cache above). The dropped counter is the one to alert on: a
	// nonzero rate means the capture disk is shedding records.
	if st.CaptureEnabled {
		writeCounter(&b, "dsdb_capture_records_total", int64(st.CaptureRecords))
		writeCounter(&b, "dsdb_capture_dropped_total", int64(st.CaptureDropped))
		writeCounter(&b, "dsdb_capture_sampled_out_total", int64(st.CaptureSampledOut))
		writeCounter(&b, "dsdb_capture_bytes_total", int64(st.CaptureBytes))
	}
	// Go runtime health: enough to spot a goroutine leak, heap growth
	// or GC pressure from the same scrape that carries the serving
	// stats, without pulling in a metrics dependency.
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	writeGauge(&b, "dsdb_go_goroutines", int64(runtime.NumGoroutine()))
	writeGauge(&b, "dsdb_go_heap_alloc_bytes", int64(mem.HeapAlloc))
	fmt.Fprintf(&b, "# TYPE dsdb_go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(&b, "dsdb_go_gc_pause_seconds_total %g\n", float64(mem.PauseTotalNs)/1e9)
	writeHistSeries(&b, "dsdb_query_latency_seconds", "", st.Latency)
	fmt.Fprintf(&b, "# TYPE dsdb_query_stage_seconds histogram\n")
	for i, h := range st.Stages {
		writeHistSeries(&b, "dsdb_query_stage_seconds", fmt.Sprintf("stage=%q", obs.Stage(i).String()), h)
	}
	w.Write([]byte(b.String()))
}

// writeCounter emits one monotonic counter series.
func writeCounter(b *strings.Builder, name string, v int64) {
	fmt.Fprintf(b, "# TYPE %s counter\n", name)
	fmt.Fprintf(b, "%s %d\n", name, v)
}

// writeGauge emits one point-in-time gauge series.
func writeGauge(b *strings.Builder, name string, v int64) {
	fmt.Fprintf(b, "# TYPE %s gauge\n", name)
	fmt.Fprintf(b, "%s %d\n", name, v)
}

// writeHistSeries emits one histogram's _bucket/_sum/_count series.
// Prometheus buckets are cumulative; the snapshot's are not, so the
// running total is built here. labels ("" or `k="v"`) are merged with
// the le label.
func writeHistSeries(b *strings.Builder, name, labels string, h obs.HistSnapshot) {
	if labels == "" {
		fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	}
	wrap := func(extra string) string {
		if labels == "" {
			return "{" + extra + "}"
		}
		return "{" + labels + "," + extra + "}"
	}
	plain := ""
	if labels != "" {
		plain = "{" + labels + "}"
	}
	var cum uint64
	for i, n := range h.Counts {
		cum += n
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, wrap(fmt.Sprintf("le=%q", obs.BucketSeconds(i))), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %g\n", name, plain, h.Sum.Seconds())
	fmt.Fprintf(b, "%s_count%s %d\n", name, plain, h.Count)
}
