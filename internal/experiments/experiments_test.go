package experiments

import (
	"strings"
	"testing"
)

// tiny builds the smallest useful setup once for all tests here.
var tinySetup *Setup

func tiny(t *testing.T) *Setup {
	t.Helper()
	if tinySetup == nil {
		s, err := NewSetup(Params{SF: 0.0005, Seed: 7, Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		tinySetup = s
	}
	return tinySetup
}

func TestSetupProducesTraces(t *testing.T) {
	s := tiny(t)
	if s.TrainTrace.Len() == 0 || s.TestTrace.Len() == 0 {
		t.Fatal("empty traces")
	}
	if len(s.TrainTrace.Marks) != 5 {
		t.Fatalf("training marks = %d, want 5 queries", len(s.TrainTrace.Marks))
	}
	if len(s.TestTrace.Marks) != 20 {
		t.Fatalf("test marks = %d, want 10 queries x 2 databases", len(s.TestTrace.Marks))
	}
}

func TestTable1InPaperBallpark(t *testing.T) {
	s := tiny(t)
	fs := s.Table1()
	if fs.PctProcs() < 5 || fs.PctProcs() > 40 {
		t.Fatalf("%%procs = %v, outside plausible band", fs.PctProcs())
	}
	if fs.PctInstrs() < 3 || fs.PctInstrs() > 30 {
		t.Fatalf("%%instrs = %v", fs.PctInstrs())
	}
}

func TestFigure2Monotone(t *testing.T) {
	s := tiny(t)
	pts := s.Figure2()
	if len(pts) < 5 {
		t.Fatal("too few curve points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].CumRefs < pts[i-1].CumRefs {
			t.Fatal("curve not monotone")
		}
	}
}

func TestLayoutsAllValid(t *testing.T) {
	s := tiny(t)
	cc := CacheConfig{CacheBytes: 2048, CFABytes: 512}
	for name, l := range s.Layouts(cc) {
		if err := l.Validate(s.Img.Prog); err != nil {
			t.Errorf("layout %s: %v", name, err)
		}
	}
}

func TestSequentialityOrdering(t *testing.T) {
	s := tiny(t)
	m := s.Sequentiality()
	// The paper's central claim: STC layouts beat the original layout
	// on instructions between taken branches.
	if m["ops"] <= m["orig"] {
		t.Fatalf("ops (%v) must beat orig (%v)", m["ops"], m["orig"])
	}
	if m["auto"] <= m["orig"] {
		t.Fatalf("auto (%v) must beat orig (%v)", m["auto"], m["orig"])
	}
}

func TestFormattersProduceTables(t *testing.T) {
	s := tiny(t)
	if !strings.Contains(FormatTable1(s.Table1()), "Procedures") {
		t.Fatal("Table 1 format")
	}
	if !strings.Contains(FormatTable2(s.Table2()), "Fall-through") {
		t.Fatal("Table 2 format")
	}
	if !strings.Contains(s.FormatFigure2(), "90%") {
		t.Fatal("Figure 2 format")
	}
	if !strings.Contains(FormatReuse(s.Reuse()), "250") {
		t.Fatal("reuse format")
	}
	if !strings.Contains(FormatSequentiality(s.Sequentiality()), "taken branches") {
		t.Fatal("sequentiality format")
	}
}

func TestTable3ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	s := tiny(t)
	rows := s.Table3()
	if len(rows) != len(PaperConfigs()) {
		t.Fatalf("got %d rows", len(rows))
	}
	// Miss rates must not increase with cache size for a fixed layout
	// (compare the first rows of the 1K and 8K groups, orig layout).
	var small, large float64
	for _, r := range rows {
		if r.Config.CacheBytes == 1024 && r.Config.CFABytes == 256 {
			small = r.Miss["orig"]
		}
		if r.Config.CacheBytes == 8192 && r.Config.CFABytes == 1024 {
			large = r.Miss["orig"]
		}
	}
	if large > small {
		t.Fatalf("orig misses grew with cache size: %v -> %v", small, large)
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "victim") {
		t.Fatal("Table 3 format")
	}
}

func TestTable4TraceCacheSynergy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	s := tiny(t)
	ideal, rows := s.Table4()
	// The paper's conclusion: TC+STC beats TC alone.
	if ideal.TCOps <= ideal.TC {
		t.Fatalf("ideal TC+ops (%v) must beat TC (%v)", ideal.TCOps, ideal.TC)
	}
	if len(rows) != len(PaperConfigs()) {
		t.Fatalf("got %d rows", len(rows))
	}
	out := FormatTable4(ideal, rows)
	if !strings.Contains(out, "Ideal") {
		t.Fatal("Table 4 format")
	}
}

func TestAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	s := tiny(t)
	pts := s.AblationThresholds(CacheConfig{CacheBytes: 2048, CFABytes: 512})
	if len(pts) != 9 {
		t.Fatalf("got %d ablation points", len(pts))
	}
	for _, p := range pts {
		if p.IPC <= 0 {
			t.Fatalf("non-positive IPC in ablation: %+v", p)
		}
	}
}
