// Package experiments reproduces every table and figure of the paper's
// evaluation: the locality characterization of Section 4 (Table 1,
// Figure 2, the reuse-distance statistics, Table 2) and the method
// evaluation of Section 7 (Table 3 miss rates, Table 4 fetch
// bandwidth, and the headline sequentiality numbers).
//
// Cache geometry note: the paper's PostgreSQL binary has a ~300 KB
// executed footprint and is evaluated with 8–64 KB i-caches. This
// reproduction's kernel image is proportionally smaller, so cache and
// CFA sizes are scaled by 1/8 (1–8 KB caches) to preserve the
// footprint-to-cache ratios; the trace cache scales from 256 to 64
// entries for the same reason. DESIGN.md and EXPERIMENTS.md document
// the substitution.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/db/engine"
	"repro/internal/db/executor"
	"repro/internal/db/sql"
	"repro/internal/fetch"
	"repro/internal/kernel"
	"repro/internal/layout"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/tpcd"
	"repro/internal/trace"
)

// Setup holds everything the experiments need: the kernel image, the
// training profile and the test trace.
type Setup struct {
	Img        *kernel.Image
	TrainTrace *trace.Trace
	TestTrace  *trace.Trace
	Profile    *profile.Profile // from the training trace
	SF         float64
}

// Params configures a full experiment run.
type Params struct {
	SF       float64
	Seed     int64
	Validate bool // validate traces online (slower)
	// Parallelism > 1 runs the workloads with partition-parallel
	// scans: the traces then measure the coordinator's instruction
	// stream, a different fetch scenario from the serial plans.
	Parallelism int
}

// DefaultParams is the laptop-scale default.
func DefaultParams() Params { return Params{SF: 0.002, Seed: 42, Validate: false} }

// NewSetup builds both databases, runs the training set (Q3,4,5,6,9 on
// the Btree database) and the test set (Q2,3,4,6,11,12,13,14,15,17 on
// both databases), and computes the training profile.
func NewSetup(p Params) (*Setup, error) {
	img := kernel.New(kernel.DefaultConfig())

	btreeCfg := tpcd.DefaultConfig()
	btreeCfg.SF = p.SF
	btreeCfg.Seed = p.Seed
	btreeDB, err := tpcd.Build(btreeCfg)
	if err != nil {
		return nil, fmt.Errorf("building btree database: %w", err)
	}
	hashCfg := btreeCfg
	hashCfg.Indexes = 1 // catalog.Hash
	hashDB, err := tpcd.Build(hashCfg)
	if err != nil {
		return nil, fmt.Errorf("building hash database: %w", err)
	}

	runSet := func(db *engine.DB, queries []int, label string, ses *kernel.Session) error {
		c := executor.NewCtx(ses)
		c.Parallelism = p.Parallelism
		for _, qn := range queries {
			q, ok := tpcd.Query(qn)
			if !ok {
				return fmt.Errorf("no query %d", qn)
			}
			ses.Mark(fmt.Sprintf("%s-Q%d", label, qn))
			if _, _, err := sql.Exec(db, c, q); err != nil {
				return fmt.Errorf("%s Q%d: %w", label, qn, err)
			}
			if err := ses.Err(); err != nil {
				return fmt.Errorf("%s Q%d: trace: %w", label, qn, err)
			}
		}
		return nil
	}

	train := img.NewSession(p.Validate)
	if err := runSet(btreeDB, tpcd.TrainingQueries, "train-btree", train); err != nil {
		return nil, err
	}
	test := img.NewSession(p.Validate)
	if err := runSet(btreeDB, tpcd.TestQueries, "test-btree", test); err != nil {
		return nil, err
	}
	if err := runSet(hashDB, tpcd.TestQueries, "test-hash", test); err != nil {
		return nil, err
	}

	return &Setup{
		Img:        img,
		TrainTrace: train.Trace(),
		TestTrace:  test.Trace(),
		Profile:    profile.FromTrace(train.Trace()),
		SF:         p.SF,
	}, nil
}

// ---------- Section 4: locality characterization ----------

// Table1 reproduces the static-vs-executed footprint table.
func (s *Setup) Table1() profile.FootprintStats { return s.Profile.Footprint() }

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(fs profile.FootprintStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: static program elements vs. executed (training set)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %9s\n", "", "Total", "Executed", "Percent")
	fmt.Fprintf(&b, "%-14s %10d %10d %8.1f%%\n", "Procedures", fs.TotalProcs, fs.ExecProcs, fs.PctProcs())
	fmt.Fprintf(&b, "%-14s %10d %10d %8.1f%%\n", "Basic blocks", fs.TotalBlocks, fs.ExecBlocks, fs.PctBlocks())
	fmt.Fprintf(&b, "%-14s %10d %10d %8.1f%%\n", "Instructions", fs.TotalInstrs, fs.ExecInstrs, fs.PctInstrs())
	return b.String()
}

// Figure2Point is one point of the cumulative-reference curve.
type Figure2Point struct {
	Blocks   int
	CumRefs  float64 // fraction 0..1
	PctTotal float64 // Blocks as % of all static blocks
}

// Figure2 samples the cumulative dynamic-reference curve.
func (s *Setup) Figure2() []Figure2Point {
	cum := s.Profile.CumulativeRefs()
	total := s.Img.Prog.NumBlocks()
	var pts []Figure2Point
	for _, n := range []int{1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 400, 600, 800, 1000, 1500} {
		if n > len(cum) {
			break
		}
		pts = append(pts, Figure2Point{
			Blocks:   n,
			CumRefs:  cum[n-1],
			PctTotal: 100 * float64(n) / float64(total),
		})
	}
	return pts
}

// FormatFigure2 renders the curve plus the paper's two checkpoints.
func (s *Setup) FormatFigure2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: cumulative dynamic references by most-popular static blocks\n")
	fmt.Fprintf(&b, "%8s %12s %12s\n", "blocks", "% of static", "% of refs")
	for _, pt := range s.Figure2() {
		fmt.Fprintf(&b, "%8d %11.2f%% %11.1f%%\n", pt.Blocks, pt.PctTotal, 100*pt.CumRefs)
	}
	n90 := s.Profile.BlocksForCoverage(0.90)
	n99 := s.Profile.BlocksForCoverage(0.99)
	fmt.Fprintf(&b, "90%% of references in %d blocks (%.2f%% of static); 99%% in %d (%.2f%%)\n",
		n90, 100*float64(n90)/float64(s.Img.Prog.NumBlocks()),
		n99, 100*float64(n99)/float64(s.Img.Prog.NumBlocks()))
	return b.String()
}

// Reuse reproduces the Section 4.1 temporal-locality statistics: the
// probability that a block of the 75%-coverage popular set is
// re-executed within 100 and 250 instructions.
func (s *Setup) Reuse() profile.ReuseStats {
	set := s.Profile.PopularSet(0.75)
	return profile.Reuse(s.TrainTrace, set, []uint64{100, 250})
}

// FormatReuse renders the reuse statistics.
func FormatReuse(st profile.ReuseStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Temporal locality of the top-75%% popular blocks (Section 4.1)\n")
	for i, th := range st.Thresholds {
		fmt.Fprintf(&b, "P(re-executed < %3d instructions) = %.0f%%\n", th, 100*st.Prob[i])
	}
	return b.String()
}

// Table2 reproduces the block-type/predictability classification.
func (s *Setup) Table2() profile.TypeStats { return s.Profile.TypeBreakdown() }

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(st profile.TypeStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: basic blocks by type (executed static / dynamic / predictable)\n")
	fmt.Fprintf(&b, "%-18s %8s %8s %12s\n", "BB Type", "Static", "Dynamic", "Predictable")
	for _, r := range st.Rows {
		fmt.Fprintf(&b, "%-18s %7.1f%% %7.1f%% %11.0f%%\n",
			r.Class, r.StaticPct, r.DynamicPct, r.PredictablePct)
	}
	fmt.Fprintf(&b, "Overall predictable transitions: %.0f%%\n", st.OverallPct)
	return b.String()
}

// ---------- Section 7: method evaluation ----------

// CacheConfig is one (cache size, CFA size) row of Tables 3/4.
type CacheConfig struct {
	CacheBytes int
	CFABytes   int
}

// PaperConfigs mirrors the paper's 8/16/32/64 KB rows scaled by 1/8.
func PaperConfigs() []CacheConfig {
	return []CacheConfig{
		{1024, 256}, {1024, 512}, {1024, 768},
		{2048, 512}, {2048, 1024}, {2048, 1536},
		{4096, 512}, {4096, 1024}, {4096, 2048}, {4096, 3072},
		{8192, 1024}, {8192, 2048}, {8192, 3072},
	}
}

// stcParams picks sequence-building thresholds from the profile: the
// exec threshold keeps roughly the paper's "most popular blocks"
// notion; the branch threshold is the paper's example value.
func (s *Setup) stcParams(cc CacheConfig) core.Params {
	execTh := s.Profile.DynBlocks / 20000
	if execTh < 4 {
		execTh = 4
	}
	return core.Params{
		ExecThreshold:   execTh,
		BranchThreshold: 0.4,
		CacheBytes:      cc.CacheBytes,
		CFABytes:        cc.CFABytes,
	}
}

// Layouts builds the five code layouts of the paper for one cache
// configuration: orig, P&H, Torrellas, STC-auto and STC-ops.
func (s *Setup) Layouts(cc CacheConfig) map[string]*program.Layout {
	params := s.stcParams(cc)
	return map[string]*program.Layout{
		"orig": program.OriginalLayout(s.Img.Prog),
		"P&H":  layout.PettisHansen(s.Profile),
		"Torr": layout.Torrellas(s.Profile, params),
		"auto": core.BuildFitted("auto", s.Profile, core.AutoSeeds(s.Profile), params),
		"ops": core.BuildFitted("ops", s.Profile,
			core.OpsSeeds(s.Profile, kernel.OpsSeedNames), params),
	}
}

// LayoutNames is the column order of Tables 3/4.
var LayoutNames = []string{"orig", "P&H", "Torr", "auto", "ops"}

// Table3Row is one row of Table 3: miss rates (per 100 instructions)
// for each layout on a direct-mapped cache, plus the hardware
// alternatives (2-way, victim) on the original layout.
type Table3Row struct {
	Config CacheConfig
	Miss   map[string]float64 // per layout
	TwoWay float64            // orig layout, 2-way cache
	Victim float64            // orig layout, direct + 16-line victim
}

// Table3 reproduces the i-cache miss-rate table over the test trace.
func (s *Setup) Table3() []Table3Row {
	configs := PaperConfigs()
	rows := make([]Table3Row, len(configs))
	var wg sync.WaitGroup
	for i, cc := range configs {
		wg.Add(1)
		go func(i int, cc CacheConfig) {
			defer wg.Done()
			row := Table3Row{Config: cc, Miss: make(map[string]float64)}
			layouts := s.Layouts(cc)
			for _, name := range LayoutNames {
				ic := cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes)
				res := fetch.Simulate(s.TestTrace, layouts[name], fetch.DefaultConfig(ic))
				row.Miss[name] = res.MissesPer100Instr()
			}
			orig := layouts["orig"]
			res2 := fetch.Simulate(s.TestTrace, orig,
				fetch.DefaultConfig(cache.NewSetAssoc(cc.CacheBytes, cache.DefaultLineBytes, 2)))
			row.TwoWay = res2.MissesPer100Instr()
			resV := fetch.Simulate(s.TestTrace, orig,
				fetch.DefaultConfig(cache.NewVictim(cc.CacheBytes, cache.DefaultLineBytes, 16)))
			row.Victim = resV.MissesPer100Instr()
			rows[i] = row
		}(i, cc)
	}
	wg.Wait()
	return rows
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: i-cache misses per 100 instructions (test set)\n")
	fmt.Fprintf(&b, "%-11s", "cache/CFA")
	for _, n := range LayoutNames {
		fmt.Fprintf(&b, " %7s", n)
	}
	fmt.Fprintf(&b, " %7s %7s\n", "2-way", "victim")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4dK/%-5.2gK", r.Config.CacheBytes/1024,
			float64(r.Config.CFABytes)/1024)
		for _, n := range LayoutNames {
			fmt.Fprintf(&b, " %7.3f", r.Miss[n])
		}
		fmt.Fprintf(&b, " %7.3f %7.3f\n", r.TwoWay, r.Victim)
	}
	return b.String()
}

// TraceCacheEntries is the scaled trace-cache size (paper: 256).
const TraceCacheEntries = 64

// Table4Row is one row of Table 4: fetch bandwidth (IPC) per layout,
// plus the trace cache alone and combined with the ops layout.
type Table4Row struct {
	Config CacheConfig
	IPC    map[string]float64
	TC     float64 // trace cache + i-cache, orig layout
	TCOps  float64 // trace cache + i-cache, ops layout
}

// Table4 reproduces the fetch-bandwidth table. The Ideal row uses a
// perfect cache.
func (s *Setup) Table4() (ideal Table4Row, rows []Table4Row) {
	// Ideal row: perfect i-cache.
	idealLayouts := s.Layouts(CacheConfig{CacheBytes: 4096, CFABytes: 1024})
	ideal = Table4Row{IPC: make(map[string]float64)}
	for _, name := range LayoutNames {
		res := fetch.Simulate(s.TestTrace, idealLayouts[name], fetch.DefaultConfig(nil))
		ideal.IPC[name] = res.IPC()
	}
	cfgTC := fetch.DefaultConfig(nil)
	cfgTC.TC = cache.NewTraceCache(TraceCacheEntries, 16, 3, 4)
	resTC := fetch.Simulate(s.TestTrace, idealLayouts["orig"], cfgTC)
	ideal.TC = resTC.IPC()
	cfgTC2 := fetch.DefaultConfig(nil)
	cfgTC2.TC = cache.NewTraceCache(TraceCacheEntries, 16, 3, 4)
	resTC2 := fetch.Simulate(s.TestTrace, idealLayouts["ops"], cfgTC2)
	ideal.TCOps = resTC2.IPC()

	configs := PaperConfigs()
	rows = make([]Table4Row, len(configs))
	var wg sync.WaitGroup
	for i, cc := range configs {
		wg.Add(1)
		go func(i int, cc CacheConfig) {
			defer wg.Done()
			row := Table4Row{Config: cc, IPC: make(map[string]float64)}
			layouts := s.Layouts(cc)
			for _, name := range LayoutNames {
				ic := cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes)
				res := fetch.Simulate(s.TestTrace, layouts[name], fetch.DefaultConfig(ic))
				row.IPC[name] = res.IPC()
			}
			// Trace cache backed by the real i-cache.
			cfg := fetch.DefaultConfig(cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes))
			cfg.TC = cache.NewTraceCache(TraceCacheEntries, 16, 3, 4)
			row.TC = fetch.Simulate(s.TestTrace, layouts["orig"], cfg).IPC()
			cfg2 := fetch.DefaultConfig(cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes))
			cfg2.TC = cache.NewTraceCache(TraceCacheEntries, 16, 3, 4)
			row.TCOps = fetch.Simulate(s.TestTrace, layouts["ops"], cfg2).IPC()
			rows[i] = row
		}(i, cc)
	}
	wg.Wait()
	return ideal, rows
}

// FormatTable4 renders Table 4.
func FormatTable4(ideal Table4Row, rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: fetch bandwidth in instructions per cycle (test set, 5-cycle miss penalty)\n")
	fmt.Fprintf(&b, "%-11s", "cache/CFA")
	for _, n := range LayoutNames {
		fmt.Fprintf(&b, " %6s", n)
	}
	fmt.Fprintf(&b, " %6s %7s\n", "TC", "TC+ops")
	fmt.Fprintf(&b, "%-11s", "Ideal")
	for _, n := range LayoutNames {
		fmt.Fprintf(&b, " %6.2f", ideal.IPC[n])
	}
	fmt.Fprintf(&b, " %6.2f %7.2f\n", ideal.TC, ideal.TCOps)
	for _, r := range rows {
		fmt.Fprintf(&b, "%4dK/%-5.2gK", r.Config.CacheBytes/1024,
			float64(r.Config.CFABytes)/1024)
		for _, n := range LayoutNames {
			fmt.Fprintf(&b, " %6.2f", r.IPC[n])
		}
		fmt.Fprintf(&b, " %6.2f %7.2f\n", r.TC, r.TCOps)
	}
	return b.String()
}

// Sequentiality reports the paper's headline metric — instructions
// executed between taken branches — for every layout.
func (s *Setup) Sequentiality() map[string]float64 {
	layouts := s.Layouts(CacheConfig{CacheBytes: 4096, CFABytes: 1024})
	out := make(map[string]float64)
	for _, name := range LayoutNames {
		st := fetch.Sequentiality(s.TestTrace, layouts[name])
		out[name] = st.InstrPerTaken
	}
	return out
}

// FormatSequentiality renders the headline comparison.
func FormatSequentiality(m map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Instructions between taken branches (paper: 8.9 orig -> 22.4 ops)\n")
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-6s %6.1f\n", n, m[n])
	}
	return b.String()
}

// ThresholdPoint is one cell of the ablation sweep.
type ThresholdPoint struct {
	ExecThreshold   uint64
	BranchThreshold float64
	IPC             float64
	MissPer100      float64
}

// AblationThresholds sweeps the STC thresholds (the paper's Section 8
// future-work item: automating threshold selection).
func (s *Setup) AblationThresholds(cc CacheConfig) []ThresholdPoint {
	var pts []ThresholdPoint
	base := s.Profile.DynBlocks
	for _, execDiv := range []uint64{200000, 20000, 2000} {
		for _, branch := range []float64{0.1, 0.4, 0.7} {
			execTh := base / execDiv
			if execTh < 1 {
				execTh = 1
			}
			params := core.Params{
				ExecThreshold:   execTh,
				BranchThreshold: branch,
				CacheBytes:      cc.CacheBytes,
				CFABytes:        cc.CFABytes,
			}
			l := core.Build("stc", s.Profile,
				core.OpsSeeds(s.Profile, kernel.OpsSeedNames), params)
			ic := cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes)
			res := fetch.Simulate(s.TestTrace, l, fetch.DefaultConfig(ic))
			pts = append(pts, ThresholdPoint{
				ExecThreshold:   execTh,
				BranchThreshold: branch,
				IPC:             res.IPC(),
				MissPer100:      res.MissesPer100Instr(),
			})
		}
	}
	return pts
}

// FormatAblation renders the threshold sweep.
func FormatAblation(pts []ThresholdPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: STC thresholds (ops seeds, 4K cache / 1K CFA)\n")
	fmt.Fprintf(&b, "%10s %8s %8s %10s\n", "execThresh", "brThresh", "IPC", "miss/100")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %8.1f %8.2f %10.3f\n",
			p.ExecThreshold, p.BranchThreshold, p.IPC, p.MissPer100)
	}
	return b.String()
}
