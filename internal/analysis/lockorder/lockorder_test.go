package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analyzertest.Run(t, "testdata", lockorder.Analyzer, "buffer", "engine", "qcache", "server", "obs")
}

// TestScratchOutOfOrder pins the acceptance scenario: a deliberate
// out-of-order latch acquisition in a scratch package, nothing else,
// is caught.
func TestScratchOutOfOrder(t *testing.T) {
	analyzertest.Run(t, filepath.Join("testdata", "scratch"), lockorder.Analyzer, "engine")
}
