// Package engine is a scratch stand-in holding one deliberately
// backwards acquisition, pinned so the suite proves lockorder catches
// a fresh out-of-order latch acquisition with no other context.
package engine

import "sync"

type rwLatch struct {
	mu sync.Mutex
}

func (l *rwLatch) lock()   { l.mu.Lock() }
func (l *rwLatch) unlock() { l.mu.Unlock() }

type DB struct {
	closeMu sync.Mutex
	latch   *rwLatch
}

// backwardsClose is close-then-checkpoint written in the wrong order:
// the exclusive latch is taken first, then the close guard — the
// reverse of the ranked closeMu-before-latch order.
func (db *DB) backwardsClose() {
	db.latch.lock()
	defer db.latch.unlock()
	db.closeMu.Lock() // want "engine.closeMu .exclusive. acquired while engine.latch is held .exclusive.: lock-rank order violated"
	db.closeMu.Unlock()
}
