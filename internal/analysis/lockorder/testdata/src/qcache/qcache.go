// Package qcache is a testdata stand-in for the result cache; Cache
// matches the lockrank entry qcache.cache, a leaf.
package qcache

import (
	"sync"

	"buffer"
)

type Cache struct {
	mu   sync.Mutex
	pool *buffer.Manager
}

// badRefill pins a page while holding the cache mutex: qcache.cache
// is a leaf, so the pool acquisition inside Get is out of order. The
// violation crosses a package boundary — only Get's exported fact
// reveals it here.
func (c *Cache) badRefill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool.Get() // want "call to Get may acquire buffer.pool .exclusive. while qcache.cache is held .exclusive.: lock-rank order violated"
}

// legalRefill touches the pool only after the cache mutex is gone.
func (c *Cache) legalRefill() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.pool.Get()
}
