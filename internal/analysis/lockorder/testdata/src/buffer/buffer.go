// Package buffer is a testdata stand-in for the buffer pool: Manager
// matches the lockrank entry buffer.pool by package base name, type
// and field.
package buffer

import "sync"

// Manager mirrors the pool's lock surface: one mutex named mu.
type Manager struct {
	mu     sync.Mutex
	pinned int
}

// Get pins a page under the pool mutex; callers inherit the
// buffer.pool acquisition through Get's exported fact.
func (m *Manager) Get() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pinned++
	return m.pinned
}
