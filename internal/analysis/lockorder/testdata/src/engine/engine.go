// Package engine is a testdata stand-in for the engine package:
// rwLatch and DB match the lockrank entries engine.latch and
// engine.closeMu.
package engine

import (
	"sync"

	"buffer"
)

type rwLatch struct {
	mu      sync.Mutex
	readers int
}

func (l *rwLatch) lock()   { l.mu.Lock() }
func (l *rwLatch) unlock() { l.mu.Unlock() }

func (l *rwLatch) rlock() {
	l.mu.Lock()
	l.readers++
	l.mu.Unlock()
}

func (l *rwLatch) runlock() {
	l.mu.Lock()
	l.readers--
	l.mu.Unlock()
}

type DB struct {
	closeMu sync.Mutex
	latch   *rwLatch
	pool    *buffer.Manager
}

// legalClose follows the ranked order: closeMu, then the exclusive
// latch, then (via Get's fact) the pool mutex.
func (db *DB) legalClose() {
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	db.latch.lock()
	defer db.latch.unlock()
	db.pool.Get()
}

// legalNestedRead: shared reacquisition of the reader-preferring
// latch is the documented contract.
func (db *DB) legalNestedRead() {
	db.latch.rlock()
	defer db.latch.runlock()
	db.latch.rlock()
	db.latch.runlock()
}

func (db *DB) badBackwards() {
	db.latch.lock()
	defer db.latch.unlock()
	db.closeMu.Lock() // want "engine.closeMu .exclusive. acquired while engine.latch is held .exclusive.: lock-rank order violated"
	db.closeMu.Unlock()
}

func (db *DB) badReentry() {
	db.latch.lock()
	defer db.latch.unlock()
	db.latch.lock() // want "engine.latch reacquired .exclusive. while already held .exclusive.: the latch is not reentrant on this path"
	db.latch.unlock()
}

func (db *DB) badUpgrade() {
	db.latch.rlock()
	defer db.latch.runlock()
	db.latch.lock() // want "engine.latch reacquired .exclusive. while already held .shared.: the latch is not reentrant on this path"
	db.latch.unlock()
}

func (db *DB) takeClose() {
	db.closeMu.Lock()
	db.closeMu.Unlock()
}

// badViaCall commits the violation one frame away: takeClose's
// summary fact attributes its closeMu acquisition to this call site.
func (db *DB) badViaCall() {
	db.latch.lock()
	defer db.latch.unlock()
	db.takeClose() // want "call to takeClose may acquire engine.closeMu .exclusive. while engine.latch is held .exclusive.: lock-rank order violated"
}
