// Package server is a testdata stand-in for the serving layer: Server
// and conn match the lockrank entries server.mu and server.qmu. The
// ranked order is server.mu before server.qmu — Shutdown holds the
// connection registry mutex while cancelling each connection's
// in-flight query — so taking them the other way around deadlocks
// against a concurrent shutdown.
package server

import "sync"

type conn struct {
	qmu     sync.Mutex
	qcancel func()
	srv     *Server
}

type Server struct {
	mu    sync.Mutex
	conns map[*conn]struct{}
}

// cancelQuery is the real conn.cancelQuery shape: a leaf acquisition
// of the per-connection query mutex.
func (c *conn) cancelQuery() {
	c.qmu.Lock()
	if c.qcancel != nil {
		c.qcancel()
	}
	c.qmu.Unlock()
}

// legalShutdown follows the ranked order: the registry mutex first,
// then (via cancelQuery's fact) each connection's query mutex.
func (s *Server) legalShutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.cancelQuery()
	}
}

// badDeregister inverts the order: the query mutex is a leaf, so
// reaching back into the server registry under it deadlocks against
// legalShutdown's mu -> qmu path.
func (c *conn) badDeregister() {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	c.srv.mu.Lock() // want "server.mu .exclusive. acquired while server.qmu is held .exclusive.: lock-rank order violated"
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
}

func (c *conn) deregister() {
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
}

// badDeregisterViaCall commits the same inversion one frame away:
// deregister's summary fact attributes its server.mu acquisition to
// this call site.
func (c *conn) badDeregisterViaCall() {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	c.deregister() // want "call to deregister may acquire server.mu .exclusive. while server.qmu is held .exclusive.: lock-rank order violated"
}
