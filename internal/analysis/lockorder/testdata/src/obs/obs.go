// Package obs is a testdata stand-in for the observability tracer:
// Tracer matches the lockrank entry obs.tracer, a leaf. Span finish
// records into the rings with nothing acquired under the mutex — the
// slow-query logger and any engine work run strictly outside it.
package obs

import (
	"sync"

	"buffer"
)

type Tracer struct {
	mu   sync.Mutex
	ring []int
	pos  int
	pool *buffer.Manager
}

// record is the real Tracer.finish shape: a leaf acquisition of the
// ring mutex, with no user code under it.
func (t *Tracer) record(v int) {
	t.mu.Lock()
	t.ring[t.pos%len(t.ring)] = v
	t.pos++
	t.mu.Unlock()
}

// legalObserveThenRecord touches the pool only before the ring mutex:
// the record acquisition is a fresh, held-nothing leaf.
func (t *Tracer) legalObserveThenRecord() {
	v := t.pool.Get()
	t.record(v)
}

// badPinUnderRings inverts the hierarchy: obs.tracer is a leaf, so
// reaching down into the buffer pool while the ring mutex is held is
// out of order (the violation crosses a package boundary — only Get's
// exported fact reveals it here).
func (t *Tracer) badPinUnderRings() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pool.Get() // want "call to Get may acquire buffer.pool .exclusive. while obs.tracer is held .exclusive.: lock-rank order violated"
}
