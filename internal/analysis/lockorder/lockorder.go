// Package lockorder defines an analyzer that enforces the engine's
// latch acquisition order.
//
// The legal order is declared once, in the lockrank table: engine
// latch before buffer-pool mutex before storage/catalog leaves, and so
// on. This analyzer flags any call path that acquires a ranked lock
// while holding one that is not strictly outer to it — including
// exclusive reentry of the engine latch, the deadlock the
// reader-preferring rwLatch was introduced to prevent for the shared
// side only (PR 2's review-hardening round).
//
// The analysis is modular: each function exports a fact summarizing
// every ranked lock it may acquire, directly or through the static
// calls it makes, so an out-of-order acquisition buried three calls
// deep in another package is still attributed to the call site that
// committed it. Calls through interfaces and function values are not
// tracked; the latch discipline for those sites rests on the
// documented contracts (executor nodes run under the caller's shared
// latch and acquire only inner locks).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/lintutil"
	"repro/internal/analysis/lockrank"
)

const name = "lockorder"

var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "check that ranked engine locks are acquired in lock-rank order",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{new(acquiresFact)},
	Run:       run,
}

// lockUse is one (lock, mode) a function may acquire.
type lockUse struct {
	Name   string
	Shared bool
}

// acquiresFact summarizes the ranked locks a function may acquire,
// transitively through static calls. Attached to *types.Func objects
// and serialized across package boundaries by the driver.
type acquiresFact struct {
	Uses []lockUse
}

func (*acquiresFact) AFact() {}

func (f *acquiresFact) String() string {
	s := "acquires("
	for i, u := range f.Uses {
		if i > 0 {
			s += ", "
		}
		s += u.Name
		if u.Shared {
			s += "[shared]"
		}
	}
	return s + ")"
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := lintutil.NewAllower(pass, name)

	// Gather every function body in the package (declarations only;
	// function literals are summarized into their enclosing function).
	type fnInfo struct {
		obj     *types.Func
		body    *ast.BlockStmt
		direct  map[lockUse]bool
		callees map[*types.Func]bool
		sum     map[lockUse]bool
	}
	var fns []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		fi := &fnInfo{
			obj:     obj,
			body:    fd.Body,
			direct:  make(map[lockUse]bool),
			callees: make(map[*types.Func]bool),
		}
		lintutil.WalkFunc(pass.TypesInfo, fd.Body, lintutil.Callbacks{
			OnAcquire: func(ev lintutil.Event, _ []lintutil.Held) {
				fi.direct[lockUse{Name: ev.Lock.Name, Shared: ev.Mode == lockrank.Shared}] = true
			},
			OnCall: func(_ *ast.CallExpr, callee *types.Func, _ []lintutil.Held) {
				if callee != nil {
					fi.callees[callee] = true
				}
			},
		})
		fns = append(fns, fi)
		byObj[obj] = fi
	})

	// Resolve each function's transitive acquisition summary: its own
	// direct acquisitions, plus imported facts for cross-package
	// callees, plus a fixpoint over same-package call edges (mutual
	// recursion converges because summaries only grow).
	for _, fi := range fns {
		fi.sum = make(map[lockUse]bool, len(fi.direct))
		for u := range fi.direct {
			fi.sum[u] = true
		}
		for callee := range fi.callees {
			if byObj[callee] != nil {
				continue // same package: handled by the fixpoint
			}
			var fact acquiresFact
			if pass.ImportObjectFact(callee, &fact) {
				for _, u := range fact.Uses {
					fi.sum[u] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			for callee := range fi.callees {
				cf := byObj[callee]
				if cf == nil || cf.sum == nil {
					continue
				}
				for u := range cf.sum {
					if !fi.sum[u] {
						fi.sum[u] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fi := range fns {
		if len(fi.sum) == 0 {
			continue
		}
		fact := &acquiresFact{Uses: make([]lockUse, 0, len(fi.sum))}
		for u := range fi.sum {
			fact.Uses = append(fact.Uses, u)
		}
		sort.Slice(fact.Uses, func(i, j int) bool {
			if fact.Uses[i].Name != fact.Uses[j].Name {
				return fact.Uses[i].Name < fact.Uses[j].Name
			}
			return !fact.Uses[i].Shared && fact.Uses[j].Shared
		})
		pass.ExportObjectFact(fi.obj, fact)
	}

	// Diagnostic walk: check every acquisition — direct or summarized
	// behind a static call — against the locks held at that point.
	check := func(held []lintutil.Held, next lockUse, pos ast.Node, via *types.Func) {
		for _, h := range held {
			nextMode := lockrank.Exclusive
			if next.Shared {
				nextMode = lockrank.Shared
			}
			if lockrank.MayAcquire(h.Lock.Name, h.Mode, next.Name, nextMode) {
				continue
			}
			msg := ""
			if via != nil {
				msg = fmt.Sprintf("call to %s may acquire %s (%s) while %s is held (%s): lock-rank order violated",
					via.Name(), next.Name, nextMode, h.Lock.Name, h.Mode)
			} else if h.Lock.Name == next.Name {
				msg = fmt.Sprintf("%s reacquired (%s) while already held (%s): the latch is not reentrant on this path",
					next.Name, nextMode, h.Mode)
			} else {
				msg = fmt.Sprintf("%s (%s) acquired while %s is held (%s): lock-rank order violated",
					next.Name, nextMode, h.Lock.Name, h.Mode)
			}
			allow.Reportf(pos.Pos(), "%s", msg)
		}
	}
	for _, fi := range fns {
		lintutil.WalkFunc(pass.TypesInfo, fi.body, lintutil.Callbacks{
			OnAcquire: func(ev lintutil.Event, held []lintutil.Held) {
				check(held, lockUse{Name: ev.Lock.Name, Shared: ev.Mode == lockrank.Shared}, ev.Call, nil)
			},
			OnCall: func(call *ast.CallExpr, callee *types.Func, held []lintutil.Held) {
				if callee == nil || len(held) == 0 {
					return
				}
				var uses []lockUse
				if cf := byObj[callee]; cf != nil {
					for u := range cf.sum {
						uses = append(uses, u)
					}
					sort.Slice(uses, func(i, j int) bool { return uses[i].Name < uses[j].Name })
				} else {
					var fact acquiresFact
					if pass.ImportObjectFact(callee, &fact) {
						uses = fact.Uses
					}
				}
				for _, u := range uses {
					check(held, u, call, callee)
				}
			},
		})
	}
	return nil, nil
}
