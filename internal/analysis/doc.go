// Package analysis hosts dsdblint: a go/analysis suite that enforces
// the engine's concurrency and durability invariants statically, so
// the bug classes this codebase has already paid for once cannot come
// back silently.
//
// The suite is driven by cmd/dsdblint (a go vet -vettool), which runs
// the five custom analyzers below plus a curated set of vet passes
// (copylocks, atomic, unusedresult, lostcancel). Each invariant is
// declared once — the lock hierarchy lives in the lockrank table —
// and each analyzer ships an analyzer-test suite pinning both the
// violations it must catch and the legal idioms it must accept.
//
// # Analyzers
//
// lockorder enforces the latch acquisition order declared in
// lockrank.Table: engine close guard before the engine latch, the
// latch before the buffer-pool mutex, the pool before the storage and
// probe leaves, and so on. It is interprocedural: every function
// exports a fact summarizing the ranked locks it may acquire through
// static calls, so an out-of-order acquisition buried in another
// package is attributed to the call site that committed it. It also
// flags exclusive reentry of the reader-preferring rwLatch — the PR 2
// deadlock — while accepting the documented shared-mode reentrancy.
//
// tracerlock forbids probe emission and calls through function values
// or interfaces while a NoTracer-ranked mutex (buffer pool, result
// cache) is held. A tracer is arbitrary user code; one that re-enters
// the pool deadlocks on the mutex its caller holds. This pins the
// PR 3 regression (tracer emission under the pool mutex) and the PR 4
// one (the result cache running its epoch-validation callback inside
// its mutex).
//
// walcheck enforces the durability ground rules from PR 5: every
// wal.Writer Append/Sync/ResetTo/Close error must be consumed, and in
// the engine package every heap or catalog mutation must be dominated
// by a WAL log call or an explicit branch on the durability gate.
//
// unlockpath checks that every ranked-lock acquisition — including
// the custom rwLatch surface that vet knows nothing about — is
// released on every control-flow path out of the acquiring function,
// either by a deferred release or explicitly on each arm.
//
// ctxflow keeps cancellation intact in the request paths (dsdb,
// server, client, load, executor): no fresh context.Background()/
// TODO() roots except at annotated session boundaries, and no ctx
// parameter that arrives and is never used.
//
// # Escape hatch
//
// A diagnostic is suppressed by a //lint:allow <analyzer> <reason>
// comment on the offending line, the line above it, or in the doc
// comment of the enclosing function. The reason is mandatory: a bare
// directive is itself reported, so every suppression in the tree
// documents why it is safe.
package analysis
