// Package tracerlock defines an analyzer that keeps instrumentation
// and user callbacks out of the kernel's critical sections.
//
// The invariant: while a NoTracer-ranked mutex is held (the buffer
// pool's, the result cache's), the code must not emit a probe event or
// invoke any caller-supplied function. A tracer is arbitrary user
// code; one that re-enters the pool — a counting tracer that samples
// pool stats, a hook that issues a query — deadlocks on the very mutex
// its caller holds. This is the PR 3 regression class (the hit-path
// tracer emission that serialized and could deadlock concurrent
// sessions) and the PR 4 one (the result cache validating epochs
// through a caller-supplied closure inside its mutex).
//
// Like lockorder, the analysis is modular: functions that emit probe
// events, directly or transitively through static calls, export a
// fact, so a call chain that ends in an Emit is flagged at the call
// made under the lock.
package tracerlock

import (
	"go/ast"
	"go/types"
	"path"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/lintutil"
)

const name = "tracerlock"

// probePkg is the instrumentation package; testdata stand-ins use a
// bare package with the same base name.
const probePkg = "repro/internal/db/probe"

var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "forbid probe emission and user callbacks while a NoTracer-ranked mutex is held",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{new(emitsFact)},
	Run:       run,
}

// emitsFact marks a function that may emit a probe event, directly or
// through the static calls it makes.
type emitsFact struct{}

func (*emitsFact) AFact() {}

func (*emitsFact) String() string { return "emitsProbeEvents" }

// isEmit reports whether callee is a probe-emission entry point: any
// method named Emit whose receiver lives in the probe package (the
// Tracer interface method, and every concrete tracer's Emit).
func isEmit(callee *types.Func) bool {
	if callee == nil || callee.Name() != "Emit" || callee.Pkg() == nil {
		return false
	}
	p := callee.Pkg().Path()
	return p == probePkg || p == path.Base(probePkg)
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := lintutil.NewAllower(pass, name)

	type fnInfo struct {
		obj     *types.Func
		body    *ast.BlockStmt
		emits   bool
		callees map[*types.Func]bool
	}
	var fns []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		fi := &fnInfo{obj: obj, body: fd.Body, callees: make(map[*types.Func]bool)}
		lintutil.WalkFunc(pass.TypesInfo, fd.Body, lintutil.Callbacks{
			OnCall: func(_ *ast.CallExpr, callee *types.Func, _ []lintutil.Held) {
				if isEmit(callee) {
					fi.emits = true
				} else if callee != nil {
					fi.callees[callee] = true
					var fact emitsFact
					if byObj[callee] == nil && pass.ImportObjectFact(callee, &fact) {
						fi.emits = true
					}
				}
			},
		})
		fns = append(fns, fi)
		byObj[obj] = fi
	})

	// Propagate emission through same-package static calls.
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if fi.emits {
				continue
			}
			for callee := range fi.callees {
				if cf := byObj[callee]; cf != nil && cf.emits {
					fi.emits = true
					changed = true
					break
				}
			}
		}
	}
	for _, fi := range fns {
		if fi.emits {
			pass.ExportObjectFact(fi.obj, &emitsFact{})
		}
	}

	// Diagnostic walk: under a NoTracer lock, no emission and no
	// dynamic call.
	noTracerHeld := func(held []lintutil.Held) *lintutil.Held {
		for i := range held {
			if held[i].Lock.NoTracer {
				return &held[i]
			}
		}
		return nil
	}
	for _, fi := range fns {
		lintutil.WalkFunc(pass.TypesInfo, fi.body, lintutil.Callbacks{
			OnCall: func(call *ast.CallExpr, callee *types.Func, held []lintutil.Held) {
				h := noTracerHeld(held)
				if h == nil {
					return
				}
				switch {
				case isEmit(callee):
					allow.Reportf(call.Pos(), "probe event emitted while %s is held: %s", h.Lock.Name, h.Lock.Doc)
				case callee == nil:
					allow.Reportf(call.Pos(), "call through a function value or interface while %s is held may run a user callback under the lock: %s", h.Lock.Name, h.Lock.Doc)
				default:
					emits := false
					if cf := byObj[callee]; cf != nil {
						emits = cf.emits
					} else {
						var fact emitsFact
						emits = pass.ImportObjectFact(callee, &fact)
					}
					if emits {
						allow.Reportf(call.Pos(), "call to %s emits probe events while %s is held: %s", callee.Name(), h.Lock.Name, h.Lock.Doc)
					}
				}
			},
		})
	}
	return nil, nil
}
