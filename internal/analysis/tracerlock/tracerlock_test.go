package tracerlock_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/tracerlock"
)

func TestTracerLock(t *testing.T) {
	analyzertest.Run(t, "testdata", tracerlock.Analyzer, "probe", "buffer")
}
