// Package buffer is a testdata stand-in: Manager.mu is ranked
// buffer.pool, which carries the NoTracer bit.
package buffer

import (
	"sync"

	"probe"
)

type Manager struct {
	mu     sync.Mutex
	frames int
	tr     probe.Tracer
}

func (m *Manager) badDirect() {
	m.mu.Lock()
	m.tr.Emit(1) // want "probe event emitted while buffer.pool is held"
	m.mu.Unlock()
}

func (m *Manager) emitGet() {
	m.tr.Emit(2)
}

func (m *Manager) badTransitive() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.emitGet() // want "call to emitGet emits probe events while buffer.pool is held"
	m.frames++
}

func (m *Manager) badCrossPkg() {
	m.mu.Lock()
	defer m.mu.Unlock()
	probe.Note(m.tr, 3) // want "call to Note emits probe events while buffer.pool is held"
}

func (m *Manager) badCallback(validate func(int) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if validate(m.frames) { // want "call through a function value or interface while buffer.pool is held"
		m.frames = 0
	}
}

// badMissPath mirrors the historical miss-path shape: the hit arm
// unlocks and returns, so the fall-through still holds the pool
// mutex when it emits.
func (m *Manager) badMissPath(hit bool) int {
	m.mu.Lock()
	if hit {
		n := m.frames
		m.mu.Unlock()
		m.tr.Emit(probe.ID(n))
		return n
	}
	m.tr.Emit(9) // want "probe event emitted while buffer.pool is held"
	m.frames++
	m.mu.Unlock()
	return 0
}

// legalBuffered is the PR 3 shape the analyzer must accept: read
// under the lock, emit after releasing it.
func (m *Manager) legalBuffered() {
	m.mu.Lock()
	n := m.frames
	m.mu.Unlock()
	m.tr.Emit(probe.ID(n))
}

// legalAllowed documents a reviewed exception through the escape
// hatch.
func (m *Manager) legalAllowed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tr.Emit(4) //lint:allow tracerlock the pool owns this tracer and it is a plain counter
}
