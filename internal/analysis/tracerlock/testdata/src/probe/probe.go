// Package probe is a testdata stand-in for the instrumentation
// package: Emit methods declared here are what tracerlock treats as
// probe emission.
package probe

// ID identifies one probe event.
type ID int

// Tracer receives probe events; implementations are user code.
type Tracer interface {
	Emit(ID)
}

// Nop discards events.
type Nop struct{}

func (Nop) Emit(ID) {}

// Note emits through any tracer — a helper whose emission must
// surface at call sites in other packages via the exported fact.
func Note(t Tracer, id ID) {
	if t != nil {
		t.Emit(id)
	}
}
