// Package ctxflow defines an analyzer that keeps context plumbing
// honest in the request paths.
//
// In the serving layers (dsdb, dsdb/server, dsdb/client, dsdb/load)
// and the executor, a fresh context.Background()/context.TODO()
// severs cancellation: the query it guards can no longer be cancelled
// by the client's Cancel frame, the server's deadline, or the caller's
// ctx — the exact machinery PR 3 built. Two idioms remain legal
// without annotation: the nil-guard default (`if ctx == nil { ctx =
// context.Background() }`), which preserves a caller-supplied context
// when there is one, and anything carrying a //lint:allow ctxflow with
// its reason (the server's per-query root in queryCtx is the session
// boundary — there is no inbound context to inherit).
//
// The analyzer also flags a declared `ctx context.Context` parameter
// that the function never reads: a ctx that arrives and goes nowhere
// means some blocking call below runs uncancellable.
package ctxflow

import (
	"go/ast"
	"go/types"
	"path"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/lintutil"
)

const name = "ctxflow"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid fresh context roots and dead ctx parameters in request paths",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// requestPkgs are the packages whose call paths serve requests.
// Drivers (cmd/*, examples, stcpipe, tests) own their lifecycles and
// may root contexts freely.
var requestPkgs = []string{
	"repro/dsdb",
	"repro/dsdb/server",
	"repro/dsdb/client",
	"repro/dsdb/load",
	"repro/internal/db/executor",
}

func inScope(pkgPath string) bool {
	for _, p := range requestPkgs {
		if pkgPath == p || pkgPath == path.Base(p) {
			return true
		}
	}
	return false
}

func isTestFile(pass *analysis.Pass, n ast.Node) bool {
	f := pass.Fset.File(n.Pos())
	return f != nil && len(f.Name()) > 8 && f.Name()[len(f.Name())-8:] == "_test.go"
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Context" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allow := lintutil.NewAllower(pass, name)

	// Fresh context roots.
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || isTestFile(pass, n) {
			return false
		}
		call := n.(*ast.CallExpr)
		fn, ok := typesFunc(pass, call)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}
		if nilGuarded(pass, stack) {
			return true
		}
		d := analysis.Diagnostic{
			Pos: call.Pos(),
			Message: "context." + fn.Name() + "() in a request path severs cancellation: " +
				"propagate the caller's ctx (or annotate the boundary with //lint:allow ctxflow <reason>)",
		}
		// Where a ctx parameter is in scope, replacing the fresh root
		// with it is the safe mechanical fix.
		if param := enclosingCtxParam(pass, stack); param != "" {
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message: "use the enclosing function's " + param + " parameter",
				TextEdits: []analysis.TextEdit{{
					Pos:     call.Pos(),
					End:     call.End(),
					NewText: []byte(param),
				}},
			}}
		}
		allow.Report(d)
		return true
	})

	// Dead ctx parameters.
	used := make(map[types.Object]bool)
	for _, obj := range pass.TypesInfo.Uses {
		used[obj] = true
	}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || isTestFile(pass, fd) {
			return
		}
		for _, field := range fd.Type.Params.List {
			for _, id := range field.Names {
				if id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil || !isContextType(obj.Type()) {
					continue
				}
				if !used[obj] {
					allow.Reportf(id.Pos(),
						"%s declares ctx parameter %q but never uses it: the calls below run uncancellable",
						fd.Name.Name, id.Name)
				}
			}
		}
	})
	return nil, nil
}

func typesFunc(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn, ok
	case *ast.Ident:
		fn, ok := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn, ok
	}
	return nil, false
}

// nilGuarded recognizes the legal defaulting idiom: the Background/
// TODO call is the RHS of an assignment to a context variable, inside
// an if whose condition checks that same variable against nil.
func nilGuarded(pass *analysis.Pass, stack []ast.Node) bool {
	var assigned types.Object
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					assigned = pass.TypesInfo.ObjectOf(id)
				}
			}
		case *ast.IfStmt:
			if assigned == nil {
				return false
			}
			bin, ok := n.Cond.(*ast.BinaryExpr)
			if !ok || bin.Op.String() != "==" {
				return false
			}
			for _, side := range []ast.Expr{bin.X, bin.Y} {
				if id, ok := side.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == assigned {
					return true
				}
			}
			return false
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// enclosingCtxParam returns the name of a context.Context parameter of
// the innermost enclosing function, if any.
func enclosingCtxParam(pass *analysis.Pass, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch n := stack[i].(type) {
		case *ast.FuncDecl:
			ft = n.Type
		case *ast.FuncLit:
			ft = n.Type
		default:
			continue
		}
		for _, field := range ft.Params.List {
			for _, id := range field.Names {
				if id.Name == "_" {
					continue
				}
				if obj := pass.TypesInfo.Defs[id]; obj != nil && isContextType(obj.Type()) {
					return id.Name
				}
			}
		}
		return ""
	}
	return ""
}
