package ctxflow_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analyzertest.Run(t, "testdata", ctxflow.Analyzer, "server")
}

// TestSuggestedFix pins the -fix behavior: where a ctx parameter is
// in scope, the fresh root's diagnostic carries an edit replacing the
// call with the parameter.
func TestSuggestedFix(t *testing.T) {
	diags := analyzertest.Diagnostics(t, "testdata", ctxflow.Analyzer, "server")
	found := false
	for _, d := range diags {
		if !strings.Contains(d.Message, "severs cancellation") {
			continue
		}
		for _, fix := range d.SuggestedFixes {
			for _, edit := range fix.TextEdits {
				if string(edit.NewText) == "ctx" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no fresh-root diagnostic carried the use-the-ctx-parameter fix")
	}
}
