// Package server is a testdata stand-in for a request-path package
// (matched by base name), where ctxflow applies.
package server

import "context"

func query(ctx context.Context, q string) error {
	<-ctx.Done()
	_ = q
	return nil
}

// handle is the legal shape: the inbound ctx reaches the blocking
// call.
func handle(ctx context.Context, q string) error {
	return query(ctx, q)
}

func badFreshRoot(q string) error {
	ctx := context.Background() // want "context.Background.. in a request path severs cancellation"
	return query(ctx, q)
}

func badTODO(q string) error {
	return query(context.TODO(), q) // want "context.TODO.. in a request path severs cancellation"
}

// legalNilGuard is the defaulting idiom: a caller-supplied context is
// preserved when there is one.
func legalNilGuard(ctx context.Context, q string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return query(ctx, q)
}

// legalAllowed marks a genuine session boundary.
func legalAllowed(q string) error {
	ctx := context.Background() //lint:allow ctxflow session root: there is no inbound context at accept time
	return query(ctx, q)
}

func badDeadParam(ctx context.Context, q string) error { // want "badDeadParam declares ctx parameter .ctx. but never uses it"
	return query(context.Background(), q) // want "context.Background.. in a request path severs cancellation"
}
