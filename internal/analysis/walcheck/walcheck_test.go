package walcheck_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/walcheck"
)

func TestWalCheck(t *testing.T) {
	analyzertest.Run(t, "testdata", walcheck.Analyzer, "wal", "access", "catalog", "engine")
}
