// Package walcheck defines an analyzer that enforces the durability
// subsystem's two ground rules (PR 5).
//
// First, WAL writer errors are load-bearing: a dropped error from
// Append, Sync, ResetTo or Close silently un-commits work the caller
// believes durable. Every such call must consume its error — no bare
// expression statements, no blank assignment, no `go`/`defer` that
// discards the result.
//
// Second, write-ahead means write-ahead: in the engine package, a heap
// or catalog mutation (Heap.Insert/InsertTuple, Catalog.AddTable/
// AddIndex) must be dominated — on every control-flow path from
// function entry — by either a WAL log call (wal.Writer.Append, the
// engine's logRecord helper) or an explicit branch on the engine's
// durability gate (the `durable`/`logging` fields), which is how the
// legitimately-unlogged paths (memory mode, recovery replay, bulk
// load) mark themselves. Recovery code that rebuilds state from a
// manifest carries a function-scope //lint:allow with its reason.
package walcheck

import (
	"go/ast"
	"go/types"
	"path"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/lintutil"
)

const name = "walcheck"

const (
	walPkg     = "repro/internal/db/wal"
	enginePkg  = "repro/internal/db/engine"
	accessPkg  = "repro/internal/db/access"
	catalogPkg = "repro/internal/db/catalog"
)

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "check WAL error handling and write-ahead ordering of engine mutations",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

func pkgMatches(p *types.Package, full string) bool {
	return p != nil && (p.Path() == full || p.Path() == path.Base(full))
}

// walWriterCall reports whether call is a method call on wal.Writer
// whose error must be consumed.
func walWriterCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, ok := typeutil.Callee(info, call).(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "Append", "Sync", "ResetTo", "Close":
	default:
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Writer" || !pkgMatches(named.Obj().Pkg(), walPkg) {
		return "", false
	}
	return fn.Name(), true
}

// mutationCall reports whether call mutates the heap or catalog: the
// calls the write-ahead rule protects.
func mutationCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, ok := typeutil.Callee(info, call).(*types.Func)
	if !ok {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	tn, pkg := named.Obj().Name(), named.Obj().Pkg()
	switch {
	case tn == "Heap" && pkgMatches(pkg, accessPkg) && (fn.Name() == "Insert" || fn.Name() == "InsertTuple"):
		return "Heap." + fn.Name(), true
	case tn == "Catalog" && pkgMatches(pkg, catalogPkg) && (fn.Name() == "AddTable" || fn.Name() == "AddIndex"):
		return "Catalog." + fn.Name(), true
	}
	return "", false
}

// logMarker reports whether node n contains a write-ahead marker: a
// WAL append, a call to a log helper (a function whose name starts
// with "log", like the engine's logRecord), or a read of the
// durability gate fields (`durable`, `logging`) — the idiom the
// engine's legitimately-unlogged branches are built on.
func logMarker(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn, ok := typeutil.Callee(info, n).(*types.Func); ok {
				if fn.Name() == "Append" {
					if _, ok := walWriterCall(info, n); ok {
						found = true
						return false
					}
				}
				if len(fn.Name()) >= 3 && fn.Name()[:3] == "log" {
					found = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "durable" || n.Sel.Name == "logging" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	allow := lintutil.NewAllower(pass, name)

	// Part 1, everywhere: WAL writer errors must be consumed.
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		method, ok := walWriterCall(pass.TypesInfo, call)
		if !ok {
			return true
		}
		parent := stack[len(stack)-2]
		switch p := parent.(type) {
		case *ast.ExprStmt:
			allow.Reportf(call.Pos(), "wal.Writer.%s error is discarded: an unchecked log write silently un-commits durable work", method)
		case *ast.GoStmt, *ast.DeferStmt:
			allow.Reportf(call.Pos(), "wal.Writer.%s error is unreachable in a %T: check and propagate it", method, p)
		case *ast.AssignStmt:
			// Single call on the RHS: the last LHS position receives the
			// error; blank means discarded.
			if len(p.Rhs) == 1 && p.Rhs[0] == call && len(p.Lhs) > 0 {
				if id, ok := p.Lhs[len(p.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
					allow.Reportf(call.Pos(), "wal.Writer.%s error is assigned to _: check and propagate it", method)
				}
			}
		}
		return true
	})

	// Part 2, engine packages only: mutations must be dominated by a
	// write-ahead marker.
	if !pkgMatches(pass.Pkg, enginePkg) {
		return nil, nil
	}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		g := cfgs.FuncDecl(fd)
		if g == nil || len(g.Blocks) == 0 {
			return
		}
		checkDominance(pass, allow, g)
	})
	return nil, nil
}

// checkDominance runs a forward may-analysis over the CFG: a block is
// "unlogged-reachable" if some path from entry reaches it without
// passing a write-ahead marker. A mutation executed in that state is a
// violation. Within a block, nodes are processed in order, so a marker
// earlier in the same block covers a mutation later in it.
func checkDominance(pass *analysis.Pass, allow *lintutil.Allower, g *cfg.CFG) {
	n := len(g.Blocks)
	unloggedIn := make([]bool, n)
	inQueue := make([]bool, n)
	reported := make(map[*ast.CallExpr]bool)

	entry := g.Blocks[0]
	unloggedIn[entry.Index] = true
	queue := []*cfg.Block{entry}
	inQueue[entry.Index] = true

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b.Index] = false

		unlogged := unloggedIn[b.Index]
		for _, node := range b.Nodes {
			if unlogged {
				// Mutations first: a marker inside the same statement
				// (e.g. `if err := db.logRecord(...)`) precedes any
				// mutation in a later statement, but a mutation and a
				// marker in one statement means the mutation ran first
				// only if it is syntactically inner; keep it simple and
				// let the marker win only for earlier statements.
				ast.Inspect(node, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					if what, ok := mutationCall(pass.TypesInfo, call); ok && !reported[call] {
						reported[call] = true
						allow.Reportf(call.Pos(), "%s mutates durable state on a path with no preceding WAL log call or durability gate: log before applying (write-ahead rule)", what)
					}
					return true
				})
			}
			if unlogged && logMarker(pass.TypesInfo, node) {
				unlogged = false
			}
		}
		if unlogged {
			for _, s := range b.Succs {
				if !unloggedIn[s.Index] {
					unloggedIn[s.Index] = true
					if !inQueue[s.Index] {
						queue = append(queue, s)
						inQueue[s.Index] = true
					}
				}
			}
		}
	}
}
