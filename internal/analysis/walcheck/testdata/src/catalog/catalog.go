// Package catalog is a testdata stand-in for the catalog.
package catalog

import "sync"

type Catalog struct {
	mu     sync.RWMutex
	tables []string
}

func (c *Catalog) AddTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables = append(c.tables, name)
	return nil
}

func (c *Catalog) AddIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return nil
}
