// Package access is a testdata stand-in for the heap access layer.
package access

type Heap struct {
	rows int
}

func (h *Heap) Insert(rec []byte) (uint64, error) {
	h.rows++
	return uint64(h.rows), nil
}

func (h *Heap) InsertTuple(vals ...any) (uint64, error) {
	h.rows++
	return uint64(h.rows), nil
}
