// Package engine is a testdata stand-in for the engine package,
// where walcheck's write-ahead dominance rule applies.
package engine

import (
	"access"
	"catalog"
	"wal"
)

type DB struct {
	w       *wal.Writer
	heap    *access.Heap
	cat     *catalog.Catalog
	durable bool
}

func (db *DB) logRecord(rec []byte) error {
	return db.w.Append(rec)
}

// --- Part 1: WAL writer errors must be consumed. ---

func (db *DB) badDiscard() {
	db.w.Sync() // want "wal.Writer.Sync error is discarded"
}

func (db *DB) badBlank() {
	_ = db.w.Close() // want "wal.Writer.Close error is assigned to _"
}

func (db *DB) badGo() {
	go db.w.Sync() // want "wal.Writer.Sync error is unreachable"
}

func (db *DB) badDefer() {
	defer db.w.Close() // want "wal.Writer.Close error is unreachable"
}

func (db *DB) legalChecked() error {
	if err := db.w.Sync(); err != nil {
		return err
	}
	return db.w.Close()
}

// --- Part 2: mutations dominated by a write-ahead marker. ---

// legalInsert logs first, applies second: the write-ahead rule.
func (db *DB) legalInsert(rec []byte) error {
	if err := db.logRecord(rec); err != nil {
		return err
	}
	if _, err := db.heap.Insert(rec); err != nil {
		return err
	}
	return nil
}

// legalGated branches on the durability gate: the unlogged path marks
// itself as deliberate.
func (db *DB) legalGated(rec []byte) error {
	if db.durable {
		if err := db.logRecord(rec); err != nil {
			return err
		}
	}
	_, err := db.heap.Insert(rec)
	return err
}

func (db *DB) badMutateFirst(rec []byte) error {
	if _, err := db.heap.Insert(rec); err != nil { // want "Heap.Insert mutates durable state on a path with no preceding WAL log call"
		return err
	}
	return db.logRecord(rec)
}

// badOneBranch logs on only one arm, so the join point still has an
// unlogged path into the mutation.
func (db *DB) badOneBranch(rec []byte, replay bool) error {
	if replay {
		_ = rec
	} else {
		if err := db.logRecord(rec); err != nil {
			return err
		}
	}
	_, err := db.heap.Insert(rec) // want "Heap.Insert mutates durable state on a path with no preceding WAL log call"
	return err
}

func (db *DB) badCatalog(name string) error {
	return db.cat.AddTable(name) // want "Catalog.AddTable mutates durable state on a path with no preceding WAL log call"
}

// restore rebuilds the catalog from recovery state: the WAL itself
// was the source, so logging again would double-apply.
//
//lint:allow walcheck recovery replays already-durable state
func (db *DB) restore(names []string) {
	for _, n := range names {
		db.cat.AddTable(n)
	}
}
