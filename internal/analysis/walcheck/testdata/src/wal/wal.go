// Package wal is a testdata stand-in for the WAL writer; Writer's
// error-returning surface is what walcheck guards.
package wal

import "sync"

type Writer struct {
	mu  sync.Mutex
	seq uint64
}

func (w *Writer) Append(rec []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	return nil
}

func (w *Writer) Sync() error { return nil }

func (w *Writer) ResetTo(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq = seq
	return nil
}

func (w *Writer) Close() error { return nil }
