// Package analyzertest is a self-contained substitute for
// golang.org/x/tools/go/analysis/analysistest: it loads testdata
// packages, runs an analyzer (and its required passes) over them, and
// checks every diagnostic against `// want "regexp"` comments.
//
// The real analysistest depends on go/packages and an external build
// system; this harness typechecks testdata with go/types directly —
// testdata packages resolve against each other by directory name under
// testdata/src, and standard-library imports typecheck from GOROOT
// source via the stdlib source importer — so the suite runs with no
// network and no module downloads. Facts flow between testdata
// packages through an in-memory store, mirroring how the driver
// serializes them between real packages.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each named package from dir/src (dependencies first),
// applies the analyzer to every one of them, and matches diagnostics
// against want comments. It reports failures on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(dir)
	store := newFactStore()
	for _, pkg := range pkgs {
		tp, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("loading testdata package %s: %v", pkg, err)
		}
		diags, err := runAnalyzer(a, ld.fset, tp, store)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		checkWants(t, ld.fset, tp.files, diags)
	}
}

// Diagnostics runs the analyzer over the named packages and returns
// the diagnostics without want-matching (for tests asserting on the
// raw output, e.g. suggested fixes).
func Diagnostics(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	ld := newLoader(dir)
	store := newFactStore()
	var out []analysis.Diagnostic
	for _, pkg := range pkgs {
		tp, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("loading testdata package %s: %v", pkg, err)
		}
		diags, err := runAnalyzer(a, ld.fset, tp, store)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		out = append(out, diags...)
	}
	return out
}

// ---------------------------------------------------------------------
// Loading.

type testPkg struct {
	path  string
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

type loader struct {
	root  string // testdata dir containing src/
	fset  *token.FileSet
	pkgs  map[string]*testPkg
	std   types.Importer
	stack []string
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root: dir,
		fset: fset,
		pkgs: make(map[string]*testPkg),
		std:  importer.ForCompiler(fset, "source", nil),
	}
}

func (ld *loader) load(path string) (*testPkg, error) {
	if tp, ok := ld.pkgs[path]; ok {
		return tp, nil
	}
	for _, s := range ld.stack {
		if s == path {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
	}
	dir := filepath.Join(ld.root, "src", filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		if sub, err := ld.load(p); err == nil {
			return sub.pkg, nil
		}
		return ld.std.Import(p)
	})}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	tp := &testPkg{path: path, pkg: pkg, info: info, files: files}
	ld.pkgs[path] = tp
	return tp, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ---------------------------------------------------------------------
// Running.

// factStore is the in-memory stand-in for the driver's serialized
// fact files. All testdata packages share one type universe (one
// FileSet, one loader), so object identity works across packages.
type factStore struct {
	objs map[types.Object][]analysis.Fact
	pkgs map[*types.Package][]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		objs: make(map[types.Object][]analysis.Fact),
		pkgs: make(map[*types.Package][]analysis.Fact),
	}
}

func (s *factStore) get(facts []analysis.Fact, ptr analysis.Fact) bool {
	for _, f := range facts {
		if reflect.TypeOf(f) == reflect.TypeOf(ptr) {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

func (s *factStore) set(facts []analysis.Fact, f analysis.Fact) []analysis.Fact {
	for i, old := range facts {
		if reflect.TypeOf(old) == reflect.TypeOf(f) {
			facts[i] = f
			return facts
		}
	}
	return append(facts, f)
}

// runAnalyzer applies a (and, transitively, its Requires) to tp and
// returns a's diagnostics.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, tp *testPkg, store *factStore) ([]analysis.Diagnostic, error) {
	results := make(map[*analysis.Analyzer]any)
	var diags []analysis.Diagnostic
	var run func(a *analysis.Analyzer, top bool) error
	run = func(a *analysis.Analyzer, top bool) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, req := range a.Requires {
			if err := run(req, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      tp.files,
			Pkg:        tp.pkg,
			TypesInfo:  tp.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   make(map[*analysis.Analyzer]any),
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if top {
					diags = append(diags, d)
				}
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				return store.get(store.objs[obj], fact)
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				store.objs[obj] = store.set(store.objs[obj], fact)
			},
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
				return store.get(store.pkgs[pkg], fact)
			},
			ExportPackageFact: func(fact analysis.Fact) {
				store.pkgs[tp.pkg] = store.set(store.pkgs[tp.pkg], fact)
			},
			AllObjectFacts: func() []analysis.ObjectFact {
				var out []analysis.ObjectFact
				for obj, facts := range store.objs {
					for _, f := range facts {
						out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
					}
				}
				return out
			},
			AllPackageFacts: func() []analysis.PackageFact {
				var out []analysis.PackageFact
				for pkg, facts := range store.pkgs {
					for _, f := range facts {
						out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
					}
				}
				return out
			},
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		if a.ResultType != nil && res != nil && !reflect.TypeOf(res).AssignableTo(a.ResultType) {
			return fmt.Errorf("%s returned %T, want %s", a.Name, res, a.ResultType)
		}
		results[a] = res
		return nil
	}
	if err := run(a, true); err != nil {
		return nil, err
	}
	return diags, nil
}

// ---------------------------------------------------------------------
// Want comments.

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitQuoted extracts the double-quoted strings from a want comment:
// `"a" "b"` -> ["a", "b"].
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		rest := s[i:]
		// strconv.QuotedPrefix handles escapes.
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return out
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			return out
		}
		out = append(out, unq)
		s = rest[len(q):]
	}
}
