// Package lintutil carries the machinery the dsdblint analyzers share:
// the //lint:allow escape hatch, recognition of ranked-lock
// acquire/release calls (driven by the lockrank table), and a
// source-order walker that tracks the set of locks held across a
// function body.
package lintutil

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/lockrank"
)

// ---------------------------------------------------------------------
// //lint:allow <analyzer> <reason>
//
// The escape hatch: a diagnostic is suppressed when an allow directive
// naming its analyzer appears on the offending line, on the line
// directly above it, or in the doc comment of the enclosing function
// declaration (function-scope allow, for invariants a whole function
// legitimately steps outside of — BeginRead escaping the latch it
// acquired, recovery rebuilding the catalog without logging). The
// reason is mandatory: a bare directive is itself reported, so every
// suppression in the tree documents why it is safe.

const allowPrefix = "//lint:allow"

// Allower filters one analyzer's diagnostics through the allow index
// of the package being analyzed.
type Allower struct {
	pass     *analysis.Pass
	analyzer string
	lines    map[string]bool    // "filename:line" with an allow for this analyzer
	funcs    []token.Pos        // Pos of FuncDecls whose doc allows this analyzer
	ranges   [][2]token.Pos     // body ranges of those FuncDecls
	reported map[token.Pos]bool // malformed directives already reported
}

// NewAllower indexes the pass's files for directives naming analyzer.
// Malformed directives (no analyzer, or no reason) are reported
// immediately, once, by whichever analyzer builds the index first for
// that position — in practice every analyzer reports them, which is
// loud, and loud is correct for a broken suppression.
func NewAllower(pass *analysis.Pass, analyzer string) *Allower {
	a := &Allower{
		pass:     pass,
		analyzer: analyzer,
		lines:    make(map[string]bool),
		reported: make(map[token.Pos]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // not ours to validate: could be another lint namespace
				}
				name := fields[0]
				if name != analyzer {
					continue
				}
				if len(fields) < 2 {
					pass.Reportf(c.Pos(), "lint:allow %s directive is missing its reason", name)
					continue
				}
				p := pass.Fset.Position(c.Pos())
				a.lines[posKey(p.Filename, p.Line)] = true
			}
		}
		// Function-scope allows live in the decl's doc comment.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
				if len(fields) >= 2 && fields[0] == analyzer {
					a.ranges = append(a.ranges, [2]token.Pos{fd.Pos(), fd.Body.End()})
				}
			}
		}
	}
	return a
}

func posKey(file string, line int) string {
	// Line numbers are small; this beats fmt.Sprintf in a hot index.
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Allowed reports whether a diagnostic at pos is suppressed.
func (a *Allower) Allowed(pos token.Pos) bool {
	p := a.pass.Fset.Position(pos)
	if a.lines[posKey(p.Filename, p.Line)] || a.lines[posKey(p.Filename, p.Line-1)] {
		return true
	}
	for _, r := range a.ranges {
		if r[0] <= pos && pos <= r[1] {
			return true
		}
	}
	return false
}

// Report emits a diagnostic unless an allow directive covers it.
func (a *Allower) Report(d analysis.Diagnostic) {
	if a.Allowed(d.Pos) {
		return
	}
	a.pass.Report(d)
}

// Reportf is the printf form of Report.
func (a *Allower) Reportf(pos token.Pos, format string, args ...any) {
	a.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------
// Ranked-lock call classification.

// Op distinguishes acquisition from release.
type Op int

const (
	Acquire Op = iota
	Release
)

// Event is one ranked-lock operation at a call site.
type Event struct {
	Lock *lockrank.Lock
	Mode lockrank.Mode
	Op   Op
	Call *ast.CallExpr
}

var mutexMethods = map[string]struct {
	op   Op
	mode lockrank.Mode
}{
	"Lock":    {Acquire, lockrank.Exclusive},
	"RLock":   {Acquire, lockrank.Shared},
	"Unlock":  {Release, lockrank.Exclusive},
	"RUnlock": {Release, lockrank.Shared},
}

// ClassifyCall reports whether call acquires or releases a ranked
// lock. Internal locks (the rwLatch's own mutex) classify as nothing:
// their discipline belongs to the latch methods.
func ClassifyCall(info *types.Info, call *ast.CallExpr) (Event, bool) {
	callee := typeutil.Callee(info, call)
	fn, ok := callee.(*types.Func)
	if !ok {
		return Event{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return Event{}, false
	}
	recvT := derefNamed(sig.Recv().Type())
	if recvT == nil || recvT.Obj().Pkg() == nil {
		return Event{}, false
	}
	pkgPath := recvT.Obj().Pkg().Path()
	typeName := recvT.Obj().Name()

	// Custom latch surface: a method named in a table entry's
	// Acquire*/Release* lists, declared on the entry's type.
	for i := range lockrank.Table {
		l := &lockrank.Table[i]
		if l.Field != "" || l.Internal || l.Type != typeName || !l.PkgMatches(pkgPath) {
			continue
		}
		if op, mode, ok := latchMethod(l, fn.Name()); ok {
			return Event{Lock: l, Mode: mode, Op: op, Call: call}, true
		}
	}

	// Standard mutex surface: sync.Mutex/sync.RWMutex method whose
	// receiver expression is a named field of a ranked type.
	if pkgPath == "sync" && (typeName == "Mutex" || typeName == "RWMutex") {
		mm, ok := mutexMethods[fn.Name()]
		if !ok {
			return Event{}, false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return Event{}, false
		}
		base, ok := sel.X.(*ast.SelectorExpr) // <owner>.<field>.Lock
		if !ok {
			return Event{}, false
		}
		field := base.Sel.Name
		ownerT := derefNamed(info.TypeOf(base.X))
		if ownerT == nil || ownerT.Obj().Pkg() == nil {
			return Event{}, false
		}
		for i := range lockrank.Table {
			l := &lockrank.Table[i]
			if l.Field != field || l.Type != ownerT.Obj().Name() || !l.PkgMatches(ownerT.Obj().Pkg().Path()) {
				continue
			}
			if l.Internal {
				return Event{}, false
			}
			return Event{Lock: l, Mode: mm.mode, Op: mm.op, Call: call}, true
		}
	}
	return Event{}, false
}

func latchMethod(l *lockrank.Lock, name string) (Op, lockrank.Mode, bool) {
	for _, m := range l.AcquireExcl {
		if m == name {
			return Acquire, lockrank.Exclusive, true
		}
	}
	for _, m := range l.AcquireShared {
		if m == name {
			return Acquire, lockrank.Shared, true
		}
	}
	for _, m := range l.ReleaseExcl {
		if m == name {
			return Release, lockrank.Exclusive, true
		}
	}
	for _, m := range l.ReleaseShared {
		if m == name {
			return Release, lockrank.Shared, true
		}
	}
	return 0, 0, false
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n
}

// ---------------------------------------------------------------------
// Held-lock walker.

// Held is one lock the walker believes is held at a program point.
type Held struct {
	Lock *lockrank.Lock
	Mode lockrank.Mode
	// At is where it was acquired (for diagnostics).
	At token.Pos
}

// Callbacks receives the walker's events. Either may be nil.
type Callbacks struct {
	// OnAcquire fires for each ranked acquisition, with the locks held
	// at that moment (the acquisition itself not yet included).
	OnAcquire func(ev Event, held []Held)
	// OnCall fires for every other call: callee is the statically
	// resolved target, or nil for calls through function values,
	// interface methods and method values. Conversions and builtins do
	// not fire.
	OnCall func(call *ast.CallExpr, callee *types.Func, held []Held)
}

// WalkFunc traverses a function body in source order, maintaining the
// multiset of ranked locks held. The model is deliberately linear — it
// tracks straight-line acquire/release pairing and treats a deferred
// release as holding to the end of the function — which matches how
// every critical section in this codebase is written; path-sensitive
// release checking is unlockpath's job. Function literals are walked
// with a fresh (empty) held set: they execute at some other time.
func WalkFunc(info *types.Info, body *ast.BlockStmt, cb Callbacks) {
	w := &walker{info: info, cb: cb}
	w.walk(body)
}

type walker struct {
	info *types.Info
	cb   Callbacks
	held []Held
}

func (w *walker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			w.ifStmt(n)
			return false
		case *ast.FuncLit:
			saved := w.held
			w.held = nil
			w.walk(n.Body)
			w.held = saved
			return false
		case *ast.DeferStmt:
			// A deferred release keeps the lock held for the walk's
			// remainder (that is what "held to end of function" means
			// linearly); a deferred acquisition is not a thing we model.
			if ev, ok := ClassifyCall(w.info, n.Call); ok && ev.Op == Release {
				return false
			}
			// Deferred ordinary calls run at exit, under whatever is
			// then held; the linear model skips them.
			return false
		case *ast.CallExpr:
			w.call(n)
			// Arguments were visited by w.call before the event fired;
			// do not descend again.
			return false
		}
		return true
	})
}

// ifStmt walks a branch with held-set restoration: a branch that
// cannot fall through (it returns, breaks, continues or panics) must
// not leak its acquire/release effects into the code after the if.
// This is the buffer pool's hit/miss shape — the hit arm unlocks and
// returns, the fall-through continues under the mutex — which a
// purely linear walk would misread as unlocked.
func (w *walker) ifStmt(n *ast.IfStmt) {
	if n.Init != nil {
		w.walk(n.Init)
	}
	w.walk(n.Cond)
	entry := append([]Held(nil), w.held...)
	w.walk(n.Body)
	bodyEnd := w.held
	bodyTerm := terminates(n.Body)
	if n.Else == nil {
		if bodyTerm {
			w.held = entry
		}
		return
	}
	w.held = append([]Held(nil), entry...)
	w.walk(n.Else)
	elseEnd := w.held
	switch {
	case bodyTerm && terminates(n.Else):
		w.held = entry // nothing after the if is reachable from either arm
	case bodyTerm:
		w.held = elseEnd
	default:
		// Else terminates, or both fall through; either way the body's
		// end state is the one that reaches the next statement (when
		// both fall through the arms are assumed lock-balanced, the
		// codebase's universal shape).
		w.held = bodyEnd
	}
}

// terminates reports whether no execution of s falls through to the
// statement after it.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return len(s.List) > 0 && terminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	}
	return false
}

func (w *walker) call(call *ast.CallExpr) {
	// Evaluate arguments (and the receiver chain) first: nested calls
	// happen before the outer one.
	for _, arg := range call.Args {
		w.walk(arg)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.walk(sel.X)
	}

	if ev, ok := ClassifyCall(w.info, call); ok {
		switch ev.Op {
		case Acquire:
			if w.cb.OnAcquire != nil {
				w.cb.OnAcquire(ev, w.held)
			}
			w.held = append(w.held, Held{Lock: ev.Lock, Mode: ev.Mode, At: call.Pos()})
		case Release:
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i].Lock == ev.Lock && w.held[i].Mode == ev.Mode {
					w.held = append(w.held[:i], w.held[i+1:]...)
					break
				}
			}
		}
		return
	}

	if w.cb.OnCall == nil {
		return
	}
	// Skip conversions and builtins; report static callees, and nil
	// for genuinely dynamic calls.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	switch callee := typeutil.Callee(w.info, call).(type) {
	case *types.Func:
		w.cb.OnCall(call, callee, w.held)
	case *types.Builtin:
		return
	case *types.Var:
		// A call through a func-typed variable, field or parameter.
		w.cb.OnCall(call, nil, w.held)
	default:
		if callee == nil {
			// Interface method calls, method values, immediate FuncLit
			// invocations, and calls of arbitrary expressions.
			if _, ok := w.info.TypeOf(call.Fun).Underlying().(*types.Signature); ok {
				w.cb.OnCall(call, nil, w.held)
			}
		}
	}
}
