package analysis_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/passes/copylock"

	"repro/internal/analysis/analyzertest"
)

// TestCopylockCatchesCopiedLatch pins the satellite requirement: the
// vet copylocks pass in the dsdblint set flags an rwLatch copied by
// value.
func TestCopylockCatchesCopiedLatch(t *testing.T) {
	analyzertest.Run(t, "testdata", copylock.Analyzer, "latchcopy")
}
