// Package lockrank declares the engine's lock hierarchy as data: every
// latch and mutex in the kernel and its serving layers, the order in
// which they may be acquired, and the auxiliary invariants (no tracer
// emission, shared-mode reentrancy) that the dsdblint analyzers
// enforce mechanically.
//
// The table is the single source of truth. The lockorder analyzer
// derives its partial order from the Before edges; the tracerlock
// analyzer reads the NoTracer bit; the unlockpath analyzer tracks
// acquire/release method pairs; and the lockrank unit tests pin two
// meta-invariants — the edges form a DAG, and every mutex-bearing type
// under internal/db appears here — so a new lock cannot be added to
// the engine without ranking it.
package lockrank

import (
	"fmt"
	"path"
	"strings"
)

// Mode distinguishes shared from exclusive acquisition of a
// reader/writer lock. Plain mutexes only ever acquire Exclusive.
type Mode int

const (
	Exclusive Mode = iota
	Shared
)

func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Lock is one ranked lock.
//
// A lock is identified structurally, not by annotation: either as a
// named mutex field of a named type (Type + Field, e.g. the buffer
// pool's Manager.mu), or as a custom latch type whose methods are the
// acquire/release surface (Type with AcquireExcl/AcquireShared/...
// method names, e.g. the engine's rwLatch). Pkg is the full import
// path of the declaring package; matching also accepts a bare package
// whose path equals the last element of Pkg, so analyzer testdata can
// declare stand-in types in packages named "engine", "buffer", ...
type Lock struct {
	// Name is the stable identity used in Before edges, diagnostics
	// and //lint:allow directives.
	Name string

	// Pkg is the import path of the declaring package.
	Pkg string

	// Type is the named type that carries the lock.
	Type string

	// Field names the sync.Mutex/sync.RWMutex field when the lock is
	// an ordinary mutex; empty for method-surface latches.
	Field string

	// Method-surface latches: names of the methods that acquire and
	// release each mode. Empty for mutex fields (which use the
	// standard Lock/RLock/Unlock/RUnlock surface).
	AcquireExcl   []string
	AcquireShared []string
	ReleaseExcl   []string
	ReleaseShared []string

	// Before lists the locks (by Name) that may be acquired while this
	// one is held. The transitive closure of these edges is the legal
	// acquisition order; anything else is a lockorder diagnostic.
	Before []string

	// SharedReentrant marks a lock whose shared mode may be reacquired
	// by a holder of the shared mode (the reader-preferring engine
	// latch: nested reads from an open result set are the documented
	// contract). Exclusive reacquisition is always a violation.
	SharedReentrant bool

	// NoTracer marks a lock under which no probe event may be emitted
	// and no caller-supplied callback may be invoked (the reentrant-
	// tracer deadlock class from PR 3/PR 4).
	NoTracer bool

	// Internal marks a lock that is the hidden implementation of a
	// method-surface latch declared elsewhere in the table (the
	// rwLatch's own mu). Internal locks are exempt from acquisition
	// tracking — their discipline is the latch methods' to keep — but
	// still count as "ranked" for the completeness test.
	Internal bool

	// Doc states the invariant and, where one exists, the historical
	// bug this rank pins.
	Doc string
}

// Table is the engine's lock hierarchy, outermost first. Order in the
// slice is documentation only; the partial order is the Before edges.
var Table = []Lock{
	{
		Name:   "server.mu",
		Pkg:    "repro/dsdb/server",
		Type:   "Server",
		Field:  "mu",
		Before: []string{"server.qmu"},
		Doc: "Server state mutex: connection registry, listener, drain flag. " +
			"Held while cancelling per-connection queries on forced shutdown, " +
			"so it ranks before server.qmu. Never held across engine calls or " +
			"frame writes — the serving layer sits above the kernel hierarchy.",
	},
	{
		Name:   "server.qmu",
		Pkg:    "repro/dsdb/server",
		Type:   "conn",
		Field:  "qmu",
		Before: nil,
		Doc: "Per-connection query-lifecycle mutex (qseen/qdone/pendingCancel " +
			"and the cancel func). A leaf; the read loop invokes the query's " +
			"context cancel under it by design — cancellation only flips a " +
			"channel, it never re-enters the engine — so it carries no " +
			"NoTracer bit.",
	},
	{
		Name:   "engine.closeMu",
		Pkg:    "repro/internal/db/engine",
		Type:   "DB",
		Field:  "closeMu",
		Before: []string{"engine.latch"},
		Doc: "Close/Abandon idempotence guard; taken before the engine latch " +
			"(Close checkpoints under the exclusive latch while holding it).",
	},
	{
		Name:          "engine.latch",
		Pkg:           "repro/internal/db/engine",
		Type:          "rwLatch",
		AcquireExcl:   []string{"lock"},
		AcquireShared: []string{"rlock"},
		ReleaseExcl:   []string{"unlock"},
		ReleaseShared: []string{"runlock"},
		Before: []string{
			"buffer.pool", "catalog.catalog", "storage.store",
			"wal.writer", "qcache.cache", "probe.counters", "obs.tracer",
		},
		SharedReentrant: true,
		Doc: "The engine latch: shared for query execution, exclusive for " +
			"Insert/DDL/Checkpoint. Reader-preferring by design (PR 2's " +
			"nested-read deadlock): shared reacquisition is legal, exclusive " +
			"reentry deadlocks.",
	},
	{
		Name:     "engine.latch.mu",
		Pkg:      "repro/internal/db/engine",
		Type:     "rwLatch",
		Field:    "mu",
		Internal: true,
		Doc: "The rwLatch's internal mutex; only the four latch methods may " +
			"touch it, so it is exempt from call-path tracking.",
	},
	{
		Name:     "buffer.pool",
		Pkg:      "repro/internal/db/buffer",
		Type:     "Manager",
		Field:    "mu",
		Before:   []string{"storage.store", "probe.counters"},
		NoTracer: true,
		Doc: "The buffer pool mutex: frame table, clock hand, flush registry. " +
			"No tracer emission while held (PR 3's reentrant-tracer deadlock); " +
			"miss IO runs under the per-frame latch, not here.",
	},
	{
		Name:   "storage.store",
		Pkg:    "repro/internal/db/storage",
		Type:   "Store",
		Field:  "mu",
		Before: nil,
		Doc: "Storage manager page-table RWMutex; a leaf — page IO must not " +
			"call back up into pool, catalog or engine.",
	},
	{
		Name:   "catalog.catalog",
		Pkg:    "repro/internal/db/catalog",
		Type:   "Catalog",
		Field:  "mu",
		Before: nil,
		Doc:    "Catalog RWMutex; a leaf.",
	},
	{
		Name:   "wal.writer",
		Pkg:    "repro/internal/db/wal",
		Type:   "Writer",
		Field:  "mu",
		Before: nil,
		Doc: "WAL writer mutex serializing Append/Sync/ResetTo; a leaf — log " +
			"IO never re-enters the engine.",
	},
	{
		Name:   "probe.counters",
		Pkg:    "repro/internal/db/probe",
		Type:   "CounterSet",
		Field:  "mu",
		Before: nil,
		Doc:    "Counter registry mutex (registration only; counts are atomic); a leaf.",
	},
	{
		Name:     "qcache.cache",
		Pkg:      "repro/dsdb/qcache",
		Type:     "Cache",
		Field:    "mu",
		Before:   nil,
		NoTracer: true,
		Doc: "Result cache mutex. A leaf, and no caller-supplied callback may " +
			"run under it (PR 4's epoch-validation callback: validation now " +
			"happens outside the critical section).",
	},
	{
		Name:   "dsdb.db",
		Pkg:    "repro/dsdb",
		Type:   "DB",
		Field:  "mu",
		Before: nil,
		Doc:    "dsdb.DB session-default mutex (tracer, parallelism); a leaf.",
	},
	{
		Name:     "obs.tracer",
		Pkg:      "repro/dsdb/obs",
		Type:     "Tracer",
		Field:    "mu",
		Before:   nil,
		NoTracer: true,
		Doc: "Observability tracer ring mutex (recent/slow query records). " +
			"A leaf: span finish runs after the engine latch is released, and " +
			"the caller-supplied slow-query logger is invoked strictly after " +
			"the rings are unlocked — no user code, probe emission or engine " +
			"re-entry under it.",
	},
}

// frame latch: the buffer pool's per-frame IO latch is channel-based
// (frame.ready), not a mutex, so it cannot be tracked by type — its
// place in the hierarchy (after buffer.pool, before storage.store) is
// enforced dynamically by the pool's loading/flushing protocol and
// documented here for the avoidance of doubt.

// ByName returns the lock named n, or nil.
func ByName(n string) *Lock {
	for i := range Table {
		if Table[i].Name == n {
			return &Table[i]
		}
	}
	return nil
}

// PkgMatches reports whether a package path is the lock's declaring
// package: the full path, or a bare path equal to its last element
// (analyzer testdata stand-ins).
func (l *Lock) PkgMatches(pkgPath string) bool {
	return pkgPath == l.Pkg || pkgPath == path.Base(l.Pkg)
}

// Validate checks the table's internal consistency: unique names,
// resolvable Before edges, and acyclicity. It returns the locks in a
// topological order (outermost first) so callers can print the
// hierarchy, or an error naming the cycle.
func Validate() ([]string, error) {
	seen := make(map[string]bool, len(Table))
	for i := range Table {
		l := &Table[i]
		if l.Name == "" || l.Pkg == "" || l.Type == "" {
			return nil, fmt.Errorf("lockrank: entry %d missing name/pkg/type", i)
		}
		if seen[l.Name] {
			return nil, fmt.Errorf("lockrank: duplicate lock name %q", l.Name)
		}
		seen[l.Name] = true
		if l.Field == "" && !l.Internal && len(l.AcquireExcl)+len(l.AcquireShared) == 0 {
			return nil, fmt.Errorf("lockrank: %s has neither a mutex field nor latch methods", l.Name)
		}
	}
	for i := range Table {
		for _, b := range Table[i].Before {
			if !seen[b] {
				return nil, fmt.Errorf("lockrank: %s: unknown Before edge %q", Table[i].Name, b)
			}
		}
	}
	// Kahn's algorithm: the edges must form a DAG.
	indeg := make(map[string]int, len(Table))
	for i := range Table {
		indeg[Table[i].Name] += 0
		for _, b := range Table[i].Before {
			indeg[b]++
		}
	}
	var queue, order []string
	for i := range Table { // table order keeps the result deterministic
		if indeg[Table[i].Name] == 0 {
			queue = append(queue, Table[i].Name)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, b := range ByName(n).Before {
			if indeg[b]--; indeg[b] == 0 {
				queue = append(queue, b)
			}
		}
	}
	if len(order) != len(Table) {
		var cyc []string
		for n, d := range indeg {
			if d > 0 {
				cyc = append(cyc, n)
			}
		}
		return nil, fmt.Errorf("lockrank: Before edges contain a cycle through %s", strings.Join(cyc, ", "))
	}
	return order, nil
}

// reach is the transitive closure of Before, built on first use.
var reach map[string]map[string]bool

func closure() map[string]map[string]bool {
	if reach != nil {
		return reach
	}
	r := make(map[string]map[string]bool, len(Table))
	var visit func(from string, n string)
	visit = func(from, n string) {
		for _, b := range ByName(n).Before {
			if !r[from][b] {
				r[from][b] = true
				visit(from, b)
			}
		}
	}
	for i := range Table {
		r[Table[i].Name] = make(map[string]bool)
		visit(Table[i].Name, Table[i].Name)
	}
	reach = r
	return r
}

// MayAcquire reports whether a goroutine holding `held` (in heldMode)
// may acquire `next` (in nextMode): next must be strictly inner to
// held in the transitive order, or the same lock reacquired shared
// under SharedReentrant.
func MayAcquire(held string, heldMode Mode, next string, nextMode Mode) bool {
	if held == next {
		l := ByName(held)
		return l != nil && l.SharedReentrant && heldMode == Shared && nextMode == Shared
	}
	return closure()[held][next]
}
