package lockrank

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTableIsDAG pins the meta-invariant the whole suite leans on: the
// declared Before edges form a DAG, so "acquired out of order" is
// well-defined.
func TestTableIsDAG(t *testing.T) {
	order, err := Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(Table) {
		t.Fatalf("topological order has %d locks, table has %d", len(order), len(Table))
	}
	t.Logf("lock hierarchy (outermost first): %s", strings.Join(order, " -> "))
}

func TestMayAcquire(t *testing.T) {
	cases := []struct {
		held     string
		heldMode Mode
		next     string
		nextMode Mode
		want     bool
	}{
		{"engine.latch", Shared, "buffer.pool", Exclusive, true},
		{"engine.latch", Exclusive, "wal.writer", Exclusive, true},
		{"engine.closeMu", Exclusive, "storage.store", Exclusive, true}, // transitive via engine.latch
		{"buffer.pool", Exclusive, "storage.store", Exclusive, true},
		{"buffer.pool", Exclusive, "engine.latch", Shared, false}, // out of order
		{"storage.store", Exclusive, "buffer.pool", Exclusive, false},
		{"engine.latch", Shared, "engine.latch", Shared, true},        // reader-preferring: nested reads
		{"engine.latch", Shared, "engine.latch", Exclusive, false},    // read-to-write upgrade deadlocks
		{"engine.latch", Exclusive, "engine.latch", Exclusive, false}, // exclusive reentry deadlocks
		{"buffer.pool", Exclusive, "buffer.pool", Exclusive, false},
		{"server.mu", Exclusive, "server.qmu", Exclusive, true},  // Shutdown cancels per-conn queries
		{"server.qmu", Exclusive, "server.mu", Exclusive, false}, // reverse order deadlocks against Shutdown
		{"server.mu", Exclusive, "engine.latch", Shared, false},  // serving mutexes never wrap engine calls
		{"engine.latch", Shared, "obs.tracer", Exclusive, true},  // span finish may record under the tracer rings
		{"obs.tracer", Exclusive, "engine.latch", Shared, false}, // the tracer never re-enters the engine
	}
	for _, c := range cases {
		if got := MayAcquire(c.held, c.heldMode, c.next, c.nextMode); got != c.want {
			t.Errorf("MayAcquire(%s/%s -> %s/%s) = %v, want %v",
				c.held, c.heldMode, c.next, c.nextMode, got, c.want)
		}
	}
}

// TestEveryMutexBearingTypeIsRanked walks every non-test source file of
// the packages the hierarchy spans (internal/db/... plus the dsdb
// packages the table covers) and checks that each struct field of type
// sync.Mutex or sync.RWMutex belongs to a (type, field) pair declared
// in the table. A new lock added anywhere in the kernel fails this
// test until it is ranked — which is the point.
func TestEveryMutexBearingTypeIsRanked(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	roots := []string{
		filepath.Join(root, "internal", "db"),
		filepath.Join(root, "dsdb", "qcache"),
		filepath.Join(root, "dsdb", "server"),
		filepath.Join(root, "dsdb", "obs"),
		// wcap is mutex-free by design (atomics + one channel); walking
		// it keeps that true — any mutex added there must be ranked.
		filepath.Join(root, "dsdb", "wcap"),
	}
	// dsdb's own root package (not client/load: their mutexes guard
	// per-session protocol state on the dialing side and are outside
	// the hierarchy; the server's mutexes ARE ranked — Shutdown holds
	// server.mu across per-connection cancellation).
	dsdbFiles, err := filepath.Glob(filepath.Join(root, "dsdb", "*.go"))
	if err != nil {
		t.Fatal(err)
	}

	var files []string
	for _, r := range roots {
		err := filepath.WalkDir(r, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range dsdbFiles {
		if !strings.HasSuffix(p, "_test.go") {
			files = append(files, p)
		}
	}
	if len(files) == 0 {
		t.Fatal("found no kernel source files; wrong working directory?")
	}

	fset := token.NewFileSet()
	checked := 0
	for _, p := range files {
		f, err := parser.ParseFile(fset, p, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		pkgPath := "repro/" + filepath.ToSlash(strings.TrimPrefix(filepath.Dir(p), root+string(os.PathSeparator)))
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !isSyncMutex(fld.Type) {
					continue
				}
				for _, name := range fld.Names {
					checked++
					if !ranked(pkgPath, ts.Name.Name, name.Name) {
						t.Errorf("%s: %s.%s (%s) is a mutex with no lockrank entry — add it to the table",
							fset.Position(fld.Pos()), ts.Name.Name, name.Name, pkgPath)
					}
				}
				if len(fld.Names) == 0 {
					t.Errorf("%s: %s embeds a bare mutex — name it and rank it", fset.Position(fld.Pos()), ts.Name.Name)
				}
			}
			return true
		})
	}
	if checked == 0 {
		t.Fatal("found no mutex fields at all; the scan is broken")
	}
	t.Logf("checked %d mutex fields across %d files", checked, len(files))
}

func isSyncMutex(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "sync" {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

func ranked(pkgPath, typ, field string) bool {
	for i := range Table {
		l := &Table[i]
		if l.PkgMatches(pkgPath) && l.Type == typ && l.Field == field {
			return true
		}
	}
	return false
}
