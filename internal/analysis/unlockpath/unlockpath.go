// Package unlockpath defines an analyzer that checks that every
// acquisition of a ranked lock is released on every control-flow path
// out of the acquiring function.
//
// The vet copylocks/lostcancel family knows nothing about the engine's
// custom rwLatch, whose lock/rlock have no LockGuard type to lean on;
// buffer-pool code also releases its pool mutex hand-over-hand across
// IO sections rather than by defer, which is exactly where an
// early-return leak slips in. The check: for each acquire, either a
// matching deferred release exists in the function (which also covers
// panic unwinding), or every CFG path from the acquisition reaches a
// matching release before the function exits. Functions that
// intentionally escape a lock — BeginRead returns its release as a
// closure — carry a function-scope //lint:allow with the reason.
package unlockpath

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"repro/internal/analysis/lintutil"
	"repro/internal/analysis/lockrank"
)

const name = "unlockpath"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "check that ranked locks are released on all paths out of the acquiring function",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

// lockKey identifies a lock instance within one function: the ranked
// lock plus the mode it was acquired in. (Distinct instances of the
// same ranked type within one function are rare enough that keying by
// rank name keeps the check simple; the codebase has none.)
type lockKey struct {
	name string
	mode lockrank.Mode
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	allow := lintutil.NewAllower(pass, name)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		g := cfgs.FuncDecl(fd)
		if g == nil || len(g.Blocks) == 0 {
			return
		}

		// Deferred releases anywhere in the function cover their lock:
		// defer runs on every exit, including panics.
		deferred := make(map[lockKey]bool)
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			if x, ok := x.(*ast.FuncLit); ok && x != nil {
				return false // a nested function's defers are its own
			}
			ds, ok := x.(*ast.DeferStmt)
			if !ok {
				return true
			}
			if ev, ok := lintutil.ClassifyCall(pass.TypesInfo, ds.Call); ok && ev.Op == lintutil.Release {
				deferred[lockKey{ev.Lock.Name, ev.Mode}] = true
			}
			return true
		})

		for _, b := range g.Blocks {
			for i, node := range b.Nodes {
				for _, ev := range events(pass, node) {
					if ev.Op != lintutil.Acquire {
						continue
					}
					k := lockKey{ev.Lock.Name, ev.Mode}
					if deferred[k] {
						continue
					}
					if leaks(pass, g, b, i, node, ev) {
						allow.Reportf(ev.Call.Pos(),
							"%s acquired (%s) but not released on every path out of %s: add the missing release or a deferred one",
							ev.Lock.Name, ev.Mode, fd.Name.Name)
					}
				}
			}
		}
	})
	return nil, nil
}

// events returns the ranked-lock operations syntactically inside one
// CFG node, in source order. Deferred releases are excluded — they do
// not release at this program point — and function literals are
// opaque.
func events(pass *analysis.Pass, node ast.Node) []lintutil.Event {
	var out []lintutil.Event
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if ev, ok := lintutil.ClassifyCall(pass.TypesInfo, x); ok {
				out = append(out, ev)
			}
		}
		return true
	})
	return out
}

// leaks reports whether some path from the acquisition at block b,
// node index i, reaches a function exit without a matching release.
func leaks(pass *analysis.Pass, g *cfg.CFG, b *cfg.Block, i int, acqNode ast.Node, acq lintutil.Event) bool {
	k := lockKey{acq.Lock.Name, acq.Mode}

	// Rest of the acquiring node after the acquire call itself: a
	// statement like `if err := l.lock(); ...` cannot release, so only
	// subsequent events in the same node matter. events() returns
	// source order; take everything after the acquire.
	rest := events(pass, acqNode)
	for idx, ev := range rest {
		if ev.Call == acq.Call {
			rest = rest[idx+1:]
			break
		}
	}
	if releasedIn(rest, k) {
		return false
	}
	for _, node := range b.Nodes[i+1:] {
		if releasedIn(events(pass, node), k) {
			return false
		}
	}

	// BFS over successors: held on entry; released blocks close their
	// paths, exit blocks reached while held are leaks.
	seen := make(map[*cfg.Block]bool)
	queue := append([]*cfg.Block(nil), b.Succs...)
	if len(b.Succs) == 0 {
		return b.Live // fell off the end of a live block while held
	}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		released := false
		for _, node := range blk.Nodes {
			if releasedIn(events(pass, node), k) {
				released = true
				break
			}
		}
		if released {
			continue
		}
		if len(blk.Succs) == 0 {
			if blk.Live || len(blk.Nodes) > 0 {
				return true
			}
			// Dead or synthetic empty exit (e.g. unreachable fallthrough):
			// not a real path.
			continue
		}
		queue = append(queue, blk.Succs...)
	}
	return false
}

func releasedIn(evs []lintutil.Event, k lockKey) bool {
	for _, ev := range evs {
		if ev.Op == lintutil.Release && ev.Lock.Name == k.name && ev.Mode == k.mode {
			return true
		}
	}
	return false
}
