// Package badallow seeds a malformed escape hatch: the directive
// names the analyzer but omits its reason, which is itself reported.
package badallow

func helper() {
	x := 1 //lint:allow unlockpath
	_ = x
}
