// Package engine is a testdata stand-in exercising release-on-all-
// paths checking for both the custom latch surface and ranked
// mutexes.
package engine

import "sync"

type rwLatch struct {
	mu sync.Mutex
}

func (l *rwLatch) lock()    { l.mu.Lock() }
func (l *rwLatch) unlock()  { l.mu.Unlock() }
func (l *rwLatch) rlock()   { l.mu.Lock() }
func (l *rwLatch) runlock() { l.mu.Unlock() }

type DB struct {
	closeMu sync.Mutex
	latch   *rwLatch
	closed  bool
}

func work() {}

// legalDefer: a deferred release covers every exit, panics included.
func (db *DB) legalDefer() {
	db.latch.lock()
	defer db.latch.unlock()
	work()
}

// legalBothPaths releases explicitly on each arm.
func (db *DB) legalBothPaths(cond bool) {
	db.latch.rlock()
	if cond {
		db.latch.runlock()
		return
	}
	db.latch.runlock()
}

// legalHandOverHand: two disjoint critical sections in one function.
func (db *DB) legalHandOverHand() {
	db.closeMu.Lock()
	db.closeMu.Unlock()
	work()
	db.closeMu.Lock()
	db.closeMu.Unlock()
}

// legalLoop: the critical section is contained in the loop body.
func (db *DB) legalLoop(n int) {
	for i := 0; i < n; i++ {
		db.closeMu.Lock()
		db.closeMu.Unlock()
	}
}

func (db *DB) badEarlyReturn(cond bool) {
	db.latch.lock() // want "engine.latch acquired .exclusive. but not released on every path out of badEarlyReturn"
	if cond {
		return
	}
	db.latch.unlock()
}

// badModeMismatch releases the wrong mode: an exclusive unlock does
// not release a shared hold.
func (db *DB) badModeMismatch() {
	db.latch.rlock() // want "engine.latch acquired .shared. but not released on every path out of badModeMismatch"
	db.latch.unlock()
}

func (db *DB) badForgotten() bool {
	db.closeMu.Lock() // want "engine.closeMu acquired .exclusive. but not released on every path out of badForgotten"
	if db.closed {
		return false
	}
	db.closed = true
	db.closeMu.Unlock()
	return true
}

// BeginRead escapes its latch by design: the caller releases through
// the returned closure.
//
//lint:allow unlockpath the shared latch escapes to the caller as the release closure
func (db *DB) BeginRead() func() {
	db.latch.rlock()
	return db.latch.runlock
}
