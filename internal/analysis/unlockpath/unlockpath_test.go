package unlockpath_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/unlockpath"
)

func TestUnlockPath(t *testing.T) {
	analyzertest.Run(t, "testdata", unlockpath.Analyzer, "engine")
}

// TestBareAllowDirectiveReported pins the escape hatch's own
// contract: a //lint:allow with no reason is a diagnostic, not a
// suppression.
func TestBareAllowDirectiveReported(t *testing.T) {
	diags := analyzertest.Diagnostics(t, "testdata", unlockpath.Analyzer, "badallow")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the malformed-directive one: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "missing its reason") {
		t.Fatalf("unexpected diagnostic: %s", diags[0].Message)
	}
}
