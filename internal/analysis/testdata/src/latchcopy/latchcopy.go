// Package latchcopy seeds a by-value copy of the engine's rwLatch so
// the suite proves the vet copylocks pass (part of the dsdblint
// analyzer set) catches it.
package latchcopy

import "sync"

type rwLatch struct {
	mu      sync.Mutex
	readers int
}

type DB struct {
	latch rwLatch
}

// snapshot copies the latch by value: the copy's mutex shares no
// state with the original, which silently breaks mutual exclusion.
func snapshot(l rwLatch) int { // want "snapshot passes lock by value: latchcopy.rwLatch contains sync.Mutex"
	return l.readers
}

func inspect(db *DB) int {
	return snapshot(db.latch) // want "call of snapshot copies lock value: latchcopy.rwLatch contains sync.Mutex"
}
