// Package layout implements the profile-guided code-layout baselines
// the paper compares the Software Trace Cache against (Section 7):
// the Pettis & Hansen procedure/basic-block reordering and the
// Torrellas et al. sequence layout with a per-block Conflict Free
// Area. The original (link-order) baseline lives in package program.
package layout

import (
	"sort"

	"repro/internal/profile"
	"repro/internal/program"
)

// PettisHansen computes the P&H layout: basic blocks are chained
// within each procedure so the hottest successor falls through, unused
// blocks are split off ("fluff"), and whole procedures are ordered by
// a closest-is-best greedy merge of the weighted call graph. The
// algorithm is cache-geometry oblivious, as the paper notes.
func PettisHansen(pr *profile.Profile) *program.Layout {
	prog := pr.Prog
	procOrder := orderProcedures(pr)
	var hot, cold []program.BlockID
	for _, pid := range procOrder {
		h, c := chainProcedure(pr, pid)
		hot = append(hot, h...)
		cold = append(cold, c...)
	}
	// Split procedures: all fluff moves after the hot code.
	order := append(hot, cold...)
	return program.NewLayoutFromOrder("P&H", prog, order)
}

// chainProcedure orders the blocks of one procedure: executed blocks
// are chained along their heaviest intra-procedure edges (so hot
// conditional branches fall through); never-executed blocks are
// returned separately as fluff.
func chainProcedure(pr *profile.Profile, pid program.ProcID) (hot, cold []program.BlockID) {
	prog := pr.Prog
	proc := &prog.Procs[pid]
	if pr.ProcWeight(pid) == 0 && !anyExecuted(pr, proc) {
		// Entirely cold procedure: keep declaration order, all fluff.
		return nil, append([]program.BlockID(nil), proc.Blocks...)
	}

	// Collect intra-procedure dynamic edges.
	type edge struct {
		from, to program.BlockID
		w        uint64
	}
	var edges []edge
	inProc := make(map[program.BlockID]bool, len(proc.Blocks))
	for _, b := range proc.Blocks {
		inProc[b] = true
	}
	for _, b := range proc.Blocks {
		if pr.Weight(b) == 0 {
			continue
		}
		blk := prog.Block(b)
		if blk.Kind == program.KindCall {
			// P&H works on the static intra-procedure CFG: a call block
			// always continues at its continuation once the callee
			// returns, with the block's own execution weight.
			edges = append(edges, edge{b, blk.Succs[0], pr.Weight(b)})
			continue
		}
		for _, s := range pr.Succs(b) {
			if inProc[s.To] {
				edges = append(edges, edge{b, s.To, s.Count})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})

	// Union chains: an edge merges the chain ending in `from` with the
	// chain starting at `to`.
	chainOf := make(map[program.BlockID]int)
	var chains [][]program.BlockID
	for _, b := range proc.Blocks {
		if pr.Weight(b) > 0 {
			chainOf[b] = len(chains)
			chains = append(chains, []program.BlockID{b})
		}
	}
	for _, e := range edges {
		ci, cj := chainOf[e.from], chainOf[e.to]
		if ci == cj {
			continue
		}
		a, b := chains[ci], chains[cj]
		if a[len(a)-1] != e.from || b[0] != e.to {
			continue // from must end its chain, to must start its chain
		}
		merged := append(a, b...)
		chains[ci] = merged
		chains[cj] = nil
		for _, blk := range b {
			chainOf[blk] = ci
		}
	}

	// Entry chain first, then remaining chains by weight of their head.
	entryChain := chainOf[proc.Entry]
	var rest []int
	for i, c := range chains {
		if c != nil && i != entryChain {
			rest = append(rest, i)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		wi, wj := pr.Weight(chains[rest[i]][0]), pr.Weight(chains[rest[j]][0])
		if wi != wj {
			return wi > wj
		}
		return chains[rest[i]][0] < chains[rest[j]][0]
	})
	hot = append(hot, chains[entryChain]...)
	for _, i := range rest {
		hot = append(hot, chains[i]...)
	}
	for _, b := range proc.Blocks {
		if pr.Weight(b) == 0 {
			cold = append(cold, b)
		}
	}
	return hot, cold
}

func anyExecuted(pr *profile.Profile, proc *program.Proc) bool {
	for _, b := range proc.Blocks {
		if pr.Weight(b) > 0 {
			return true
		}
	}
	return false
}

// orderProcedures implements P&H "closest is best" procedure ordering:
// the call graph's procedure groups are merged along decreasing edge
// weight, choosing the orientation that brings the two connected
// procedures closest together. Unexecuted procedures keep declaration
// order at the end.
func orderProcedures(pr *profile.Profile) []program.ProcID {
	prog := pr.Prog

	// Undirected call-graph weights between procedures.
	type pair struct{ a, b program.ProcID }
	weights := make(map[pair]uint64)
	for e, c := range pr.EdgeCount {
		pf := prog.Block(e.From).Proc
		pt := prog.Block(e.To).Proc
		if pf == pt {
			continue
		}
		// Only count call edges (call block -> entry), not returns, so
		// each dynamic call contributes once.
		if prog.Block(e.From).Kind != program.KindCall {
			continue
		}
		a, b := pf, pt
		if a > b {
			a, b = b, a
		}
		weights[pair{a, b}] += c
	}
	type wedge struct {
		a, b program.ProcID
		w    uint64
	}
	var edges []wedge
	for p, w := range weights {
		edges = append(edges, wedge{p.a, p.b, w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Each executed procedure starts as its own group.
	groupOf := make(map[program.ProcID]int)
	var groups [][]program.ProcID
	executed := make([]bool, prog.NumProcs())
	for i := range prog.Procs {
		if anyExecuted(pr, &prog.Procs[i]) {
			executed[i] = true
			groupOf[program.ProcID(i)] = len(groups)
			groups = append(groups, []program.ProcID{program.ProcID(i)})
		}
	}
	pos := func(g []program.ProcID, p program.ProcID) int {
		for i, x := range g {
			if x == p {
				return i
			}
		}
		return -1
	}
	for _, e := range edges {
		gi, gj := groupOf[e.a], groupOf[e.b]
		if gi == gj {
			continue
		}
		a, b := groups[gi], groups[gj]
		// Four orientations; choose the one minimizing the distance
		// between e.a and e.b ("closest is best").
		best := -1
		var merged []program.ProcID
		for o := 0; o < 4; o++ {
			x := append([]program.ProcID(nil), a...)
			y := append([]program.ProcID(nil), b...)
			if o&1 != 0 {
				reverse(x)
			}
			if o&2 != 0 {
				reverse(y)
			}
			cand := append(x, y...)
			d := pos(cand, e.b) - pos(cand, e.a)
			if d < 0 {
				d = -d
			}
			if best == -1 || d < best {
				best = d
				merged = cand
			}
		}
		groups[gi] = merged
		groups[gj] = nil
		for _, p := range merged {
			groupOf[p] = gi
		}
	}

	// Emit: groups in order of their hottest member, then cold procs.
	type gw struct {
		idx int
		w   uint64
	}
	var gws []gw
	for i, g := range groups {
		if g == nil {
			continue
		}
		var w uint64
		for _, p := range g {
			if pw := pr.ProcWeight(p); pw > w {
				w = pw
			}
		}
		gws = append(gws, gw{i, w})
	}
	sort.Slice(gws, func(i, j int) bool {
		if gws[i].w != gws[j].w {
			return gws[i].w > gws[j].w
		}
		return gws[i].idx < gws[j].idx
	})
	var out []program.ProcID
	for _, g := range gws {
		out = append(out, groups[g.idx]...)
	}
	for i := range prog.Procs {
		if !executed[i] {
			out = append(out, program.ProcID(i))
		}
	}
	return out
}

func reverse(s []program.ProcID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
