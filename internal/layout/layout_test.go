package layout

import (
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/trace"
)

// callerProgram: main calls two helpers with different frequencies and
// has a hot and a cold intra-procedure path.
func callerProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder()
	m := b.Proc("main", "core")
	m.Cond("entry", 4, "cold") // hot fall-through, rare branch to cold
	m.Call("callhot", 2, "hot")
	m.Call("callrare", 2, "rare")
	m.Jump("loop", 2, "entry")
	m.Fall("cold", 6)
	m.Ret("exit", 2)
	h := b.Proc("hot", "lib")
	h.Ret("entry", 4)
	r := b.Proc("rare", "lib")
	r.Ret("entry", 4)
	c := b.ColdProc("never", "error")
	c.Ret("entry", 12)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// run produces a trace with n loop iterations; helpers called each
// iteration, "rare" only every 10th.
func run(t *testing.T, p *program.Program, n int) *profile.Profile {
	t.Helper()
	tr := trace.New(p)
	rec := trace.NewRecorder(tr, true)
	id := p.MustBlock
	for i := 0; i < n; i++ {
		rec.Block(id("main.entry"))
		rec.Block(id("main.callhot"))
		rec.Block(id("hot.entry"))
		rec.Block(id("main.callrare"))
		if i%10 == 9 {
			rec.Block(id("rare.entry"))
			// Return goes to main.loop.
		} else {
			rec.Block(id("rare.entry"))
		}
		rec.Block(id("main.loop"))
	}
	rec.Block(id("main.entry"))
	rec.Block(id("main.cold"))
	rec.Block(id("main.exit"))
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	return profile.FromTrace(tr)
}

func TestPettisHansenValidAndHotFirst(t *testing.T) {
	p := callerProgram(t)
	pr := run(t, p, 100)
	l := PettisHansen(pr)
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every executed block must precede every never-executed block.
	var maxHot, minCold uint64 = 0, ^uint64(0)
	for b := 0; b < p.NumBlocks(); b++ {
		a := l.AddrOf(program.BlockID(b))
		if pr.Weight(program.BlockID(b)) > 0 {
			if a > maxHot {
				maxHot = a
			}
		} else if a < minCold {
			minCold = a
		}
	}
	if maxHot >= minCold {
		t.Fatalf("hot code (max %d) must precede fluff (min %d)", maxHot, minCold)
	}
}

func TestPettisHansenChainsHotPath(t *testing.T) {
	p := callerProgram(t)
	pr := run(t, p, 100)
	l := PettisHansen(pr)
	// Within main, the hot chain entry->callhot->callrare->loop must be
	// consecutive (each chained along the heaviest edges).
	chain := []string{"main.entry", "main.callhot", "main.callrare", "main.loop"}
	for i := 1; i < len(chain); i++ {
		prev, cur := p.MustBlock(chain[i-1]), p.MustBlock(chain[i])
		if l.AddrOf(cur) != l.AddrOf(prev)+p.Block(prev).SizeBytes() {
			t.Errorf("%s should fall through to %s", chain[i-1], chain[i])
		}
	}
}

func TestPettisHansenPlacesCallersNearCallees(t *testing.T) {
	p := callerProgram(t)
	pr := run(t, p, 100)
	l := PettisHansen(pr)
	// "hot" is called 101 times, "rare" 101 times too (both called per
	// iteration in this trace), "never" not at all: never must be last.
	never := l.AddrOf(p.EntryOf("never"))
	for _, n := range []string{"main", "hot", "rare"} {
		if l.AddrOf(p.EntryOf(n)) > never {
			t.Errorf("executed proc %s placed after cold proc", n)
		}
	}
}

func TestTorrellasCFAHoldsTopBlocks(t *testing.T) {
	p := callerProgram(t)
	pr := run(t, p, 100)
	params := core.Params{
		ExecThreshold:   10,
		BranchThreshold: 0.3,
		CacheBytes:      128,
		CFABytes:        32,
	}
	l := Torrellas(pr, params)
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The most popular blocks (by count) must occupy [0, CFABytes).
	blocks := pr.ExecutedBlocks()
	var cfaBytes uint64
	for _, b := range blocks {
		sz := p.Block(b).SizeBytes()
		if cfaBytes+sz > uint64(params.CFABytes) {
			break
		}
		if l.AddrOf(b) != cfaBytes {
			t.Errorf("popular block %s at %d, want %d (in CFA)",
				p.Block(b).Name, l.AddrOf(b), cfaBytes)
		}
		cfaBytes += sz
	}
	// Non-CFA blocks must avoid [0, CFABytes) offsets... only within
	// the sequence-mapped region; cold code may use any offset. Check
	// executed blocks outside the CFA don't sit below CFABytes in
	// chunk 0.
	for _, b := range blocks {
		a := l.AddrOf(b)
		if a < cfaBytes {
			continue // CFA members
		}
		if a < uint64(params.CFABytes) {
			t.Errorf("executed non-CFA block %s at %d overlaps the CFA",
				p.Block(b).Name, a)
		}
	}
}

func TestGreedyConcatenatesSequences(t *testing.T) {
	p := callerProgram(t)
	pr := run(t, p, 50)
	params := core.Params{ExecThreshold: 5, BranchThreshold: 0.3, CacheBytes: 1024, CFABytes: 256}
	seeds := core.AutoSeeds(pr)
	l := Greedy("greedy", pr, seeds, params)
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	seqs, _ := core.BuildAllSequences(pr, seeds, params)
	var addr uint64
	for _, s := range seqs {
		for _, b := range s.Blocks {
			if l.AddrOf(b) != addr {
				t.Fatalf("block %s at %d, want %d", p.Block(b).Name, l.AddrOf(b), addr)
			}
			addr += p.Block(b).SizeBytes()
		}
	}
}

func TestSortBlocksByWeightValid(t *testing.T) {
	p := callerProgram(t)
	pr := run(t, p, 10)
	l := SortBlocksByWeight(pr)
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Addresses in order position must have non-increasing weight.
	for i := 1; i < len(l.Order); i++ {
		if pr.Weight(l.Order[i]) > pr.Weight(l.Order[i-1]) {
			t.Fatal("order not sorted by weight")
		}
	}
}

func TestAllLayoutsAreValidPermutations(t *testing.T) {
	p := callerProgram(t)
	pr := run(t, p, 30)
	params := core.Params{ExecThreshold: 5, BranchThreshold: 0.3, CacheBytes: 256, CFABytes: 64}
	layouts := []*program.Layout{
		program.OriginalLayout(p),
		PettisHansen(pr),
		Torrellas(pr, params),
		Greedy("greedy", pr, core.AutoSeeds(pr), params),
		core.Build("stc", pr, core.AutoSeeds(pr), params),
		SortBlocksByWeight(pr),
	}
	for _, l := range layouts {
		if err := l.Validate(p); err != nil {
			t.Errorf("layout %s invalid: %v", l.Name, err)
		}
	}
}
