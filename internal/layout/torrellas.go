package layout

import (
	"sort"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/program"
)

// Torrellas computes the layout of Torrellas, Xia and Daigle (HPCA'95),
// as characterized by the paper: basic-block sequences spanning
// procedures are laid out like the STC's, but the Conflict Free Area
// holds the most frequently referenced *individual basic blocks*,
// pulled out of their sequences. Jumping in and out of the CFA breaks
// sequentiality, which is exactly the deficiency Table 4 exposes for
// the larger CFA sizes.
func Torrellas(pr *profile.Profile, p core.Params) *program.Layout {
	prog := pr.Prog
	seeds := core.AutoSeeds(pr)
	seqs, _ := core.BuildAllSequences(pr, seeds, p)

	// CFA: the most popular individual blocks, packed until full.
	blocks := pr.ExecutedBlocks() // sorted by decreasing count
	inCFA := make([]bool, prog.NumBlocks())
	addr := make([]uint64, prog.NumBlocks())
	placed := make([]bool, prog.NumBlocks())
	cacheB := uint64(p.CacheBytes)
	cfaB := uint64(p.CFABytes)
	var cfaCursor uint64
	for _, b := range blocks {
		sz := prog.Block(b).SizeBytes()
		if cfaCursor+sz > cfaB {
			break
		}
		inCFA[b] = true
		addr[b] = cfaCursor
		placed[b] = true
		cfaCursor += sz
	}

	// Sequences (minus the pulled blocks) fill the non-CFA area of
	// successive logical caches; overlong sequences split at chunk
	// boundaries so the per-block CFA stays conflict-free.
	var maxUsed uint64 = cfaCursor
	chunk := uint64(0)
	cursor := cfaB
	for i := range seqs {
		var rest []program.BlockID
		var sz uint64
		for _, b := range seqs[i].Blocks {
			if !inCFA[b] {
				rest = append(rest, b)
				sz += prog.Block(b).SizeBytes()
			}
		}
		if len(rest) == 0 {
			continue
		}
		if cursor+sz > cacheB && cursor > cfaB && sz <= cacheB-cfaB {
			chunk++
			cursor = cfaB
		}
		for _, b := range rest {
			bsz := prog.Block(b).SizeBytes()
			if cursor+bsz > cacheB {
				chunk++
				cursor = cfaB
			}
			addr[b] = chunk*cacheB + cursor
			placed[b] = true
			cursor += bsz
			if a := chunk*cacheB + cursor; a > maxUsed {
				maxUsed = a
			}
		}
	}

	// Cold and unsequenced code afterwards, unconstrained.
	var end uint64
	if maxUsed > 0 {
		end = (maxUsed + cacheB - 1) / cacheB * cacheB
	}
	for pi := range prog.Procs {
		for _, b := range prog.Procs[pi].Blocks {
			if !placed[b] {
				addr[b] = end
				placed[b] = true
				end += prog.Block(b).SizeBytes()
			}
		}
	}
	return program.NewLayoutFromAddrs("Torr", prog, addr)
}

// Greedy returns a geometry-oblivious layout that simply concatenates
// the STC sequences in construction order followed by cold code: the
// "sequences without CFA mapping" ablation used to separate the
// contribution of sequence building from conflict-free mapping.
func Greedy(name string, pr *profile.Profile, seeds []program.BlockID, p core.Params) *program.Layout {
	prog := pr.Prog
	seqs, _ := core.BuildAllSequences(pr, seeds, p)
	var order []program.BlockID
	inSeq := make([]bool, prog.NumBlocks())
	for i := range seqs {
		for _, b := range seqs[i].Blocks {
			order = append(order, b)
			inSeq[b] = true
		}
	}
	for pi := range prog.Procs {
		for _, b := range prog.Procs[pi].Blocks {
			if !inSeq[b] {
				order = append(order, b)
			}
		}
	}
	return program.NewLayoutFromOrder(name, prog, order)
}

// SortBlocksByWeight returns all blocks sorted by decreasing dynamic
// count, cold blocks last in declaration order (a naive
// popularity-packing baseline useful in tests and ablations).
func SortBlocksByWeight(pr *profile.Profile) *program.Layout {
	prog := pr.Prog
	order := make([]program.BlockID, prog.NumBlocks())
	for i := range order {
		order[i] = program.BlockID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return pr.Weight(order[i]) > pr.Weight(order[j])
	})
	return program.NewLayoutFromOrder("popularity", prog, order)
}
