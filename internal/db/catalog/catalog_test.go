package catalog

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/db/value"
)

func sampleSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Type: value.Int},
		Column{Name: "name", Type: value.Str},
		Column{Name: "born", Type: value.Date},
	)
}

func TestSchemaColIndex(t *testing.T) {
	s := sampleSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ColIndex("name") != 1 || s.ColIndex("id") != 0 {
		t.Fatal("ColIndex wrong")
	}
	if s.ColIndex("ghost") != -1 {
		t.Fatal("missing column must return -1")
	}
}

func TestCatalogTablesAndIndexes(t *testing.T) {
	c := New()
	tb, err := c.AddTable("people", sampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tb.FileID != 0 || c.NumFiles() != 1 {
		t.Fatalf("file allocation wrong: %d/%d", tb.FileID, c.NumFiles())
	}
	if _, err := c.AddTable("people", sampleSchema()); err == nil {
		t.Fatal("duplicate table must fail")
	}
	ix, err := c.AddIndex("people", "id", BTree, true)
	if err != nil {
		t.Fatal(err)
	}
	if ix.FileID != 1 || ix.Col != 0 || !ix.Unique {
		t.Fatalf("index wrong: %+v", ix)
	}
	if _, err := c.AddIndex("people", "ghost", Hash, false); err == nil {
		t.Fatal("index on missing column must fail")
	}
	if _, err := c.AddIndex("ghost", "id", Hash, false); err == nil {
		t.Fatal("index on missing table must fail")
	}
	if tb.IndexOn("id") == nil || tb.IndexOn("name") != nil {
		t.Fatal("IndexOn wrong")
	}
	got, ok := c.Table("people")
	if !ok || got != tb {
		t.Fatal("Table lookup wrong")
	}
	if len(c.Tables()) != 1 {
		t.Fatal("Tables() wrong")
	}
}

func TestIndexKindString(t *testing.T) {
	if BTree.String() != "btree" || Hash.String() != "hash" {
		t.Fatal("kind names wrong")
	}
}

// TestConcurrentReadersAndDDL races lookups against table creation:
// the catalog latch must keep the name map and file-ID assignment
// consistent (every table keeps a unique file ID, readers never see a
// torn map).
func TestConcurrentReadersAndDDL(t *testing.T) {
	c := New()
	const writers, perWriter, readers = 4, 50, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("t_%d_%d", w, i)
				if _, err := c.AddTable(name, sampleSchema()); err != nil {
					t.Errorf("AddTable %s: %v", name, err)
					return
				}
				if _, err := c.AddIndex(name, "id", BTree, true); err != nil {
					t.Errorf("AddIndex %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, tbl := range c.Tables() {
					if tbl == nil {
						t.Error("Tables returned nil entry")
						return
					}
				}
				c.Table("t_0_0")
				c.NumFiles()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Every table + index must hold a distinct file ID.
	seen := make(map[int]string)
	for _, tbl := range c.Tables() {
		if prev, dup := seen[tbl.FileID]; dup {
			t.Fatalf("file ID %d assigned to both %s and %s", tbl.FileID, prev, tbl.Name)
		}
		seen[tbl.FileID] = tbl.Name
		for _, ix := range tbl.Indexes {
			if prev, dup := seen[ix.FileID]; dup {
				t.Fatalf("file ID %d assigned to both %s and %s", ix.FileID, prev, ix.Name)
			}
			seen[ix.FileID] = ix.Name
		}
	}
	if got := len(seen); got != 2*writers*perWriter {
		t.Fatalf("got %d catalog objects, want %d", got, 2*writers*perWriter)
	}
	if c.NumFiles() != 2*writers*perWriter {
		t.Fatalf("NumFiles = %d, want %d", c.NumFiles(), 2*writers*perWriter)
	}
}
