package catalog

import (
	"testing"

	"repro/internal/db/value"
)

func sampleSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Type: value.Int},
		Column{Name: "name", Type: value.Str},
		Column{Name: "born", Type: value.Date},
	)
}

func TestSchemaColIndex(t *testing.T) {
	s := sampleSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ColIndex("name") != 1 || s.ColIndex("id") != 0 {
		t.Fatal("ColIndex wrong")
	}
	if s.ColIndex("ghost") != -1 {
		t.Fatal("missing column must return -1")
	}
}

func TestCatalogTablesAndIndexes(t *testing.T) {
	c := New()
	tb, err := c.AddTable("people", sampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tb.FileID != 0 || c.NumFiles() != 1 {
		t.Fatalf("file allocation wrong: %d/%d", tb.FileID, c.NumFiles())
	}
	if _, err := c.AddTable("people", sampleSchema()); err == nil {
		t.Fatal("duplicate table must fail")
	}
	ix, err := c.AddIndex("people", "id", BTree, true)
	if err != nil {
		t.Fatal(err)
	}
	if ix.FileID != 1 || ix.Col != 0 || !ix.Unique {
		t.Fatalf("index wrong: %+v", ix)
	}
	if _, err := c.AddIndex("people", "ghost", Hash, false); err == nil {
		t.Fatal("index on missing column must fail")
	}
	if _, err := c.AddIndex("ghost", "id", Hash, false); err == nil {
		t.Fatal("index on missing table must fail")
	}
	if tb.IndexOn("id") == nil || tb.IndexOn("name") != nil {
		t.Fatal("IndexOn wrong")
	}
	got, ok := c.Table("people")
	if !ok || got != tb {
		t.Fatal("Table lookup wrong")
	}
	if len(c.Tables()) != 1 {
		t.Fatal("Tables() wrong")
	}
}

func TestIndexKindString(t *testing.T) {
	if BTree.String() != "btree" || Hash.String() != "hash" {
		t.Fatal("kind names wrong")
	}
}
