// Package catalog holds the schema metadata of the database kernel:
// column and table definitions, index descriptors, and the catalog
// mapping names to storage files — the information the planner and
// executor resolve names against.
package catalog

import (
	"fmt"
	"sync"

	"repro/internal/db/value"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type value.Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// IndexKind distinguishes the two index access methods, matching the
// paper's Btree-indexed and Hash-indexed databases.
type IndexKind uint8

const (
	// BTree is an ordered index supporting range scans.
	BTree IndexKind = iota
	// Hash is an equality-only index.
	Hash
)

// String returns "btree" or "hash".
func (k IndexKind) String() string {
	if k == Hash {
		return "hash"
	}
	return "btree"
}

// Index describes a (single-column) index on a table.
type Index struct {
	Name   string
	Table  string
	Column string
	Col    int // resolved column position
	Kind   IndexKind
	Unique bool
	FileID int // storage file of the index
}

// Table describes a stored relation.
type Table struct {
	Name    string
	Schema  *Schema
	FileID  int // storage file of the heap
	Indexes []*Index
}

// IndexOn returns the first index on the named column, or nil.
func (t *Table) IndexOn(col string) *Index {
	for _, ix := range t.Indexes {
		if ix.Column == col {
			return ix
		}
	}
	return nil
}

// Catalog maps names to tables. Lookups are safe for any number of
// concurrent readers; DDL (AddTable/AddIndex) takes the write lock.
// The Table and Index descriptors themselves are immutable once
// created, except Table.Indexes, which only AddIndex appends to — the
// engine excludes DDL from running queries with its own latch, so
// planner reads of a descriptor never race with its growth.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
	nextID int
}

// New returns an empty catalog.
func New() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// AddTable registers a table and assigns its heap file ID.
func (c *Catalog) AddTable(name string, schema *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[name]; dup {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{Name: name, Schema: schema, FileID: c.nextID}
	c.nextID++
	c.tables[name] = t
	c.order = append(c.order, name)
	return t, nil
}

// AddIndex registers an index on table.column and assigns its file ID.
func (c *Catalog) AddIndex(table, column string, kind IndexKind, unique bool) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", table)
	}
	col := t.Schema.ColIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("catalog: no column %q in %q", column, table)
	}
	ix := &Index{
		Name:   fmt.Sprintf("%s_%s_%s", table, column, kind),
		Table:  table,
		Column: column,
		Col:    col,
		Kind:   kind,
		Unique: unique,
		FileID: c.nextID,
	}
	c.nextID++
	t.Indexes = append(t.Indexes, ix)
	return ix, nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Tables returns all tables in creation order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.tables[n])
	}
	return out
}

// NumFiles returns the number of storage files allocated so far.
func (c *Catalog) NumFiles() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nextID
}
