package sql

import (
	"sync"
	"testing"

	"repro/internal/db/catalog"
	"repro/internal/db/engine"
	"repro/internal/db/executor"
	"repro/internal/db/value"
)

// fuzzDB is a tiny two-table database with an index, shared across
// fuzz executions: enough schema surface for the planner to resolve
// real column and table names from mutated queries.
var fuzzDB = sync.OnceValue(func() *engine.DB {
	db := engine.Open(64)
	col := func(name string, t value.Type) catalog.Column { return catalog.Column{Name: name, Type: t} }
	if _, err := db.CreateTable("items", catalog.NewSchema(
		col("id", value.Int), col("price", value.Float),
		col("name", value.Str), col("shipped", value.Date))); err != nil {
		panic(err)
	}
	if _, err := db.CreateTable("owners", catalog.NewSchema(
		col("oid", value.Int), col("id", value.Int), col("tag", value.Str))); err != nil {
		panic(err)
	}
	for i := int64(0); i < 50; i++ {
		if err := db.Insert("items", []value.Value{
			value.NewInt(i), value.NewFloat(float64(i) * 1.5),
			value.NewStr("n"), value.NewDate(9000 + i)}); err != nil {
			panic(err)
		}
		if err := db.Insert("owners", []value.Value{
			value.NewInt(i % 7), value.NewInt(i), value.NewStr("t")}); err != nil {
			panic(err)
		}
	}
	if err := db.CreateIndex("items", "id", catalog.BTree, true); err != nil {
		panic(err)
	}
	return db
})

// FuzzCompile asserts the parse/plan boundary never panics: arbitrary
// query text must come back as a plan or an error, nothing else. The
// seed corpus covers every statement shape the grammar knows plus the
// classic trip-ups (unterminated strings, deep nesting, stray
// unicode, empty input).
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"select",
		"select 1",
		"select * from items",
		"select id, price from items where id = 3",
		"select id from items where id >= 1 and id <= 4 order by id desc limit 2",
		"select sum(price), count(*) from items where shipped < '1995-03-15'",
		"select name, sum(price) from items group by name order by 2",
		"select i.id from items i, owners o where i.id = o.id and o.tag = 't'",
		"select * from items where price * (1 - 0.05) > 10 or id <> 2",
		"select * from items where name like 'n%'",
		"select * from items where id in (1, 2, 3)",
		"select count(*) from items where not (id = 1)",
		"select * from nosuchtable",
		"select nosuchcol from items",
		"select * from items where",
		"select * from items where name = 'unterminated",
		"select ((((((((((id))))))))))+1 from items",
		"SELECT\t*\nFROM items;",
		"select * from items -- trailing comment",
		"select * from items where id = 9223372036854775807",
		"select * from items where id = -9223372036854775808",
		"select * from items where price = 1e309",
		"select 'héllo', * from items where name = '💥'",
		"\x00\xff\xfe select",
		"select * from items where id = 1 group by order by limit",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := fuzzDB()
	f.Fuzz(func(t *testing.T, query string) {
		c := executor.NewCtx(nil)
		plan, err := Compile(db, c, query)
		if err == nil && plan == nil {
			t.Fatalf("Compile(%q) returned neither plan nor error", query)
		}
	})
}
