// Package sql implements the query-language front end of the kernel:
// a lexer and recursive-descent parser for the SELECT subset TPC-D
// needs (joins, conjunctive predicates, LIKE/IN/BETWEEN, aggregates,
// GROUP BY, ORDER BY, LIMIT), and a heuristic planner that chooses
// scans (sequential, B-tree range, hash equality), join order and join
// algorithms (index nested loop, hash join, merge join) — the
// Parsing-Optimization kernel of the paper's Figure 1.
package sql

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkOp // < <= = <> > >= + - * / ( ) , .
	tkKeyword
)

type token struct {
	kind tokKind
	text string // keywords and identifiers lower-cased
	pos  int
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"by": true, "order": true, "limit": true, "and": true, "or": true,
	"not": true, "like": true, "in": true, "between": true, "as": true,
	"asc": true, "desc": true, "count": true, "sum": true, "avg": true,
	"min": true, "max": true, "distinct": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isAlpha(c):
			l.ident()
		case isDigit(c):
			l.number()
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		default:
			if err := l.op(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos])) {
		l.pos++
	}
	text := strings.ToLower(l.src[start:l.pos])
	kind := tkIdent
	if keywords[text] {
		kind = tkKeyword
	}
	l.toks = append(l.toks, token{kind: kind, text: text, pos: start})
}

func (l *lexer) number() {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tkNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tkString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

func (l *lexer) op() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		text := two
		if text == "!=" {
			text = "<>"
		}
		l.toks = append(l.toks, token{kind: tkOp, text: text, pos: start})
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '<', '>', '=', '+', '-', '*', '/', '(', ')', ',', '.', ';':
		l.pos++
		l.toks = append(l.toks, token{kind: tkOp, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("sql: unexpected character %q at %d", c, start)
	}
}
