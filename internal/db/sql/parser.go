package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// AST node for scalar expressions.
type node interface{ String() string }

type colRef struct{ name string }
type intLit struct{ v int64 }
type floatLit struct{ v float64 }
type strLit struct{ v string }
type binExpr struct {
	op   string // = <> < <= > >= + - * /
	l, r node
}
type andExpr struct{ args []node }
type orExpr struct{ args []node }
type notExpr struct{ arg node }
type likeExpr struct {
	arg     node
	pattern string
	negate  bool
}
type inExpr struct {
	arg  node
	list []node
}

func (c *colRef) String() string   { return c.name }
func (i *intLit) String() string   { return strconv.FormatInt(i.v, 10) }
func (f *floatLit) String() string { return strconv.FormatFloat(f.v, 'g', -1, 64) }
func (s *strLit) String() string   { return "'" + s.v + "'" }
func (b *binExpr) String() string  { return "(" + b.l.String() + b.op + b.r.String() + ")" }
func (a *andExpr) String() string {
	parts := make([]string, len(a.args))
	for i, x := range a.args {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, " and ") + ")"
}
func (o *orExpr) String() string {
	parts := make([]string, len(o.args))
	for i, x := range o.args {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, " or ") + ")"
}
func (n *notExpr) String() string { return "not " + n.arg.String() }
func (l *likeExpr) String() string {
	op := " like "
	if l.negate {
		op = " not like "
	}
	return l.arg.String() + op + "'" + l.pattern + "'"
}
func (e *inExpr) String() string { return e.arg.String() + " in (...)" }

// SelectItem is one target-list entry.
type SelectItem struct {
	Agg   string // "" or count/sum/avg/min/max
	Star  bool   // count(*)
	Expr  node
	Alias string
}

// OrderItem is one ORDER BY entry (output column name or alias).
type OrderItem struct {
	Col  string
	Desc bool
}

// SelectStmt is a parsed query.
type SelectStmt struct {
	Items   []SelectItem
	From    []string
	Where   node // nil if absent
	GroupBy []string
	OrderBy []OrderItem
	Limit   int // -1 if absent
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if p.cur().text == ";" {
		p.pos++
	}
	if p.cur().kind != tkEOF {
		return nil, fmt.Errorf("sql: trailing input at %d", p.cur().pos)
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tkKeyword || t.text != kw {
		return fmt.Errorf("sql: expected %q at %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tkKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.cur().kind == tkOp && p.cur().text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	t := p.next()
	if t.kind != tkOp || t.text != op {
		return fmt.Errorf("sql: expected %q at %d, got %q", op, t.pos, t.text)
	}
	return nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tkIdent {
			return nil, fmt.Errorf("sql: expected table name at %d", t.pos)
		}
		st.From = append(st.From, t.text)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tkIdent {
				return nil, fmt.Errorf("sql: expected column in GROUP BY at %d", t.pos)
			}
			st.GroupBy = append(st.GroupBy, t.text)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tkIdent && t.kind != tkKeyword {
				return nil, fmt.Errorf("sql: expected column in ORDER BY at %d", t.pos)
			}
			item := OrderItem{Col: t.text}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		t := p.next()
		if t.kind != tkNumber {
			return nil, fmt.Errorf("sql: expected number after LIMIT at %d", t.pos)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, err
		}
		st.Limit = n
	}
	return st, nil
}

var aggNames = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func (p *parser) selectItem() (SelectItem, error) {
	var item SelectItem
	t := p.cur()
	if t.kind == tkKeyword && aggNames[t.text] {
		p.pos++
		item.Agg = t.text
		if err := p.expectOp("("); err != nil {
			return item, err
		}
		if p.acceptOp("*") {
			if item.Agg != "count" {
				return item, fmt.Errorf("sql: %s(*) not allowed", item.Agg)
			}
			item.Star = true
		} else {
			p.acceptKeyword("distinct") // parsed and ignored (TPC-D Q2 variants)
			e, err := p.addExpr()
			if err != nil {
				return item, err
			}
			item.Expr = e
		}
		if err := p.expectOp(")"); err != nil {
			return item, err
		}
	} else {
		e, err := p.addExpr()
		if err != nil {
			return item, err
		}
		item.Expr = e
	}
	if p.acceptKeyword("as") {
		t := p.next()
		if t.kind != tkIdent {
			return item, fmt.Errorf("sql: expected alias at %d", t.pos)
		}
		item.Alias = t.text
	}
	return item, nil
}

// Expression grammar: or > and > not > comparison > additive > mult > primary.
func (p *parser) orExpr() (node, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	args := []node{l}
	for p.acceptKeyword("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	if len(args) == 1 {
		return l, nil
	}
	return &orExpr{args: args}, nil
}

func (p *parser) andExpr() (node, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	args := []node{l}
	for p.acceptKeyword("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	if len(args) == 1 {
		return l, nil
	}
	return &andExpr{args: args}, nil
}

func (p *parser) notExpr() (node, error) {
	if p.acceptKeyword("not") {
		a, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &notExpr{arg: a}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (node, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// LIKE / NOT LIKE / IN / BETWEEN.
	negate := false
	if p.cur().kind == tkKeyword && p.cur().text == "not" {
		// lookahead for "not like" / "not in"
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tkKeyword &&
			(p.toks[p.pos+1].text == "like" || p.toks[p.pos+1].text == "in") {
			p.pos++
			negate = true
		}
	}
	if p.acceptKeyword("like") {
		t := p.next()
		if t.kind != tkString {
			return nil, fmt.Errorf("sql: LIKE needs a string pattern at %d", t.pos)
		}
		return &likeExpr{arg: l, pattern: t.text, negate: negate}, nil
	}
	if p.acceptKeyword("in") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []node
		for {
			e, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		var e node = &inExpr{arg: l, list: list}
		if negate {
			e = &notExpr{arg: e}
		}
		return e, nil
	}
	if p.acceptKeyword("between") {
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &andExpr{args: []node{
			&binExpr{op: ">=", l: l, r: lo},
			&binExpr{op: "<=", l: l, r: hi},
		}}, nil
	}
	switch p.cur().text {
	case "=", "<>", "<", "<=", ">", ">=":
		op := p.next().text
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &binExpr{op: op, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (node, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().text {
		case "+", "-":
			op := p.next().text
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &binExpr{op: op, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (node, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().text {
		case "*", "/":
			op := p.next().text
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = &binExpr{op: op, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) primary() (node, error) {
	t := p.next()
	switch {
	case t.kind == tkNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return &floatLit{v: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return &intLit{v: n}, nil
	case t.kind == tkString:
		return &strLit{v: t.text}, nil
	case t.kind == tkIdent:
		return &colRef{name: t.text}, nil
	case t.kind == tkOp && t.text == "(":
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tkOp && t.text == "-":
		e, err := p.primary()
		if err != nil {
			return nil, err
		}
		switch v := e.(type) {
		case *intLit:
			return &intLit{v: -v.v}, nil
		case *floatLit:
			return &floatLit{v: -v.v}, nil
		}
		return &binExpr{op: "-", l: &intLit{v: 0}, r: e}, nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q at %d", t.text, t.pos)
}
