package sql

import (
	"strings"
	"testing"

	"repro/internal/db/catalog"
	"repro/internal/db/engine"
	"repro/internal/db/executor"
	"repro/internal/db/value"
)

func TestParseBasicSelect(t *testing.T) {
	st, err := Parse("select a, b from t where a = 1 and b < 'x' order by a desc limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Items) != 2 || st.From[0] != "t" || st.Limit != 5 {
		t.Fatalf("parsed %+v", st)
	}
	if len(st.OrderBy) != 1 || !st.OrderBy[0].Desc {
		t.Fatal("order by wrong")
	}
	if _, ok := st.Where.(*andExpr); !ok {
		t.Fatalf("where = %T", st.Where)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	st, err := Parse("select k, count(*) as n, sum(v * 2) from t group by k")
	if err != nil {
		t.Fatal(err)
	}
	if st.Items[1].Agg != "count" || !st.Items[1].Star || st.Items[1].Alias != "n" {
		t.Fatalf("count item %+v", st.Items[1])
	}
	if st.Items[2].Agg != "sum" || st.Items[2].Expr == nil {
		t.Fatalf("sum item %+v", st.Items[2])
	}
	if len(st.GroupBy) != 1 || st.GroupBy[0] != "k" {
		t.Fatal("group by wrong")
	}
}

func TestParseLikeInBetween(t *testing.T) {
	st, err := Parse("select a from t where a like 'x%' and b in (1, 2) and c between 3 and 4 and not d = 5")
	if err != nil {
		t.Fatal(err)
	}
	conj := st.Where.(*andExpr)
	// between desugars to >= and <= inside a nested and.
	if len(conj.args) != 4 {
		t.Fatalf("got %d conjuncts", len(conj.args))
	}
	if _, ok := conj.args[0].(*likeExpr); !ok {
		t.Fatalf("arg0 = %T", conj.args[0])
	}
	if _, ok := conj.args[1].(*inExpr); !ok {
		t.Fatalf("arg1 = %T", conj.args[1])
	}
	if _, ok := conj.args[3].(*notExpr); !ok {
		t.Fatalf("arg3 = %T", conj.args[3])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select a",
		"select a from",
		"select a from t where",
		"select a from t limit x",
		"select sum(*) from t",
		"select a from t where a like 5",
		"select a from t trailing",
		"select a from t where 'unterminated",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

// mini database: t(k int, v int, s varchar, d date) with index on k.
func miniDB(t *testing.T, kind catalog.IndexKind) *engine.DB {
	t.Helper()
	db := engine.Open(256)
	sch := catalog.NewSchema(
		catalog.Column{Name: "k", Type: value.Int},
		catalog.Column{Name: "v", Type: value.Int},
		catalog.Column{Name: "s", Type: value.Str},
		catalog.Column{Name: "d", Type: value.Date},
	)
	if _, err := db.CreateTable("t", sch); err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "gamma"}
	for i := 0; i < 100; i++ {
		row := []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 10)),
			value.NewStr(names[i%3]),
			value.NewDate(value.MakeDate(1994, 1+i%12, 1+i%28)),
		}
		if err := db.Insert("t", row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateIndex("t", "k", kind, true); err != nil {
		t.Fatal(err)
	}
	return db
}

func run(t *testing.T, db *engine.DB, q string) []executor.Tuple {
	t.Helper()
	rows, _, err := Exec(db, executor.NewCtx(nil), q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return rows
}

func TestExecSimpleFilter(t *testing.T) {
	db := miniDB(t, catalog.BTree)
	rows := run(t, db, "select k from t where k < 10")
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
}

func TestExecIndexRangeUsed(t *testing.T) {
	db := miniDB(t, catalog.BTree)
	st, _ := Parse("select k from t where k >= 20 and k <= 29")
	pl := &Planner{DB: db, C: executor.NewCtx(nil)}
	plan, err := pl.Plan(st)
	if err != nil {
		t.Fatal(err)
	}
	// The scan below the projection must be an IndexScan.
	proj, ok := plan.(*executor.ProjectNode)
	if !ok {
		t.Fatalf("top = %T", plan)
	}
	if _, ok := proj.Child.(*executor.IndexScan); !ok {
		t.Fatalf("scan = %T, want IndexScan", proj.Child)
	}
	rows, err := engine.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestExecHashEqualityUsed(t *testing.T) {
	db := miniDB(t, catalog.Hash)
	st, _ := Parse("select k from t where k = 42")
	pl := &Planner{DB: db, C: executor.NewCtx(nil)}
	plan, err := pl.Plan(st)
	if err != nil {
		t.Fatal(err)
	}
	proj := plan.(*executor.ProjectNode)
	is, ok := proj.Child.(*executor.IndexScan)
	if !ok || is.HashIdx == nil {
		t.Fatalf("want hash IndexScan, got %T", proj.Child)
	}
	rows, err := engine.Run(plan)
	if err != nil || len(rows) != 1 || rows[0][0].I != 42 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestExecGroupByAggregates(t *testing.T) {
	db := miniDB(t, catalog.BTree)
	rows := run(t, db, "select v, count(*) as n, sum(k) as total from t group by v order by v")
	if len(rows) != 10 {
		t.Fatalf("got %d groups", len(rows))
	}
	// v=0: k in {0,10,...,90}: count 10, sum 450.
	if rows[0][0].I != 0 || rows[0][1].I != 10 || rows[0][2].I != 450 {
		t.Fatalf("group 0 = %v", rows[0])
	}
}

func TestExecExpressionsAndDates(t *testing.T) {
	db := miniDB(t, catalog.BTree)
	rows := run(t, db, "select count(*) from t where d >= '1994-06-01' and s like 'alp%'")
	if len(rows) != 1 {
		t.Fatal("want one row")
	}
	if rows[0][0].I == 0 {
		t.Fatal("date/like filter found nothing")
	}
}

func TestExecOrderByDescLimit(t *testing.T) {
	db := miniDB(t, catalog.BTree)
	rows := run(t, db, "select k from t order by k desc limit 3")
	if len(rows) != 3 || rows[0][0].I != 99 || rows[2][0].I != 97 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExecSelfJoinViaTwoTables(t *testing.T) {
	db := miniDB(t, catalog.BTree)
	// Second table u(uk, uv) referencing t.k.
	sch := catalog.NewSchema(
		catalog.Column{Name: "uk", Type: value.Int},
		catalog.Column{Name: "uv", Type: value.Int},
	)
	if _, err := db.CreateTable("u", sch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Insert("u", []value.Value{
			value.NewInt(int64(i * 2)), value.NewInt(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rows := run(t, db, "select k, uv from t, u where k = uk and k < 10")
	if len(rows) != 5 { // uk in {0,2,4,6,8}
		t.Fatalf("got %d join rows", len(rows))
	}
	for _, r := range rows {
		if r[0].I%2 != 0 {
			t.Fatalf("join row %v", r)
		}
	}
}

func TestExecUnknownColumnFails(t *testing.T) {
	db := miniDB(t, catalog.BTree)
	if _, _, err := Exec(db, executor.NewCtx(nil), "select nosuch from t"); err == nil ||
		!strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("want unknown-column error, got %v", err)
	}
}

func TestExecUnknownTableFails(t *testing.T) {
	db := miniDB(t, catalog.BTree)
	if _, _, err := Exec(db, executor.NewCtx(nil), "select k from ghost"); err == nil {
		t.Fatal("want unknown-table error")
	}
}
