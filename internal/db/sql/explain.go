package sql

import "strings"

// ExplainMode classifies a query's EXPLAIN prefix.
type ExplainMode int

const (
	// ExplainNone is an ordinary statement (no EXPLAIN prefix).
	ExplainNone ExplainMode = iota
	// ExplainPlan renders the plan without executing it.
	ExplainPlan
	// ExplainAnalyze executes the plan under per-operator
	// instrumentation and renders it with actual row counts, loop
	// counts, wall times and buffer-pool traffic.
	ExplainAnalyze
)

// SplitExplain strips a leading EXPLAIN [ANALYZE] from a statement,
// returning the mode and the remaining statement text. The scan is
// case-insensitive and purely lexical (keyword boundaries, not
// substrings), so the SELECT text that remains is byte-identical to
// what the user wrote — the parser, the canonicalizer and the result
// cache all see the query exactly as if EXPLAIN had not been there.
// Statements without the prefix come back unchanged as ExplainNone.
func SplitExplain(src string) (ExplainMode, string) {
	rest, ok := cutKeyword(src, "explain")
	if !ok {
		return ExplainNone, src
	}
	if r2, ok := cutKeyword(rest, "analyze"); ok {
		return ExplainAnalyze, r2
	}
	return ExplainPlan, rest
}

// cutKeyword strips one leading SQL keyword (case-insensitive,
// terminated by a non-identifier byte) plus the whitespace after it.
func cutKeyword(src, kw string) (string, bool) {
	s := strings.TrimLeft(src, " \t\r\n")
	if len(s) < len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return src, false
	}
	tail := s[len(kw):]
	if tail != "" && (isAlpha(tail[0]) || isDigit(tail[0])) {
		return src, false // identifier that merely starts with the keyword
	}
	return strings.TrimLeft(tail, " \t\r\n"), true
}
