package sql

import "testing"

func TestSplitExplain(t *testing.T) {
	cases := []struct {
		src  string
		mode ExplainMode
		rest string
	}{
		{"select 1", ExplainNone, "select 1"},
		{"explain select 1", ExplainPlan, "select 1"},
		{"EXPLAIN SELECT 1", ExplainPlan, "SELECT 1"},
		{"  \t\nexplain   select 1", ExplainPlan, "select 1"},
		{"explain analyze select 1", ExplainAnalyze, "select 1"},
		{"Explain Analyze Select 1", ExplainAnalyze, "Select 1"},
		{"EXPLAIN\nANALYZE\nselect 1", ExplainAnalyze, "select 1"},
		// Identifiers that merely start with the keyword are not cut.
		{"explainer select 1", ExplainNone, "explainer select 1"},
		{"explain analyzer", ExplainPlan, "analyzer"},
		{"explain2 select 1", ExplainNone, "explain2 select 1"},
		// The remaining text must be byte-identical — the result cache
		// canonicalizes it exactly as if EXPLAIN had not been written.
		{"explain select  a ,b from t", ExplainPlan, "select  a ,b from t"},
		{"explain", ExplainPlan, ""},
		{"explain analyze", ExplainAnalyze, ""},
		{"", ExplainNone, ""},
	}
	for _, c := range cases {
		mode, rest := SplitExplain(c.src)
		if mode != c.mode || rest != c.rest {
			t.Errorf("SplitExplain(%q) = (%v, %q), want (%v, %q)",
				c.src, mode, rest, c.mode, c.rest)
		}
	}
}
