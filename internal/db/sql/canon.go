package sql

import (
	"strconv"
	"strings"
)

// Canonical renders the parsed statement back to one normalized SQL
// string: keywords and identifiers lower-cased (the lexer already
// did), whitespace collapsed, every expression fully parenthesized,
// and all literals preserved verbatim — so two spellings of the same
// query produce the same string. It is the result-cache key: unlike
// the ad-hoc String() methods (which feed error messages and derived
// column names and may elide detail), Canonical is lossless for
// everything that can change a result set, aliases included (they
// name output columns).
func (st *SelectStmt) Canonical() string {
	var b strings.Builder
	b.WriteString("select ")
	for i, it := range st.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Agg != "" {
			b.WriteString(it.Agg)
			b.WriteByte('(')
			if it.Star {
				b.WriteByte('*')
			} else {
				canonNode(&b, it.Expr)
			}
			b.WriteByte(')')
		} else {
			canonNode(&b, it.Expr)
		}
		if it.Alias != "" {
			b.WriteString(" as ")
			b.WriteString(it.Alias)
		}
	}
	b.WriteString(" from ")
	b.WriteString(strings.Join(st.From, ", "))
	if st.Where != nil {
		b.WriteString(" where ")
		canonNode(&b, st.Where)
	}
	if len(st.GroupBy) > 0 {
		b.WriteString(" group by ")
		b.WriteString(strings.Join(st.GroupBy, ", "))
	}
	for i, ob := range st.OrderBy {
		if i == 0 {
			b.WriteString(" order by ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(ob.Col)
		if ob.Desc {
			b.WriteString(" desc")
		}
	}
	if st.Limit >= 0 {
		b.WriteString(" limit ")
		b.WriteString(strconv.Itoa(st.Limit))
	}
	return b.String()
}

// canonNode renders one expression node losslessly (String() is not
// reused: inExpr and likeExpr elide their operands there, and changing
// String would perturb derived output column names).
func canonNode(b *strings.Builder, n node) {
	switch x := n.(type) {
	case *colRef:
		b.WriteString(x.name)
	case *intLit:
		b.WriteString(strconv.FormatInt(x.v, 10))
	case *floatLit:
		// Decimal form, never exponent (the lexer cannot re-parse
		// "1e+06"), and always with a fractional part: an
		// integral-valued float must not collide with the int literal
		// of the same value — int and float arithmetic produce
		// differently typed results, so they are different queries.
		s := strconv.FormatFloat(x.v, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		b.WriteString(s)
	case *strLit:
		canonStr(b, x.v)
	case *binExpr:
		b.WriteByte('(')
		canonNode(b, x.l)
		b.WriteByte(' ')
		b.WriteString(x.op)
		b.WriteByte(' ')
		canonNode(b, x.r)
		b.WriteByte(')')
	case *andExpr:
		canonList(b, x.args, " and ")
	case *orExpr:
		canonList(b, x.args, " or ")
	case *notExpr:
		b.WriteString("(not ")
		canonNode(b, x.arg)
		b.WriteByte(')')
	case *likeExpr:
		b.WriteByte('(')
		canonNode(b, x.arg)
		if x.negate {
			b.WriteString(" not")
		}
		b.WriteString(" like ")
		canonStr(b, x.pattern)
		b.WriteByte(')')
	case *inExpr:
		b.WriteByte('(')
		canonNode(b, x.arg)
		b.WriteString(" in (")
		for i, el := range x.list {
			if i > 0 {
				b.WriteString(", ")
			}
			canonNode(b, el)
		}
		b.WriteString("))")
	default:
		// Unreachable for nodes the parser produces; keep the render
		// total so a future node kind degrades to a distinct key rather
		// than a collision.
		b.WriteString(n.String())
	}
}

func canonList(b *strings.Builder, args []node, sep string) {
	b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			b.WriteString(sep)
		}
		canonNode(b, a)
	}
	b.WriteByte(')')
}

// canonStr renders a string literal with SQL quote doubling, so the
// canonical text re-parses to the same literal.
func canonStr(b *strings.Builder, s string) {
	b.WriteByte('\'')
	b.WriteString(strings.ReplaceAll(s, "'", "''"))
	b.WriteByte('\'')
}
