package sql

import (
	"testing"

	"repro/internal/db/catalog"
	"repro/internal/db/executor"
)

// TestCanonicalNormalizesSpelling: case and whitespace variants of one
// query canonicalize identically; semantically different queries do
// not.
func TestCanonicalNormalizesSpelling(t *testing.T) {
	same := [][2]string{
		{"select a from t", "SELECT  a\nFROM   t"},
		{"select sum(a) as s from t where a < 5 and b = 'x'",
			"SELECT SUM(a) AS s FROM t WHERE a<5 AND b='x'"},
		{"select a from t where a in (1, 2, 3) order by a desc limit 7",
			"select a from t where a in(1,2,3) order by a DESC limit 7"},
		{"select a from t where s like 'ab%'", "select a from t where s LIKE 'ab%'"},
	}
	for _, pair := range same {
		c0 := mustCanon(t, pair[0])
		c1 := mustCanon(t, pair[1])
		if c0 != c1 {
			t.Errorf("canonical forms differ:\n  %q -> %q\n  %q -> %q", pair[0], c0, pair[1], c1)
		}
	}
	diff := [][2]string{
		{"select a from t where a < 5", "select a from t where a < 6"},
		// An integral-valued float is NOT the int of the same value:
		// int and float arithmetic produce differently typed results.
		{"select a * 2 from t", "select a * 2.0 from t"},
		{"select a from t where a in (1, 2)", "select a from t where a in (1, 3)"},
		{"select a from t where s like 'x%'", "select a from t where s not like 'x%'"},
		{"select a from t", "select a as b from t"},
		{"select a from t where s = 'x'", "select a from t where s = 'X'"},
		{"select a from t order by a", "select a from t order by a desc"},
	}
	for _, pair := range diff {
		c0 := mustCanon(t, pair[0])
		c1 := mustCanon(t, pair[1])
		if c0 == c1 {
			t.Errorf("distinct queries collide on %q:\n  %q\n  %q", c0, pair[0], pair[1])
		}
	}
}

// TestCanonicalReparses: the canonical text must itself parse, to the
// same canonical form (a fixed point) — so keys are stable however
// many times text round-trips.
func TestCanonicalReparses(t *testing.T) {
	queries := []string{
		"select a, sum(b) as total from t where (a < 5 or a > 10) and not s like 'x%' group by a order by a limit 3",
		"select count(*) from t where d in ('1994-01-01', '1995-06-15')",
		"select a from t where s = 'it''s'",
		"select a * 2.0 from t where b > 0.25",
	}
	for _, q := range queries {
		c0 := mustCanon(t, q)
		c1 := mustCanon(t, c0)
		if c0 != c1 {
			t.Errorf("canonical form is not a fixed point:\n  %q\n  -> %q\n  -> %q", q, c0, c1)
		}
	}
}

// TestCompileQueryFootprint: the compiled metadata carries the
// deduplicated FROM tables and a non-empty key.
func TestCompileQueryFootprint(t *testing.T) {
	db := miniDB(t, catalog.BTree)
	sch := catalog.NewSchema(
		catalog.Column{Name: "u", Type: 0},
	)
	if _, err := db.CreateTable("t2", sch); err != nil {
		t.Fatal(err)
	}
	cq, err := CompileQuery(db, executor.NewCtx(nil), "select k from t, t2 where k = u")
	if err != nil {
		t.Fatal(err)
	}
	if len(cq.Tables) != 2 || cq.Tables[0] != "t" || cq.Tables[1] != "t2" {
		t.Fatalf("Tables = %v, want [t t2]", cq.Tables)
	}
	if cq.Key == "" || cq.Plan == nil {
		t.Fatalf("incomplete Compiled: %+v", cq)
	}
}

func mustCanon(t *testing.T, q string) string {
	t.Helper()
	st, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return st.Canonical()
}
