package sql

import (
	"fmt"
	"sort"

	"repro/internal/db/catalog"
	"repro/internal/db/engine"
	"repro/internal/db/executor"
	"repro/internal/db/value"
)

// Planner turns parsed statements into executable plans against a
// database, with heuristic scan selection (sequential vs B-tree range
// vs hash equality), greedy join ordering by estimated cardinality,
// and join-method choice (index nested loop when an index serves the
// join key, hash join otherwise, merge join for large unindexed
// inputs).
type Planner struct {
	DB *engine.DB
	C  *executor.Ctx
}

// Plan compiles a statement.
func (pl *Planner) Plan(st *SelectStmt) (executor.Node, error) {
	if len(st.From) == 0 {
		return nil, fmt.Errorf("sql: no FROM tables")
	}
	// Classify WHERE conjuncts.
	var conj []node
	flattenAnd(st.Where, &conj)
	tblPreds := make(map[string][]node) // single-table predicates
	type joinPred struct{ lt, lc, rt, rc string }
	var joins []joinPred
	var cross []node // multi-table non-equijoin predicates
	for _, c := range conj {
		tabs := pl.tablesOf(c, st.From)
		switch {
		case len(tabs) == 1:
			tblPreds[tabs[0]] = append(tblPreds[tabs[0]], c)
		case len(tabs) == 2:
			if be, ok := c.(*binExpr); ok && be.op == "=" {
				lc, lok := be.l.(*colRef)
				rc, rok := be.r.(*colRef)
				if lok && rok {
					lt := pl.tableOfCol(lc.name, st.From)
					rt := pl.tableOfCol(rc.name, st.From)
					joins = append(joins, joinPred{lt, lc.name, rt, rc.name})
					continue
				}
			}
			cross = append(cross, c)
		default:
			cross = append(cross, c)
		}
	}

	// Estimated filtered cardinalities.
	est := make(map[string]float64)
	for _, t := range st.From {
		e := float64(pl.DB.NumRows(t))
		for _, p := range tblPreds[t] {
			e *= selectivity(p)
		}
		if e < 1 {
			e = 1
		}
		est[t] = e
	}

	// Base scans.
	scans := make(map[string]executor.Node)
	for _, t := range st.From {
		n, err := pl.scan(t, tblPreds[t])
		if err != nil {
			return nil, err
		}
		scans[t] = n
	}

	// Greedy join order: start at the smallest estimate, repeatedly
	// attach the joinable table with the smallest estimate.
	order := append([]string(nil), st.From...)
	sort.Slice(order, func(i, j int) bool {
		if est[order[i]] != est[order[j]] {
			return est[order[i]] < est[order[j]]
		}
		return order[i] < order[j]
	})
	joined := map[string]bool{order[0]: true}
	plan := scans[order[0]]
	remaining := order[1:]
	usedJoin := make([]bool, len(joins))
	for len(remaining) > 0 {
		// Pick the smallest remaining table connected to the joined set
		// (or, failing that, the smallest one — cross join).
		pick := -1
		pickJoin := -1
		for i, t := range remaining {
			for j, jp := range joins {
				if usedJoin[j] {
					continue
				}
				if (joined[jp.lt] && jp.rt == t) || (joined[jp.rt] && jp.lt == t) {
					if pick == -1 || est[t] < est[remaining[pick]] {
						pick, pickJoin = i, j
					}
					break
				}
			}
		}
		if pick == -1 {
			pick = 0
		}
		t := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		var err error
		if pickJoin >= 0 {
			jp := joins[pickJoin]
			usedJoin[pickJoin] = true
			outerCol, innerCol := jp.lc, jp.rc
			if jp.rt != t {
				outerCol, innerCol = jp.rc, jp.lc
			}
			plan, err = pl.join(plan, t, outerCol, innerCol, tblPreds[t], scans[t], est)
		} else {
			plan = &executor.NestLoop{C: pl.C, Outer: plan, Inner: serialized(pl.C, scans[t])}
		}
		if err != nil {
			return nil, err
		}
		joined[t] = true
	}
	// Any equijoin predicates between already-joined tables (cycles)
	// and multi-table predicates become filters.
	var resid []node
	for j, jp := range joins {
		if !usedJoin[j] {
			resid = append(resid, &binExpr{op: "=", l: &colRef{name: jp.lc}, r: &colRef{name: jp.rc}})
		}
	}
	resid = append(resid, cross...)
	if len(resid) > 0 {
		quals, err := pl.compileQuals(resid, plan.Schema())
		if err != nil {
			return nil, err
		}
		plan = &executor.Filter{C: pl.C, Child: plan, Quals: quals}
	}

	return pl.finish(st, plan)
}

// finish adds aggregation/grouping, projection, ordering and limit.
func (pl *Planner) finish(st *SelectStmt, plan executor.Node) (executor.Node, error) {
	hasAgg := false
	for _, it := range st.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	sch := plan.Schema()
	switch {
	case len(st.GroupBy) > 0:
		// Sort by group columns, aggregate per group, project to the
		// select-list order.
		var keys []executor.SortKey
		var groupCols []int
		for _, g := range st.GroupBy {
			idx := sch.ColIndex(g)
			if idx < 0 {
				return nil, fmt.Errorf("sql: unknown GROUP BY column %q", g)
			}
			keys = append(keys, executor.SortKey{Col: idx})
			groupCols = append(groupCols, idx)
		}
		srt := &executor.Sort{C: pl.C, Child: plan, Keys: keys}
		specs, err := pl.aggSpecs(st, sch)
		if err != nil {
			return nil, err
		}
		grp := &executor.GroupAgg{C: pl.C, Child: srt, GroupBy: groupCols, Specs: specs}
		// Map select items onto GroupAgg output (= group cols + aggs).
		proj, err := pl.postAggProject(st, grp.Schema(), st.GroupBy)
		if err != nil {
			return nil, err
		}
		plan = &executor.ProjectNode{C: pl.C, Child: grp, Exprs: proj.exprs, Names: proj.names}
	case hasAgg:
		specs, err := pl.aggSpecs(st, sch)
		if err != nil {
			return nil, err
		}
		plan = &executor.Agg{C: pl.C, Child: plan, Specs: specs}
	default:
		exprs := make([]executor.Expr, len(st.Items))
		names := make([]string, len(st.Items))
		for i, it := range st.Items {
			e, err := compileExpr(it.Expr, sch)
			if err != nil {
				return nil, err
			}
			exprs[i] = e
			names[i] = it.Alias
			if names[i] == "" {
				if c, ok := it.Expr.(*colRef); ok {
					names[i] = c.name
				} else {
					names[i] = it.Expr.String()
				}
			}
		}
		plan = &executor.ProjectNode{C: pl.C, Child: plan, Exprs: exprs, Names: names}
	}
	if len(st.OrderBy) > 0 {
		var keys []executor.SortKey
		out := plan.Schema()
		for _, ob := range st.OrderBy {
			idx := out.ColIndex(ob.Col)
			if idx < 0 {
				return nil, fmt.Errorf("sql: unknown ORDER BY column %q", ob.Col)
			}
			keys = append(keys, executor.SortKey{Col: idx, Desc: ob.Desc})
		}
		plan = &executor.Sort{C: pl.C, Child: plan, Keys: keys}
	}
	if st.Limit >= 0 {
		plan = &executor.Limit{C: pl.C, Child: plan, N: st.Limit}
	}
	return plan, nil
}

type projection struct {
	exprs []executor.Expr
	names []string
}

// aggSpecs builds the aggregate list in select order.
func (pl *Planner) aggSpecs(st *SelectStmt, sch *catalog.Schema) ([]executor.AggSpec, error) {
	var specs []executor.AggSpec
	for _, it := range st.Items {
		if it.Agg == "" {
			continue
		}
		sp := executor.AggSpec{Name: it.Alias}
		switch it.Agg {
		case "count":
			sp.Func = executor.AggCount
		case "sum":
			sp.Func = executor.AggSum
		case "avg":
			sp.Func = executor.AggAvg
		case "min":
			sp.Func = executor.AggMin
		case "max":
			sp.Func = executor.AggMax
		}
		if !it.Star {
			e, err := compileExpr(it.Expr, sch)
			if err != nil {
				return nil, err
			}
			sp.Arg = e
		}
		if sp.Name == "" {
			sp.Name = it.Agg
		}
		specs = append(specs, sp)
	}
	if len(specs) == 0 {
		specs = append(specs, executor.AggSpec{Func: executor.AggCount, Name: "count"})
	}
	return specs, nil
}

// postAggProject maps select items onto the GroupAgg output schema
// (group columns first, then aggregates in select order).
func (pl *Planner) postAggProject(st *SelectStmt, aggSchema *catalog.Schema, groupBy []string) (projection, error) {
	var pr projection
	aggPos := len(groupBy)
	for _, it := range st.Items {
		if it.Agg != "" {
			name := it.Alias
			if name == "" {
				name = it.Agg
			}
			pr.exprs = append(pr.exprs, &executor.Var{
				Idx: aggPos, Name: name, T: aggSchema.Columns[aggPos].Type})
			pr.names = append(pr.names, name)
			aggPos++
			continue
		}
		c, ok := it.Expr.(*colRef)
		if !ok {
			return pr, fmt.Errorf("sql: non-aggregate select item %q must be a grouped column", it.Expr)
		}
		found := -1
		for gi, g := range groupBy {
			if g == c.name {
				found = gi
			}
		}
		if found < 0 {
			return pr, fmt.Errorf("sql: column %q not in GROUP BY", c.name)
		}
		name := it.Alias
		if name == "" {
			name = c.name
		}
		pr.exprs = append(pr.exprs, &executor.Var{
			Idx: found, Name: name, T: aggSchema.Columns[found].Type})
		pr.names = append(pr.names, name)
	}
	return pr, nil
}

// scan builds the access path for one table: hash index for an
// equality predicate on an indexed column, B-tree range scan for
// range/equality predicates on a B-tree column, else a sequential scan
// with all predicates as qualifiers.
func (pl *Planner) scan(table string, preds []node) (executor.Node, error) {
	t, ok := pl.DB.Cat.Table(table)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", table)
	}
	sch := tableSchema(t)
	heap := pl.DB.Heap(table)

	// Try an indexable predicate.
	for i, p := range preds {
		be, ok := p.(*binExpr)
		if !ok {
			continue
		}
		col, lit, op, ok := indexableSides(be, t)
		if !ok {
			continue
		}
		ix := t.IndexOn(col)
		if ix == nil {
			continue
		}
		rest := append(append([]node(nil), preds[:i]...), preds[i+1:]...)
		quals, err := pl.compileQuals(rest, sch)
		if err != nil {
			return nil, err
		}
		if ix.Kind == catalog.Hash && op == "=" {
			return &executor.IndexScan{C: pl.C, Heap: heap, Out: sch,
				Table: table, KeyCol: col,
				HashIdx: pl.DB.HashFor(ix), EqKey: lit, Quals: quals}, nil
		}
		if ix.Kind == catalog.BTree {
			is := &executor.IndexScan{C: pl.C, Heap: heap, Out: sch,
				Table: table, KeyCol: col,
				BTree: pl.DB.BTreeFor(ix), Quals: quals}
			switch op {
			case "=":
				is.Lo, is.Hi, is.HasLo, is.HasHi = lit, lit, true, true
			case ">", ">=":
				is.Lo, is.HasLo = lit, true
				if op == ">" {
					is.Lo++
				}
			case "<", "<=":
				is.Hi, is.HasHi = lit, true
				if op == "<" {
					is.Hi--
				}
			default:
				continue
			}
			return is, nil
		}
	}
	quals, err := pl.compileQuals(preds, sch)
	if err != nil {
		return nil, err
	}
	// Partition-parallel scan when the context allows it and the heap
	// is big enough to split (a one-page table gains nothing).
	if pl.C.Parallelism > 1 && heap.NumPages() >= 2 {
		return &executor.ParallelScan{C: pl.C, Heap: heap, Out: sch,
			Table: table, Quals: quals, Degree: pl.C.Parallelism}, nil
	}
	return &executor.SeqScan{C: pl.C, Heap: heap, Out: sch, Table: table, Quals: quals}, nil
}

// join attaches table t to the current plan on outerCol = innerCol.
func (pl *Planner) join(outer executor.Node, t, outerCol, innerCol string,
	innerPreds []node, innerScan executor.Node, est map[string]float64) (executor.Node, error) {
	tbl, _ := pl.DB.Cat.Table(t)
	innerSch := tableSchema(tbl)
	outIdx := outer.Schema().ColIndex(outerCol)
	if outIdx < 0 {
		return nil, fmt.Errorf("sql: join column %q not available", outerCol)
	}
	// Index nested loop when the inner join column is indexed and the
	// outer side is not much larger than the inner.
	if ix := tbl.IndexOn(innerCol); ix != nil {
		quals, err := pl.compileQuals(innerPreds, joinedSchema(outer.Schema(), innerSch))
		if err != nil {
			return nil, err
		}
		ilj := &executor.IndexLoopJoin{C: pl.C, Outer: outer, OuterKey: outIdx,
			Heap: pl.DB.Heap(t), InnerSch: innerSch, Quals: quals,
			Table: t, KeyCol: innerCol}
		if ix.Kind == catalog.BTree {
			ilj.BTree = pl.DB.BTreeFor(ix)
		} else {
			ilj.HashIdx = pl.DB.HashFor(ix)
		}
		return ilj, nil
	}
	// Hash join otherwise (merge join for two huge unindexed inputs).
	inIdx := innerSch.ColIndex(innerCol)
	if inIdx < 0 {
		return nil, fmt.Errorf("sql: join column %q not in %q", innerCol, t)
	}
	if est[t] > 50000 {
		okeys := []executor.SortKey{{Col: outIdx}}
		ikeys := []executor.SortKey{{Col: inIdx}}
		return &executor.MergeJoin{C: pl.C,
			Outer:    &executor.Sort{C: pl.C, Child: outer, Keys: okeys},
			Inner:    &executor.Sort{C: pl.C, Child: innerScan, Keys: ikeys},
			OuterKey: outIdx, InnerKey: inIdx}, nil
	}
	return &executor.HashJoin{C: pl.C, Outer: outer, Inner: innerScan,
		OuterKey: outIdx, InnerKey: inIdx}, nil
}

// ---- helpers ----

// serialized replaces a ParallelScan with its serial equivalent for
// operators that re-open their inner child on every outer tuple (the
// cartesian NestLoop): respawning partition workers per rescan costs
// far more than the partitioning saves. Single-open consumers (hash
// and merge join builds, top-level scans) keep the parallel node.
func serialized(c *executor.Ctx, n executor.Node) executor.Node {
	if ps, ok := n.(*executor.ParallelScan); ok {
		return &executor.SeqScan{C: c, Heap: ps.Heap, Out: ps.Out, Table: ps.Table, Quals: ps.Quals}
	}
	return n
}

func flattenAnd(n node, out *[]node) {
	if n == nil {
		return
	}
	if a, ok := n.(*andExpr); ok {
		for _, c := range a.args {
			flattenAnd(c, out)
		}
		return
	}
	*out = append(*out, n)
}

// tablesOf returns the tables whose columns appear in n.
func (pl *Planner) tablesOf(n node, from []string) []string {
	seen := map[string]bool{}
	var walk func(node)
	walk = func(n node) {
		switch x := n.(type) {
		case *colRef:
			if t := pl.tableOfCol(x.name, from); t != "" {
				seen[t] = true
			}
		case *binExpr:
			walk(x.l)
			walk(x.r)
		case *andExpr:
			for _, a := range x.args {
				walk(a)
			}
		case *orExpr:
			for _, a := range x.args {
				walk(a)
			}
		case *notExpr:
			walk(x.arg)
		case *likeExpr:
			walk(x.arg)
		case *inExpr:
			walk(x.arg)
		}
	}
	walk(n)
	out := make([]string, 0, len(seen))
	for _, t := range from {
		if seen[t] {
			out = append(out, t)
		}
	}
	return out
}

func (pl *Planner) tableOfCol(col string, from []string) string {
	for _, t := range from {
		if tbl, ok := pl.DB.Cat.Table(t); ok && tbl.Schema.ColIndex(col) >= 0 {
			return t
		}
	}
	return ""
}

// selectivity is a crude textbook estimate per predicate shape.
func selectivity(n node) float64 {
	switch x := n.(type) {
	case *binExpr:
		switch x.op {
		case "=":
			return 0.05
		case "<>":
			return 0.9
		default:
			return 0.3
		}
	case *likeExpr:
		return 0.1
	case *inExpr:
		return 0.1
	case *orExpr:
		return 0.5
	case *notExpr:
		return 0.7
	}
	return 0.5
}

// indexableSides matches col-op-literal (either side) with an integer
// or date literal, returning the column, key and normalized operator.
func indexableSides(be *binExpr, t *catalog.Table) (col string, key int64, op string, ok bool) {
	lit2key := func(n node, colType value.Type) (int64, bool) {
		switch x := n.(type) {
		case *intLit:
			return x.v, true
		case *strLit:
			if colType == value.Date {
				d, err := value.ParseDate(x.v)
				if err == nil {
					return d, true
				}
			}
		}
		return 0, false
	}
	if c, isCol := be.l.(*colRef); isCol && t.Schema.ColIndex(c.name) >= 0 {
		ct := t.Schema.Columns[t.Schema.ColIndex(c.name)].Type
		if k, isLit := lit2key(be.r, ct); isLit {
			return c.name, k, be.op, true
		}
	}
	if c, isCol := be.r.(*colRef); isCol && t.Schema.ColIndex(c.name) >= 0 {
		ct := t.Schema.Columns[t.Schema.ColIndex(c.name)].Type
		if k, isLit := lit2key(be.l, ct); isLit {
			// Flip the comparison: lit op col  ==>  col op' lit.
			flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
			if f, okf := flip[be.op]; okf {
				return c.name, k, f, true
			}
		}
	}
	return "", 0, "", false
}

func (pl *Planner) compileQuals(preds []node, sch *catalog.Schema) ([]executor.Expr, error) {
	var out []executor.Expr
	for _, p := range preds {
		e, err := compileExpr(p, sch)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// compileExpr resolves names against a schema and produces an
// executable expression, coercing string literals compared against
// date columns.
func compileExpr(n node, sch *catalog.Schema) (executor.Expr, error) {
	switch x := n.(type) {
	case *colRef:
		idx := sch.ColIndex(x.name)
		if idx < 0 {
			return nil, fmt.Errorf("sql: unknown column %q", x.name)
		}
		return &executor.Var{Idx: idx, Name: x.name, T: sch.Columns[idx].Type}, nil
	case *intLit:
		return &executor.Const{V: value.NewInt(x.v)}, nil
	case *floatLit:
		return &executor.Const{V: value.NewFloat(x.v)}, nil
	case *strLit:
		return &executor.Const{V: value.NewStr(x.v)}, nil
	case *binExpr:
		l, err := compileExpr(x.l, sch)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.r, sch)
		if err != nil {
			return nil, err
		}
		l, r = coerceDates(l, r)
		var op executor.Op
		switch x.op {
		case "=":
			op = executor.OpEQ
		case "<>":
			op = executor.OpNE
		case "<":
			op = executor.OpLT
		case "<=":
			op = executor.OpLE
		case ">":
			op = executor.OpGT
		case ">=":
			op = executor.OpGE
		case "+":
			op = executor.OpAdd
		case "-":
			op = executor.OpSub
		case "*":
			op = executor.OpMul
		case "/":
			op = executor.OpDiv
		default:
			return nil, fmt.Errorf("sql: unknown operator %q", x.op)
		}
		return &executor.BinOp{Op: op, L: l, R: r}, nil
	case *andExpr:
		args := make([]executor.Expr, len(x.args))
		for i, a := range x.args {
			e, err := compileExpr(a, sch)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return &executor.AndExpr{Args: args}, nil
	case *orExpr:
		args := make([]executor.Expr, len(x.args))
		for i, a := range x.args {
			e, err := compileExpr(a, sch)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return &executor.OrExpr{Args: args}, nil
	case *notExpr:
		a, err := compileExpr(x.arg, sch)
		if err != nil {
			return nil, err
		}
		return &executor.NotExpr{Arg: a}, nil
	case *likeExpr:
		a, err := compileExpr(x.arg, sch)
		if err != nil {
			return nil, err
		}
		return &executor.LikeExpr{Arg: a, Pattern: x.pattern, Negate: x.negate}, nil
	case *inExpr:
		a, err := compileExpr(x.arg, sch)
		if err != nil {
			return nil, err
		}
		var list []value.Value
		for _, el := range x.list {
			c, err := compileExpr(el, sch)
			if err != nil {
				return nil, err
			}
			k, ok := c.(*executor.Const)
			if !ok {
				return nil, fmt.Errorf("sql: IN list must be literals")
			}
			v := k.V
			if a.Type() == value.Date && v.T == value.Str {
				if d, err := value.ParseDate(v.S); err == nil {
					v = value.NewDate(d)
				}
			}
			list = append(list, v)
		}
		return &executor.InExpr{Arg: a, List: list}, nil
	}
	return nil, fmt.Errorf("sql: cannot compile %T", n)
}

// coerceDates converts a string literal compared against a date column
// into a date constant.
func coerceDates(l, r executor.Expr) (executor.Expr, executor.Expr) {
	if l.Type() == value.Date {
		if k, ok := r.(*executor.Const); ok && k.V.T == value.Str {
			if d, err := value.ParseDate(k.V.S); err == nil {
				return l, &executor.Const{V: value.NewDate(d)}
			}
		}
	}
	if r.Type() == value.Date {
		if k, ok := l.(*executor.Const); ok && k.V.T == value.Str {
			if d, err := value.ParseDate(k.V.S); err == nil {
				return &executor.Const{V: value.NewDate(d)}, r
			}
		}
	}
	return l, r
}

func tableSchema(t *catalog.Table) *catalog.Schema { return t.Schema }

func joinedSchema(l, r *catalog.Schema) *catalog.Schema {
	cols := make([]catalog.Column, 0, l.Len()+r.Len())
	cols = append(cols, l.Columns...)
	cols = append(cols, r.Columns...)
	return catalog.NewSchema(cols...)
}

// Compiled bundles a plan with its compile-time metadata: the query's
// table footprint (what the result cache validates epochs against)
// and its canonical text (the cache key).
type Compiled struct {
	Plan executor.Node
	// Tables is the deduplicated FROM footprint, in first-mention
	// order.
	Tables []string
	// Key is the canonicalized query text (see SelectStmt.Canonical).
	Key string
}

// CompileQuery parses and plans a query without running it — the
// parse/plan-once half of a prepared statement — and returns the plan
// together with its footprint and canonical key. The plan can be
// executed repeatedly (executor nodes reset on Open), but holds
// mutable state and must not be run concurrently.
func CompileQuery(db *engine.DB, c *executor.Ctx, query string) (*Compiled, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	pl := &Planner{DB: db, C: c}
	plan, err := pl.Plan(st)
	if err != nil {
		return nil, err
	}
	return &Compiled{Plan: plan, Tables: dedupFrom(st.From), Key: st.Canonical()}, nil
}

// Analyze parses a query just far enough for a result-cache lookup:
// its canonical key and deduplicated table footprint, without
// planning. A hit served off these never needs the plan; a miss
// proceeds to CompileQuery (which re-parses — parsing is a small
// fraction of planning, let alone execution).
func Analyze(query string) (key string, tables []string, err error) {
	st, err := Parse(query)
	if err != nil {
		return "", nil, err
	}
	return st.Canonical(), dedupFrom(st.From), nil
}

// dedupFrom returns the FROM list with duplicates removed, in
// first-mention order.
func dedupFrom(from []string) []string {
	tables := make([]string, 0, len(from))
	seen := make(map[string]bool, len(from))
	for _, t := range from {
		if !seen[t] {
			seen[t] = true
			tables = append(tables, t)
		}
	}
	return tables
}

// Compile is CompileQuery without the metadata.
func Compile(db *engine.DB, c *executor.Ctx, query string) (executor.Node, error) {
	cq, err := CompileQuery(db, c, query)
	if err != nil {
		return nil, err
	}
	return cq.Plan, nil
}

// Exec parses, plans and runs a query in one call.
func Exec(db *engine.DB, c *executor.Ctx, query string) ([]executor.Tuple, *catalog.Schema, error) {
	plan, err := Compile(db, c, query)
	if err != nil {
		return nil, nil, err
	}
	rows, err := engine.Run(plan)
	if err != nil {
		return nil, nil, err
	}
	return rows, plan.Schema(), nil
}
