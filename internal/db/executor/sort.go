package executor

import (
	"sort"

	"repro/internal/db/catalog"
	"repro/internal/db/probe"
)

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materializes its child and emits tuples in key order
// (ExecSort over psort/tuplesort).
type Sort struct {
	C     *Ctx
	Child Node
	Keys  []SortKey

	rows   []Tuple
	pos    int
	loaded bool
}

// Open implements Node.
func (s *Sort) Open() error {
	s.rows = nil
	s.pos = 0
	s.loaded = false
	return s.Child.Open()
}

func (s *Sort) load() error {
	c := s.C
	for {
		tup, ok, err := c.child(probe.SortLoadCall, probe.SortLoadCont, s.Child)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		c.Tr.Emit(probe.SortLoadOK)
		s.rows = append(s.rows, tup)
	}
	c.Tr.Emit(probe.SortSortCall)
	c.Tr.Emit(probe.QsortEnter)
	sort.SliceStable(s.rows, func(i, j int) bool {
		c.Tr.Emit(probe.QsortCmpCall)
		r := tupleCompare(c, s.rows[i], s.rows[j], s.Keys)
		c.Tr.Emit(probe.QsortCmpCont)
		return r < 0
	})
	c.Tr.Emit(probe.QsortRet)
	c.Tr.Emit(probe.SortSortCont)
	s.loaded = true
	return nil
}

// Next implements Node.
func (s *Sort) Next() (Tuple, bool, error) {
	c := s.C
	c.Tr.Emit(probe.SortEnter)
	if !s.loaded {
		if err := s.load(); err != nil {
			return nil, false, err
		}
	}
	if s.pos >= len(s.rows) {
		c.Tr.Emit(probe.SortEOF)
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	c.Tr.Emit(probe.SortEmit)
	return row, true, nil
}

// Close implements Node.
func (s *Sort) Close() error {
	s.rows = nil
	s.loaded = false
	return s.Child.Close()
}

// Schema implements Node.
func (s *Sort) Schema() *catalog.Schema { return s.Child.Schema() }

// Material buffers its child's output on first demand and replays it
// on rescans (ExecMaterial) — what the paper notes Aggregate/Sort-type
// operations do with temporary results outside the access methods.
type Material struct {
	C     *Ctx
	Child Node

	rows   []Tuple
	pos    int
	loaded bool
}

// Open implements Node. Re-opening rewinds the materialized store
// without re-running the child.
func (m *Material) Open() error {
	m.pos = 0
	if m.loaded {
		return nil
	}
	return m.Child.Open()
}

// Next implements Node.
func (m *Material) Next() (Tuple, bool, error) {
	c := m.C
	c.Tr.Emit(probe.MatEnter)
	if !m.loaded {
		for {
			tup, ok, err := c.child(probe.MatChildCall, probe.MatChildCont, m.Child)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			c.Tr.Emit(probe.MatLoadOK)
			m.rows = append(m.rows, tup)
		}
		c.Tr.Emit(probe.MatLoadDone)
		m.loaded = true
	}
	if m.pos >= len(m.rows) {
		c.Tr.Emit(probe.MatEOF)
		return nil, false, nil
	}
	row := m.rows[m.pos]
	m.pos++
	c.Tr.Emit(probe.MatEmit)
	return row, true, nil
}

// Close implements Node.
func (m *Material) Close() error {
	// Keep the store for rescans; a full close drops it.
	return m.Child.Close()
}

// Schema implements Node.
func (m *Material) Schema() *catalog.Schema { return m.Child.Schema() }

// Limit stops after N tuples (ExecLimit).
type Limit struct {
	C     *Ctx
	Child Node
	N     int
	seen  int
}

// Open implements Node.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Child.Open()
}

// Next implements Node.
func (l *Limit) Next() (Tuple, bool, error) {
	c := l.C
	c.Tr.Emit(probe.LimEnter)
	if l.seen >= l.N {
		c.Tr.Emit(probe.LimEOF)
		return nil, false, nil
	}
	tup, ok, err := c.child(probe.LimChildCall, probe.LimChildCont, l.Child)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		c.Tr.Emit(probe.LimDrained)
		return nil, false, nil
	}
	l.seen++
	c.Tr.Emit(probe.LimEmit)
	return tup, true, nil
}

// Close implements Node.
func (l *Limit) Close() error { return l.Child.Close() }

// Schema implements Node.
func (l *Limit) Schema() *catalog.Schema { return l.Child.Schema() }
