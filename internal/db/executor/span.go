package executor

import (
	"time"

	"repro/dsdb/obs"
	"repro/internal/db/probe"
)

// spanTracer forwards probe events to the session tracer unchanged
// while carrying the query's observability span. Deep kernel layers
// that already receive the probe tracer — the buffer pool above all —
// attribute their IO waits to the span by type-asserting the
// AddIOWait method, so no access-method signature changes for
// observability.
type spanTracer struct {
	inner probe.Tracer
	sp    *obs.Span
}

// Emit implements probe.Tracer.
func (t spanTracer) Emit(id probe.ID) { t.inner.Emit(id) }

// AddIOWait attributes buffer-pool IO wait to the span. Safe from
// parallel scan workers: span stage counters are atomic.
func (t spanTracer) AddIOWait(d time.Duration) { t.sp.Add(obs.StageIO, d) }

// ioWaiter is the buffer pool's IO-wait attribution hook, re-declared
// here so wrapping tracers can forward it down the chain.
type ioWaiter interface {
	AddIOWait(d time.Duration)
}

// analyzeTracer sits atop the span tracer during EXPLAIN ANALYZE: it
// forwards every probe event unchanged, and additionally attributes
// buffer-pool page hits/misses and IO waits to the operator currently
// executing (Ctx.curOp, maintained by the Instrumented wrappers). It
// reads curOp at emission time, so one tracer serves the whole tree;
// only the single-threaded session goroutine runs under it — workers
// get a fixed-operator opTracer instead.
type analyzeTracer struct {
	inner probe.Tracer
	c     *Ctx
}

// Emit implements probe.Tracer.
func (t analyzeTracer) Emit(id probe.ID) {
	t.inner.Emit(id)
	switch id {
	case probe.BufGetHit:
		if op := t.c.curOp; op != nil {
			op.bufHits.Add(1)
		}
	case probe.BufGetMiss:
		if op := t.c.curOp; op != nil {
			op.bufMisses.Add(1)
		}
	}
}

// AddIOWait attributes IO wait to the current operator and forwards
// it down the chain (so the span's IO stage still sees it).
func (t analyzeTracer) AddIOWait(d time.Duration) {
	if op := t.c.curOp; op != nil {
		op.ioWait.Add(int64(d))
	}
	if w, ok := t.inner.(ioWaiter); ok {
		w.AddIOWait(d)
	}
}

// opTracer is analyzeTracer's parallel-worker twin: the operator is
// fixed at construction (the ParallelScan's own stats block, captured
// on the session goroutine at Open), so workers never touch Ctx.curOp.
// The counters are atomic — any number of workers share one block.
type opTracer struct {
	inner probe.Tracer
	op    *OpStats
}

// Emit implements probe.Tracer.
func (t opTracer) Emit(id probe.ID) {
	t.inner.Emit(id)
	switch id {
	case probe.BufGetHit:
		t.op.bufHits.Add(1)
	case probe.BufGetMiss:
		t.op.bufMisses.Add(1)
	}
}

// AddIOWait attributes IO wait to the fixed operator and forwards it.
func (t opTracer) AddIOWait(d time.Duration) {
	t.op.ioWait.Add(int64(d))
	if w, ok := t.inner.(ioWaiter); ok {
		w.AddIOWait(d)
	}
}

// retrace rebuilds the context's tracer chain from the base session
// tracer: span attribution first (closest to the kernel), then the
// analyze layer on top. Called whenever the span or analyze mode
// changes; statements are single-threaded, so the swap is safe.
func (c *Ctx) retrace() {
	tr := c.base
	if c.Span != nil {
		tr = spanTracer{inner: tr, sp: c.Span}
	}
	if c.analyzing {
		tr = analyzeTracer{inner: tr, c: c}
	}
	c.Tr = tr
}

// SetSpan attaches (or, with nil, detaches) the observability span
// for the next execution, wrapping the context's tracer so the buffer
// pool can attribute IO waits (see spanTracer). Statements are
// single-threaded, so swapping the tracer between executions is safe.
func (c *Ctx) SetSpan(sp *obs.Span) {
	if c.base == nil {
		c.base = c.Tr
	}
	c.Span = sp
	c.retrace()
}

// SetAnalyze switches EXPLAIN ANALYZE attribution on or off for the
// next execution: when on, the tracer chain counts buffer-pool
// traffic into the instrumented operators (see analyzeTracer and
// instrument.go). Ordinary queries never call this, so they keep the
// exact pre-existing tracer chain.
func (c *Ctx) SetAnalyze(on bool) {
	if c.base == nil {
		c.base = c.Tr
	}
	c.analyzing = on
	c.retrace()
}

// workerTracer builds a parallel-scan worker's tracer: the
// concurrency-safe worker tracer, wrapped to carry the session's span
// (if any) so worker-side IO waits are attributed, and — under
// EXPLAIN ANALYZE — to count buffer traffic into the operator stats
// block passed by the scan's Open. Must be called on the session
// goroutine (it reads Span and curOp), never from inside a worker.
func workerTracer(c *Ctx) probe.Tracer {
	tr := probe.Or(c.WorkerTracer)
	if c.Span != nil {
		tr = spanTracer{inner: tr, sp: c.Span}
	}
	if c.analyzing && c.curOp != nil {
		tr = opTracer{inner: tr, op: c.curOp}
	}
	return tr
}
