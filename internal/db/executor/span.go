package executor

import (
	"time"

	"repro/dsdb/obs"
	"repro/internal/db/probe"
)

// spanTracer forwards probe events to the session tracer unchanged
// while carrying the query's observability span. Deep kernel layers
// that already receive the probe tracer — the buffer pool above all —
// attribute their IO waits to the span by type-asserting the
// AddIOWait method, so no access-method signature changes for
// observability.
type spanTracer struct {
	inner probe.Tracer
	sp    *obs.Span
}

// Emit implements probe.Tracer.
func (t spanTracer) Emit(id probe.ID) { t.inner.Emit(id) }

// AddIOWait attributes buffer-pool IO wait to the span. Safe from
// parallel scan workers: span stage counters are atomic.
func (t spanTracer) AddIOWait(d time.Duration) { t.sp.Add(obs.StageIO, d) }

// SetSpan attaches (or, with nil, detaches) the observability span
// for the next execution, wrapping the context's tracer so the buffer
// pool can attribute IO waits (see spanTracer). Statements are
// single-threaded, so swapping the tracer between executions is safe.
func (c *Ctx) SetSpan(sp *obs.Span) {
	if c.base == nil {
		c.base = c.Tr
	}
	c.Span = sp
	if sp == nil {
		c.Tr = c.base
	} else {
		c.Tr = spanTracer{inner: c.base, sp: sp}
	}
}

// workerTracer builds a parallel-scan worker's tracer: the
// concurrency-safe worker tracer, wrapped to carry the session's span
// (if any) so worker-side IO waits are attributed too.
func workerTracer(c *Ctx) probe.Tracer {
	tr := probe.Or(c.WorkerTracer)
	if c.Span == nil {
		return tr
	}
	return spanTracer{inner: tr, sp: c.Span}
}
