package executor

import (
	"repro/internal/db/access"
	"repro/internal/db/catalog"
	"repro/internal/db/probe"
	"repro/internal/db/value"
)

// joinSchema concatenates two input schemas.
func joinSchema(l, r *catalog.Schema) *catalog.Schema {
	cols := make([]catalog.Column, 0, l.Len()+r.Len())
	cols = append(cols, l.Columns...)
	cols = append(cols, r.Columns...)
	return catalog.NewSchema(cols...)
}

func joinRow(l, r Tuple) Tuple {
	out := make(Tuple, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

// NestLoop is the naive nested-loop join: for every outer tuple the
// inner plan is rescanned (ExecNestLoop). Quals see the concatenated
// row.
type NestLoop struct {
	C       *Ctx
	Outer   Node
	Inner   Node
	Quals   []Expr
	out     *catalog.Schema
	cur     Tuple
	haveCur bool
}

// Open implements Node.
func (n *NestLoop) Open() error {
	n.cur = nil
	n.haveCur = false
	if err := n.Outer.Open(); err != nil {
		return err
	}
	return n.Inner.Open()
}

// Next implements Node.
func (n *NestLoop) Next() (Tuple, bool, error) {
	c := n.C
	c.Tr.Emit(probe.NLEnter)
	for {
		if !n.haveCur {
			tup, ok, err := c.child(probe.NLOuterCall, probe.NLOuterCont, n.Outer)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				c.Tr.Emit(probe.NLEOF)
				return nil, false, nil
			}
			c.Tr.Emit(probe.NLOuterOK)
			n.cur = tup
			n.haveCur = true
		}
		itup, ok, err := c.child(probe.NLInnerCall, probe.NLInnerCont, n.Inner)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			// Inner exhausted: rescan it for the next outer tuple.
			c.Tr.Emit(probe.NLRescan)
			n.haveCur = false
			if err := n.Inner.Close(); err != nil {
				return nil, false, err
			}
			if err := n.Inner.Open(); err != nil {
				return nil, false, err
			}
			continue
		}
		row := joinRow(n.cur, itup)
		c.Tr.Emit(probe.NLJoin)
		if len(n.Quals) > 0 {
			c.Tr.Emit(probe.NLQualCall)
			pass := ExecQual(c, n.Quals, row)
			c.Tr.Emit(probe.NLQualCont)
			if !pass {
				c.Tr.Emit(probe.NLNext)
				continue
			}
			c.Tr.Emit(probe.NLEmit)
			return row, true, nil
		}
		c.Tr.Emit(probe.NLEmitDirect)
		return row, true, nil
	}
}

// Close implements Node. Both children are always closed, even when
// the first close fails; the first error wins. Close is idempotent.
func (n *NestLoop) Close() error {
	err := n.Outer.Close()
	if ierr := n.Inner.Close(); err == nil {
		err = ierr
	}
	return err
}

// Schema implements Node.
func (n *NestLoop) Schema() *catalog.Schema {
	if n.out == nil {
		n.out = joinSchema(n.Outer.Schema(), n.Inner.Schema())
	}
	return n.out
}

// IndexLoopJoin joins by probing an inner index with the outer join
// key for each outer tuple — PostgreSQL's nested loop with an inner
// index scan, the plan shape the paper's Btree/Hash databases exist
// for. The inner relation contributes full heap tuples.
type IndexLoopJoin struct {
	C        *Ctx
	Outer    Node
	OuterKey int // column of the outer tuple holding the join key
	Heap     *access.Heap
	BTree    *access.BTree
	HashIdx  *access.HashIndex
	InnerSch *catalog.Schema
	// Table and KeyCol name the inner relation and its indexed join
	// column for EXPLAIN output.
	Table  string
	KeyCol string
	Quals  []Expr // residual quals over the concatenated row

	out     *catalog.Schema
	cur     Tuple
	haveCur bool
	bscan   *access.BTreeScan
	hscan   *access.HashScan
	key     int64
}

// Open implements Node.
func (j *IndexLoopJoin) Open() error {
	j.cur = nil
	j.haveCur = false
	j.bscan = nil
	j.hscan = nil
	return j.Outer.Open()
}

// Next implements Node.
func (j *IndexLoopJoin) Next() (Tuple, bool, error) {
	c := j.C
	c.Tr.Emit(probe.NLEnter)
	for {
		if !j.haveCur {
			tup, ok, err := c.child(probe.NLOuterCall, probe.NLOuterCont, j.Outer)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				c.Tr.Emit(probe.NLEOF)
				return nil, false, nil
			}
			j.cur = tup
			j.haveCur = true
			kv := tup[j.OuterKey]
			j.key = kv.I
			// Start the inner index probe.
			c.Tr.Emit(probe.NLStartScan)
			if j.BTree != nil {
				j.bscan, err = j.BTree.SeekGE(c.Tr, j.key)
				if err != nil {
					return nil, false, err
				}
			} else {
				j.hscan = j.HashIdx.Lookup(c.Tr, j.key)
			}
			c.Tr.Emit(probe.NLStartCont)
		}
		// Pull the next inner match.
		var (
			tid access.TID
			ok  bool
			err error
		)
		c.Tr.Emit(probe.NLInnerCall)
		if j.bscan != nil {
			var k int64
			k, tid, ok, err = j.bscan.Next(c.Tr)
			if ok && k != j.key {
				ok = false
			}
		} else {
			tid, ok, err = j.hscan.Next(c.Tr)
		}
		c.Tr.Emit(probe.NLInnerCont)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			c.Tr.Emit(probe.NLRescan)
			j.haveCur = false
			j.bscan = nil
			j.hscan = nil
			continue
		}
		c.Tr.Emit(probe.NLFetch)
		ivals, err := j.Heap.Fetch(c.Tr, tid, nil)
		c.Tr.Emit(probe.NLFetchCont)
		if err != nil {
			return nil, false, err
		}
		row := joinRow(j.cur, Tuple(ivals))
		if len(j.Quals) > 0 {
			c.Tr.Emit(probe.NLQualCall)
			pass := ExecQual(c, j.Quals, row)
			c.Tr.Emit(probe.NLQualCont)
			if !pass {
				c.Tr.Emit(probe.NLNext)
				continue
			}
			c.Tr.Emit(probe.NLEmit)
			return row, true, nil
		}
		c.Tr.Emit(probe.NLEmitDirect)
		return row, true, nil
	}
}

// Close implements Node.
func (j *IndexLoopJoin) Close() error {
	j.bscan = nil
	j.hscan = nil
	return j.Outer.Close()
}

// Schema implements Node.
func (j *IndexLoopJoin) Schema() *catalog.Schema {
	if j.out == nil {
		j.out = joinSchema(j.Outer.Schema(), j.InnerSch)
	}
	return j.out
}

// HashJoin builds an in-memory hash table over the inner input, then
// probes it with each outer tuple (ExecHashJoin). Keys are equijoin
// columns; residual quals run on concatenated rows.
type HashJoin struct {
	C        *Ctx
	Outer    Node
	Inner    Node
	OuterKey int
	InnerKey int
	Quals    []Expr

	out    *catalog.Schema
	table  map[uint64][]Tuple
	built  bool
	cur    Tuple
	bucket []Tuple
	bpos   int
}

// Open implements Node.
func (h *HashJoin) Open() error {
	h.table = nil
	h.built = false
	h.cur = nil
	h.bucket = nil
	h.bpos = 0
	if err := h.Outer.Open(); err != nil {
		return err
	}
	return h.Inner.Open()
}

func (h *HashJoin) build() error {
	c := h.C
	c.Tr.Emit(probe.HJBuildStart)
	h.table = make(map[uint64][]Tuple)
	for {
		tup, ok, err := c.child(probe.HJBuildCall, probe.HJBuildCont, h.Inner)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		c.Tr.Emit(probe.HJBuildInsert)
		c.Tr.Emit(probe.HashFunc)
		k := value.Hash(tup[h.InnerKey])
		h.table[k] = append(h.table[k], tup)
		c.Tr.Emit(probe.HJBuildInsCont)
	}
	c.Tr.Emit(probe.HJBuildDone)
	h.built = true
	return nil
}

// Next implements Node.
func (h *HashJoin) Next() (Tuple, bool, error) {
	c := h.C
	c.Tr.Emit(probe.HJEnter)
	fresh := false
	if !h.built {
		if err := h.build(); err != nil {
			return nil, false, err
		}
		fresh = true // build-done block falls through to the outer fetch
	} else {
		c.Tr.Emit(probe.HJResume)
	}
	for {
		if !fresh {
			// Drain the current bucket.
			for h.bpos < len(h.bucket) {
				cand := h.bucket[h.bpos]
				h.bpos++
				c.Tr.Emit(probe.HJCandCall)
				c.Tr.Emit(cmpProbeFor(h.cur[h.OuterKey]))
				eq := value.Equal(h.cur[h.OuterKey], cand[h.InnerKey])
				c.Tr.Emit(probe.HJCandCont)
				if !eq {
					c.Tr.Emit(probe.HJCandMiss)
					continue
				}
				row := joinRow(h.cur, cand)
				if len(h.Quals) > 0 {
					c.Tr.Emit(probe.HJQualCall)
					pass := ExecQual(c, h.Quals, row)
					c.Tr.Emit(probe.HJQualCont)
					if !pass {
						c.Tr.Emit(probe.HJCandNext)
						continue
					}
					c.Tr.Emit(probe.HJMatch)
					return row, true, nil
				}
				c.Tr.Emit(probe.HJMatchDirect)
				return row, true, nil
			}
			c.Tr.Emit(probe.HJBucketDone)
		}
		fresh = false
		// Next outer tuple.
		tup, ok, err := c.child(probe.HJOuterCall, probe.HJOuterCont, h.Outer)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			c.Tr.Emit(probe.HJEOF)
			return nil, false, nil
		}
		h.cur = tup
		c.Tr.Emit(probe.HJProbeCall)
		c.Tr.Emit(probe.HashFunc)
		k := value.Hash(tup[h.OuterKey])
		h.bucket = h.table[k]
		h.bpos = 0
		c.Tr.Emit(probe.HJProbeCont)
	}
}

// Close implements Node. Both children are always closed, even when
// the first close fails; the first error wins. Close is idempotent.
func (h *HashJoin) Close() error {
	h.table = nil
	h.built = false
	err := h.Outer.Close()
	if ierr := h.Inner.Close(); err == nil {
		err = ierr
	}
	return err
}

// Schema implements Node.
func (h *HashJoin) Schema() *catalog.Schema {
	if h.out == nil {
		h.out = joinSchema(h.Outer.Schema(), h.Inner.Schema())
	}
	return h.out
}

// MergeJoin joins two inputs sorted on their join keys, buffering
// duplicate inner groups so every matching pair is produced
// (ExecMergeJoin).
type MergeJoin struct {
	C        *Ctx
	Outer    Node
	Inner    Node
	OuterKey int
	InnerKey int
	Quals    []Expr

	out          *catalog.Schema
	outerTup     Tuple
	outerOK      bool
	innerTup     Tuple
	innerOK      bool
	started      bool
	group        []Tuple // current inner duplicate group
	groupKey     value.Value
	gpos         int
	outerInGroup bool
}

// Open implements Node.
func (m *MergeJoin) Open() error {
	m.started = false
	m.group = nil
	m.gpos = 0
	m.outerInGroup = false
	if err := m.Outer.Open(); err != nil {
		return err
	}
	return m.Inner.Open()
}

func (m *MergeJoin) advanceOuter() error {
	t, ok, err := m.C.child(probe.MJOuterCall, probe.MJOuterCont, m.Outer)
	m.outerTup, m.outerOK = t, ok
	return err
}

func (m *MergeJoin) advanceInner() error {
	t, ok, err := m.C.child(probe.MJInnerCall, probe.MJInnerCont, m.Inner)
	m.innerTup, m.innerOK = t, ok
	return err
}

// Next implements Node.
func (m *MergeJoin) Next() (Tuple, bool, error) {
	c := m.C
	c.Tr.Emit(probe.MJEnter)
	if !m.started {
		m.started = true
		if err := m.advanceOuter(); err != nil {
			return nil, false, err
		}
		if err := m.advanceInner(); err != nil {
			return nil, false, err
		}
	}
	for {
		// Emit pending (outer, group) pairs.
		if m.outerInGroup {
			for m.gpos < len(m.group) {
				itup := m.group[m.gpos]
				m.gpos++
				row := joinRow(m.outerTup, itup)
				if len(m.Quals) > 0 {
					c.Tr.Emit(probe.MJQualCall)
					pass := ExecQual(c, m.Quals, row)
					c.Tr.Emit(probe.MJQualCont)
					if !pass {
						continue
					}
				}
				c.Tr.Emit(probe.MJEmit)
				return row, true, nil
			}
			// Group exhausted for this outer tuple: advance outer and
			// re-check it against the same group.
			m.gpos = 0
			m.outerInGroup = false
			if err := m.advanceOuter(); err != nil {
				return nil, false, err
			}
		}
		if !m.outerOK {
			c.Tr.Emit(probe.MJEOF)
			return nil, false, nil
		}
		// Does the current outer match the buffered group?
		if len(m.group) > 0 {
			c.Tr.Emit(probe.MJCmpCall)
			c.Tr.Emit(cmpProbeFor(m.outerTup[m.OuterKey]))
			cmp := compareVals(m.outerTup[m.OuterKey], m.groupKey)
			c.Tr.Emit(probe.MJCmpCont)
			if cmp == 0 {
				m.outerInGroup = true
				m.gpos = 0
				continue
			}
			m.group = nil
		}
		if !m.innerOK {
			c.Tr.Emit(probe.MJEOF)
			return nil, false, nil
		}
		// Align keys.
		c.Tr.Emit(probe.MJCmpCall)
		c.Tr.Emit(cmpProbeFor(m.outerTup[m.OuterKey]))
		cmp := compareVals(m.outerTup[m.OuterKey], m.innerTup[m.InnerKey])
		c.Tr.Emit(probe.MJCmpCont)
		switch {
		case cmp < 0:
			if err := m.advanceOuter(); err != nil {
				return nil, false, err
			}
		case cmp > 0:
			if err := m.advanceInner(); err != nil {
				return nil, false, err
			}
		default:
			// Buffer the inner duplicate group for this key.
			m.groupKey = m.innerTup[m.InnerKey]
			m.group = m.group[:0]
			for m.innerOK {
				c.Tr.Emit(probe.MJCmpCall)
				c.Tr.Emit(cmpProbeFor(m.innerTup[m.InnerKey]))
				same := compareVals(m.innerTup[m.InnerKey], m.groupKey) == 0
				c.Tr.Emit(probe.MJCmpCont)
				if !same {
					break
				}
				m.group = append(m.group, m.innerTup)
				if err := m.advanceInner(); err != nil {
					return nil, false, err
				}
			}
			m.outerInGroup = true
			m.gpos = 0
		}
	}
}

// Close implements Node. Both children are always closed, even when
// the first close fails; the first error wins. Close is idempotent.
func (m *MergeJoin) Close() error {
	m.group = nil
	err := m.Outer.Close()
	if ierr := m.Inner.Close(); err == nil {
		err = ierr
	}
	return err
}

// Schema implements Node.
func (m *MergeJoin) Schema() *catalog.Schema {
	if m.out == nil {
		m.out = joinSchema(m.Outer.Schema(), m.Inner.Schema())
	}
	return m.out
}

// compareVals wraps value.Compare for the executor (NULLs first).
func compareVals(a, b value.Value) int { return value.Compare(a, b) }

// cmpProbeFor picks the per-type comparator probe.
func cmpProbeFor(v value.Value) probe.ID {
	switch v.T {
	case value.Float:
		return probe.CmpFlt
	case value.Str:
		return probe.CmpStr
	case value.Date:
		return probe.CmpDate
	default:
		return probe.CmpInt
	}
}
