package executor

import (
	"fmt"

	"repro/internal/db/access"
	"repro/internal/db/catalog"
	"repro/internal/db/probe"
)

// SeqScan reads a heap file sequentially, applying an optional
// qualifier — PostgreSQL's ExecSeqScan over heap_getnext.
type SeqScan struct {
	C    *Ctx
	Heap *access.Heap
	Out  *catalog.Schema
	// Table names the scanned relation for EXPLAIN output.
	Table  string
	Quals  []Expr
	scan   *access.HeapScan
	opened bool
}

// Open implements Node.
func (s *SeqScan) Open() error {
	s.scan = s.Heap.BeginScan()
	s.opened = true
	return nil
}

// Next implements Node.
func (s *SeqScan) Next() (Tuple, bool, error) {
	if !s.opened {
		return nil, false, fmt.Errorf("executor: SeqScan not opened")
	}
	c := s.C
	c.Tr.Emit(probe.SeqScanEnter)
	for {
		c.Tr.Emit(probe.SeqScanCall)
		vals, _, ok, err := s.scan.Next(c.Tr, nil)
		c.Tr.Emit(probe.SeqScanCont)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			c.Tr.Emit(probe.SeqScanEOF)
			return nil, false, nil
		}
		if len(s.Quals) > 0 {
			c.Tr.Emit(probe.SeqScanQualCall)
			pass := ExecQual(c, s.Quals, Tuple(vals))
			c.Tr.Emit(probe.SeqScanQualCont)
			if !pass {
				c.Tr.Emit(probe.SeqScanNext)
				continue
			}
			c.Tr.Emit(probe.SeqScanEmit)
			return Tuple(vals), true, nil
		}
		c.Tr.Emit(probe.SeqScanEmitDirect)
		return Tuple(vals), true, nil
	}
}

// Close implements Node.
func (s *SeqScan) Close() error {
	if s.scan != nil {
		s.scan.Close()
		s.scan = nil
	}
	s.opened = false
	return nil
}

// Schema implements Node.
func (s *SeqScan) Schema() *catalog.Schema { return s.Out }

// IndexScan reads tuples through an index — a B-tree range scan
// (lo <= key <= hi) or a hash equality lookup — fetching each heap
// tuple by TID and applying residual qualifiers (ExecIndexScan).
type IndexScan struct {
	C    *Ctx
	Heap *access.Heap
	Out  *catalog.Schema
	// Table and KeyCol name the scanned relation and the indexed
	// column for EXPLAIN output.
	Table  string
	KeyCol string

	// BTree or HashIdx is set depending on the index kind.
	BTree   *access.BTree
	HashIdx *access.HashIndex

	// Lo/Hi bound a B-tree range scan (inclusive); HasLo/HasHi say
	// which bounds exist. EqKey drives a hash lookup.
	Lo, Hi       int64
	HasLo, HasHi bool
	EqKey        int64

	Quals []Expr

	bscan  *access.BTreeScan
	hscan  *access.HashScan
	opened bool
}

// Open implements Node. The index descent itself happens lazily on
// the first Next call so it is attributed to the traced scan, as
// ExecIndexScan does.
func (s *IndexScan) Open() error {
	if s.BTree == nil && s.HashIdx == nil {
		return fmt.Errorf("executor: IndexScan has no index")
	}
	s.opened = true
	s.bscan = nil
	s.hscan = nil
	return nil
}

func (s *IndexScan) init() error {
	c := s.C
	c.Tr.Emit(probe.IdxScanInit)
	var err error
	if s.BTree != nil {
		if s.HasLo {
			s.bscan, err = s.BTree.SeekGE(c.Tr, s.Lo)
		} else {
			s.bscan, err = s.BTree.SeekFirst(c.Tr)
		}
	} else {
		s.hscan = s.HashIdx.Lookup(c.Tr, s.EqKey)
	}
	c.Tr.Emit(probe.IdxScanInitCont)
	return err
}

// Next implements Node.
func (s *IndexScan) Next() (Tuple, bool, error) {
	if !s.opened {
		return nil, false, fmt.Errorf("executor: IndexScan not opened")
	}
	c := s.C
	c.Tr.Emit(probe.IdxScanEnter)
	if s.bscan == nil && s.hscan == nil {
		if err := s.init(); err != nil {
			return nil, false, err
		}
	}
	for {
		var (
			tid  access.TID
			key  int64
			ok   bool
			err  error
			done bool
		)
		c.Tr.Emit(probe.IdxScanNextCall)
		if s.bscan != nil {
			key, tid, ok, err = s.bscan.Next(c.Tr)
			if ok && s.HasHi && key > s.Hi {
				ok = false
			}
		} else {
			tid, ok, err = s.hscan.Next(c.Tr)
		}
		c.Tr.Emit(probe.IdxScanNextCont)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			done = true
		}
		if done {
			c.Tr.Emit(probe.IdxScanEOF)
			return nil, false, nil
		}
		c.Tr.Emit(probe.IdxScanFetch)
		vals, err := s.Heap.Fetch(c.Tr, tid, nil)
		c.Tr.Emit(probe.IdxScanCont)
		if err != nil {
			return nil, false, err
		}
		if len(s.Quals) > 0 {
			c.Tr.Emit(probe.IdxScanQualCall)
			pass := ExecQual(c, s.Quals, Tuple(vals))
			c.Tr.Emit(probe.IdxScanQualCont)
			if !pass {
				c.Tr.Emit(probe.IdxScanNext)
				continue
			}
			c.Tr.Emit(probe.IdxScanEmit)
			return Tuple(vals), true, nil
		}
		c.Tr.Emit(probe.IdxScanEmitDirect)
		return Tuple(vals), true, nil
	}
}

// Close implements Node.
func (s *IndexScan) Close() error {
	s.bscan = nil
	s.hscan = nil
	s.opened = false
	return nil
}

// Schema implements Node.
func (s *IndexScan) Schema() *catalog.Schema { return s.Out }

// ValuesScan emits a fixed list of tuples (for tests and VALUES
// clauses).
type ValuesScan struct {
	C    *Ctx
	Out  *catalog.Schema
	Rows []Tuple
	pos  int
}

// Open implements Node.
func (s *ValuesScan) Open() error { s.pos = 0; return nil }

// Next implements Node.
func (s *ValuesScan) Next() (Tuple, bool, error) {
	c := s.C
	c.Tr.Emit(probe.SeqScanEnter)
	c.Tr.Emit(probe.SeqScanCall)
	// The in-memory rows stand in for an exhausted/valued relation; the
	// access-method callee path keeps the trace protocol intact.
	c.Tr.Emit(probe.HeapGetNextEnter)
	c.Tr.Emit(probe.HeapGetNextEOF)
	c.Tr.Emit(probe.SeqScanCont)
	if s.pos >= len(s.Rows) {
		c.Tr.Emit(probe.SeqScanEOF)
		return nil, false, nil
	}
	row := s.Rows[s.pos]
	s.pos++
	c.Tr.Emit(probe.SeqScanEmitDirect)
	return row, true, nil
}

// Close implements Node.
func (s *ValuesScan) Close() error { return nil }

// Schema implements Node.
func (s *ValuesScan) Schema() *catalog.Schema { return s.Out }

// Filter applies qualifiers to a child's output (ExecResult with a
// qual in PostgreSQL terms).
type Filter struct {
	C     *Ctx
	Child Node
	Quals []Expr
}

// Open implements Node.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Node.
func (f *Filter) Next() (Tuple, bool, error) {
	c := f.C
	c.Tr.Emit(probe.SeqScanEnter) // filter shares the scan skeleton
	for {
		tup, ok, err := c.child(probe.SeqScanCall, probe.SeqScanCont, f.Child)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			c.Tr.Emit(probe.SeqScanEOF)
			return nil, false, nil
		}
		c.Tr.Emit(probe.SeqScanQualCall)
		pass := ExecQual(c, f.Quals, tup)
		c.Tr.Emit(probe.SeqScanQualCont)
		if pass {
			c.Tr.Emit(probe.SeqScanEmit)
			return tup, true, nil
		}
		c.Tr.Emit(probe.SeqScanNext)
		continue
	}
}

// Close implements Node.
func (f *Filter) Close() error { return f.Child.Close() }

// Schema implements Node.
func (f *Filter) Schema() *catalog.Schema { return f.Child.Schema() }

// ProjectNode computes a target list over a child's output.
type ProjectNode struct {
	C     *Ctx
	Child Node
	Exprs []Expr
	Names []string
	out   *catalog.Schema
}

// Open implements Node.
func (p *ProjectNode) Open() error { return p.Child.Open() }

// Next implements Node.
func (p *ProjectNode) Next() (Tuple, bool, error) {
	c := p.C
	tup, ok, err := c.child(probe.ResultCall, probe.ResultCont, p.Child)
	if err != nil || !ok {
		c.Tr.Emit(probe.ResultEOF)
		return nil, false, err
	}
	c.Tr.Emit(probe.ResultProject)
	out := Project(c, p.Exprs, tup)
	c.Tr.Emit(probe.ResultDone)
	return out, true, nil
}

// Close implements Node.
func (p *ProjectNode) Close() error { return p.Child.Close() }

// Schema implements Node.
func (p *ProjectNode) Schema() *catalog.Schema {
	if p.out == nil {
		cols := make([]catalog.Column, len(p.Exprs))
		for i, e := range p.Exprs {
			name := ""
			if i < len(p.Names) {
				name = p.Names[i]
			}
			if name == "" {
				name = e.String()
			}
			cols[i] = catalog.Column{Name: name, Type: e.Type()}
		}
		p.out = catalog.NewSchema(cols...)
	}
	return p.out
}
