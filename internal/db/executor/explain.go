package executor

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/db/value"
)

// ExplainLines renders a plan tree as a stable indented operator
// listing, one line per operator (plus detail lines for predicates).
// With analyze set, each operator line carries the runtime counters
// accumulated by its Instrumented wrapper — the tree must then be the
// one returned by Instrument, already executed.
//
// The non-analyze rendering is deterministic for a given plan shape,
// which is what the TPC-D plan goldens pin.
func ExplainLines(n Node, analyze bool) []string {
	var out []string
	renderPlan(&out, n, 0, false, analyze)
	return out
}

// TopOp returns the label of the operator with the largest self time
// in an executed Instrumented tree — the "dominant operator" surfaced
// in slow-query records. Returns "" for uninstrumented trees.
func TopOp(n Node) string {
	best := ""
	var bestSelf time.Duration = -1
	var walk func(Node)
	walk = func(n Node) {
		in, ok := n.(*Instrumented)
		if !ok {
			return
		}
		inner := in.n
		self := in.Stats.Wall - childWall(inner)
		if self > bestSelf {
			bestSelf = self
			best = nodeLabel(inner)
		}
		for _, ch := range nodeChildren(inner) {
			walk(ch)
		}
	}
	walk(n)
	return best
}

// renderPlan emits one operator (unwrapping its Instrumented shell if
// present) and recurses into its children.
func renderPlan(out *[]string, n Node, depth int, arrow, analyze bool) {
	var st *OpStats
	var childSum time.Duration
	if in, ok := n.(*Instrumented); ok {
		st = &in.Stats
		n = in.n
		childSum = childWall(n)
	}
	pad := strings.Repeat("  ", depth)
	line := pad + nodeLabel(n)
	if arrow {
		line = pad + "-> " + nodeLabel(n)
	}
	if analyze && st != nil {
		self := st.Wall - childSum
		if self < 0 {
			self = 0
		}
		line += fmt.Sprintf(" (actual rows=%d loops=%d time=%s self=%s buf_hits=%d buf_misses=%d)",
			st.Rows, st.Loops, fmtDur(st.Wall), fmtDur(self),
			st.BufHits(), st.BufMisses())
	}
	*out = append(*out, line)
	dpad := pad + "     "
	if !arrow {
		dpad = pad + "  "
	}
	for _, d := range nodeDetails(n) {
		*out = append(*out, dpad+d)
	}
	for _, ch := range nodeChildren(n) {
		renderPlan(out, ch, depth+1, true, analyze)
	}
}

// childWall sums the inclusive wall time of an operator's (wrapped)
// children, for deriving self time.
func childWall(n Node) time.Duration {
	var sum time.Duration
	for _, ch := range nodeChildren(n) {
		if in, ok := ch.(*Instrumented); ok {
			sum += in.Stats.Wall
		}
	}
	return sum
}

// fmtDur renders a duration with fixed millisecond units and
// microsecond resolution, keeping ANALYZE lines uniform.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}

// nodeLabel names one operator for EXPLAIN and top_op output.
func nodeLabel(n Node) string {
	switch t := n.(type) {
	case *SeqScan:
		return "Seq Scan on " + t.Table
	case *ParallelScan:
		return fmt.Sprintf("Parallel Seq Scan on %s (degree %d)", t.Table, t.Degree)
	case *IndexScan:
		if t.HashIdx != nil {
			return "Index Scan using hash on " + t.Table
		}
		return "Index Scan using btree on " + t.Table
	case *ValuesScan:
		return fmt.Sprintf("Values Scan (%d rows)", len(t.Rows))
	case *Filter:
		return "Filter"
	case *ProjectNode:
		parts := make([]string, len(t.Exprs))
		for i, e := range t.Exprs {
			parts[i] = e.String()
		}
		return "Project (" + strings.Join(parts, ", ") + ")"
	case *NestLoop:
		return "Nested Loop"
	case *IndexLoopJoin:
		kind := "btree"
		if t.HashIdx != nil {
			kind = "hash"
		}
		return fmt.Sprintf("Index Loop Join using %s on %s", kind, t.Table)
	case *HashJoin:
		return fmt.Sprintf("Hash Join (%s = %s)",
			colName(t.Outer, t.OuterKey), colName(t.Inner, t.InnerKey))
	case *MergeJoin:
		return fmt.Sprintf("Merge Join (%s = %s)",
			colName(t.Outer, t.OuterKey), colName(t.Inner, t.InnerKey))
	case *Agg:
		return "Aggregate (" + specList(t.Specs) + ")"
	case *GroupAgg:
		cols := make([]string, len(t.GroupBy))
		for i, c := range t.GroupBy {
			cols[i] = colName(t.Child, c)
		}
		return fmt.Sprintf("Group Aggregate (%s; %s)",
			strings.Join(cols, ", "), specList(t.Specs))
	case *Sort:
		return "Sort (" + keyList(t.Child, t.Keys) + ")"
	case *Material:
		return "Materialize"
	case *Limit:
		return fmt.Sprintf("Limit %d", t.N)
	case *Instrumented:
		return nodeLabel(t.n)
	default:
		return fmt.Sprintf("%T", n)
	}
}

// nodeDetails returns an operator's predicate/condition lines.
func nodeDetails(n Node) []string {
	switch t := n.(type) {
	case *SeqScan:
		return qualDetail("Filter", t.Quals)
	case *ParallelScan:
		return qualDetail("Filter", t.Quals)
	case *IndexScan:
		var cond string
		switch {
		case t.HashIdx != nil:
			cond = fmt.Sprintf("%s = %s", t.KeyCol, keyVal(t, t.EqKey))
		case t.HasLo && t.HasHi && t.Lo == t.Hi:
			cond = fmt.Sprintf("%s = %s", t.KeyCol, keyVal(t, t.Lo))
		case t.HasLo && t.HasHi:
			cond = fmt.Sprintf("%s >= %s and %s <= %s", t.KeyCol, keyVal(t, t.Lo), t.KeyCol, keyVal(t, t.Hi))
		case t.HasLo:
			cond = fmt.Sprintf("%s >= %s", t.KeyCol, keyVal(t, t.Lo))
		case t.HasHi:
			cond = fmt.Sprintf("%s <= %s", t.KeyCol, keyVal(t, t.Hi))
		default:
			cond = "full scan"
		}
		out := []string{"Index Cond: " + cond}
		return append(out, qualDetail("Filter", t.Quals)...)
	case *Filter:
		return qualDetail("Filter", t.Quals)
	case *NestLoop:
		return qualDetail("Join Filter", t.Quals)
	case *IndexLoopJoin:
		cond := fmt.Sprintf("Index Cond: %s = %s", t.KeyCol, colName(t.Outer, t.OuterKey))
		return append([]string{cond}, qualDetail("Join Filter", t.Quals)...)
	case *HashJoin:
		return qualDetail("Join Filter", t.Quals)
	case *MergeJoin:
		return qualDetail("Join Filter", t.Quals)
	case *Instrumented:
		return nodeDetails(t.n)
	}
	return nil
}

// nodeChildren returns an operator's plan inputs in display order.
// After Instrument, these are the Instrumented wrappers.
func nodeChildren(n Node) []Node {
	switch t := n.(type) {
	case *Filter:
		return []Node{t.Child}
	case *ProjectNode:
		return []Node{t.Child}
	case *NestLoop:
		return []Node{t.Outer, t.Inner}
	case *IndexLoopJoin:
		return []Node{t.Outer}
	case *HashJoin:
		return []Node{t.Outer, t.Inner}
	case *MergeJoin:
		return []Node{t.Outer, t.Inner}
	case *Agg:
		return []Node{t.Child}
	case *GroupAgg:
		return []Node{t.Child}
	case *Sort:
		return []Node{t.Child}
	case *Material:
		return []Node{t.Child}
	case *Limit:
		return []Node{t.Child}
	case *Instrumented:
		return nodeChildren(t.n)
	}
	return nil
}

func qualDetail(label string, quals []Expr) []string {
	if len(quals) == 0 {
		return nil
	}
	parts := make([]string, len(quals))
	for i, q := range quals {
		parts[i] = q.String()
	}
	return []string{label + ": " + strings.Join(parts, " AND ")}
}

// keyVal renders an index key bound with the key column's type: date
// columns store day numbers, which read far better as dates — and
// must match how the expression printer renders the same literal in
// Filter lines.
func keyVal(s *IndexScan, v int64) string {
	for _, c := range s.Out.Columns {
		if c.Name == s.KeyCol && c.Type == value.Date {
			return value.FormatDate(v)
		}
	}
	return strconv.FormatInt(v, 10)
}

// colName resolves a column index of a node's output schema.
func colName(n Node, idx int) string {
	sch := n.Schema()
	if idx >= 0 && idx < sch.Len() {
		return sch.Columns[idx].Name
	}
	return fmt.Sprintf("$%d", idx)
}

// specList renders an aggregate target list.
func specList(specs []AggSpec) string {
	parts := make([]string, len(specs))
	for i, sp := range specs {
		arg := "*"
		if sp.Arg != nil {
			arg = sp.Arg.String()
		}
		parts[i] = fmt.Sprintf("%s(%s)", sp.Func, arg)
	}
	return strings.Join(parts, ", ")
}

// keyList renders sort keys against the child's output schema.
func keyList(child Node, keys []SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = colName(child, k.Col)
		if k.Desc {
			parts[i] += " desc"
		}
	}
	return strings.Join(parts, ", ")
}
