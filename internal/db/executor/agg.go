package executor

import (
	"repro/internal/db/catalog"
	"repro/internal/db/probe"
	"repro/internal/db/value"
)

// AggFunc enumerates the aggregate functions.
type AggFunc uint8

// Aggregate functions supported by the executor.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{"count", "sum", "avg", "min", "max"}

// String returns the SQL name.
func (f AggFunc) String() string { return aggNames[f] }

// AggSpec is one aggregate in a target list. A nil Arg means COUNT(*).
type AggSpec struct {
	Func AggFunc
	Arg  Expr
	Name string
}

// aggState accumulates one aggregate.
type aggState struct {
	count  int64
	sum    float64
	isInt  bool
	intOK  bool
	intSum int64
	min    value.Value
	max    value.Value
	any    bool
}

func (st *aggState) advance(v value.Value) {
	if v.IsNull() {
		return
	}
	st.count++
	switch v.T {
	case value.Int, value.Date:
		st.sum += float64(v.I)
		st.intSum += v.I
	case value.Float:
		st.sum += v.F
		st.intOK = false
	}
	if !st.any {
		st.min, st.max = v, v
		st.any = true
	} else {
		if value.Compare(v, st.min) < 0 {
			st.min = v
		}
		if value.Compare(v, st.max) > 0 {
			st.max = v
		}
	}
}

func (st *aggState) result(f AggFunc, argType value.Type) value.Value {
	switch f {
	case AggCount:
		return value.NewInt(st.count)
	case AggSum:
		if st.count == 0 {
			return value.NewNull()
		}
		if (argType == value.Int || argType == value.Date) && st.intOK {
			return value.NewInt(st.intSum)
		}
		return value.NewFloat(st.sum)
	case AggAvg:
		if st.count == 0 {
			return value.NewNull()
		}
		return value.NewFloat(st.sum / float64(st.count))
	case AggMin:
		if !st.any {
			return value.NewNull()
		}
		return st.min
	default:
		if !st.any {
			return value.NewNull()
		}
		return st.max
	}
}

func newAggStates(n int) []aggState {
	sts := make([]aggState, n)
	for i := range sts {
		sts[i].intOK = true
	}
	return sts
}

// Agg computes plain (ungrouped) aggregates over its whole input,
// emitting exactly one row (ExecAgg).
type Agg struct {
	C     *Ctx
	Child Node
	Specs []AggSpec

	out  *catalog.Schema
	done bool
}

// Open implements Node.
func (a *Agg) Open() error {
	a.done = false
	return a.Child.Open()
}

// Next implements Node.
func (a *Agg) Next() (Tuple, bool, error) {
	c := a.C
	c.Tr.Emit(probe.AggEnter)
	if a.done {
		c.Tr.Emit(probe.AggEOF)
		return nil, false, nil
	}
	states := newAggStates(len(a.Specs))
	for {
		tup, ok, err := c.child(probe.AggChildCall, probe.AggChildCont, a.Child)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		for i, sp := range a.Specs {
			last := i == len(a.Specs)-1
			if sp.Arg == nil {
				// COUNT(*): no expression evaluation.
				if last {
					c.Tr.Emit(probe.AggCountStarLast)
				} else {
					c.Tr.Emit(probe.AggCountStar)
				}
				states[i].count++
				continue
			}
			c.Tr.Emit(probe.AggAdvance)
			v := sp.Arg.Eval(c, tup)
			if last {
				c.Tr.Emit(probe.AggAdvanceLast)
			} else {
				c.Tr.Emit(probe.AggAdvanceCont)
			}
			states[i].advance(v)
		}
	}
	out := make(Tuple, len(a.Specs))
	for i, sp := range a.Specs {
		t := value.Int
		if sp.Arg != nil {
			t = sp.Arg.Type()
		}
		out[i] = states[i].result(sp.Func, t)
	}
	a.done = true
	c.Tr.Emit(probe.AggEmit)
	return out, true, nil
}

// Close implements Node.
func (a *Agg) Close() error { return a.Child.Close() }

// Schema implements Node.
func (a *Agg) Schema() *catalog.Schema {
	if a.out == nil {
		cols := make([]catalog.Column, len(a.Specs))
		for i, sp := range a.Specs {
			t := value.Int
			if sp.Arg != nil {
				t = sp.Arg.Type()
				if sp.Func == AggAvg {
					t = value.Float
				}
				if sp.Func == AggCount {
					t = value.Int
				}
			}
			name := sp.Name
			if name == "" {
				name = sp.Func.String()
			}
			cols[i] = catalog.Column{Name: name, Type: t}
		}
		a.out = catalog.NewSchema(cols...)
	}
	return a.out
}

// GroupAgg computes grouped aggregates over an input sorted by the
// group columns, exploiting group boundaries (ExecGroup + ExecAgg, the
// sort-based grouping of PostgreSQL 6.3). The output is the group
// columns followed by the aggregates.
type GroupAgg struct {
	C       *Ctx
	Child   Node
	GroupBy []int // columns of the child output
	Specs   []AggSpec

	out         *catalog.Schema
	pending     Tuple
	havePending bool
	eof         bool
}

// Open implements Node.
func (g *GroupAgg) Open() error {
	g.pending = nil
	g.havePending = false
	g.eof = false
	return g.Child.Open()
}

// sameGroup compares group columns of two rows with comparator probes.
func (g *GroupAgg) sameGroup(a, b Tuple) bool {
	c := g.C
	c.Tr.Emit(probe.GrpCmpCall)
	keys := make([]SortKey, len(g.GroupBy))
	for i, col := range g.GroupBy {
		keys[i] = SortKey{Col: col}
	}
	r := tupleCompare(c, a, b, keys)
	c.Tr.Emit(probe.GrpCmpCont)
	return r == 0
}

// Next implements Node.
func (g *GroupAgg) Next() (Tuple, bool, error) {
	c := g.C
	c.Tr.Emit(probe.GrpEnter)
	if g.eof {
		c.Tr.Emit(probe.GrpEOF)
		return nil, false, nil
	}
	// Fetch the first row of the next group unless one is pending from
	// the previous boundary.
	if !g.havePending {
		tup, ok, err := c.child(probe.GrpFirstCall, probe.GrpFirstCont, g.Child)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.eof = true
			c.Tr.Emit(probe.GrpFirstEOF)
			return nil, false, nil
		}
		g.pending = tup
		g.havePending = true
		c.Tr.Emit(probe.GrpAccum)
	} else {
		c.Tr.Emit(probe.GrpAccumPend)
	}
	head := g.pending
	states := newAggStates(len(g.Specs))
	g.accumulate(states, head)
	drained := false
	for {
		tup, ok, err := c.child(probe.GrpChildCall, probe.GrpChildCont, g.Child)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.eof = true
			g.havePending = false
			drained = true
			break
		}
		if g.sameGroup(head, tup) {
			c.Tr.Emit(probe.GrpSame)
			g.accumulate(states, tup)
			continue
		}
		// Boundary: stash the first row of the next group.
		g.pending = tup
		g.havePending = true
		break
	}
	out := make(Tuple, 0, len(g.GroupBy)+len(g.Specs))
	for _, col := range g.GroupBy {
		out = append(out, head[col])
	}
	for i, sp := range g.Specs {
		t := value.Int
		if sp.Arg != nil {
			t = sp.Arg.Type()
		}
		out = append(out, states[i].result(sp.Func, t))
	}
	if drained {
		c.Tr.Emit(probe.GrpDrain)
	} else {
		c.Tr.Emit(probe.GrpEmit)
	}
	return out, true, nil
}

func (g *GroupAgg) accumulate(states []aggState, tup Tuple) {
	c := g.C
	for i, sp := range g.Specs {
		last := i == len(g.Specs)-1
		if sp.Arg == nil {
			if last {
				c.Tr.Emit(probe.GrpCountStarLast)
			} else {
				c.Tr.Emit(probe.GrpCountStar)
			}
			states[i].count++
			continue
		}
		c.Tr.Emit(probe.GrpAdvance)
		v := sp.Arg.Eval(c, tup)
		if last {
			c.Tr.Emit(probe.GrpAdvanceLast)
		} else {
			c.Tr.Emit(probe.GrpAdvanceCont)
		}
		states[i].advance(v)
	}
}

// Close implements Node.
func (g *GroupAgg) Close() error { return g.Child.Close() }

// Schema implements Node.
func (g *GroupAgg) Schema() *catalog.Schema {
	if g.out == nil {
		child := g.Child.Schema()
		cols := make([]catalog.Column, 0, len(g.GroupBy)+len(g.Specs))
		for _, col := range g.GroupBy {
			cols = append(cols, child.Columns[col])
		}
		for _, sp := range g.Specs {
			t := value.Int
			if sp.Arg != nil {
				t = sp.Arg.Type()
				if sp.Func == AggAvg {
					t = value.Float
				}
				if sp.Func == AggCount {
					t = value.Int
				}
			}
			name := sp.Name
			if name == "" {
				name = sp.Func.String()
			}
			cols = append(cols, catalog.Column{Name: name, Type: t})
		}
		g.out = catalog.NewSchema(cols...)
	}
	return g.out
}
