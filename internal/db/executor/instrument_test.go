package executor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/db/probe"
	"repro/internal/db/value"
)

// TestInstrumentCountsRows: every wrapper reports exactly the
// cardinality that flowed through its operator.
func TestInstrumentCountsRows(t *testing.T) {
	db := newTestDB(t, 100)
	c := NewCtx(nil)
	scan := &SeqScan{C: c, Heap: db.heap, Out: db.sch, Table: "t"}
	filt := &Filter{C: c, Child: scan,
		Quals: []Expr{&BinOp{Op: OpLT, L: intvar(0), R: intconst(30)}}}
	root := Instrument(c, filt)
	rows := drain(t, root)
	if len(rows) != 30 {
		t.Fatalf("got %d rows, want 30", len(rows))
	}
	if root.Stats.Rows != 30 {
		t.Fatalf("filter wrapper counted %d rows, want 30", root.Stats.Rows)
	}
	child, ok := filt.Child.(*Instrumented)
	if !ok {
		t.Fatal("Instrument did not rewire the filter's child")
	}
	if child.Stats.Rows != 100 {
		t.Fatalf("scan wrapper counted %d rows, want 100", child.Stats.Rows)
	}
	if root.Stats.Loops != 1 || child.Stats.Loops != 1 {
		t.Fatalf("loops = %d/%d, want 1/1", root.Stats.Loops, child.Stats.Loops)
	}
	if root.Stats.Wall < child.Stats.Wall {
		t.Fatalf("parent wall %v below child wall %v (wall must be inclusive)",
			root.Stats.Wall, child.Stats.Wall)
	}
}

// TestInstrumentNestLoopLoops: the inner side of a nested loop is
// re-opened once per outer tuple; Loops records every rescan.
func TestInstrumentNestLoopLoops(t *testing.T) {
	c := NewCtx(nil)
	db := newTestDB(t, 5)
	outer := &SeqScan{C: c, Heap: db.heap, Out: db.sch, Table: "t"}
	inner := &SeqScan{C: c, Heap: db.heap, Out: db.sch, Table: "t"}
	nl := &NestLoop{C: c, Outer: outer, Inner: inner,
		Quals: []Expr{&BinOp{Op: OpEQ, L: intvar(0), R: &Var{Idx: 3, T: value.Int}}}}
	root := Instrument(c, nl)
	rows := drain(t, root)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	in := nl.Inner.(*Instrumented)
	// One Open from the join's Open plus one rescan per exhausted pass.
	if in.Stats.Loops < 5 {
		t.Fatalf("inner loops = %d, want >= 5 (one per outer tuple)", in.Stats.Loops)
	}
	if in.Stats.Rows != 25 {
		t.Fatalf("inner rows = %d, want 25 (5 rescans x 5 tuples)", in.Stats.Rows)
	}
}

// funcTracer adapts a func to probe.Tracer for tests.
type funcTracer func(probe.ID)

func (f funcTracer) Emit(id probe.ID) { f(id) }

// TestAnalyzeTracerAttribution: with analyze mode on, buffer-pool
// probe events and IO waits land on the operator the session is
// currently inside, and the chain still forwards to the base tracer.
func TestAnalyzeTracerAttribution(t *testing.T) {
	var hits, misses int
	base := funcTracer(func(id probe.ID) {
		switch id {
		case probe.BufGetHit:
			hits++
		case probe.BufGetMiss:
			misses++
		}
	})
	c := NewCtx(base)
	c.SetAnalyze(true)
	var op OpStats
	c.curOp = &op
	c.Tr.Emit(probe.BufGetHit)
	c.Tr.Emit(probe.BufGetHit)
	c.Tr.Emit(probe.BufGetMiss)
	if op.BufHits() != 2 || op.BufMisses() != 1 {
		t.Fatalf("attributed %d/%d, want 2/1", op.BufHits(), op.BufMisses())
	}
	if hits != 2 || misses != 1 {
		t.Fatalf("base tracer saw %d/%d, want 2/1 (events must still forward)", hits, misses)
	}
	if w, ok := c.Tr.(interface{ AddIOWait(time.Duration) }); ok {
		w.AddIOWait(3 * time.Millisecond)
	} else {
		t.Fatal("analyze tracer must expose AddIOWait for the buffer pool")
	}
	if op.IOWait() != 3*time.Millisecond {
		t.Fatalf("io wait = %v, want 3ms", op.IOWait())
	}
	// curOp nil (between operators) must not panic or misattribute.
	c.curOp = nil
	c.Tr.Emit(probe.BufGetHit)
	if op.BufHits() != 2 {
		t.Fatal("event without a current operator was misattributed")
	}
	// Switching analyze off restores the plain chain.
	c.SetAnalyze(false)
	if _, ok := c.Tr.(analyzeTracer); ok {
		t.Fatal("SetAnalyze(false) left the analyze tracer installed")
	}
}

// TestOrdinaryExecutionHasNoAnalyzeState: a plain context never sets
// curOp or the analyzing flag — the invariant behind the "near-zero
// cost when not analyzing" claim.
func TestOrdinaryExecutionHasNoAnalyzeState(t *testing.T) {
	db := newTestDB(t, 50)
	c := NewCtx(nil)
	scan := &SeqScan{C: c, Heap: db.heap, Out: db.sch, Table: "t"}
	drain(t, scan)
	if c.analyzing || c.curOp != nil {
		t.Fatal("uninstrumented execution touched analyze state")
	}
	if _, ok := c.Tr.(analyzeTracer); ok {
		t.Fatal("uninstrumented execution got an analyze tracer")
	}
}

// TestExplainLinesRendering pins the plan text for a hand-built tree:
// root unindented, children arrowed two spaces deeper, predicates on
// indented detail lines.
func TestExplainLinesRendering(t *testing.T) {
	db := newTestDB(t, 10)
	c := NewCtx(nil)
	scan := &SeqScan{C: c, Heap: db.heap, Out: db.sch, Table: "t",
		Quals: []Expr{&BinOp{Op: OpLT, L: &Var{Idx: 0, Name: "a", T: value.Int}, R: intconst(5)}}}
	srt := &Sort{C: c, Child: scan, Keys: []SortKey{{Col: 1}, {Col: 0, Desc: true}}}
	lim := &Limit{C: c, Child: srt, N: 3}
	got := ExplainLines(lim, false)
	want := []string{
		"Limit 3",
		"  -> Sort (b, a desc)",
		"    -> Seq Scan on t",
		"         Filter: (a < 5)",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestExplainAnalyzeLineShape: executed wrappers render the counter
// suffix with every field present.
func TestExplainAnalyzeLineShape(t *testing.T) {
	db := newTestDB(t, 20)
	c := NewCtx(nil)
	scan := &SeqScan{C: c, Heap: db.heap, Out: db.sch, Table: "t"}
	root := Instrument(c, scan)
	drain(t, root)
	lines := ExplainLines(root, true)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	l := lines[0]
	for _, frag := range []string{"Seq Scan on t (actual rows=20 loops=1 time=",
		"self=", "buf_hits=", "buf_misses="} {
		if !strings.Contains(l, frag) {
			t.Fatalf("analyze line %q missing %q", l, frag)
		}
	}
}

// TestTopOp: the dominant operator of an executed tree is one of its
// labels, and uninstrumented trees report none.
func TestTopOp(t *testing.T) {
	db := newTestDB(t, 200)
	c := NewCtx(nil)
	scan := &SeqScan{C: c, Heap: db.heap, Out: db.sch, Table: "t"}
	srt := &Sort{C: c, Child: scan, Keys: []SortKey{{Col: 0, Desc: true}}}
	root := Instrument(c, srt)
	drain(t, root)
	top := TopOp(root)
	if top != "Sort (a desc)" && top != "Seq Scan on t" {
		t.Fatalf("TopOp = %q, want one of the plan's labels", top)
	}
	if got := TopOp(scan); got != "" {
		t.Fatalf("TopOp on an uninstrumented node = %q, want empty", got)
	}
}
