package executor

import (
	"fmt"
	"sync"

	"repro/internal/db/access"
	"repro/internal/db/catalog"
	"repro/internal/db/probe"
)

// batchTuples is how many qualifying tuples a worker accumulates per
// channel send: large enough to amortize the synchronization, small
// enough to keep the pipeline moving on selective predicates.
const batchTuples = 32

// defaultPartCap bounds each worker's output channel, in batches:
// enough slack to keep workers busy ahead of the consumer without
// materializing large result prefixes.
const defaultPartCap = 8

// ParallelScan is a partition-parallel sequential scan (a Gather over
// partial SeqScans, in PostgreSQL terms). The heap's pages are split
// into Degree contiguous ranges; one worker goroutine scans each
// range and applies the qualifiers, feeding qualifying tuples in
// batches through a bounded channel. The consumer merges the
// partitions in page order, so the emitted tuple sequence is
// identical to a serial sequential scan — parallelism changes timing,
// never results.
//
// Workers run outside the session trace: the instrumentation session
// tracer is single-threaded by design (the paper traces one
// instruction stream), so a traced query observes the scan from the
// coordinator side only, with the per-tuple consumer skeleton kept
// CFG-valid. Worker-side kernel work is still accounted for through
// the context's concurrency-safe WorkerTracer (event counts, not a
// trace). Each worker gets its own Ctx; the parent Ctx's Interrupt is
// shared and must be goroutine-safe (context.Context.Err is).
type ParallelScan struct {
	C    *Ctx
	Heap *access.Heap
	Out  *catalog.Schema
	// Table names the scanned relation for EXPLAIN output.
	Table  string
	Quals  []Expr
	Degree int
	// PartCap overrides the per-worker channel capacity in batches
	// (tests); 0 selects the default.
	PartCap int

	parts  []chan []Tuple
	errs   []error
	stop   chan struct{}
	wg     sync.WaitGroup
	cur    int
	batch  []Tuple // front of parts[cur], partially consumed
	pos    int
	opened bool
}

// Open implements Node: it partitions the heap and starts the
// workers. Re-opening an open node tears the previous execution down
// first (Node contract: Open resets).
func (s *ParallelScan) Open() error {
	if s.opened {
		if err := s.Close(); err != nil {
			return err
		}
	}
	n := s.Degree
	if n < 1 {
		n = 1
	}
	pages := s.Heap.NumPages()
	if n > pages {
		n = pages
	}
	if n < 1 {
		n = 1 // empty heap: one worker over an empty range
	}
	chanCap := s.PartCap
	if chanCap <= 0 {
		chanCap = defaultPartCap
	}
	s.parts = make([]chan []Tuple, n)
	s.errs = make([]error, n)
	s.stop = make(chan struct{})
	s.cur = 0
	s.batch, s.pos = nil, 0
	s.opened = true
	// The worker tracer chain is built here, on the session goroutine:
	// workerTracer reads session-owned state (span, analyze operator)
	// that must not be touched from inside a worker.
	wtr := workerTracer(s.C)
	// Balanced contiguous ranges: the first pages%n workers take one
	// extra page.
	base, rem := pages/n, pages%n
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		part := make(chan []Tuple, chanCap)
		s.parts[i] = part
		s.wg.Add(1)
		go s.worker(i, lo, hi, part, wtr)
		lo = hi
	}
	return nil
}

// worker scans pages [lo, hi), applying the qualifiers with its own
// untraced context, and streams qualifying tuples into part in
// batches. The error slot is written before the channel close, so
// the consumer's receive of the close is its happens-before edge.
func (s *ParallelScan) worker(i, lo, hi int, part chan<- []Tuple, wtr probe.Tracer) {
	defer s.wg.Done()
	defer close(part)
	// Workers emit into the context's concurrency-safe worker tracer
	// (usually a counting tracer), never into the session tracer. The
	// session's span rides along so worker IO waits are attributed,
	// and under EXPLAIN ANALYZE so is buffer-pool traffic (atomics).
	wc := &Ctx{Tr: wtr, Interrupt: s.C.Interrupt}
	scan := s.Heap.BeginRangeScan(lo, hi)
	defer scan.Close()
	batch := make([]Tuple, 0, batchTuples)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case part <- batch:
			batch = make([]Tuple, 0, batchTuples)
			return true
		case <-s.stop:
			return false
		}
	}
	for {
		if wc.Interrupt != nil {
			if err := wc.Interrupt(); err != nil {
				s.errs[i] = err
				return
			}
		}
		vals, _, ok, err := scan.Next(wc.Tr, nil)
		if err != nil {
			s.errs[i] = err
			return
		}
		if !ok {
			flush()
			return
		}
		if len(s.Quals) > 0 && !ExecQual(wc, s.Quals, Tuple(vals)) {
			continue
		}
		batch = append(batch, Tuple(vals))
		if len(batch) == batchTuples && !flush() {
			return
		}
	}
}

// Next implements Node: it drains the partitions in page order. The
// consumer-side instrumentation follows the in-memory scan skeleton
// (as ValuesScan does), keeping traced plans CFG-valid while the
// per-page heap work happens untraced in the workers.
func (s *ParallelScan) Next() (Tuple, bool, error) {
	if !s.opened {
		return nil, false, fmt.Errorf("executor: ParallelScan not opened")
	}
	c := s.C
	c.Tr.Emit(probe.SeqScanEnter)
	c.Tr.Emit(probe.SeqScanCall)
	c.Tr.Emit(probe.HeapGetNextEnter)
	c.Tr.Emit(probe.HeapGetNextEOF)
	c.Tr.Emit(probe.SeqScanCont)
	for {
		if s.pos < len(s.batch) {
			tup := s.batch[s.pos]
			s.pos++
			c.Tr.Emit(probe.SeqScanEmitDirect)
			return tup, true, nil
		}
		if s.cur >= len(s.parts) {
			c.Tr.Emit(probe.SeqScanEOF)
			return nil, false, nil
		}
		batch, ok := <-s.parts[s.cur]
		if ok {
			s.batch, s.pos = batch, 0
			continue
		}
		if err := s.errs[s.cur]; err != nil {
			return nil, false, err
		}
		s.cur++
	}
}

// Close implements Node: it stops the workers and waits for them. A
// worker blocked on a full partition channel unblocks via the stop
// channel. Close is idempotent.
func (s *ParallelScan) Close() error {
	if !s.opened {
		return nil
	}
	close(s.stop)
	s.wg.Wait()
	s.parts, s.errs, s.stop = nil, nil, nil
	s.batch, s.pos = nil, 0
	s.opened = false
	return nil
}

// Schema implements Node.
func (s *ParallelScan) Schema() *catalog.Schema { return s.Out }
