// Package executor implements the query-execution kernel of the
// database (the paper's Executor module): a Volcano-style pipelined
// operator tree — Sequential Scan, Index Scan, Nested-Loop Join, Hash
// Join, Merge Join, Sort, Aggregate, Group, Material and Limit — plus
// the expression evaluator. Execution is pipelined: each operation
// passes result tuples to its parent as they are produced, which, as
// the paper observes, is why DBMS kernels execute few loops and long
// call chains.
package executor

import (
	"fmt"
	"strings"

	"repro/dsdb/obs"
	"repro/internal/db/probe"
	"repro/internal/db/value"
)

// Tuple is one row flowing through the executor.
type Tuple []value.Value

// Ctx carries per-query execution state: the instrumentation tracer
// and scratch space. A nil-tracer context is valid and untraced.
// Each query gets its own Ctx, so concurrent sessions never share
// tracer or interrupt state.
type Ctx struct {
	Tr probe.Tracer
	// Interrupt, when non-nil, is polled on every inter-node call of
	// the Volcano dispatcher; a non-nil return aborts execution with
	// that error. It is how context cancellation reaches the executor
	// even inside pipeline-breaking operators (Sort, HashJoin build).
	// It must be safe to call from multiple goroutines: parallel scan
	// workers poll it too.
	Interrupt func() error
	// Parallelism is the degree the planner may use for
	// partition-parallel scans; 0 or 1 plans serial scans only.
	Parallelism int
	// WorkerTracer, when non-nil, receives the probe events of
	// parallel-scan workers, which run outside the (single-threaded)
	// session tracer Tr. It is shared by all workers of all scans on
	// this context and must be safe for concurrent use — a
	// probe.CountingTracer is; a trace-recording session is not.
	WorkerTracer probe.Tracer
	// Span is the current execution's observability span (nil when
	// unobserved). Set per-execution via SetSpan, which also wraps Tr
	// so the buffer pool can attribute IO waits to it (span.go).
	Span *obs.Span
	// base is the unwrapped session tracer the tracer chain is rebuilt
	// from whenever the span or analyze mode changes (see retrace).
	base probe.Tracer

	// curOp points at the stats block of the operator currently
	// executing under EXPLAIN ANALYZE instrumentation (instrument.go);
	// nil on every uninstrumented execution. Only the session
	// goroutine reads or writes it — parallel-scan workers capture the
	// then-current pointer at Open time instead.
	curOp *OpStats
	// analyzing is set by SetAnalyze for EXPLAIN ANALYZE executions:
	// the tracer chain then carries an analyzeTracer that attributes
	// buffer-pool traffic to curOp. Off on every ordinary query, so
	// the non-analyzing hot path pays nothing.
	analyzing bool
}

// NewCtx returns an execution context with the given tracer (nil means
// untraced).
func NewCtx(tr probe.Tracer) *Ctx {
	if tr == nil {
		tr = probe.NopTracer{}
	}
	return &Ctx{Tr: tr}
}

// Expr is a typed expression evaluated against a tuple.
type Expr interface {
	// Eval computes the expression over row. The context's tracer
	// receives the ExecEvalExpr instrumentation events.
	Eval(c *Ctx, row Tuple) value.Value
	// Type returns the result type.
	Type() value.Type
	// String renders the expression for EXPLAIN output.
	String() string
}

// Var references a column of the input tuple.
type Var struct {
	Idx  int
	Name string
	T    value.Type
}

// Eval implements Expr.
func (v *Var) Eval(c *Ctx, row Tuple) value.Value {
	c.Tr.Emit(probe.EvalExprVar)
	return row[v.Idx]
}

// Type implements Expr.
func (v *Var) Type() value.Type { return v.T }

// String implements Expr.
func (v *Var) String() string { return v.Name }

// Const is a literal.
type Const struct {
	V value.Value
}

// Eval implements Expr.
func (k *Const) Eval(c *Ctx, row Tuple) value.Value {
	c.Tr.Emit(probe.EvalExprConst)
	return k.V
}

// Type implements Expr.
func (k *Const) Type() value.Type { return k.V.T }

// String implements Expr.
func (k *Const) String() string {
	if k.V.T == value.Str {
		return "'" + k.V.S + "'"
	}
	return k.V.String()
}

// Op enumerates binary operators.
type Op uint8

// Binary operators: comparisons and arithmetic.
const (
	OpEQ Op = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var opNames = [...]string{"=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/"}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator yields a boolean.
func (o Op) IsComparison() bool { return o <= OpGE }

// BinOp applies a binary operator to two subexpressions.
type BinOp struct {
	Op   Op
	L, R Expr
}

// opFuncProbe returns the probe for the applied operator function,
// chosen by operand type as PostgreSQL's fmgr dispatch would (int4eq,
// float8lt, ...).
func opFuncProbe(o Op, t value.Type) probe.ID {
	if !o.IsComparison() {
		return probe.ArithOp
	}
	switch t {
	case value.Float:
		return probe.CmpFlt
	case value.Str:
		return probe.CmpStr
	case value.Date:
		return probe.CmpDate
	default:
		return probe.CmpInt
	}
}

// Eval implements Expr.
func (b *BinOp) Eval(c *Ctx, row Tuple) value.Value {
	c.Tr.Emit(probe.EvalExprOpCall)
	l := b.L.Eval(c, row)
	c.Tr.Emit(probe.EvalExprOp2)
	r := b.R.Eval(c, row)
	c.Tr.Emit(probe.EvalExprOpCont)
	c.Tr.Emit(opFuncProbe(b.Op, b.L.Type()))
	v := applyBinOp(b.Op, l, r)
	c.Tr.Emit(probe.EvalExprRet)
	return v
}

func applyBinOp(op Op, l, r value.Value) value.Value {
	if l.IsNull() || r.IsNull() {
		if op.IsComparison() {
			return value.NewBool(false)
		}
		return value.NewNull()
	}
	if op.IsComparison() {
		cmp := value.Compare(l, r)
		switch op {
		case OpEQ:
			return value.NewBool(cmp == 0)
		case OpNE:
			return value.NewBool(cmp != 0)
		case OpLT:
			return value.NewBool(cmp < 0)
		case OpLE:
			return value.NewBool(cmp <= 0)
		case OpGT:
			return value.NewBool(cmp > 0)
		default:
			return value.NewBool(cmp >= 0)
		}
	}
	// Arithmetic: floats dominate; Int/Date stay integral except Div.
	if l.T == value.Float || r.T == value.Float || op == OpDiv {
		lf, rf := toFloat(l), toFloat(r)
		switch op {
		case OpAdd:
			return value.NewFloat(lf + rf)
		case OpSub:
			return value.NewFloat(lf - rf)
		case OpMul:
			return value.NewFloat(lf * rf)
		default:
			if rf == 0 {
				return value.NewNull()
			}
			return value.NewFloat(lf / rf)
		}
	}
	switch op {
	case OpAdd:
		return value.NewInt(l.I + r.I)
	case OpSub:
		return value.NewInt(l.I - r.I)
	default: // OpMul
		return value.NewInt(l.I * r.I)
	}
}

func toFloat(v value.Value) float64 {
	if v.T == value.Float {
		return v.F
	}
	return float64(v.I)
}

// Type implements Expr.
func (b *BinOp) Type() value.Type {
	if b.Op.IsComparison() {
		return value.Bool
	}
	if b.L.Type() == value.Float || b.R.Type() == value.Float || b.Op == OpDiv {
		return value.Float
	}
	return b.L.Type()
}

// String implements Expr.
func (b *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// AndExpr is an n-ary conjunction.
type AndExpr struct {
	Args []Expr
}

// Eval implements Expr with short-circuiting. Instrumentation models
// the n-ary conjunction as a left-deep chain of binary boolean
// operator applications, closing short-circuited levels as unary
// applications so the emitted path stays CFG-valid.
func (a *AndExpr) Eval(c *Ctx, row Tuple) value.Value {
	return evalBoolChain(c, row, a.Args, true)
}

// Type implements Expr.
func (a *AndExpr) Type() value.Type { return value.Bool }

// String implements Expr.
func (a *AndExpr) String() string {
	parts := make([]string, len(a.Args))
	for i, e := range a.Args {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// OrExpr is an n-ary disjunction.
type OrExpr struct {
	Args []Expr
}

// Eval implements Expr with short-circuiting (see AndExpr.Eval for the
// instrumentation model).
func (o *OrExpr) Eval(c *Ctx, row Tuple) value.Value {
	return evalBoolChain(c, row, o.Args, false)
}

// evalBoolChain evaluates an n-ary AND (stopOn=true short-circuits on
// false) or OR (stopOn=false short-circuits on true) as a left-deep
// chain of binary evaluator invocations.
func evalBoolChain(c *Ctx, row Tuple, args []Expr, isAnd bool) value.Value {
	n := len(args)
	levels := n - 1
	if levels < 1 {
		levels = 1
	}
	// Descend into the nested operator invocations.
	for i := 0; i < levels; i++ {
		c.Tr.Emit(probe.EvalExprOpCall)
	}
	v := args[0].Eval(c, row)
	res := v.Bool()
	closed := 0
	for i := 1; i < n; i++ {
		if res != isAnd {
			break // short-circuit: AND saw false / OR saw true
		}
		c.Tr.Emit(probe.EvalExprOp2)
		v = args[i].Eval(c, row)
		if isAnd {
			res = res && v.Bool()
		} else {
			res = res || v.Bool()
		}
		c.Tr.Emit(probe.EvalExprOpCont)
		c.Tr.Emit(probe.BoolOp)
		c.Tr.Emit(probe.EvalExprRet)
		closed++
	}
	// Close any remaining (short-circuited or unary) levels.
	for ; closed < levels; closed++ {
		c.Tr.Emit(probe.EvalExprOp1Only)
		c.Tr.Emit(probe.BoolOp)
		c.Tr.Emit(probe.EvalExprRet)
	}
	return value.NewBool(res)
}

// Type implements Expr.
func (o *OrExpr) Type() value.Type { return value.Bool }

// String implements Expr.
func (o *OrExpr) String() string {
	parts := make([]string, len(o.Args))
	for i, e := range o.Args {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	Arg Expr
}

// Eval implements Expr.
func (n *NotExpr) Eval(c *Ctx, row Tuple) value.Value {
	c.Tr.Emit(probe.EvalExprOpCall)
	v := n.Arg.Eval(c, row)
	c.Tr.Emit(probe.EvalExprOp1Only)
	c.Tr.Emit(probe.BoolOp)
	c.Tr.Emit(probe.EvalExprRet)
	return value.NewBool(!v.Bool())
}

// Type implements Expr.
func (n *NotExpr) Type() value.Type { return value.Bool }

// String implements Expr.
func (n *NotExpr) String() string { return "NOT " + n.Arg.String() }

// LikeExpr matches a string against a SQL LIKE pattern with %
// wildcards (the forms TPC-D uses: 'prefix%', '%sub%', '%suffix',
// and multi-% patterns).
type LikeExpr struct {
	Arg     Expr
	Pattern string
	Negate  bool
}

// Eval implements Expr.
func (l *LikeExpr) Eval(c *Ctx, row Tuple) value.Value {
	c.Tr.Emit(probe.EvalExprOpCall)
	v := l.Arg.Eval(c, row)
	c.Tr.Emit(probe.EvalExprOp1Only)
	c.Tr.Emit(probe.LikeOp)
	m := MatchLike(v.S, l.Pattern)
	if l.Negate {
		m = !m
	}
	c.Tr.Emit(probe.EvalExprRet)
	return value.NewBool(m)
}

// Type implements Expr.
func (l *LikeExpr) Type() value.Type { return value.Bool }

// String implements Expr.
func (l *LikeExpr) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s '%s')", l.Arg, op, l.Pattern)
}

// MatchLike implements SQL LIKE with % wildcards (no _ support, which
// TPC-D does not use).
func MatchLike(s, pattern string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return s == pattern
	}
	// Anchored prefix.
	if parts[0] != "" {
		if !strings.HasPrefix(s, parts[0]) {
			return false
		}
		s = s[len(parts[0]):]
	}
	// Anchored suffix.
	last := parts[len(parts)-1]
	if last != "" {
		if !strings.HasSuffix(s, last) {
			return false
		}
		s = s[:len(s)-len(last)]
	}
	// Middle fragments in order.
	for _, frag := range parts[1 : len(parts)-1] {
		if frag == "" {
			continue
		}
		i := strings.Index(s, frag)
		if i < 0 {
			return false
		}
		s = s[i+len(frag):]
	}
	return true
}

// InExpr tests membership in a literal list.
type InExpr struct {
	Arg  Expr
	List []value.Value
}

// Eval implements Expr.
func (e *InExpr) Eval(c *Ctx, row Tuple) value.Value {
	c.Tr.Emit(probe.EvalExprOpCall)
	v := e.Arg.Eval(c, row)
	c.Tr.Emit(probe.EvalExprOp1Only)
	c.Tr.Emit(probe.BoolOp) // the list-membership function
	res := false
	for _, x := range e.List {
		if value.Equal(v, x) {
			res = true
			break
		}
	}
	c.Tr.Emit(probe.EvalExprRet)
	return value.NewBool(res)
}

// Type implements Expr.
func (e *InExpr) Type() value.Type { return value.Bool }

// String implements Expr.
func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, v := range e.List {
		if v.T == value.Str {
			parts[i] = "'" + v.S + "'"
		} else {
			parts[i] = v.String()
		}
	}
	return fmt.Sprintf("(%s IN (%s))", e.Arg, strings.Join(parts, ", "))
}

// ExecQual evaluates a conjunctive qualifier list, short-circuiting on
// the first false clause — PostgreSQL's ExecQual.
func ExecQual(c *Ctx, quals []Expr, row Tuple) bool {
	c.Tr.Emit(probe.ExecQualEnter)
	for _, q := range quals {
		c.Tr.Emit(probe.ExecQualExpr)
		v := q.Eval(c, row)
		if !v.Bool() {
			c.Tr.Emit(probe.ExecQualFail)
			return false
		}
		c.Tr.Emit(probe.ExecQualCont)
	}
	c.Tr.Emit(probe.ExecQualPass)
	return true
}

// Project evaluates a target list into a fresh tuple — PostgreSQL's
// ExecProject.
func Project(c *Ctx, exprs []Expr, row Tuple) Tuple {
	c.Tr.Emit(probe.ProjectEnter)
	out := make(Tuple, len(exprs))
	for i, e := range exprs {
		c.Tr.Emit(probe.ProjectCol)
		out[i] = e.Eval(c, row)
		c.Tr.Emit(probe.ProjectColCont)
	}
	c.Tr.Emit(probe.ProjectDone)
	return out
}
