package executor

import (
	"sync/atomic"
	"time"

	"repro/internal/db/catalog"
)

// OpStats accumulates one operator's runtime counters under EXPLAIN
// ANALYZE. Rows/Loops/Wall are touched only by the session goroutine
// (the Volcano tree is single-threaded); the buffer-pool counters are
// atomic because parallel-scan workers feed them too (see opTracer).
type OpStats struct {
	// Rows is the number of tuples the operator returned.
	Rows int64
	// Loops counts Open calls: 1 for most nodes, 1+rescans for a
	// nested-loop inner.
	Loops int64
	// Wall is cumulative wall time inside the operator including its
	// children (self time is derived at render: Wall − Σ child Wall).
	Wall time.Duration

	bufHits   atomic.Int64
	bufMisses atomic.Int64
	ioWait    atomic.Int64
}

// BufHits returns buffer-pool page hits attributed to the operator.
func (s *OpStats) BufHits() int64 { return s.bufHits.Load() }

// BufMisses returns buffer-pool page misses (disk reads) attributed
// to the operator.
func (s *OpStats) BufMisses() int64 { return s.bufMisses.Load() }

// IOWait returns cumulative buffer-pool IO wait attributed to the
// operator.
func (s *OpStats) IOWait() time.Duration { return time.Duration(s.ioWait.Load()) }

// Instrumented wraps one plan operator with ANALYZE counters. It is
// itself a Node, interposed between the operator and its parent by
// Instrument, so every Open/Next/Close crossing is timed and counted.
// While a call is in flight the context's curOp points at this
// operator's stats, which is how the tracer chain (analyzeTracer)
// attributes buffer-pool traffic per operator; the pointer is saved
// and restored around child calls, so attribution follows the
// innermost active operator exactly.
type Instrumented struct {
	c *Ctx
	n Node
	// Stats is the operator's accumulated counters.
	Stats OpStats
}

// Instrument rewires the plan tree so every operator is wrapped in an
// Instrumented node, returning the wrapped root. The tree is mutated
// in place (child fields now point at wrappers), so instrument only
// freshly compiled plans — never a cached prepared statement shared
// with uninstrumented executions.
func Instrument(c *Ctx, n Node) *Instrumented {
	switch t := n.(type) {
	case *Filter:
		t.Child = Instrument(c, t.Child)
	case *ProjectNode:
		t.Child = Instrument(c, t.Child)
	case *NestLoop:
		t.Outer = Instrument(c, t.Outer)
		t.Inner = Instrument(c, t.Inner)
	case *IndexLoopJoin:
		t.Outer = Instrument(c, t.Outer)
	case *HashJoin:
		t.Outer = Instrument(c, t.Outer)
		t.Inner = Instrument(c, t.Inner)
	case *MergeJoin:
		t.Outer = Instrument(c, t.Outer)
		t.Inner = Instrument(c, t.Inner)
	case *Agg:
		t.Child = Instrument(c, t.Child)
	case *GroupAgg:
		t.Child = Instrument(c, t.Child)
	case *Sort:
		t.Child = Instrument(c, t.Child)
	case *Material:
		t.Child = Instrument(c, t.Child)
	case *Limit:
		t.Child = Instrument(c, t.Child)
	}
	return &Instrumented{c: c, n: n}
}

// enter makes this operator current and returns the restore state.
func (i *Instrumented) enter() (*OpStats, time.Time) {
	prev := i.c.curOp
	i.c.curOp = &i.Stats
	return prev, time.Now()
}

// exit restores the previous operator and accumulates wall time.
func (i *Instrumented) exit(prev *OpStats, start time.Time) {
	i.Stats.Wall += time.Since(start)
	i.c.curOp = prev
}

// Open implements Node.
func (i *Instrumented) Open() error {
	prev, start := i.enter()
	err := i.n.Open()
	i.exit(prev, start)
	i.Stats.Loops++
	return err
}

// Next implements Node.
func (i *Instrumented) Next() (Tuple, bool, error) {
	prev, start := i.enter()
	tup, ok, err := i.n.Next()
	i.exit(prev, start)
	if ok {
		i.Stats.Rows++
	}
	return tup, ok, err
}

// Close implements Node.
func (i *Instrumented) Close() error {
	prev, start := i.enter()
	err := i.n.Close()
	i.exit(prev, start)
	return err
}

// Schema implements Node.
func (i *Instrumented) Schema() *catalog.Schema { return i.n.Schema() }

// Unwrap returns the wrapped operator.
func (i *Instrumented) Unwrap() Node { return i.n }
