package executor

import (
	"repro/internal/db/catalog"
	"repro/internal/db/probe"
)

// Node is one operator of the execution plan tree (Volcano iterator
// model). Open prepares the node (and must reset it if called again),
// Next produces the next tuple, Close releases resources.
type Node interface {
	Open() error
	Next() (Tuple, bool, error)
	Close() error
	// Schema describes the output columns (used by the planner to
	// resolve variable references).
	Schema() *catalog.Schema
}

// child invokes a child node through the ExecProcNode dispatcher,
// bracketing the call with the caller's call-site and continuation
// probes — the per-tuple call chain that gives DBMS code its long,
// loop-free instruction sequences.
func (c *Ctx) child(call, cont probe.ID, n Node) (Tuple, bool, error) {
	if c.Interrupt != nil {
		if err := c.Interrupt(); err != nil {
			return nil, false, err
		}
	}
	c.Tr.Emit(call)
	c.Tr.Emit(probe.ExecProcEnter)
	t, ok, err := n.Next()
	c.Tr.Emit(probe.ExecProcExit)
	c.Tr.Emit(cont)
	return t, ok, err
}

// tupleCompare compares two tuples on the given columns and
// directions, emitting the per-column comparator probes (PostgreSQL's
// per-type btXXXcmp functions called from tuplesort/group/mergejoin).
func tupleCompare(c *Ctx, a, b Tuple, cols []SortKey) int {
	c.Tr.Emit(probe.TupCmpEnter)
	res := 0
	for _, k := range cols {
		c.Tr.Emit(probe.TupCmpCol)
		c.Tr.Emit(cmpProbeFor(a[k.Col]))
		r := compareVals(a[k.Col], b[k.Col])
		c.Tr.Emit(probe.TupCmpColCont)
		if r != 0 {
			if k.Desc {
				r = -r
			}
			res = r
			break
		}
	}
	c.Tr.Emit(probe.TupCmpDone)
	return res
}
