package executor

import (
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/db/access"
	"repro/internal/db/buffer"
	"repro/internal/db/catalog"
	"repro/internal/db/storage"
	"repro/internal/db/value"
)

// testDB: table t(a int, b int, s varchar) with n rows
// (i, i%7, name), plus a btree on a and a hash index on b.
type testDB struct {
	heap  *access.Heap
	btree *access.BTree
	hash  *access.HashIndex
	sch   *catalog.Schema
	n     int
}

func newTestDB(t *testing.T, n int) *testDB {
	t.Helper()
	st := storage.NewStore(3)
	m := buffer.New(st, 256)
	h := access.NewHeap(m, 0)
	bt, err := access.CreateBTree(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	hx, err := access.CreateHashIndex(m, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		row := Tuple{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 7)),
			value.NewStr(names[i%len(names)]),
		}
		tid, err := h.Insert(row, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := bt.Insert(int64(i), tid); err != nil {
			t.Fatal(err)
		}
		if err := hx.Insert(int64(i%7), tid); err != nil {
			t.Fatal(err)
		}
	}
	sch := catalog.NewSchema(
		catalog.Column{Name: "a", Type: value.Int},
		catalog.Column{Name: "b", Type: value.Int},
		catalog.Column{Name: "s", Type: value.Str},
	)
	return &testDB{heap: h, btree: bt, hash: hx, sch: sch, n: n}
}

// drain runs a plan to completion.
func drain(t *testing.T, n Node) []Tuple {
	t.Helper()
	if err := n.Open(); err != nil {
		t.Fatal(err)
	}
	var out []Tuple
	for {
		tup, ok, err := n.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, tup)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func intvar(i int) *Var { return &Var{Idx: i, T: value.Int} }
func intconst(v int64) *Const {
	return &Const{V: value.NewInt(v)}
}

func TestSeqScanAll(t *testing.T) {
	db := newTestDB(t, 100)
	scan := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch}
	rows := drain(t, scan)
	if len(rows) != 100 {
		t.Fatalf("got %d rows, want 100", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d out of order: %v", i, r)
		}
	}
}

func TestSeqScanWithQual(t *testing.T) {
	db := newTestDB(t, 100)
	qual := &BinOp{Op: OpLT, L: intvar(0), R: intconst(10)}
	scan := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch, Quals: []Expr{qual}}
	rows := drain(t, scan)
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
}

func TestIndexScanBTreeRange(t *testing.T) {
	db := newTestDB(t, 200)
	scan := &IndexScan{
		C: NewCtx(nil), Heap: db.heap, Out: db.sch,
		BTree: db.btree, Lo: 50, Hi: 59, HasLo: true, HasHi: true,
	}
	rows := drain(t, scan)
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(50+i) {
			t.Fatalf("row %d = %v, want a=%d", i, r, 50+i)
		}
	}
}

func TestIndexScanHashEquality(t *testing.T) {
	db := newTestDB(t, 140) // 140/7 = 20 rows per b value
	scan := &IndexScan{
		C: NewCtx(nil), Heap: db.heap, Out: db.sch,
		HashIdx: db.hash, EqKey: 3,
	}
	rows := drain(t, scan)
	if len(rows) != 20 {
		t.Fatalf("got %d rows, want 20", len(rows))
	}
	for _, r := range rows {
		if r[1].I != 3 {
			t.Fatalf("hash scan returned b=%d", r[1].I)
		}
	}
}

func TestFilterAndProject(t *testing.T) {
	db := newTestDB(t, 50)
	scan := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch}
	filt := &Filter{C: NewCtx(nil), Child: scan,
		Quals: []Expr{&BinOp{Op: OpGE, L: intvar(0), R: intconst(45)}}}
	proj := &ProjectNode{C: NewCtx(nil), Child: filt,
		Exprs: []Expr{
			&BinOp{Op: OpMul, L: intvar(0), R: intconst(2)},
			&Var{Idx: 2, T: value.Str},
		},
		Names: []string{"a2", "s"}}
	rows := drain(t, proj)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	if rows[0][0].I != 90 {
		t.Fatalf("projection wrong: %v", rows[0])
	}
	if proj.Schema().Columns[0].Name != "a2" {
		t.Fatal("projection schema name wrong")
	}
}

func TestHashJoin(t *testing.T) {
	db := newTestDB(t, 70)
	// Join t with itself on a=b: for each outer row with b=k, matches
	// inner rows with a=k -> exactly one inner (a is unique).
	outer := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch}
	inner := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch}
	join := &HashJoin{C: NewCtx(nil), Outer: outer, Inner: inner,
		OuterKey: 1, InnerKey: 0}
	rows := drain(t, join)
	if len(rows) != 70 {
		t.Fatalf("got %d join rows, want 70", len(rows))
	}
	for _, r := range rows {
		if r[1].I != r[3].I {
			t.Fatalf("join key mismatch: %v", r)
		}
	}
	if join.Schema().Len() != 6 {
		t.Fatalf("join schema has %d cols, want 6", join.Schema().Len())
	}
}

func TestNestLoopMatchesHashJoin(t *testing.T) {
	db := newTestDB(t, 30)
	mk := func() (Node, Node) {
		return &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch},
			&SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch}
	}
	o1, i1 := mk()
	nl := &NestLoop{C: NewCtx(nil), Outer: o1, Inner: i1,
		Quals: []Expr{&BinOp{Op: OpEQ, L: intvar(1), R: &Var{Idx: 3, T: value.Int}}}}
	o2, i2 := mk()
	hj := &HashJoin{C: NewCtx(nil), Outer: o2, Inner: i2, OuterKey: 1, InnerKey: 0}
	nlRows := drain(t, nl)
	hjRows := drain(t, hj)
	if len(nlRows) != len(hjRows) {
		t.Fatalf("NL=%d HJ=%d rows", len(nlRows), len(hjRows))
	}
	key := func(r Tuple) [2]int64 { return [2]int64{r[0].I, r[3].I} }
	seen := map[[2]int64]int{}
	for _, r := range nlRows {
		seen[key(r)]++
	}
	for _, r := range hjRows {
		seen[key(r)]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("row multiset differs at %v", k)
		}
	}
}

func TestIndexLoopJoin(t *testing.T) {
	db := newTestDB(t, 60)
	outer := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch,
		Quals: []Expr{&BinOp{Op: OpLT, L: intvar(0), R: intconst(5)}}}
	join := &IndexLoopJoin{C: NewCtx(nil), Outer: outer, OuterKey: 1,
		Heap: db.heap, BTree: db.btree, InnerSch: db.sch}
	rows := drain(t, join)
	// Outer rows a=0..4 with b = a%7 = a; each probes btree on a=b:
	// exactly one inner match each.
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r[1].I != r[3].I {
			t.Fatalf("index join key mismatch: %v", r)
		}
	}
}

func TestMergeJoinWithDuplicates(t *testing.T) {
	c := NewCtx(nil)
	sch := catalog.NewSchema(catalog.Column{Name: "k", Type: value.Int})
	mkRows := func(keys ...int64) []Tuple {
		out := make([]Tuple, len(keys))
		for i, k := range keys {
			out[i] = Tuple{value.NewInt(k)}
		}
		return out
	}
	outer := &ValuesScan{C: c, Out: sch, Rows: mkRows(1, 2, 2, 3, 5)}
	inner := &ValuesScan{C: c, Out: sch, Rows: mkRows(2, 2, 3, 4)}
	join := &MergeJoin{C: c, Outer: outer, Inner: inner, OuterKey: 0, InnerKey: 0}
	rows := drain(t, join)
	// Matches: outer 2 x inner {2,2} twice (2 outer dups) = 4, outer 3 x inner {3} = 1.
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	counts := map[int64]int{}
	for _, r := range rows {
		if r[0].I != r[1].I {
			t.Fatalf("merge join mismatch: %v", r)
		}
		counts[r[0].I]++
	}
	if counts[2] != 4 || counts[3] != 1 {
		t.Fatalf("duplicate handling wrong: %v", counts)
	}
}

// Property: MergeJoin over sorted random multisets equals the naive
// cross-filter join.
func TestMergeJoinMatchesNaive(t *testing.T) {
	c := NewCtx(nil)
	sch := catalog.NewSchema(catalog.Column{Name: "k", Type: value.Int})
	f := func(a, b []uint8) bool {
		av := append([]uint8(nil), a...)
		bv := append([]uint8(nil), b...)
		sort.Slice(av, func(i, j int) bool { return av[i] < av[j] })
		sort.Slice(bv, func(i, j int) bool { return bv[i] < bv[j] })
		mk := func(ks []uint8) []Tuple {
			out := make([]Tuple, len(ks))
			for i, k := range ks {
				out[i] = Tuple{value.NewInt(int64(k % 8))}
			}
			return out
		}
		// Keys mod 8 after sorting breaks order; re-sort the tuples.
		ar, br := mk(av), mk(bv)
		sort.Slice(ar, func(i, j int) bool { return ar[i][0].I < ar[j][0].I })
		sort.Slice(br, func(i, j int) bool { return br[i][0].I < br[j][0].I })
		join := &MergeJoin{C: c,
			Outer:    &ValuesScan{C: c, Out: sch, Rows: ar},
			Inner:    &ValuesScan{C: c, Out: sch, Rows: br},
			OuterKey: 0, InnerKey: 0}
		if err := join.Open(); err != nil {
			return false
		}
		got := 0
		for {
			_, ok, err := join.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			got++
		}
		want := 0
		for _, x := range ar {
			for _, y := range br {
				if x[0].I == y[0].I {
					want++
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSortOperator(t *testing.T) {
	db := newTestDB(t, 97)
	scan := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch}
	srt := &Sort{C: NewCtx(nil), Child: scan,
		Keys: []SortKey{{Col: 1}, {Col: 0, Desc: true}}}
	rows := drain(t, srt)
	if len(rows) != 97 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a[1].I > b[1].I {
			t.Fatal("primary key not ascending")
		}
		if a[1].I == b[1].I && a[0].I < b[0].I {
			t.Fatal("secondary key not descending")
		}
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t, 10) // a = 0..9
	scan := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch}
	agg := &Agg{C: NewCtx(nil), Child: scan, Specs: []AggSpec{
		{Func: AggCount},
		{Func: AggSum, Arg: intvar(0)},
		{Func: AggAvg, Arg: intvar(0)},
		{Func: AggMin, Arg: intvar(0)},
		{Func: AggMax, Arg: intvar(0)},
	}}
	rows := drain(t, agg)
	if len(rows) != 1 {
		t.Fatalf("agg returned %d rows", len(rows))
	}
	r := rows[0]
	if r[0].I != 10 || r[1].I != 45 || r[2].F != 4.5 || r[3].I != 0 || r[4].I != 9 {
		t.Fatalf("agg results wrong: %v", r)
	}
}

func TestGroupAgg(t *testing.T) {
	db := newTestDB(t, 70) // b = a%7: 10 rows per group
	scan := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch}
	srt := &Sort{C: NewCtx(nil), Child: scan, Keys: []SortKey{{Col: 1}}}
	grp := &GroupAgg{C: NewCtx(nil), Child: srt, GroupBy: []int{1},
		Specs: []AggSpec{{Func: AggCount}, {Func: AggSum, Arg: intvar(0)}}}
	rows := drain(t, grp)
	if len(rows) != 7 {
		t.Fatalf("got %d groups, want 7", len(rows))
	}
	for _, r := range rows {
		if r[1].I != 10 {
			t.Fatalf("group %d has count %d, want 10", r[0].I, r[1].I)
		}
		// sum of {b, b+7, ..., b+63} = 10b + 7*45... a%7==b values are
		// b, b+7, ... b+63: sum = 10b + 7*(0+1+..+9) = 10b + 315.
		if r[2].I != 10*r[0].I+315 {
			t.Fatalf("group %d sum = %d", r[0].I, r[2].I)
		}
	}
}

func TestMaterialRescans(t *testing.T) {
	c := NewCtx(nil)
	sch := catalog.NewSchema(catalog.Column{Name: "k", Type: value.Int})
	rows := []Tuple{{value.NewInt(1)}, {value.NewInt(2)}}
	mat := &Material{C: c, Child: &ValuesScan{C: c, Out: sch, Rows: rows}}
	got1 := drain(t, mat)
	got2 := drain(t, mat) // rescan replays without re-running the child
	if len(got1) != 2 || len(got2) != 2 {
		t.Fatalf("material rescan broken: %d then %d", len(got1), len(got2))
	}
}

func TestLimit(t *testing.T) {
	db := newTestDB(t, 50)
	scan := &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch}
	lim := &Limit{C: NewCtx(nil), Child: scan, N: 7}
	rows := drain(t, lim)
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
}

func TestExprEvaluation(t *testing.T) {
	c := NewCtx(nil)
	row := Tuple{value.NewInt(6), value.NewStr("BRAZIL"), value.NewFloat(0.5)}
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{&BinOp{Op: OpAdd, L: intvar(0), R: intconst(4)}, value.NewInt(10)},
		{&BinOp{Op: OpMul, L: intvar(0), R: &Var{Idx: 2, T: value.Float}}, value.NewFloat(3)},
		{&BinOp{Op: OpDiv, L: intvar(0), R: intconst(4)}, value.NewFloat(1.5)},
		{&BinOp{Op: OpEQ, L: &Var{Idx: 1, T: value.Str}, R: &Const{V: value.NewStr("BRAZIL")}}, value.NewBool(true)},
		{&AndExpr{Args: []Expr{
			&BinOp{Op: OpGT, L: intvar(0), R: intconst(5)},
			&BinOp{Op: OpLT, L: intvar(0), R: intconst(7)},
		}}, value.NewBool(true)},
		{&OrExpr{Args: []Expr{
			&BinOp{Op: OpGT, L: intvar(0), R: intconst(100)},
			&BinOp{Op: OpLT, L: intvar(0), R: intconst(7)},
		}}, value.NewBool(true)},
		{&NotExpr{Arg: &BinOp{Op: OpGT, L: intvar(0), R: intconst(100)}}, value.NewBool(true)},
		{&LikeExpr{Arg: &Var{Idx: 1, T: value.Str}, Pattern: "BRA%"}, value.NewBool(true)},
		{&LikeExpr{Arg: &Var{Idx: 1, T: value.Str}, Pattern: "%ZIL"}, value.NewBool(true)},
		{&LikeExpr{Arg: &Var{Idx: 1, T: value.Str}, Pattern: "%RAZ%"}, value.NewBool(true)},
		{&LikeExpr{Arg: &Var{Idx: 1, T: value.Str}, Pattern: "%USA%"}, value.NewBool(false)},
		{&InExpr{Arg: intvar(0), List: []value.Value{value.NewInt(3), value.NewInt(6)}}, value.NewBool(true)},
		{&InExpr{Arg: intvar(0), List: []value.Value{value.NewInt(3)}}, value.NewBool(false)},
	}
	for i, tc := range cases {
		got := tc.e.Eval(c, row)
		if got.T != tc.want.T || value.Compare(got, tc.want) != 0 {
			t.Errorf("case %d (%s): got %v, want %v", i, tc.e, got, tc.want)
		}
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "hel%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h%o", true},
		{"hello", "h%x%o", false},
		{"special requests", "%special%requests%", true},
		{"", "%", true},
		{"abc", "", false},
	}
	for _, tc := range cases {
		if got := MatchLike(tc.s, tc.p); got != tc.want {
			t.Errorf("MatchLike(%q,%q) = %v", tc.s, tc.p, got)
		}
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	c := NewCtx(nil)
	row := Tuple{value.NewNull()}
	e := &BinOp{Op: OpEQ, L: intvar(0), R: intconst(0)}
	if e.Eval(c, row).Bool() {
		t.Fatal("NULL = 0 must be false")
	}
}

// TestParallelScanMatchesSeqScan: the Gather node must emit exactly
// the serial scan's tuple sequence for every degree, with and without
// qualifiers, including degrees exceeding the page count.
func TestParallelScanMatchesSeqScan(t *testing.T) {
	db := newTestDB(t, 500)
	qual := &BinOp{Op: OpLT, L: intvar(1), R: intconst(4)} // b < 4
	for _, quals := range [][]Expr{nil, {qual}} {
		want := drain(t, &SeqScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch, Quals: quals})
		for _, degree := range []int{1, 2, 3, 8, 64} {
			ps := &ParallelScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch,
				Quals: quals, Degree: degree, PartCap: 4}
			got := drain(t, ps)
			if len(got) != len(want) {
				t.Fatalf("degree %d quals=%v: %d rows, want %d", degree, quals != nil, len(got), len(want))
			}
			for i := range got {
				if got[i][0].I != want[i][0].I || got[i][1].I != want[i][1].I {
					t.Fatalf("degree %d: row %d = %v, want %v", degree, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelScanReopen re-runs one node instance, as a prepared
// statement would: Open must reset cleanly each time.
func TestParallelScanReopen(t *testing.T) {
	db := newTestDB(t, 200)
	ps := &ParallelScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch, Degree: 4}
	first := drain(t, ps)
	second := drain(t, ps)
	if len(first) != 200 || len(second) != 200 {
		t.Fatalf("reopen: got %d then %d rows, want 200 both times", len(first), len(second))
	}
}

// TestParallelScanEarlyCloseStopsWorkers abandons the scan after one
// tuple with a tiny channel capacity, so workers are certainly
// blocked mid-send; Close must unblock and join them all (a hang here
// fails the test by timeout, a teardown race fails under -race).
func TestParallelScanEarlyCloseStopsWorkers(t *testing.T) {
	db := newTestDB(t, 2000)
	for i := 0; i < 10; i++ {
		ps := &ParallelScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch, Degree: 8, PartCap: 1}
		if err := ps.Open(); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := ps.Next(); err != nil || !ok {
			t.Fatalf("first Next: ok=%v err=%v", ok, err)
		}
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if db.heap.NumPages() == 0 {
		t.Fatal("sanity: heap empty")
	}
}

// TestParallelScanInterrupt cancels via the shared Interrupt hook;
// the scan must surface the error and join its workers.
func TestParallelScanInterrupt(t *testing.T) {
	db := newTestDB(t, 500)
	stop := errors.New("cancelled")
	c := NewCtx(nil)
	var fired atomic.Bool
	c.Interrupt = func() error {
		if fired.Load() {
			return stop
		}
		return nil
	}
	ps := &ParallelScan{C: c, Heap: db.heap, Out: db.sch, Degree: 4, PartCap: 1}
	if err := ps.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ps.Next(); err != nil || !ok {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	fired.Store(true)
	var err error
	for {
		var ok bool
		if _, ok, err = ps.Next(); err != nil || !ok {
			break
		}
	}
	if !errors.Is(err, stop) {
		t.Fatalf("Next after interrupt: err=%v, want %v", err, stop)
	}
	if cerr := ps.Close(); cerr != nil {
		t.Fatal(cerr)
	}
}

// TestParallelScanEmptyHeap must terminate immediately.
func TestParallelScanEmptyHeap(t *testing.T) {
	db := newTestDB(t, 0)
	ps := &ParallelScan{C: NewCtx(nil), Heap: db.heap, Out: db.sch, Degree: 4}
	if rows := drain(t, ps); len(rows) != 0 {
		t.Fatalf("empty heap yielded %d rows", len(rows))
	}
}
