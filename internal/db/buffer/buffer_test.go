package buffer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/db/probe"
	"repro/internal/db/storage"
)

func newEnv(t *testing.T, frames, pages int) (*storage.Store, *Manager) {
	t.Helper()
	st := storage.NewStore(1)
	for i := 0; i < pages; i++ {
		pn, err := st.AllocPage(0)
		if err != nil {
			t.Fatal(err)
		}
		p := storage.NewPage()
		p.AddTuple([]byte{byte(pn)})
		if err := st.WritePage(0, pn, p); err != nil {
			t.Fatal(err)
		}
	}
	return st, New(st, frames)
}

func TestHitAndMissCounting(t *testing.T) {
	_, m := newEnv(t, 4, 2)
	b, err := m.Get(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(b, false)
	b, err = m.Get(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(b, false)
	hits, misses := m.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestPageContentsSurviveEviction(t *testing.T) {
	_, m := newEnv(t, 2, 5)
	// Touch all 5 pages through a 2-frame pool.
	for i := 0; i < 5; i++ {
		b, err := m.Get(nil, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := b.Page.Tuple(0)
		if err != nil || raw[0] != byte(i) {
			t.Fatalf("page %d contents wrong: %v %v", i, raw, err)
		}
		m.Release(b, false)
	}
}

func TestDirtyPageFlushedOnEvict(t *testing.T) {
	st, m := newEnv(t, 1, 3)
	b, err := m.Get(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.Page.AddTuple([]byte("mutation"))
	m.Release(b, true)
	// Evict page 0 by touching two other pages through 1 frame.
	for i := 1; i < 3; i++ {
		bb, err := m.Get(nil, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		m.Release(bb, false)
	}
	// Read page 0 straight from storage: the mutation must be there.
	p := storage.NewPage()
	if err := st.ReadPage(0, 0, p); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 2 {
		t.Fatalf("dirty page not flushed: %d slots", p.NumSlots())
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	_, m := newEnv(t, 2, 4)
	b0, err := m.Get(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle other pages through the remaining frame.
	for i := 1; i < 4; i++ {
		bb, err := m.Get(nil, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		m.Release(bb, false)
	}
	// Page 0 must still be resident (hit).
	h0, _ := m.Stats()
	b, err := m.Get(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := m.Stats()
	if h1 != h0+1 {
		t.Fatal("pinned page was evicted")
	}
	m.Release(b, false)
	m.Release(b0, false)
}

func TestAllPinnedFails(t *testing.T) {
	_, m := newEnv(t, 2, 4)
	b0, _ := m.Get(nil, 0, 0)
	b1, _ := m.Get(nil, 0, 1)
	if _, err := m.Get(nil, 0, 2); err == nil {
		t.Fatal("Get with all frames pinned must fail")
	}
	m.Release(b0, false)
	m.Release(b1, false)
	if _, err := m.Get(nil, 0, 2); err != nil {
		t.Fatalf("Get after release: %v", err)
	}
}

func TestNewPageAllocatesAndPins(t *testing.T) {
	st, m := newEnv(t, 2, 0)
	b, err := m.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.PageNo != 0 || st.NumPages(0) != 1 {
		t.Fatalf("NewPage: pageNo=%d files=%d", b.PageNo, st.NumPages(0))
	}
	if m.PinnedFrames() != 1 {
		t.Fatal("NewPage must pin")
	}
	b.Page.AddTuple([]byte("x"))
	m.Release(b, true)
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p := storage.NewPage()
	if err := st.ReadPage(0, 0, p); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 1 {
		t.Fatal("FlushAll did not persist the new page")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	_, m := newEnv(t, 2, 1)
	b, err := m.Get(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(b, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	m.Release(b, false)
}

func TestNumPagesPassThrough(t *testing.T) {
	_, m := newEnv(t, 2, 3)
	if m.NumPages(0) != 3 {
		t.Fatalf("NumPages = %d, want 3", m.NumPages(0))
	}
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
}

// Clock must give re-referenced pages a second chance: a page touched
// after the sweep cleared its ref bit survives the next eviction, while
// an untouched page is evicted instead.
func TestClockSecondChance(t *testing.T) {
	_, m := newEnv(t, 3, 10)
	get := func(p int) {
		b, err := m.Get(nil, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		m.Release(b, false)
	}
	get(0) // frames: [0,1,2], all ref bits set
	get(1)
	get(2)
	get(3) // sweep clears all refs, evicts page 0 -> [3,1,2]
	get(1) // hit: page 1's ref bit set again
	get(4) // hand at frame 1: page 1 spared (ref), page 2 evicted
	// Page 1 must still be resident.
	h0, _ := m.Stats()
	get(1)
	h1, _ := m.Stats()
	if h1 != h0+1 {
		t.Fatal("re-referenced page lost its second chance")
	}
	// Page 2 must be gone.
	_, m0 := m.Stats()
	get(2)
	_, m1 := m.Stats()
	if m1 != m0+1 {
		t.Fatal("page 2 should have been the clock victim")
	}
}

// TestConcurrentGetRelease hammers one pool from many goroutines,
// asserting the frame table stays consistent (no bad releases, no
// leaked pins) and that the atomic hit/miss counters account for
// every Get exactly once.
func TestConcurrentGetRelease(t *testing.T) {
	const pages, frames, goroutines, iters = 64, 16, 8, 2000
	_, m := newEnv(t, frames, pages)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				b, err := m.Get(nil, 0, rng.Intn(pages))
				if err != nil {
					errs[g] = err
					return
				}
				if b.Page[0] == 0 { // touch the pinned page
					errs[g] = fmt.Errorf("page %d empty", b.PageNo)
					return
				}
				m.Release(b, false)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := m.PinnedFrames(); n != 0 {
		t.Fatalf("leaked %d pins", n)
	}
	hits, misses := m.Stats()
	if hits+misses != goroutines*iters {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d (lost counter updates)",
			hits, misses, hits+misses, goroutines*iters)
	}
	if misses < pages/4 {
		t.Fatalf("misses = %d, implausibly low for a %d-frame pool over %d pages", misses, frames, pages)
	}
}

// reentrantTracer records probe events while calling back into the
// pool on every emit. Pool methods take the (non-reentrant) pool
// mutex, so any emit issued while the mutex is held deadlocks — which
// is exactly what the hit-path regression test below uses to prove
// hit emission happens outside the latch.
type reentrantTracer struct {
	m      *Manager
	events []probe.ID
}

func (t *reentrantTracer) Emit(id probe.ID) {
	_ = t.m.PinnedFrames() // acquires m.mu; deadlocks if called under it
	t.events = append(t.events, id)
}

// TestHitPathEmitsOutsideLatch pins the PR's buffer-pool slice of the
// latch-granularity roadmap item: the hit path must emit its
// instrumentation after the pool mutex is released (a tracer that
// re-enters the pool completes instead of self-deadlocking), the
// event sequence must be unchanged, and the buffer must already be
// pinned when the events fire.
func TestHitPathEmitsOutsideLatch(t *testing.T) {
	_, m := newEnv(t, 4, 2)
	// Fault the page in untraced; the traced Get below is a pure hit.
	b, err := m.Get(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(b, false)

	tr := &reentrantTracer{m: m}
	done := make(chan error, 1)
	go func() {
		b, err := m.Get(tr, 0, 0)
		if err == nil {
			m.Release(b, false)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hit-path Get deadlocked: tracer emission still runs under the pool mutex")
	}
	want := []probe.ID{probe.BufGetEnter, probe.BufTableLookup, probe.BufGetHit}
	if len(tr.events) != len(want) {
		t.Fatalf("hit path emitted %v, want %v", tr.events, want)
	}
	for i, id := range want {
		if tr.events[i] != id {
			t.Fatalf("hit path emitted %v, want %v", tr.events, want)
		}
	}
}

// eventTracer records probe IDs without re-entering the pool.
type eventTracer struct{ events []probe.ID }

func (t *eventTracer) Emit(id probe.ID) { t.events = append(t.events, id) }

// TestMissPathEventSequenceUnchanged pins the miss-path trace shape:
// reordering the hit emits must not have perturbed the cold path the
// CFG validation depends on.
func TestMissPathEventSequenceUnchanged(t *testing.T) {
	_, m := newEnv(t, 4, 2)
	tr := &eventTracer{}
	b, err := m.Get(tr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(b, false)
	want := []probe.ID{
		probe.BufGetEnter, probe.BufTableLookup, probe.BufGetMiss,
		probe.BufClockEnter, probe.BufClockTake,
		probe.BufGetRead, probe.SmgrRead, probe.BufGetFill,
	}
	if fmt.Sprint(tr.events) != fmt.Sprint(want) {
		t.Fatalf("miss path emitted %v, want %v", tr.events, want)
	}
}

// rendezvousTracer blocks inside the BufGetRead emit — which fires
// between the victim claim and the storage read, outside the pool
// mutex — until every participating session has reached the same
// point. If miss IO still ran under the pool mutex, the second
// session could never reach BufGetRead while the first was parked
// there, and the rendezvous would time out.
type rendezvousTracer struct {
	arrived chan<- struct{}
	release <-chan struct{}
}

func (t *rendezvousTracer) Emit(id probe.ID) {
	if id == probe.BufGetRead {
		t.arrived <- struct{}{}
		<-t.release
	}
}

// TestConcurrentMissesOverlapIO pins the per-frame IO latch slice of
// the latch-granularity roadmap item: two concurrent misses on
// different pages must be able to sit in their storage reads at the
// same time (each under its own frame latch), not serialized under
// the pool mutex.
func TestConcurrentMissesOverlapIO(t *testing.T) {
	st, m := newEnv(t, 4, 4)
	const sessions = 2
	arrived := make(chan struct{}, sessions)
	release := make(chan struct{})
	done := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		go func(page int) {
			b, err := m.Get(&rendezvousTracer{arrived: arrived, release: release}, 0, page)
			if err == nil {
				m.Release(b, false)
			}
			done <- err
		}(g)
	}
	for i := 0; i < sessions; i++ {
		select {
		case <-arrived:
		case <-time.After(10 * time.Second):
			t.Fatal("miss IO did not overlap: a session never reached its storage read while the other held one open")
		}
	}
	close(release)
	for i := 0; i < sessions; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := m.Stats(); hits != 0 || misses != sessions {
		t.Fatalf("hits/misses = %d/%d, want 0/%d", hits, misses, sessions)
	}
	if got := st.Reads(); got != sessions {
		t.Fatalf("storage reads = %d, want %d", got, sessions)
	}
	if n := m.PinnedFrames(); n != 0 {
		t.Fatalf("leaked %d pins", n)
	}
}

// TestWaiterGetsLoadersRead pins the read-page-once guarantee across
// the frame latch: a session that races a loading frame must wait for
// the in-flight read, come back as a hit, and see the loaded
// contents.
func TestWaiterGetsLoadersRead(t *testing.T) {
	st, m := newEnv(t, 4, 4)
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	loaderDone := make(chan error, 1)
	go func() {
		b, err := m.Get(&rendezvousTracer{arrived: arrived, release: release}, 0, 1)
		if err == nil {
			m.Release(b, false)
		}
		loaderDone <- err
	}()
	<-arrived // the loader holds the frame latch, read not yet issued

	waiterDone := make(chan error, 1)
	go func() {
		b, err := m.Get(nil, 0, 1)
		if err == nil {
			if raw, terr := b.Page.Tuple(0); terr != nil || raw[0] != 1 {
				err = fmt.Errorf("waiter saw wrong contents: %v %v", raw, terr)
			}
			m.Release(b, false)
		}
		waiterDone <- err
	}()
	// The waiter must block on the frame latch, not error or read.
	select {
	case err := <-waiterDone:
		t.Fatalf("waiter completed before the load finished (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-loaderDone; err != nil {
		t.Fatal(err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatal(err)
	}
	if hits, misses := m.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
	if got := st.Reads(); got != 1 {
		t.Fatalf("storage reads = %d, want 1 (read-page-once violated)", got)
	}
}

// TestEvictFlushNotOvertakenByReread regression-tests the in-flight
// flush registry: when a miss evicts a dirty victim and flushes it
// outside the pool mutex, a concurrent miss re-reading that same page
// must wait for the flush — reading storage early would install the
// page's pre-flush (stale) bytes. The test parks the evictor inside
// its flush window (via the test hook) and proves the re-reader
// cannot complete until the flush lands, and then sees the flushed
// contents.
func TestEvictFlushNotOvertakenByReread(t *testing.T) {
	_, m := newEnv(t, 2, 3)
	inFlush := make(chan struct{})
	releaseFlush := make(chan struct{})
	m.testEvictFlushHook = func() {
		close(inFlush)
		<-releaseFlush
	}
	// Frame 0 holds page 0, dirtied with a second tuple that only the
	// flushed version has; frame 1 holds page 1 clean. The next miss's
	// clock sweep clears both ref bits and takes frame 0 — the dirty
	// one — as its victim.
	b, err := m.Get(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.Page.AddTuple([]byte("mutation"))
	m.Release(b, true)
	if b, err = m.Get(nil, 0, 1); err != nil {
		t.Fatal(err)
	}
	m.Release(b, false)

	evictorDone := make(chan error, 1)
	go func() { // evicts dirty page 0 to load page 2; parks in the hook
		b, err := m.Get(nil, 0, 2)
		if err == nil {
			m.Release(b, false)
		}
		evictorDone <- err
	}()
	<-inFlush // page 0 is unmapped, its dirty bytes not yet in storage

	rereadDone := make(chan error, 1)
	go func() { // re-reads page 0 mid-flush
		b, err := m.Get(nil, 0, 0)
		if err == nil {
			if b.Page.NumSlots() != 2 {
				err = fmt.Errorf("re-read page 0 with %d slots, want 2 (stale pre-flush bytes)", b.Page.NumSlots())
			}
			m.Release(b, false)
		}
		rereadDone <- err
	}()
	// The re-reader must block on the in-flight flush, not complete
	// with whatever storage holds right now.
	select {
	case err := <-rereadDone:
		t.Fatalf("re-read completed while the evict-flush was still in flight (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(releaseFlush)
	if err := <-evictorDone; err != nil {
		t.Fatal(err)
	}
	if err := <-rereadDone; err != nil {
		t.Fatal(err)
	}
}

// TestFlushAllWaitsForInFlightEvictFlush: a dirty page mid-evict
// lives in no frame, so FlushAll's frame sweep cannot see it — it
// must wait on the in-flight flush registry instead of reporting
// durability it does not have.
func TestFlushAllWaitsForInFlightEvictFlush(t *testing.T) {
	st, m := newEnv(t, 2, 3)
	inFlush := make(chan struct{})
	releaseFlush := make(chan struct{})
	m.testEvictFlushHook = func() {
		close(inFlush)
		<-releaseFlush
	}
	b, err := m.Get(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.Page.AddTuple([]byte("mutation"))
	m.Release(b, true)
	if b, err = m.Get(nil, 0, 1); err != nil {
		t.Fatal(err)
	}
	m.Release(b, false)

	evictorDone := make(chan error, 1)
	go func() { // evicts dirty page 0, parks inside its flush window
		b, err := m.Get(nil, 0, 2)
		if err == nil {
			m.Release(b, false)
		}
		evictorDone <- err
	}()
	<-inFlush

	flushDone := make(chan error, 1)
	go func() { flushDone <- m.FlushAll() }()
	select {
	case err := <-flushDone:
		t.Fatalf("FlushAll returned (err=%v) while an evict-flush was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(releaseFlush)
	if err := <-flushDone; err != nil {
		t.Fatal(err)
	}
	if err := <-evictorDone; err != nil {
		t.Fatal(err)
	}
	// The durability FlushAll promised: page 0's mutation is in storage.
	p := storage.NewPage()
	if err := st.ReadPage(0, 0, p); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 2 {
		t.Fatalf("page 0 has %d slots in storage after FlushAll, want 2", p.NumSlots())
	}
}

// TestConcurrentGetSamePageReadsOnce races every goroutine for the
// same cold page: the pool latch must admit exactly one storage read.
func TestConcurrentGetSamePageReadsOnce(t *testing.T) {
	const goroutines = 16
	st, m := newEnv(t, 8, 4)
	before := st.Reads()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := m.Get(nil, 0, 2)
			if err != nil {
				t.Error(err)
				return
			}
			m.Release(b, false)
		}()
	}
	wg.Wait()
	if got := st.Reads() - before; got != 1 {
		t.Fatalf("page read %d times from storage, want 1", got)
	}
	hits, misses := m.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", hits, misses, goroutines-1)
	}
}
