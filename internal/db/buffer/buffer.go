// Package buffer implements the buffer manager of the database kernel:
// a fixed pool of page frames over the storage manager with clock
// (second-chance) replacement, pin/unpin discipline and hit/miss
// statistics — the module the paper identifies (with the access
// methods) as a major source of instruction-cache misses.
//
// The pool is latched: every frame-table operation (lookup, pin,
// unpin, clock sweep, flush) runs under one pool mutex, and hit/miss
// counters are atomic, so any number of sessions can pin and release
// pages concurrently without lost updates. Page contents themselves
// are not latched — concurrent readers of a pinned page are safe,
// while writers are serialized above the pool (the engine holds its
// write latch across inserts and index builds).
package buffer

import (
	"fmt"
	"sync"

	"repro/internal/db/probe"
	"repro/internal/db/storage"
)

type key struct{ file, page int }

type frame struct {
	key   key
	page  storage.Page
	pins  int
	dirty bool
	ref   bool
	valid bool
}

// Buf is a pinned page handle.
type Buf struct {
	// Page is the frame contents; valid while pinned.
	Page storage.Page
	// File and PageNo identify the page.
	File, PageNo int
	idx          int
}

// Manager is the buffer pool. All methods are safe for concurrent
// use.
type Manager struct {
	store *storage.Store

	mu     sync.Mutex // guards frames, lookup and the clock hand
	frames []frame
	lookup map[key]int
	hand   int

	// stats holds the pool's hit/miss counters (atomic, so no
	// increments are lost under concurrent load).
	stats  *probe.CounterSet
	hits   *probe.Counter
	misses *probe.Counter
}

// New returns a buffer pool of n frames over the store.
func New(store *storage.Store, n int) *Manager {
	m := &Manager{
		store:  store,
		frames: make([]frame, n),
		lookup: make(map[key]int, n),
		stats:  probe.NewCounterSet(),
	}
	m.hits = m.stats.Register("buffer.hits")
	m.misses = m.stats.Register("buffer.misses")
	for i := range m.frames {
		m.frames[i].page = storage.NewPage()
	}
	return m
}

// Get pins the given page, reading it from storage on a miss. The
// tracer receives the ReadBuffer instrumentation events (nil means
// untraced). The lookup-or-read decision and the read itself run
// under the pool latch, so two sessions racing for an unbuffered page
// read it once: the loser of the race takes the hit path.
//
// Hit-path instrumentation is emitted after the latch drops: the
// tracer is per-session state (sessions are single-threaded), so
// moving the emits out of the critical section keeps hot hits — the
// overwhelmingly common case for DSS scans — from serializing
// concurrent sessions on trace recording. Miss-path emits still run
// under the latch, interleaved with the eviction they describe; the
// remaining step toward full concurrency is per-frame IO latches
// (see ROADMAP).
func (m *Manager) Get(tr probe.Tracer, file, page int) (Buf, error) {
	tr = probe.Or(tr)
	k := key{file, page}
	m.mu.Lock()
	if i, ok := m.lookup[k]; ok {
		m.hits.Inc()
		f := &m.frames[i]
		f.pins++
		f.ref = true
		b := Buf{Page: f.page, File: file, PageNo: page, idx: i}
		m.mu.Unlock()
		tr.Emit(probe.BufGetEnter)
		tr.Emit(probe.BufTableLookup)
		tr.Emit(probe.BufGetHit)
		return b, nil
	}
	defer m.mu.Unlock()
	tr.Emit(probe.BufGetEnter)
	tr.Emit(probe.BufTableLookup)
	m.misses.Inc()
	tr.Emit(probe.BufGetMiss)
	i, err := m.evict(tr)
	if err != nil {
		return Buf{}, err
	}
	tr.Emit(probe.BufGetRead)
	f := &m.frames[i]
	if err := m.store.ReadPage(file, page, f.page); err != nil {
		f.valid = false
		return Buf{}, err
	}
	tr.Emit(probe.SmgrRead)
	f.key = k
	f.valid = true
	f.pins = 1
	f.ref = true
	f.dirty = false
	m.lookup[k] = i
	tr.Emit(probe.BufGetFill)
	return Buf{Page: f.page, File: file, PageNo: page, idx: i}, nil
}

// NewPage allocates a fresh page in the file and returns it pinned.
func (m *Manager) NewPage(file int) (Buf, error) {
	pageNo, err := m.store.AllocPage(file)
	if err != nil {
		return Buf{}, err
	}
	return m.Get(nil, file, pageNo)
}

// Release unpins a buffer, marking it dirty if modified.
func (m *Manager) Release(b Buf, dirty bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &m.frames[b.idx]
	if f.pins <= 0 || f.key != (key{b.File, b.PageNo}) {
		panic(fmt.Sprintf("buffer: bad release of file %d page %d", b.File, b.PageNo))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// evict finds a free frame with the clock algorithm, flushing a dirty
// victim (StrategyGetBuffer). The caller holds m.mu.
func (m *Manager) evict(tr probe.Tracer) (int, error) {
	tr = probe.Or(tr)
	tr.Emit(probe.BufClockEnter)
	n := len(m.frames)
	for sweep := 0; sweep < 2*n; sweep++ {
		i := m.hand
		m.hand = (m.hand + 1) % n
		f := &m.frames[i]
		if !f.valid {
			tr.Emit(probe.BufClockTake)
			return i, nil
		}
		if f.pins > 0 {
			tr.Emit(probe.BufClockSkip)
			continue
		}
		if f.ref {
			f.ref = false
			tr.Emit(probe.BufClockSkip)
			continue
		}
		if f.dirty {
			if err := m.store.WritePage(f.key.file, f.key.page, f.page); err != nil {
				return 0, err
			}
			f.dirty = false
		}
		delete(m.lookup, f.key)
		f.valid = false
		tr.Emit(probe.BufClockTake)
		return i, nil
	}
	return 0, fmt.Errorf("buffer: all %d frames pinned", n)
}

// FlushAll writes every dirty frame back to storage (used after bulk
// loads).
func (m *Manager) FlushAll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.frames {
		f := &m.frames[i]
		if f.valid && f.dirty {
			if err := m.store.WritePage(f.key.file, f.key.page, f.page); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Stats returns hit and miss counts. The counters are atomic, so no
// increments are lost under concurrent load; reading both is not one
// atomic snapshot, but each count is exact once the pool quiesces.
func (m *Manager) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// Counters exposes the pool's counter registry ("buffer.hits",
// "buffer.misses") for snapshotting or resetting between benchmark
// phases.
func (m *Manager) Counters() *probe.CounterSet { return m.stats }

// NumPages returns the length of a storage file in pages (pass-through
// to the storage manager so access methods need only the pool).
func (m *Manager) NumPages(file int) int { return m.store.NumPages(file) }

// PinnedFrames returns the number of currently pinned frames (for
// leak checks in tests).
func (m *Manager) PinnedFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for i := range m.frames {
		if m.frames[i].pins > 0 {
			n++
		}
	}
	return n
}

// Size returns the pool size in frames.
func (m *Manager) Size() int { return len(m.frames) }
