// Package buffer implements the buffer manager of the database kernel:
// a fixed pool of page frames over the storage manager with clock
// (second-chance) replacement, pin/unpin discipline and hit/miss
// statistics — the module the paper identifies (with the access
// methods) as a major source of instruction-cache misses.
//
// The pool is latched at two granularities. Frame-table operations
// (lookup, pin, unpin, clock sweep, flush) run under one pool mutex,
// and hit/miss counters are atomic, so any number of sessions can pin
// and release pages concurrently without lost updates. Miss IO,
// however, runs under a frame-local latch: a miss claims its victim
// frame under the pool mutex (publishing the claim in the frame
// table), then drops the mutex and performs the evict-flush and the
// storage read with only the frame held — so two sessions missing on
// different pages overlap their IO, while a session racing for a page
// whose read is in flight waits on that frame alone and still reads
// the page from storage exactly once. Page contents themselves are
// not latched — concurrent readers of a pinned page are safe, while
// writers are serialized above the pool (the engine holds its write
// latch across inserts and index builds).
package buffer

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/db/probe"
	"repro/internal/db/storage"
)

// ioWaitRecorder is implemented by probe tracers that carry a query
// observability span (the executor's span tracer): Get attributes the
// time a session spends blocked on pool IO — evict-flushes, storage
// reads, and waits on another session's in-flight read — through it.
// Declared locally so the pool does not depend on the observability
// package.
type ioWaitRecorder interface {
	AddIOWait(d time.Duration)
}

type key struct{ file, page int }

type frame struct {
	key   key
	page  storage.Page
	pins  int
	dirty bool
	ref   bool
	valid bool

	// loading marks a claimed frame whose IO (evict-flush + storage
	// read) is in flight under the frame-local latch: the key is
	// published in the lookup table, pins is at least 1 (the loader's),
	// but the contents are not yet valid. ready is the latch's release
	// signal — closed by the loader when the IO finishes — and loadErr
	// carries a failed read to the waiters (set before ready closes,
	// read by waiters that still hold their pin, so it cannot be
	// recycled under them).
	loading bool
	ready   chan struct{}
	loadErr error
}

// flushWait is one in-flight evict-flush: done closes when the write
// finished, err (set before done closes) reports its failure to any
// session waiting to re-read the page.
type flushWait struct {
	done chan struct{}
	err  error
}

// Buf is a pinned page handle.
type Buf struct {
	// Page is the frame contents; valid while pinned.
	Page storage.Page
	// File and PageNo identify the page.
	File, PageNo int
	idx          int
}

// Manager is the buffer pool. All methods are safe for concurrent
// use.
type Manager struct {
	store *storage.Store

	mu     sync.Mutex // guards frames, lookup, flushing and the clock hand
	frames []frame
	lookup map[key]int
	hand   int

	// flushing tracks pages whose evict-flush is in flight outside the
	// pool mutex: the victim's lookup entry is gone (its frame was
	// reassigned) but its dirty bytes have not reached storage yet. A
	// miss that wants to read such a page must wait for the flush —
	// and fail if the flush failed — or it would install stale bytes.
	flushing map[key]*flushWait

	// stats holds the pool's hit/miss counters (atomic, so no
	// increments are lost under concurrent load).
	stats  *probe.CounterSet
	hits   *probe.Counter
	misses *probe.Counter

	// testEvictFlushHook, when non-nil, runs just before an
	// evict-flush's storage write, after the pool mutex dropped — test
	// instrumentation for holding the flush window open (the
	// stale-reread regression test depends on it).
	testEvictFlushHook func()
}

// New returns a buffer pool of n frames over the store.
func New(store *storage.Store, n int) *Manager {
	m := &Manager{
		store:    store,
		frames:   make([]frame, n),
		lookup:   make(map[key]int, n),
		flushing: make(map[key]*flushWait),
		stats:    probe.NewCounterSet(),
	}
	m.hits = m.stats.Register("buffer.hits")
	m.misses = m.stats.Register("buffer.misses")
	for i := range m.frames {
		m.frames[i].page = storage.NewPage()
	}
	return m
}

// Get pins the given page, reading it from storage on a miss. The
// tracer receives the ReadBuffer instrumentation events (nil means
// untraced). Two sessions racing for an unbuffered page still read it
// from storage exactly once: the first claims the frame and performs
// the read, the loser finds the in-flight claim in the frame table,
// waits on that frame's latch, and takes the hit path.
//
// Hit-path instrumentation is emitted after the pool latch drops: the
// tracer is per-session state (sessions are single-threaded), so
// moving the emits out of the critical section keeps hot hits — the
// overwhelmingly common case for DSS scans — from serializing
// concurrent sessions on trace recording. On a miss the clock sweep
// (and its emits) runs under the pool mutex, but the evict-flush and
// the storage read — the slow part — run under only the claimed
// frame's latch, so misses on different pages overlap their IO.
func (m *Manager) Get(tr probe.Tracer, file, page int) (Buf, error) {
	tr = probe.Or(tr)
	// A tracer carrying a query span (the executor's span tracer)
	// additionally receives this call's IO wait. Declared structurally
	// (ioWaitRecorder) so the pool stays free of the observability
	// package; only the slow paths below touch the clock — hot hits
	// pay nothing.
	rec, observed := tr.(ioWaitRecorder)
	k := key{file, page}
	m.mu.Lock()
	if i, ok := m.lookup[k]; ok {
		f := &m.frames[i]
		if f.loading {
			// Another session's read of this page is in flight: pin the
			// frame (so it cannot be recycled under us), wait on its
			// latch, then complete as a hit — the read happened once.
			f.pins++
			ready := f.ready
			m.mu.Unlock()
			tr.Emit(probe.BufGetEnter)
			tr.Emit(probe.BufTableLookup)
			var waitStart time.Time
			if observed {
				waitStart = time.Now()
			}
			<-ready
			if observed {
				rec.AddIOWait(time.Since(waitStart))
			}
			m.mu.Lock()
			if err := f.loadErr; err != nil {
				f.pins--
				m.mu.Unlock()
				return Buf{}, err
			}
			m.hits.Inc()
			f.ref = true
			b := Buf{Page: f.page, File: file, PageNo: page, idx: i}
			m.mu.Unlock()
			tr.Emit(probe.BufGetHit)
			return b, nil
		}
		m.hits.Inc()
		f.pins++
		f.ref = true
		b := Buf{Page: f.page, File: file, PageNo: page, idx: i}
		m.mu.Unlock()
		tr.Emit(probe.BufGetEnter)
		tr.Emit(probe.BufTableLookup)
		tr.Emit(probe.BufGetHit)
		return b, nil
	}
	// Miss-path instrumentation is recorded here and emitted only once
	// the pool mutex drops: a tracer is user code, and user code under
	// m.mu can re-enter the pool and deadlock (the PR 3 class — now
	// enforced statically by dsdblint's tracerlock).
	evs := append(make([]probe.ID, 0, 8), probe.BufGetEnter, probe.BufTableLookup)
	m.misses.Inc()
	evs = append(evs, probe.BufGetMiss)
	// Claim a victim frame under the pool mutex: the clock sweep does
	// no IO, it just picks the frame, publishes the claim under the new
	// key and remembers what must be flushed.
	i, err := m.evict(&evs)
	if err != nil {
		m.mu.Unlock()
		emitAll(tr, evs)
		return Buf{}, err
	}
	f := &m.frames[i]
	oldKey, needFlush := f.key, f.valid && f.dirty
	f.key = k
	f.valid = false
	f.dirty = false
	f.pins = 1
	f.ref = true
	f.loading = true
	f.ready = make(chan struct{})
	f.loadErr = nil
	m.lookup[k] = i
	var flushOut *flushWait
	if needFlush {
		// Publish the in-flight flush before dropping the mutex: a
		// racing miss on oldKey no longer finds it in the lookup table
		// and must not read it from storage until this write lands.
		flushOut = &flushWait{done: make(chan struct{})}
		m.flushing[oldKey] = flushOut
	}
	// A racing eviction may still be flushing the page we are about to
	// read; its registration is visible here because its critical
	// section (unmap + register) completed before ours found the page
	// absent from the lookup table.
	waitFlush := m.flushing[k]
	m.mu.Unlock()
	emitAll(tr, evs)
	if observed {
		// Everything from here to any return is miss IO: the victim
		// flush, waiting out a racing flush of this page, and the read.
		ioStart := time.Now()
		defer func() { rec.AddIOWait(time.Since(ioStart)) }()
	}

	// IO under the frame latch only: evict-flush of the dirty victim,
	// then the read that fills the frame. Other frames' misses proceed
	// concurrently; waiters for this page block on f.ready above.
	err = nil
	if needFlush {
		if m.testEvictFlushHook != nil {
			m.testEvictFlushHook()
		}
		err = m.store.WritePage(oldKey.file, oldKey.page, f.page)
		m.mu.Lock()
		delete(m.flushing, oldKey)
		if err != nil {
			// The victim's bytes never reached storage: restore the
			// frame to its old identity, valid and still dirty, so the
			// data survives and a later eviction retries the write.
			// The claim for k fails below; any waiters pinned on it see
			// loadErr and drain before the clock can touch the frame.
			f.key = oldKey
			f.valid = true
			f.dirty = true
			m.lookup[oldKey] = i
			m.failLoadLocked(f, k, i, err)
			m.mu.Unlock()
			flushOut.err = err
			close(flushOut.done)
			return Buf{}, err
		}
		m.mu.Unlock()
		close(flushOut.done)
	}
	if waitFlush != nil {
		<-waitFlush.done
		if ferr := waitFlush.err; ferr != nil {
			// The page's dirty bytes never made it to storage (they
			// live on in the restored frame); reading now would install
			// stale data. Fail this load.
			m.mu.Lock()
			f.valid = false
			m.failLoadLocked(f, k, i, ferr)
			m.mu.Unlock()
			return Buf{}, ferr
		}
	}
	tr.Emit(probe.BufGetRead)
	if err := m.store.ReadPage(file, page, f.page); err != nil {
		m.mu.Lock()
		f.valid = false
		m.failLoadLocked(f, k, i, err)
		m.mu.Unlock()
		return Buf{}, err
	}
	m.mu.Lock()
	f.valid = true
	f.loading = false
	close(f.ready)
	f.ready = nil
	m.mu.Unlock()
	tr.Emit(probe.SmgrRead)
	tr.Emit(probe.BufGetFill)
	return Buf{Page: f.page, File: file, PageNo: page, idx: i}, nil
}

// failLoadLocked fails an in-flight load: unpublish the claim for k
// (the mapping can only still point at this frame — no session can
// re-claim a key that is present in the lookup table), hand the
// error to any waiters — they still hold pins, so the frame outlives
// them — and release the loader's pin. The caller holds m.mu and has
// already set the frame's restored identity, if any.
func (m *Manager) failLoadLocked(f *frame, k key, i int, err error) {
	if j, ok := m.lookup[k]; ok && j == i {
		delete(m.lookup, k)
	}
	f.loadErr = err
	f.loading = false
	f.pins--
	close(f.ready)
	f.ready = nil
}

// NewPage allocates a fresh page in the file and returns it pinned.
func (m *Manager) NewPage(file int) (Buf, error) {
	pageNo, err := m.store.AllocPage(file)
	if err != nil {
		return Buf{}, err
	}
	return m.Get(nil, file, pageNo)
}

// Release unpins a buffer, marking it dirty if modified.
func (m *Manager) Release(b Buf, dirty bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &m.frames[b.idx]
	if f.pins <= 0 || f.key != (key{b.File, b.PageNo}) {
		panic(fmt.Sprintf("buffer: bad release of file %d page %d", b.File, b.PageNo))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// evict picks a victim frame with the clock algorithm
// (StrategyGetBuffer) and unmaps it, without doing any IO: a dirty
// victim's flush happens in Get under the frame latch, after the pool
// mutex drops. The caller holds m.mu, so the sweep's probe events are
// appended to evs for the caller to emit after unlocking. Loading
// frames are pinned by their loader, so the pins check skips them.
func (m *Manager) evict(evs *[]probe.ID) (int, error) {
	*evs = append(*evs, probe.BufClockEnter)
	n := len(m.frames)
	for sweep := 0; sweep < 2*n; sweep++ {
		i := m.hand
		m.hand = (m.hand + 1) % n
		f := &m.frames[i]
		if f.pins > 0 {
			// Covers loading frames too (their loader holds a pin), and
			// failed-load frames still pinned by draining waiters.
			*evs = append(*evs, probe.BufClockSkip)
			continue
		}
		if !f.valid {
			*evs = append(*evs, probe.BufClockTake)
			return i, nil
		}
		if f.ref {
			f.ref = false
			*evs = append(*evs, probe.BufClockSkip)
			continue
		}
		delete(m.lookup, f.key)
		*evs = append(*evs, probe.BufClockTake)
		return i, nil
	}
	return 0, fmt.Errorf("buffer: all %d frames pinned", n)
}

// emitAll replays probe events recorded while the pool mutex was
// held; callers invoke it only after releasing m.mu.
func emitAll(tr probe.Tracer, evs []probe.ID) {
	for _, e := range evs {
		tr.Emit(e)
	}
}

// FlushAll writes every dirty frame back to storage (used after bulk
// loads). Dirty pages whose evict-flush is in flight in a concurrent
// miss live in no frame at that moment — their frame was reassigned —
// so FlushAll also waits on the in-flight flush registry and
// propagates its failures: when it returns nil, every page that was
// dirty at entry is durably in storage.
func (m *Manager) FlushAll() error {
	m.mu.Lock()
	for i := range m.frames {
		f := &m.frames[i]
		if f.valid && f.dirty {
			if err := m.store.WritePage(f.key.file, f.key.page, f.page); err != nil {
				m.mu.Unlock()
				return err
			}
			f.dirty = false
		}
	}
	// Snapshot under the same mutex hold as the frame sweep: every
	// page dirty at this instant is either in a frame (just written)
	// or in this snapshot. The waits happen unlatched — the flusher
	// needs the mutex to retire its registry entry.
	waits := make([]*flushWait, 0, len(m.flushing))
	for _, fw := range m.flushing {
		waits = append(waits, fw)
	}
	m.mu.Unlock()
	for _, fw := range waits {
		<-fw.done
		if fw.err != nil {
			return fw.err
		}
	}
	return nil
}

// Stats returns hit and miss counts. The counters are atomic, so no
// increments are lost under concurrent load; reading both is not one
// atomic snapshot, but each count is exact once the pool quiesces.
func (m *Manager) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// Counters exposes the pool's counter registry ("buffer.hits",
// "buffer.misses") for snapshotting or resetting between benchmark
// phases.
func (m *Manager) Counters() *probe.CounterSet { return m.stats }

// NumPages returns the length of a storage file in pages (pass-through
// to the storage manager so access methods need only the pool).
func (m *Manager) NumPages(file int) int { return m.store.NumPages(file) }

// PinnedFrames returns the number of currently pinned frames (for
// leak checks in tests).
func (m *Manager) PinnedFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for i := range m.frames {
		if m.frames[i].pins > 0 {
			n++
		}
	}
	return n
}

// Size returns the pool size in frames.
func (m *Manager) Size() int { return len(m.frames) }
