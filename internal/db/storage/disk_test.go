package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fillPage returns a page whose tuples carry a recognizable pattern.
func fillPage(t *testing.T, marker byte) Page {
	t.Helper()
	p := NewPage()
	if _, ok := p.AddTuple(bytes.Repeat([]byte{marker}, 32)); !ok {
		t.Fatal("tuple does not fit an empty page")
	}
	return p
}

// TestDiskStoreMatchesMemoryStore drives the same operation sequence
// through both modes and checks every page reads back identically.
func TestDiskStoreMatchesMemoryStore(t *testing.T) {
	mem := NewStore(0)
	dsk, err := OpenDiskStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Store{mem, dsk} {
		s.EnsureFiles(3)
		for f := 0; f < 3; f++ {
			for p := 0; p < 4; p++ {
				if _, err := s.AllocPage(f); err != nil {
					t.Fatal(err)
				}
			}
		}
		for f := 0; f < 3; f++ {
			for p := 0; p < 4; p++ {
				if err := s.WritePage(f, p, fillPage(t, byte(16*f+p))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	a, b := NewPage(), NewPage()
	for f := 0; f < 3; f++ {
		if mem.NumPages(f) != dsk.NumPages(f) {
			t.Fatalf("file %d: %d vs %d pages", f, mem.NumPages(f), dsk.NumPages(f))
		}
		for p := 0; p < 4; p++ {
			if err := mem.ReadPage(f, p, a); err != nil {
				t.Fatal(err)
			}
			if err := dsk.ReadPage(f, p, b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("file %d page %d differs between modes", f, p)
			}
		}
	}
}

// TestDiskStoreCheckpointAndReopen writes, checkpoints, mutates some
// pages, checkpoints again, and reopens from each generation.
func TestDiskStoreCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.EnsureFiles(2)
	for f := 0; f < 2; f++ {
		for p := 0; p < 3; p++ {
			if _, err := s.AllocPage(f); err != nil {
				t.Fatal(err)
			}
			if err := s.WritePage(f, p, fillPage(t, byte(1+16*f+p))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.WriteGeneration(1); err != nil {
		t.Fatal(err)
	}
	if err := s.PromoteGeneration(1); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}

	// Mutate one page and extend file 1, then checkpoint again. File 0
	// is untouched, so generation 2 should hard-link its page file.
	if err := s.WritePage(1, 0, fillPage(t, 0xEE)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocPage(1); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(1, 3, fillPage(t, 0xEF)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteGeneration(2); err != nil {
		t.Fatal(err)
	}
	if err := s.PromoteGeneration(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Old generation directory is gone.
	if _, err := os.Stat(filepath.Join(dir, "gen-000001")); !os.IsNotExist(err) {
		t.Fatalf("stale generation not removed: %v", err)
	}

	re, err := OpenDiskStore(dir, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages(0) != 3 || re.NumPages(1) != 4 {
		t.Fatalf("reopened page counts: %d, %d", re.NumPages(0), re.NumPages(1))
	}
	got, want := NewPage(), fillPage(t, 0xEE)
	if err := re.ReadPage(1, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mutated page not persisted across reopen")
	}
	if err := re.ReadPage(0, 1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fillPage(t, 1+1)) {
		t.Fatal("untouched page corrupted across reopen")
	}
}

// TestDiskStoreSpillHook pins that every post-checkpoint WritePage is
// observed by the spill hook with the exact page image, and that
// InstallRecovered bypasses it.
func TestDiskStoreSpillHook(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	type spill struct {
		file, page int
		data       []byte
	}
	var got []spill
	s.SetSpill(func(file, page int, data []byte) error {
		got = append(got, spill{file, page, append([]byte(nil), data...)})
		return nil
	})
	s.EnsureFiles(1)
	if _, err := s.AllocPage(0); err != nil {
		t.Fatal(err)
	}
	img := fillPage(t, 0x77)
	if err := s.WritePage(0, 0, img); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].file != 0 || got[0].page != 0 || !bytes.Equal(got[0].data, img) {
		t.Fatalf("spill observed %d writes, want the one image", len(got))
	}
	if err := s.InstallRecovered(0, 0, fillPage(t, 0x78)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("InstallRecovered must not spill")
	}
	back := NewPage()
	if err := s.ReadPage(0, 0, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, fillPage(t, 0x78)) {
		t.Fatal("InstallRecovered image not visible to reads")
	}
}
