// Package storage implements the storage manager of the database
// kernel (the lowest module in the paper's Figure 1): fixed-size
// slotted pages, tuple serialization, and page files. Files live
// either in memory (NewStore) or on disk under a data directory of
// immutable checkpoint generations (OpenDiskStore) — the latter
// standing in for the paper's Digital Unix filesystem. In both modes
// pages are only reachable through page reads and writes issued by
// the buffer manager, preserving the access-path structure of the
// kernel.
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageBytes is the page size (PostgreSQL's 8 KB).
const PageBytes = 8192

// Page header layout: nslots(2) | freeStart(2) | freeEnd(2).
const (
	offNSlots    = 0
	offFreeStart = 2
	offFreeEnd   = 4
	headerBytes  = 6
	slotBytes    = 4 // offset(2) | length(2)
)

// Page is one slotted page: slot directory grows from the front, tuple
// data from the back.
type Page []byte

// NewPage returns an initialized empty page.
func NewPage() Page {
	p := make(Page, PageBytes)
	p.Init()
	return p
}

// Init formats p as an empty slotted page.
func (p Page) Init() {
	putU16(p, offNSlots, 0)
	putU16(p, offFreeStart, headerBytes)
	putU16(p, offFreeEnd, PageBytes)
}

// NumSlots returns the number of slots on the page.
func (p Page) NumSlots() int { return int(getU16(p, offNSlots)) }

// FreeSpace returns the bytes available for one more tuple (including
// its slot entry).
func (p Page) FreeSpace() int {
	free := int(getU16(p, offFreeEnd)) - int(getU16(p, offFreeStart))
	free -= slotBytes
	if free < 0 {
		return 0
	}
	return free
}

// AddTuple appends a tuple, returning its slot number, or false if the
// page is full.
func (p Page) AddTuple(data []byte) (int, bool) {
	if len(data) > p.FreeSpace() {
		return 0, false
	}
	n := p.NumSlots()
	end := getU16(p, offFreeEnd) - uint16(len(data))
	copy(p[end:], data)
	slotOff := headerBytes + n*slotBytes
	putU16(p, slotOff, end)
	putU16(p, slotOff+2, uint16(len(data)))
	putU16(p, offNSlots, uint16(n+1))
	putU16(p, offFreeStart, uint16(slotOff+slotBytes))
	putU16(p, offFreeEnd, end)
	return n, true
}

// Tuple returns the raw bytes of slot i (aliasing the page buffer).
func (p Page) Tuple(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range (page has %d)", i, p.NumSlots())
	}
	slotOff := headerBytes + i*slotBytes
	off := getU16(p, slotOff)
	ln := getU16(p, slotOff+2)
	return p[off : off+ln], nil
}

func putU16(b []byte, off int, v uint16) { binary.LittleEndian.PutUint16(b[off:], v) }
func getU16(b []byte, off int) uint16    { return binary.LittleEndian.Uint16(b[off:]) }

// TID identifies a stored tuple: (page, slot) within a heap file —
// the item pointer the access methods hand to the executor.
type TID struct {
	Page uint32
	Slot uint16
}

// Less orders TIDs in physical order.
func (t TID) Less(o TID) bool {
	if t.Page != o.Page {
		return t.Page < o.Page
	}
	return t.Slot < o.Slot
}
