package storage

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/db/value"
)

func TestPageAddAndGet(t *testing.T) {
	p := NewPage()
	if p.NumSlots() != 0 {
		t.Fatal("new page must be empty")
	}
	s1, ok := p.AddTuple([]byte("hello"))
	if !ok || s1 != 0 {
		t.Fatalf("first AddTuple = (%d,%v)", s1, ok)
	}
	s2, ok := p.AddTuple([]byte("world!"))
	if !ok || s2 != 1 {
		t.Fatalf("second AddTuple = (%d,%v)", s2, ok)
	}
	got, err := p.Tuple(0)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Tuple(0) = %q, %v", got, err)
	}
	got, err = p.Tuple(1)
	if err != nil || string(got) != "world!" {
		t.Fatalf("Tuple(1) = %q, %v", got, err)
	}
	if _, err := p.Tuple(2); err == nil {
		t.Fatal("Tuple(2) must fail")
	}
	if _, err := p.Tuple(-1); err == nil {
		t.Fatal("Tuple(-1) must fail")
	}
}

func TestPageFillsUp(t *testing.T) {
	p := NewPage()
	data := make([]byte, 100)
	count := 0
	for {
		if _, ok := p.AddTuple(data); !ok {
			break
		}
		count++
	}
	// 8192 - 6 header; each tuple needs 100 + 4 slot bytes.
	want := (PageBytes - headerBytes) / (100 + slotBytes)
	if count != want {
		t.Fatalf("page held %d tuples, want %d", count, want)
	}
	// All tuples still readable after fill.
	for i := 0; i < count; i++ {
		if _, err := p.Tuple(i); err != nil {
			t.Fatalf("Tuple(%d): %v", i, err)
		}
	}
}

func TestPageFreeSpaceNeverNegative(t *testing.T) {
	p := NewPage()
	big := make([]byte, PageBytes/2)
	p.AddTuple(big)
	p.AddTuple(big) // fails
	if p.FreeSpace() < 0 {
		t.Fatal("free space must not go negative")
	}
}

func sampleRow() []value.Value {
	return []value.Value{
		value.NewInt(42),
		value.NewFloat(3.25),
		value.NewStr("BRAZIL"),
		value.NewDate(value.MakeDate(1994, 7, 15)),
		value.NewBool(true),
		value.NewNull(),
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	row := sampleRow()
	enc := EncodeTuple(row, nil)
	dec, err := DecodeTuple(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(row) {
		t.Fatalf("arity %d, want %d", len(dec), len(row))
	}
	for i := range row {
		if row[i].T != dec[i].T {
			t.Fatalf("col %d type %v, want %v", i, dec[i].T, row[i].T)
		}
		if row[i].T != value.Null && value.Compare(row[i], dec[i]) != 0 {
			t.Fatalf("col %d value %v, want %v", i, dec[i], row[i])
		}
	}
}

// Property: encode/decode round-trips arbitrary int/float/string rows.
func TestTupleCodecProperty(t *testing.T) {
	f := func(i int64, fv float64, s string) bool {
		if math.IsNaN(fv) {
			fv = 0
		}
		if len(s) > 60000 {
			s = s[:60000]
		}
		row := []value.Value{value.NewInt(i), value.NewFloat(fv), value.NewStr(s)}
		dec, err := DecodeTuple(EncodeTuple(row, nil), nil)
		if err != nil || len(dec) != 3 {
			return false
		}
		return dec[0].I == i && dec[1].F == fv && dec[2].S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	bad := [][]byte{
		{byte(value.Int)},                    // truncated int
		{byte(value.Str), 10, 0, 'a'},        // truncated string
		{byte(value.Float), 1, 2, 3},         // truncated float
		{byte(value.Bool)},                   // truncated bool
		{250},                                // bad type byte
		append([]byte{byte(value.Str)}, 255), // truncated length
	}
	for i, b := range bad {
		if _, err := DecodeTuple(b, nil); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestStoreReadWrite(t *testing.T) {
	s := NewStore(2)
	if s.NumFiles() != 2 || s.NumPages(0) != 0 {
		t.Fatal("bad initial store")
	}
	pn, err := s.AllocPage(0)
	if err != nil || pn != 0 {
		t.Fatalf("AllocPage = %d, %v", pn, err)
	}
	p := NewPage()
	p.AddTuple([]byte("data"))
	if err := s.WritePage(0, 0, p); err != nil {
		t.Fatal(err)
	}
	dst := NewPage()
	if err := s.ReadPage(0, 0, dst); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Tuple(0)
	if err != nil || string(got) != "data" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if s.Reads() != 1 {
		t.Fatalf("reads = %d, want 1", s.Reads())
	}
}

func TestStoreBoundsChecks(t *testing.T) {
	s := NewStore(1)
	p := NewPage()
	if err := s.ReadPage(0, 0, p); err == nil {
		t.Fatal("read of missing page must fail")
	}
	if err := s.ReadPage(5, 0, p); err == nil {
		t.Fatal("read of missing file must fail")
	}
	if err := s.WritePage(0, 3, p); err == nil {
		t.Fatal("write of missing page must fail")
	}
	if _, err := s.AllocPage(9); err == nil {
		t.Fatal("alloc in missing file must fail")
	}
	s.EnsureFiles(10)
	if _, err := s.AllocPage(9); err != nil {
		t.Fatal("alloc after EnsureFiles must work")
	}
}

func TestTIDLess(t *testing.T) {
	a := TID{Page: 1, Slot: 5}
	b := TID{Page: 1, Slot: 6}
	c := TID{Page: 2, Slot: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) || a.Less(a) {
		t.Fatal("TID ordering broken")
	}
}
