package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Store is the storage manager: a set of page files addressed by file
// ID. Pages are copied in and out (as a disk would), so the only way
// to mutate stored data is an explicit WritePage — the buffer manager
// above is the sole client, mirroring the kernel structure in the
// paper's Figure 1. All methods are safe for concurrent use: page and
// file-table access is guarded by one reader/writer lock, matching a
// disk controller serving requests from many backends.
//
// A store runs in one of two modes, chosen at construction and
// identical through this interface. NewStore keeps every page in
// memory (the original substitution for the paper's Digital Unix
// filesystem). OpenDiskStore persists pages under a data directory as
// immutable checkpoint generations plus an in-memory overlay of
// post-checkpoint writes — see disk.go — which is what the durability
// subsystem builds on.
type Store struct {
	mu    sync.RWMutex
	files [][]Page
	disk  *diskStore // non-nil in disk-backed mode
	reads atomic.Uint64
}

// NewStore returns a store with n pre-created empty files.
func NewStore(n int) *Store {
	return &Store{files: make([][]Page, n)}
}

// EnsureFiles grows the store to at least n files.
func (s *Store) EnsureFiles(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disk != nil {
		s.disk.ensure(n)
		return
	}
	for len(s.files) < n {
		s.files = append(s.files, nil)
	}
}

// NumFiles returns the number of files.
func (s *Store) NumFiles() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.disk != nil {
		return len(s.disk.pages)
	}
	return len(s.files)
}

// NumPages returns the length of a file in pages.
func (s *Store) NumPages(file int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.disk != nil {
		if file < 0 || file >= len(s.disk.pages) {
			return 0
		}
		return s.disk.pages[file]
	}
	if file < 0 || file >= len(s.files) {
		return 0
	}
	return len(s.files[file])
}

// AllocPage appends an empty page to the file and returns its number.
func (s *Store) AllocPage(file int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disk != nil {
		d := s.disk
		if file < 0 || file >= len(d.pages) {
			return 0, fmt.Errorf("storage: no file %d", file)
		}
		page := d.pages[file]
		d.overlay[pageKey{file, page}] = NewPage()
		d.pages[file]++
		return page, nil
	}
	if file < 0 || file >= len(s.files) {
		return 0, fmt.Errorf("storage: no file %d", file)
	}
	s.files[file] = append(s.files[file], NewPage())
	return len(s.files[file]) - 1, nil
}

// ReadPage copies page contents into dst (len PageBytes).
func (s *Store) ReadPage(file, page int, dst Page) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.disk != nil {
		if err := s.disk.readPage(file, page, dst); err != nil {
			return err
		}
		s.reads.Add(1)
		return nil
	}
	if file < 0 || file >= len(s.files) || page < 0 || page >= len(s.files[file]) {
		return fmt.Errorf("storage: read beyond file %d page %d", file, page)
	}
	copy(dst, s.files[file][page])
	s.reads.Add(1)
	return nil
}

// WritePage copies src into the stored page.
func (s *Store) WritePage(file, page int, src Page) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disk != nil {
		return s.disk.writePage(file, page, src)
	}
	if file < 0 || file >= len(s.files) || page < 0 || page >= len(s.files[file]) {
		return fmt.Errorf("storage: write beyond file %d page %d", file, page)
	}
	copy(s.files[file][page], src)
	return nil
}

// Reads returns the number of page reads served (I/O statistic).
func (s *Store) Reads() uint64 { return s.reads.Load() }
