package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/db/value"
)

// EncodeTuple serializes a row into buf (reused if large enough) and
// returns the encoded bytes. Format per value: 1 type byte, then a
// fixed 8-byte payload for Int/Date/Float, 1 byte for Bool, a 2-byte
// length prefix plus bytes for Str, nothing for Null.
func EncodeTuple(vals []value.Value, buf []byte) []byte {
	buf = buf[:0]
	for _, v := range vals {
		buf = append(buf, byte(v.T))
		switch v.T {
		case value.Int, value.Date:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], uint64(v.I))
			buf = append(buf, tmp[:]...)
		case value.Float:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
			buf = append(buf, tmp[:]...)
		case value.Str:
			var tmp [2]byte
			binary.LittleEndian.PutUint16(tmp[:], uint16(len(v.S)))
			buf = append(buf, tmp[:]...)
			buf = append(buf, v.S...)
		case value.Bool:
			b := byte(0)
			if v.I != 0 {
				b = 1
			}
			buf = append(buf, b)
		case value.Null:
			// type byte only
		}
	}
	return buf
}

// DecodeTuple deserializes a row into dst (which must have the arity
// of the encoded tuple) and returns it.
func DecodeTuple(data []byte, dst []value.Value) ([]value.Value, error) {
	dst = dst[:0]
	i := 0
	for i < len(data) {
		t := value.Type(data[i])
		i++
		switch t {
		case value.Int, value.Date:
			if i+8 > len(data) {
				return nil, fmt.Errorf("storage: truncated tuple")
			}
			v := int64(binary.LittleEndian.Uint64(data[i:]))
			i += 8
			dst = append(dst, value.Value{T: t, I: v})
		case value.Float:
			if i+8 > len(data) {
				return nil, fmt.Errorf("storage: truncated tuple")
			}
			f := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
			i += 8
			dst = append(dst, value.NewFloat(f))
		case value.Str:
			if i+2 > len(data) {
				return nil, fmt.Errorf("storage: truncated tuple")
			}
			n := int(binary.LittleEndian.Uint16(data[i:]))
			i += 2
			if i+n > len(data) {
				return nil, fmt.Errorf("storage: truncated tuple")
			}
			dst = append(dst, value.NewStr(string(data[i:i+n])))
			i += n
		case value.Bool:
			if i+1 > len(data) {
				return nil, fmt.Errorf("storage: truncated tuple")
			}
			dst = append(dst, value.NewBool(data[i] != 0))
			i++
		case value.Null:
			dst = append(dst, value.NewNull())
		default:
			return nil, fmt.Errorf("storage: bad type byte %d", t)
		}
	}
	return dst, nil
}
