package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Disk-backed mode. The store's page files live under a data
// directory, organized as immutable checkpoint generations:
//
//	<dir>/gen-000001/f000000.pg   page file 0 of generation 1
//	<dir>/gen-000001/f000003.pg   ...
//
// The files of the current generation are the base: they hold every
// page exactly as it was at the last checkpoint, are opened read-only,
// and are never modified in place. Pages written or allocated since
// the checkpoint live in an in-memory overlay keyed by (file, page);
// reads consult the overlay first and fall back to a positional read
// of the base file. A checkpoint writes the merged state as a brand-new
// generation (hard-linking files with no changes), fsyncs it, and —
// after the caller has durably published a manifest naming it —
// promotes it to base and deletes the old generation. A crash at any
// point therefore leaves either the old complete generation or the new
// complete generation, never a half-written mix.
//
// The overlay is also where the write-ahead log hooks in: a spill
// callback (SetSpill) observes every page write between checkpoints,
// so the engine can journal evicted dirty pages as full page images.

// pageKey addresses one page of one file.
type pageKey struct{ file, page int }

// diskStore is the disk half of Store.
type diskStore struct {
	dir       string
	gen       uint64
	base      []*os.File // per file ID; nil = no base file (empty at checkpoint)
	basePages []int      // page count of each base file
	pages     []int      // current logical page count (base + growth)
	overlay   map[pageKey]Page
	spill     func(file, page int, data []byte) error
}

// genDirName returns the directory of generation gen.
func genDirName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("gen-%06d", gen))
}

// pageFileName returns the page file of file id within a generation
// directory.
func pageFileName(genDir string, file int) string {
	return filepath.Join(genDir, fmt.Sprintf("f%06d.pg", file))
}

// OpenDiskStore opens a disk-backed store rooted at dir over
// checkpoint generation gen with nfiles page files. Generation 0 means
// no checkpoint has happened yet: every file starts empty. Base files
// absent from the generation directory are empty files; a base file
// whose size is not a whole number of pages is corruption (generations
// are fsynced before their manifest is published).
func OpenDiskStore(dir string, gen uint64, nfiles int) (*Store, error) {
	d := &diskStore{
		dir:     dir,
		gen:     gen,
		overlay: make(map[pageKey]Page),
	}
	s := &Store{disk: d}
	if err := d.ensure(nfiles); err != nil {
		return nil, err
	}
	if gen == 0 {
		return s, nil
	}
	genDir := genDirName(dir, gen)
	for id := 0; id < nfiles; id++ {
		f, err := os.Open(pageFileName(genDir, id))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if st.Size()%PageBytes != 0 {
			f.Close()
			return nil, fmt.Errorf("storage: page file %s has partial page (%d bytes)", f.Name(), st.Size())
		}
		d.base[id] = f
		d.basePages[id] = int(st.Size() / PageBytes)
		d.pages[id] = d.basePages[id]
	}
	return s, nil
}

// ensure grows the per-file bookkeeping to n files.
func (d *diskStore) ensure(n int) error {
	for len(d.pages) < n {
		d.base = append(d.base, nil)
		d.basePages = append(d.basePages, 0)
		d.pages = append(d.pages, 0)
	}
	return nil
}

// SetSpill installs the page-write observer called (under the store
// lock) for every WritePage in disk mode — the engine's hook for
// journaling evicted dirty pages to the write-ahead log. A nil
// observer disables spilling. Install before concurrent use.
func (s *Store) SetSpill(fn func(file, page int, data []byte) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disk.spill = fn
}

// DiskBacked reports whether the store persists pages under a data
// directory.
func (s *Store) DiskBacked() bool { return s.disk != nil }

// Generation returns the current checkpoint generation (disk mode).
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.disk.gen
}

func (d *diskStore) readPage(file, page int, dst Page) error {
	if file < 0 || file >= len(d.pages) || page < 0 || page >= d.pages[file] {
		return fmt.Errorf("storage: read beyond file %d page %d", file, page)
	}
	if p, ok := d.overlay[pageKey{file, page}]; ok {
		copy(dst, p)
		return nil
	}
	if page >= d.basePages[file] || d.base[file] == nil {
		return fmt.Errorf("storage: file %d page %d missing from base and overlay", file, page)
	}
	_, err := d.base[file].ReadAt(dst[:PageBytes], int64(page)*PageBytes)
	return err
}

// writePage installs src into the overlay; spill (when set and enabled
// by the caller's flag) journals the image.
func (d *diskStore) writePage(file, page int, src Page) error {
	if file < 0 || file >= len(d.pages) || page < 0 || page >= d.pages[file] {
		return fmt.Errorf("storage: write beyond file %d page %d", file, page)
	}
	k := pageKey{file, page}
	p, ok := d.overlay[k]
	if !ok {
		p = make(Page, PageBytes)
		d.overlay[k] = p
	}
	copy(p, src)
	if d.spill != nil {
		return d.spill(file, page, p)
	}
	return nil
}

// InstallRecovered overwrites one page with a logged image during
// write-ahead-log replay: exactly writePage without the spill hook
// (replay must not re-journal what it reads from the journal).
func (s *Store) InstallRecovered(file, page int, data []byte) error {
	if len(data) != PageBytes {
		return fmt.Errorf("storage: recovered page image is %d bytes, want %d", len(data), PageBytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.disk
	if file < 0 || file >= len(d.pages) || page < 0 || page >= d.pages[file] {
		return fmt.Errorf("storage: recovered page beyond file %d page %d", file, page)
	}
	k := pageKey{file, page}
	p, ok := d.overlay[k]
	if !ok {
		p = make(Page, PageBytes)
		d.overlay[k] = p
	}
	copy(p, data)
	return nil
}

// WriteGeneration materializes the store's current state as generation
// gen on disk: one page file per non-empty file, each either written
// page by page (base + overlay merged) or hard-linked from the current
// base when nothing in the file changed. Every written file and the
// generation directory are fsynced. The base and overlay are left
// untouched — call PromoteGeneration after the new generation has been
// durably named by a manifest.
func (s *Store) WriteGeneration(gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.disk
	genDir := genDirName(d.dir, gen)
	// A leftover directory from a checkpoint that crashed before its
	// manifest landed is garbage; rebuild from scratch.
	if err := os.RemoveAll(genDir); err != nil {
		return err
	}
	if err := os.MkdirAll(genDir, 0o755); err != nil {
		return err
	}
	changed := make(map[int]bool)
	for k := range d.overlay {
		changed[k.file] = true
	}
	buf := make(Page, PageBytes)
	for id := range d.pages {
		n := d.pages[id]
		if n == 0 {
			continue
		}
		dst := pageFileName(genDir, id)
		if !changed[id] && n == d.basePages[id] && d.base[id] != nil {
			if err := os.Link(d.base[id].Name(), dst); err == nil {
				continue
			}
			// Cross-device or filesystem without hard links: fall
			// through to a full copy.
		}
		f, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		for p := 0; p < n; p++ {
			if err := d.readPage(id, p, buf); err != nil {
				f.Close()
				return err
			}
			if _, err := f.Write(buf); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return SyncDir(genDir)
}

// PromoteGeneration switches the store's base to generation gen
// (previously written by WriteGeneration and named by a durable
// manifest), drops the overlay, and deletes every other generation
// directory. The new generation's files are all opened before any old
// handle is released: a failure mid-way leaves the store exactly as it
// was, still serving reads from the old base.
func (s *Store) PromoteGeneration(gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.disk
	genDir := genDirName(d.dir, gen)
	newBase := make([]*os.File, len(d.pages))
	for id := range d.pages {
		if d.pages[id] == 0 {
			continue
		}
		f, err := os.Open(pageFileName(genDir, id))
		if err != nil {
			for _, nf := range newBase {
				if nf != nil {
					nf.Close()
				}
			}
			return err
		}
		newBase[id] = f
	}
	for id := range d.pages {
		if d.base[id] != nil {
			d.base[id].Close()
		}
		d.base[id] = newBase[id]
		d.basePages[id] = d.pages[id]
	}
	d.overlay = make(map[pageKey]Page)
	d.gen = gen
	return RemoveStaleGenerations(d.dir, gen)
}

// RemoveStaleGenerations deletes every generation directory under dir
// except keep — cleanup for checkpoints and for recovery after a crash
// that left a half-written or superseded generation behind.
func RemoveStaleGenerations(dir string, keep uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "gen-") {
			continue
		}
		if keep > 0 && e.Name() == filepath.Base(genDirName(dir, keep)) {
			continue
		}
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the disk store's file handles (no-op in memory mode).
func (s *Store) Close() error {
	if s.disk == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, f := range s.disk.base {
		if f != nil {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			s.disk.base[id] = nil
		}
	}
	return first
}

// SyncDir fsyncs a directory, making the creates and renames inside
// it durable. Shared by the storage and engine durability paths (the
// wal package carries its own copy to stay dependency-free).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
