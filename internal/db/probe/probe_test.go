package probe

import (
	"sync"
	"testing"
)

func TestOrNilYieldsNop(t *testing.T) {
	tr := Or(nil)
	if _, ok := tr.(NopTracer); !ok {
		t.Fatalf("Or(nil) = %T, want NopTracer", tr)
	}
	tr.Emit(BufGetEnter) // must not panic
	ct := NewCountingTracer()
	if got := Or(ct); got != Tracer(ct) {
		t.Fatalf("Or(non-nil) must return its argument")
	}
}

func TestCounterSetRegistration(t *testing.T) {
	s := NewCounterSet()
	a := s.Register("buf.hits")
	b := s.Register("buf.hits")
	if a != b {
		t.Fatalf("Register must be idempotent: got two distinct counters for one name")
	}
	if s.Lookup("buf.hits") != a {
		t.Fatalf("Lookup must return the registered counter")
	}
	if s.Lookup("nope") != nil {
		t.Fatalf("Lookup of an unregistered name must return nil")
	}
	s.Register("buf.misses")
	names := s.Names()
	if len(names) != 2 || names[0] != "buf.hits" || names[1] != "buf.misses" {
		t.Fatalf("Names = %v, want sorted [buf.hits buf.misses]", names)
	}
	if a.Name() != "buf.hits" {
		t.Fatalf("Name = %q, want buf.hits", a.Name())
	}
}

func TestCounterSetResetSemantics(t *testing.T) {
	s := NewCounterSet()
	c := s.Register("events")
	c.Add(41)
	c.Inc()
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	snap := s.Snapshot()
	if snap["events"] != 42 {
		t.Fatalf("Snapshot = %v, want events:42", snap)
	}
	s.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after Reset, Load = %d, want 0", got)
	}
	// Registration survives the reset: the same pointer keeps counting.
	if s.Register("events") != c {
		t.Fatalf("Reset must not drop registrations")
	}
	c.Inc()
	if got := s.Snapshot()["events"]; got != 1 {
		t.Fatalf("post-reset count = %d, want 1", got)
	}
}

// TestCounterConcurrentIncrements asserts no lost updates: G
// goroutines × N increments on counters shared through one set must
// total exactly G*N.
func TestCounterConcurrentIncrements(t *testing.T) {
	const goroutines, perG = 16, 10000
	s := NewCounterSet()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every goroutine registers the same names itself,
			// exercising concurrent registration too.
			hits := s.Register("hits")
			odd := s.Register("odd")
			for i := 0; i < perG; i++ {
				hits.Inc()
				if i%2 == 1 {
					odd.Inc()
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Lookup("hits").Load(); got != goroutines*perG {
		t.Fatalf("hits = %d, want %d (lost updates)", got, goroutines*perG)
	}
	if got := s.Lookup("odd").Load(); got != goroutines*perG/2 {
		t.Fatalf("odd = %d, want %d", got, goroutines*perG/2)
	}
}

func TestCountingTracerCounts(t *testing.T) {
	ct := NewCountingTracer()
	ct.Emit(BufGetEnter)
	ct.Emit(BufGetEnter)
	ct.Emit(BufGetHit)
	ct.Emit(ID(-1))    // out of range: ignored, not a panic
	ct.Emit(NumProbes) // sentinel: ignored
	if got := ct.Count(BufGetEnter); got != 2 {
		t.Fatalf("Count(BufGetEnter) = %d, want 2", got)
	}
	if got := ct.Count(BufGetHit); got != 1 {
		t.Fatalf("Count(BufGetHit) = %d, want 1", got)
	}
	if got := ct.Count(ID(-1)); got != 0 {
		t.Fatalf("Count out of range = %d, want 0", got)
	}
	if got := ct.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	ct.Reset()
	if got := ct.Total(); got != 0 {
		t.Fatalf("after Reset, Total = %d, want 0", got)
	}
}

// TestCountingTracerConcurrent shares one tracer across goroutines
// emitting distinct and overlapping probes; per-probe totals must be
// exact.
func TestCountingTracerConcurrent(t *testing.T) {
	const goroutines, perG = 16, 10000
	ct := NewCountingTracer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := ID(g % int(NumProbes)) // overlapping across goroutines
			for i := 0; i < perG; i++ {
				ct.Emit(own)
				ct.Emit(ExecProcEnter)
			}
		}(g)
	}
	wg.Wait()
	if got := ct.Total(); got != 2*goroutines*perG {
		t.Fatalf("Total = %d, want %d (lost updates)", got, 2*goroutines*perG)
	}
	// ExecProcEnter got one emission per loop from every goroutine,
	// plus perG extra from the goroutine whose own ID it is.
	want := uint64(goroutines * perG)
	if int(ExecProcEnter) < goroutines {
		want += perG
	}
	if got := ct.Count(ExecProcEnter); got != want {
		t.Fatalf("Count(ExecProcEnter) = %d, want %d", got, want)
	}
}
