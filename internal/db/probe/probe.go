// Package probe defines the instrumentation points woven through the
// database kernel. Each probe names a control-flow event — a function
// entry, a branch direction, a call site, a return path — that the
// kernel image (package kernel) maps to a path of basic blocks in the
// synthetic program model. Running a query with a real tracer attached
// therefore produces the dynamic basic-block trace the paper obtains
// by instrumenting the PostgreSQL binary with ATOM.
//
// Probes follow a strict call protocol so traces validate against the
// static CFG: a probe whose path ends in a call block must be followed
// by the callee's entry probe; a probe whose path ends in a return
// block must be followed by the caller's continuation probe. The
// validating trace recorder enforces this in tests.
package probe

// ID names one instrumentation point.
type ID int32

// Tracer receives probe events. The zero-cost NopTracer is used when
// queries run untraced.
type Tracer interface {
	Emit(ID)
}

// NopTracer discards all events.
type NopTracer struct{}

// Emit implements Tracer.
func (NopTracer) Emit(ID) {}

// Or returns t, or a NopTracer if t is nil, so callees can emit
// unconditionally.
func Or(t Tracer) Tracer {
	if t == nil {
		return NopTracer{}
	}
	return t
}

// Probe identifiers, grouped by the kernel function they instrument.
// The kernel package defines the matching basic-block paths.
const (
	// ReadBuffer (buffer manager page lookup).
	BufGetEnter    ID = iota // entry + call BufTableLookup
	BufTableLookup           // BufTableLookup body (leaf)
	BufGetHit                // hit branch, returns
	BufGetMiss               // miss branch + call StrategyGetBuffer
	BufClockEnter            // StrategyGetBuffer entry
	BufClockSkip             // clock sweep: frame examined and skipped
	BufClockTake             // clock sweep: victim chosen, returns
	BufGetRead               // continuation + call smgrread
	SmgrRead                 // smgrread body (leaf)
	BufGetFill               // fill + pin, returns

	// heap_getnext (HeapScan.Next).
	HeapGetNextEnter    // entry
	HeapGetNextPage     // need next page + call ReadBuffer
	HeapGetNextPageCont // continuation
	HeapGetNextTuple    // tuple available + call heap_deform
	HeapDeform          // heap_deform_tuple body (leaf)
	HeapGetNextEmit     // returns with a tuple
	HeapGetNextNewPage  // page exhausted: release, loop to next page
	HeapGetNextEOF      // end of relation, returns

	// heap_fetch (Heap.Fetch by TID).
	HeapFetchEnter // entry + call ReadBuffer
	HeapFetchCont  // continuation + call heap_deform
	HeapFetchEmit  // returns

	// bt_search (BTree descent: SeekGE / SeekFirst).
	BtSearchEnter // entry + call ReadBuffer (meta page)
	BtSearchMeta  // continuation after meta read
	BtSearchLevel // one level + call ReadBuffer
	BtSearchCont  // internal node: binary search, loop down
	BtSearchDone  // leaf reached, returns

	// bt_next (BTreeScan.Next).
	BtNextEnter // entry + call ReadBuffer (leaf page)
	BtNextEmit  // entry available in leaf, returns
	BtNextStep  // advance to right sibling, loop
	BtNextEOF   // chain exhausted, returns
	BtNextDone  // called after EOF, returns immediately

	// hash_search (HashIndex.Lookup) and hash scan (HashScan.Next).
	HashSearchEnter // entry + call hashint4
	HashFunc        // hashint4 body (leaf)
	HashSearchCont  // continuation, returns
	HashNextEnter   // scan step entry + call ReadBuffer
	HashNextCont    // continuation
	HashNextCmp     // one entry compared, not a match (loop)
	HashNextEmit    // match found, returns
	HashNextChain   // follow overflow chain (loop)
	HashNextEOF     // chain exhausted, returns
	HashNextDone    // called after EOF, returns immediately

	// ExecProcNode (executor dispatch; wraps every child call).
	ExecProcEnter // entry + indirect call to the node routine
	ExecProcExit  // return path back to the caller

	// ExecQual (conjunctive predicate evaluation).
	ExecQualEnter // entry
	ExecQualExpr  // next clause + call ExecEvalExpr
	ExecQualCont  // clause true, loop
	ExecQualPass  // all clauses true, returns
	ExecQualFail  // clause false, returns

	// ExecEvalExpr (recursive expression evaluator).
	EvalExprVar     // variable leaf, returns
	EvalExprConst   // constant leaf, returns
	EvalExprOpCall  // operator node + recurse into first argument
	EvalExprOp2     // continuation + recurse into second argument
	EvalExprOpCont  // continuation + indirect call to operator function
	EvalExprOp1Only // unary operator: skip to the indirect call
	EvalExprRet     // returns

	// Operator functions (fmgr targets; leaf bodies).
	CmpInt  // btint4cmp / int4eq
	CmpFlt  // btfloat8cmp / float8 ops
	CmpStr  // bttextcmp / texteq
	CmpDate // btdatecmp / date ops
	ArithOp // int4pl, float8mul, ...
	BoolOp  // boolean combiners / list membership
	LikeOp  // textlike pattern matcher

	// ExecProject (target-list projection).
	ProjectEnter   // entry
	ProjectCol     // next column + call ExecEvalExpr
	ProjectColCont // continuation, loop
	ProjectDone    // tuple formed, returns

	// ExecResult (projection wrapper node).
	ResultCall    // entry + call ExecProcNode(child)
	ResultCont    // continuation
	ResultProject // tuple obtained: call ExecProject
	ResultDone    // projection done, returns
	ResultEOF     // child drained, returns

	// ExecSeqScan (also the skeleton for Filter and ValuesScan).
	SeqScanEnter      // entry
	SeqScanCall       // call heap_getnext (indirect: scan dispatch)
	SeqScanCont       // continuation
	SeqScanQualCall   // call ExecQual
	SeqScanQualCont   // continuation
	SeqScanEmit       // qualifying tuple, returns
	SeqScanEmitDirect // no qualifier: emit directly, returns
	SeqScanNext       // disqualified, loop
	SeqScanEOF        // relation exhausted, returns

	// ExecIndexScan.
	IdxScanEnter      // entry
	IdxScanInit       // first call: indirect call to bt/hash search
	IdxScanInitCont   // continuation, loop to the scan loop
	IdxScanNextCall   // indirect call to bt_next / hash next
	IdxScanNextCont   // continuation
	IdxScanFetch      // call heap_fetch
	IdxScanCont       // continuation
	IdxScanQualCall   // call ExecQual
	IdxScanQualCont   // continuation
	IdxScanEmit       // qualifying tuple, returns
	IdxScanEmitDirect // no qualifier: emit directly, returns
	IdxScanNext       // disqualified, loop
	IdxScanEOF        // index exhausted, returns

	// ExecNestLoop (plain and index flavours).
	NLEnter      // entry
	NLOuterCall  // call ExecProcNode(outer)
	NLOuterCont  // continuation
	NLOuterOK    // outer tuple obtained, proceed to inner
	NLStartScan  // index flavour: indirect call to bt/hash search
	NLStartCont  // continuation, proceed to inner pulls
	NLInnerCall  // indirect call: inner plan or index probe
	NLInnerCont  // continuation
	NLJoin       // no heap fetch needed: form joined row
	NLFetch      // call heap_fetch for an index match
	NLFetchCont  // continuation: form joined row
	NLRescan     // inner exhausted: rescan for next outer, loop
	NLQualCall   // call ExecQual on the joined row
	NLQualCont   // continuation
	NLNext       // disqualified, loop
	NLEmit       // match after qualifier, returns
	NLEmitDirect // match without qualifier, returns
	NLEOF        // outer exhausted, returns

	// ExecHashJoin.
	HJEnter        // entry
	HJResume       // re-entry with the hash table already built
	HJBuildStart   // build phase init (hash table allocation)
	HJBuildCall    // build: call ExecProcNode(inner)
	HJBuildCont    // continuation
	HJBuildInsert  // call hashint4 for the inner key
	HJBuildInsCont // continuation + insert into hash table, loop
	HJBuildDone    // build finished, proceed to outer fetch
	HJOuterCall    // probe: call ExecProcNode(outer)
	HJOuterCont    // continuation
	HJProbeCall    // call hashint4 for the outer key
	HJProbeCont    // continuation + bucket lookup
	HJCandCall     // call equality function on a bucket candidate
	HJCandCont     // continuation
	HJCandMiss     // candidate key differs, next candidate (loop)
	HJCandNext     // qualifier failed, next candidate (loop)
	HJBucketDone   // bucket drained, fetch next outer
	HJQualCall     // call ExecQual on the joined row
	HJQualCont     // continuation
	HJMatch        // match after qualifier, returns
	HJMatchDirect  // match without qualifier, returns
	HJEOF          // outer exhausted, returns

	// ExecMergeJoin.
	MJEnter     // entry
	MJOuterCall // call ExecProcNode(outer)
	MJOuterCont // continuation
	MJInnerCall // call ExecProcNode(inner)
	MJInnerCont // continuation
	MJCmpCall   // call comparator on the join keys
	MJCmpCont   // continuation
	MJQualCall  // call ExecQual on the joined row
	MJQualCont  // continuation
	MJEmit      // match, returns
	MJEOF       // an input exhausted, returns

	// ExecSort (load, qsort, drain).
	SortEnter    // entry
	SortLoadCall // load: call ExecProcNode(child)
	SortLoadCont // continuation
	SortLoadOK   // tuple appended to the workspace, loop
	SortSortCall // input loaded: call qsort
	QsortEnter   // qsort entry
	QsortCmpCall // qsort: indirect call to the tuple comparator
	QsortCmpCont // continuation, loop
	QsortRet     // qsort returns
	SortSortCont // continuation after qsort
	SortEmit     // emit next sorted tuple, returns
	SortEOF      // workspace drained, returns

	// Tuple comparator (called indirectly by qsort/group/mergejoin).
	TupCmpEnter   // entry
	TupCmpCol     // next key column + indirect call to btXXXcmp
	TupCmpColCont // continuation, loop
	TupCmpDone    // decided, returns

	// ExecAgg (plain aggregation).
	AggEnter         // entry
	AggChildCall     // call ExecProcNode(child)
	AggChildCont     // continuation
	AggAdvance       // next aggregate: call ExecEvalExpr
	AggAdvanceCont   // transition applied, next aggregate (loop)
	AggAdvanceLast   // transition applied, last aggregate: next tuple
	AggCountStar     // COUNT(*): bump counter, next aggregate (loop)
	AggCountStarLast // COUNT(*) as last aggregate: next tuple
	AggEmit          // input drained: form result row, returns
	AggEOF           // called again, returns empty

	// ExecGroup (grouped aggregation over sorted input).
	GrpEnter         // entry
	GrpFirstCall     // fetch first row of a group: call ExecProcNode
	GrpFirstCont     // continuation
	GrpFirstEOF      // no first row: input empty, returns
	GrpAccum         // begin accumulating a freshly fetched head
	GrpAccumPend     // begin accumulating the pending head
	GrpAdvance       // next aggregate: call ExecEvalExpr
	GrpAdvanceCont   // transition applied, next aggregate (loop)
	GrpAdvanceLast   // transition applied, last aggregate
	GrpCountStar     // COUNT(*): bump counter, next aggregate (loop)
	GrpCountStarLast // COUNT(*) as last aggregate
	GrpChildCall     // fetch next row: call ExecProcNode(child)
	GrpChildCont     // continuation
	GrpCmpCall       // call tuple comparator on group columns
	GrpCmpCont       // continuation
	GrpSame          // same group: accumulate, loop
	GrpEmit          // boundary: emit finished group, returns
	GrpDrain         // input drained: emit final group, returns
	GrpEOF           // already drained, returns

	// ExecMaterial.
	MatEnter     // entry
	MatChildCall // first pass: call ExecProcNode(child)
	MatChildCont // continuation
	MatLoadOK    // tuple appended to the store, loop
	MatLoadDone  // child drained: store complete
	MatEmit      // emit stored tuple, returns
	MatEOF       // store drained, returns

	// ExecLimit.
	LimEnter     // entry
	LimChildCall // call ExecProcNode(child)
	LimChildCont // continuation
	LimEmit      // within limit, returns
	LimDrained   // child drained, returns
	LimEOF       // limit already reached, returns

	// NumProbes is the number of probe IDs (sentinel).
	NumProbes
)
