package probe

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one named, atomically updated event counter. The zero
// value is unusable; obtain counters from a CounterSet so names stay
// unique and resettable as a group.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the counter's registration name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// reset zeroes the counter (via CounterSet.Reset).
func (c *Counter) reset() { c.v.Store(0) }

// CounterSet is a registry of named counters, safe for concurrent
// registration, increment and snapshot — the bookkeeping side of the
// instrumentation, used where full block traces are too heavy: the
// buffer pool keeps its hit/miss statistics in one ("buffer.hits",
// "buffer.misses").
type CounterSet struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewCounterSet returns an empty registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{counters: make(map[string]*Counter)}
}

// Register returns the counter with the given name, creating it on
// first use — registering the same name twice yields the same
// counter, so independent subsystems can share one by agreement.
func (s *CounterSet) Register(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	s.counters[name] = c
	return c
}

// Lookup returns the named counter, or nil if never registered.
func (s *CounterSet) Lookup(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Names lists the registered counter names, sorted.
func (s *CounterSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.counters))
	for n := range s.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of all counts by name. Counters still being
// incremented concurrently are read atomically, but the map is not
// one global atomic snapshot.
func (s *CounterSet) Snapshot() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.counters))
	for n, c := range s.counters {
		out[n] = c.Load()
	}
	return out
}

// Reset zeroes every registered counter. Registration survives a
// reset: the same *Counter pointers keep counting from zero.
func (s *CounterSet) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		c.reset()
	}
}

// CountingTracer counts probe emissions per probe ID with atomic
// increments instead of recording a trace. Unlike a kernel trace
// Session (which is single-threaded by design), a CountingTracer may
// be shared by any number of goroutines — parallel-scan workers all
// emit into one, keeping their off-trace kernel work accounted for —
// and totals are exact under concurrency.
type CountingTracer struct {
	counts [NumProbes]atomic.Uint64
}

// NewCountingTracer returns a zeroed counting tracer.
func NewCountingTracer() *CountingTracer { return &CountingTracer{} }

var _ Tracer = (*CountingTracer)(nil)

// Emit implements Tracer.
func (t *CountingTracer) Emit(id ID) {
	if id >= 0 && id < NumProbes {
		t.counts[id].Add(1)
	}
}

// Count returns the number of emissions of one probe.
func (t *CountingTracer) Count(id ID) uint64 {
	if id < 0 || id >= NumProbes {
		return 0
	}
	return t.counts[id].Load()
}

// Total returns the number of emissions across all probes.
func (t *CountingTracer) Total() uint64 {
	var n uint64
	for i := range t.counts {
		n += t.counts[i].Load()
	}
	return n
}

// Reset zeroes all per-probe counts.
func (t *CountingTracer) Reset() {
	for i := range t.counts {
		t.counts[i].Store(0)
	}
}
