package value

import (
	"testing"
	"testing/quick"
)

func TestCompareInts(t *testing.T) {
	if Compare(NewInt(1), NewInt(2)) != -1 ||
		Compare(NewInt(2), NewInt(1)) != 1 ||
		Compare(NewInt(7), NewInt(7)) != 0 {
		t.Fatal("int compare broken")
	}
}

func TestCompareMixedIntFloat(t *testing.T) {
	if Compare(NewInt(2), NewFloat(2.5)) != -1 {
		t.Fatal("int vs float coercion broken")
	}
	if Compare(NewFloat(3.0), NewInt(3)) != 0 {
		t.Fatal("equal int/float should compare 0")
	}
}

func TestCompareStrings(t *testing.T) {
	if Compare(NewStr("abc"), NewStr("abd")) != -1 {
		t.Fatal("string compare broken")
	}
	if Compare(NewStr("b"), NewStr("a")) != 1 {
		t.Fatal("string compare broken")
	}
}

func TestNullSortsFirst(t *testing.T) {
	if Compare(NewNull(), NewInt(-1<<62)) != -1 {
		t.Fatal("NULL must sort before any value")
	}
	if Compare(NewInt(0), NewNull()) != 1 {
		t.Fatal("value must sort after NULL")
	}
	if Compare(NewNull(), NewNull()) != 0 {
		t.Fatal("NULL == NULL for sorting")
	}
	if Equal(NewNull(), NewNull()) {
		t.Fatal("NULL must not be Equal to NULL")
	}
}

func TestBoolAndString(t *testing.T) {
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Fatal("bool payload broken")
	}
	cases := map[string]Value{
		"42":         NewInt(42),
		"3.50":       NewFloat(3.5),
		"hello":      NewStr("hello"),
		"t":          NewBool(true),
		"f":          NewBool(false),
		"NULL":       NewNull(),
		"1992-03-02": NewDate(MakeDate(1992, 3, 2)),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.T, got, want)
		}
	}
}

func TestHashEqualValuesHashEqual(t *testing.T) {
	f := func(x int64) bool {
		return Hash(NewInt(x)) == Hash(NewInt(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Hash(NewStr("foo")) == Hash(NewStr("bar")) {
		t.Fatal("suspicious string hash collision")
	}
	if Hash(NewInt(1)) == Hash(NewInt(2)) {
		t.Fatal("suspicious int hash collision")
	}
}

func TestHashDistinguishesTypes(t *testing.T) {
	if Hash(NewInt(0)) == Hash(NewDate(0)) {
		t.Fatal("hash should mix the type tag")
	}
}

func TestMakeDateKnownValues(t *testing.T) {
	cases := []struct {
		y, m, d int
		want    int64
	}{
		{1970, 1, 1, 0},
		{1970, 1, 2, 1},
		{1970, 2, 1, 31},
		{1971, 1, 1, 365},
		{1972, 3, 1, 365 + 365 + 31 + 29}, // 1972 is a leap year
		{1969, 12, 31, -1},
		{1992, 1, 1, 8035},
	}
	for _, c := range cases {
		if got := MakeDate(c.y, c.m, c.d); got != c.want {
			t.Errorf("MakeDate(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, got, c.want)
		}
	}
}

// Property: FormatDate(MakeDate(y,m,d)) round-trips for the TPC-D date
// range (1992..1998).
func TestDateRoundTrip(t *testing.T) {
	for y := 1992; y <= 1998; y++ {
		for m := 1; m <= 12; m++ {
			dmax := daysPerMonth[m-1]
			if m == 2 && isLeap(y) {
				dmax++
			}
			for d := 1; d <= dmax; d++ {
				days := MakeDate(y, m, d)
				s := FormatDate(days)
				back, err := ParseDate(s)
				if err != nil {
					t.Fatalf("ParseDate(%q): %v", s, err)
				}
				if back != days {
					t.Fatalf("round trip %04d-%02d-%02d: %d -> %q -> %d", y, m, d, days, s, back)
				}
			}
		}
	}
}

// Property: dates order like their calendar tuple.
func TestDateMonotone(t *testing.T) {
	prev := MakeDate(1991, 12, 31)
	for y := 1992; y <= 1994; y++ {
		for m := 1; m <= 12; m++ {
			cur := MakeDate(y, m, 15)
			if cur <= prev {
				t.Fatalf("dates must be monotone: %d-%d", y, m)
			}
			prev = cur
		}
	}
}

func TestParseDateErrors(t *testing.T) {
	for _, s := range []string{"", "1992/01/01", "92-01-01", "1992-13-01", "1992-00-10", "1992-01-32", "abcd-ef-gh"} {
		if _, err := ParseDate(s); err == nil {
			t.Errorf("ParseDate(%q) should fail", s)
		}
	}
}

func TestTypeString(t *testing.T) {
	want := map[Type]string{
		Int: "integer", Float: "float", Str: "varchar",
		Date: "date", Bool: "boolean", Null: "null",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q", ty, ty.String())
		}
	}
}
