// Package value defines the datum type system of the database kernel:
// the typed values that flow through the executor, with comparison,
// hashing and serialization. The TPC-D schema needs integers, decimals
// (represented as float64, as PostgreSQL 6.3's float8), fixed and
// variable strings, and dates (days since epoch).
package value

import (
	"fmt"
	"strconv"
)

// Type enumerates the supported column types.
type Type uint8

const (
	// Int is a 64-bit signed integer (covers int4/int8 keys).
	Int Type = iota
	// Float is a float8 (TPC-D decimal columns).
	Float
	// Str is a variable-length string (char/varchar/text).
	Str
	// Date is a day count since 1970-01-01.
	Date
	// Bool is a boolean (intermediate predicate results).
	Bool
	// Null is the type of the SQL NULL value.
	Null
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "integer"
	case Float:
		return "float"
	case Str:
		return "varchar"
	case Date:
		return "date"
	case Bool:
		return "boolean"
	case Null:
		return "null"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Value is one datum. The representation is a tagged union: I holds
// Int/Date/Bool (0 or 1), F holds Float, S holds Str.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// NewInt returns an integer datum.
func NewInt(v int64) Value { return Value{T: Int, I: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Value { return Value{T: Float, F: v} }

// NewStr returns a string datum.
func NewStr(v string) Value { return Value{T: Str, S: v} }

// NewDate returns a date datum from a day number.
func NewDate(days int64) Value { return Value{T: Date, I: days} }

// NewBool returns a boolean datum.
func NewBool(v bool) Value {
	if v {
		return Value{T: Bool, I: 1}
	}
	return Value{T: Bool}
}

// NewNull returns the NULL datum.
func NewNull() Value { return Value{T: Null} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.T == Null }

// Bool returns the boolean payload (false for anything non-true).
func (v Value) Bool() bool { return v.T == Bool && v.I != 0 }

// String formats the datum for result output.
func (v Value) String() string {
	switch v.T {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'f', 2, 64)
	case Str:
		return v.S
	case Date:
		return FormatDate(v.I)
	case Bool:
		if v.I != 0 {
			return "t"
		}
		return "f"
	case Null:
		return "NULL"
	}
	return "?"
}

// Compare orders two values of the same type family: -1, 0 or +1.
// NULL sorts before everything (PostgreSQL 6.3 semantics for sort).
// Int and Date compare numerically with each other; comparing Float
// with Int coerces the Int.
func Compare(a, b Value) int {
	if a.T == Null || b.T == Null {
		switch {
		case a.T == Null && b.T == Null:
			return 0
		case a.T == Null:
			return -1
		default:
			return 1
		}
	}
	if a.T == Float || b.T == Float {
		af, bf := a.asFloat(), b.asFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.T == Str {
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	}
	// Int, Date, Bool: integer payloads.
	switch {
	case a.I < b.I:
		return -1
	case a.I > b.I:
		return 1
	default:
		return 0
	}
}

func (v Value) asFloat() float64 {
	if v.T == Float {
		return v.F
	}
	return float64(v.I)
}

// Equal reports datum equality under Compare semantics.
func Equal(a, b Value) bool { return a.T != Null && b.T != Null && Compare(a, b) == 0 }

// Hash returns a 64-bit hash of the datum (FNV-1a over the canonical
// payload), used by hash indices, hash joins and hash aggregation.
func Hash(v Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix(byte(v.T))
	switch v.T {
	case Str:
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	case Float:
		// Hash floats by their decimal representation to keep
		// -0.0 == 0.0 consistent with Compare.
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		for i := 0; i < len(s); i++ {
			mix(s[i])
		}
	default:
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	}
	return h
}

// daysPerMonth in a non-leap year.
var daysPerMonth = [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

func isLeap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

// MakeDate converts a calendar date to a day number since 1970-01-01.
func MakeDate(year, month, day int) int64 {
	var days int64
	if year >= 1970 {
		for y := 1970; y < year; y++ {
			days += 365
			if isLeap(y) {
				days++
			}
		}
	} else {
		for y := year; y < 1970; y++ {
			days -= 365
			if isLeap(y) {
				days--
			}
		}
	}
	for m := 1; m < month; m++ {
		days += int64(daysPerMonth[m-1])
		if m == 2 && isLeap(year) {
			days++
		}
	}
	return days + int64(day-1)
}

// FormatDate renders a day number as YYYY-MM-DD.
func FormatDate(days int64) string {
	y := 1970
	for {
		ylen := int64(365)
		if isLeap(y) {
			ylen++
		}
		if days >= ylen {
			days -= ylen
			y++
		} else if days < 0 {
			y--
			ylen = 365
			if isLeap(y) {
				ylen++
			}
			days += ylen
		} else {
			break
		}
	}
	m := 1
	for {
		mlen := int64(daysPerMonth[m-1])
		if m == 2 && isLeap(y) {
			mlen++
		}
		if days >= mlen {
			days -= mlen
			m++
		} else {
			break
		}
	}
	return fmt.Sprintf("%04d-%02d-%02d", y, m, int(days)+1)
}

// ParseDate parses YYYY-MM-DD into a day number.
func ParseDate(s string) (int64, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, fmt.Errorf("value: bad date %q", s)
	}
	y, err1 := strconv.Atoi(s[0:4])
	m, err2 := strconv.Atoi(s[5:7])
	d, err3 := strconv.Atoi(s[8:10])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("value: bad date %q", s)
	}
	return MakeDate(y, m, d), nil
}
