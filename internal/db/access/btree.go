package access

import (
	"encoding/binary"
	"fmt"

	"repro/internal/db/buffer"
	"repro/internal/db/probe"
	"repro/internal/db/storage"
)

// B-tree with int64 keys (TPC-D primary and foreign keys are integers;
// dates are day numbers). Duplicates are allowed (multi-entry foreign
// key indices) and ordered by (key, TID).
//
// File layout:
//
//	page 0: meta — root(4) | height(4)
//	nodes:  kind(1) | nkeys(2) | right(4) | [leftmost child(4)] | entries
//	        leaf entry:     key(8) | tidPage(4) | tidSlot(2)  = 14 bytes
//	        internal entry: key(8) | child(4)                 = 12 bytes
const (
	btMetaRoot   = 0
	btMetaHeight = 4

	btKindOff  = 0
	btNKeysOff = 1
	btRightOff = 3
	btHdr      = 7

	btLeafEntry = 14
	btIntEntry  = 12

	btLeaf     = 1
	btInternal = 2

	btNoRight = 0xFFFFFFFF
)

// btLeafCap and btIntCap leave slack so splits always fit.
var (
	btLeafCap = (storage.PageBytes - btHdr) / btLeafEntry
	btIntCap  = (storage.PageBytes - btHdr - 4) / btIntEntry
)

// BTree is a page-based B-tree index.
type BTree struct {
	buf  *buffer.Manager
	file int
}

// CreateBTree initializes an empty B-tree in the given (empty) file.
func CreateBTree(buf *buffer.Manager, file int) (*BTree, error) {
	if buf.NumPages(file) != 0 {
		return nil, fmt.Errorf("access: btree file %d not empty", file)
	}
	meta, err := buf.NewPage(file)
	if err != nil {
		return nil, err
	}
	root, err := buf.NewPage(file)
	if err != nil {
		buf.Release(meta, false)
		return nil, err
	}
	initNode(root.Page, btLeaf)
	binary.LittleEndian.PutUint32(meta.Page[btMetaRoot:], uint32(root.PageNo))
	binary.LittleEndian.PutUint32(meta.Page[btMetaHeight:], 1)
	buf.Release(root, true)
	buf.Release(meta, true)
	return &BTree{buf: buf, file: file}, nil
}

// OpenBTree opens an existing B-tree file.
func OpenBTree(buf *buffer.Manager, file int) *BTree {
	return &BTree{buf: buf, file: file}
}

// File returns the index's storage file ID.
func (t *BTree) File() int { return t.file }

func initNode(p storage.Page, kind byte) {
	for i := range p[:btHdr] {
		p[i] = 0
	}
	p[btKindOff] = kind
	binary.LittleEndian.PutUint32(p[btRightOff:], btNoRight)
}

func nodeKind(p storage.Page) byte { return p[btKindOff] }
func nodeN(p storage.Page) int     { return int(binary.LittleEndian.Uint16(p[btNKeysOff:])) }
func setNodeN(p storage.Page, n int) {
	binary.LittleEndian.PutUint16(p[btNKeysOff:], uint16(n))
}
func nodeRight(p storage.Page) uint32 { return binary.LittleEndian.Uint32(p[btRightOff:]) }
func setNodeRight(p storage.Page, r uint32) {
	binary.LittleEndian.PutUint32(p[btRightOff:], r)
}

// Leaf entry accessors.
func leafOff(i int) int { return btHdr + i*btLeafEntry }
func leafKey(p storage.Page, i int) int64 {
	return int64(binary.LittleEndian.Uint64(p[leafOff(i):]))
}
func leafTID(p storage.Page, i int) storage.TID {
	o := leafOff(i)
	return storage.TID{
		Page: binary.LittleEndian.Uint32(p[o+8:]),
		Slot: binary.LittleEndian.Uint16(p[o+12:]),
	}
}
func putLeaf(p storage.Page, i int, k int64, tid storage.TID) {
	o := leafOff(i)
	binary.LittleEndian.PutUint64(p[o:], uint64(k))
	binary.LittleEndian.PutUint32(p[o+8:], tid.Page)
	binary.LittleEndian.PutUint16(p[o+12:], tid.Slot)
}

// Internal entry accessors. Children: child(-1) is the leftmost
// pointer stored right after the header; entry i holds (key_i,
// child_i) where child_i serves keys >= key_i.
func intOff(i int) int { return btHdr + 4 + i*btIntEntry }
func intKey(p storage.Page, i int) int64 {
	return int64(binary.LittleEndian.Uint64(p[intOff(i):]))
}
func intChild(p storage.Page, i int) uint32 {
	if i < 0 {
		return binary.LittleEndian.Uint32(p[btHdr:])
	}
	return binary.LittleEndian.Uint32(p[intOff(i)+8:])
}
func putIntChild(p storage.Page, i int, c uint32) {
	if i < 0 {
		binary.LittleEndian.PutUint32(p[btHdr:], c)
		return
	}
	binary.LittleEndian.PutUint32(p[intOff(i)+8:], c)
}
func putIntEntry(p storage.Page, i int, k int64, c uint32) {
	o := intOff(i)
	binary.LittleEndian.PutUint64(p[o:], uint64(k))
	binary.LittleEndian.PutUint32(p[o+8:], c)
}

func (t *BTree) meta(tr probe.Tracer) (root uint32, height int, err error) {
	b, err := t.buf.Get(tr, t.file, 0)
	if err != nil {
		return 0, 0, err
	}
	root = binary.LittleEndian.Uint32(b.Page[btMetaRoot:])
	height = int(binary.LittleEndian.Uint32(b.Page[btMetaHeight:]))
	t.buf.Release(b, false)
	return root, height, nil
}

func (t *BTree) setMeta(root uint32, height int) error {
	b, err := t.buf.Get(nil, t.file, 0)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b.Page[btMetaRoot:], root)
	binary.LittleEndian.PutUint32(b.Page[btMetaHeight:], uint32(height))
	t.buf.Release(b, true)
	return nil
}

// leafLowerBound returns the first slot whose (key,TID) >= (k,tid).
func leafLowerBound(p storage.Page, k int64, tid storage.TID) int {
	lo, hi := 0, nodeN(p)
	for lo < hi {
		mid := (lo + hi) / 2
		mk := leafKey(p, mid)
		if mk < k || (mk == k && leafTID(p, mid).Less(tid)) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intChildFor returns the child index for inserting key k: the last
// entry with key <= k, or -1 for the leftmost child.
func intChildFor(p storage.Page, k int64) int {
	lo, hi := 0, nodeN(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(p, mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// intChildForSeek returns the child index for locating the *first*
// entry with key >= k. Because duplicates of a separator key may
// remain in the child left of it, the descent must take the child
// before the first separator >= k; the leaf-chain walk skips any
// too-small entries.
func intChildForSeek(p storage.Page, k int64) int {
	lo, hi := 0, nodeN(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(p, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

type splitResult struct {
	split    bool
	sepKey   int64
	newChild uint32
}

// Insert adds (key, tid) to the tree. Loads run untraced.
func (t *BTree) Insert(key int64, tid storage.TID) error {
	root, height, err := t.meta(nil)
	if err != nil {
		return err
	}
	res, err := t.insertInto(root, height, key, tid)
	if err != nil {
		return err
	}
	if !res.split {
		return nil
	}
	// Root split: new root with two children.
	nb, err := t.buf.NewPage(t.file)
	if err != nil {
		return err
	}
	initNode(nb.Page, btInternal)
	putIntChild(nb.Page, -1, root)
	putIntEntry(nb.Page, 0, res.sepKey, res.newChild)
	setNodeN(nb.Page, 1)
	newRoot := uint32(nb.PageNo)
	t.buf.Release(nb, true)
	return t.setMeta(newRoot, height+1)
}

func (t *BTree) insertInto(page uint32, level int, key int64, tid storage.TID) (splitResult, error) {
	b, err := t.buf.Get(nil, t.file, int(page))
	if err != nil {
		return splitResult{}, err
	}
	if nodeKind(b.Page) == btLeaf {
		res, err := t.insertLeaf(b, key, tid)
		return res, err
	}
	ci := intChildFor(b.Page, key)
	child := intChild(b.Page, ci)
	t.buf.Release(b, false)
	res, err := t.insertInto(child, level-1, key, tid)
	if err != nil || !res.split {
		return splitResult{}, err
	}
	// Child split: insert separator into this node (re-pin).
	b, err = t.buf.Get(nil, t.file, int(page))
	if err != nil {
		return splitResult{}, err
	}
	return t.insertInternal(b, res.sepKey, res.newChild)
}

// insertLeaf inserts into a pinned leaf, splitting if full. Releases b.
func (t *BTree) insertLeaf(b buffer.Buf, key int64, tid storage.TID) (splitResult, error) {
	n := nodeN(b.Page)
	pos := leafLowerBound(b.Page, key, tid)
	if n < btLeafCap {
		copy(b.Page[leafOff(pos+1):leafOff(n+1)], b.Page[leafOff(pos):leafOff(n)])
		putLeaf(b.Page, pos, key, tid)
		setNodeN(b.Page, n+1)
		t.buf.Release(b, true)
		return splitResult{}, nil
	}
	// Split: right half moves to a new leaf.
	nb, err := t.buf.NewPage(t.file)
	if err != nil {
		t.buf.Release(b, false)
		return splitResult{}, err
	}
	initNode(nb.Page, btLeaf)
	mid := n / 2
	moved := n - mid
	copy(nb.Page[leafOff(0):leafOff(moved)], b.Page[leafOff(mid):leafOff(n)])
	setNodeN(nb.Page, moved)
	setNodeN(b.Page, mid)
	setNodeRight(nb.Page, nodeRight(b.Page))
	setNodeRight(b.Page, uint32(nb.PageNo))
	// Insert into the proper half.
	if pos <= mid {
		nn := nodeN(b.Page)
		copy(b.Page[leafOff(pos+1):leafOff(nn+1)], b.Page[leafOff(pos):leafOff(nn)])
		putLeaf(b.Page, pos, key, tid)
		setNodeN(b.Page, nn+1)
	} else {
		p2 := pos - mid
		nn := nodeN(nb.Page)
		copy(nb.Page[leafOff(p2+1):leafOff(nn+1)], nb.Page[leafOff(p2):leafOff(nn)])
		putLeaf(nb.Page, p2, key, tid)
		setNodeN(nb.Page, nn+1)
	}
	sep := leafKey(nb.Page, 0)
	newChild := uint32(nb.PageNo)
	t.buf.Release(nb, true)
	t.buf.Release(b, true)
	return splitResult{split: true, sepKey: sep, newChild: newChild}, nil
}

// insertInternal inserts (sepKey -> newChild) into a pinned internal
// node, splitting if full. Releases b.
func (t *BTree) insertInternal(b buffer.Buf, sepKey int64, newChild uint32) (splitResult, error) {
	n := nodeN(b.Page)
	// Position: first entry with key > sepKey.
	pos := intChildFor(b.Page, sepKey) + 1
	if n < btIntCap {
		copy(b.Page[intOff(pos+1):intOff(n+1)], b.Page[intOff(pos):intOff(n)])
		putIntEntry(b.Page, pos, sepKey, newChild)
		setNodeN(b.Page, n+1)
		t.buf.Release(b, true)
		return splitResult{}, nil
	}
	// Split internal node: middle key moves up.
	nb, err := t.buf.NewPage(t.file)
	if err != nil {
		t.buf.Release(b, false)
		return splitResult{}, err
	}
	initNode(nb.Page, btInternal)
	mid := n / 2
	upKey := intKey(b.Page, mid)
	// Right node: entries mid+1..n-1; leftmost child = child(mid).
	putIntChild(nb.Page, -1, intChild(b.Page, mid))
	moved := n - mid - 1
	copy(nb.Page[intOff(0):intOff(moved)], b.Page[intOff(mid+1):intOff(n)])
	setNodeN(nb.Page, moved)
	setNodeN(b.Page, mid)
	if sepKey < upKey {
		nn := nodeN(b.Page)
		p := intChildFor(b.Page, sepKey) + 1
		copy(b.Page[intOff(p+1):intOff(nn+1)], b.Page[intOff(p):intOff(nn)])
		putIntEntry(b.Page, p, sepKey, newChild)
		setNodeN(b.Page, nn+1)
	} else {
		nn := nodeN(nb.Page)
		p := intChildFor(nb.Page, sepKey) + 1
		copy(nb.Page[intOff(p+1):intOff(nn+1)], nb.Page[intOff(p):intOff(nn)])
		putIntEntry(nb.Page, p, sepKey, newChild)
		setNodeN(nb.Page, nn+1)
	}
	res := splitResult{split: true, sepKey: upKey, newChild: uint32(nb.PageNo)}
	t.buf.Release(nb, true)
	t.buf.Release(b, true)
	return res, nil
}

// BTreeScan iterates leaf entries in key order from a start position.
type BTreeScan struct {
	tree *BTree
	page uint32
	slot int
	done bool
}

// SeekGE positions a scan at the first entry with key >= k
// (bt_search).
func (t *BTree) SeekGE(tr probe.Tracer, k int64) (*BTreeScan, error) {
	return t.descend(tr, k, false)
}

// SeekFirst positions a scan at the smallest key.
func (t *BTree) SeekFirst(tr probe.Tracer) (*BTreeScan, error) {
	return t.descend(tr, 0, true)
}

func (t *BTree) descend(tr probe.Tracer, k int64, leftmost bool) (*BTreeScan, error) {
	tr = probe.Or(tr)
	tr.Emit(probe.BtSearchEnter)
	root, _, err := t.meta(tr)
	if err != nil {
		return nil, err
	}
	tr.Emit(probe.BtSearchMeta)
	page := root
	for {
		tr.Emit(probe.BtSearchLevel)
		b, err := t.buf.Get(tr, t.file, int(page))
		if err != nil {
			return nil, err
		}
		if nodeKind(b.Page) == btLeaf {
			slot := 0
			if !leftmost {
				slot = leafLowerBound(b.Page, k, storage.TID{})
			}
			t.buf.Release(b, false)
			tr.Emit(probe.BtSearchDone)
			return &BTreeScan{tree: t, page: page, slot: slot}, nil
		}
		var next uint32
		if leftmost {
			next = intChild(b.Page, -1)
		} else {
			next = intChild(b.Page, intChildForSeek(b.Page, k))
		}
		t.buf.Release(b, false)
		tr.Emit(probe.BtSearchCont)
		page = next
	}
}

// Next returns the next (key, TID) in order; ok=false at the end
// (bt_next).
func (s *BTreeScan) Next(tr probe.Tracer) (key int64, tid storage.TID, ok bool, err error) {
	tr = probe.Or(tr)
	if s.done {
		tr.Emit(probe.BtNextDone)
		return 0, storage.TID{}, false, nil
	}
	for {
		tr.Emit(probe.BtNextEnter)
		b, err := s.tree.buf.Get(tr, s.tree.file, int(s.page))
		if err != nil {
			return 0, storage.TID{}, false, err
		}
		if s.slot < nodeN(b.Page) {
			key = leafKey(b.Page, s.slot)
			tid = leafTID(b.Page, s.slot)
			s.slot++
			s.tree.buf.Release(b, false)
			tr.Emit(probe.BtNextEmit)
			return key, tid, true, nil
		}
		right := nodeRight(b.Page)
		s.tree.buf.Release(b, false)
		if right == btNoRight {
			s.done = true
			tr.Emit(probe.BtNextEOF)
			return 0, storage.TID{}, false, nil
		}
		tr.Emit(probe.BtNextStep)
		s.page = right
		s.slot = 0
	}
}
