package access

import (
	"encoding/binary"
	"fmt"

	"repro/internal/db/buffer"
	"repro/internal/db/probe"
	"repro/internal/db/storage"
	"repro/internal/db/value"
)

// HashIndex is a static hash index with int64 keys: a fixed bucket
// array with overflow chains, modelled on PostgreSQL's hash access
// method (without dynamic expansion, which TPC-D bulk loads do not
// need — the bucket count is sized at creation).
//
// File layout:
//
//	page 0:        meta — nbuckets(4)
//	pages 1..B:    bucket pages
//	pages B+1...:  overflow pages
//	bucket/overflow page: nkeys(2) | next(4) | entries of key(8) tid(6)
const (
	hMetaBuckets = 0

	hNOff    = 0
	hNextOff = 2
	hHdr     = 6
	hEntry   = 14

	hNoNext = 0xFFFFFFFF
)

var hPageCap = (storage.PageBytes - hHdr) / hEntry

// HashIndex is the handle.
type HashIndex struct {
	buf      *buffer.Manager
	file     int
	nbuckets uint32
}

// CreateHashIndex initializes a hash index with the given bucket count
// in an empty file.
func CreateHashIndex(buf *buffer.Manager, file int, buckets int) (*HashIndex, error) {
	if buf.NumPages(file) != 0 {
		return nil, fmt.Errorf("access: hash file %d not empty", file)
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("access: bucket count must be positive")
	}
	meta, err := buf.NewPage(file)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(meta.Page[hMetaBuckets:], uint32(buckets))
	buf.Release(meta, true)
	for i := 0; i < buckets; i++ {
		b, err := buf.NewPage(file)
		if err != nil {
			return nil, err
		}
		initHashPage(b.Page)
		buf.Release(b, true)
	}
	return &HashIndex{buf: buf, file: file, nbuckets: uint32(buckets)}, nil
}

// OpenHashIndex opens an existing hash index.
func OpenHashIndex(buf *buffer.Manager, file int) (*HashIndex, error) {
	meta, err := buf.Get(nil, file, 0)
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(meta.Page[hMetaBuckets:])
	buf.Release(meta, false)
	return &HashIndex{buf: buf, file: file, nbuckets: n}, nil
}

// File returns the index's storage file ID.
func (h *HashIndex) File() int { return h.file }

func initHashPage(p storage.Page) {
	binary.LittleEndian.PutUint16(p[hNOff:], 0)
	binary.LittleEndian.PutUint32(p[hNextOff:], hNoNext)
}

func hashN(p storage.Page) int       { return int(binary.LittleEndian.Uint16(p[hNOff:])) }
func setHashN(p storage.Page, n int) { binary.LittleEndian.PutUint16(p[hNOff:], uint16(n)) }
func hashNext(p storage.Page) uint32 { return binary.LittleEndian.Uint32(p[hNextOff:]) }
func setHashNext(p storage.Page, n uint32) {
	binary.LittleEndian.PutUint32(p[hNextOff:], n)
}
func hashKey(p storage.Page, i int) int64 {
	return int64(binary.LittleEndian.Uint64(p[hHdr+i*hEntry:]))
}
func hashTID(p storage.Page, i int) storage.TID {
	o := hHdr + i*hEntry
	return storage.TID{
		Page: binary.LittleEndian.Uint32(p[o+8:]),
		Slot: binary.LittleEndian.Uint16(p[o+12:]),
	}
}
func putHashEntry(p storage.Page, i int, k int64, tid storage.TID) {
	o := hHdr + i*hEntry
	binary.LittleEndian.PutUint64(p[o:], uint64(k))
	binary.LittleEndian.PutUint32(p[o+8:], tid.Page)
	binary.LittleEndian.PutUint16(p[o+12:], tid.Slot)
}

// bucketPage returns the page number of a key's bucket.
func (h *HashIndex) bucketPage(k int64) int {
	return 1 + int(value.Hash(value.NewInt(k))%uint64(h.nbuckets))
}

// Insert adds (key, tid), appending to the bucket's overflow chain as
// needed.
func (h *HashIndex) Insert(key int64, tid storage.TID) error {
	page := h.bucketPage(key)
	for {
		b, err := h.buf.Get(nil, h.file, page)
		if err != nil {
			return err
		}
		n := hashN(b.Page)
		if n < hPageCap {
			putHashEntry(b.Page, n, key, tid)
			setHashN(b.Page, n+1)
			h.buf.Release(b, true)
			return nil
		}
		next := hashNext(b.Page)
		if next != hNoNext {
			h.buf.Release(b, false)
			page = int(next)
			continue
		}
		// Allocate an overflow page and link it.
		ob, err := h.buf.NewPage(h.file)
		if err != nil {
			h.buf.Release(b, false)
			return err
		}
		initHashPage(ob.Page)
		putHashEntry(ob.Page, 0, key, tid)
		setHashN(ob.Page, 1)
		setHashNext(b.Page, uint32(ob.PageNo))
		h.buf.Release(ob, true)
		h.buf.Release(b, true)
		return nil
	}
}

// HashScan iterates the TIDs matching one key.
type HashScan struct {
	idx  *HashIndex
	key  int64
	page uint32
	slot int
	done bool
}

// Lookup starts an equality scan for key (hash_search).
func (h *HashIndex) Lookup(tr probe.Tracer, key int64) *HashScan {
	tr = probe.Or(tr)
	tr.Emit(probe.HashSearchEnter)
	tr.Emit(probe.HashFunc)
	page := uint32(h.bucketPage(key))
	tr.Emit(probe.HashSearchCont)
	return &HashScan{idx: h, key: key, page: page}
}

// Next returns the next matching TID; ok=false when the chain is
// exhausted.
func (s *HashScan) Next(tr probe.Tracer) (tid storage.TID, ok bool, err error) {
	tr = probe.Or(tr)
	if s.done {
		tr.Emit(probe.HashNextDone)
		return storage.TID{}, false, nil
	}
	for {
		tr.Emit(probe.HashNextEnter)
		b, err := s.idx.buf.Get(tr, s.idx.file, int(s.page))
		if err != nil {
			return storage.TID{}, false, err
		}
		tr.Emit(probe.HashNextCont)
		n := hashN(b.Page)
		for s.slot < n {
			i := s.slot
			s.slot++
			if hashKey(b.Page, i) == s.key {
				tid := hashTID(b.Page, i)
				s.idx.buf.Release(b, false)
				tr.Emit(probe.HashNextEmit)
				return tid, true, nil
			}
			tr.Emit(probe.HashNextCmp)
		}
		next := hashNext(b.Page)
		s.idx.buf.Release(b, false)
		if next == hNoNext {
			s.done = true
			tr.Emit(probe.HashNextEOF)
			return storage.TID{}, false, nil
		}
		tr.Emit(probe.HashNextChain)
		s.page = next
		s.slot = 0
	}
}
