// Package access implements the access methods of the database kernel
// (the paper's Figure 1): heap files with sequential scans, a
// page-based B-tree index for ordered and range access, and a static
// hash index for equality access — matching the paper's Btree-indexed
// and Hash-indexed TPC-D databases. All page access goes through the
// buffer manager.
//
// Read paths take a probe.Tracer and emit the instrumentation events
// the kernel image maps to basic-block paths; loads (inserts) run
// untraced, as the paper traces query execution only.
package access

import (
	"fmt"

	"repro/internal/db/buffer"
	"repro/internal/db/probe"
	"repro/internal/db/storage"
	"repro/internal/db/value"
)

// TID re-exports the storage tuple identifier for executor
// convenience.
type TID = storage.TID

// Heap is a heap file of tuples.
type Heap struct {
	buf  *buffer.Manager
	file int
}

// NewHeap returns a heap over the given storage file.
func NewHeap(buf *buffer.Manager, file int) *Heap {
	return &Heap{buf: buf, file: file}
}

// File returns the underlying storage file ID.
func (h *Heap) File() int { return h.file }

// NumPages returns the current heap length in pages.
func (h *Heap) NumPages() int { return h.buf.NumPages(h.file) }

// MaxTupleBytes bounds one encoded tuple (a quarter page), so any
// page can always hold several tuples.
const MaxTupleBytes = storage.PageBytes / 4

// CheckTupleSize validates an encoded tuple against MaxTupleBytes —
// exported so callers that must validate before committing to the
// insert (the engine's write-ahead log) apply exactly the heap's rule.
func CheckTupleSize(data []byte) error {
	if len(data) > MaxTupleBytes {
		return fmt.Errorf("access: tuple too large (%d bytes)", len(data))
	}
	return nil
}

// Insert appends a tuple and returns its TID. Loads run untraced.
func (h *Heap) Insert(vals []value.Value, scratch []byte) (storage.TID, error) {
	return h.InsertTuple(storage.EncodeTuple(vals, scratch))
}

// InsertTuple appends an already-encoded tuple — the path the durable
// engine uses so the bytes it journals are the bytes the heap stores,
// encoded exactly once.
func (h *Heap) InsertTuple(data []byte) (storage.TID, error) {
	if err := CheckTupleSize(data); err != nil {
		return storage.TID{}, err
	}
	n := h.buf.NumPages(h.file)
	if n > 0 {
		b, err := h.buf.Get(nil, h.file, n-1)
		if err != nil {
			return storage.TID{}, err
		}
		if slot, ok := b.Page.AddTuple(data); ok {
			h.buf.Release(b, true)
			return storage.TID{Page: uint32(n - 1), Slot: uint16(slot)}, nil
		}
		h.buf.Release(b, false)
	}
	b, err := h.buf.NewPage(h.file)
	if err != nil {
		return storage.TID{}, err
	}
	slot, ok := b.Page.AddTuple(data)
	h.buf.Release(b, true)
	if !ok {
		return storage.TID{}, fmt.Errorf("access: tuple does not fit an empty page")
	}
	return storage.TID{Page: uint32(b.PageNo), Slot: uint16(slot)}, nil
}

// Fetch reads the tuple at tid into dst (heap_fetch).
func (h *Heap) Fetch(tr probe.Tracer, tid storage.TID, dst []value.Value) ([]value.Value, error) {
	tr = probe.Or(tr)
	tr.Emit(probe.HeapFetchEnter)
	b, err := h.buf.Get(tr, h.file, int(tid.Page))
	if err != nil {
		return nil, err
	}
	defer h.buf.Release(b, false)
	tr.Emit(probe.HeapFetchCont)
	raw, err := b.Page.Tuple(int(tid.Slot))
	if err != nil {
		return nil, err
	}
	tr.Emit(probe.HeapDeform)
	vals, err := storage.DecodeTuple(raw, dst)
	tr.Emit(probe.HeapFetchEmit)
	return vals, err
}

// HeapScan iterates a heap file in physical order, pinning one page at
// a time (heap_getnext).
type HeapScan struct {
	heap *Heap
	page int
	end  int // first page past the scan range; -1 means whole file
	slot int
	buf  buffer.Buf
	held bool
	eof  bool
}

// BeginScan starts a sequential scan over the whole file.
func (h *Heap) BeginScan() *HeapScan {
	return &HeapScan{heap: h, end: -1}
}

// BeginRangeScan starts a sequential scan over pages [lo, hi) — the
// partition primitive for parallel scans: n workers each scanning one
// contiguous page range together cover the file exactly once, in the
// same physical order a serial scan would. Bounds are clamped: a
// negative lo starts at page 0, and hi <= lo yields an empty scan
// (never the whole-file sentinel).
func (h *Heap) BeginRangeScan(lo, hi int) *HeapScan {
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return &HeapScan{heap: h, page: lo, end: hi}
}

// Next returns the next tuple (decoded into dst) and its TID; ok is
// false at end of file.
func (s *HeapScan) Next(tr probe.Tracer, dst []value.Value) (vals []value.Value, tid storage.TID, ok bool, err error) {
	tr = probe.Or(tr)
	tr.Emit(probe.HeapGetNextEnter)
	if s.eof {
		tr.Emit(probe.HeapGetNextEOF)
		return nil, storage.TID{}, false, nil
	}
	for {
		if !s.held {
			limit := s.heap.buf.NumPages(s.heap.file)
			if s.end >= 0 && s.end < limit {
				limit = s.end
			}
			if s.page >= limit {
				s.eof = true
				tr.Emit(probe.HeapGetNextEOF)
				return nil, storage.TID{}, false, nil
			}
			tr.Emit(probe.HeapGetNextPage)
			s.buf, err = s.heap.buf.Get(tr, s.heap.file, s.page)
			if err != nil {
				s.eof = true
				return nil, storage.TID{}, false, err
			}
			tr.Emit(probe.HeapGetNextPageCont)
			s.held = true
			s.slot = 0
		}
		if s.slot < s.buf.Page.NumSlots() {
			tr.Emit(probe.HeapGetNextTuple)
			raw, terr := s.buf.Page.Tuple(s.slot)
			if terr != nil {
				s.Close()
				return nil, storage.TID{}, false, terr
			}
			tr.Emit(probe.HeapDeform)
			vals, err = storage.DecodeTuple(raw, dst)
			if err != nil {
				s.Close()
				return nil, storage.TID{}, false, err
			}
			tid = storage.TID{Page: uint32(s.page), Slot: uint16(s.slot)}
			s.slot++
			tr.Emit(probe.HeapGetNextEmit)
			return vals, tid, true, nil
		}
		tr.Emit(probe.HeapGetNextNewPage)
		s.heap.buf.Release(s.buf, false)
		s.held = false
		s.page++
	}
}

// Close releases any held page.
func (s *HeapScan) Close() {
	if s.held {
		s.heap.buf.Release(s.buf, false)
		s.held = false
	}
	s.eof = true
}
