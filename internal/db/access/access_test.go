package access

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/db/buffer"
	"repro/internal/db/storage"
	"repro/internal/db/value"
)

func newPool(t *testing.T, files, frames int) *buffer.Manager {
	t.Helper()
	return buffer.New(storage.NewStore(files), frames)
}

func row(vals ...int64) []value.Value {
	out := make([]value.Value, len(vals))
	for i, v := range vals {
		out[i] = value.NewInt(v)
	}
	return out
}

func TestHeapInsertFetchScan(t *testing.T) {
	m := newPool(t, 1, 8)
	h := NewHeap(m, 0)
	var tids []storage.TID
	const n = 500
	for i := 0; i < n; i++ {
		tid, err := h.Insert(row(int64(i), int64(i*7)), nil)
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	// Fetch by TID.
	for i, tid := range tids {
		vals, err := h.Fetch(nil, tid, nil)
		if err != nil {
			t.Fatal(err)
		}
		if vals[0].I != int64(i) || vals[1].I != int64(i*7) {
			t.Fatalf("fetch %d got %v", i, vals)
		}
	}
	// Sequential scan sees all rows in physical order.
	scan := h.BeginScan()
	count := 0
	for {
		vals, tid, ok, err := scan.Next(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if vals[0].I != int64(count) || tid != tids[count] {
			t.Fatalf("scan row %d mismatch", count)
		}
		count++
	}
	if count != n {
		t.Fatalf("scan saw %d rows, want %d", count, n)
	}
	if m.PinnedFrames() != 0 {
		t.Fatal("scan leaked pins")
	}
}

func TestHeapScanEmpty(t *testing.T) {
	m := newPool(t, 1, 4)
	h := NewHeap(m, 0)
	s := h.BeginScan()
	if _, _, ok, err := s.Next(nil, nil); ok || err != nil {
		t.Fatalf("empty scan: ok=%v err=%v", ok, err)
	}
}

func TestHeapScanCloseReleasesPin(t *testing.T) {
	m := newPool(t, 1, 4)
	h := NewHeap(m, 0)
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(row(int64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	s := h.BeginScan()
	if _, _, ok, _ := s.Next(nil, nil); !ok {
		t.Fatal("want a row")
	}
	s.Close()
	if m.PinnedFrames() != 0 {
		t.Fatal("Close leaked a pin")
	}
	if _, _, ok, _ := s.Next(nil, nil); ok {
		t.Fatal("Next after Close must return false")
	}
}

func TestHeapRejectsHugeTuple(t *testing.T) {
	m := newPool(t, 1, 4)
	h := NewHeap(m, 0)
	huge := []value.Value{value.NewStr(string(make([]byte, storage.PageBytes/2)))}
	if _, err := h.Insert(huge, nil); err == nil {
		t.Fatal("oversized tuple must be rejected")
	}
}

func TestBTreeInsertAndScanSorted(t *testing.T) {
	m := newPool(t, 1, 32)
	bt, err := CreateBTree(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		if err := bt.Insert(int64(k), storage.TID{Page: uint32(k), Slot: 0}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := bt.SeekFirst(nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	count := 0
	for {
		k, tid, ok, err := s.Next(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if k <= prev {
			t.Fatalf("keys out of order: %d after %d", k, prev)
		}
		if tid.Page != uint32(k) {
			t.Fatalf("tid mismatch for key %d", k)
		}
		prev = k
		count++
	}
	if count != n {
		t.Fatalf("scan saw %d keys, want %d", count, n)
	}
	if m.PinnedFrames() != 0 {
		t.Fatal("btree leaked pins")
	}
}

func TestBTreeSeekRange(t *testing.T) {
	m := newPool(t, 1, 32)
	bt, err := CreateBTree(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 1000; k += 2 { // even keys only
		if err := bt.Insert(int64(k), storage.TID{Page: uint32(k)}); err != nil {
			t.Fatal(err)
		}
	}
	// Seek to odd key 501: first result must be 502.
	s, err := bt.SeekGE(nil, 501)
	if err != nil {
		t.Fatal(err)
	}
	k, _, ok, err := s.Next(nil)
	if err != nil || !ok || k != 502 {
		t.Fatalf("Seek(501).Next() = %d,%v,%v; want 502", k, ok, err)
	}
	// Seek beyond the end.
	s, err = bt.SeekGE(nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s.Next(nil); ok {
		t.Fatal("seek past end must be empty")
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	m := newPool(t, 1, 64)
	bt, err := CreateBTree(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 300 duplicates of each of 10 keys: forces splits among dups.
	for rep := 0; rep < 300; rep++ {
		for k := 0; k < 10; k++ {
			tid := storage.TID{Page: uint32(rep), Slot: uint16(k)}
			if err := bt.Insert(int64(k), tid); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := bt.SeekGE(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		k, _, ok, err := s.Next(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || k != 5 {
			break
		}
		count++
	}
	if count != 300 {
		t.Fatalf("found %d duplicates of key 5, want 300", count)
	}
}

// Property: a B-tree agrees with a sorted reference model on random
// key sets.
func TestBTreeMatchesModel(t *testing.T) {
	f := func(keys []int16) bool {
		m := newPool(t, 1, 64)
		bt, err := CreateBTree(m, 0)
		if err != nil {
			return false
		}
		for i, k := range keys {
			if err := bt.Insert(int64(k), storage.TID{Page: uint32(i)}); err != nil {
				return false
			}
		}
		want := append([]int16(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		s, err := bt.SeekFirst(nil)
		if err != nil {
			return false
		}
		for _, wk := range want {
			k, _, ok, err := s.Next(nil)
			if err != nil || !ok || k != int64(wk) {
				return false
			}
		}
		_, _, ok, _ := s.Next(nil)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateBTreeOnNonEmptyFileFails(t *testing.T) {
	m := newPool(t, 1, 8)
	if _, err := CreateBTree(m, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateBTree(m, 0); err == nil {
		t.Fatal("second create must fail")
	}
}

func TestHashIndexLookup(t *testing.T) {
	m := newPool(t, 1, 64)
	h, err := CreateHashIndex(m, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for k := 0; k < n; k++ {
		if err := h.Insert(int64(k), storage.TID{Page: uint32(k)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int64{0, 1, 999, 1999} {
		s := h.Lookup(nil, k)
		tid, ok, err := s.Next(nil)
		if err != nil || !ok || tid.Page != uint32(k) {
			t.Fatalf("lookup %d = %v,%v,%v", k, tid, ok, err)
		}
		if _, ok, _ := s.Next(nil); ok {
			t.Fatalf("key %d should be unique", k)
		}
	}
	// Missing key.
	if _, ok, _ := h.Lookup(nil, 123456).Next(nil); ok {
		t.Fatal("missing key must not be found")
	}
	if m.PinnedFrames() != 0 {
		t.Fatal("hash index leaked pins")
	}
}

func TestHashIndexDuplicates(t *testing.T) {
	m := newPool(t, 1, 64)
	h, err := CreateHashIndex(m, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 1500; rep++ { // force overflow chains
		if err := h.Insert(7, storage.TID{Page: uint32(rep)}); err != nil {
			t.Fatal(err)
		}
	}
	s := h.Lookup(nil, 7)
	seen := map[uint32]bool{}
	for {
		tid, ok, err := s.Next(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[tid.Page] {
			t.Fatalf("duplicate tid %v", tid)
		}
		seen[tid.Page] = true
	}
	if len(seen) != 1500 {
		t.Fatalf("found %d entries, want 1500", len(seen))
	}
}

// Property: hash index finds exactly the inserted TIDs for every key.
func TestHashIndexMatchesModel(t *testing.T) {
	f := func(keys []uint8) bool {
		m := newPool(t, 1, 64)
		h, err := CreateHashIndex(m, 0, 8)
		if err != nil {
			return false
		}
		model := make(map[int64][]uint32)
		for i, k := range keys {
			if err := h.Insert(int64(k), storage.TID{Page: uint32(i)}); err != nil {
				return false
			}
			model[int64(k)] = append(model[int64(k)], uint32(i))
		}
		for k, want := range model {
			s := h.Lookup(nil, k)
			var got []uint32
			for {
				tid, ok, err := s.Next(nil)
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				got = append(got, tid.Page)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenHashIndex(t *testing.T) {
	m := newPool(t, 1, 32)
	h, err := CreateHashIndex(m, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(42, storage.TID{Page: 9}); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenHashIndex(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	tid, ok, err := h2.Lookup(nil, 42).Next(nil)
	if err != nil || !ok || tid.Page != 9 {
		t.Fatalf("reopened lookup = %v,%v,%v", tid, ok, err)
	}
}

func TestCreateHashIndexValidation(t *testing.T) {
	m := newPool(t, 1, 8)
	if _, err := CreateHashIndex(m, 0, 0); err == nil {
		t.Fatal("zero buckets must fail")
	}
	if _, err := CreateHashIndex(m, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateHashIndex(m, 0, 4); err == nil {
		t.Fatal("create on non-empty file must fail")
	}
}

// TestHeapRangeScanPartitions covers the parallel-scan partition
// primitive: contiguous page-range scans must tile the heap exactly —
// together they see every tuple once, in physical order, and each
// range stays within its pages.
func TestHeapRangeScanPartitions(t *testing.T) {
	m := newPool(t, 1, 64)
	h := NewHeap(m, 0)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := h.Insert(row(int64(i), int64(i%13)), nil); err != nil {
			t.Fatal(err)
		}
	}
	pages := h.NumPages()
	if pages < 4 {
		t.Fatalf("need a multi-page heap, got %d pages", pages)
	}
	for _, workers := range []int{1, 2, 3, pages, pages + 5} {
		var got []int64
		lo := 0
		base, rem := pages/workers, pages%workers
		for w := 0; w < workers; w++ {
			hi := lo + base
			if w < rem {
				hi++
			}
			scan := h.BeginRangeScan(lo, hi)
			for {
				vals, tid, ok, err := scan.Next(nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if int(tid.Page) < lo || int(tid.Page) >= hi {
					t.Fatalf("workers=%d: range [%d,%d) leaked page %d", workers, lo, hi, tid.Page)
				}
				got = append(got, vals[0].I)
			}
			scan.Close()
			lo = hi
		}
		if len(got) != n {
			t.Fatalf("workers=%d: saw %d tuples, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != int64(i) {
				t.Fatalf("workers=%d: tuple %d = %d, partitions out of order", workers, i, v)
			}
		}
	}
	if m.PinnedFrames() != 0 {
		t.Fatal("range scans leaked pins")
	}
}

// TestHeapRangeScanBounds checks degenerate ranges: empty, clamped
// and beyond-EOF ranges scan nothing or stop at the file end.
func TestHeapRangeScanBounds(t *testing.T) {
	m := newPool(t, 1, 16)
	h := NewHeap(m, 0)
	for i := 0; i < 300; i++ {
		if _, err := h.Insert(row(int64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	pages := h.NumPages()
	count := func(s *HeapScan) int {
		defer s.Close()
		n := 0
		for {
			_, _, ok, err := s.Next(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return n
			}
			n++
		}
	}
	if got := count(h.BeginRangeScan(2, 2)); got != 0 {
		t.Fatalf("empty range scanned %d tuples", got)
	}
	if got := count(h.BeginRangeScan(2, -1)); got != 0 {
		t.Fatalf("negative hi must clamp to an empty range, scanned %d tuples", got)
	}
	if got := count(h.BeginRangeScan(pages, pages+10)); got != 0 {
		t.Fatalf("past-EOF range scanned %d tuples", got)
	}
	whole := count(h.BeginRangeScan(0, pages+100))
	if whole != 300 {
		t.Fatalf("over-long range scanned %d tuples, want 300", whole)
	}
	if got := count(h.BeginRangeScan(-3, pages)); got != 300 {
		t.Fatalf("negative lo scanned %d tuples, want 300", got)
	}
}
