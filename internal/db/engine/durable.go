package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/db/access"
	"repro/internal/db/buffer"
	"repro/internal/db/catalog"
	"repro/internal/db/storage"
	"repro/internal/db/value"
	"repro/internal/db/wal"
)

// Durable mode. OpenDurable roots a database in a data directory:
//
//	<dir>/MANIFEST        catalog snapshot + generation + WAL position
//	<dir>/gen-NNNNNN/     page files of the last checkpoint (immutable)
//	<dir>/wal/            write-ahead log segments since the checkpoint
//	<dir>/LOCK            single-process guard
//
// Every Insert and DDL statement appends a logical record to the WAL
// before mutating anything, and the disk store journals evicted dirty
// pages as full page images, so a crash at any instant loses at most
// the record being appended. Checkpoint collapses the log back into
// page files: flush dirty frames, write the merged state as a new
// generation, atomically publish a manifest naming it, then truncate
// the log. Recovery is the reverse — load the manifest's generation
// and catalog, then replay the log in order, stopping exactly at the
// committed prefix (a torn final record is discarded; corruption
// anywhere earlier aborts the open rather than silently dropping
// committed work).

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
	walSubdir       = "wal"
	lockName        = "LOCK"
)

type colMeta struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

type indexMeta struct {
	Column string `json:"column"`
	Kind   uint8  `json:"kind"`
	Unique bool   `json:"unique"`
	FileID int    `json:"file_id"`
}

type tableMeta struct {
	Name    string      `json:"name"`
	Cols    []colMeta   `json:"cols"`
	FileID  int         `json:"file_id"`
	Rows    int         `json:"rows"`
	Indexes []indexMeta `json:"indexes,omitempty"`
}

// manifest is the durable root of a data directory: which checkpoint
// generation holds the page files, where WAL replay starts, and the
// full catalog as of the checkpoint. It is only ever replaced by an
// atomic rename, so a data directory always has a consistent one.
type manifest struct {
	Version    int         `json:"version"`
	Gen        uint64      `json:"gen"`
	WALSeq     uint64      `json:"wal_seq"`
	NextFileID int         `json:"next_file_id"`
	Tables     []tableMeta `json:"tables"`
}

// readManifest returns nil (no error) when the directory has none.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("engine: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("engine: manifest version %d, want %d", m.Version, manifestVersion)
	}
	return &m, nil
}

// writeManifest publishes m atomically: write a temp file, fsync it,
// rename over MANIFEST, fsync the directory.
func writeManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return storage.SyncDir(dir)
}

// OpenDurable opens (creating or recovering) a durable database rooted
// at dir with a buffer pool of the given number of frames. recovered
// reports whether existing state was found — a manifest, or committed
// WAL records from a run that never checkpointed — and replayed; a
// fresh directory opens empty with recovered false.
//
// The directory is guarded by an advisory file lock: a second
// concurrent open fails rather than corrupting the log.
func OpenDurable(frames int, dir string) (db *DB, recovered bool, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, err
	}
	lock, err := lockDir(filepath.Join(dir, lockName))
	if err != nil {
		return nil, false, err
	}
	defer func() {
		if err != nil && lock != nil {
			lock.Close()
		}
	}()

	m, err := readManifest(dir)
	if err != nil {
		return nil, false, err
	}
	var gen, walSeq uint64 = 0, 1
	nfiles := 0
	if m != nil {
		gen, walSeq, nfiles = m.Gen, m.WALSeq, m.NextFileID
	}
	st, err := storage.OpenDiskStore(dir, gen, nfiles)
	if err != nil {
		return nil, false, err
	}
	db = &DB{
		Cat:     catalog.New(),
		Store:   st,
		Buf:     buffer.New(st, frames),
		latch:   newRWLatch(),
		heaps:   make(map[string]*access.Heap),
		btrees:  make(map[string]*access.BTree),
		hashes:  make(map[string]*access.HashIndex),
		rows:    make(map[string]int),
		epochs:  make(map[string]uint64),
		durable: true,
		dir:     dir,
		gen:     gen,
		lock:    lock,
	}
	if m != nil {
		if err := db.restoreCatalog(m); err != nil {
			st.Close()
			return nil, false, err
		}
		// A checkpoint that crashed after writing its generation but
		// before publishing the manifest left a half-built directory.
		if err := storage.RemoveStaleGenerations(dir, gen); err != nil {
			st.Close()
			return nil, false, err
		}
	}

	// Replay the committed log prefix. Logging is still off, so the
	// replayed operations do not re-journal themselves.
	applied := 0
	walDir := filepath.Join(dir, walSubdir)
	tail, err := wal.Replay(walDir, walSeq, func(rec wal.Record) error {
		applied++
		return db.applyRecord(rec)
	})
	if err != nil {
		st.Close()
		return nil, false, fmt.Errorf("engine: wal replay: %w", err)
	}
	w, err := wal.OpenWriter(walDir, tail, wal.Options{})
	if err != nil {
		st.Close()
		return nil, false, err
	}
	db.wal = w
	db.logging.Store(true)
	st.SetSpill(db.spillPage)
	return db, m != nil || applied > 0, nil
}

// restoreCatalog rebuilds the catalog, heaps and index handles from a
// manifest. Catalog file IDs are assigned sequentially in creation
// order, and creation order is exactly ascending file ID — so
// re-adding tables and indexes in that order reproduces every ID.
//
//lint:allow walcheck recovery replay: the manifest IS the durable record, nothing here needs relogging
func (db *DB) restoreCatalog(m *manifest) error {
	type item struct {
		fileID int
		table  *tableMeta
		owner  *tableMeta
		index  *indexMeta
	}
	var items []item
	for i := range m.Tables {
		t := &m.Tables[i]
		items = append(items, item{fileID: t.FileID, table: t})
		for j := range t.Indexes {
			items = append(items, item{fileID: t.Indexes[j].FileID, owner: t, index: &t.Indexes[j]})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].fileID < items[j].fileID })
	for _, it := range items {
		if it.table != nil {
			cols := make([]catalog.Column, len(it.table.Cols))
			for i, c := range it.table.Cols {
				cols[i] = catalog.Column{Name: c.Name, Type: value.Type(c.Type)}
			}
			t, err := db.Cat.AddTable(it.table.Name, catalog.NewSchema(cols...))
			if err != nil {
				return err
			}
			if t.FileID != it.table.FileID {
				return fmt.Errorf("engine: manifest file ID mismatch for table %s: %d vs %d", t.Name, t.FileID, it.table.FileID)
			}
			db.heaps[t.Name] = access.NewHeap(db.Buf, t.FileID)
			db.rows[t.Name] = it.table.Rows
			continue
		}
		ix, err := db.Cat.AddIndex(it.owner.Name, it.index.Column, catalog.IndexKind(it.index.Kind), it.index.Unique)
		if err != nil {
			return err
		}
		if ix.FileID != it.index.FileID {
			return fmt.Errorf("engine: manifest file ID mismatch for index %s: %d vs %d", ix.Name, ix.FileID, it.index.FileID)
		}
		switch ix.Kind {
		case catalog.BTree:
			db.btrees[ix.Name] = access.OpenBTree(db.Buf, ix.FileID)
		case catalog.Hash:
			hx, err := access.OpenHashIndex(db.Buf, ix.FileID)
			if err != nil {
				return err
			}
			db.hashes[ix.Name] = hx
		}
	}
	return nil
}

// applyRecord replays one WAL record through the normal engine paths
// (logging disabled, so nothing is re-journaled). Inserts and DDL run
// exactly the code that produced them, which is what makes replay
// deterministic; page images go straight into the storage overlay —
// by construction they equal what the logical replay (re)computes, so
// order is the only thing that matters.
func (db *DB) applyRecord(rec wal.Record) error {
	switch r := rec.(type) {
	case wal.CreateTable:
		cols := make([]catalog.Column, len(r.Cols))
		for i, c := range r.Cols {
			cols[i] = catalog.Column{Name: c.Name, Type: value.Type(c.Type)}
		}
		_, err := db.CreateTable(r.Name, catalog.NewSchema(cols...))
		return err
	case wal.CreateIndex:
		return db.CreateIndex(r.Table, r.Column, catalog.IndexKind(r.Kind), r.Unique)
	case wal.Insert:
		vals, err := storage.DecodeTuple(r.Tuple, nil)
		if err != nil {
			return err
		}
		return db.Insert(r.Table, vals)
	case wal.PageWrite:
		return db.Store.InstallRecovered(int(r.File), int(r.Page), r.Data)
	default:
		return fmt.Errorf("engine: unknown wal record %T", rec)
	}
}

// spillPage is the disk store's page-write observer: between
// checkpoints every page image that leaves the buffer pool (an
// eviction of a dirty frame, or FlushAll) is journaled, so the log
// carries everything the immutable base files do not.
func (db *DB) spillPage(file, page int, data []byte) error {
	if !db.logging.Load() {
		return nil
	}
	return db.wal.Append(wal.PageWrite{File: uint32(file), Page: uint32(page), Data: data})
}

// logRecord appends one logical record if write-ahead logging is
// active (durable mode, not replaying, not bulk-loading).
func (db *DB) logRecord(rec wal.Record) error {
	if !db.durable || !db.logging.Load() {
		return nil
	}
	return db.wal.Append(rec)
}

// SetLogging toggles write-ahead logging on a durable engine. Bulk
// loads turn it off, load, then Checkpoint — which captures the loaded
// state in page files and re-enables logging — so per-row records are
// never written for data a checkpoint is about to absorb. Call only on
// a quiesced engine; no effect in memory mode.
func (db *DB) SetLogging(on bool) {
	if db.durable {
		db.logging.Store(on)
	}
}

// Durable reports whether the engine persists to a data directory.
func (db *DB) Durable() bool { return db.durable }

// Checkpoint makes the current committed state the new recovery base:
// flush every dirty frame, write the merged pages as a fresh
// generation, atomically publish the manifest naming it, promote it
// and truncate the write-ahead log. It quiesces the engine (exclusive
// latch) for the duration and re-enables logging on success. On a
// memory-mode engine it degrades to Flush.
func (db *DB) Checkpoint() error {
	if !db.durable {
		return db.Flush()
	}
	db.latch.lock()
	defer db.latch.unlock()
	if db.failed != nil {
		return db.failed
	}
	// Suppress page-image journaling for the flush: these pages are
	// landing in the new generation, so log records for them would be
	// truncated moments later.
	db.logging.Store(false)
	if err := db.Buf.FlushAll(); err != nil {
		db.logging.Store(true)
		return err
	}
	newGen := db.gen + 1
	if err := db.Store.WriteGeneration(newGen); err != nil {
		db.logging.Store(true)
		return err
	}
	newSeq := db.wal.NextSeq()
	if err := writeManifest(db.dir, db.snapshotManifest(newGen, newSeq)); err != nil {
		db.logging.Store(true)
		return err
	}
	// The manifest now names the new generation: promote and truncate.
	// A failure past this point cannot be rolled back — the published
	// manifest already routes recovery through newGen/newSeq, so a log
	// that kept appending to the old segments would be silently skipped
	// on replay. Poison the engine instead: every further write fails
	// until the process reopens the directory (recovery is safe — the
	// checkpointed state is complete and durable).
	if err := db.Store.PromoteGeneration(newGen); err != nil {
		db.poison(err)
		return err
	}
	if err := db.wal.ResetTo(newSeq); err != nil {
		db.poison(err)
		return err
	}
	db.gen = newGen
	db.logging.Store(true)
	return nil
}

// poison marks the durable engine write-dead after a checkpoint
// failure that cannot be rolled back. The caller holds the exclusive
// latch.
func (db *DB) poison(err error) {
	db.failed = fmt.Errorf("engine: checkpoint failed past the point of no return (reopen the data directory): %w", err)
}

// snapshotManifest captures the catalog under the exclusive latch.
func (db *DB) snapshotManifest(gen, walSeq uint64) *manifest {
	m := &manifest{
		Version:    manifestVersion,
		Gen:        gen,
		WALSeq:     walSeq,
		NextFileID: db.Cat.NumFiles(),
	}
	for _, t := range db.Cat.Tables() {
		tm := tableMeta{Name: t.Name, FileID: t.FileID, Rows: db.rows[t.Name]}
		for _, c := range t.Schema.Columns {
			tm.Cols = append(tm.Cols, colMeta{Name: c.Name, Type: uint8(c.Type)})
		}
		for _, ix := range t.Indexes {
			tm.Indexes = append(tm.Indexes, indexMeta{
				Column: ix.Column, Kind: uint8(ix.Kind), Unique: ix.Unique, FileID: ix.FileID,
			})
		}
		m.Tables = append(m.Tables, tm)
	}
	return m
}

// Abandon drops a durable engine without checkpointing or flushing:
// the data directory is left exactly as a crash at this instant would
// leave it — manifest and page files from the last checkpoint, WAL
// carrying everything since — and the directory lock is released so it
// can be reopened. Dirty frames die with the buffer pool; recovery
// reconstructs them from the log. It is the crash-simulation hook the
// durability tests are built on, and a no-op in memory mode.
func (db *DB) Abandon() {
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	if db.closed || !db.durable {
		db.closed = true
		return
	}
	db.closed = true
	db.logging.Store(false)
	db.wal.Close() //lint:allow walcheck crash simulation discards the writer; a close error is part of the simulated crash
	db.Store.Close()
	if db.lock != nil {
		db.lock.Close()
	}
}

// Close shuts the engine down. A durable engine checkpoints (so the
// next open recovers instantly, with nothing to replay), closes the
// log and releases the directory lock; a memory engine just flushes.
// Close is idempotent.
func (db *DB) Close() error {
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if !db.durable {
		return db.Flush()
	}
	err := db.Checkpoint()
	if werr := db.wal.Close(); err == nil {
		err = werr
	}
	if serr := db.Store.Close(); err == nil {
		err = serr
	}
	if db.lock != nil {
		db.lock.Close()
	}
	return err
}
