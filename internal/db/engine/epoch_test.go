package engine_test

import (
	"testing"

	"repro/internal/db/catalog"
	"repro/internal/db/engine"
	"repro/internal/db/value"
)

// TestTableEpochs pins the invalidation counter protocol: every
// Insert and every DDL statement touching a table bumps its epoch,
// epochs are per-table, and an unknown table reads as 0.
func TestTableEpochs(t *testing.T) {
	db := engine.Open(64)
	epoch := func(table string) uint64 {
		release := db.BeginRead()
		defer release()
		return db.TableEpoch(table)
	}
	if got := epoch("nope"); got != 0 {
		t.Fatalf("unknown table epoch = %d, want 0", got)
	}
	sch := catalog.NewSchema(catalog.Column{Name: "k", Type: value.Int})
	if _, err := db.CreateTable("a", sch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("b", catalog.NewSchema(catalog.Column{Name: "k", Type: value.Int})); err != nil {
		t.Fatal(err)
	}
	ea, eb := epoch("a"), epoch("b")
	if ea == 0 || eb == 0 {
		t.Fatalf("CreateTable must bump the epoch: a=%d b=%d", ea, eb)
	}
	for i := 0; i < 3; i++ {
		if err := db.Insert("a", []value.Value{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := epoch("a"); got != ea+3 {
		t.Fatalf("epoch(a) = %d after 3 inserts, want %d", got, ea+3)
	}
	if got := epoch("b"); got != eb {
		t.Fatalf("epoch(b) moved to %d on writes to a", got)
	}
	if err := db.CreateIndex("a", "k", catalog.BTree, false); err != nil {
		t.Fatal(err)
	}
	if got := epoch("a"); got != ea+4 {
		t.Fatalf("epoch(a) = %d after CreateIndex, want %d", got, ea+4)
	}
	// A rejected Insert — the key type fails validation before anything
	// mutates — must leave the table untouched: no heap append, no
	// epoch movement, so cached results keep validating. (Inserts are
	// all-or-nothing since the durability work: the row is journaled
	// before it lands, so it must be validated before it is journaled.)
	if err := db.Insert("a", []value.Value{value.NewFloat(1.5)}); err == nil {
		t.Fatal("float key on an int index should be rejected")
	}
	if got := epoch("a"); got != ea+4 {
		t.Fatalf("epoch(a) = %d after rejected Insert, want %d (nothing mutated)", got, ea+4)
	}
	release := db.BeginRead()
	rows := db.NumRows("a")
	release()
	if rows != 3 {
		t.Fatalf("NumRows(a) = %d after rejected Insert, want 3", rows)
	}
}
