// Package engine assembles the database kernel: catalog, storage
// manager, buffer pool, access methods and executor, with bulk loading
// and index maintenance — the "backend" of the paper's Figure 1.
//
// Concurrency model: the engine carries a single reader-preferring
// reader/writer latch. Queries run under the shared side (BeginRead),
// so any number of sessions can execute plans at once — including
// nested reads from a session with an open result set; Insert,
// CreateTable and CreateIndex take the exclusive side, so writers
// never mutate heap pages or the access-method maps under a running
// scan. The layers below (catalog, buffer pool, storage) carry their
// own fine-grained latches, so even latch-free internal callers get
// racy-but-memory-safe behavior rather than corruption.
package engine

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/dsdb/obs"
	"repro/internal/db/access"
	"repro/internal/db/buffer"
	"repro/internal/db/catalog"
	"repro/internal/db/executor"
	"repro/internal/db/probe"
	"repro/internal/db/storage"
	"repro/internal/db/value"
	"repro/internal/db/wal"
)

// rwLatch is the engine latch: a reader-preferring reader/writer
// lock. Unlike sync.RWMutex, a reader only waits while a writer is
// *active*, never behind a merely queued writer — so a session that
// already holds a read latch (an open result set) can issue nested
// reads without deadlocking against a waiting Insert. The price is
// that writers can starve under a saturated read load; acceptable for
// a decision-support kernel whose writes are loads and index builds.
type rwLatch struct {
	mu      sync.Mutex
	cond    sync.Cond
	readers int
	writer  bool
}

func newRWLatch() *rwLatch {
	l := &rwLatch{}
	l.cond.L = &l.mu
	return l
}

func (l *rwLatch) rlock() {
	l.mu.Lock()
	for l.writer {
		l.cond.Wait()
	}
	l.readers++
	l.mu.Unlock()
}

func (l *rwLatch) runlock() {
	l.mu.Lock()
	l.readers--
	if l.readers == 0 {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

func (l *rwLatch) lock() {
	l.mu.Lock()
	for l.writer || l.readers > 0 {
		l.cond.Wait()
	}
	l.writer = true
	l.mu.Unlock()
}

func (l *rwLatch) unlock() {
	l.mu.Lock()
	l.writer = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// DB is one database instance.
type DB struct {
	Cat   *catalog.Catalog
	Store *storage.Store
	Buf   *buffer.Manager

	// latch is the engine latch: shared for query execution and the
	// map accessors, exclusive for Insert and DDL.
	latch  *rwLatch
	heaps  map[string]*access.Heap
	btrees map[string]*access.BTree
	hashes map[string]*access.HashIndex
	rows   map[string]int

	// epochs carries one monotonic write-epoch counter per table,
	// bumped by every Insert and every DDL statement that touches the
	// table. Epochs are how the result cache (dsdb/qcache) validates
	// entries: a cached result is served only while every referenced
	// table's epoch is unchanged. Like the other maps, epochs is
	// written under the exclusive latch and read under the shared one.
	epochs map[string]uint64

	// Durable-mode state (see durable.go; zero in memory mode).
	// logging gates both the logical write-ahead records appended by
	// Insert/DDL and the page-image spills from the disk store — off
	// during recovery replay, bulk loads and checkpoints.
	durable bool
	dir     string
	wal     *wal.Writer
	logging atomic.Bool
	gen     uint64
	lock    *os.File
	closeMu sync.Mutex
	closed  bool

	// failed poisons the engine after a checkpoint failure past the
	// point of no return (manifest published, promote or log truncation
	// failed): every further write returns it, because appended records
	// would land in segments recovery no longer reads. Written and read
	// under the exclusive latch.
	failed error
}

// Open creates an empty database with a buffer pool of the given
// number of frames.
func Open(frames int) *DB {
	st := storage.NewStore(0)
	return &DB{
		Cat:    catalog.New(),
		Store:  st,
		Buf:    buffer.New(st, frames),
		latch:  newRWLatch(),
		heaps:  make(map[string]*access.Heap),
		btrees: make(map[string]*access.BTree),
		hashes: make(map[string]*access.HashIndex),
		rows:   make(map[string]int),
		epochs: make(map[string]uint64),
	}
}

// BeginRead acquires the engine latch in shared mode for the duration
// of a query (compile + execute) and returns the release function.
// Readers run concurrently with each other and exclude Insert/DDL.
// Readers never wait behind a merely queued writer, so nested reads
// (a query issued while another result set is open) are safe; do not
// call Insert or DDL from a goroutine that still holds a read latch.
//
//lint:allow unlockpath the latch deliberately escapes as the returned release closure
func (db *DB) BeginRead() func() {
	db.latch.rlock()
	return db.latch.runlock
}

// CreateTable registers a table and its heap file. In durable mode
// the statement is logged before the catalog mutates.
func (db *DB) CreateTable(name string, schema *catalog.Schema) (*catalog.Table, error) {
	db.latch.lock()
	defer db.latch.unlock()
	if db.failed != nil {
		return nil, db.failed
	}
	if _, dup := db.Cat.Table(name); dup {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	cols := make([]wal.Column, schema.Len())
	for i, c := range schema.Columns {
		cols[i] = wal.Column{Name: c.Name, Type: uint8(c.Type)}
	}
	if err := db.logRecord(wal.CreateTable{Name: name, Cols: cols}); err != nil {
		return nil, err
	}
	t, err := db.Cat.AddTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.Store.EnsureFiles(db.Cat.NumFiles())
	db.heaps[name] = access.NewHeap(db.Buf, t.FileID)
	db.epochs[name]++
	return t, nil
}

// CreateIndex builds an index on table.column. For hash indices the
// bucket count is sized from the current table cardinality, so build
// indices after loading (as the paper's database setup does).
func (db *DB) CreateIndex(table, column string, kind catalog.IndexKind, unique bool) error {
	db.latch.lock()
	defer db.latch.unlock()
	if db.failed != nil {
		return db.failed
	}
	// Validate what the write-ahead record must not capture: a logged
	// DDL statement is replayed verbatim on recovery, so it has to be
	// one that succeeds.
	t, ok := db.Cat.Table(table)
	if !ok {
		return fmt.Errorf("catalog: no table %q", table)
	}
	if t.Schema.ColIndex(column) < 0 {
		return fmt.Errorf("catalog: no column %q in %q", column, table)
	}
	if ct := t.Schema.Columns[t.Schema.ColIndex(column)].Type; ct != value.Int && ct != value.Date {
		return fmt.Errorf("engine: index on %s.%s: only integer/date keys supported (column is %s)", table, column, ct)
	}
	logged := db.durable && db.logging.Load()
	if err := db.logRecord(wal.CreateIndex{Table: table, Column: column, Kind: uint8(kind), Unique: unique}); err != nil {
		return err
	}
	ix, err := db.Cat.AddIndex(table, column, kind, unique)
	if err != nil {
		return db.writeFailed(logged, err)
	}
	db.epochs[table]++
	db.Store.EnsureFiles(db.Cat.NumFiles())
	switch kind {
	case catalog.BTree:
		bt, err := access.CreateBTree(db.Buf, ix.FileID)
		if err != nil {
			return db.writeFailed(logged, err)
		}
		db.btrees[ix.Name] = bt
	case catalog.Hash:
		buckets := db.rows[table]/200 + 4
		hx, err := access.CreateHashIndex(db.Buf, ix.FileID, buckets)
		if err != nil {
			return db.writeFailed(logged, err)
		}
		db.hashes[ix.Name] = hx
	}
	// Backfill from the heap.
	heap := db.heaps[table]
	scan := heap.BeginScan()
	for {
		vals, tid, ok, err := scan.Next(nil, nil)
		if err != nil {
			return db.writeFailed(logged, err)
		}
		if !ok {
			break
		}
		if err := db.indexInsertOne(ix, vals, tid); err != nil {
			return db.writeFailed(logged, err)
		}
	}
	return nil
}

func (db *DB) indexInsertOne(ix *catalog.Index, vals []value.Value, tid storage.TID) error {
	key := vals[ix.Col]
	if key.T != value.Int && key.T != value.Date {
		return fmt.Errorf("engine: index %s: only integer/date keys supported", ix.Name)
	}
	switch ix.Kind {
	case catalog.BTree:
		return db.btrees[ix.Name].Insert(key.I, tid)
	default:
		return db.hashes[ix.Name].Insert(key.I, tid)
	}
}

// Insert appends a row to a table, maintaining its indices. The
// engine latch is held exclusively, so the heap append and every
// index insert land atomically with respect to running queries. All
// validation — arity, tuple size, index key types — happens before
// anything mutates: a row either lands in full (heap and every index)
// or not at all, which is also what lets durable mode journal the row
// up front and replay the record unconditionally on recovery.
func (db *DB) Insert(table string, row []value.Value) error {
	return db.InsertSpanned(table, row, nil)
}

// InsertSpanned is Insert with an observability span attached: the
// WAL append — the durability fsync, the dominant cost of a durable
// insert — is timed into the span's WAL stage. A nil span inserts
// unobserved at no extra cost.
func (db *DB) InsertSpanned(table string, row []value.Value, sp *obs.Span) error {
	db.latch.lock()
	defer db.latch.unlock()
	if db.failed != nil {
		return db.failed
	}
	t, ok := db.Cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	if len(row) != t.Schema.Len() {
		return fmt.Errorf("engine: %s: got %d values, want %d", table, len(row), t.Schema.Len())
	}
	for _, ix := range t.Indexes {
		if key := row[ix.Col]; key.T != value.Int && key.T != value.Date {
			return fmt.Errorf("engine: index %s: only integer/date keys supported", ix.Name)
		}
	}
	var tid storage.TID
	var err error
	logged := false
	if db.durable && db.logging.Load() {
		// Log-then-apply, encoding exactly once: the journaled bytes
		// are the bytes the heap stores. Unlogged paths (memory mode,
		// bulk loads, replay) let the heap encode for itself.
		data := storage.EncodeTuple(row, nil)
		if err := access.CheckTupleSize(data); err != nil {
			return err
		}
		var walStart time.Time
		if sp != nil {
			walStart = time.Now()
		}
		err := db.wal.Append(wal.Insert{Table: table, Tuple: data})
		if sp != nil {
			sp.Add(obs.StageWAL, time.Since(walStart))
		}
		if err != nil {
			return err
		}
		logged = true
		tid, err = db.heaps[table].InsertTuple(data)
	} else {
		tid, err = db.heaps[table].Insert(row, nil)
	}
	if err != nil {
		return db.writeFailed(logged, err)
	}
	// The heap has mutated: bump the epoch now, not after index
	// maintenance, so even an index IO failure cannot leave a cached
	// result validating against a heap it no longer matches.
	db.epochs[table]++
	for _, ix := range t.Indexes {
		if err := db.indexInsertOne(ix, row, tid); err != nil {
			return db.writeFailed(logged, err)
		}
	}
	db.rows[table]++
	return nil
}

// writeFailed handles an apply failure, possibly after the operation's
// WAL record was already committed. Validation rejects everything a
// record could deterministically fail on before it is appended, so a
// post-append failure is environmental (I/O, pool exhaustion) — the
// logged operation WILL be applied by recovery, diverging from what
// this process told its caller. Poison the engine so the divergence
// cannot compound: further writes fail until the directory is
// reopened, and reopening applies the record cleanly. The caller holds
// the exclusive latch.
func (db *DB) writeFailed(logged bool, err error) error {
	if logged && db.failed == nil {
		db.failed = fmt.Errorf("engine: write failed after its WAL record was committed (reopen the data directory to recover): %w", err)
	}
	return err
}

// NumRows returns the loaded cardinality of a table. Like the other
// map accessors below, it must be called either under the shared
// latch (BeginRead) or on a quiesced engine: the latch is not
// reentrant, so the accessors do not take it themselves.
func (db *DB) NumRows(table string) int { return db.rows[table] }

// TableEpoch returns a table's write epoch: a monotonic counter bumped
// by every Insert and every DDL statement touching the table (0 for a
// table that was never written). Call under BeginRead, like the other
// map accessors — a reader holding the shared latch sees a stable
// epoch for the whole execution, since writers are excluded.
func (db *DB) TableEpoch(table string) uint64 { return db.epochs[table] }

// WALSeq returns the sequence number of the write-ahead log segment
// currently appended to (0 on a non-durable database). Safe without
// the engine latch: the WAL writer has its own mutex and the wal
// pointer is immutable after open.
func (db *DB) WALSeq() uint64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.Seq()
}

// WALCounters returns the write-ahead log's lifetime append/fsync
// counters (zero on a non-durable database). Safe without the engine
// latch: the counters are atomic.
func (db *DB) WALCounters() wal.Counters {
	if db.wal == nil {
		return wal.Counters{}
	}
	return db.wal.Counters()
}

// Heap returns a table's heap access method (call under BeginRead).
func (db *DB) Heap(table string) *access.Heap { return db.heaps[table] }

// BTreeFor returns the B-tree for an index descriptor, if built
// (call under BeginRead).
func (db *DB) BTreeFor(ix *catalog.Index) *access.BTree { return db.btrees[ix.Name] }

// HashFor returns the hash index for an index descriptor, if built
// (call under BeginRead).
func (db *DB) HashFor(ix *catalog.Index) *access.HashIndex { return db.hashes[ix.Name] }

// Flush writes back all dirty pages (call after loading). It holds
// the engine latch shared: dirty frame bytes are only ever mutated by
// Insert and the DDL backfills, which hold it exclusively, so the
// flush never reads a page mid-write.
func (db *DB) Flush() error {
	db.latch.rlock()
	defer db.latch.runlock()
	return db.Buf.FlushAll()
}

// Run executes a plan to completion and returns the result rows. The
// plan is always closed — including when Open or Next fail partway —
// so executor nodes never leak scans or buffered state; node Close
// methods are idempotent, making the unconditional defer safe even
// when Open failed after opening only some children.
func Run(plan executor.Node) (out []executor.Tuple, err error) {
	defer func() {
		if cerr := plan.Close(); err == nil {
			err = cerr
		}
	}()
	if err = plan.Open(); err != nil {
		return nil, err
	}
	for {
		tup, ok, nerr := plan.Next()
		if nerr != nil {
			return nil, nerr
		}
		if !ok {
			return out, nil
		}
		out = append(out, tup)
	}
}

// NewCtx returns an executor context bound to the given tracer.
func NewCtx(tr probe.Tracer) *executor.Ctx { return executor.NewCtx(tr) }
