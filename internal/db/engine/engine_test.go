package engine_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/db/catalog"
	"repro/internal/db/engine"
	"repro/internal/db/executor"
)

// probeNode is a stub executor node that counts lifecycle calls and
// can fail at a chosen point.
type probeNode struct {
	child     executor.Node
	failOpen  bool
	failAfter int // Next calls before erroring; -1 disables
	nexts     int
	opens     int
	closes    int
}

var errBoom = errors.New("boom")

func (p *probeNode) Open() error {
	p.opens++
	if p.failOpen {
		return errBoom
	}
	if p.child != nil {
		return p.child.Open()
	}
	return nil
}

func (p *probeNode) Next() (executor.Tuple, bool, error) {
	p.nexts++
	if p.failAfter >= 0 && p.nexts > p.failAfter {
		return nil, false, errBoom
	}
	return executor.Tuple{}, true, nil
}

func (p *probeNode) Close() error {
	p.closes++
	if p.child != nil {
		return p.child.Close()
	}
	return nil
}

func (p *probeNode) Schema() *catalog.Schema { return catalog.NewSchema() }

// TestRunClosesOnNextError checks the leak fix: when Next errors
// after a successful Open, the plan is still closed exactly once.
func TestRunClosesOnNextError(t *testing.T) {
	leaf := &probeNode{failAfter: -1}
	root := &probeNode{child: leaf, failAfter: 2}
	_, err := engine.Run(root)
	if !errors.Is(err, errBoom) {
		t.Fatalf("Run err = %v, want errBoom", err)
	}
	if root.closes != 1 || leaf.closes != 1 {
		t.Fatalf("closes: root %d, leaf %d; want 1 each", root.closes, leaf.closes)
	}
}

// TestRunClosesOnOpenError checks that a failed Open still closes the
// plan, releasing children a partial Open may have acquired.
func TestRunClosesOnOpenError(t *testing.T) {
	root := &probeNode{failOpen: true, failAfter: -1}
	_, err := engine.Run(root)
	if !errors.Is(err, errBoom) {
		t.Fatalf("Run err = %v, want errBoom", err)
	}
	if root.closes != 1 {
		t.Fatalf("closes = %d, want 1", root.closes)
	}
}

// TestJoinCloseBothChildren checks that join nodes close both inputs
// even when the first close fails, and stay idempotent.
func TestJoinCloseBothChildren(t *testing.T) {
	mkJoin := func(outer, inner executor.Node) []executor.Node {
		c := executor.NewCtx(nil)
		return []executor.Node{
			&executor.NestLoop{C: c, Outer: outer, Inner: inner},
			&executor.HashJoin{C: c, Outer: outer, Inner: inner},
			&executor.MergeJoin{C: c, Outer: outer, Inner: inner},
		}
	}
	for i, j := range mkJoin(&failingClose{}, &probeNode{failAfter: -1}) {
		if err := j.Close(); !errors.Is(err, errBoom) {
			t.Errorf("join %d: Close err = %v, want errBoom from outer", i, err)
		}
	}
	// The inner child must have been closed despite the outer failure.
	outer := &failingClose{}
	inner := &probeNode{failAfter: -1}
	nl := &executor.NestLoop{C: executor.NewCtx(nil), Outer: outer, Inner: inner}
	if err := nl.Close(); !errors.Is(err, errBoom) {
		t.Fatalf("Close err = %v, want errBoom", err)
	}
	if inner.closes != 1 {
		t.Fatalf("inner closes = %d, want 1 (inner leaked when outer close failed)", inner.closes)
	}
	if err := nl.Close(); !errors.Is(err, errBoom) {
		t.Fatalf("second Close err = %v", err)
	}
	if inner.closes != 2 {
		t.Fatalf("Close not idempotent: inner closes = %d", inner.closes)
	}
}

// TestInterruptStopsPipelineBreaker checks the executor-level
// cancellation hook: a sort must abort mid-load when Interrupt fires,
// not after materializing its whole input.
func TestInterruptStopsPipelineBreaker(t *testing.T) {
	leaf := &probeNode{failAfter: -1} // infinite input
	c := executor.NewCtx(nil)
	calls := 0
	errStop := fmt.Errorf("stop")
	c.Interrupt = func() error {
		calls++
		if calls > 5 {
			return errStop
		}
		return nil
	}
	srt := &executor.Sort{C: c, Child: leaf, Keys: []executor.SortKey{{Col: 0}}}
	_, err := engine.Run(srt)
	if !errors.Is(err, errStop) {
		t.Fatalf("Run err = %v, want errStop", err)
	}
	if leaf.nexts > 10 {
		t.Fatalf("sort pulled %d tuples after interrupt; cancellation did not reach the load loop", leaf.nexts)
	}
}

// failingClose is a node whose Close always errors.
type failingClose struct{ probeNode }

func (f *failingClose) Close() error {
	f.closes++
	return errBoom
}
