//go:build unix

package engine

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive advisory lock on path, guarding a data
// directory against a second concurrent process. The lock is released
// when the returned file closes (or the process exits).
func lockDir(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: data directory is locked by another process: %w", err)
	}
	return f, nil
}
