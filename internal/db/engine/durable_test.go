package engine_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/db/catalog"
	"repro/internal/db/engine"
	"repro/internal/db/value"
	"repro/internal/db/wal"
)

func intSchema(cols ...string) *catalog.Schema {
	cc := make([]catalog.Column, len(cols))
	for i, c := range cols {
		cc[i] = catalog.Column{Name: c, Type: value.Int}
	}
	return catalog.NewSchema(cc...)
}

// scanAll reads a table through its heap in physical order.
func scanAll(t *testing.T, db *engine.DB, table string) [][]int64 {
	t.Helper()
	release := db.BeginRead()
	defer release()
	scan := db.Heap(table).BeginScan()
	defer scan.Close()
	var out [][]int64
	for {
		vals, _, ok, err := scan.Next(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		row := make([]int64, len(vals))
		for i, v := range vals {
			row[i] = v.I
		}
		out = append(out, row)
	}
}

func TestDurableCreateInsertReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")

	db, recovered, err := engine.OpenDurable(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	if recovered {
		t.Fatal("fresh directory reported recovered")
	}
	if _, err := db.CreateTable("t", intSchema("a", "b")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", "a", catalog.BTree, false); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := db.Insert("t", []value.Value{value.NewInt(i), value.NewInt(i * i)}); err != nil {
			t.Fatal(err)
		}
	}
	want := scanAll(t, db, "t")

	// A second open while the directory lock is held must fail fast.
	if _, _, err := engine.OpenDurable(64, dir); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second open of a locked dir: err = %v", err)
	}
	// Clean shutdown: Close checkpoints, so the reopen recovers from
	// page files with an empty log.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, recovered, err := engine.OpenDurable(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !recovered {
		t.Fatal("reopen did not recover")
	}
	release := re.BeginRead()
	rows, epoch := re.NumRows("t"), re.TableEpoch("t")
	release()
	if rows != 100 {
		t.Fatalf("NumRows = %d after reopen, want 100", rows)
	}
	if epoch != 0 {
		t.Fatalf("epochs are process-local, got %d", epoch)
	}
	got := scanAll(t, re, "t")
	if len(got) != len(want) {
		t.Fatalf("scan: %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
	}
	// The index survived: probe it via the access method.
	release = re.BeginRead()
	tbl, _ := re.Cat.Table("t")
	bt := re.BTreeFor(tbl.Indexes[0])
	scan, err := bt.SeekGE(nil, 42)
	if err != nil {
		release()
		t.Fatal(err)
	}
	key, _, ok, err := scan.Next(nil)
	release()
	if err != nil || !ok || key != 42 {
		t.Fatalf("btree seek after reopen: key=%d ok=%v err=%v", key, ok, err)
	}

	// Post-recovery writes append to the same log and survive another
	// cycle without checkpointing the middle state.
	if err := re.Insert("t", []value.Value{value.NewInt(1000), value.NewInt(0)}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, _, err := engine.OpenDurable(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := scanAll(t, re2, "t"); len(got) != 101 || got[100][0] != 1000 {
		t.Fatalf("second reopen: %d rows, last %v", len(got), got[len(got)-1])
	}
}

// TestDurableRecoveryWithoutCheckpoint pins that a directory whose
// process never checkpointed (no manifest, only WAL segments) still
// recovers: the fresh-open-with-records path.
func TestDurableRecoveryWithoutCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _, err := engine.OpenDurable(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", intSchema("a")); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := db.Insert("t", []value.Value{value.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: drop the lock and walk away without Close or
	// Checkpoint. Abandon releases nothing else — page data lives only
	// in frames and the log.
	db.Abandon()

	re, recovered, err := engine.OpenDurable(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !recovered {
		t.Fatal("WAL-only directory did not report recovered")
	}
	if got := scanAll(t, re, "t"); len(got) != 10 {
		t.Fatalf("recovered %d rows, want 10", len(got))
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _, err := engine.OpenDurable(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateTable("t", intSchema("a")); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if err := db.Insert("t", []value.Value{value.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	records := func() int {
		n := 0
		if _, err := wal.Replay(filepath.Join(dir, "wal"), 0, func(wal.Record) error {
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := records(); n != 51 { // CreateTable + 50 inserts
		t.Fatalf("pre-checkpoint log has %d records, want 51", n)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := records(); n != 0 {
		t.Fatalf("post-checkpoint log has %d records, want 0", n)
	}
	// And the state is still all there after the truncation.
	if got := scanAll(t, db, "t"); len(got) != 50 {
		t.Fatalf("post-checkpoint scan: %d rows, want 50", len(got))
	}
}
