//go:build !unix

package engine

import "os"

// lockDir on platforms without flock creates the lock file but offers
// no mutual exclusion; the single-process discipline is by convention.
func lockDir(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}
