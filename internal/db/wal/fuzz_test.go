package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord drives arbitrary bytes through the record decoder:
// it must never panic, and every payload it accepts must re-encode to
// the identical bytes (the codec is canonical).
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range []Record{
		Insert{Table: "lineitem", Tuple: []byte{0, 1, 0, 0, 0, 0, 0, 0, 0}},
		Insert{Table: "", Tuple: nil},
		CreateTable{Name: "audit", Cols: []Column{{Name: "id", Type: 0}, {Name: "note", Type: 2}}},
		CreateIndex{Table: "audit", Column: "id", Kind: 0, Unique: true},
		PageWrite{File: 2, Page: 17, Data: bytes.Repeat([]byte{0x5A}, 64)},
	} {
		p, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{TypeInsert})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, p []byte) {
		rec, err := DecodeRecord(p)
		if err != nil {
			return
		}
		round, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record fails to re-encode: %v", err)
		}
		if !bytes.Equal(round, p) {
			t.Fatalf("non-canonical payload: decode/encode changed %x to %x", p, round)
		}
	})
}
